// visualize_schedule — render a covering schedule as SVG frames.
//
// Produces schedule_svg/slot_<n>.svg: readers are squares (green = active),
// interrogation disks solid, interference disks dashed, tags green when
// served this slot, gray once read.  Open the files in any browser to watch
// the covering schedule sweep the floor.
//
//   $ ./examples/visualize_schedule
#include <iostream>
#include <string>

#include "analysis/svg.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/mcs.h"
#include "workload/scenario.h"

int main() {
  using namespace rfid;

  workload::Scenario sc = workload::paperScenario(10.0, 5.0);
  sc.deploy.num_readers = 25;
  sc.deploy.num_tags = 350;
  sc.deploy.region_side = 70.0;
  core::System sys = workload::makeSystem(sc, 5150);

  const graph::InterferenceGraph g(sys);
  sched::GrowthScheduler alg2(g);

  // Frame 0: the raw deployment.
  analysis::writeSvgFile("schedule_svg/slot_0_deployment.svg", sys,
                         std::vector<int>{});

  int slot = 0;
  while (sys.unreadCoverableCount() > 0 && slot < 50) {
    const sched::OneShotResult one = alg2.schedule(sys);
    ++slot;
    const std::string path =
        "schedule_svg/slot_" + std::to_string(slot) + ".svg";
    // Render BEFORE marking read so served tags show green.
    analysis::writeSvgFile(path, sys, one.readers);
    const auto served = sys.wellCoveredTags(one.readers);
    sys.markRead(served);
    std::cout << "slot " << slot << ": " << one.readers.size()
              << " readers, " << served.size() << " tags -> " << path << '\n';
  }
  std::cout << "done; open schedule_svg/*.svg in a browser.\n";
  return 0;
}
