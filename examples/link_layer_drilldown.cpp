// link_layer_drilldown — the TTc substrate on its own.
//
// Before any reader scheduling matters, a single reader must arbitrate the
// tags inside its interrogation region (tag–tag collisions, §II).  This
// example races the two classic protocols the paper cites — framed slotted
// ALOHA (Vogt) and binary tree-walking (Law/Lee/Siu, Hush/Wood) — across
// population sizes, and shows ALOHA's frame-size adaptation at work.
//
//   $ ./examples/link_layer_drilldown
#include <iomanip>
#include <iostream>
#include <vector>

#include "protocol/aloha.h"
#include "protocol/tree_walking.h"
#include "workload/rng.h"

int main() {
  using namespace rfid;

  std::cout << "protocol race: micro-slots to identify n tags "
               "(ALOHA averaged over 20 runs; tree-walk deterministic)\n\n";
  std::cout << std::left << std::setw(8) << "tags" << std::setw(14)
            << "aloha_slots" << std::setw(14) << "aloha_eff"
            << std::setw(14) << "tree_probes" << std::setw(12) << "tree_eff"
            << '\n';

  workload::Rng rng(42);
  for (const int n : {4, 16, 64, 256, 1024}) {
    double aloha_total = 0.0;
    for (int run = 0; run < 20; ++run) {
      workload::Rng r = rng.split("aloha", static_cast<std::uint64_t>(n * 100 + run));
      aloha_total += static_cast<double>(protocol::runAloha(n, r).micro_slots);
    }
    const double aloha_mean = aloha_total / 20.0;

    // Random sparse 16-bit EPC population.
    std::vector<std::uint64_t> epcs;
    workload::Rng ids = rng.split("ids", static_cast<std::uint64_t>(n));
    while (static_cast<int>(epcs.size()) < n) {
      const std::uint64_t id = ids.next() & 0xffff;
      bool dup = false;
      for (const std::uint64_t e : epcs) dup = dup || (e == id);
      if (!dup) epcs.push_back(id);
    }
    const protocol::TreeWalkResult tree = protocol::runTreeWalk(epcs, 16);

    std::cout << std::setw(8) << n << std::setw(14) << std::fixed
              << std::setprecision(1) << aloha_mean << std::setw(14)
              << std::setprecision(3) << n / aloha_mean << std::setw(14)
              << std::setprecision(0) << static_cast<double>(tree.probes)
              << std::setw(12) << std::setprecision(3)
              << n / static_cast<double>(tree.probes) << '\n';
  }

  std::cout << "\nALOHA frame adaptation trace (64 tags):\n";
  workload::Rng r = rng.split("trace");
  // Re-run with a visible trace: reimplement the loop using the public
  // pieces so the example stays honest about what the library computes.
  protocol::AlohaOptions opt;
  const protocol::AlohaResult res = protocol::runAloha(64, r, opt);
  std::cout << "  identified " << res.tags_identified << " tags in "
            << res.frames << " frames / " << res.micro_slots
            << " micro-slots (" << res.collisions << " collision slots, "
            << res.empties << " empty slots)\n";
  std::cout << "  throughput " << std::setprecision(3)
            << 64.0 / static_cast<double>(res.micro_slots)
            << " tags per micro-slot — framed ALOHA tops out near 1/e.\n";
  return 0;
}
