// distributed_deployment — no central entity, no locations.
//
// The scenario §V-B targets: readers dropped ad hoc (a pop-up screening
// site, a temporary yard), nobody knows coordinates, and there is no
// backend to run a centralized scheduler.  Readers self-organize purely by
// exchanging messages with radio neighbors.  This example runs the paper's
// distributed Algorithm 3 next to Colorwave and reports both schedule
// quality and the communication bill.
//
//   $ ./examples/distributed_deployment
#include <iomanip>
#include <iostream>

#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/mcs.h"
#include "workload/scenario.h"

int main() {
  using namespace rfid;

  workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  sc.deploy.num_readers = 35;
  sc.deploy.num_tags = 700;
  sc.deploy.region_side = 90.0;
  core::System sys = workload::makeSystem(sc, 99);
  const graph::InterferenceGraph g(sys);

  std::cout << "ad-hoc deployment: " << sys.numReaders() << " readers, "
            << sys.numTags() << " tags, interference graph with "
            << g.numEdges() << " edges\n\n";

  // --- Algorithm 3: growth-bounded coordinators over message passing ---
  dist::GrowthDistributedScheduler alg3(g);
  sys.resetReads();
  std::int64_t alg3_msgs = 0;
  std::int64_t alg3_words = 0;
  int alg3_rounds = 0;
  sched::McsResult mcs3;
  {
    // Run slot by slot so we can account messages per slot.
    while (sys.unreadCoverableCount() > 0 && mcs3.slots < 200) {
      const sched::OneShotResult one = alg3.schedule(sys);
      const auto served = sys.wellCoveredTags(one.readers);
      sys.markRead(served);
      alg3_msgs += alg3.lastStats().messages;
      alg3_words += alg3.lastStats().payload_words;
      alg3_rounds += alg3.lastStats().rounds;
      ++mcs3.slots;
      mcs3.tags_read += static_cast<int>(served.size());
      std::cout << "Alg3 slot " << std::setw(2) << mcs3.slots << ": "
                << std::setw(2) << one.readers.size() << " readers ("
                << alg3.lastStats().heads << " coordinators, r-bar max "
                << alg3.lastStats().max_rbar << "), " << std::setw(3)
                << served.size() << " tags, "
                << alg3.lastStats().messages << " msgs\n";
    }
  }
  std::cout << "Alg3 total: " << mcs3.tags_read << " tags in " << mcs3.slots
            << " slots, " << alg3_msgs << " message-hops (" << alg3_words
            << " payload words) over " << alg3_rounds
            << " protocol rounds\n\n";

  // --- Colorwave: distributed TDMA coloring ---
  dist::ColorwaveScheduler ca(sys, 99);
  sys.resetReads();
  const sched::McsResult mcs_ca = sched::runCoveringSchedule(sys, ca);
  std::cout << "Colorwave total: " << mcs_ca.tags_read << " tags in "
            << mcs_ca.slots << " slots, " << ca.stats().messages
            << " message-hops over " << ca.stats().protocol_rounds
            << " protocol rounds"
            << (ca.converged() ? " (coloring converged)" : "") << '\n';

  // The network's lifetime totals (dist::Network::stats()) include every
  // payload word carried, which the scheduler-level stats above do not.
  const dist::Network::RunStats& net = ca.network().stats();
  std::cout << "Colorwave network bill: " << net.rounds
            << " simulator rounds, " << net.messages << " messages, "
            << net.payload_words << " payload words\n";

  std::cout << "\nAlg3 used "
            << (mcs_ca.slots > 0
                    ? 100.0 * mcs3.slots / static_cast<double>(mcs_ca.slots)
                    : 0.0)
            << "% of Colorwave's slots to serve every coverable tag.\n";
  return 0;
}
