// dynamic_arrivals — a dock door receiving pallets all morning.
//
// Tags stream into the reader field (Poisson arrivals) while the scheduler
// keeps running one slot at a time.  Watch the backlog breathe: it rises
// while trucks unload and drains once arrivals stop.  This is the dynamic
// setting the paper points out prior work ignored (§VII).
//
//   $ ./examples/dock_door_arrivals
#include <iomanip>
#include <iostream>

#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "workload/dynamic.h"

int main() {
  using namespace rfid;

  workload::DynamicConfig cfg;
  cfg.arrival_rate = 25.0;  // tags per slot while unloading
  cfg.arrival_slots = 20;
  cfg.drain_slots = 100;
  cfg.deploy.num_readers = 30;
  cfg.deploy.region_side = 80.0;
  cfg.deploy.lambda_R = 10.0;
  cfg.deploy.lambda_r = 5.0;

  workload::DynamicInstance inst = workload::makeDynamicInstance(cfg, 321);
  std::cout << "dock door: " << inst.system.numReaders() << " readers; "
            << inst.system.numTags() << " tags will arrive over "
            << cfg.arrival_slots << " slots\n\n";

  const graph::InterferenceGraph g(inst.system);
  sched::GrowthScheduler alg2(g);
  const workload::DynamicResult res =
      workload::runDynamicSimulation(inst, alg2, cfg);

  std::cout << "backlog per slot (unread coverable tags in the field):\n";
  for (int s = 0; s < res.slots_run; ++s) {
    const int b = res.backlog[static_cast<std::size_t>(s)];
    std::cout << "  slot " << std::setw(3) << s + 1 << " |";
    for (int i = 0; i < b; i += 4) std::cout << '#';
    std::cout << ' ' << b << (s + 1 == cfg.arrival_slots ? "   <- arrivals end" : "")
              << '\n';
  }
  std::cout << "\nserved " << res.served << '/' << res.arrived_coverable
            << " coverable tags, mean latency "
            << std::fixed << std::setprecision(2) << res.mean_latency
            << " slots, peak backlog " << res.max_backlog
            << (res.drained ? ", floor clean." : ", backlog remains!")
            << '\n';
  return 0;
}
