// warehouse_inventory — planned installation over shelf aisles.
//
// The paper's introduction motivates multi-reader deployments with retail
// and logistics (Wal-Mart's goods management).  This example models a
// warehouse: ceiling readers on a regular grid, tags concentrated along
// shelf aisles.  It compares the location-aware PTAS against the greedy
// baseline on schedule size, then descends to the link layer to report
// physical air-time (ALOHA vs tree-walking arbitration).
//
//   $ ./examples/warehouse_inventory
#include <iomanip>
#include <iostream>

#include "graph/interference_graph.h"
#include "protocol/slot_timing.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

int main() {
  using namespace rfid;

  workload::Scenario sc;
  sc.name = "warehouse";
  sc.layout = workload::Layout::kAisles;
  sc.num_aisles = 8;
  sc.aisle_jitter = 0.8;
  sc.deploy.num_readers = 40;
  sc.deploy.num_tags = 900;
  sc.deploy.region_side = 100.0;
  sc.deploy.lambda_R = 12.0;
  sc.deploy.lambda_r = 5.0;
  // Planned installation: readers on a ceiling grid, not random drops.
  sc.layout = workload::Layout::kAisles;  // tags on aisles, readers uniform

  core::System sys = workload::makeSystem(sc, 2024);
  std::cout << "warehouse: " << sys.numReaders() << " readers over "
            << sc.num_aisles << " aisles, " << sys.numTags() << " tags ("
            << sys.unreadCoverableCount() << " coverable)\n\n";

  struct Outcome {
    std::string name;
    sched::McsResult mcs;
    protocol::SlotTimingResult aloha;
    protocol::SlotTimingResult tree;
  };
  std::vector<Outcome> outcomes;

  {
    sched::PtasScheduler alg1;
    sys.resetReads();
    Outcome o;
    o.name = alg1.name();
    o.mcs = sched::runCoveringSchedule(sys, alg1);
    o.aloha = protocol::timeSchedule(sys, o.mcs, protocol::Arbitration::kAloha,
                                     workload::Rng(1));
    o.tree = protocol::timeSchedule(sys, o.mcs,
                                    protocol::Arbitration::kTreeWalk,
                                    workload::Rng(1));
    outcomes.push_back(std::move(o));
  }
  {
    sched::HillClimbingScheduler ghc;
    sys.resetReads();
    Outcome o;
    o.name = ghc.name();
    o.mcs = sched::runCoveringSchedule(sys, ghc);
    o.aloha = protocol::timeSchedule(sys, o.mcs, protocol::Arbitration::kAloha,
                                     workload::Rng(1));
    o.tree = protocol::timeSchedule(sys, o.mcs,
                                    protocol::Arbitration::kTreeWalk,
                                    workload::Rng(1));
    outcomes.push_back(std::move(o));
  }

  std::cout << std::left << std::setw(7) << "algo" << std::setw(8) << "slots"
            << std::setw(8) << "tags" << std::setw(14) << "aloha_micro"
            << std::setw(14) << "tree_micro" << '\n';
  for (const Outcome& o : outcomes) {
    std::cout << std::setw(7) << o.name << std::setw(8) << o.mcs.slots
              << std::setw(8) << o.mcs.tags_read << std::setw(14)
              << o.aloha.micro_slots << std::setw(14) << o.tree.micro_slots
              << '\n';
  }

  std::cout << "\nslot-by-slot (" << outcomes[0].name << "):\n";
  const auto& schedule = outcomes[0].mcs.schedule;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    std::cout << "  slot " << std::setw(2) << i + 1 << ": "
              << std::setw(2) << schedule[i].active.size() << " readers, "
              << std::setw(3) << schedule[i].tags_read << " tags\n";
  }
  return 0;
}
