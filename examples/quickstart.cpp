// quickstart — the 60-second tour of rfidsched.
//
// Builds a small multi-reader RFID deployment, inspects it, runs one
// scheduling decision with each algorithm family, and then drives a full
// covering schedule (every coverable tag read) with the centralized
// location-free scheduler.
//
//   $ ./examples/quickstart
#include <iostream>
#include <vector>

#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

int main() {
  using namespace rfid;

  // 1. A deployment: 20 readers and 240 tags uniform in a 60x60 area,
  //    interference radii ~ Poisson(10), interrogation ~ Poisson(4).
  workload::Scenario sc = workload::paperScenario(/*lambda_R=*/10.0,
                                                  /*lambda_r=*/4.0);
  sc.deploy.num_readers = 20;
  sc.deploy.num_tags = 240;
  sc.deploy.region_side = 60.0;
  core::System sys = workload::makeSystem(sc, /*seed=*/7);

  std::cout << "deployment: " << sys.numReaders() << " readers, "
            << sys.numTags() << " tags, "
            << sys.unreadCoverableCount() << " of them coverable\n";

  // 2. The interference graph (Definition 7) — the only thing the
  //    location-free algorithms are allowed to see.
  const graph::InterferenceGraph g(sys);
  std::cout << "interference graph: " << g.numEdges() << " edges, max degree "
            << g.maxDegree() << "\n\n";

  // 3. One-shot scheduling (Definition 6): who should transmit right now?
  sched::PtasScheduler alg1;                 // needs locations (paper §IV)
  sched::GrowthScheduler alg2(g);            // graph only (paper §V-A)
  dist::GrowthDistributedScheduler alg3(g);  // graph + messages (paper §V-B)
  sched::HillClimbingScheduler ghc;          // greedy baseline

  const std::vector<sched::OneShotScheduler*> schedulers = {&alg1, &alg2,
                                                            &alg3, &ghc};
  for (sched::OneShotScheduler* s : schedulers) {
    const sched::OneShotResult res = s->schedule(sys);
    std::cout << s->name() << " activates " << res.readers.size()
              << " readers and well-covers " << res.weight << " tags\n";
  }

  // 4. The full covering schedule (Definition 4): iterate one-shot
  //    decisions, retiring served tags, until nothing coverable is unread.
  std::cout << "\nrunning the covering schedule with " << alg2.name() << ":\n";
  const sched::McsResult mcs = sched::runCoveringSchedule(sys, alg2);
  for (std::size_t i = 0; i < mcs.schedule.size(); ++i) {
    std::cout << "  slot " << i + 1 << ": "
              << mcs.schedule[i].active.size() << " readers active, "
              << mcs.schedule[i].tags_read << " tags served\n";
  }
  std::cout << "done: " << mcs.tags_read << " tags in " << mcs.slots
            << " slots (" << mcs.uncoverable
            << " tags lie outside every interrogation region)\n";
  return 0;
}
