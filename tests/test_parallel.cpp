// parallelFor tests: coverage, determinism of the slot pattern, exception
// propagation, and degenerate ranges.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "analysis/parallel.h"
#include "analysis/stats.h"

namespace rfid::analysis {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(101);
    for (auto& h : hits) h = 0;
    parallelFor(0, 101, [&hits](int i) { ++hits[static_cast<std::size_t>(i)]; },
                threads);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyAndReversedRanges) {
  int calls = 0;
  parallelFor(5, 5, [&calls](int) { ++calls; }, 4);
  parallelFor(7, 3, [&calls](int) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, OffsetRange) {
  std::vector<int> seen;
  // Single thread → deterministic order, no synchronization needed.
  parallelFor(10, 15, [&seen](int i) { seen.push_back(i); }, 1);
  EXPECT_EQ(seen, (std::vector<int>{10, 11, 12, 13, 14}));
}

TEST(ParallelFor, SlotPatternIsThreadCountInvariant) {
  // The discipline the benches rely on: write per-index slots, accumulate
  // sequentially — identical results at any thread count.
  auto sweep = [](int threads) {
    std::vector<double> slots(64);
    parallelFor(0, 64, [&slots](int i) {
      slots[static_cast<std::size_t>(i)] = i * 1.5 - (i % 7);
    }, threads);
    RunningStat acc;
    for (const double v : slots) acc.add(v);
    return acc;
  };
  const RunningStat a = sweep(1);
  const RunningStat b = sweep(5);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.variance(), b.variance());
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallelFor(0, 32,
                  [](int i) {
                    if (i == 17) throw std::runtime_error("boom");
                  },
                  4),
      std::runtime_error);
}

TEST(ParallelFor, LargeRangeStress) {
  std::atomic<long long> sum{0};
  parallelFor(0, 100000, [&sum](int i) { sum += i; }, 8);
  EXPECT_EQ(sum.load(), 100000LL * 99999 / 2);
}

}  // namespace
}  // namespace rfid::analysis
