// Structural churn tests (docs/streaming.md): the incremental mutation API
// (System::addTag / removeTag / moveTag) must leave the dual CSR coverage
// index exactly what a from-scratch build over the same population would
// produce, the dirty-reader log must carry scheduler caches through churn
// without a full rebuild, and the IncrementalIndexOracle must detect (and
// heal) a corrupted incremental path.
#include <gtest/gtest.h>

#include <vector>

#include "check/index_oracle.h"
#include "core/system.h"
#include "core/weight.h"
#include "geometry/vec2.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "test_helpers.h"
#include "workload/rng.h"

namespace rfid::core {
namespace {

/// Brute-force coverers of a position: the reference the CSR index must
/// match after any mutation sequence.
std::vector<int> naiveCoverers(const System& sys, geom::Vec2 pos) {
  std::vector<int> out;
  for (int v = 0; v < sys.numReaders(); ++v) {
    const Reader& r = sys.reader(v);
    const double g = r.interrogation_radius;
    if (geom::dist2(pos, r.pos) <= g * g) out.push_back(v);
  }
  return out;
}

/// Every CSR row in both directions against raw geometry.
void expectIndexExact(const System& sys) {
  for (int t = 0; t < sys.numTags(); ++t) {
    if (sys.departed(t)) {
      EXPECT_TRUE(sys.coverers(t).empty()) << "departed tag " << t;
      continue;
    }
    EXPECT_EQ(test::toVec(sys.coverers(t)), naiveCoverers(sys, sys.tag(t).pos))
        << "tag " << t;
  }
  for (int v = 0; v < sys.numReaders(); ++v) {
    std::vector<int> expected;
    for (int t = 0; t < sys.numTags(); ++t) {
      if (sys.departed(t)) continue;
      const Reader& r = sys.reader(v);
      const double g = r.interrogation_radius;
      if (geom::dist2(sys.tag(t).pos, r.pos) <= g * g) expected.push_back(t);
    }
    EXPECT_EQ(test::toVec(sys.coverage(v)), expected) << "reader " << v;
  }
}

/// A deterministic churn mix: `rounds` batches of add / move / remove.
void churn(System& sys, workload::Rng& rng, int rounds, double side) {
  for (int i = 0; i < rounds; ++i) {
    Tag t;
    t.pos = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
    t.epc = static_cast<std::uint64_t>(1000 + i);
    sys.addTag(t);
    if (sys.numTags() > 2) {
      const int m = rng.uniformInt(0, sys.numTags() - 1);
      if (!sys.departed(m)) {
        sys.moveTag(m, {rng.uniform(0.0, side), rng.uniform(0.0, side)});
      }
      const int d = rng.uniformInt(0, sys.numTags() - 1);
      if (!sys.departed(d)) sys.removeTag(d);
    }
  }
}

TEST(SystemMutation, AddTagSplicesBothDirections) {
  System sys = test::smallRandomSystem(101, 12, 40, 40.0);
  const std::uint64_t epoch0 = sys.structuralEpoch();
  Tag t;
  t.pos = {20.0, 20.0};
  t.epc = 777;
  const int idx = sys.addTag(t);
  EXPECT_EQ(idx, 40);
  EXPECT_EQ(sys.numTags(), 41);
  EXPECT_EQ(sys.tag(idx).epc, 777u);
  EXPECT_FALSE(sys.isRead(idx));
  EXPECT_GT(sys.structuralEpoch(), epoch0);
  expectIndexExact(sys);
}

TEST(SystemMutation, RemoveTagTombstonesAndEmptiesItsRow) {
  System sys = test::smallRandomSystem(102, 12, 40, 40.0);
  int covered = -1;
  for (int t = 0; t < sys.numTags(); ++t) {
    if (!sys.coverers(t).empty()) { covered = t; break; }
  }
  ASSERT_GE(covered, 0);
  sys.removeTag(covered);
  EXPECT_TRUE(sys.departed(covered));
  EXPECT_TRUE(sys.isRead(covered)) << "a departed tag must never gate weight";
  EXPECT_TRUE(sys.coverers(covered).empty());
  expectIndexExact(sys);
}

TEST(SystemMutation, MoveTagRewritesCoverageKeepsReadState) {
  System sys = test::smallRandomSystem(103, 12, 40, 40.0);
  const int t = 5;
  ASSERT_FALSE(sys.isRead(t));
  sys.moveTag(t, {-1000.0, -1000.0});  // far outside every disk
  EXPECT_TRUE(sys.coverers(t).empty());
  EXPECT_FALSE(sys.isRead(t)) << "moving must not serve the tag";
  sys.moveTag(t, sys.tag(0).pos);  // onto another tag's position
  EXPECT_EQ(test::toVec(sys.coverers(t)), test::toVec(sys.coverers(0)));
  expectIndexExact(sys);
}

TEST(SystemMutation, ChurnedIndexMatchesFromScratchRebuild) {
  for (const auto seed : test::seedRange(201, test::iterBudget(4))) {
    System sys = test::smallRandomSystem(seed, 14, 60, 45.0);
    workload::Rng rng(seed ^ 0xc0ffee);
    churn(sys, rng, 40, 45.0);
    expectIndexExact(sys);

    // The fingerprint must agree with a from-scratch rebuild of the same
    // churned population (rebuildIndex shares buildIndex with the ctor).
    const std::uint64_t incremental = sys.indexFingerprint();
    sys.rebuildIndex();
    EXPECT_EQ(sys.indexFingerprint(), incremental) << "seed " << seed;
  }
}

TEST(SystemMutation, DirtyLogCarriesWeightCacheThroughChurn) {
  System sys = test::smallRandomSystem(301, 14, 60, 45.0);
  StandaloneWeightCache cache;
  cache.sync(sys);
  ASSERT_EQ(cache.stats().full_builds, 1);

  workload::Rng rng(301);
  churn(sys, rng, 10, 45.0);
  sys.markRead(2);
  cache.sync(sys);
  // Churn rides the diff path, not a rebuild…
  EXPECT_EQ(cache.stats().full_builds, 1);
  EXPECT_EQ(cache.stats().diff_syncs, 1);
  // …and every weight is exactly the from-scratch value.
  ASSERT_EQ(static_cast<int>(cache.weights().size()), sys.numReaders());
  for (int v = 0; v < sys.numReaders(); ++v) {
    EXPECT_EQ(cache.weights()[v], sys.singleWeight(v)) << "reader " << v;
  }

  // A rebuild invalidates the log; the next sync must fall back to a full
  // build instead of trusting a stale cursor.
  sys.rebuildIndex();
  cache.sync(sys);
  EXPECT_EQ(cache.stats().full_builds, 2);
  for (int v = 0; v < sys.numReaders(); ++v) {
    EXPECT_EQ(cache.weights()[v], sys.singleWeight(v)) << "reader " << v;
  }
}

TEST(SystemMutation, GrowthSchedulerMatchesFreshInstanceAfterChurn) {
  // A long-lived scheduler that absorbed churn through epochs/dirty log
  // must propose exactly what a scheduler built from scratch on the
  // churned System proposes.
  System sys = test::smallRandomSystem(401, 14, 60, 45.0);
  const graph::InterferenceGraph g(sys);
  sched::GrowthScheduler longlived(g);
  (void)longlived.schedule(sys);  // warm its caches pre-churn

  workload::Rng rng(401);
  churn(sys, rng, 25, 45.0);

  const sched::OneShotResult after = longlived.schedule(sys);
  const graph::InterferenceGraph g2(sys);  // scheduler keeps a reference
  sched::GrowthScheduler fresh(g2);
  const sched::OneShotResult expected = fresh.schedule(sys);
  EXPECT_EQ(after.readers, expected.readers);
  EXPECT_EQ(after.weight, expected.weight);
}

TEST(IndexOracle, CleanIndexVerifiesOk) {
  System sys = test::smallRandomSystem(501, 12, 40, 40.0);
  workload::Rng rng(501);
  churn(sys, rng, 15, 40.0);
  check::IncrementalIndexOracle oracle;
  EXPECT_EQ(oracle.verify(sys, 0), check::IndexVerdict::kOk);
  EXPECT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.divergences(), 0);
}

TEST(IndexOracle, CadenceGatesOnStructuralEpochs) {
  System sys = test::smallRandomSystem(502, 12, 40, 40.0);
  check::IndexOracleOptions oo;
  oo.every_epochs = 5;
  check::IncrementalIndexOracle oracle(oo);
  EXPECT_EQ(oracle.checkSlot(sys, 0), check::IndexVerdict::kSkipped)
      << "a pristine system is at epoch distance 0 — nothing to verify";
  workload::Rng rng(502);
  churn(sys, rng, 3, 40.0);  // 3 rounds ≥ 5 epochs (add+move+remove each)
  EXPECT_EQ(oracle.checkSlot(sys, 1), check::IndexVerdict::kOk);
  EXPECT_EQ(oracle.checkSlot(sys, 2), check::IndexVerdict::kSkipped)
      << "epoch distance reset by the verification";
  EXPECT_EQ(oracle.checks(), 1);
}

TEST(IndexOracle, DetectsAndHealsSeededCorruption) {
  System sys = test::smallRandomSystem(503, 12, 40, 40.0);
  sys.testOnlyCorruptIndex();
  check::IncrementalIndexOracle oracle;
  EXPECT_EQ(oracle.verify(sys, 7), check::IndexVerdict::kHealed);
  EXPECT_EQ(oracle.divergences(), 1);
  EXPECT_EQ(oracle.heals(), 1);
  EXPECT_TRUE(oracle.ok()) << "healed corruption leaves the run usable";
  ASSERT_FALSE(oracle.issues().empty());
  EXPECT_EQ(oracle.issues()[0].slot, 7);
  EXPECT_EQ(oracle.issues()[0].invariant, "index.divergence");
  // The heal really restored the index.
  expectIndexExact(sys);
  EXPECT_EQ(oracle.verify(sys, 8), check::IndexVerdict::kOk);
  // Fail-closed: after a divergence the oracle ignores its cadence and
  // verifies every call.
  EXPECT_TRUE(oracle.options().paranoid);
}

TEST(IndexOracle, CorruptVerdictWhenHealingDisabled) {
  System sys = test::smallRandomSystem(504, 12, 40, 40.0);
  sys.testOnlyCorruptIndex();
  check::IndexOracleOptions oo;
  oo.self_heal = false;
  check::IncrementalIndexOracle oracle(oo);
  EXPECT_EQ(oracle.verify(sys, 0), check::IndexVerdict::kCorrupt);
  EXPECT_FALSE(oracle.ok());
}

}  // namespace
}  // namespace rfid::core
