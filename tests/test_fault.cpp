// FaultPlan tests: spec parsing, crash/link/miss queries, and the
// determinism contract — the same plan seed produces byte-identical
// fault.* metrics on every run and at any sweep thread count.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/parallel.h"
#include "distributed/colorwave.h"
#include "fault/channel_model.h"
#include "fault/fault_plan.h"
#include "graph/interference_graph.h"
#include "obs/metrics.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "test_helpers.h"

namespace rfid::fault {
namespace {

std::string dumpJson(const obs::MetricsRegistry& r) {
  std::ostringstream os;
  r.writeJson(os, 2);
  return os.str();
}

// --- construction and queries ----------------------------------------------

TEST(FaultPlan, DefaultPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.crashed(0, 0));
  EXPECT_FALSE(plan.hasLinkFaults());
  EXPECT_FALSE(plan.hasMissFaults());
  EXPECT_FALSE(plan.hasPermanentDeaths());
  EXPECT_FALSE(plan.drawMiss(0, 0));
}

TEST(FaultPlan, CrashIntervalsAreHalfOpen) {
  FaultPlan plan;
  plan.addCrash(2, 5, 9);
  EXPECT_FALSE(plan.crashed(2, 4));
  EXPECT_TRUE(plan.crashed(2, 5));
  EXPECT_TRUE(plan.crashed(2, 8));
  EXPECT_FALSE(plan.crashed(2, 9));  // recovered
  EXPECT_FALSE(plan.crashed(1, 6));  // other reader unaffected
  EXPECT_FALSE(plan.permanentlyDead(2, 6));
  EXPECT_FALSE(plan.hasPermanentDeaths());
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, ForeverCrashIsPermanentDeath) {
  FaultPlan plan;
  plan.addCrash(0, 3, -1);
  EXPECT_TRUE(plan.hasPermanentDeaths());
  EXPECT_FALSE(plan.permanentlyDead(0, 2));
  EXPECT_TRUE(plan.permanentlyDead(0, 3));
  EXPECT_TRUE(plan.crashed(0, 1000000));
}

TEST(FaultPlan, LoudRequiresTheLoudInterval) {
  FaultPlan plan;
  plan.addCrash(1, 0, 5, /*loud=*/true);
  plan.addCrash(1, 10, 15, /*loud=*/false);
  EXPECT_TRUE(plan.loud(1, 2));
  EXPECT_TRUE(plan.crashed(1, 12));
  EXPECT_FALSE(plan.loud(1, 12));
  EXPECT_FALSE(plan.loud(1, 7));  // not even crashed between intervals
}

TEST(FaultPlan, LinkOverridesBeatDefaults) {
  FaultPlan plan;
  LinkFaults def;
  def.drop = 0.5;
  plan.setLinkDefaults(def);
  LinkFaults quiet;  // all-zero
  plan.setLink(3, 4, quiet);
  EXPECT_DOUBLE_EQ(plan.link(0, 1).drop, 0.5);
  EXPECT_DOUBLE_EQ(plan.link(3, 4).drop, 0.0);
  // Overrides are directed.
  EXPECT_DOUBLE_EQ(plan.link(4, 3).drop, 0.5);
  EXPECT_TRUE(plan.hasLinkFaults());
}

TEST(FaultPlan, SlotMissOverridesDefault) {
  FaultPlan plan;
  plan.setMissRate(0.25);
  plan.setSlotMissRate(7, 0.0);
  EXPECT_DOUBLE_EQ(plan.missRate(0), 0.25);
  EXPECT_DOUBLE_EQ(plan.missRate(7), 0.0);
  EXPECT_TRUE(plan.hasMissFaults());
}

TEST(FaultPlan, DrawMissIsDeterministicAndSeedSensitive) {
  FaultPlan a;
  a.setSeed(1);
  a.setMissRate(0.5);
  FaultPlan b;
  b.setSeed(1);
  b.setMissRate(0.5);
  FaultPlan c;
  c.setSeed(2);
  c.setMissRate(0.5);
  int agree_ab = 0, agree_ac = 0;
  const int n = 512;
  for (int t = 0; t < n; ++t) {
    agree_ab += a.drawMiss(3, t) == b.drawMiss(3, t);
    agree_ac += a.drawMiss(3, t) == c.drawMiss(3, t);
  }
  EXPECT_EQ(agree_ab, n);  // same seed: identical draws
  EXPECT_LT(agree_ac, n);  // different seed: different fate pattern
}

TEST(FaultPlan, DrawMissRateIsRoughlyHonored) {
  FaultPlan plan;
  plan.setSeed(9);
  plan.setMissRate(0.2);
  int missed = 0;
  const int n = 5000;
  for (int t = 0; t < n; ++t) missed += plan.drawMiss(0, t) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(missed) / n, 0.2, 0.03);
  // Extremes short-circuit without hashing.
  plan.setMissRate(1.0);
  EXPECT_TRUE(plan.drawMiss(0, 0));
  plan.setMissRate(0.0);
  EXPECT_FALSE(plan.drawMiss(0, 0));
}

// --- text spec --------------------------------------------------------------

TEST(FaultPlanParse, FullGrammarRoundTrips) {
  const char* spec = R"(# a full plan
seed 77
crash 3 2 9 loud
crash 7 5 -

drop 0.10
dup 0.05
delay 0.20 3
link 1 2 drop 0.9
miss 0.05
miss-slot 4 0.5
)";
  std::string err;
  const auto plan = FaultPlan::parse(spec, &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_EQ(plan->seed(), 77u);
  EXPECT_TRUE(plan->loud(3, 2));
  EXPECT_FALSE(plan->crashed(3, 9));
  EXPECT_TRUE(plan->permanentlyDead(7, 5));
  EXPECT_DOUBLE_EQ(plan->linkDefaults().drop, 0.10);
  EXPECT_DOUBLE_EQ(plan->linkDefaults().dup, 0.05);
  EXPECT_DOUBLE_EQ(plan->linkDefaults().delay, 0.20);
  EXPECT_EQ(plan->linkDefaults().max_delay, 3);
  EXPECT_DOUBLE_EQ(plan->link(1, 2).drop, 0.9);
  // The override inherited the defaults present when it was parsed.
  EXPECT_DOUBLE_EQ(plan->link(1, 2).dup, 0.05);
  EXPECT_DOUBLE_EQ(plan->missRate(0), 0.05);
  EXPECT_DOUBLE_EQ(plan->missRate(4), 0.5);
}

TEST(FaultPlanParse, BlankAndCommentOnlySpecIsEmpty) {
  const auto plan = FaultPlan::parse("\n# nothing\n\n");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlanParse, RejectsMalformedLinesAndNamesThem) {
  const char* bad[] = {
      "seed",                  // missing value
      "seed 1 2",              // trailing token
      "crash 1 2",             // missing end
      "crash 1 2 1",           // end <= start
      "crash 1 2 x",           // non-integer end
      "crash 1 2 9 quiet",     // unknown modifier
      "drop 1.5",              // probability out of range
      "drop -0.1",             // probability out of range
      "delay 0.5",             // missing max rounds
      "delay 0.5 0",           // max rounds < 1
      "link 1 2 teleport 0.5", // unknown link fault
      "miss 2",                // out of range
      "miss-slot -1 0.5",      // negative slot
      "warp 9",                // unknown directive
  };
  for (const char* spec : bad) {
    std::string err;
    EXPECT_FALSE(FaultPlan::parse(spec, &err).has_value()) << spec;
    EXPECT_NE(err.find("line 1"), std::string::npos) << spec << " -> " << err;
  }
  // The failing line number names the actual offender.
  std::string err;
  EXPECT_FALSE(FaultPlan::parse("seed 1\nmiss 0.5\nbogus\n", &err).has_value());
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

// --- channel model ----------------------------------------------------------

TEST(ChannelModel, ZeroPlanDeliversEverythingOnTime) {
  FaultPlan plan;
  ChannelModel ch(plan);
  std::vector<int> delays;
  for (int i = 0; i < 100; ++i) {
    delays.clear();
    ch.onSend(0, 1, delays);
    ASSERT_EQ(delays.size(), 1u);
    EXPECT_EQ(delays[0], 0);
  }
}

TEST(ChannelModel, DropRateIsRoughlyHonoredAndDeterministic) {
  FaultPlan plan;
  plan.setSeed(5);
  LinkFaults lf;
  lf.drop = 0.3;
  plan.setLinkDefaults(lf);

  const auto fates = [&plan]() {
    ChannelModel ch(plan);
    std::vector<char> dropped;
    std::vector<int> delays;
    for (int i = 0; i < 2000; ++i) {
      delays.clear();
      ch.onSend(0, 1, delays);
      dropped.push_back(delays.empty() ? 1 : 0);
    }
    return dropped;
  };
  const auto a = fates();
  EXPECT_EQ(a, fates());  // same plan, fresh model: identical fates
  int drops = 0;
  for (const char d : a) drops += d;
  EXPECT_NEAR(static_cast<double>(drops) / static_cast<double>(a.size()), 0.3,
              0.04);
}

TEST(ChannelModel, DuplicatesAndDelaysStayInBounds) {
  FaultPlan plan;
  plan.setSeed(6);
  LinkFaults lf;
  lf.dup = 0.5;
  lf.delay = 0.5;
  lf.max_delay = 3;
  plan.setLinkDefaults(lf);
  ChannelModel ch(plan);
  std::vector<int> delays;
  int dup_seen = 0, delay_seen = 0;
  for (int i = 0; i < 500; ++i) {
    delays.clear();
    ch.onSend(2, 3, delays);
    ASSERT_GE(delays.size(), 1u);  // dup never drops
    ASSERT_LE(delays.size(), 2u);
    dup_seen += delays.size() == 2 ? 1 : 0;
    for (const int d : delays) {
      ASSERT_GE(d, 0);
      ASSERT_LE(d, 3);
      delay_seen += d > 0 ? 1 : 0;
    }
  }
  EXPECT_GT(dup_seen, 0);
  EXPECT_GT(delay_seen, 0);
}

TEST(ChannelModel, NodeDownTracksSlot) {
  FaultPlan plan;
  plan.addCrash(4, 2, 5);
  ChannelModel ch(plan);
  EXPECT_FALSE(ch.nodeDown(4));
  ch.setSlot(3);
  EXPECT_TRUE(ch.nodeDown(4));
  EXPECT_FALSE(ch.nodeDown(5));
  ch.setSlot(5);
  EXPECT_FALSE(ch.nodeDown(4));
}

// --- determinism of the full fault pipeline (satellite: same seed ⇒
// byte-identical fault.* export across runs and thread counts) -------------

std::string faultyRunJson(int threads) {
  const int n = 8;  // independent fault-injected MCS runs, merged in order
  std::vector<obs::MetricsRegistry> regs(static_cast<std::size_t>(n));
  analysis::parallelFor(
      0, n,
      [&regs](int i) {
        const std::uint64_t seed = 100 + static_cast<std::uint64_t>(i);
        core::System sys = test::smallRandomSystem(seed, 14, 120, 50.0);
        FaultPlan plan;
        plan.setSeed(seed);
        plan.addCrash(i % 3, 1, 4 + i % 5, (i % 2) != 0);
        LinkFaults lf;
        lf.drop = 0.15;
        lf.dup = 0.05;
        lf.delay = 0.10;
        lf.max_delay = 2;
        plan.setLinkDefaults(lf);
        plan.setMissRate(0.1);
        ChannelModel ch(plan);

        obs::MetricsRegistry& r = regs[static_cast<std::size_t>(i)];
        dist::ColorwaveScheduler ca(sys, seed);
        ca.attachMetrics(&r);
        ca.attachChannel(&ch);
        sched::McsOptions opt;
        opt.metrics = &r;
        opt.faults = &plan;
        opt.channel = &ch;
        opt.max_slots = 200;
        opt.max_stall = 50;
        (void)sched::runCoveringSchedule(sys, ca, opt);
      },
      threads);
  obs::MetricsRegistry total;
  for (const auto& r : regs) total.merge(r);
  return dumpJson(total);
}

TEST(FaultDeterminism, MetricsExportIsByteIdenticalAcrossRunsAndThreads) {
  const std::string at1 = faultyRunJson(1);
#ifndef RFIDSCHED_NO_OBS
  // The stub build exports "{}"; byte-identity below still holds there.
  EXPECT_NE(at1.find("fault.net.dropped"), std::string::npos);
  EXPECT_NE(at1.find("fault.mcs.faulty_slots"), std::string::npos);
#endif
  EXPECT_EQ(at1, faultyRunJson(1));  // run-to-run
  EXPECT_EQ(at1, faultyRunJson(4));  // thread-count independence
  EXPECT_EQ(at1, faultyRunJson(7));
}

}  // namespace
}  // namespace rfid::fault
