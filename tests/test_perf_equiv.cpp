// test_perf_equiv.cpp — the hot-path overhaul must not move a single
// scheduled set (docs/performance.md).
//
// Every optimized selection path (CSR + inverted index, lazy-greedy queue,
// component / shift parallelism) is compared against the retained reference
// path on the same instance: one-shot results, MCS slot sequences (with and
// without fault injection), stats, and checkpoint/resume continuations must
// all be byte-identical, for every thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "ckpt/budget.h"
#include "ckpt/mcs_ckpt.h"
#include "core/weight.h"
#include "fault/fault_plan.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

core::System midSystem(std::uint64_t seed, int n = 90, int m = 1600) {
  return test::smallRandomSystem(seed, n, m, /*side=*/70.0);
}

void expectSameResult(const OneShotResult& a, const OneShotResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.readers, b.readers) << what;
  EXPECT_EQ(a.weight, b.weight) << what;
}

void expectSameMcs(const McsResult& a, const McsResult& b,
                   const std::string& what) {
  EXPECT_EQ(a.slots, b.slots) << what;
  EXPECT_EQ(a.tags_read, b.tags_read) << what;
  EXPECT_EQ(a.uncoverable, b.uncoverable) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  ASSERT_EQ(a.schedule.size(), b.schedule.size()) << what;
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].active, b.schedule[i].active)
        << what << " slot " << i;
    EXPECT_EQ(a.schedule[i].tags_read, b.schedule[i].tags_read)
        << what << " slot " << i;
  }
  EXPECT_EQ(a.degradation.faulty_slots, b.degradation.faulty_slots) << what;
  EXPECT_EQ(a.degradation.tags_missed, b.degradation.tags_missed) << what;
  EXPECT_EQ(a.degradation.tags_orphaned, b.degradation.tags_orphaned) << what;
}

// ---- the lazy-greedy primitives against their definitions ----

TEST(PerfEquiv, StandaloneCacheTracksSingleWeightsAcrossReads) {
  core::System sys = midSystem(901);
  core::StandaloneWeightCache cache;
  cache.sync(sys);
  for (int v = 0; v < sys.numReaders(); ++v) {
    ASSERT_EQ(cache.weights()[static_cast<std::size_t>(v)], sys.singleWeight(v));
  }
  // Serve a batch, un-serve part of it, re-sync: incremental must equal a
  // from-scratch recompute.
  std::mt19937 rng(7);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 200; ++i) {
      const int t = static_cast<int>(rng() % static_cast<unsigned>(sys.numTags()));
      if (rng() % 3 == 0) sys.markUnread(t);
      else sys.markRead(t);
    }
    cache.sync(sys);
    for (int v = 0; v < sys.numReaders(); ++v) {
      ASSERT_EQ(cache.weights()[static_cast<std::size_t>(v)],
                sys.singleWeight(v))
          << "round " << round << " reader " << v;
    }
  }
}

TEST(PerfEquiv, LazyQueueMatchesFullScanUnderRandomCommits) {
  // The adversarial property: peekDelta is NOT monotone under commits (a
  // shared singly-covered tag gaining a second coverer raises sibling
  // deltas), so the queue must track increases too.  Random greedy-ish
  // commit sequences exercise both transition kinds.
  for (const std::uint64_t seed : test::seedRange(11, test::iterBudget(4))) {
    core::System sys = midSystem(seed, 50, 700);
    core::WeightEvaluator eval(sys);
    core::StandaloneWeightCache cache;
    cache.sync(sys);
    std::vector<int> all(static_cast<std::size_t>(sys.numReaders()));
    for (int v = 0; v < sys.numReaders(); ++v) all[static_cast<std::size_t>(v)] = v;
    core::LazyGreedyQueue queue;
    queue.beginRound(eval, all, cache.weights());
    std::vector<char> eligible(static_cast<std::size_t>(sys.numReaders()), 1);

    std::mt19937 rng(seed);
    while (true) {
      // Reference argmax by full scan.
      int want = -1;
      int want_delta = 0;
      for (int v = 0; v < sys.numReaders(); ++v) {
        if (eligible[static_cast<std::size_t>(v)] == 0) continue;
        const int d = eval.peekDelta(v);
        if (d > want_delta) {
          want_delta = d;
          want = v;
        }
      }
      int got_delta = 0;
      const int got = queue.pickBest(eligible, &got_delta);
      ASSERT_EQ(got, want);
      if (got < 0) break;
      ASSERT_EQ(got_delta, want_delta);
      // Commit the pick, plus occasionally mark a random eligible reader
      // ineligible (eligibility only shrinks — the queue contract).
      eval.push(got);
      queue.invalidate(got);
      eligible[static_cast<std::size_t>(got)] = 0;
      if (rng() % 2 == 0) {
        const int x = static_cast<int>(rng() % static_cast<unsigned>(sys.numReaders()));
        eligible[static_cast<std::size_t>(x)] = 0;
      }
    }
  }
}

// ---- one-shot equivalence: optimized vs reference, all thread counts ----

TEST(PerfEquiv, GrowthLazyAndParallelMatchReference) {
  for (const std::uint64_t seed : test::seedRange(21, test::iterBudget(3))) {
    core::System sys = midSystem(seed);
    const graph::InterferenceGraph g(sys);

    GrowthOptions ref_opt;
    ref_opt.lazy_selection = false;
    GrowthScheduler ref(g, ref_opt);
    const OneShotResult want = ref.schedule(sys);

    for (const int threads : {1, 3}) {
      GrowthOptions o;
      o.num_threads = threads;
      GrowthScheduler lazy(g, o);
      const OneShotResult got = lazy.schedule(sys);
      expectSameResult(want, got,
                       "alg2 seed " + std::to_string(seed) + " threads " +
                           std::to_string(threads));
      EXPECT_EQ(lazy.lastStats().picks, ref.lastStats().picks);
      EXPECT_EQ(lazy.lastStats().bnb_nodes, ref.lastStats().bnb_nodes);
      EXPECT_EQ(lazy.lastStats().max_rbar, ref.lastStats().max_rbar);
    }
  }
}

TEST(PerfEquiv, HillClimbingLazyMatchesReference) {
  for (const std::uint64_t seed : test::seedRange(31, test::iterBudget(3))) {
    core::System sys = midSystem(seed);
    HillClimbingScheduler ref(/*lazy_selection=*/false);
    HillClimbingScheduler lazy;
    expectSameResult(ref.schedule(sys), lazy.schedule(sys),
                     "ghc seed " + std::to_string(seed));
  }
}

TEST(PerfEquiv, PtasParallelShiftsMatchSequential) {
  for (const std::uint64_t seed : test::seedRange(41, test::iterBudget(2))) {
    core::System sys = midSystem(seed, 60, 900);

    PtasOptions ref_opt;
    ref_opt.parallel_shifts = false;
    PtasScheduler ref(ref_opt);
    const OneShotResult want = ref.schedule(sys);

    for (const int threads : {2, 5}) {
      PtasOptions o;
      o.num_threads = threads;
      PtasScheduler par(o);
      const OneShotResult got = par.schedule(sys);
      expectSameResult(want, got,
                       "alg1 seed " + std::to_string(seed) + " threads " +
                           std::to_string(threads));
      EXPECT_EQ(par.lastStats().best_shift_r, ref.lastStats().best_shift_r);
      EXPECT_EQ(par.lastStats().best_shift_s, ref.lastStats().best_shift_s);
      EXPECT_EQ(par.lastStats().levels, ref.lastStats().levels);
      EXPECT_EQ(par.lastStats().dp_entries, ref.lastStats().dp_entries);
      EXPECT_EQ(par.lastStats().weight_evals, ref.lastStats().weight_evals);
    }
  }
}

// ---- MCS slot-sequence equivalence (the cross-slot caches in play) ----

TEST(PerfEquiv, McsSlotSequencesIdenticalAcrossPaths) {
  for (const std::uint64_t seed : test::seedRange(51, test::iterBudget(2))) {
    // alg2: reference vs lazy vs lazy-parallel, fresh System per run (the
    // driver consumes the read-state).
    McsResult want;
    {
      core::System sys = midSystem(seed);
      const graph::InterferenceGraph g(sys);
      GrowthOptions o;
      o.lazy_selection = false;
      GrowthScheduler s(g, o);
      want = runCoveringSchedule(sys, s, {});
    }
    for (const int threads : {1, 3}) {
      core::System sys = midSystem(seed);
      const graph::InterferenceGraph g(sys);
      GrowthOptions o;
      o.num_threads = threads;
      GrowthScheduler s(g, o);
      const McsResult got = runCoveringSchedule(sys, s, {});
      expectSameMcs(want, got,
                    "alg2 mcs seed " + std::to_string(seed) + " threads " +
                        std::to_string(threads));
    }

    // ghc: reference vs lazy (the standalone cache refreshes across slots).
    McsResult ghc_want;
    {
      core::System sys = midSystem(seed);
      HillClimbingScheduler s(/*lazy_selection=*/false);
      ghc_want = runCoveringSchedule(sys, s, {});
    }
    {
      core::System sys = midSystem(seed);
      HillClimbingScheduler s;
      const McsResult got = runCoveringSchedule(sys, s, {});
      expectSameMcs(ghc_want, got, "ghc mcs seed " + std::to_string(seed));
    }
  }
}

TEST(PerfEquiv, FaultInjectedMcsIdenticalAcrossPaths) {
  // Crashes flip read-states and bench readers mid-run — the harshest
  // workout for the incremental caches.  Loud crash jams, silent orphans.
  fault::FaultPlan plan;
  plan.addCrash(3, 1, -1, /*loud=*/true);
  plan.addCrash(10, 0, -1, /*loud=*/false);

  McsResult want;
  {
    core::System sys = midSystem(61);
    const graph::InterferenceGraph g(sys);
    GrowthOptions o;
    o.lazy_selection = false;
    GrowthScheduler s(g, o);
    McsOptions opt;
    opt.faults = &plan;
    want = runCoveringSchedule(sys, s, opt);
  }
  for (const int threads : {1, 3}) {
    core::System sys = midSystem(61);
    const graph::InterferenceGraph g(sys);
    GrowthOptions o;
    o.num_threads = threads;
    GrowthScheduler s(g, o);
    McsOptions opt;
    opt.faults = &plan;
    const McsResult got = runCoveringSchedule(sys, s, opt);
    expectSameMcs(want, got, "alg2 fault mcs threads " + std::to_string(threads));
  }

  McsResult ghc_want;
  {
    core::System sys = midSystem(61);
    HillClimbingScheduler s(/*lazy_selection=*/false);
    McsOptions opt;
    opt.faults = &plan;
    ghc_want = runCoveringSchedule(sys, s, opt);
  }
  {
    core::System sys = midSystem(61);
    HillClimbingScheduler s;
    McsOptions opt;
    opt.faults = &plan;
    expectSameMcs(ghc_want, runCoveringSchedule(sys, s, opt), "ghc fault mcs");
  }
}

// ---- checkpoint/resume: a cold-cache continuation must replay exactly ----

TEST(PerfEquiv, ResumedLazyRunMatchesUninterruptedReference) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "perf_equiv_ckpt.journal").string();
  std::remove(path.c_str());
  std::remove((path + ".snap").c_str());

  // Uninterrupted run on the reference path.
  McsResult want;
  {
    core::System sys = midSystem(71);
    const graph::InterferenceGraph g(sys);
    GrowthOptions o;
    o.lazy_selection = false;
    GrowthScheduler s(g, o);
    want = runCoveringSchedule(sys, s, {});
  }
  ASSERT_GE(want.slots, 3) << "instance too easy to test a mid-run resume";

  // Lazy run stopped after 2 committed slots, journaled.
  {
    core::System sys = midSystem(71);
    const graph::InterferenceGraph g(sys);
    GrowthScheduler s(g, {});
    ckpt::RunBudget budget;
    budget.setSlotCap(2);
    McsOptions opt;
    opt.budget = &budget;
    s.attachCancel(&budget.token());
    ckpt::CheckpointSetup setup;
    setup.path = path;
    setup.seed = 71;
    const ckpt::CheckpointedRun run = ckpt::runMcsCheckpointed(sys, s, opt, setup);
    ASSERT_TRUE(run.ok) << run.error;
    ASSERT_TRUE(run.result.interrupted);
  }

  // Resume with a *fresh* scheduler (cold caches): the continuation must
  // line up with the uninterrupted reference schedule exactly.
  {
    core::System sys = midSystem(71);
    const graph::InterferenceGraph g(sys);
    GrowthScheduler s(g, {});
    ckpt::CheckpointSetup setup;
    setup.path = path;
    setup.resume = true;
    setup.seed = 71;
    const ckpt::CheckpointedRun run =
        ckpt::runMcsCheckpointed(sys, s, {}, setup);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_EQ(run.replayed_slots, 2);
    expectSameMcs(want, run.result, "resumed lazy vs uninterrupted reference");
  }
  std::remove(path.c_str());
  std::remove((path + ".snap").c_str());
}

}  // namespace
}  // namespace rfid::sched
