// Empirical validation of the paper's approximation theorems across a
// parameterized instance sweep: Theorem 2 (PTAS), Theorem 4 (Algorithm 2),
// Theorem 6 (Algorithm 3), all against the exact optimum.
#include <gtest/gtest.h>

#include <tuple>

#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/exact.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/ptas.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

// (seed, num_readers, num_tags)
using InstanceParam = std::tuple<std::uint64_t, int, int>;

class ApproximationSweep : public ::testing::TestWithParam<InstanceParam> {
 protected:
  core::System makeInstance() const {
    const auto& [seed, n, m] = GetParam();
    return test::smallRandomSystem(seed, n, m);
  }
};

TEST_P(ApproximationSweep, PtasWithinTheorem2Band) {
  const core::System sys = makeInstance();
  ExactScheduler exact;
  const int opt = exact.schedule(sys).weight;
  PtasOptions po;
  po.k = 3;  // worst-case guarantee (1−1/3)² ≈ 0.44
  PtasScheduler ptas(po);
  const OneShotResult res = ptas.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_GE(static_cast<double>(res.weight) + 1e-9,
            (1.0 - 1.0 / po.k) * (1.0 - 1.0 / po.k) * opt);
}

TEST_P(ApproximationSweep, GrowthWithinTheorem4Band) {
  const core::System sys = makeInstance();
  const graph::InterferenceGraph g(sys);
  ExactScheduler exact;
  const int opt = exact.schedule(sys).weight;
  GrowthOptions go;
  go.rho = 1.3;
  GrowthScheduler alg2(g, go);
  const OneShotResult res = alg2.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_GE(static_cast<double>(res.weight) + 1e-9, opt / go.rho);
}

TEST_P(ApproximationSweep, DistributedWithinTheorem6Band) {
  const core::System sys = makeInstance();
  const graph::InterferenceGraph g(sys);
  ExactScheduler exact;
  const int opt = exact.schedule(sys).weight;
  dist::DistributedGrowthOptions d_opt;
  d_opt.rho = 1.3;
  dist::GrowthDistributedScheduler alg3(g, d_opt);
  const OneShotResult res = alg3.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_GE(static_cast<double>(res.weight) + 1e-9, opt / d_opt.rho);
}

// GHC carries no guarantee, but on these instances it must stay within a
// sane band and produce feasible sets — the baseline sanity check.
TEST_P(ApproximationSweep, GhcFeasibleAndBounded) {
  const core::System sys = makeInstance();
  ExactScheduler exact;
  const int opt = exact.schedule(sys).weight;
  HillClimbingScheduler ghc;
  const OneShotResult res = ghc.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_LE(res.weight, opt);
  EXPECT_GT(res.weight, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, ApproximationSweep,
    ::testing::Values(InstanceParam{401, 8, 60}, InstanceParam{402, 10, 80},
                      InstanceParam{403, 12, 90}, InstanceParam{404, 12, 120},
                      InstanceParam{405, 14, 100}, InstanceParam{406, 9, 50},
                      InstanceParam{407, 11, 70}, InstanceParam{408, 13, 110}));

// Scheduler outputs never exceed the exact optimum (they are feasible sets
// scored by the same referee) — an absolute invariant, not a bound.
TEST_P(ApproximationSweep, NobodyBeatsExact) {
  const core::System sys = makeInstance();
  const graph::InterferenceGraph g(sys);
  ExactScheduler exact;
  const int opt = exact.schedule(sys).weight;

  PtasScheduler ptas;
  GrowthScheduler alg2(g);
  dist::GrowthDistributedScheduler alg3(g);
  HillClimbingScheduler ghc;
  EXPECT_LE(ptas.schedule(sys).weight, opt);
  EXPECT_LE(alg2.schedule(sys).weight, opt);
  EXPECT_LE(alg3.schedule(sys).weight, opt);
  EXPECT_LE(ghc.schedule(sys).weight, opt);
}

}  // namespace
}  // namespace rfid::sched
