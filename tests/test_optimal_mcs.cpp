// Exact MCS tests, including the empirical validation of Theorem 1: the
// greedy MWFS loop stays within log n of the true minimum covering
// schedule.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/exact.h"
#include "sched/mcs.h"
#include "sched/optimal_mcs.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

core::System tinySystem(std::uint64_t seed) {
  // Keep coverable tags ≤ 22 for the exact search.
  return test::smallRandomSystem(seed, 8, 20, 35.0);
}

TEST(OptimalMcs, EmptySystemNeedsZeroSlots) {
  const core::System sys({}, {});
  const OptimalMcsResult res = optimalCoveringScheduleSize(sys);
  EXPECT_EQ(res.slots, 0);
}

TEST(OptimalMcs, AllReadAlreadyZeroSlots) {
  core::System sys = test::figure2System();
  for (int t = 0; t < sys.numTags(); ++t) sys.markRead(t);
  EXPECT_EQ(optimalCoveringScheduleSize(sys).slots, 0);
}

TEST(OptimalMcs, Figure2OptimumIsTwoSlots) {
  core::System sys = test::figure2System();
  // {A,C} then {B} — no single feasible set serves all 5 (B's overlap).
  EXPECT_EQ(optimalCoveringScheduleSize(sys).slots, 2);
}

TEST(OptimalMcs, SingleReaderSingleSlot) {
  const core::System sys({test::makeReader(0, 0, 5.0, 3.0)},
                         {test::makeTag(1, 0), test::makeTag(0, 1)});
  EXPECT_EQ(optimalCoveringScheduleSize(sys).slots, 1);
}

TEST(OptimalMcs, BudgetExhaustionReportsMinusOne) {
  core::System sys = tinySystem(3);
  const OptimalMcsResult res = optimalCoveringScheduleSize(sys, 1);
  EXPECT_EQ(res.slots, -1);
}

// Greedy (exact per-slot MWFS) vs the true optimum: Theorem 1 promises a
// log n factor; on these tiny instances greedy is nearly always optimal,
// and must never beat the optimum.
class Theorem1Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Sweep, GreedyWithinLogFactorOfOptimal) {
  core::System sys = tinySystem(GetParam());
  const OptimalMcsResult opt = optimalCoveringScheduleSize(sys);
  ASSERT_GE(opt.slots, 0) << "exact search budget";

  ExactScheduler exact;
  const McsResult greedy = runCoveringSchedule(sys, exact);
  ASSERT_TRUE(greedy.completed);

  EXPECT_GE(greedy.slots, opt.slots);  // nobody beats the optimum
  const double n = sys.numReaders();
  const double bound = std::max(1.0, std::log2(n) + 1.0) * opt.slots;
  EXPECT_LE(greedy.slots, bound) << "opt=" << opt.slots;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Sweep,
                         ::testing::Range<std::uint64_t>(900, 912));

}  // namespace
}  // namespace rfid::sched
