// Colorwave baseline tests: convergence to a proper coloring, feasible
// color classes, maxColors adaptation, and scheduler behavior.
#include <gtest/gtest.h>

#include "distributed/colorwave.h"
#include "graph/coloring.h"
#include "test_helpers.h"

namespace rfid::dist {
namespace {

TEST(Colorwave, ConvergesOnRandomInterferenceGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const core::System sys = test::smallRandomSystem(seed, 30, 10, 50.0);
    const graph::InterferenceGraph g(sys);
    ColorwaveScheduler cw(g, seed);
    (void)cw.schedule(sys);  // triggers the settle phase
    EXPECT_TRUE(cw.converged()) << "seed " << seed;
  }
}

TEST(Colorwave, ProperClassesAreFeasible) {
  const core::System sys = test::smallRandomSystem(4, 30, 50, 50.0);
  const graph::InterferenceGraph g(sys);
  ColorwaveScheduler cw(g, 4);
  (void)cw.schedule(sys);
  ASSERT_TRUE(cw.converged());
  const auto colors = cw.colors();
  for (int c = 0; c < graph::numColors(colors); ++c) {
    const auto cls = graph::colorClass(colors, c);
    if (cls.empty()) continue;
    EXPECT_TRUE(sys.isFeasible(cls));
  }
}

TEST(Colorwave, SchedulerRotatesThroughClasses) {
  const core::System sys = test::smallRandomSystem(5, 20, 60, 50.0);
  const graph::InterferenceGraph g(sys);
  ColorwaveScheduler cw(g, 5);
  // Over enough slots every reader must appear at least once (its color
  // class comes up in the rotation).
  std::vector<char> appeared(static_cast<std::size_t>(sys.numReaders()), 0);
  for (int slot = 0; slot < 80; ++slot) {
    for (const int v : cw.schedule(sys).readers) appeared[static_cast<std::size_t>(v)] = 1;
  }
  for (int v = 0; v < sys.numReaders(); ++v) {
    EXPECT_TRUE(appeared[static_cast<std::size_t>(v)]) << "reader " << v;
  }
}

TEST(Colorwave, DeterministicInSeed) {
  const core::System sys = test::smallRandomSystem(6, 20, 60, 50.0);
  const graph::InterferenceGraph g(sys);
  ColorwaveScheduler a(g, 99), b(g, 99);
  for (int slot = 0; slot < 5; ++slot) {
    EXPECT_EQ(a.schedule(sys).readers, b.schedule(sys).readers) << slot;
  }
}

TEST(Colorwave, AdaptsColorsUpUnderPressure) {
  // A clique of 8 readers with initial 2 colors cannot properly color —
  // adaptation must push maxColors up until a proper coloring exists.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) edges.emplace_back(i, j);
  }
  const graph::InterferenceGraph g(8, edges);
  // Build a dummy system of 8 far-apart readers (geometry irrelevant for
  // the protocol itself; schedule() only needs matching reader count).
  std::vector<core::Reader> readers;
  for (int i = 0; i < 8; ++i) readers.push_back(test::makeReader(i * 100.0, 0, 5.0));
  const core::System sys(std::move(readers), {});

  ColorwaveOptions opt;
  opt.initial_max_colors = 2;
  opt.settle_rounds = 3000;
  ColorwaveScheduler cw(g, 7, opt);
  (void)cw.schedule(sys);
  EXPECT_TRUE(cw.converged());
  // A proper coloring of K8 needs 8 distinct colors.
  auto colors = cw.colors();
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  EXPECT_EQ(colors.size(), 8u);
}

TEST(Colorwave, StatsAccumulateAcrossSlots) {
  const core::System sys = test::smallRandomSystem(8, 15, 40, 50.0);
  const graph::InterferenceGraph g(sys);
  ColorwaveScheduler cw(g, 8);
  (void)cw.schedule(sys);
  const auto after_one = cw.stats().protocol_rounds;
  (void)cw.schedule(sys);
  EXPECT_GT(cw.stats().protocol_rounds, after_one);
  EXPECT_GT(cw.stats().messages, 0);
}

}  // namespace
}  // namespace rfid::dist
