// HiQ Q-learning baseline tests: training dynamics, assignment validity,
// MCS liveness via retraining, and its expected place in the ranking.
#include <gtest/gtest.h>

#include "sched/growth.h"
#include "sched/mcs.h"
#include "sched/qlearning.h"
#include "graph/interference_graph.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

TEST(QLearning, AssignmentWithinFrame) {
  const core::System sys = test::smallRandomSystem(1, 20, 120, 50.0);
  QLearningOptions opt;
  opt.frame_slots = 5;
  QLearningScheduler hiq(7, opt);
  (void)hiq.schedule(sys);
  const auto a = hiq.assignment();
  ASSERT_EQ(static_cast<int>(a.size()), sys.numReaders());
  for (const int s : a) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 5);
  }
  EXPECT_EQ(hiq.stats().trainings, 1);
  EXPECT_GT(hiq.stats().episodes_run, 0);
}

TEST(QLearning, DeterministicInSeed) {
  const core::System sys = test::smallRandomSystem(2, 15, 90, 50.0);
  QLearningScheduler a(42), b(42);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.schedule(sys).readers, b.schedule(sys).readers) << i;
  }
}

TEST(QLearning, TrainingBeatsRandomAssignment) {
  // Average one-shot weight across a frame after training vs with epsilon
  // pinned to 1 (pure random, zero effective training signal retained).
  const core::System sys = test::smallRandomSystem(3, 20, 150, 45.0);
  QLearningOptions trained;
  trained.episodes = 400;
  QLearningOptions random;
  random.episodes = 1;
  random.epsilon = 1.0;
  random.epsilon_decay = 1.0;

  auto frame_weight = [&sys](QLearningScheduler& s, int frame) {
    double total = 0;
    for (int i = 0; i < frame; ++i) total += s.schedule(sys).weight;
    return total;
  };
  QLearningScheduler a(11, trained), b(11, random);
  EXPECT_GT(frame_weight(a, trained.frame_slots),
            0.9 * frame_weight(b, random.frame_slots));
}

TEST(QLearning, RewardReflectsCollisions) {
  // Two mutually interfering readers must learn different slots: with the
  // same slot both are victims and earn zero reward.
  std::vector<core::Reader> readers = {test::makeReader(0, 0, 10.0, 4.0),
                                       test::makeReader(5, 0, 10.0, 4.0)};
  std::vector<core::Tag> tags = {test::makeTag(-2, 0), test::makeTag(7, 0)};
  const core::System sys(std::move(readers), std::move(tags));
  QLearningOptions opt;
  opt.frame_slots = 2;
  opt.episodes = 500;
  QLearningScheduler hiq(5, opt);
  (void)hiq.schedule(sys);
  const auto a = hiq.assignment();
  EXPECT_NE(a[0], a[1]) << "interfering readers should separate";
}

TEST(QLearning, McsCompletesWithRetraining) {
  core::System sys = test::smallRandomSystem(4, 18, 120, 50.0);
  QLearningScheduler hiq(9);
  const McsResult res = runCoveringSchedule(sys, hiq);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(sys.unreadCoverableCount(), 0);
  EXPECT_GT(hiq.stats().trainings, 0);
}

TEST(QLearning, LandsBelowWeightAwareSchedulers) {
  // HiQ schedules air time, not tags; Alg2 must match or beat its one-shot
  // weight on batch average.
  double hiq_total = 0, alg2_total = 0;
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const core::System sys = test::smallRandomSystem(seed, 20, 140, 50.0);
    const graph::InterferenceGraph g(sys);
    QLearningScheduler hiq(seed);
    GrowthScheduler alg2(g);
    // Give HiQ its best frame slot: max over one frame rotation.
    double best = 0;
    for (int i = 0; i < QLearningOptions{}.frame_slots; ++i) {
      best = std::max(best, static_cast<double>(hiq.schedule(sys).weight));
    }
    hiq_total += best;
    alg2_total += alg2.schedule(sys).weight;
  }
  EXPECT_GE(alg2_total, hiq_total);
}

}  // namespace
}  // namespace rfid::sched
