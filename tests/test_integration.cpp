// Integration tests: the full paper pipeline at reduced scale — deployment
// generation → interference graph → all five schedulers → MCS loop — with
// the qualitative orderings of §VI asserted on batch averages.
#include <gtest/gtest.h>

#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

namespace rfid {
namespace {

/// Reduced paper scenario: 25 readers, 300 tags, 70×70 — small enough for
/// fast CI, dense enough for real interference.
workload::Scenario reducedScenario() {
  workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  sc.deploy.num_readers = 25;
  sc.deploy.num_tags = 300;
  sc.deploy.region_side = 70.0;
  return sc;
}

TEST(Integration, AllSchedulersCompleteTheCoveringSchedule) {
  const workload::Scenario sc = reducedScenario();
  for (const std::uint64_t seed : {501u, 502u}) {
    core::System sys = workload::makeSystem(sc, seed);
    const graph::InterferenceGraph g(sys);

    sched::PtasScheduler ptas;
    sched::GrowthScheduler alg2(g);
    dist::GrowthDistributedScheduler alg3(g);
    sched::HillClimbingScheduler ghc;
    dist::ColorwaveScheduler cw(sys, seed);

    for (sched::OneShotScheduler* s :
         std::vector<sched::OneShotScheduler*>{&ptas, &alg2, &alg3, &ghc, &cw}) {
      sys.resetReads();
      const sched::McsResult res = sched::runCoveringSchedule(sys, *s);
      EXPECT_TRUE(res.completed) << s->name() << " seed " << seed;
      EXPECT_EQ(sys.unreadCoverableCount(), 0) << s->name();
      // Every proposed set of our algorithms must be feasible; Colorwave's
      // may be infeasible pre-convergence, which the referee tolerates.
      if (s->name() != "CA") {
        for (const auto& slot : res.schedule) {
          EXPECT_TRUE(sys.isFeasible(slot.active)) << s->name();
        }
      }
    }
  }
}

// Figure 6/7 ordering on batch average: Alg1 ≤ Alg2 ≤ CA and Alg1 ≤ GHC.
// (Alg3 lands between Alg2 and the baselines with more variance; asserted
// only against CA to keep the test robust to seed noise.)
TEST(Integration, McsScheduleSizeOrdering) {
  const workload::Scenario sc = reducedScenario();
  double slots_ptas = 0, slots_alg2 = 0, slots_alg3 = 0, slots_ghc = 0,
         slots_cw = 0;
  const std::vector<std::uint64_t> seeds = {601, 602, 603};
  for (const std::uint64_t seed : seeds) {
    core::System sys = workload::makeSystem(sc, seed);
    const graph::InterferenceGraph g(sys);

    sched::PtasScheduler ptas;
    sys.resetReads();
    slots_ptas += sched::runCoveringSchedule(sys, ptas).slots;

    sched::GrowthScheduler alg2(g);
    sys.resetReads();
    slots_alg2 += sched::runCoveringSchedule(sys, alg2).slots;

    dist::GrowthDistributedScheduler alg3(g);
    sys.resetReads();
    slots_alg3 += sched::runCoveringSchedule(sys, alg3).slots;

    sched::HillClimbingScheduler ghc;
    sys.resetReads();
    slots_ghc += sched::runCoveringSchedule(sys, ghc).slots;

    dist::ColorwaveScheduler cw(sys, seed);
    sys.resetReads();
    slots_cw += sched::runCoveringSchedule(sys, cw).slots;
  }
  // The paper's qualitative ranking, with slack for small batches.
  EXPECT_LE(slots_ptas, slots_alg2 * 1.15 + 1.0);
  EXPECT_LE(slots_alg2, slots_cw);
  EXPECT_LE(slots_alg3, slots_cw);
  EXPECT_LE(slots_ptas, slots_ghc * 1.05 + 1.0);
  EXPECT_LE(slots_ptas, slots_cw);
}

// Figure 8/9 ordering: one-shot weight Alg1 ≥ Alg2, and our algorithms
// beat both baselines on batch average.
TEST(Integration, OneShotWeightOrdering) {
  const workload::Scenario sc = reducedScenario();
  double w_ptas = 0, w_alg2 = 0, w_alg3 = 0, w_ghc = 0, w_cw = 0;
  const std::vector<std::uint64_t> seeds = {701, 702, 703, 704};
  for (const std::uint64_t seed : seeds) {
    const core::System sys = workload::makeSystem(sc, seed);
    const graph::InterferenceGraph g(sys);

    sched::PtasScheduler ptas;
    sched::GrowthScheduler alg2(g);
    dist::GrowthDistributedScheduler alg3(g);
    sched::HillClimbingScheduler ghc;
    dist::ColorwaveScheduler cw(sys, seed);

    w_ptas += ptas.schedule(sys).weight;
    w_alg2 += alg2.schedule(sys).weight;
    w_alg3 += alg3.schedule(sys).weight;
    w_ghc += ghc.schedule(sys).weight;
    // CA's one-shot weight: best class it would activate over one rotation
    // is generous; use its next slot as-is (the paper does the same).
    w_cw += cw.schedule(sys).weight;
  }
  EXPECT_GE(w_ptas, w_alg2 * 0.95);
  EXPECT_GE(w_alg2, w_cw);
  EXPECT_GE(w_alg3, w_cw);
  EXPECT_GE(w_ptas, w_ghc * 0.95);
  EXPECT_GE(w_ptas, w_cw);
}

TEST(Integration, DeterministicEndToEnd) {
  const workload::Scenario sc = reducedScenario();
  auto run = [&sc]() {
    core::System sys = workload::makeSystem(sc, 801);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler alg2(g);
    return sched::runCoveringSchedule(sys, alg2);
  };
  const sched::McsResult a = run();
  const sched::McsResult b = run();
  ASSERT_EQ(a.slots, b.slots);
  for (int s = 0; s < a.slots; ++s) {
    EXPECT_EQ(a.schedule[static_cast<std::size_t>(s)].active,
              b.schedule[static_cast<std::size_t>(s)].active);
  }
}

TEST(Integration, PaperScaleSmokeRun) {
  // Full §VI scale (50 readers, 1200 tags) through the cheapest scheduler:
  // proves the pipeline holds at paper size without blowing the test budget.
  core::System sys = workload::makeSystem(workload::paperScenario(10.0, 4.0), 901);
  ASSERT_EQ(sys.numReaders(), 50);
  ASSERT_EQ(sys.numTags(), 1200);
  sched::HillClimbingScheduler ghc;
  const sched::McsResult res = sched::runCoveringSchedule(sys, ghc);
  EXPECT_TRUE(res.completed);
  EXPECT_GT(res.tags_read, 0);
}

}  // namespace
}  // namespace rfid
