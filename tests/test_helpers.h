// test_helpers.h — shared fixtures and builders for the test suite.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/system.h"
#include "workload/scenario.h"

namespace rfid::test {

/// Iteration budget for randomized sweeps.  RFIDSCHED_TEST_ITERS overrides
/// every suite's default at once — CI tiers dial the same binaries down for
/// sanitizer runs or up for a soak, without recompiling.  Malformed or
/// non-positive values fall back to the suite default.
inline int iterBudget(int fallback) {
  const char* s = std::getenv("RFIDSCHED_TEST_ITERS");
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1 || v > 1000000) return fallback;
  return static_cast<int>(v);
}

/// `count` consecutive seeds starting at `base` — the loop variable for
/// budgeted sweeps (`for (auto seed : seedRange(11, iterBudget(4)))`).
inline std::vector<std::uint64_t> seedRange(std::uint64_t base, int count) {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(base + static_cast<std::uint64_t>(i));
  return out;
}

/// std::span has no operator==; materialize for gtest comparisons.
inline std::vector<int> toVec(std::span<const int> s) {
  return {s.begin(), s.end()};
}

/// A reader at (x, y) with interference radius R and interrogation radius
/// gamma (defaults to R/2).
inline core::Reader makeReader(double x, double y, double R,
                               double gamma = -1.0) {
  core::Reader r;
  r.pos = {x, y};
  r.interference_radius = R;
  r.interrogation_radius = gamma > 0.0 ? gamma : R / 2.0;
  return r;
}

inline core::Tag makeTag(double x, double y) {
  core::Tag t;
  t.pos = {x, y};
  return t;
}

/// The paper's Figure 2 instance: three pairwise-independent readers A, B,
/// C in a row; B's interrogation region overlaps both A's and C's.
///   Tag1 exclusively A;  Tag2 in A∩B;  Tag3 in B∩C;  Tag4 exclusively C;
///   Tag5 exclusively B.
/// w({A,B,C}) = 3 (Tags 1,4,5) and w({A,C}) = 4 (Tags 1,2,3,4) — scheduling
/// fewer readers reads more tags.
inline core::System figure2System() {
  std::vector<core::Reader> readers = {
      makeReader(0.0, 0.0, 10.0, 6.0),    // A
      makeReader(10.0, 0.0, 10.0, 6.0),   // B
      makeReader(20.0, 0.0, 10.0, 6.0),   // C
  };
  // Pairwise distances: 10 and 20 vs max R = 10 → ‖A−B‖ = 10 is NOT > 10…
  // push them slightly apart so they are independent but interrogation
  // disks (radius 6) still overlap.
  readers[1].pos = {10.5, 0.0};
  readers[2].pos = {21.0, 0.0};
  std::vector<core::Tag> tags = {
      makeTag(-4.0, 0.0),   // Tag1: only A (dist A=4, B=14.5)
      makeTag(5.2, 0.0),    // Tag2: A (5.2) and B (5.3)
      makeTag(15.8, 0.0),   // Tag3: B (5.3) and C (5.2)
      makeTag(25.0, 0.0),   // Tag4: only C
      makeTag(10.5, 3.0),   // Tag5: only B
  };
  return core::System(std::move(readers), std::move(tags));
}

/// Small random instance for property sweeps: n readers, m tags, square of
/// side `side`, radii in a modest band so instances stay exactly solvable.
inline core::System smallRandomSystem(std::uint64_t seed, int n = 10,
                                      int m = 60, double side = 40.0) {
  workload::Scenario sc;
  sc.deploy.num_readers = n;
  sc.deploy.num_tags = m;
  sc.deploy.region_side = side;
  sc.deploy.lambda_R = 8.0;
  sc.deploy.lambda_r = 4.0;
  return workload::makeSystem(sc, seed);
}

}  // namespace rfid::test
