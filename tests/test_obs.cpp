// test_obs.cpp — the rfid::obs observability layer: registry semantics,
// histogram percentiles, trace export well-formedness, parallel-sweep
// determinism, and the MCS driver's counter contract.
//
// Value-asserting tests are guarded with #ifndef RFIDSCHED_NO_OBS; the
// unguarded tests exercise the stub API so a NO_OBS build still compiles
// and runs every call site.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/parallel.h"
#include "graph/interference_graph.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "sched/growth.h"
#include "sched/mcs.h"
#include "workload/scenario.h"

namespace {

using namespace rfid;

// --- minimal recursive-descent JSON validator -------------------------------
// Validates syntax only (objects, arrays, strings with escapes, numbers,
// true/false/null); enough to assert every exported byte stream is real
// JSON without external dependencies.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  bool consume(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool object() {
    if (!consume('{')) return false;
    skipWs();
    if (consume('}')) return true;
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (!consume(':')) return false;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skipWs();
    if (consume(']')) return true;
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    consume('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (consume('.')) {
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

std::string dumpJson(const obs::MetricsRegistry& r) {
  std::ostringstream os;
  r.writeJson(os);
  return os.str();
}

// --- stub-safe API exercises (compile and run in both build modes) ----------

TEST(Obs, ApiIsUsableInEveryBuildMode) {
  obs::MetricsRegistry r;
  r.counter("a.count").add(3);
  r.gauge("a.gauge").set(1.5);
  r.histogram("a.hist").record(10.0);
  obs::TraceSink sink;
  sink.instant(obs::EventKind::kRound, "round", {{"n", 1.0}});
  {
    obs::ScopedTimer t(&r, "a.span_us", &sink, "span");
    t.arg("k", 2.0);
    t.setParent(t.spanId());  // span APIs must exist in the stub too
  }
  (void)sink.newSpanId();
  sink.pushSpan(1);
  (void)sink.currentSpan();
  sink.popSpan();
  (void)sink.threadId();
  const std::string json = dumpJson(r);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  std::ostringstream chrome;
  sink.writeChromeTrace(chrome);
  EXPECT_TRUE(JsonValidator(chrome.str()).valid()) << chrome.str();
  std::ostringstream prom;
  r.writePrometheus(prom);  // no-op in the stub, text exposition otherwise
}

#ifndef RFIDSCHED_NO_OBS

// --- registry semantics -----------------------------------------------------

TEST(ObsRegistry, SameNameSameKindReturnsSameHandle) {
  obs::MetricsRegistry r;
  obs::Counter& a = r.counter("x.count");
  a.add(2);
  // Handles are stable across later insertions (std::map nodes don't move).
  for (int i = 0; i < 64; ++i) {
    r.counter("filler." + std::to_string(i));
  }
  obs::Counter& b = r.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 2);
}

TEST(ObsRegistry, NameCollisionAcrossKindsThrows) {
  obs::MetricsRegistry r;
  r.counter("dup");
  EXPECT_THROW(r.gauge("dup"), std::logic_error);
  EXPECT_THROW(r.histogram("dup"), std::logic_error);
  r.gauge("g");
  EXPECT_THROW(r.counter("g"), std::logic_error);
  // The failed registrations must not have disturbed the originals.
  r.counter("dup").add(1);
  EXPECT_EQ(r.counter("dup").value(), 1);
}

TEST(ObsRegistry, MergeAddsCountersOverwritesGauges) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("c").add(5);
  b.counter("c").add(7);
  b.counter("only_b").add(1);
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  a.histogram("h").record(1.0);
  b.histogram("h").record(3.0);
  a.merge(b);
  EXPECT_EQ(a.counter("c").value(), 12);
  EXPECT_EQ(a.counter("only_b").value(), 1);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 2.0);
  EXPECT_EQ(a.histogram("h").count(), 2);
  EXPECT_DOUBLE_EQ(a.histogram("h").min(), 1.0);
  EXPECT_DOUBLE_EQ(a.histogram("h").max(), 3.0);
}

TEST(ObsRegistry, MergeKindMismatchThrows) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("m");
  b.gauge("m").set(1.0);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

// --- histogram --------------------------------------------------------------

TEST(ObsHistogram, StatsExactPercentilesApproximate) {
  obs::Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Log buckets + in-bucket interpolation: a uniform distribution keeps the
  // interpolation honest, so estimates land within ~15% of the true value.
  EXPECT_NEAR(h.percentile(50), 500.0, 75.0);
  EXPECT_NEAR(h.percentile(90), 900.0, 135.0);
  EXPECT_NEAR(h.percentile(99), 990.0, 150.0);
  // Clamped to the observed range and monotone in p.
  EXPECT_GE(h.percentile(0), h.min());
  EXPECT_LE(h.percentile(100), h.max());
  double prev = 0.0;
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "percentile not monotone at p=" << p;
    prev = v;
  }
}

TEST(ObsHistogram, EmptyIsAllZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(ObsHistogram, QuantileErrorBoundedByLogBucketWidth) {
  // The documented accuracy bound (docs/observability.md): for samples
  // >= 1, every estimated percentile lands in the same power-of-two bucket
  // as the nearest-rank exact quantile, so the relative error is below
  // 100% — estimate in [exact/2, exact*2] — for ANY distribution.  Each
  // case below stresses a different failure mode of interpolation: smooth
  // mass, exponential spread, all mass on one value, a bimodal gap, and a
  // heavy tail.
  struct Case {
    const char* name;
    std::vector<double> vals;
  };
  std::vector<Case> cases;
  {
    Case c{"uniform", {}};
    for (int i = 1; i <= 1000; ++i) c.vals.push_back(i);
    cases.push_back(std::move(c));
  }
  {
    Case c{"exponential", {}};
    for (int i = 0; i < 500; ++i) c.vals.push_back(std::ldexp(1.0, i % 20));
    cases.push_back(std::move(c));
  }
  {
    Case c{"constant", std::vector<double>(200, 777.0)};
    cases.push_back(std::move(c));
  }
  {
    Case c{"bimodal", {}};
    for (int i = 0; i < 300; ++i) c.vals.push_back(i < 150 ? 3.0 : 50000.0);
    cases.push_back(std::move(c));
  }
  {
    Case c{"heavy_tail", {}};
    for (int i = 1; i <= 400; ++i) c.vals.push_back(double(i) * double(i));
    cases.push_back(std::move(c));
  }
  for (const Case& c : cases) {
    obs::Histogram h;
    for (const double v : c.vals) h.record(v);
    std::vector<double> sorted = c.vals;
    std::sort(sorted.begin(), sorted.end());
    for (const double p : {50.0, 90.0, 99.0}) {
      // Nearest-rank exact quantile: the ceil(p/100 * n)-th smallest.
      const std::size_t rank = static_cast<std::size_t>(
          std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
      const double exact = sorted[std::min(rank, sorted.size()) - 1];
      const double est = h.percentile(p);
      EXPECT_GE(est, exact / 2.0)
          << c.name << " p" << p << ": est " << est << " exact " << exact;
      EXPECT_LE(est, exact * 2.0)
          << c.name << " p" << p << ": est " << est << " exact " << exact;
    }
  }
}

// --- export well-formedness -------------------------------------------------

TEST(ObsExport, MetricsJsonIsValidAndDeterministic) {
  const auto fill = [](obs::MetricsRegistry& r) {
    r.counter("z.last").add(9);
    r.counter("a.first").add(1);
    r.gauge("m.gauge").set(-2.5);
    for (int i = 0; i < 100; ++i) r.histogram("m.hist").record(i + 1);
  };
  obs::MetricsRegistry r1;
  obs::MetricsRegistry r2;
  fill(r1);
  fill(r2);
  const std::string j1 = dumpJson(r1);
  EXPECT_TRUE(JsonValidator(j1).valid()) << j1;
  EXPECT_EQ(j1, dumpJson(r2));
  // Sorted keys: "a.first" must appear before "z.last".
  EXPECT_LT(j1.find("a.first"), j1.find("z.last"));
}

TEST(ObsExport, JsonlEveryLineParses) {
  obs::TraceSink sink;
  sink.instant(obs::EventKind::kRound, "net.round", {{"round", 1.0}});
  sink.complete(obs::EventKind::kSlot, "mcs.slot", 10, 25,
                {{"slot", 1.0}, {"delivered", 12.0}}, 2);
  sink.instant(obs::EventKind::kFrame, "quote\"and\\backslash");
  std::ostringstream os;
  sink.writeJsonl(os);
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 3);
}

TEST(ObsExport, ChromeTraceValidAndMonotonicPerThread) {
  obs::TraceSink sink;
  // Deliberately record out of timestamp order and across threads.
  sink.complete(obs::EventKind::kSpan, "late", 50, 5, {}, 0);
  sink.complete(obs::EventKind::kSpan, "early", 10, 5, {}, 0);
  sink.complete(obs::EventKind::kSpan, "other_thread", 1, 2, {}, 1);
  sink.instant(obs::EventKind::kRound, "now");
  std::ostringstream os;
  sink.writeChromeTrace(os);
  const std::string trace = os.str();
  EXPECT_TRUE(JsonValidator(trace).valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  // The export sorts by (tid, ts): "early" precedes "late".
  EXPECT_LT(trace.find("\"early\""), trace.find("\"late\""));
}

// --- scoped timer -----------------------------------------------------------

TEST(ObsTimer, RecordsHistogramAndTraceSpan) {
  obs::MetricsRegistry r;
  obs::TraceSink sink;
  {
    obs::ScopedTimer t(&r, "op.us", &sink, "op", obs::EventKind::kSlot);
    t.arg("size", 3.0);
  }
  EXPECT_EQ(r.histogram("op.us").count(), 1);
  ASSERT_EQ(sink.size(), 1u);
  const auto events = sink.snapshot();
  EXPECT_EQ(events[0].name, "op");
  EXPECT_EQ(events[0].kind, obs::EventKind::kSlot);
  EXPECT_GE(events[0].dur_us, 1);  // clamped so Chrome renders the span
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "size");
}

// --- causal spans -----------------------------------------------------------

TEST(ObsSpans, NestedTimersFormACausalTree) {
  obs::MetricsRegistry r;
  obs::TraceSink sink;
  {
    obs::ScopedTimer outer(&r, "outer_us", &sink, "outer");
    {
      obs::ScopedTimer inner(&r, "inner_us", &sink, "inner");
    }
    sink.instant(obs::EventKind::kRound, "tick");
  }
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 3u);
  const auto find = [&](std::string_view name) -> const obs::TraceEvent& {
    for (const auto& e : events) {
      if (e.name == name) return e;
    }
    static const obs::TraceEvent none{};
    ADD_FAILURE() << "no event " << name;
    return none;
  };
  const obs::TraceEvent& outer = find("outer");
  const obs::TraceEvent& inner = find("inner");
  const obs::TraceEvent& tick = find("tick");
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_NE(inner.span_id, 0u);
  EXPECT_NE(outer.span_id, inner.span_id);
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  // Instants attach to the innermost open span of their thread.
  EXPECT_EQ(tick.span_id, 0u);
  EXPECT_EQ(tick.parent_id, outer.span_id);
}

TEST(ObsSpans, SiblingSinksKeepIndependentStacks) {
  obs::TraceSink a;
  obs::TraceSink b;
  obs::ScopedTimer ta(nullptr, "", &a, "a_span");
  obs::ScopedTimer tb(nullptr, "", &b, "b_span");
  // Each sink sees only its own open span on this thread.
  EXPECT_EQ(a.currentSpan(), ta.spanId());
  EXPECT_EQ(b.currentSpan(), tb.spanId());
  tb.stop();
  EXPECT_EQ(b.currentSpan(), 0u);
  EXPECT_EQ(a.currentSpan(), ta.spanId());
  ta.stop();
}

TEST(ObsSpans, WorkerThreadSpanAdoptsExplicitParent) {
  // A worker thread's stack is empty, so the dispatching thread's span id is
  // handed over explicitly — the pattern the parallel schedulers use.
  obs::TraceSink sink;
  std::uint64_t parent_span = 0;
  {
    obs::ScopedTimer parent(nullptr, "", &sink, "dispatch");
    parent_span = parent.spanId();
    std::thread worker([&sink, parent_span]() {
      obs::ScopedTimer t(nullptr, "", &sink, "worker");
      t.setParent(parent_span);
    });
    worker.join();
  }
  for (const auto& e : sink.snapshot()) {
    if (e.name != "worker") continue;
    EXPECT_EQ(e.parent_id, parent_span);
    EXPECT_NE(e.tid, 0) << "worker thread must get its own tid";
    return;
  }
  FAIL() << "worker span not recorded";
}

TEST(ObsSpans, ExportsCarrySpanIds) {
  obs::TraceSink sink;
  {
    obs::ScopedTimer t(nullptr, "", &sink, "op");
  }
  std::ostringstream jsonl;
  sink.writeJsonl(jsonl);
  EXPECT_NE(jsonl.str().find("\"span_id\": 1"), std::string::npos)
      << jsonl.str();
  EXPECT_NE(jsonl.str().find("\"parent_id\": 0"), std::string::npos);
  std::ostringstream chrome;
  sink.writeChromeTrace(chrome);
  EXPECT_TRUE(JsonValidator(chrome.str()).valid());
  // Chrome has no parent field; ids ride in args.
  EXPECT_NE(chrome.str().find("\"span_id\""), std::string::npos);
}

// --- Prometheus exposition ---------------------------------------------------

TEST(ObsExport, PrometheusTextExposition) {
  obs::MetricsRegistry r;
  r.counter("mcs.slots").add(3);
  r.gauge("fault.mcs.tags_orphaned").set(-2.5);
  for (int i = 1; i <= 100; ++i) r.histogram("alg2.schedule_us").record(i);
  std::ostringstream os;
  r.writePrometheus(os);
  const std::string text = os.str();
  // Dots sanitize to underscores; counters get the _total suffix.
  EXPECT_NE(text.find("# TYPE mcs_slots_total counter\nmcs_slots_total 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fault_mcs_tags_orphaned -2.5"), std::string::npos);
  // Histograms export their summary stats as suffixed gauges.
  EXPECT_NE(text.find("# TYPE alg2_schedule_us_p99 gauge"), std::string::npos);
  EXPECT_NE(text.find("alg2_schedule_us_count 100"), std::string::npos);
}

TEST(ObsTimer, StopIsIdempotentAndDetachedTimerIsFree) {
  obs::MetricsRegistry r;
  obs::ScopedTimer t(&r, "op.us");
  t.stop();
  t.stop();
  EXPECT_EQ(r.histogram("op.us").count(), 1);
  obs::ScopedTimer detached(nullptr, "ignored");
  EXPECT_EQ(detached.stop(), 0);
}

// --- determinism under parallelFor ------------------------------------------

TEST(ObsParallel, SharedRegistryTotalsMatchAcrossThreadCounts) {
  const int n = 500;
  const auto run = [n](int threads) {
    obs::MetricsRegistry r;
    obs::Counter& c = r.counter("work.sum");
    analysis::parallelFor(
        0, n, [&c](int i) { c.add(i + 1); }, threads);
    return c.value();
  };
  const std::int64_t expected =
      static_cast<std::int64_t>(n) * (n + 1) / 2;
  EXPECT_EQ(run(1), expected);
  EXPECT_EQ(run(4), expected);
}

TEST(ObsParallel, PerIterationMergeIsBitIdenticalAcrossThreadCounts) {
  // The repo's sweep discipline: one registry per iteration, merged
  // sequentially in index order afterwards.  The full JSON dump (counters,
  // gauges, histogram percentiles) must not depend on the thread count.
  const int n = 64;
  const auto run = [n](int threads) {
    std::vector<obs::MetricsRegistry> regs(static_cast<std::size_t>(n));
    analysis::parallelFor(
        0, n,
        [&regs](int i) {
          obs::MetricsRegistry& r = regs[static_cast<std::size_t>(i)];
          r.counter("it.count").add(i % 7);
          r.gauge("it.last").set(i);
          r.histogram("it.hist").record((i % 13) + 1);
        },
        threads);
    obs::MetricsRegistry total;
    for (const auto& r : regs) total.merge(r);
    return dumpJson(total);
  };
  const std::string at1 = run(1);
  EXPECT_EQ(at1, run(4));
  EXPECT_EQ(at1, run(7));
}

// --- wiring: the MCS driver's counter contract ------------------------------

TEST(ObsWiring, McsSlotsCounterMatchesResult) {
  workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  sc.deploy.num_readers = 15;
  sc.deploy.num_tags = 150;
  sc.deploy.region_side = 60.0;
  core::System sys = workload::makeSystem(sc, 42);
  const graph::InterferenceGraph g(sys);
  sched::GrowthScheduler alg2(g);

  obs::MetricsRegistry r;
  sys.attachMetrics(&r);
  alg2.attachMetrics(&r);
  sched::McsOptions opt;
  opt.metrics = &r;
  const sched::McsResult res = sched::runCoveringSchedule(sys, alg2, opt);

  EXPECT_EQ(r.counter("mcs.slots").value(), res.slots);
  EXPECT_EQ(r.counter("mcs.tags_read").value(), res.tags_read);
  // The MCS loop issues exactly one scheduling decision per slot.
  EXPECT_EQ(r.counter("sched.schedule_calls").value(), res.slots);
  EXPECT_GT(r.counter("sched.weight_evals").value(), 0);
  EXPECT_GT(r.counter("core.well_covered_evals").value(), 0);
  // Per-slot size histogram saw one sample per slot.
  EXPECT_EQ(r.histogram("mcs.slot_proposed_readers").count(), res.slots);
}

TEST(ObsWiring, TraceCapturesOneSpanPerSlot) {
  workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  sc.deploy.num_readers = 12;
  sc.deploy.num_tags = 80;
  sc.deploy.region_side = 50.0;
  core::System sys = workload::makeSystem(sc, 7);
  const graph::InterferenceGraph g(sys);
  sched::GrowthScheduler alg2(g);

  obs::MetricsRegistry r;
  obs::TraceSink sink;
  sched::McsOptions opt;
  opt.metrics = &r;
  opt.trace = &sink;
  const sched::McsResult res = sched::runCoveringSchedule(sys, alg2, opt);

  int slot_spans = 0;
  for (const auto& e : sink.snapshot()) {
    if (e.kind == obs::EventKind::kSlot && e.dur_us > 0) ++slot_spans;
  }
  EXPECT_EQ(slot_spans, res.slots);
  // With a trace attached, the wall-clock histogram rides along.
  EXPECT_EQ(r.histogram("mcs.slot_us").count(), res.slots);
}

#endif  // RFIDSCHED_NO_OBS

}  // namespace
