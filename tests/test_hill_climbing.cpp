// GHC baseline tests: greedy semantics, feasibility, and the Figure 2 trap
// it is designed to fall into less gracefully than the exact solver.
#include <gtest/gtest.h>

#include "sched/hill_climbing.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

TEST(HillClimbing, PicksGreedyOrderOnFigure2) {
  const core::System sys = test::figure2System();
  HillClimbingScheduler ghc;
  const OneShotResult res = ghc.schedule(sys);
  // First pick is B (weight 3).  Adding A: delta = +1 (Tag1) − 1 (Tag2) = 0,
  // not strictly positive; same for C.  GHC stops at {B} with weight 3 —
  // one short of the optimum 4, exactly the local-maximum failure mode the
  // paper's evaluation banks on.
  EXPECT_EQ(res.readers, (std::vector<int>{1}));
  EXPECT_EQ(res.weight, 3);
}

TEST(HillClimbing, StopsWhenIncrementTurnsNonPositive) {
  // Two far-apart readers with one tag each: both get added.
  std::vector<core::Reader> readers = {test::makeReader(0, 0, 5.0, 3.0),
                                       test::makeReader(50, 0, 5.0, 3.0)};
  std::vector<core::Tag> tags = {test::makeTag(1, 0), test::makeTag(51, 0)};
  const core::System sys(std::move(readers), std::move(tags));
  HillClimbingScheduler ghc;
  const OneShotResult res = ghc.schedule(sys);
  EXPECT_EQ(res.readers, (std::vector<int>{0, 1}));
  EXPECT_EQ(res.weight, 2);
}

TEST(HillClimbing, NeverPicksInterferingReaders) {
  for (const std::uint64_t seed : {1u, 5u, 9u, 13u}) {
    const core::System sys = test::smallRandomSystem(seed, 20, 120, 60.0);
    HillClimbingScheduler ghc;
    const OneShotResult res = ghc.schedule(sys);
    EXPECT_TRUE(sys.isFeasible(res.readers)) << "seed " << seed;
    EXPECT_EQ(sys.weight(res.readers), res.weight);
    EXPECT_GT(res.weight, 0);
  }
}

TEST(HillClimbing, AtLeastBestSingleReader) {
  for (const std::uint64_t seed : {2u, 4u, 6u}) {
    const core::System sys = test::smallRandomSystem(seed, 15, 100);
    int best_single = 0;
    for (int v = 0; v < sys.numReaders(); ++v) {
      best_single = std::max(best_single, sys.singleWeight(v));
    }
    HillClimbingScheduler ghc;
    // The first greedy pick is exactly the best single reader, and later
    // additions only happen with strictly positive increments.
    EXPECT_GE(ghc.schedule(sys).weight, best_single);
  }
}

TEST(HillClimbing, EmptyWhenNothingToRead) {
  core::System sys = test::figure2System();
  for (int t = 0; t < sys.numTags(); ++t) sys.markRead(t);
  HillClimbingScheduler ghc;
  const OneShotResult res = ghc.schedule(sys);
  EXPECT_TRUE(res.readers.empty());
  EXPECT_EQ(res.weight, 0);
}

}  // namespace
}  // namespace rfid::sched
