// test_gen2.cpp — property/metamorphic suite for the Gen2 link layer
// (protocol/gen2.h, protocol/slot_timing.h; docs/protocol.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/interference_graph.h"
#include "protocol/aloha.h"
#include "protocol/gen2.h"
#include "protocol/slot_timing.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/streaming.h"
#include "test_helpers.h"
#include "workload/rng.h"

namespace rfid {
namespace {

using protocol::Gen2Options;
using protocol::Gen2Policy;
using protocol::Gen2RoundResult;
using protocol::Gen2Session;
using protocol::Gen2SessionState;
using protocol::Gen2Target;
using protocol::runGen2Round;

std::vector<int> iota(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

// --- Q convergence -------------------------------------------------------

// A fresh population of n tags is fully identified, and the expected work
// is linear-ish in n: the Q-algorithm tracks the backlog, so the micro-slot
// count stays within a generous constant factor of n instead of the
// quadratic blowup a fixed tiny frame would suffer.
TEST(Gen2, QAlgorithmConvergesWithBoundedFrames) {
  for (const int n : {1, 8, 64, 256}) {
    for (const std::uint64_t seed : test::seedRange(7, test::iterBudget(3))) {
      Gen2SessionState st;
      workload::Rng rng(seed);
      const std::vector<int> pop = iota(n);
      const Gen2RoundResult r =
          runGen2Round(pop, st, /*macro_slot=*/0, Gen2Target::kA, rng);
      EXPECT_TRUE(r.completed) << "n=" << n << " seed=" << seed;
      EXPECT_FALSE(r.double_identified);
      EXPECT_EQ(static_cast<int>(r.identified.size()), n);
      EXPECT_GE(r.micro_slots, n);  // every tag needs at least one slot
      EXPECT_LE(r.micro_slots, 16 * n + 64) << "n=" << n << " seed=" << seed;
      EXPECT_LE(r.frames, 32 + n) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Gen2, AfsaPolicyConvergesToo) {
  Gen2Options opt;
  opt.policy = Gen2Policy::kAfsa;
  for (const int n : {4, 64, 200}) {
    for (const std::uint64_t seed : test::seedRange(3, test::iterBudget(3))) {
      Gen2SessionState st;
      workload::Rng rng(seed);
      const Gen2RoundResult r =
          runGen2Round(iota(n), st, 0, Gen2Target::kA, rng, opt);
      EXPECT_TRUE(r.completed) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(static_cast<int>(r.identified.size()), n);
      EXPECT_LE(r.micro_slots, 16 * n + 64);
    }
  }
}

// --- Session-flag invariants --------------------------------------------

// An S2-inventoried tag never replies again within the persistence window:
// follow-up rounds see only session skips (and cost zero air-time), and the
// population replies again exactly when the window expires.
TEST(Gen2, S2InventoriedTagsStaySilentWithinPersistence) {
  Gen2Options opt;
  opt.session = Gen2Session::kS2;
  opt.persistence = 4;
  const int n = 32;
  Gen2SessionState st;
  workload::Rng rng(99);
  const Gen2RoundResult first =
      runGen2Round(iota(n), st, /*macro_slot=*/0, Gen2Target::kA, rng, opt);
  ASSERT_TRUE(first.completed);
  ASSERT_EQ(static_cast<int>(first.identified.size()), n);

  for (int slot = 1; slot <= opt.persistence; ++slot) {
    st.startSlot(slot, opt);
    const Gen2RoundResult r =
        runGen2Round(iota(n), st, slot, Gen2Target::kA, rng, opt);
    EXPECT_TRUE(r.identified.empty()) << "slot " << slot;
    EXPECT_EQ(r.session_skips, n) << "slot " << slot;
    EXPECT_EQ(r.air_us, 0) << "slot " << slot;
    EXPECT_EQ(r.micro_slots, 0) << "slot " << slot;
  }
  // One slot past the window the flags have decayed: everyone replies.
  const int after = opt.persistence + 1;
  st.startSlot(after, opt);
  const Gen2RoundResult again =
      runGen2Round(iota(n), st, after, Gen2Target::kA, rng, opt);
  EXPECT_EQ(static_cast<int>(again.identified.size()), n);
  EXPECT_EQ(again.session_skips, 0);
}

TEST(Gen2, S0ForgetsEveryMacroSlot) {
  Gen2Options opt;
  opt.session = Gen2Session::kS0;
  const int n = 16;
  Gen2SessionState st;
  workload::Rng rng(5);
  ASSERT_EQ(static_cast<int>(
                runGen2Round(iota(n), st, 0, Gen2Target::kA, rng, opt)
                    .identified.size()),
            n);
  st.startSlot(1, opt);
  const Gen2RoundResult r =
      runGen2Round(iota(n), st, 1, Gen2Target::kA, rng, opt);
  EXPECT_EQ(static_cast<int>(r.identified.size()), n);  // no persistence
  EXPECT_EQ(r.session_skips, 0);
}

// --- A/B target alternation ---------------------------------------------

// Round-trip: a target-A round flips every flag to B; the next (target-B)
// round reads the same population again and flips every flag back to A.
TEST(Gen2, ABAlternationRoundTrips) {
  Gen2Options opt;
  opt.alternate_target = true;
  opt.session = Gen2Session::kS2;
  const int n = 24;
  Gen2SessionState st;
  workload::Rng rng(42);

  ASSERT_EQ(protocol::roundTarget(opt, 0), Gen2Target::kA);
  ASSERT_EQ(protocol::roundTarget(opt, 1), Gen2Target::kB);

  const Gen2RoundResult a = runGen2Round(iota(n), st, 0,
                                         protocol::roundTarget(opt, 0), rng,
                                         opt);
  ASSERT_EQ(static_cast<int>(a.identified.size()), n);
  for (int t = 0; t < n; ++t) EXPECT_TRUE(st.flagB(t));

  st.startSlot(1, opt);
  const Gen2RoundResult b = runGen2Round(iota(n), st, 1,
                                         protocol::roundTarget(opt, 1), rng,
                                         opt);
  EXPECT_EQ(static_cast<int>(b.identified.size()), n);
  EXPECT_EQ(b.session_skips, 0);
  for (int t = 0; t < n; ++t) EXPECT_FALSE(st.flagB(t));
}

// --- MPR ----------------------------------------------------------------

// mpr_k <= 1 is plain Gen2: k=0 and k=1 runs are bit-identical.
TEST(Gen2, MprK1BitIdenticalToNonMpr) {
  for (const std::uint64_t seed : test::seedRange(11, test::iterBudget(5))) {
    Gen2Options k0;
    k0.mpr_k = 0;
    Gen2Options k1;
    k1.mpr_k = 1;
    Gen2SessionState s0, s1;
    workload::Rng r0(seed), r1(seed);
    const Gen2RoundResult a =
        runGen2Round(iota(100), s0, 0, Gen2Target::kA, r0, k0);
    const Gen2RoundResult b =
        runGen2Round(iota(100), s1, 0, Gen2Target::kA, r1, k1);
    EXPECT_EQ(a.identified, b.identified);
    EXPECT_EQ(a.micro_slots, b.micro_slots);
    EXPECT_EQ(a.air_us, b.air_us);
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_EQ(a.collisions, b.collisions);
    EXPECT_EQ(a.mpr_slots, 0);
    EXPECT_EQ(b.mpr_slots, 0);
  }
}

// MPR turns k-occupancy collisions into successes, so air-time can only
// shrink (same seed, same draws — the slot classification is the only
// difference).
TEST(Gen2, MprShortensRounds) {
  std::int64_t base_us = 0, mpr_us = 0;
  for (const std::uint64_t seed : test::seedRange(21, test::iterBudget(5))) {
    Gen2Options base;
    Gen2Options mpr;
    mpr.mpr_k = 4;
    Gen2SessionState s0, s1;
    workload::Rng r0(seed), r1(seed);
    base_us += runGen2Round(iota(150), s0, 0, Gen2Target::kA, r0, base).air_us;
    mpr_us += runGen2Round(iota(150), s1, 0, Gen2Target::kA, r1, mpr).air_us;
  }
  EXPECT_LT(mpr_us, base_us);
}

// --- Aloha frame re-size fix --------------------------------------------

// Degenerate caller bounds must not produce F = 0 frames.  Pre-fix,
// min_frame = 0 let a zero-collision re-size estimate propose an empty
// frame, which reads no tag and re-estimates 0 forever — spinning through
// max_frames with the backlog untouched.  The floor-of-1 clamp makes the
// single-tag endgame (remaining = 1, collisions = 0 → estimate 1) finish.
TEST(Aloha, DegenerateFrameBoundsNeverProposeEmptyFrames) {
  protocol::AlohaOptions opt;
  opt.initial_frame = 0;
  opt.min_frame = -3;
  opt.max_frame = 0;  // worst case: every frame clamped to size 1
  workload::Rng rng(17);
  // One tag in a size-1 frame is a singleton: identified in frame 1.
  const protocol::AlohaResult one = protocol::runAloha(1, rng, opt);
  EXPECT_TRUE(one.completed);
  EXPECT_EQ(one.frames, 1);
  EXPECT_EQ(one.tags_identified, 1);

  // Many tags pinned to F = 1 always collide — the run must still
  // terminate at the frame cap (no hang, no F = 0 UB) and charge one
  // micro-slot per frame.
  opt.max_frames = 64;
  const protocol::AlohaResult many = protocol::runAloha(25, rng, opt);
  EXPECT_FALSE(many.completed);
  EXPECT_EQ(many.frames, 64);
  EXPECT_EQ(many.micro_slots, 64);

  // Sane bounds with min_frame = 0 (the original trigger): completes.
  protocol::AlohaOptions vogt;
  vogt.min_frame = 0;
  vogt.initial_frame = 16;
  const protocol::AlohaResult full = protocol::runAloha(40, rng, vogt);
  EXPECT_TRUE(full.completed);
  EXPECT_EQ(full.tags_identified, 40);
  EXPECT_LT(full.frames, 1000);
}

// --- Link replay: unit cost is the pre-link schedule ---------------------

TEST(LinkTiming, UnitLinkMatchesScheduleExactly) {
  core::System sys = test::smallRandomSystem(31);
  sched::HillClimbingScheduler ghc;
  const sched::McsResult res = sched::runCoveringSchedule(sys, ghc);
  ASSERT_TRUE(res.completed);

  protocol::LinkOptions lo;  // default: Link::kUnit
  const protocol::LinkTimingResult lt =
      protocol::timeScheduleLink(sys, res, lo, workload::Rng(1));
  EXPECT_EQ(lt.macro_slots, res.slots);
  EXPECT_EQ(lt.micro_slots, res.slots);  // one micro-slot per macro-slot
  EXPECT_EQ(lt.tags_read, res.tags_read);
  EXPECT_EQ(lt.air_us, 0);
  EXPECT_TRUE(lt.check_ok);
}

// The on_commit hook observes every committed slot without perturbing the
// schedule: hooked and unhooked runs are bit-identical, and the hook's
// totals reconcile with the result.
TEST(LinkTiming, McsCommitHookObservesWithoutPerturbing) {
  core::System a = test::smallRandomSystem(57);
  core::System b = test::smallRandomSystem(57);
  sched::HillClimbingScheduler ghc;

  const sched::McsResult plain = sched::runCoveringSchedule(a, ghc);

  int hook_slots = 0;
  int hook_tags = 0;
  sched::McsOptions opt;
  opt.on_commit = [&](int slot, std::span<const int> active,
                      std::span<const int> served) {
    EXPECT_EQ(slot, hook_slots);
    EXPECT_FALSE(active.empty());
    ++hook_slots;
    hook_tags += static_cast<int>(served.size());
  };
  sched::HillClimbingScheduler ghc2;
  const sched::McsResult hooked = sched::runCoveringSchedule(b, ghc2, opt);

  EXPECT_EQ(hooked.slots, plain.slots);
  EXPECT_EQ(hooked.tags_read, plain.tags_read);
  EXPECT_EQ(hook_slots, hooked.slots);
  EXPECT_EQ(hook_tags, hooked.tags_read);
}

TEST(LinkTiming, StreamingCommitHookSeesEveryBusySlot) {
  core::System sys = test::smallRandomSystem(58);
  sched::HillClimbingScheduler ghc;
  int hook_slots = 0;
  int hook_tags = 0;
  sched::StreamingOptions so;
  so.max_stall = 50;
  so.on_commit = [&](int slot, std::span<const int>,
                     std::span<const int> served) {
    EXPECT_EQ(slot, hook_slots);
    ++hook_slots;
    hook_tags += static_cast<int>(served.size());
  };
  const sched::StreamingResult res =
      sched::runStreamingMcs(sys, ghc, {}, so);
  EXPECT_EQ(hook_slots, res.slots);
  EXPECT_EQ(hook_tags, res.tags_read);
}

// --- Gen2 co-simulation on real schedules --------------------------------

TEST(LinkTiming, Gen2ReplayIdentifiesEveryScheduledTag) {
  for (const std::uint64_t seed : test::seedRange(3, test::iterBudget(4))) {
    core::System sys = test::smallRandomSystem(seed);
    sched::HillClimbingScheduler ghc;
    const sched::McsResult res = sched::runCoveringSchedule(sys, ghc);

    protocol::LinkOptions lo;
    lo.link = protocol::Link::kGen2;
    const protocol::LinkTimingResult lt =
        protocol::timeScheduleLink(sys, res, lo, workload::Rng(seed));
    EXPECT_TRUE(lt.check_ok) << lt.check_detail;
    EXPECT_EQ(lt.tags_read, res.tags_read);
    EXPECT_EQ(lt.macro_slots, res.slots);
    EXPECT_EQ(lt.double_identifications, 0);
    if (res.tags_read > 0) {
      EXPECT_GT(lt.air_us, 0);
    }
    EXPECT_GE(lt.air_us_serial, lt.air_us);
  }
}

// Seed-determinism across scheduler thread counts: the schedule is
// bit-identical at any --threads (the PR4 contract), and the link replay
// derives all randomness from (seed, slot, reader) — so the seconds
// objective is identical too.
TEST(LinkTiming, Gen2ReplayDeterministicAcrossThreadCounts) {
  const std::uint64_t seed = 77;
  auto run = [&](int threads) {
    core::System sys = test::smallRandomSystem(seed, 14, 90, 50.0);
    const graph::InterferenceGraph g(sys);
    sched::GrowthOptions go;
    go.num_threads = threads;
    sched::GrowthScheduler alg2(g, go);
    const sched::McsResult res = sched::runCoveringSchedule(sys, alg2);
    protocol::LinkOptions lo;
    lo.link = protocol::Link::kGen2;
    return protocol::timeScheduleLink(sys, res, lo, workload::Rng(seed));
  };
  const protocol::LinkTimingResult one = run(1);
  const protocol::LinkTimingResult four = run(4);
  EXPECT_EQ(one.air_us, four.air_us);
  EXPECT_EQ(one.air_us_serial, four.air_us_serial);
  EXPECT_EQ(one.micro_slots, four.micro_slots);
  EXPECT_EQ(one.tags_read, four.tags_read);
  EXPECT_EQ(one.frames, four.frames);
  EXPECT_EQ(one.session_skips, four.session_skips);
  EXPECT_TRUE(one.check_ok);
  EXPECT_TRUE(four.check_ok);
}

// Sessions matter end-to-end: under S0 every physically covered tag replies
// in every slot it is covered, under S2 the already-read ones stay silent —
// so S2 air-time is never more than S0's on the same schedule.
TEST(LinkTiming, S2NeverCostsMoreThanS0OnTheSameSchedule) {
  for (const std::uint64_t seed : test::seedRange(13, test::iterBudget(3))) {
    core::System sys = test::smallRandomSystem(seed);
    sched::HillClimbingScheduler ghc;
    const sched::McsResult res = sched::runCoveringSchedule(sys, ghc);

    auto time_with = [&](Gen2Session session) {
      protocol::LinkOptions lo;
      lo.link = protocol::Link::kGen2;
      lo.gen2.session = session;
      return protocol::timeScheduleLink(sys, res, lo, workload::Rng(seed));
    };
    const protocol::LinkTimingResult s0 = time_with(Gen2Session::kS0);
    const protocol::LinkTimingResult s2 = time_with(Gen2Session::kS2);
    EXPECT_TRUE(s0.check_ok) << s0.check_detail;
    EXPECT_TRUE(s2.check_ok) << s2.check_detail;
    EXPECT_LE(s2.air_us_serial, s0.air_us_serial);
    EXPECT_GE(s0.stale_repliers, s2.stale_repliers);
  }
}

TEST(LinkTiming, ParseAndNameRoundTrip) {
  protocol::Link l;
  EXPECT_TRUE(protocol::parseLink("unit", l));
  EXPECT_EQ(l, protocol::Link::kUnit);
  EXPECT_TRUE(protocol::parseLink("gen2", l));
  EXPECT_EQ(l, protocol::Link::kGen2);
  EXPECT_TRUE(protocol::parseLink("aloha", l));
  EXPECT_EQ(l, protocol::Link::kAloha);
  EXPECT_TRUE(protocol::parseLink("tree", l));
  EXPECT_EQ(l, protocol::Link::kTreeWalk);
  EXPECT_FALSE(protocol::parseLink("gen3", l));
  EXPECT_STREQ(protocol::linkName(protocol::Link::kGen2), "gen2");
}

}  // namespace
}  // namespace rfid
