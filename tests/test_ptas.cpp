// Algorithm 1 (PTAS) tests: feasibility, quality floors, multi-level radii,
// and behavior of the shifting machinery end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sched/exact.h"
#include "sched/ptas.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

TEST(Ptas, SolvesFigure2OptimallyWithK3) {
  const core::System sys = test::figure2System();
  // Figure 2's disks straddle the coarse k=2 grid lines (no single shift
  // keeps all three), so k=2 is only guaranteed (1−1/2)² of OPT.  k=3 has
  // a shift retaining every disk and must find the optimum {A, C}.
  PtasOptions opt;
  opt.k = 3;
  PtasScheduler ptas(opt);
  const OneShotResult res = ptas.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_EQ(res.weight, 4);
}

TEST(Ptas, Figure2WithK2StaysWithinTheorem2) {
  const core::System sys = test::figure2System();
  PtasScheduler ptas;  // k = 2
  const OneShotResult res = ptas.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  // (1−1/2)²·OPT = 1; the surviving shift {B, C} actually nets 3.
  EXPECT_GE(res.weight, 3);
  EXPECT_LE(res.weight, 4);
}

TEST(Ptas, ResultIsAlwaysFeasible) {
  for (const std::uint64_t seed : {3u, 7u, 11u, 15u, 19u}) {
    const core::System sys = test::smallRandomSystem(seed, 20, 150, 70.0);
    PtasScheduler ptas;
    const OneShotResult res = ptas.schedule(sys);
    EXPECT_TRUE(sys.isFeasible(res.readers)) << "seed " << seed;
    EXPECT_EQ(sys.weight(res.readers), res.weight);
  }
}

// At least one of the k² shifts keeps the best single reader alive, so the
// PTAS is never worse than the best singleton — the progress guarantee the
// MCS loop depends on.
TEST(Ptas, AtLeastBestSingleReader) {
  for (const std::uint64_t seed : {21u, 23u, 25u, 27u}) {
    const core::System sys = test::smallRandomSystem(seed, 18, 120);
    int best_single = 0;
    for (int v = 0; v < sys.numReaders(); ++v) {
      best_single = std::max(best_single, sys.singleWeight(v));
    }
    PtasScheduler ptas;
    EXPECT_GE(ptas.schedule(sys).weight, best_single) << "seed " << seed;
  }
}

TEST(Ptas, HandlesHeterogeneousRadiiLevels) {
  // Radii spanning ~30×: forces at least three levels with k = 2.
  std::vector<core::Reader> readers = {
      test::makeReader(10, 10, 30.0, 10.0),
      test::makeReader(70, 70, 8.0, 4.0),
      test::makeReader(30, 60, 2.0, 1.5),
      test::makeReader(60, 30, 1.0, 0.9),
      test::makeReader(90, 10, 15.0, 6.0),
  };
  // Sprinkle tags around every reader so each radius level has work to do.
  std::vector<core::Tag> tags;
  for (const core::Reader& r : readers) {
    for (int i = 0; i < 12; ++i) {
      const double ang = i * 0.524;
      const double rad = r.interrogation_radius * (0.2 + 0.06 * i);
      tags.push_back(test::makeTag(r.pos.x + rad * std::cos(ang),
                                   r.pos.y + rad * std::sin(ang)));
    }
  }
  const core::System sys(std::move(readers), std::move(tags));
  PtasScheduler ptas;
  const OneShotResult res = ptas.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_GT(res.weight, 0);
  EXPECT_GE(ptas.lastStats().levels, 3);
}

TEST(Ptas, StatsReportShifts) {
  const core::System sys = test::smallRandomSystem(31, 15, 90);
  PtasOptions opt;
  opt.k = 3;
  PtasScheduler ptas(opt);
  (void)ptas.schedule(sys);
  const auto& st = ptas.lastStats();
  EXPECT_GE(st.best_shift_r, 0);
  EXPECT_LT(st.best_shift_r, 3);
  EXPECT_GE(st.best_shift_s, 0);
  EXPECT_LT(st.best_shift_s, 3);
  EXPECT_GT(st.dp_entries, 0);
  EXPECT_GT(st.weight_evals, 0);
}

// Theorem 2 trend: larger k must not hurt much; we assert weak monotonicity
// in expectation by checking k=4 ≥ 0.9 × k=2 on a batch of instances
// (exact monotonicity per-instance is not guaranteed by the theorem).
TEST(Ptas, LargerKDoesNotDegrade) {
  double w2 = 0.0, w4 = 0.0;
  for (const std::uint64_t seed : {41u, 43u, 45u, 47u, 49u}) {
    const core::System sys = test::smallRandomSystem(seed, 16, 100);
    PtasOptions o2, o4;
    o2.k = 2;
    o4.k = 4;
    PtasScheduler p2(o2), p4(o4);
    w2 += p2.schedule(sys).weight;
    w4 += p4.schedule(sys).weight;
  }
  EXPECT_GE(w4, 0.9 * w2);
}

TEST(Ptas, RespectsReadState) {
  core::System sys = test::figure2System();
  sys.markRead(std::vector<int>{0, 1});
  PtasScheduler ptas;
  const OneShotResult res = ptas.schedule(sys);
  // Same situation as the exact test: best achievable is 2.
  EXPECT_EQ(res.weight, 2);
}

TEST(Ptas, EmptyAndDegenerateSystems) {
  {
    const core::System sys({}, {});
    PtasScheduler ptas;
    const OneShotResult res = ptas.schedule(sys);
    EXPECT_TRUE(res.readers.empty());
  }
  {
    // One reader, one tag.
    const core::System sys({test::makeReader(5, 5, 4.0, 2.0)},
                           {test::makeTag(5, 6)});
    PtasScheduler ptas;
    const OneShotResult res = ptas.schedule(sys);
    EXPECT_EQ(res.readers, (std::vector<int>{0}));
    EXPECT_EQ(res.weight, 1);
  }
}

// Empirical Theorem 2: PTAS with k=3 reaches a healthy fraction of the true
// optimum on exactly solvable instances.  The paper proves (1−1/k)² ≥ 0.44
// for k=3 as a worst case; typical instances do far better — assert 0.75
// on the batch average.
TEST(Ptas, NearOptimalOnSmallInstances) {
  double ptas_total = 0.0, opt_total = 0.0;
  for (const std::uint64_t seed : {61u, 62u, 63u, 64u, 65u, 66u}) {
    const core::System sys = test::smallRandomSystem(seed, 12, 90);
    PtasOptions opt;
    opt.k = 3;
    PtasScheduler ptas(opt);
    ExactScheduler exact;
    ptas_total += ptas.schedule(sys).weight;
    opt_total += exact.schedule(sys).weight;
  }
  ASSERT_GT(opt_total, 0.0);
  EXPECT_GE(ptas_total / opt_total, 0.75);
}

}  // namespace
}  // namespace rfid::sched
namespace rfid::sched {
namespace {

TEST(PtasPromotion, K2FindsFigure2OptimumViaVirtualRoot) {
  // With k = 2 no single shift keeps all three disks as survivors, but the
  // default promotion mode re-homes the crossing disks at the virtual root
  // and still reaches the optimum.
  const core::System sys = test::figure2System();
  PtasOptions opt;
  opt.k = 2;
  PtasScheduler ptas(opt);
  EXPECT_EQ(ptas.schedule(sys).weight, 4);
}

TEST(PtasPromotion, StrictModeMatchesSectionIVSemantics) {
  const core::System sys = test::figure2System();
  PtasOptions opt;
  opt.k = 2;
  opt.strict_survive = true;
  PtasScheduler strict(opt);
  const OneShotResult res = strict.schedule(sys);
  // The best shift keeps {B, C} (weight 3); Theorem 2's floor is
  // (1-1/2)^2 * 4 = 1.
  EXPECT_GE(res.weight, 1);
  EXPECT_LE(res.weight, 3);
}

TEST(PtasPromotion, NeverWorseThanStrictOnBatch) {
  double promote_total = 0.0, strict_total = 0.0;
  for (const std::uint64_t seed : {71u, 72u, 73u, 74u, 75u, 76u}) {
    const core::System sys = test::smallRandomSystem(seed, 18, 120);
    PtasOptions promote, strict;
    strict.strict_survive = true;
    PtasScheduler a(promote), b(strict);
    promote_total += a.schedule(sys).weight;
    strict_total += b.schedule(sys).weight;
  }
  EXPECT_GE(promote_total, strict_total);
}

TEST(PtasPromotion, PromotedResultsStayFeasible) {
  // Radii chosen so the big disk must promote past level-0 squares.
  std::vector<core::Reader> readers = {
      test::makeReader(50, 50, 40.0, 16.0),  // spans multiple 0-squares
      test::makeReader(10, 10, 4.0, 2.0),
      test::makeReader(90, 90, 4.0, 2.0),
      test::makeReader(90, 10, 4.0, 2.0),
  };
  std::vector<core::Tag> tags;
  for (const core::Reader& r : readers) {
    tags.push_back(test::makeTag(r.pos.x + 1.0, r.pos.y));
    tags.push_back(test::makeTag(r.pos.x - 1.0, r.pos.y));
  }
  const core::System sys(std::move(readers), std::move(tags));
  PtasScheduler ptas;
  const OneShotResult res = ptas.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_GT(res.weight, 0);
}

}  // namespace
}  // namespace rfid::sched
