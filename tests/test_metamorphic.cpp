// test_metamorphic.cpp — metamorphic properties of the schedulers
// (src/check/metamorphic.h, docs/testing.md).
//
// No oracle knows the optimal covering schedule of a random deployment, but
// transformations with known effect pin the implementations down anyway:
// relabeling must move nothing but indices, a rigid motion must move
// nothing at all (quarter turns and mirrors are exact in doubles), a tag
// outside every interrogation disk must be inert, and shrinking every γ
// (the β-monotonicity direction) can only lose coverage.  Heuristic
// tie-breaking is index-dependent, so the permutation property is asserted
// at the referee level (weights, feasibility, served sets) and for
// label-free run totals — never for slot-by-slot heuristic trajectories.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/invariants.h"
#include "check/metamorphic.h"
#include "graph/interference_graph.h"
#include "sched/exact.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "test_helpers.h"
#include "workload/rng.h"

namespace rfid {
namespace {

/// Runs a validated MCS to completion with a fresh scheduler of type S.
template <typename S, typename... Args>
sched::McsResult validatedMcs(core::System& sys, Args&&... args) {
  S s(std::forward<Args>(args)...);
  check::ScheduleValidator val;
  sched::McsOptions opt;
  opt.validator = &val;
  const sched::McsResult res = sched::runCoveringSchedule(sys, s, opt);
  EXPECT_TRUE(val.ok()) << "validator flagged a transformed run";
  return res;
}

// ---- relabeling: a bijection on indices and nothing else ----

TEST(Metamorphic, PermutationPreservesRefereeSemantics) {
  for (const std::uint64_t seed : test::seedRange(600, test::iterBudget(5))) {
    core::System sys = test::smallRandomSystem(seed, 12, 80, 45.0);
    const check::Permuted p = check::permuteSystem(sys, seed ^ 0xabcd);
    // Inverse maps: old index -> new index.
    std::vector<int> new_reader(p.reader_of.size());
    std::vector<int> new_tag(p.tag_of.size());
    for (std::size_t i = 0; i < p.reader_of.size(); ++i) {
      new_reader[static_cast<std::size_t>(p.reader_of[i])] = static_cast<int>(i);
    }
    for (std::size_t i = 0; i < p.tag_of.size(); ++i) {
      new_tag[static_cast<std::size_t>(p.tag_of[i])] = static_cast<int>(i);
    }

    workload::Rng rng(seed);
    for (int trial = 0; trial < 8; ++trial) {
      // A random subset of readers, mapped through the permutation.
      std::vector<int> X;
      std::vector<int> mapped;
      for (int v = 0; v < sys.numReaders(); ++v) {
        if (rng.uniformInt(0, 2) == 0) {
          X.push_back(v);
          mapped.push_back(new_reader[static_cast<std::size_t>(v)]);
        }
      }
      std::sort(mapped.begin(), mapped.end());
      EXPECT_EQ(sys.isFeasible(X), p.sys.isFeasible(mapped));
      EXPECT_EQ(sys.weight(X), p.sys.weight(mapped));
      // Served sets map tag-for-tag.
      std::vector<int> served = sys.wellCoveredTags(X);
      for (int& t : served) t = new_tag[static_cast<std::size_t>(t)];
      std::sort(served.begin(), served.end());
      EXPECT_EQ(served, p.sys.wellCoveredTags(mapped));
    }
  }
}

TEST(Metamorphic, PermutationPreservesOptimalWeight) {
  for (const std::uint64_t seed : test::seedRange(620, test::iterBudget(3))) {
    core::System sys = test::smallRandomSystem(seed, 9, 50, 38.0);
    const check::Permuted p = check::permuteSystem(sys, seed ^ 0x5eed);
    sched::ExactScheduler a;
    sched::ExactScheduler b;
    EXPECT_EQ(a.schedule(sys).weight, b.schedule(p.sys).weight);
  }
}

TEST(Metamorphic, PermutationPreservesMcsTotals) {
  for (const std::uint64_t seed : test::seedRange(640, test::iterBudget(4))) {
    core::System sys = test::smallRandomSystem(seed, 12, 90, 45.0);
    const check::Permuted p = check::permuteSystem(sys, seed ^ 0x77);
    core::System per = p.sys;  // runs consume the read-state
    const sched::McsResult a = validatedMcs<sched::HillClimbingScheduler>(sys);
    const sched::McsResult b = validatedMcs<sched::HillClimbingScheduler>(per);
    // Totals are label-free; slot counts are tie-break-dependent and not
    // asserted (see the header comment).
    EXPECT_TRUE(a.completed);
    EXPECT_TRUE(b.completed);
    EXPECT_EQ(a.tags_read, b.tags_read);
    EXPECT_EQ(a.uncoverable, b.uncoverable);
  }
}

// ---- rigid motion: exact transforms give bit-identical schedules ----

TEST(Metamorphic, QuarterTurnAndMirrorGiveBitIdenticalSchedules) {
  for (const std::uint64_t seed : test::seedRange(660, test::iterBudget(4))) {
    core::System sys = test::smallRandomSystem(seed, 14, 100, 48.0);
    for (const int turns : {1, 2, 3}) {
      for (const bool mirror : {false, true}) {
        check::RigidMotion m;
        m.quarter_turns = turns;
        m.mirror = mirror;
        core::System moved = check::transformSystem(sys, m);
        core::System base = sys;  // fresh copy, read-state consumed per run
        const sched::McsResult a =
            validatedMcs<sched::HillClimbingScheduler>(base);
        const sched::McsResult b =
            validatedMcs<sched::HillClimbingScheduler>(moved);
        ASSERT_EQ(a.slots, b.slots) << "turns " << turns << " mirror " << mirror;
        EXPECT_EQ(a.tags_read, b.tags_read);
        EXPECT_EQ(a.uncoverable, b.uncoverable);
        ASSERT_EQ(a.schedule.size(), b.schedule.size());
        for (std::size_t i = 0; i < a.schedule.size(); ++i) {
          EXPECT_EQ(a.schedule[i].active, b.schedule[i].active) << "slot " << i;
          EXPECT_EQ(a.schedule[i].tags_read, b.schedule[i].tags_read);
        }
      }
    }
  }
}

TEST(Metamorphic, TranslationPreservesCensusWithMargins) {
  // Translation rounds coordinates, so bit-identity is off the table; on
  // the Figure 2 instance every coverage/independence margin is ≫ any
  // rounding error, so the census must survive an awkward offset.
  core::System sys = test::figure2System();
  check::RigidMotion m;
  m.translate = {137.25, -41.75};
  core::System moved = check::transformSystem(sys, m);
  EXPECT_EQ(sys.unreadCoverableCount(), moved.unreadCoverableCount());
  for (int v = 0; v < sys.numReaders(); ++v) {
    EXPECT_EQ(sys.singleWeight(v), moved.singleWeight(v)) << "reader " << v;
  }
  const sched::McsResult a = validatedMcs<sched::HillClimbingScheduler>(sys);
  const sched::McsResult b = validatedMcs<sched::HillClimbingScheduler>(moved);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.tags_read, b.tags_read);
}

// ---- an uncovered tag is inert ----

TEST(Metamorphic, AddingUncoveredTagChangesNothingButUncoverable) {
  for (const std::uint64_t seed : test::seedRange(680, test::iterBudget(4))) {
    core::System sys = test::smallRandomSystem(seed, 12, 80, 45.0);
    core::System grown = check::withUncoveredTag(sys);
    ASSERT_EQ(grown.numTags(), sys.numTags() + 1);
    EXPECT_TRUE(grown.coverers(sys.numTags()).empty())
        << "the stray tag must sit outside every interrogation disk";
    core::System base = sys;
    const graph::InterferenceGraph ga(base);
    const graph::InterferenceGraph gb(grown);
    const sched::McsResult a = validatedMcs<sched::GrowthScheduler>(base, ga);
    const sched::McsResult b = validatedMcs<sched::GrowthScheduler>(grown, gb);
    EXPECT_EQ(a.tags_read, b.tags_read);
    EXPECT_EQ(a.uncoverable + 1, b.uncoverable);
    EXPECT_EQ(a.completed, b.completed);
    ASSERT_EQ(a.slots, b.slots);
    for (std::size_t i = 0; i < a.schedule.size(); ++i) {
      EXPECT_EQ(a.schedule[i].active, b.schedule[i].active) << "slot " << i;
    }
  }
}

// ---- β-monotonicity: shrinking γ can only lose coverage ----

TEST(Metamorphic, ShrinkingInterrogationRadiiIsMonotone) {
  for (const std::uint64_t seed : test::seedRange(700, test::iterBudget(4))) {
    core::System sys = test::smallRandomSystem(seed, 14, 110, 48.0);
    core::System shrunk = check::withInterrogationScaled(sys, 0.7);

    // Coverable-set nesting: anything the shrunk system can cover, the
    // original can.  (Per-set w(X) is deliberately NOT asserted — RRc
    // makes it non-monotone in γ.)
    for (int t = 0; t < sys.numTags(); ++t) {
      if (!shrunk.coverers(t).empty()) {
        EXPECT_FALSE(sys.coverers(t).empty()) << "tag " << t;
      }
    }
    EXPECT_LE(shrunk.unreadCoverableCount(), sys.unreadCoverableCount());
    for (int v = 0; v < sys.numReaders(); ++v) {
      EXPECT_LE(shrunk.singleWeight(v), sys.singleWeight(v)) << "reader " << v;
    }

    // Completed-run totals follow the coverable census.
    const sched::McsResult a = validatedMcs<sched::HillClimbingScheduler>(sys);
    const sched::McsResult b =
        validatedMcs<sched::HillClimbingScheduler>(shrunk);
    EXPECT_TRUE(a.completed);
    EXPECT_TRUE(b.completed);
    EXPECT_LE(b.tags_read, a.tags_read);
    EXPECT_GE(b.uncoverable, a.uncoverable);
  }
}

TEST(Metamorphic, RandomPermutationIsABijection) {
  for (const int n : {0, 1, 7, 64}) {
    const std::vector<int> p = check::randomPermutation(n, 99);
    ASSERT_EQ(static_cast<int>(p.size()), n);
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    for (const int i : p) {
      ASSERT_GE(i, 0);
      ASSERT_LT(i, n);
      ASSERT_EQ(seen[static_cast<std::size_t>(i)], 0);
      seen[static_cast<std::size_t>(i)] = 1;
    }
  }
}

}  // namespace
}  // namespace rfid
