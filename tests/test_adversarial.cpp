// Adversarial instances: constructions where the baselines' failure modes
// are not sampling noise but structural — the sharpened version of the
// paper's Figure-2 motivation, plus the pruning overlay's behavior.
#include <gtest/gtest.h>

#include "sched/exact.h"
#include "sched/hill_climbing.h"
#include "sched/pruning.h"
#include "sched/ptas.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

/// A "GHC trap" triple at x-offset `ox`: readers A, B, C in a row, pairwise
/// independent, with m tags in each of the A∩B and B∩C interrogation
/// overlaps, one tag exclusive to B, and p exclusive tags for each of A, C.
/// With p < m+1, GHC picks B first (weight 2m+1) and then finds A and C
/// worth p − m < 0 marginal, stopping at 2m+1; the optimum {A, C} nets
/// 2(m+p).  At m = 10, p = 10 the per-triple ratio is 21/40.
void addTrap(std::vector<core::Reader>& readers, std::vector<core::Tag>& tags,
             double ox, int m, int p) {
  const double R = 10.0, gamma = 6.0;
  readers.push_back(test::makeReader(ox, 0.0, R, gamma));         // A
  readers.push_back(test::makeReader(ox + 10.5, 0.0, R, gamma));  // B
  readers.push_back(test::makeReader(ox + 21.0, 0.0, R, gamma));  // C
  for (int i = 0; i < m; ++i) {
    const double dy = 0.02 * i;
    tags.push_back(test::makeTag(ox + 5.25, dy));   // A∩B
    tags.push_back(test::makeTag(ox + 15.75, dy));  // B∩C
  }
  tags.push_back(test::makeTag(ox + 10.5, 3.0));  // exclusive to B
  for (int i = 0; i < p; ++i) {
    tags.push_back(test::makeTag(ox - 4.0, 0.02 * i));   // exclusive to A
    tags.push_back(test::makeTag(ox + 25.0, 0.02 * i));  // exclusive to C
  }
}

core::System trapChain(int triples, int m = 10, int p = 10) {
  std::vector<core::Reader> readers;
  std::vector<core::Tag> tags;
  for (int i = 0; i < triples; ++i) {
    // 60 units apart: triples are mutually independent and overlap-free.
    addTrap(readers, tags, i * 60.0, m, p);
  }
  return core::System(std::move(readers), std::move(tags));
}

TEST(Adversarial, SingleTrapRatios) {
  const core::System sys = trapChain(1);
  HillClimbingScheduler ghc;
  ExactScheduler exact;
  const int ghc_w = ghc.schedule(sys).weight;
  const int opt_w = exact.schedule(sys).weight;
  EXPECT_EQ(ghc_w, 21);  // B alone: 2m+1
  EXPECT_EQ(opt_w, 40);  // {A, C}: 2(m+p)
}

TEST(Adversarial, PtasEscapesTheTrap) {
  const core::System sys = trapChain(1);
  PtasOptions opt;
  opt.k = 3;  // a shift keeping all three disks exists (cf. Figure-2 tests)
  PtasScheduler ptas(opt);
  EXPECT_EQ(ptas.schedule(sys).weight, 40);
}

TEST(Adversarial, TrapChainScalesTheGap) {
  const core::System sys = trapChain(4);
  HillClimbingScheduler ghc;
  ExactScheduler exact;
  const int ghc_w = ghc.schedule(sys).weight;
  const int opt_w = exact.schedule(sys).weight;
  EXPECT_EQ(ghc_w, 4 * 21);
  EXPECT_EQ(opt_w, 4 * 40);
  // The structural ratio: 52.5% of the optimum, far below anything random
  // deployments show — this is what "no performance guarantee" means.
  EXPECT_NEAR(static_cast<double>(ghc_w) / opt_w, 0.525, 1e-9);
}

TEST(Adversarial, DeeperTrapsApproachHalf) {
  // m → ∞ with p = m drives GHC/OPT → (2m+1)/(4m) → 1/2.
  const core::System sys = trapChain(1, 40, 40);
  HillClimbingScheduler ghc;
  ExactScheduler exact;
  const double ratio = static_cast<double>(ghc.schedule(sys).weight) /
                       exact.schedule(sys).weight;
  EXPECT_LT(ratio, 0.52);
  EXPECT_GT(ratio, 0.50);
}

TEST(Adversarial, PruningCannotFixStructure) {
  // Pruning GHC's own proposal changes nothing here (its pick is already
  // marginal-positive); the trap is structural, not noise.
  const core::System sys = trapChain(2);
  PruningWrapper pruned(std::make_unique<HillClimbingScheduler>());
  HillClimbingScheduler plain;
  EXPECT_EQ(pruned.schedule(sys).weight, plain.schedule(sys).weight);
}

TEST(Pruning, KeepsOnlyPositiveMarginals) {
  // A proposal with a useless reader: pruning drops it.
  const core::System sys = test::figure2System();
  // Inner scheduler proposing everything:
  class All final : public OneShotScheduler {
   public:
    std::string name() const override { return "All"; }
    OneShotResult schedule(const core::System& s) override {
      std::vector<int> x;
      for (int v = 0; v < s.numReaders(); ++v) x.push_back(v);
      return {x, s.weight(x)};
    }
  };
  PruningWrapper pruned(std::make_unique<All>());
  const OneShotResult res = pruned.schedule(sys);
  // Greedy within {A,B,C} picks B (3), then A and C are zero-marginal.
  EXPECT_EQ(res.readers, (std::vector<int>{1}));
  EXPECT_EQ(res.weight, 3);
  EXPECT_EQ(pruned.name(), "All+prune");
}

TEST(Pruning, NeverWorseThanInnerOnBatch) {
  double inner_total = 0, pruned_total = 0;
  for (const std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    const core::System sys = test::smallRandomSystem(seed, 20, 130, 50.0);
    HillClimbingScheduler plain;
    PruningWrapper pruned(std::make_unique<HillClimbingScheduler>());
    inner_total += plain.schedule(sys).weight;
    pruned_total += pruned.schedule(sys).weight;
  }
  EXPECT_GE(pruned_total, inner_total * 0.999);
}

}  // namespace
}  // namespace rfid::sched
