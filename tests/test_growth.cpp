// Algorithm 2 tests: growth-bounded centralized scheduling without
// locations — feasibility, the ρ stop rule, removal semantics, Theorem 4.
#include <gtest/gtest.h>

#include "graph/interference_graph.h"
#include "sched/exact.h"
#include "sched/growth.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

TEST(Growth, Figure2ShowsLocationFreeBlindSpot) {
  const core::System sys = test::figure2System();
  const graph::InterferenceGraph g(sys);
  // Figure 2's readers are pairwise independent → the interference graph is
  // empty → every neighborhood is a singleton, so Algorithm 2 cannot weigh
  // A, B, C jointly.  It picks B (weight 3); A and C then have zero
  // *marginal* value (each gains one exclusive tag but cancels one of B's
  // through RRc), so it stops at {B} with weight 3 — one short of the
  // PTAS's 4.  The price of dropping location information (Figures 8/9).
  GrowthScheduler alg2(g);
  const OneShotResult res = alg2.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_EQ(res.readers, (std::vector<int>{1}));
  EXPECT_EQ(res.weight, 3);
}

TEST(Growth, FeasibleOnRandomInstances) {
  for (const std::uint64_t seed : {2u, 6u, 10u, 14u, 18u}) {
    const core::System sys = test::smallRandomSystem(seed, 25, 150, 70.0);
    const graph::InterferenceGraph g(sys);
    GrowthScheduler alg2(g);
    const OneShotResult res = alg2.schedule(sys);
    EXPECT_TRUE(sys.isFeasible(res.readers)) << "seed " << seed;
    EXPECT_EQ(sys.weight(res.readers), res.weight);
    EXPECT_GT(res.weight, 0);
  }
}

// Theorem 4: w(X) ≥ w(OPT)/ρ.  Verified exactly on small instances.
class GrowthApproximation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrowthApproximation, MeetsTheorem4Bound) {
  const core::System sys = test::smallRandomSystem(GetParam(), 12, 90);
  const graph::InterferenceGraph g(sys);
  GrowthOptions opt;
  opt.rho = 1.5;
  GrowthScheduler alg2(g, opt);
  ExactScheduler exact;
  const int got = alg2.schedule(sys).weight;
  const int best = exact.schedule(sys).weight;
  EXPECT_GE(static_cast<double>(got) + 1e-9,
            static_cast<double>(best) / opt.rho)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrowthApproximation,
                         ::testing::Range<std::uint64_t>(200, 212));

TEST(Growth, TighterRhoImprovesOrEquals) {
  double loose_total = 0.0, tight_total = 0.0;
  for (const std::uint64_t seed : {51u, 53u, 55u, 57u}) {
    const core::System sys = test::smallRandomSystem(seed, 20, 120);
    const graph::InterferenceGraph g(sys);
    GrowthOptions loose, tight;
    loose.rho = 2.0;
    tight.rho = 1.05;
    GrowthScheduler a(g, loose), b(g, tight);
    loose_total += a.schedule(sys).weight;
    tight_total += b.schedule(sys).weight;
  }
  // Smaller ρ grows neighborhoods further → at least as good on average.
  EXPECT_GE(tight_total, loose_total * 0.95);
}

TEST(Growth, StatsTrackPicksAndRadius) {
  const core::System sys = test::smallRandomSystem(77, 30, 200, 60.0);
  const graph::InterferenceGraph g(sys);
  GrowthScheduler alg2(g);
  (void)alg2.schedule(sys);
  const auto& st = alg2.lastStats();
  EXPECT_GT(st.picks, 0);
  EXPECT_GE(st.max_rbar, 0);
  EXPECT_LE(st.max_rbar, GrowthOptions{}.hop_cap);
}

TEST(Growth, StopsWhenNoTagRemains) {
  core::System sys = test::figure2System();
  for (int t = 0; t < sys.numTags(); ++t) sys.markRead(t);
  const graph::InterferenceGraph g(sys);
  GrowthScheduler alg2(g);
  const OneShotResult res = alg2.schedule(sys);
  EXPECT_TRUE(res.readers.empty());
  EXPECT_EQ(res.weight, 0);
}

TEST(Growth, HopCapLimitsNeighborhoodGrowth) {
  const core::System sys = test::smallRandomSystem(88, 40, 150, 50.0);
  const graph::InterferenceGraph g(sys);
  GrowthOptions opt;
  opt.hop_cap = 1;
  GrowthScheduler alg2(g, opt);
  (void)alg2.schedule(sys);
  EXPECT_LE(alg2.lastStats().max_rbar, 1);
}

// The ρ stop rule is scale-free: with an enormous ρ the algorithm reduces
// to independent singleton picks (Γ stays {v} whenever the 1-hop MWFS fails
// to beat ρ·w(v)).
TEST(Growth, HugeRhoDegeneratesToSingletons) {
  const core::System sys = test::smallRandomSystem(99, 20, 120);
  const graph::InterferenceGraph g(sys);
  GrowthOptions opt;
  opt.rho = 1e9;
  GrowthScheduler alg2(g, opt);
  const OneShotResult res = alg2.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_EQ(alg2.lastStats().max_rbar, 0);
  EXPECT_GT(res.weight, 0);
}

}  // namespace
}  // namespace rfid::sched
