// Unit tests for the scheduler-as-a-service layer (src/service/):
// the wire-protocol parser (the daemon's trust boundary), the bounded
// admission queue with its shed policies, the completion Ticket, and the
// Service itself end to end — completion, deadline and stall watchdogs,
// retry, backpressure, and graceful drain.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "service/queue.h"
#include "service/request.h"
#include "service/service.h"

namespace rfid::service {
namespace {

using Item = RequestStreamParser::Item;

/// Parses exactly one item out of `text`.
Item parseOne(const std::string& text, RequestSpec* spec, Response* err) {
  std::istringstream in(text);
  RequestStreamParser p(in);
  return p.next(spec, err);
}

// ---- protocol parser: happy paths ----

TEST(ServiceParser, MinimalSpecYieldsCliDefaults) {
  RequestSpec spec;
  Response err;
  ASSERT_EQ(parseOne("request r1\nend\n", &spec, &err), Item::kRequest);
  EXPECT_EQ(spec.id, "r1");
  EXPECT_EQ(spec.algo, "alg2");
  EXPECT_EQ(spec.layout, "uniform");
  EXPECT_EQ(spec.readers, 50);
  EXPECT_EQ(spec.tags, 1200);
  EXPECT_EQ(spec.retries, -1);
  EXPECT_TRUE(spec.checkpoint);
  EXPECT_FALSE(spec.has_faults);
}

TEST(ServiceParser, FullSpecRoundTrips) {
  const std::string text =
      "# a comment, then a blank line\n"
      "\n"
      "request job-7.a_b\n"
      "algo alg1\n"
      "layout clusters\n"
      "readers 12\n"
      "tags 60\n"
      "side 50.5\n"
      "lambda-R 9\n"
      "lambda-r 3\n"
      "seed 42\n"
      "rho 1.5\n"
      "k 3\n"
      "channels 4\n"
      "deadline-ms 2500\n"
      "max-slots 7\n"
      "retries 2\n"
      "checkpoint off\n"
      "hang-ms 10\n"
      "pace-ms 20\n"
      "end\n";
  RequestSpec spec;
  Response err;
  ASSERT_EQ(parseOne(text, &spec, &err), Item::kRequest);
  EXPECT_EQ(spec.id, "job-7.a_b");
  EXPECT_EQ(spec.algo, "alg1");
  EXPECT_EQ(spec.layout, "clusters");
  EXPECT_EQ(spec.readers, 12);
  EXPECT_EQ(spec.tags, 60);
  EXPECT_DOUBLE_EQ(spec.side, 50.5);
  EXPECT_DOUBLE_EQ(spec.lambda_R, 9.0);
  EXPECT_DOUBLE_EQ(spec.lambda_r, 3.0);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.rho, 1.5);
  EXPECT_EQ(spec.k, 3);
  EXPECT_EQ(spec.channels, 4);
  EXPECT_EQ(spec.deadline_ms, 2500);
  EXPECT_EQ(spec.max_slots, 7);
  EXPECT_EQ(spec.retries, 2);
  EXPECT_FALSE(spec.checkpoint);
  EXPECT_EQ(spec.hang_ms, 10);
  EXPECT_EQ(spec.pace_ms, 20);
  EXPECT_EQ(spec.sizeUnits(), 12 * 61);
}

TEST(ServiceParser, InlineFaultBlockParses) {
  const std::string text =
      "request faulty\n"
      "fault-begin\n"
      "seed 9\n"
      "crash 0 1 3\n"
      "miss 0.25\n"
      "fault-end\n"
      "end\n";
  RequestSpec spec;
  Response err;
  ASSERT_EQ(parseOne(text, &spec, &err), Item::kRequest);
  EXPECT_TRUE(spec.has_faults);
  EXPECT_FALSE(spec.faults.empty());
}

TEST(ServiceParser, StreamYieldsRequestsInOrder) {
  std::istringstream in(
      "request a\nend\nrequest b\nreaders 5\nend\nrequest c\nend\n");
  RequestStreamParser p(in);
  RequestSpec spec;
  Response err;
  std::vector<std::string> ids;
  while (p.next(&spec, &err) == Item::kRequest) ids.push_back(spec.id);
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(p.parsed(), 3);
  EXPECT_EQ(p.errors(), 0);
}

// ---- protocol parser: fail-closed paths ----

TEST(ServiceParser, RejectsInvalidRequestIds) {
  RequestSpec spec;
  Response err;
  ASSERT_EQ(parseOne("request bad id\nend\n", &spec, &err), Item::kError);
  EXPECT_EQ(err.status, Status::kRejected);
  EXPECT_EQ(err.code, Code::kParse);

  ASSERT_EQ(parseOne("request\nend\n", &spec, &err), Item::kError);
  EXPECT_EQ(err.code, Code::kParse);

  const std::string long_id(kMaxIdLen + 1, 'x');
  ASSERT_EQ(parseOne("request " + long_id + "\nend\n", &spec, &err),
            Item::kError);
  EXPECT_EQ(err.code, Code::kParse);
}

TEST(ServiceParser, RejectsUnknownAndOutOfRangeValues) {
  RequestSpec spec;
  Response err;
  const struct {
    const char* line;
  } cases[] = {
      {"algo quantum"},        {"layout donut"},
      {"readers 0"},           {"readers 20001"},
      {"tags -1"},             {"tags 500001"},
      {"side 0"},              {"side nan"},
      {"rho 1.0"},             {"rho 17"},
      {"k 1"},                 {"channels 65"},
      {"seed -3"},             {"deadline-ms -1"},
      {"retries 11"},          {"checkpoint maybe"},
      {"hang-ms 600001"},      {"pace-ms -5"},
      {"bogus-key 1"},         {"readers 1e3"},
  };
  for (const auto& c : cases) {
    const std::string text =
        std::string("request r\n") + c.line + "\nend\n";
    ASSERT_EQ(parseOne(text, &spec, &err), Item::kError) << c.line;
    EXPECT_EQ(err.status, Status::kRejected) << c.line;
    EXPECT_EQ(err.code, Code::kBadValue) << c.line;
    EXPECT_EQ(err.id, "r") << c.line;  // id survives into the rejection
    EXPECT_FALSE(err.detail.empty()) << c.line;
  }
}

TEST(ServiceParser, ResyncsToNextRequestAfterAnError) {
  // One hostile request must not poison the request behind it.
  std::istringstream in(
      "request bad\nreaders zero\nextra junk\nend\nrequest good\nend\n");
  RequestStreamParser p(in);
  RequestSpec spec;
  Response err;
  ASSERT_EQ(p.next(&spec, &err), Item::kError);
  EXPECT_EQ(err.code, Code::kBadValue);
  ASSERT_EQ(p.next(&spec, &err), Item::kRequest);
  EXPECT_EQ(spec.id, "good");
  ASSERT_EQ(p.next(&spec, &err), Item::kEof);
}

TEST(ServiceParser, TruncatedStreamFailsClosed) {
  RequestSpec spec;
  Response err;
  ASSERT_EQ(parseOne("request r\nreaders 5\n", &spec, &err), Item::kError);
  EXPECT_EQ(err.code, Code::kTruncated);
  ASSERT_EQ(parseOne("request r\nfault-begin\nmiss 0.5\n", &spec, &err),
            Item::kError);
  EXPECT_EQ(err.code, Code::kTruncated);
}

TEST(ServiceParser, EnforcesSizeLimits) {
  RequestSpec spec;
  Response err;

  // A line over kMaxLineLen is consumed but never stored.
  const std::string huge(kMaxLineLen + 10, 'a');
  ASSERT_EQ(parseOne("request r\n" + huge + "\nend\n", &spec, &err),
            Item::kError);
  EXPECT_EQ(err.code, Code::kTooLarge);

  // Too many body lines (comments count — the limit is on consumed input).
  std::string many = "request r\n";
  for (int i = 0; i < kMaxRequestLines + 1; ++i) many += "# filler\n";
  many += "end\n";
  ASSERT_EQ(parseOne(many, &spec, &err), Item::kError);
  EXPECT_EQ(err.code, Code::kTooLarge);

  // Oversized fault block.
  std::string fb = "request r\nfault-begin\n";
  for (int i = 0; i < kMaxFaultLines + 1; ++i) fb += "miss 0.1\n";
  fb += "fault-end\nend\n";
  ASSERT_EQ(parseOne(fb, &spec, &err), Item::kError);
  EXPECT_EQ(err.code, Code::kTooLarge);
}

TEST(ServiceParser, NestedRequestIsAParseError) {
  RequestSpec spec;
  Response err;
  ASSERT_EQ(parseOne("request a\nrequest b\nend\n", &spec, &err),
            Item::kError);
  EXPECT_EQ(err.code, Code::kParse);
}

TEST(ServiceParser, RetryableCoversExactlyTransientCodes) {
  EXPECT_TRUE(retryable(Code::kStalled));
  EXPECT_TRUE(retryable(Code::kIntegrity));
  EXPECT_FALSE(retryable(Code::kNone));
  EXPECT_FALSE(retryable(Code::kParse));
  EXPECT_FALSE(retryable(Code::kQueueFull));
  EXPECT_FALSE(retryable(Code::kDeadline));
  EXPECT_FALSE(retryable(Code::kDraining));
  EXPECT_FALSE(retryable(Code::kInternal));
}

TEST(ServiceParser, ResponseJsonIsDeterministicAndEscaped) {
  Response r;
  r.id = "job\"1";
  r.status = Status::kCancelled;
  r.code = Code::kStalled;
  r.detail = "line1\nline2";
  r.attempts = 2;
  r.slots = 5;
  r.tags_read = 40;
  r.resumable = true;
  r.queue_wait_ms = 1.5;
  r.latency_ms = 9.25;
  std::ostringstream os;
  r.writeJson(os, /*mask_wall=*/false);
  EXPECT_EQ(os.str(),
            "{\"id\":\"job\\\"1\",\"status\":\"cancelled\","
            "\"code\":\"stalled\",\"detail\":\"line1\\nline2\","
            "\"attempts\":2,\"slots\":5,\"tags_read\":40,"
            "\"completed\":false,\"resumable\":true,\"retry_after_ms\":0,"
            "\"queue_wait_ms\":1.5,\"latency_ms\":9.25}");

  std::ostringstream masked;
  r.writeJson(masked, /*mask_wall=*/true);
  EXPECT_NE(masked.str().find("\"queue_wait_ms\":0,\"latency_ms\":0"),
            std::string::npos);
}

// ---- ticket ----

TEST(ServiceTicket, CompleteIsIdempotentFirstWriterWins) {
  Ticket t;
  EXPECT_FALSE(t.done());
  Response first;
  first.id = "x";
  first.status = Status::kOk;
  t.complete(first);
  Response second;
  second.id = "x";
  second.status = Status::kCancelled;  // a drain bounce racing the worker
  t.complete(second);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(t.wait().status, Status::kOk);
}

// ---- admission queue ----

Job makeJob(const std::string& id, int readers = 10, int tags = 100) {
  Job j;
  j.spec.id = id;
  j.spec.readers = readers;
  j.spec.tags = tags;
  j.ticket = std::make_shared<Ticket>();
  j.submitted = std::chrono::steady_clock::now();
  return j;
}

TEST(ServiceQueue, RejectNewestBouncesTheIncomingRequest) {
  AdmissionQueue q(2, ShedPolicy::kRejectNewest);
  EXPECT_TRUE(q.push(makeJob("a"), 0.0).admitted());
  EXPECT_TRUE(q.push(makeJob("b"), 0.0).admitted());
  const Admit third = q.push(makeJob("c"), 25.0);
  EXPECT_FALSE(third.admitted());
  EXPECT_EQ(third.code, Code::kQueueFull);
  EXPECT_GE(third.retry_after_ms, 1);
  EXPECT_TRUE(third.evicted.empty());
  EXPECT_EQ(q.depth(), 2u);
}

TEST(ServiceQueue, RejectLargestEvictsTheLargestQueuedJob) {
  AdmissionQueue q(2, ShedPolicy::kRejectLargest);
  EXPECT_TRUE(q.push(makeJob("big", 100, 10000), 0.0).admitted());
  EXPECT_TRUE(q.push(makeJob("small", 5, 20), 0.0).admitted());
  // Incoming medium job: "big" is the largest of {queued ∪ incoming}, so it
  // is evicted and handed back; the incoming job takes its place.
  const Admit a = q.push(makeJob("medium", 20, 400), 0.0);
  EXPECT_TRUE(a.admitted());
  ASSERT_EQ(a.evicted.size(), 1u);
  EXPECT_EQ(a.evicted[0].spec.id, "big");
  EXPECT_EQ(q.depth(), 2u);

  // Incoming job that is itself the largest bounces with kShed.
  const Admit b = q.push(makeJob("giant", 1000, 100000), 0.0);
  EXPECT_FALSE(b.admitted());
  EXPECT_EQ(b.code, Code::kShed);
  EXPECT_EQ(q.depth(), 2u);
}

TEST(ServiceQueue, DeadlineAwareAdmissionBouncesUnmeetableRequests) {
  AdmissionQueue q(8, ShedPolicy::kRejectNewest);
  Job j = makeJob("late");
  j.has_deadline = true;
  j.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  const Admit a = q.push(std::move(j), /*est_wait_ms=*/500.0);
  EXPECT_FALSE(a.admitted());
  EXPECT_EQ(a.code, Code::kDeadlineUnmeetable);
  EXPECT_GE(a.retry_after_ms, 1);

  // A comfortable deadline sails through the same estimate.
  Job ok = makeJob("fine");
  ok.has_deadline = true;
  ok.deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  EXPECT_TRUE(q.push(std::move(ok), 500.0).admitted());
}

TEST(ServiceQueue, CloseGatesAdmissionAndDrainsPending) {
  AdmissionQueue q(4, ShedPolicy::kRejectNewest);
  EXPECT_TRUE(q.push(makeJob("a"), 0.0).admitted());
  EXPECT_TRUE(q.push(makeJob("b"), 0.0).admitted());
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.push(makeJob("c"), 0.0).code, Code::kDraining);
  const std::vector<Job> bounced = q.drainPending();
  EXPECT_EQ(bounced.size(), 2u);
  EXPECT_EQ(q.depth(), 0u);
  Job out;
  EXPECT_FALSE(q.pop(&out));  // closed + empty → worker shutdown signal
}

// ---- service end to end ----

/// A deployment small enough that one request solves in a few ms.
RequestSpec tinySpec(const std::string& id) {
  RequestSpec spec;
  spec.id = id;
  spec.readers = 8;
  spec.tags = 40;
  spec.side = 40.0;
  spec.seed = 3;
  spec.checkpoint = false;
  return spec;
}

TEST(ServiceEndToEnd, SubmitRunsToValidCompletion) {
  obs::MetricsRegistry m;
  ServiceOptions opt;
  opt.workers = 2;
  opt.metrics = &m;
  Service svc(opt);
  svc.start();

  std::vector<std::shared_ptr<Ticket>> tickets;
  for (int i = 0; i < 4; ++i) {
    Response reject;
    auto t = svc.submit(tinySpec("t" + std::to_string(i)), &reject);
    ASSERT_NE(t, nullptr) << codeName(reject.code);
    tickets.push_back(std::move(t));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const Response r = tickets[i]->wait();
    EXPECT_EQ(r.id, "t" + std::to_string(i));
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.code, Code::kNone);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.attempts, 1);
    EXPECT_GT(r.slots, 0);
    EXPECT_GT(r.tags_read, 0);
  }
  const DrainReport rep = svc.drain(1000);
  EXPECT_TRUE(rep.clean());
}

TEST(ServiceEndToEnd, MaxSlotsBoundsTheRunAndStaysOk) {
  ServiceOptions opt;
  opt.workers = 1;
  Service svc(opt);
  svc.start();
  RequestSpec spec = tinySpec("capped");
  spec.max_slots = 1;
  Response reject;
  auto t = svc.submit(std::move(spec), &reject);
  ASSERT_NE(t, nullptr);
  const Response r = t->wait();
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.slots, 1);
  EXPECT_FALSE(r.completed);  // budget-bounded, not finished
  EXPECT_TRUE(svc.drain(1000).clean());
}

TEST(ServiceEndToEnd, WatchdogCancelsStallThenRetrySucceeds) {
  obs::MetricsRegistry m;
  ServiceOptions opt;
  opt.workers = 1;
  opt.watchdog_period_ms = 2;
  opt.stall_window_ms = 50;
  opt.default_retries = 1;
  opt.backoff_base_ms = 1;
  opt.backoff_cap_ms = 5;
  opt.metrics = &m;
  Service svc(opt);
  svc.start();

  // hang-ms wedges the first attempt without advancing the heartbeat; the
  // watchdog must stall-cancel it well before the 10 s hang, and the retry
  // (hang applies to attempt 1 only) must complete normally.
  RequestSpec spec = tinySpec("hungry");
  spec.hang_ms = 10000;
  Response reject;
  auto t = svc.submit(std::move(spec), &reject);
  ASSERT_NE(t, nullptr);
  const Response r = t->wait();
  EXPECT_EQ(r.status, Status::kOk) << r.detail;
  EXPECT_EQ(r.attempts, 2);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(svc.drain(1000).clean());
}

TEST(ServiceEndToEnd, StallWithoutRetryBudgetReportsStalled) {
  ServiceOptions opt;
  opt.workers = 1;
  opt.watchdog_period_ms = 2;
  opt.stall_window_ms = 50;
  opt.default_retries = 0;
  Service svc(opt);
  svc.start();
  RequestSpec spec = tinySpec("doomed");
  spec.hang_ms = 10000;
  Response reject;
  auto t = svc.submit(std::move(spec), &reject);
  ASSERT_NE(t, nullptr);
  const Response r = t->wait();
  EXPECT_EQ(r.status, Status::kCancelled);
  EXPECT_EQ(r.code, Code::kStalled);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_TRUE(svc.drain(1000).clean());
}

TEST(ServiceEndToEnd, DeadlineCancelsARunThatPacesPastIt) {
  ServiceOptions opt;
  opt.workers = 1;
  opt.watchdog_period_ms = 2;
  opt.stall_window_ms = 0;  // deadline enforcement only
  opt.default_retries = 1;  // deadline is terminal — must NOT retry
  Service svc(opt);
  svc.start();
  RequestSpec spec = tinySpec("late");
  spec.pace_ms = 50;      // slow but live: heartbeat advances every slot
  spec.deadline_ms = 60;  // expires mid-run
  Response reject;
  auto t = svc.submit(std::move(spec), &reject);
  ASSERT_NE(t, nullptr);
  const Response r = t->wait();
  EXPECT_EQ(r.status, Status::kCancelled);
  EXPECT_EQ(r.code, Code::kDeadline);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_TRUE(svc.drain(1000).clean());
}

TEST(ServiceEndToEnd, FullQueueRejectsWithRetryAfterHint) {
  ServiceOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 1;
  Service svc(opt);
  svc.start();

  // Occupy the worker with a paced request, fill the queue behind it, then
  // overflow: the overflow must resolve immediately as a structured
  // rejection, never a block.
  RequestSpec pacer = tinySpec("pacer");
  pacer.pace_ms = 100;
  Response reject;
  auto t0 = svc.submit(std::move(pacer), &reject);
  ASSERT_NE(t0, nullptr);
  // Wait until the pacer is actually in flight so the queue is free.
  for (int i = 0; i < 500 && svc.inflightCount() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(svc.inflightCount(), 0);

  auto t1 = svc.submit(tinySpec("queued"), &reject);
  ASSERT_NE(t1, nullptr);
  auto t2 = svc.submit(tinySpec("bounced"), &reject);
  EXPECT_EQ(t2, nullptr);
  EXPECT_EQ(reject.status, Status::kRejected);
  EXPECT_EQ(reject.code, Code::kQueueFull);
  EXPECT_GE(reject.retry_after_ms, 1);

  const DrainReport rep = svc.drain(5000);
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(t0->done());
  EXPECT_TRUE(t1->done());
}

TEST(ServiceEndToEnd, DrainBouncesQueuedWorkAndResolvesEveryTicket) {
  ServiceOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 8;
  Service svc(opt);
  svc.start();

  RequestSpec pacer = tinySpec("inflight");
  pacer.pace_ms = 50;
  Response reject;
  auto t0 = svc.submit(std::move(pacer), &reject);
  ASSERT_NE(t0, nullptr);
  for (int i = 0; i < 500 && svc.inflightCount() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::shared_ptr<Ticket>> queued;
  for (int i = 0; i < 3; ++i) {
    auto t = svc.submit(tinySpec("q" + std::to_string(i)), &reject);
    ASSERT_NE(t, nullptr);
    queued.push_back(std::move(t));
  }

  const DrainReport rep = svc.drain(/*drain_deadline_ms=*/30);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.bounced, 3);
  EXPECT_TRUE(svc.draining());

  // Every ticket resolves: queued work bounces with kDraining, the
  // in-flight request either finished inside the window or was cancelled
  // by the drain deadline.
  for (auto& t : queued) {
    const Response r = t->wait();
    EXPECT_EQ(r.status, Status::kRejected);
    EXPECT_EQ(r.code, Code::kDraining);
  }
  const Response r0 = t0->wait();
  EXPECT_TRUE((r0.status == Status::kOk && r0.completed) ||
              (r0.status == Status::kCancelled && r0.code == Code::kDraining))
      << statusName(r0.status) << "/" << codeName(r0.code);

  // Submitting after drain is a structured kDraining rejection.
  EXPECT_EQ(svc.submit(tinySpec("late"), &reject), nullptr);
  EXPECT_EQ(reject.code, Code::kDraining);
}

TEST(ServiceEndToEnd, AlreadyExpiredDeadlineNeverRuns) {
  ServiceOptions opt;
  opt.workers = 1;
  Service svc(opt);
  svc.start();
  RequestSpec spec = tinySpec("expired");
  spec.deadline_ms = 1;
  spec.pace_ms = 30;  // make sure the clock passes the deadline in-queue
  Response reject;
  auto t = svc.submit(std::move(spec), &reject);
  if (t != nullptr) {
    const Response r = t->wait();
    // Raced past admission: either cancelled by the deadline watchdog or
    // (very fast machine) completed — never retried, never hung.
    EXPECT_LE(r.attempts, 1);
  } else {
    EXPECT_EQ(reject.code, Code::kDeadlineUnmeetable);
  }
  EXPECT_TRUE(svc.drain(1000).clean());
}

}  // namespace
}  // namespace rfid::service
