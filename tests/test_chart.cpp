// Line-chart renderer tests: structure, series presence, CI whiskers,
// axis behavior, and file output.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/chart.h"

namespace rfid::analysis {
namespace {

SeriesSet sampleSet() {
  SeriesSet set;
  for (const double x : {1.0, 2.0, 3.0}) {
    set.add("Alg1", x, 10.0 * x);
    set.add("Alg1", x, 10.0 * x + 2.0);  // two samples → nonzero CI
    set.add("CA", x, 4.0 * x);
    set.add("CA", x, 4.0 * x + 1.0);
  }
  return set;
}

int count(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (auto p = hay.find(needle); p != std::string::npos;
       p = hay.find(needle, p + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Chart, StructureAndSeries) {
  ChartOptions opt;
  opt.title = "Figure X";
  opt.x_label = "lambda";
  opt.y_label = "tags";
  const std::string svg = renderLineChart(sampleSet(), opt);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Figure X"), std::string::npos);
  EXPECT_NE(svg.find("lambda"), std::string::npos);
  EXPECT_NE(svg.find("tags"), std::string::npos);
  // Two series → two polylines and two legend labels.
  EXPECT_EQ(count(svg, "<polyline"), 2);
  EXPECT_NE(svg.find(">Alg1</text>"), std::string::npos);
  EXPECT_NE(svg.find(">CA</text>"), std::string::npos);
  // 3 points × 2 series markers.
  EXPECT_EQ(count(svg, "<circle"), 6);
}

TEST(Chart, CiWhiskersDrawnWhenPresent) {
  const std::string with_ci = renderLineChart(sampleSet(), {});
  EXPECT_GT(count(with_ci, "stroke-opacity='0.45'"), 0);

  SeriesSet no_ci;  // single samples → ci 0 → no whiskers
  no_ci.add("A", 1.0, 5.0);
  no_ci.add("A", 2.0, 6.0);
  const std::string without = renderLineChart(no_ci, {});
  EXPECT_EQ(count(without, "stroke-opacity='0.45'"), 0);
}

TEST(Chart, DegenerateInputsDoNotCrash) {
  SeriesSet empty;
  EXPECT_NE(renderLineChart(empty, {}).find("</svg>"), std::string::npos);

  SeriesSet one_point;
  one_point.add("A", 2.0, 3.0);
  const std::string svg = renderLineChart(one_point, {});
  EXPECT_NE(svg.find("<circle"), std::string::npos);
}

TEST(Chart, FileOutput) {
  const std::string path = "chart_test_dir/fig.svg";
  EXPECT_TRUE(writeChartSvgFile(path, sampleSet(), {}));
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::filesystem::remove_all("chart_test_dir");
}

}  // namespace
}  // namespace rfid::analysis
