// Analysis kit tests: Welford statistics, merge, series accumulation, and
// the table/CSV renderers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/series.h"
#include "analysis/stats.h"
#include "analysis/table.h"

namespace rfid::analysis {
namespace {

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);  // adopt
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2);
}

TEST(RunningStat, CiShrinksWithSamples) {
  RunningStat few, many;
  for (int i = 0; i < 4; ++i) few.add(i % 2 == 0 ? 1.0 : 3.0);
  for (int i = 0; i < 400; ++i) many.add(i % 2 == 0 ? 1.0 : 3.0);
  EXPECT_GT(few.ci95(), many.ci95());
}

TEST(SeriesSet, AccumulatesByKeyAndX) {
  SeriesSet set;
  set.add("Alg1", 4.0, 10.0);
  set.add("Alg1", 4.0, 12.0);
  set.add("Alg1", 6.0, 20.0);
  set.add("GHC", 4.0, 5.0);
  EXPECT_EQ(set.seriesNames(), (std::vector<std::string>{"Alg1", "GHC"}));
  EXPECT_EQ(set.xValues(), (std::vector<double>{4.0, 6.0}));
  ASSERT_NE(set.at("Alg1", 4.0), nullptr);
  EXPECT_DOUBLE_EQ(set.at("Alg1", 4.0)->mean(), 11.0);
  EXPECT_EQ(set.at("Alg1", 5.0), nullptr);
  EXPECT_EQ(set.at("nope", 4.0), nullptr);
}

TEST(Table, PrintsAllSeriesAndRows) {
  SeriesSet set;
  set.add("A", 1.0, 3.0);
  set.add("A", 2.0, 4.0);
  set.add("B", 1.0, 7.0);
  std::ostringstream os;
  printTable(os, set, "lambda");
  const std::string out = os.str();
  EXPECT_NE(out.find("lambda"), std::string::npos);
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("B"), std::string::npos);
  EXPECT_NE(out.find("3.00"), std::string::npos);
  EXPECT_NE(out.find("7.00"), std::string::npos);
  // B has no sample at x=2 → dash.
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(Csv, RoundTrippableHeaderAndRows) {
  SeriesSet set;
  set.add("Alg1", 4.0, 10.0);
  set.add("Alg1", 4.0, 14.0);
  std::ostringstream os;
  writeCsv(os, set, "lambda_r");
  const std::string out = os.str();
  EXPECT_NE(out.find("lambda_r,Alg1_mean,Alg1_ci95"), std::string::npos);
  EXPECT_NE(out.find("4,12,"), std::string::npos);
}

TEST(Csv, FileWriterCreatesDirectories) {
  const std::string path = "test_output_dir/nested/result.csv";
  SeriesSet set;
  set.add("X", 1.0, 1.0);
  EXPECT_TRUE(writeCsvFile(path, set, "x"));
  std::ifstream check(path);
  EXPECT_TRUE(check.good());
  std::filesystem::remove_all("test_output_dir");
}

}  // namespace
}  // namespace rfid::analysis
