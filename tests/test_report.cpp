// test_report.cpp — the run-report analyzer (analysis/report.h): the JSON
// subset parser, the metrics/trace/cost loaders against byte-exact writer
// output, report rendering (sections, masking determinism, span-tree
// inclusive/exclusive accounting), and the baseline comparison that
// reproduces the lazy-vs-reference ratio from telemetry alone.
//
// Everything here works on literal telemetry strings, so the suite runs
// identically in RFIDSCHED_NO_OBS builds (the report consumes files, not
// live sinks).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "analysis/report.h"

namespace rfid::analysis {
namespace {

// --- JSON parser -------------------------------------------------------------

TEST(ReportJson, ParsesScalarsContainersAndEscapes) {
  JsonValue v;
  ASSERT_TRUE(parseJson(R"({"a": 1.5, "b": [true, null, -2e3], "s": "x\nA"})", v));
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  EXPECT_DOUBLE_EQ(v.find("a")->num(), 1.5);
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_EQ(b->array[1].type, JsonValue::Type::kNull);
  EXPECT_DOUBLE_EQ(b->array[2].num(), -2000.0);
  EXPECT_EQ(v.find("s")->str, "x\nA");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ReportJson, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(parseJson("{\"a\": }", v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parseJson("[1, 2", v));
  EXPECT_FALSE(parseJson("{} trailing", v));
  EXPECT_FALSE(parseJson("\"unterminated", v));
  EXPECT_FALSE(parseJson("01x", v));
}

// --- loaders -----------------------------------------------------------------

constexpr const char* kMetrics = R"({
  "counters": {
    "core.weight_evals": 120,
    "mcs.slots": 3,
    "mcs.tags_read": 40,
    "sched.schedule_calls": 3,
    "sched.weight_evals": 25000
  },
  "gauges": {
    "fault.mcs.ideal_tags_read": 44
  },
  "histograms": {
    "mcs.slot_us": {"count": 3, "min": 10, "max": 30, "mean": 20, "p50": 18, "p90": 28, "p99": 30}
  }
})";

constexpr const char* kJsonl =
    "{\"kind\": \"span\", \"name\": \"mcs.run\", \"ts_us\": 100, \"dur_us\": 100, "
    "\"tid\": 0, \"span_id\": 1, \"parent_id\": 0, \"args\": {}}\n"
    "{\"kind\": \"slot\", \"name\": \"mcs.slot\", \"ts_us\": 40, \"dur_us\": 60, "
    "\"tid\": 0, \"span_id\": 2, \"parent_id\": 1, "
    "\"args\": {\"slot\": 1, \"proposed\": 5, \"delivered\": 30, \"stall\": 0}}\n"
    "{\"kind\": \"span\", \"name\": \"alg2.schedule\", \"ts_us\": 30, \"dur_us\": 40, "
    "\"tid\": 0, \"span_id\": 3, \"parent_id\": 2, \"args\": {}}\n"
    "{\"kind\": \"slot\", \"name\": \"mcs.slot\", \"ts_us\": 90, \"dur_us\": 10, "
    "\"tid\": 0, \"span_id\": 4, \"parent_id\": 1, "
    "\"args\": {\"slot\": 2, \"proposed\": 4, \"delivered\": 10, \"stall\": 0}}\n";

constexpr const char* kCost = R"({
  "total": {"weight_evals":25000,"csr_rows":20,"cache_hits":2,"cache_misses":1,"cache_refreshes":50,"queue_pops":90,"queue_stale_pops":9,"queue_work":200,"dp_entries":0,"bnb_nodes":12,"net_messages":0,"net_rounds":0},
  "phases": {
    "alg2.selection": {"weight_evals":24000,"csr_rows":0,"cache_hits":0,"cache_misses":0,"cache_refreshes":0,"queue_pops":90,"queue_stale_pops":9,"queue_work":200,"dp_entries":0,"bnb_nodes":0,"net_messages":0,"net_rounds":0},
    "mcs.referee": {"weight_evals":1000,"csr_rows":20,"cache_hits":0,"cache_misses":0,"cache_refreshes":0,"queue_pops":0,"queue_stale_pops":0,"queue_work":0,"dp_entries":0,"bnb_nodes":12,"net_messages":0,"net_rounds":0}
  },
  "slots": [
    {"weight_evals":15000,"csr_rows":10,"cache_hits":1,"cache_misses":1,"cache_refreshes":30,"queue_pops":50,"queue_stale_pops":5,"queue_work":120,"dp_entries":0,"bnb_nodes":6,"net_messages":0,"net_rounds":0},
    {"weight_evals":10000,"csr_rows":10,"cache_hits":1,"cache_misses":0,"cache_refreshes":20,"queue_pops":40,"queue_stale_pops":4,"queue_work":80,"dp_entries":0,"bnb_nodes":6,"net_messages":0,"net_rounds":0}
  ]
})";

RunTelemetry loadAll() {
  RunTelemetry run;
  std::string err;
  EXPECT_TRUE(loadMetricsJson(kMetrics, run, &err)) << err;
  EXPECT_TRUE(loadTraceJsonl(kJsonl, run, &err)) << err;
  EXPECT_TRUE(loadCostJson(kCost, run, &err)) << err;
  return run;
}

TEST(ReportLoad, MetricsTraceAndCostRoundTrip) {
  const RunTelemetry run = loadAll();
  EXPECT_TRUE(run.has_metrics);
  EXPECT_TRUE(run.has_trace);
  EXPECT_TRUE(run.has_cost);
  EXPECT_DOUBLE_EQ(run.counter("sched.weight_evals"), 25000.0);
  EXPECT_DOUBLE_EQ(run.counter("absent", -1.0), -1.0);
  ASSERT_EQ(run.events.size(), 4u);
  EXPECT_EQ(run.events[1].name, "mcs.slot");
  EXPECT_DOUBLE_EQ(run.events[1].arg("delivered"), 30.0);
  EXPECT_EQ(run.events[2].parent_id, 2u);
  ASSERT_EQ(run.histograms.count("mcs.slot_us"), 1u);
  EXPECT_EQ(run.histograms.at("mcs.slot_us").count, 3);
  EXPECT_EQ(run.cost_total.workUnits(), 25000 + 200 + 12);
  ASSERT_EQ(run.cost_phases.size(), 2u);
  ASSERT_EQ(run.cost_slots.size(), 2u);
  EXPECT_EQ(run.cost_slots[1].weight_evals, 10000);
}

TEST(ReportLoad, EmptyObjectLoadsCleanly) {
  // An RFIDSCHED_NO_OBS run writes "{}" for metrics and cost alike.
  RunTelemetry run;
  EXPECT_TRUE(loadMetricsJson("{}", run));
  EXPECT_TRUE(loadCostJson("{}", run));
  EXPECT_TRUE(loadTraceJsonl("", run));
  EXPECT_TRUE(run.counters.empty());
  EXPECT_TRUE(run.cost_total.zero());
}

TEST(ReportLoad, BadLineReportsItsNumber) {
  RunTelemetry run;
  std::string err;
  EXPECT_FALSE(loadTraceJsonl("{\"kind\": \"span\"}\nnot json\n", run, &err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

// --- rendering ---------------------------------------------------------------

TEST(ReportRender, CarriesEverySectionFromLoadedTelemetry) {
  const RunTelemetry run = loadAll();
  const std::string text = renderReport(run);
  EXPECT_NE(text.find("rfidsched run report"), std::string::npos);
  EXPECT_NE(text.find("slots committed"), std::string::npos);
  EXPECT_NE(text.find("cost attribution"), std::string::npos);
  EXPECT_NE(text.find("alg2.selection"), std::string::npos);
  EXPECT_NE(text.find("per-slot timeline"), std::string::npos);
  EXPECT_NE(text.find("span phases"), std::string::npos);
  EXPECT_NE(text.find("wall-clock histograms"), std::string::npos);
  // cache hit rate: 2 diff / 1 full = 66.7% diff
  EXPECT_NE(text.find("66.7%"), std::string::npos) << text;
  // queue stale ratio: 9 / 90 = 10.0%
  EXPECT_NE(text.find("10.0%"), std::string::npos) << text;
}

TEST(ReportRender, MaskWallBlanksClocksButKeepsWork) {
  const RunTelemetry run = loadAll();
  ReportOptions opt;
  opt.mask_wall = true;
  const std::string masked = renderReport(run, opt);
  // No raw wall figure survives (the spans carry 100/60/40/10 us).
  EXPECT_EQ(masked.find(" 100\n"), std::string::npos);
  EXPECT_NE(masked.find("(name order)"), std::string::npos);
  // Deterministic work figures stay.
  EXPECT_NE(masked.find("25212"), std::string::npos);  // total work units
  EXPECT_EQ(masked, renderReport(run, opt));
}

TEST(ReportRender, SpanTreeExclusiveSubtractsChildren) {
  RunTelemetry run;
  ASSERT_TRUE(loadTraceJsonl(kJsonl, run));
  const std::string text = renderReport(run);
  // mcs.run: incl 100, children (two mcs.slot spans, 60+10) => excl 30.
  // mcs.slot: incl 70, child alg2.schedule 40 => excl 30.
  const std::size_t run_row = text.find("mcs.run");
  ASSERT_NE(run_row, std::string::npos);
  const std::string tail = text.substr(run_row, text.find('\n', run_row) - run_row);
  EXPECT_NE(tail.find("100"), std::string::npos) << tail;
  EXPECT_NE(tail.find("30"), std::string::npos) << tail;
}

TEST(ReportRender, ComparisonReproducesTheHeadlineRatio) {
  // A reference run's counters vs the lazy run's: the ratio column must
  // carry baseline/current — the telemetry-only reproduction of the
  // 1.66M -> 25k weight-eval headline (docs/performance.md).
  RunTelemetry lazy;
  ASSERT_TRUE(loadMetricsJson(kMetrics, lazy));
  RunTelemetry ref;
  ASSERT_TRUE(loadMetricsJson(
      R"({"counters": {"sched.weight_evals": 1660000, "mcs.slots": 3}})", ref));
  const std::string cmp = renderComparison(ref, lazy);
  EXPECT_NE(cmp.find("sched.weight_evals"), std::string::npos);
  EXPECT_NE(cmp.find("1660000"), std::string::npos);
  EXPECT_NE(cmp.find("25000"), std::string::npos);
  EXPECT_NE(cmp.find("66.40x"), std::string::npos) << cmp;
  EXPECT_NE(cmp.find("1.00x"), std::string::npos);  // mcs.slots unchanged
}

TEST(ReportSvg, WritesAChartWhenPerSlotDataExists) {
  const RunTelemetry run = loadAll();
  const std::string path = "report_test_chart.svg";
  ASSERT_TRUE(writeReportSvgFile(path, run));
  std::ifstream is(path);
  std::string svg((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("tags delivered"), std::string::npos);
  std::remove(path.c_str());

  RunTelemetry empty;
  EXPECT_FALSE(writeReportSvgFile(path, empty));
}

}  // namespace
}  // namespace rfid::analysis
