// Golden-value regression tests: pin exact outputs for fixed seeds so any
// silent behavior change in the model, the RNG plumbing, or a scheduler is
// caught immediately.  If a change is *intentional* (e.g. a scheduler
// improvement), re-derive the constants with the snippet in each test and
// say so in the commit message.
#include <gtest/gtest.h>

#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

namespace rfid {
namespace {

constexpr std::uint64_t kGoldenSeed = 20260704;

core::System goldenSystem() {
  return workload::makeSystem(workload::paperScenario(10.0, 4.0), kGoldenSeed);
}

TEST(Regression, DeploymentShape) {
  const core::System sys = goldenSystem();
  const graph::InterferenceGraph g(sys);
  EXPECT_EQ(sys.numReaders(), 50);
  EXPECT_EQ(sys.numTags(), 1200);
  EXPECT_EQ(g.numEdges(), 58);
  EXPECT_EQ(sys.unreadCoverableCount(), 298);
}

TEST(Regression, OneShotWeights) {
  const core::System sys = goldenSystem();
  const graph::InterferenceGraph g(sys);

  sched::PtasScheduler alg1;
  EXPECT_EQ(alg1.schedule(sys).weight, 231);

  sched::GrowthScheduler alg2(g);
  EXPECT_EQ(alg2.schedule(sys).weight, 231);

  dist::GrowthDistributedScheduler alg3(g);
  EXPECT_EQ(alg3.schedule(sys).weight, 231);
  EXPECT_EQ(alg3.lastStats().heads, 26);

  sched::HillClimbingScheduler ghc;
  EXPECT_EQ(ghc.schedule(sys).weight, 228);
}

TEST(Regression, CoveringSchedule) {
  core::System sys = goldenSystem();
  const graph::InterferenceGraph g(sys);
  sched::GrowthScheduler alg2(g);
  const sched::McsResult res = sched::runCoveringSchedule(sys, alg2);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.slots, 3);
  EXPECT_EQ(res.tags_read, 298);
}

}  // namespace
}  // namespace rfid
