// Shifted hierarchical grid tests: the structural properties §IV's DP
// relies on (level assignment, line hierarchy, square nesting, survive).
#include <gtest/gtest.h>

#include <cmath>

#include "geometry/shifted_grid.h"
#include "workload/rng.h"

namespace rfid::geom {
namespace {

TEST(ShiftedGrid, LevelOfBoundaries) {
  const ShiftedGrid g(2, 0, 0);  // k = 2, so levels scale by 3
  // Level j holds radii with 1/3^{j+1} < 2R ≤ 1/3^j.
  EXPECT_EQ(g.levelOf(0.5), 0);        // 2R = 1 = 3^0 (inclusive upper edge)
  EXPECT_EQ(g.levelOf(0.2), 0);        // 1/3 < 0.4 ≤ 1
  EXPECT_EQ(g.levelOf(0.18), 0);       // 1/3 < 0.36 ≤ 1
  EXPECT_EQ(g.levelOf(0.16), 1);       // 1/9 < 0.32 ≤ 1/3
  EXPECT_EQ(g.levelOf(0.1), 1);        // 1/9 < 0.2 ≤ 1/3
  EXPECT_EQ(g.levelOf(0.05), 2);       // 2R = 0.1 ∈ (1/27, 1/9]
  EXPECT_EQ(g.levelOf(0.01), 3);       // 2R = 0.02 ∈ (1/81, 1/27]
}

TEST(ShiftedGrid, LevelOfUpperEdgeIsExactlyInclusive) {
  const ShiftedGrid g(3, 0, 0);  // k+1 = 4
  // 2R = 4^{-1} exactly → level 1 (the ≤ side of the band).
  EXPECT_EQ(g.levelOf(1.0 / 8.0), 1);
  EXPECT_EQ(g.levelOf(1.0 / 8.0 + 1e-9), 0);
}

TEST(ShiftedGrid, LineSpacingAndSquareSide) {
  const ShiftedGrid g(2, 0, 0);
  EXPECT_DOUBLE_EQ(g.lineSpacing(0), 1.0);
  EXPECT_DOUBLE_EQ(g.lineSpacing(2), 1.0 / 9.0);
  EXPECT_DOUBLE_EQ(g.squareSide(0), 2.0);
  EXPECT_DOUBLE_EQ(g.squareSide(1), 2.0 / 3.0);
}

TEST(ShiftedGrid, ContainingSquareAlignsToShift) {
  const ShiftedGrid g(3, 1, 2);
  const SquareKey s = g.containingSquare({0.45, 0.45}, 0);
  // Corner index must be ≡ shift (mod k).
  EXPECT_EQ(((s.ix % 3) + 3) % 3, 1);
  EXPECT_EQ(((s.iy % 3) + 3) % 3, 2);
  const Aabb box = g.squareBox(s);
  EXPECT_TRUE(box.contains({0.45, 0.45}));
}

TEST(ShiftedGrid, ContainingSquareNegativeCoordinates) {
  const ShiftedGrid g(2, 0, 0);
  const Vec2 p{-0.75, -1.3};
  const SquareKey s = g.containingSquare(p, 1);
  EXPECT_TRUE(g.squareBox(s).contains(p));
  EXPECT_EQ(((s.ix % 2) + 2) % 2, 0);
}

// The line-hierarchy property from [3]: a kept line at level j is a kept
// line at level j+1 — equivalently, each j-square is tiled by its (k+1)²
// children and children's corners stay ≡ shift (mod k).
TEST(ShiftedGrid, ChildrenTileParentExactly) {
  for (const int k : {2, 3, 4}) {
    const ShiftedGrid g(k, k - 1, 1 % k);
    const SquareKey parent = g.containingSquare({0.37, 0.81}, 1);
    const auto kids = g.children(parent);
    ASSERT_EQ(static_cast<int>(kids.size()), (k + 1) * (k + 1));
    const Aabb pbox = g.squareBox(parent);
    double kid_area = 0.0;
    for (const SquareKey& kid : kids) {
      const Aabb kbox = g.squareBox(kid);
      // Child box inside parent box.
      EXPECT_GE(kbox.lo.x, pbox.lo.x - 1e-12);
      EXPECT_LE(kbox.hi.x, pbox.hi.x + 1e-12);
      EXPECT_GE(kbox.lo.y, pbox.lo.y - 1e-12);
      EXPECT_LE(kbox.hi.y, pbox.hi.y + 1e-12);
      // Corner alignment.
      EXPECT_EQ(((kid.ix % k) + k) % k, ((parent.ix % k) + k) % k);
      kid_area += kbox.width() * kbox.height();
    }
    EXPECT_NEAR(kid_area, pbox.width() * pbox.height(), 1e-9)
        << "children must tile the parent, k=" << k;
  }
}

TEST(ShiftedGrid, ParentInvertsChildren) {
  const ShiftedGrid g(2, 1, 0);
  const SquareKey s = g.containingSquare({0.2, 0.9}, 2);
  for (const SquareKey& kid : g.children(s)) {
    EXPECT_EQ(g.parent(kid), s);
  }
}

TEST(ShiftedGrid, ParentChainReachesLevelZero) {
  const ShiftedGrid g(3, 0, 0);
  SquareKey s = g.containingSquare({0.123, 0.456}, 4);
  const Vec2 probe{0.123, 0.456};
  while (s.level > 0) {
    const SquareKey p = g.parent(s);
    EXPECT_EQ(p.level, s.level - 1);
    // Nesting: the child's box is inside the parent's box.
    const Aabb cb = g.squareBox(s);
    const Aabb pb = g.squareBox(p);
    EXPECT_GE(cb.lo.x, pb.lo.x - 1e-12);
    EXPECT_LE(cb.hi.x, pb.hi.x + 1e-12);
    EXPECT_TRUE(pb.contains(probe));
    s = p;
  }
}

TEST(ShiftedGrid, IsAncestorReflexiveAndTransitive) {
  const ShiftedGrid g(2, 0, 0);
  const SquareKey lvl0 = g.containingSquare({0.5, 0.5}, 0);
  const SquareKey lvl2 = g.containingSquare({0.5, 0.5}, 2);
  EXPECT_TRUE(g.isAncestor(lvl0, lvl0));
  EXPECT_TRUE(g.isAncestor(lvl0, lvl2));
  EXPECT_FALSE(g.isAncestor(lvl2, lvl0));
}

TEST(ShiftedGrid, SurviveRequiresStrictClearance) {
  const ShiftedGrid g(2, 0, 0);
  // Level-0 squares have side 2 and corners at even indices.  A disk well
  // inside [0,2]² survives; one crossing x = 2 does not.
  EXPECT_TRUE(g.survives({{1.0, 1.0}, 0.4}, 0));
  EXPECT_FALSE(g.survives({{1.9, 1.0}, 0.4}, 0));
  // Touching the boundary exactly also fails (strict clearance).
  EXPECT_FALSE(g.survives({{1.5, 1.0}, 0.5}, 0));
}

// A disk of level j has diameter ≤ line spacing at level j, so it can cross
// at most one vertical and one horizontal line — hence it survives at least
// (k−1)² of the k² shifts.
TEST(ShiftedGrid, EveryDiskSurvivesMostShifts) {
  workload::Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    const int k = 2 + trial % 3;
    const double radius = rng.uniform(0.005, 0.5);
    const Disk d{{rng.uniform(0.0, 3.0), rng.uniform(0.0, 3.0)}, radius};
    int surviving_shifts = 0;
    int level = -1;
    for (int r = 0; r < k; ++r) {
      for (int s = 0; s < k; ++s) {
        const ShiftedGrid g(k, r, s);
        if (level < 0) level = g.levelOf(radius);
        if (g.survives(d, level)) ++surviving_shifts;
      }
    }
    EXPECT_GE(surviving_shifts, (k - 1) * (k - 1))
        << "k=" << k << " R=" << radius;
  }
}

// Survivors are strictly inside their home square — the decomposition
// property the DP depends on.
TEST(ShiftedGrid, SurvivorStrictlyInsideHomeSquare) {
  workload::Rng rng(4242);
  const ShiftedGrid g(3, 1, 2);
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const double radius = rng.uniform(0.003, 0.5);
    const Disk d{{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)}, radius};
    const int level = g.levelOf(radius);
    if (!g.survives(d, level)) continue;
    ++checked;
    const SquareKey home = g.containingSquare(d.center, level);
    EXPECT_TRUE(d.strictlyInside(g.squareBox(home)));
  }
  EXPECT_GT(checked, 20) << "sampling should produce plenty of survivors";
}

}  // namespace
}  // namespace rfid::geom
