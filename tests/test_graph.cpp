// Interference graph tests: construction vs brute force, hop semantics,
// components, coloring, and the growth-bounded profile.
#include <gtest/gtest.h>

#include "graph/coloring.h"
#include "graph/interference_graph.h"
#include "graph/traversal.h"
#include "test_helpers.h"
#include "workload/rng.h"

namespace rfid::graph {
namespace {

InterferenceGraph pathGraph(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return InterferenceGraph(n, edges);
}

TEST(InterferenceGraph, EdgeListConstruction) {
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {2, 1}, {3, 0}};
  const InterferenceGraph g(4, edges);
  EXPECT_EQ(g.numNodes(), 4);
  EXPECT_EQ(g.numEdges(), 3);
  EXPECT_TRUE(g.hasEdge(1, 2));
  EXPECT_TRUE(g.hasEdge(2, 1));
  EXPECT_FALSE(g.hasEdge(2, 3));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.maxDegree(), 2);
  EXPECT_EQ(test::toVec(g.neighbors(1)), (std::vector<int>{0, 2}));
}

// Definition 7: edge iff NOT independent — exhaustively cross-checked
// against the geometric predicate on random instances.
class GraphConstruction : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphConstruction, MatchesGeometricPredicate) {
  const core::System sys = test::smallRandomSystem(GetParam(), 25, 10, 60.0);
  const InterferenceGraph g(sys);
  for (int i = 0; i < sys.numReaders(); ++i) {
    for (int j = i + 1; j < sys.numReaders(); ++j) {
      EXPECT_EQ(g.hasEdge(i, j), !sys.independent(i, j))
          << "pair " << i << "," << j;
    }
  }
  // Graph independence coincides with system feasibility.
  workload::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> x;
    for (int v = 0; v < sys.numReaders(); ++v) {
      if (rng.bernoulli(0.2)) x.push_back(v);
    }
    EXPECT_EQ(g.isIndependentSet(x), sys.isFeasible(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphConstruction,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(Traversal, KHopOnPath) {
  const InterferenceGraph g = pathGraph(7);
  EXPECT_EQ(kHopNeighborhood(g, 3, 0), (std::vector<int>{3}));
  EXPECT_EQ(kHopNeighborhood(g, 3, 1), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(kHopNeighborhood(g, 3, 2), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(kHopNeighborhood(g, 0, 2), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(kHopNeighborhood(g, 3, 100),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(Traversal, AliveRestrictionBlocksRelays) {
  const InterferenceGraph g = pathGraph(5);
  std::vector<char> alive = {1, 1, 0, 1, 1};  // node 2 removed
  // From node 0, node 3 is unreachable without relaying through 2.
  EXPECT_EQ(kHopNeighborhoodAlive(g, 0, 10, alive), (std::vector<int>{0, 1}));
  const auto dist = hopDistancesAlive(g, 0, alive);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(Traversal, HopDistances) {
  const InterferenceGraph g = pathGraph(5);
  const auto d = hopDistances(g, 2);
  EXPECT_EQ(d, (std::vector<int>{2, 1, 0, 1, 2}));
}

TEST(Traversal, ComponentsSplitDisconnected) {
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {2, 3}, {3, 4}};
  const InterferenceGraph g(6, edges);
  const auto comp = components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[2]);
}

TEST(Traversal, GrowthProfileIsMonotone) {
  const core::System sys = test::smallRandomSystem(7, 30, 10, 50.0);
  const InterferenceGraph g(sys);
  const auto profile = growthProfile(g, 0, 6);
  ASSERT_EQ(profile.size(), 7u);
  EXPECT_EQ(profile[0], 1);
  for (std::size_t r = 1; r < profile.size(); ++r) {
    EXPECT_GE(profile[r], profile[r - 1]);
  }
}

TEST(Coloring, GreedyIsProper) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const core::System sys = test::smallRandomSystem(seed, 30, 10, 50.0);
    const InterferenceGraph g(sys);
    const auto colors = greedyColoring(g);
    EXPECT_TRUE(isProperColoring(g, colors));
    EXPECT_LE(numColors(colors), g.maxDegree() + 1);
  }
}

TEST(Coloring, ColorClassesAreIndependentSets) {
  const core::System sys = test::smallRandomSystem(5, 30, 10, 50.0);
  const InterferenceGraph g(sys);
  const auto colors = greedyColoring(g);
  for (int c = 0; c < numColors(colors); ++c) {
    const auto cls = colorClass(colors, c);
    EXPECT_FALSE(cls.empty());
    EXPECT_TRUE(g.isIndependentSet(cls));
    EXPECT_TRUE(sys.isFeasible(cls));  // classes are feasible scheduling sets
  }
}

TEST(Coloring, DetectsImproperColoring) {
  const InterferenceGraph g = pathGraph(3);
  EXPECT_FALSE(isProperColoring(g, std::vector<int>{0, 0, 1}));
  EXPECT_TRUE(isProperColoring(g, std::vector<int>{0, 1, 0}));
}

TEST(Coloring, EmptyGraph) {
  const InterferenceGraph g(0, {});
  EXPECT_EQ(numColors(greedyColoring(g)), 0);
}

}  // namespace
}  // namespace rfid::graph
// NOTE: appended tests for the sensing graph live below the main namespace
// block intentionally — they share the same file-local helpers.
namespace rfid::graph {
namespace {

TEST(SensingGraph, SupersetOfInterferenceGraph) {
  for (const std::uint64_t seed : {61u, 62u, 63u}) {
    const core::System sys = test::smallRandomSystem(seed, 25, 10, 60.0);
    const InterferenceGraph g(sys);
    const InterferenceGraph sense = buildSensingGraph(sys);
    EXPECT_GE(sense.numEdges(), g.numEdges());
    for (int u = 0; u < g.numNodes(); ++u) {
      for (const int v : g.neighbors(u)) {
        EXPECT_TRUE(sense.hasEdge(u, v)) << u << "-" << v;
      }
    }
  }
}

TEST(SensingGraph, MatchesDiskIntersectionPredicate) {
  const core::System sys = test::smallRandomSystem(64, 20, 10, 50.0);
  const InterferenceGraph sense = buildSensingGraph(sys);
  for (int i = 0; i < sys.numReaders(); ++i) {
    for (int j = i + 1; j < sys.numReaders(); ++j) {
      const double reach = sys.reader(i).interference_radius +
                           sys.reader(j).interference_radius;
      const bool expect =
          geom::dist(sys.reader(i).pos, sys.reader(j).pos) <= reach;
      EXPECT_EQ(sense.hasEdge(i, j), expect) << i << "-" << j;
    }
  }
}

// The property Algorithm 3's liveness rests on: any two readers that can
// both cover a common tag are sensing-graph adjacent.
TEST(SensingGraph, RrcCapablePairsAreAdjacent) {
  for (const std::uint64_t seed : {65u, 66u, 67u, 68u}) {
    const core::System sys = test::smallRandomSystem(seed, 25, 150, 60.0);
    const InterferenceGraph sense = buildSensingGraph(sys);
    for (int t = 0; t < sys.numTags(); ++t) {
      const auto cov = sys.coverers(t);
      for (std::size_t a = 0; a < cov.size(); ++a) {
        for (std::size_t b = a + 1; b < cov.size(); ++b) {
          EXPECT_TRUE(sense.hasEdge(cov[a], cov[b]))
              << "tag " << t << " covered by non-adjacent " << cov[a]
              << " and " << cov[b];
        }
      }
    }
  }
}

}  // namespace
}  // namespace rfid::graph
