// Multi-channel scheduling tests (§VII extension): channel feasibility,
// the channel-aware referee, and monotonicity in the channel count.
#include <gtest/gtest.h>

#include "sched/channels.h"
#include "sched/hill_climbing.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

using test::makeReader;
using test::makeTag;

TEST(Channels, FeasibilityRequiresIndependenceOnlyWithinChannel) {
  std::vector<core::Reader> readers = {makeReader(0, 0, 10.0, 4.0),
                                       makeReader(5, 0, 10.0, 4.0)};
  const core::System sys(std::move(readers), {makeTag(1, 0)});
  const std::vector<int> both = {0, 1};
  EXPECT_FALSE(isChannelFeasible(sys, both, std::vector<int>{0, 0}));
  EXPECT_TRUE(isChannelFeasible(sys, both, std::vector<int>{0, 1}));
}

TEST(Channels, RefereeRemovesRtcOnlyWithinChannel) {
  // Two mutually interfering readers, each with an exclusive tag.
  std::vector<core::Reader> readers = {makeReader(0, 0, 10.0, 3.0),
                                       makeReader(5, 0, 10.0, 3.0)};
  std::vector<core::Tag> tags = {makeTag(-2, 0), makeTag(7, 0)};
  const core::System sys(std::move(readers), std::move(tags));
  const std::vector<int> both = {0, 1};
  // Same channel: mutual RTc, nothing read (matches System::weight).
  EXPECT_TRUE(wellCoveredTagsChanneled(sys, both, std::vector<int>{0, 0}).empty());
  EXPECT_EQ(sys.weight(both), 0);
  // Different channels: both read their exclusive tag.
  EXPECT_EQ(wellCoveredTagsChanneled(sys, both, std::vector<int>{0, 1}),
            (std::vector<int>{0, 1}));
}

TEST(Channels, RrcPersistsAcrossChannels) {
  // Independent-but-overlapping interrogation regions: the shared tag is
  // lost no matter the channels (the tag cannot separate the signals).
  const core::System sys = test::figure2System();
  const std::vector<int> ab = {0, 1};  // A and B share Tag2
  const auto served = wellCoveredTagsChanneled(sys, ab, std::vector<int>{0, 1});
  EXPECT_TRUE(std::find(served.begin(), served.end(), 1) == served.end());
}

TEST(Channels, SingleChannelMatchesSystemReferee) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const core::System sys = test::smallRandomSystem(seed, 15, 100, 50.0);
    workload::Rng rng(seed);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<int> x;
      for (int v = 0; v < sys.numReaders(); ++v) {
        if (rng.bernoulli(0.25)) x.push_back(v);
      }
      const std::vector<int> chan(x.size(), 0);
      EXPECT_EQ(wellCoveredTagsChanneled(sys, x, chan), sys.wellCoveredTags(x));
    }
  }
}

TEST(Channels, SchedulerAssignmentsAreChannelFeasible) {
  for (const std::uint64_t seed : {4u, 8u, 12u}) {
    const core::System sys = test::smallRandomSystem(seed, 20, 120, 50.0);
    MultiChannelScheduler mc(ChannelOptions{3});
    const ChanneledResult res = mc.scheduleChanneled(sys);
    EXPECT_TRUE(isChannelFeasible(sys, res.readers, res.channel));
    for (const int c : res.channel) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 3);
    }
    EXPECT_GT(res.weight, 0);
  }
}

TEST(Channels, OneChannelEqualsGhc) {
  for (const std::uint64_t seed : {5u, 10u}) {
    const core::System sys = test::smallRandomSystem(seed, 18, 110, 50.0);
    MultiChannelScheduler mc(ChannelOptions{1});
    HillClimbingScheduler ghc;
    EXPECT_EQ(mc.schedule(sys).weight, ghc.schedule(sys).weight);
  }
}

TEST(Channels, MoreChannelsNeverHurtOnBatch) {
  double w1 = 0, w2 = 0, w4 = 0;
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    const core::System sys = test::smallRandomSystem(seed, 20, 120, 40.0);
    MultiChannelScheduler a(ChannelOptions{1}), b(ChannelOptions{2}),
        c(ChannelOptions{4});
    w1 += a.schedule(sys).weight;
    w2 += b.schedule(sys).weight;
    w4 += c.schedule(sys).weight;
  }
  EXPECT_GE(w2, w1);
  EXPECT_GE(w4, w2 * 0.98);  // saturation allowed, regression not
}

TEST(Channels, ChanneledMcsCompletes) {
  core::System sys = test::smallRandomSystem(30, 18, 120, 45.0);
  MultiChannelScheduler mc(ChannelOptions{2});
  const ChanneledMcsResult res = runChanneledCoveringSchedule(sys, mc);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(sys.unreadCoverableCount(), 0);
  EXPECT_GT(res.tags_read, 0);
}

TEST(Channels, MoreChannelsShrinkSchedulesOnBatch) {
  double s1 = 0, s4 = 0;
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    core::System sys = test::smallRandomSystem(seed, 20, 120, 40.0);
    MultiChannelScheduler a(ChannelOptions{1});
    s1 += runChanneledCoveringSchedule(sys, a).slots;
    sys.resetReads();
    MultiChannelScheduler b(ChannelOptions{4});
    s4 += runChanneledCoveringSchedule(sys, b).slots;
  }
  EXPECT_LE(s4, s1);
}

}  // namespace
}  // namespace rfid::sched
