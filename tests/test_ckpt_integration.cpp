// test_ckpt_integration.cpp — crash/recovery against the real CLI binary
// (docs/recovery.md): SIGKILL a journaled run mid-flight, resume it in a
// new process, and require byte-identical stdout and metrics versus an
// uninterrupted run.  Also the budget exit status (3) and the fail-closed
// corruption exit status (4).  The CLI path is injected by CMake as
// RFIDSCHED_CLI_PATH.
#include <gtest/gtest.h>

#ifdef RFIDSCHED_CLI_PATH

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace {

namespace fs = std::filesystem;

/// Forks and execs the CLI with `args`, redirecting stdout to `out_path`
/// and stderr to /dev/null.  Returns the child pid (caller reaps).
pid_t spawnCli(const std::vector<std::string>& args,
               const std::string& out_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int out =
      ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  const int nul = ::open("/dev/null", O_WRONLY);
  ::dup2(out, STDOUT_FILENO);
  ::dup2(nul, STDERR_FILENO);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(RFIDSCHED_CLI_PATH));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(RFIDSCHED_CLI_PATH, argv.data());
  ::_exit(127);
}

/// Runs the CLI to completion; returns its exit status (-1 on signal).
int runCli(const std::vector<std::string>& args, const std::string& out_path) {
  const pid_t pid = spawnCli(args, out_path);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

std::size_t countLines(const std::string& path) {
  const std::string text = slurp(path);
  std::size_t n = 0;
  for (const char c : text) n += c == '\n' ? 1u : 0u;
  return n;
}

/// A deployment big enough that the MCS run takes a few hundred ms — long
/// enough for the parent to observe journal growth and SIGKILL mid-run.
const std::vector<std::string> kConfig = {
    "--mode", "mcs",  "--algo", "ca",    "--readers", "200",
    "--tags", "5000", "--side", "120",   "--seed",    "11",
};

std::vector<std::string> withArgs(std::vector<std::string> base,
                                  const std::vector<std::string>& extra) {
  base.insert(base.end(), extra.begin(), extra.end());
  return base;
}

class CkptCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid suffix: ctest -j cases are separate processes sharing one cwd.
    dir_ = "ckpt_cli_tmp." + std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }
  std::string dir_;
};

TEST_F(CkptCliTest, SigkillMidRunThenResumeIsByteIdentical) {
  // Uninterrupted journaled baseline.
  ASSERT_EQ(runCli(withArgs(kConfig, {"--checkpoint", path("jbase"),
                                      "--metrics", path("mbase")}),
                   path("base.out")),
            0);

  // Journaled run, SIGKILLed once the journal shows real progress (header
  // + a few committed slots).  If the child wins the race and finishes,
  // the test degenerates to resuming a complete journal — still a valid
  // (if weaker) check, and never flaky.
  const pid_t pid =
      spawnCli(withArgs(kConfig, {"--checkpoint", path("j")}), path("kill.out"));
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < give_up) {
    if (fs::exists(path("j")) && countLines(path("j")) >= 4) break;
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      // Finished before we could kill it; reap happened, skip the kill.
      ASSERT_EQ(runCli(withArgs(kConfig,
                                {"--checkpoint", path("j"), "--resume",
                                 "--metrics", path("m")}),
                       path("resumed.out")),
                0);
      EXPECT_EQ(slurp(path("resumed.out")), slurp(path("base.out")));
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_TRUE(fs::exists(path("j")));

  // Resume in a fresh process: stdout and metrics must match the
  // uninterrupted run byte for byte.
  ASSERT_EQ(runCli(withArgs(kConfig, {"--checkpoint", path("j"), "--resume",
                                      "--metrics", path("m")}),
                   path("resumed.out")),
            0);
  // The report names the metrics file it wrote; normalize that one line.
  std::string base_out = slurp(path("base.out"));
  std::string res_out = slurp(path("resumed.out"));
  const std::string mb = "metrics written to " + path("mbase");
  const std::string mr = "metrics written to " + path("m");
  const std::size_t at = res_out.find(mr);
  ASSERT_NE(at, std::string::npos);
  res_out.replace(at, mr.size(), mb);
  EXPECT_EQ(res_out, base_out);
  EXPECT_EQ(slurp(path("m")), slurp(path("mbase")));
}

TEST_F(CkptCliTest, DeadlineInterruptExitsWithStatus3) {
  // A 0 ms deadline fires at the first slot boundary: the run must stop
  // with the distinct interrupted status, not 0 and not a crash.
  EXPECT_EQ(runCli(withArgs(kConfig, {"--deadline-ms", "0"}), path("d.out")),
            3);
}

TEST_F(CkptCliTest, SlotCapInterruptExitsWithStatus3AndResumes) {
  ASSERT_EQ(runCli(withArgs(kConfig, {"--checkpoint", path("j"),
                                      "--max-slots", "2"}),
                   path("cut.out")),
            3);
  ASSERT_EQ(runCli(withArgs(kConfig, {"--checkpoint", path("jbase")}),
                   path("base.out")),
            0);
  ASSERT_EQ(runCli(withArgs(kConfig, {"--checkpoint", path("j"), "--resume"}),
                   path("resumed.out")),
            0);
  EXPECT_EQ(slurp(path("resumed.out")), slurp(path("base.out")));
}

TEST_F(CkptCliTest, CorruptJournalExitsWithStatus4) {
  ASSERT_EQ(runCli(withArgs(kConfig, {"--checkpoint", path("j"),
                                      "--max-slots", "2"}),
                   path("cut.out")),
            3);
  // Flip a byte inside the *first* slot record (interior corruption — a
  // later valid record follows, so torn-tail tolerance must not apply).
  std::string bytes = slurp(path("j"));
  const std::size_t rec0 = bytes.find('\n');
  ASSERT_NE(rec0, std::string::npos);
  ASSERT_GT(bytes.size(), rec0 + 10);
  bytes[rec0 + 10] = static_cast<char>(bytes[rec0 + 10] ^ 0x20);
  {
    std::ofstream os(path("j"), std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(runCli(withArgs(kConfig, {"--checkpoint", path("j"), "--resume"}),
                   path("r.out")),
            4);
}

}  // namespace

#endif  // RFIDSCHED_CLI_PATH
