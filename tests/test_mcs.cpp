// MCS driver tests: termination, completeness, schedule accounting, and
// stall protection.
#include <gtest/gtest.h>

#include "graph/interference_graph.h"
#include "sched/exact.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

TEST(Mcs, ReadsEveryCoverableTag) {
  core::System sys = test::smallRandomSystem(1, 15, 120, 50.0);
  HillClimbingScheduler ghc;
  const McsResult res = runCoveringSchedule(sys, ghc);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(sys.unreadCoverableCount(), 0);
  EXPECT_EQ(res.tags_read + res.uncoverable, sys.numTags());
  EXPECT_EQ(res.slots, static_cast<int>(res.schedule.size()));
}

TEST(Mcs, SlotRecordsSumToTotal) {
  core::System sys = test::smallRandomSystem(2, 15, 120, 50.0);
  HillClimbingScheduler ghc;
  const McsResult res = runCoveringSchedule(sys, ghc);
  int sum = 0;
  for (const SlotRecord& s : res.schedule) sum += s.tags_read;
  EXPECT_EQ(sum, res.tags_read);
}

TEST(Mcs, UncoverableTagsExcludedFromRequirement) {
  // One reader, two tags, one far outside any interrogation region.
  std::vector<core::Reader> readers = {test::makeReader(0, 0, 5.0, 3.0)};
  std::vector<core::Tag> tags = {test::makeTag(1, 0), test::makeTag(90, 90)};
  core::System sys(std::move(readers), std::move(tags));
  HillClimbingScheduler ghc;
  const McsResult res = runCoveringSchedule(sys, ghc);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.tags_read, 1);
  EXPECT_EQ(res.uncoverable, 1);
  EXPECT_EQ(res.slots, 1);
}

TEST(Mcs, AlreadyDoneSystemNeedsZeroSlots) {
  core::System sys = test::figure2System();
  for (int t = 0; t < sys.numTags(); ++t) sys.markRead(t);
  HillClimbingScheduler ghc;
  const McsResult res = runCoveringSchedule(sys, ghc);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.slots, 0);
}

TEST(Mcs, Figure2NeedsTwoSlotsWithExact) {
  core::System sys = test::figure2System();
  ExactScheduler exact;
  const McsResult res = runCoveringSchedule(sys, exact);
  EXPECT_TRUE(res.completed);
  // Slot 1: {A, C} reads 4 tags; slot 2: B reads Tag5.
  EXPECT_EQ(res.slots, 2);
  EXPECT_EQ(res.schedule[0].tags_read, 4);
  EXPECT_EQ(res.schedule[1].tags_read, 1);
}

/// A scheduler that always proposes nothing — must trip stall protection.
class UselessScheduler final : public OneShotScheduler {
 public:
  std::string name() const override { return "Useless"; }
  OneShotResult schedule(const core::System&) override { return {}; }
};

TEST(Mcs, StallGuardAborts) {
  core::System sys = test::figure2System();
  UselessScheduler useless;
  McsOptions opt;
  opt.max_stall = 10;
  const McsResult res = runCoveringSchedule(sys, useless, opt);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.slots, 10);
  EXPECT_EQ(res.tags_read, 0);
}

/// Always proposes *every* reader — never empty, but on a system built of
/// co-located readers the proposal is permanently infeasible: every tag
/// sits in two interrogation disks, so the referee serves nothing.
class EveryoneScheduler final : public OneShotScheduler {
 public:
  std::string name() const override { return "Everyone"; }
  OneShotResult schedule(const core::System& sys) override {
    OneShotResult r;
    for (int v = 0; v < sys.numReaders(); ++v) r.readers.push_back(v);
    r.weight = sys.numTags();  // a lie; the referee must not believe it
    return r;
  }
};

TEST(Mcs, InfeasibleProposalsTripStallGuardNotTheSlotCap) {
  // Two co-located readers, every tag covered by both.  A lone reader would
  // finish in one slot, but the adversarial scheduler activates both each
  // slot, colliding every tag (RRc) forever.  The driver must terminate via
  // max_stall — not spin to max_slots — report completed == false, and the
  // stall counter must equal the executed zero-progress slots exactly.
  std::vector<core::Reader> readers = {test::makeReader(0, 0, 8.0, 4.0),
                                       test::makeReader(0.1, 0, 8.0, 4.0)};
  std::vector<core::Tag> tags = {test::makeTag(1, 0), test::makeTag(0, 1),
                                 test::makeTag(-1, -1)};
  core::System sys(std::move(readers), std::move(tags));

  EveryoneScheduler everyone;
  obs::MetricsRegistry reg;
  McsOptions opt;
  opt.max_stall = 12;
  opt.max_slots = 100000;
  opt.metrics = &reg;
  const McsResult res = runCoveringSchedule(sys, everyone, opt);

  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.slots, 12);
  EXPECT_EQ(res.tags_read, 0);
  EXPECT_EQ(sys.unreadCoverableCount(), 3);
  for (const SlotRecord& s : res.schedule) {
    EXPECT_EQ(s.active.size(), 2u);
    EXPECT_EQ(s.tags_read, 0);
  }
#ifndef RFIDSCHED_NO_OBS
  EXPECT_EQ(reg.counter("mcs.stall_slots").value(), 12);
  EXPECT_EQ(reg.counter("mcs.slots").value(), 12);
  EXPECT_EQ(reg.counter("mcs.tags_read").value(), 0);
#endif
}

TEST(Mcs, MaxSlotsRespected) {
  core::System sys = test::smallRandomSystem(3, 15, 200, 40.0);
  HillClimbingScheduler ghc;
  McsOptions opt;
  opt.max_slots = 2;
  const McsResult res = runCoveringSchedule(sys, ghc, opt);
  EXPECT_LE(res.slots, 2);
}

// A better one-shot scheduler yields a schedule at most as long, on batch
// average — the core premise of the paper's Figure 6/7 comparison.
TEST(Mcs, BetterOneShotMeansFewerSlots) {
  double exact_slots = 0.0, ghc_slots = 0.0;
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    core::System sys = test::smallRandomSystem(seed, 12, 100, 40.0);
    ExactScheduler exact;
    const McsResult a = runCoveringSchedule(sys, exact);
    EXPECT_TRUE(a.completed);
    exact_slots += a.slots;

    sys.resetReads();
    HillClimbingScheduler ghc;
    const McsResult b = runCoveringSchedule(sys, ghc);
    EXPECT_TRUE(b.completed);
    ghc_slots += b.slots;
  }
  EXPECT_LE(exact_slots, ghc_slots + 1.0);  // ties allowed, regressions not
}

TEST(Mcs, WorksWithEverySchedulerFamily) {
  core::System sys = test::smallRandomSystem(4, 18, 120, 60.0);
  const graph::InterferenceGraph g(sys);

  PtasScheduler ptas;
  EXPECT_TRUE(runCoveringSchedule(sys, ptas).completed);

  sys.resetReads();
  GrowthScheduler alg2(g);
  EXPECT_TRUE(runCoveringSchedule(sys, alg2).completed);
}

}  // namespace
}  // namespace rfid::sched
