// test_ckpt_resume.cpp — the resume contract (docs/recovery.md): for every
// algorithm, with and without a fault plan, a run interrupted by a budget
// and resumed from its journal must be bit-identical to an uninterrupted
// run — the McsResult, the full schedule, and the exported metrics JSON.
// Also the fail-closed paths: identity mismatches, missing journals, and
// torn tails.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "ckpt/mcs_ckpt.h"
#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "fault/fault_plan.h"
#include "graph/interference_graph.h"
#include "obs/metrics.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "test_helpers.h"

namespace rfid::ckpt {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 7003;

core::System makeSys() { return test::smallRandomSystem(kSeed, 24, 400, 70.0); }

fault::FaultPlan makeCrashPlan() {
  fault::FaultPlan plan;
  plan.setSeed(kSeed);
  for (int i = 0; i < 6; ++i) {
    plan.addCrash(i * 4, 0, -1, /*loud=*/(i % 2) != 0);
  }
  return plan;
}

std::unique_ptr<sched::OneShotScheduler> makeScheduler(
    const std::string& algo, const graph::InterferenceGraph& g,
    const core::System& sys) {
  if (algo == "alg2") return std::make_unique<sched::GrowthScheduler>(g);
  if (algo == "alg3") {
    return std::make_unique<dist::GrowthDistributedScheduler>(g);
  }
  if (algo == "ghc") return std::make_unique<sched::HillClimbingScheduler>();
  if (algo == "ca") {
    return std::make_unique<dist::ColorwaveScheduler>(sys, kSeed);
  }
  ADD_FAILURE() << "unknown algo " << algo;
  return nullptr;
}

struct RunOut {
  CheckpointedRun run;
  std::string metrics;
};

/// One checkpointed MCS run from scratch: fresh system, fresh scheduler,
/// fresh metrics registry — exactly what a restarted process would have.
RunOut runOnce(const std::string& algo, bool with_faults,
               const std::string& ckpt_path, bool resume, int slot_cap) {
  core::System sys = makeSys();
  const graph::InterferenceGraph g(sys);
  auto scheduler = makeScheduler(algo, g, sys);
  const fault::FaultPlan plan = makeCrashPlan();

  obs::MetricsRegistry reg;
  sched::McsOptions opt;
  opt.max_stall = 50;
  opt.metrics = &reg;
  if (with_faults) opt.faults = &plan;

  RunBudget budget;
  if (slot_cap > 0) {
    budget.setSlotCap(slot_cap);
    opt.budget = &budget;
    scheduler->attachCancel(&budget.token());
  }

  CheckpointSetup setup;
  setup.path = ckpt_path;
  setup.resume = resume;
  setup.seed = kSeed;
  setup.snapshot_every = 2;  // exercise snapshots on short test runs

  RunOut out;
  out.run = runMcsCheckpointed(sys, *scheduler, opt, setup);
  std::ostringstream os;
  reg.writeJson(os);
  out.metrics = os.str();
  return out;
}

void expectSameResult(const sched::McsResult& a, const sched::McsResult& b) {
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.tags_read, b.tags_read);
  EXPECT_EQ(a.uncoverable, b.uncoverable);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.interrupted, b.interrupted);
  EXPECT_EQ(a.degradation.faulty_slots, b.degradation.faulty_slots);
  EXPECT_EQ(a.degradation.slots_lost, b.degradation.slots_lost);
  EXPECT_EQ(a.degradation.crashed_activations,
            b.degradation.crashed_activations);
  EXPECT_EQ(a.degradation.replanned_activations,
            b.degradation.replanned_activations);
  EXPECT_EQ(a.degradation.tags_missed, b.degradation.tags_missed);
  EXPECT_EQ(a.degradation.tags_orphaned, b.degradation.tags_orphaned);
  EXPECT_EQ(a.degradation.ideal_tags_read, b.degradation.ideal_tags_read);
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t q = 0; q < a.schedule.size(); ++q) {
    EXPECT_EQ(a.schedule[q].active, b.schedule[q].active) << "slot " << q;
    EXPECT_EQ(a.schedule[q].tags_read, b.schedule[q].tags_read)
        << "slot " << q;
  }
}

class CkptResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid suffix: ctest -j cases are separate processes sharing one cwd.
    dir_ = "ckpt_resume_tmp." + std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }
  std::string dir_;
};

TEST_F(CkptResumeTest, InterruptThenResumeIsBitIdenticalForEveryAlgorithm) {
  for (const std::string algo : {"alg2", "alg3", "ghc", "ca"}) {
    for (const bool faults : {false, true}) {
      SCOPED_TRACE(algo + (faults ? "+faults" : " clean"));
      const std::string tag = algo + std::string(faults ? "-f" : "-c");

      // Uninterrupted run, journaled.
      const RunOut base = runOnce(algo, faults, path(tag + "-base"),
                                  /*resume=*/false, /*slot_cap=*/0);
      ASSERT_TRUE(base.run.ok) << base.run.error;
      EXPECT_FALSE(base.run.resumed);
      EXPECT_FALSE(base.run.result.interrupted);
      // The scenario must be long enough that a cap of 2 really interrupts.
      ASSERT_GT(base.run.result.slots, 2) << "scenario too easy to test resume";

      // Same run interrupted by a slot cap…
      const RunOut cut = runOnce(algo, faults, path(tag),
                                 /*resume=*/false, /*slot_cap=*/2);
      ASSERT_TRUE(cut.run.ok) << cut.run.error;
      ASSERT_TRUE(cut.run.result.interrupted);
      EXPECT_EQ(cut.run.result.stop, sched::McsStop::kSlotCap);
      EXPECT_EQ(cut.run.result.slots, 2);

      // …and resumed from its journal in a fresh "process".
      const RunOut res = runOnce(algo, faults, path(tag),
                                 /*resume=*/true, /*slot_cap=*/0);
      ASSERT_TRUE(res.run.ok) << res.run.error;
      EXPECT_TRUE(res.run.resumed);
      EXPECT_EQ(res.run.replayed_slots, 2);
      EXPECT_EQ(res.run.result.replayed_slots, 2);

      // The resumed run is bit-identical to the uninterrupted one —
      // result, schedule, and metrics JSON (replayed_slots excepted,
      // which records the resume itself).
      expectSameResult(base.run.result, res.run.result);
      EXPECT_EQ(base.metrics, res.metrics);

      // And checkpointing itself never changes the computed result.
      const RunOut plain = runOnce(algo, faults, "", false, 0);
      ASSERT_TRUE(plain.run.ok);
      expectSameResult(plain.run.result, base.run.result);
    }
  }
}

TEST_F(CkptResumeTest, ResumeOfCompleteJournalReproducesTheRun) {
  const RunOut base =
      runOnce("alg2", false, path("done"), /*resume=*/false, /*slot_cap=*/0);
  ASSERT_TRUE(base.run.ok) << base.run.error;
  const RunOut res =
      runOnce("alg2", false, path("done"), /*resume=*/true, /*slot_cap=*/0);
  ASSERT_TRUE(res.run.ok) << res.run.error;
  EXPECT_TRUE(res.run.resumed);
  EXPECT_EQ(res.run.replayed_slots, base.run.result.slots);
  expectSameResult(base.run.result, res.run.result);
  EXPECT_EQ(base.metrics, res.metrics);
}

TEST_F(CkptResumeTest, ResumeToleratesTornTail) {
  const RunOut base =
      runOnce("ghc", true, path("base"), /*resume=*/false, /*slot_cap=*/0);
  ASSERT_TRUE(base.run.ok) << base.run.error;
  const RunOut cut =
      runOnce("ghc", true, path("torn"), /*resume=*/false, /*slot_cap=*/3);
  ASSERT_TRUE(cut.run.ok) << cut.run.error;
  // Simulate dying mid-append: half a record at the tail.
  {
    std::ofstream os(path("torn"), std::ios::binary | std::ios::app);
    os << "{\"type\":\"slot\",\"q\":3,\"active\":[1,2";
  }
  const RunOut res =
      runOnce("ghc", true, path("torn"), /*resume=*/true, /*slot_cap=*/0);
  ASSERT_TRUE(res.run.ok) << res.run.error;
  EXPECT_EQ(res.run.replayed_slots, 3);
  expectSameResult(base.run.result, res.run.result);
  EXPECT_EQ(base.metrics, res.metrics);
}

TEST_F(CkptResumeTest, ResumeWithoutJournalFailsClosed) {
  const RunOut res =
      runOnce("alg2", false, path("missing"), /*resume=*/true, 0);
  EXPECT_FALSE(res.run.ok);
  EXPECT_NE(res.run.error.find("cannot resume"), std::string::npos)
      << res.run.error;
}

TEST_F(CkptResumeTest, IdentityMismatchesFailClosed) {
  const RunOut base =
      runOnce("alg2", false, path("j"), /*resume=*/false, /*slot_cap=*/2);
  ASSERT_TRUE(base.run.ok) << base.run.error;
  // Wrong algorithm.
  const RunOut wrong_algo =
      runOnce("ghc", false, path("j"), /*resume=*/true, 0);
  EXPECT_FALSE(wrong_algo.run.ok);
  EXPECT_NE(wrong_algo.run.error.find("mismatch"), std::string::npos)
      << wrong_algo.run.error;
  // Wrong fault plan (journal was written clean).
  const RunOut wrong_fault =
      runOnce("alg2", true, path("j"), /*resume=*/true, 0);
  EXPECT_FALSE(wrong_fault.run.ok);
  EXPECT_NE(wrong_fault.run.error.find("mismatch"), std::string::npos)
      << wrong_fault.run.error;
}

TEST_F(CkptResumeTest, FreshRunRefusesToClobberExistingJournal) {
  const RunOut base =
      runOnce("alg2", false, path("j"), /*resume=*/false, /*slot_cap=*/2);
  ASSERT_TRUE(base.run.ok) << base.run.error;
  const RunOut clobber =
      runOnce("alg2", false, path("j"), /*resume=*/false, 0);
  EXPECT_FALSE(clobber.run.ok);
}

TEST_F(CkptResumeTest, AutoResumeStartsFreshThenPicksUp) {
  // No journal yet: auto-resume falls back to a fresh run.
  core::System sys = makeSys();
  const graph::InterferenceGraph g(sys);
  auto s1 = makeScheduler("alg2", g, sys);
  sched::McsOptions opt;
  opt.max_stall = 50;
  CheckpointSetup setup;
  setup.path = path("auto");
  setup.auto_resume = true;
  setup.seed = kSeed;
  RunBudget budget;
  budget.setSlotCap(2);
  opt.budget = &budget;
  const CheckpointedRun first = runMcsCheckpointed(sys, *s1, opt, setup);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.resumed);
  ASSERT_TRUE(first.result.interrupted);

  // Journal exists now: the identical invocation resumes it.
  core::System sys2 = makeSys();
  auto s2 = makeScheduler("alg2", g, sys2);
  opt.budget = nullptr;
  const CheckpointedRun second = runMcsCheckpointed(sys2, *s2, opt, setup);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.replayed_slots, 2);
  EXPECT_FALSE(second.result.interrupted);
}

}  // namespace
}  // namespace rfid::ckpt
