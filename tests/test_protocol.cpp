// Link-layer protocol tests: framed ALOHA, tree walking, and the slot
// timing adapter.
#include <gtest/gtest.h>

#include <algorithm>

#include "protocol/aloha.h"
#include "protocol/slot_timing.h"
#include "protocol/tree_walking.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "test_helpers.h"

namespace rfid::protocol {
namespace {

TEST(Aloha, ZeroTagsInstant) {
  workload::Rng rng(1);
  const AlohaResult res = runAloha(0, rng);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.frames, 0);
  EXPECT_EQ(res.micro_slots, 0);
}

TEST(Aloha, SingleTagFirstFrame) {
  workload::Rng rng(2);
  const AlohaResult res = runAloha(1, rng);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.tags_identified, 1);
  EXPECT_EQ(res.frames, 1);  // a lone tag cannot collide
}

TEST(Aloha, IdentifiesEveryTag) {
  for (const int n : {5, 20, 100, 500}) {
    workload::Rng rng(static_cast<std::uint64_t>(n));
    const AlohaResult res = runAloha(n, rng);
    EXPECT_TRUE(res.completed) << n;
    EXPECT_EQ(res.tags_identified, n);
    EXPECT_GE(res.micro_slots, n);  // one micro-slot per read, at best
  }
}

TEST(Aloha, SlotEfficiencyIsAlohaLike) {
  // Framed ALOHA's throughput tops out near 1/e ≈ 0.368; with adaptation
  // the end-to-end efficiency lands in a band around it.
  workload::Rng rng(7);
  const AlohaResult res = runAloha(1000, rng);
  const double eff = 1000.0 / static_cast<double>(res.micro_slots);
  EXPECT_GT(eff, 0.20);
  EXPECT_LT(eff, 0.55);
}

TEST(Aloha, DeterministicPerSeed) {
  workload::Rng a(9), b(9);
  const AlohaResult ra = runAloha(64, a);
  const AlohaResult rb = runAloha(64, b);
  EXPECT_EQ(ra.micro_slots, rb.micro_slots);
  EXPECT_EQ(ra.frames, rb.frames);
}

TEST(TreeWalk, EmptyPopulation) {
  const TreeWalkResult res = runTreeWalk({}, 8);
  EXPECT_EQ(res.tags_identified, 0);
  EXPECT_EQ(res.probes, 1);  // the root "anyone there?" query
  EXPECT_EQ(res.empties, 1);
}

TEST(TreeWalk, SingleTag) {
  const std::vector<std::uint64_t> ids = {0b1010};
  const TreeWalkResult res = runTreeWalk(ids, 4);
  EXPECT_EQ(res.tags_identified, 1);
  EXPECT_EQ(res.probes, 1);
  EXPECT_EQ(res.collisions, 0);
}

TEST(TreeWalk, TwoTagsSplitAtFirstDifferingBit) {
  // ids 0b00 and 0b10 differ at the top bit: one collision at the root,
  // then two singleton probes.
  const std::vector<std::uint64_t> ids = {0b00, 0b10};
  const TreeWalkResult res = runTreeWalk(ids, 2);
  EXPECT_EQ(res.tags_identified, 2);
  EXPECT_EQ(res.collisions, 1);
  EXPECT_EQ(res.probes, 3);
  EXPECT_EQ(res.empties, 0);
}

TEST(TreeWalk, DeepSplitCostsMoreProbes) {
  // ids differing only at the lowest bit force a full-depth walk.
  const std::vector<std::uint64_t> shallow = {0b0000, 0b1000};
  const std::vector<std::uint64_t> deep = {0b0000, 0b0001};
  const auto rs = runTreeWalk(shallow, 4);
  const auto rd = runTreeWalk(deep, 4);
  EXPECT_EQ(rs.tags_identified, 2);
  EXPECT_EQ(rd.tags_identified, 2);
  EXPECT_GT(rd.probes, rs.probes);
  EXPECT_EQ(rd.collisions, 4);  // collision at every level down
}

TEST(TreeWalk, IdentifiesLargeRandomPopulation) {
  workload::Rng rng(11);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 300; ++i) ids.push_back(rng.next() & 0xffff);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  const TreeWalkResult res = runTreeWalk(ids, 16);
  EXPECT_EQ(res.tags_identified, static_cast<int>(ids.size()));
  // Probe count is Θ(n log(space/n)); sanity band.
  EXPECT_GT(res.probes, static_cast<std::int64_t>(ids.size()));
  EXPECT_LT(res.probes, static_cast<std::int64_t>(ids.size()) * 20);
}

TEST(TreeWalk, DeterministicAlways) {
  const std::vector<std::uint64_t> ids = {3, 9, 12, 200, 1023};
  const auto a = runTreeWalk(ids, 10);
  const auto b = runTreeWalk(ids, 10);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.collisions, b.collisions);
}

TEST(SlotTiming, ChargesSlowestReaderPerSlot) {
  core::System sys = test::smallRandomSystem(21, 15, 120, 50.0);
  sched::HillClimbingScheduler ghc;
  const sched::McsResult schedule = sched::runCoveringSchedule(sys, ghc);
  ASSERT_TRUE(schedule.completed);

  const SlotTimingResult aloha =
      timeSchedule(sys, schedule, Arbitration::kAloha, workload::Rng(5));
  const SlotTimingResult tree =
      timeSchedule(sys, schedule, Arbitration::kTreeWalk, workload::Rng(5));

  EXPECT_EQ(aloha.macro_slots, schedule.slots);
  EXPECT_EQ(tree.macro_slots, schedule.slots);
  EXPECT_EQ(aloha.tags_read, schedule.tags_read);
  EXPECT_EQ(tree.tags_read, schedule.tags_read);
  // Parallel (max) time never exceeds serial (sum) time.
  EXPECT_LE(aloha.micro_slots, aloha.micro_slots_serial);
  EXPECT_LE(tree.micro_slots, tree.micro_slots_serial);
  EXPECT_GT(aloha.micro_slots, 0);
  EXPECT_GT(tree.micro_slots, 0);
}

TEST(SlotTiming, EmptyScheduleCostsNothing) {
  core::System sys = test::smallRandomSystem(22, 5, 20);
  const sched::McsResult empty;
  const SlotTimingResult res =
      timeSchedule(sys, empty, Arbitration::kTreeWalk, workload::Rng(1));
  EXPECT_EQ(res.macro_slots, 0);
  EXPECT_EQ(res.micro_slots, 0);
  EXPECT_EQ(res.tags_read, 0);
}

}  // namespace
}  // namespace rfid::protocol
