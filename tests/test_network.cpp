// Network simulator tests: delivery discipline, latency, flood propagation,
// quiescence, and accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "distributed/network.h"

namespace rfid::dist {
namespace {

graph::InterferenceGraph pathGraph(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return graph::InterferenceGraph(n, edges);
}

/// Floods a token with a TTL; records the round it first arrived.
class FloodNode final : public NodeProgram {
 public:
  explicit FloodNode(bool origin, int ttl) : origin_(origin), ttl_(ttl) {}

  void init(Context& ctx) override {
    if (origin_) {
      received_round_ = -1;  // origin "has" it before round 0
      ctx.broadcast(1, {ttl_});
    }
  }

  void onRound(Context& ctx, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      if (seen_) continue;
      seen_ = true;
      received_round_ = ctx.round();
      if (m.data[0] > 1) ctx.broadcast(1, {m.data[0] - 1});
    }
  }

  bool isDone() const override { return true; }  // passive after relaying

  int receivedRound() const { return received_round_; }

 private:
  bool origin_;
  int ttl_;
  bool seen_ = false;
  int received_round_ = -1000;
};

TEST(Network, FloodReachesExactlyTtlHops) {
  const auto g = pathGraph(8);
  const int ttl = 3;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int v = 0; v < 8; ++v) {
    programs.push_back(std::make_unique<FloodNode>(v == 0, ttl));
  }
  Network net(g, std::move(programs));
  const auto stats = net.run(100);
  EXPECT_TRUE(stats.all_done);
  // Node at distance d receives in round d−1; beyond ttl: never.
  for (int v = 1; v <= ttl; ++v) {
    EXPECT_EQ(static_cast<const FloodNode&>(net.program(v)).receivedRound(),
              v - 1)
        << "node " << v;
  }
  for (int v = ttl + 1; v < 8; ++v) {
    EXPECT_EQ(static_cast<const FloodNode&>(net.program(v)).receivedRound(),
              -1000)
        << "node " << v;
  }
}

TEST(Network, CountsMessagesAndPayload) {
  const auto g = pathGraph(3);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int v = 0; v < 3; ++v) {
    programs.push_back(std::make_unique<FloodNode>(v == 0, 1));
  }
  Network net(g, std::move(programs));
  const auto stats = net.run(100);
  // init: node 0 broadcasts to its single neighbor → 1 message of 1 word.
  // Node 1 receives with ttl 1 → does not relay.
  EXPECT_EQ(stats.messages, 1);
  EXPECT_EQ(stats.payload_words, 1);
}

/// Sends one message per round forever — exercises the round cap.
class ChattyNode final : public NodeProgram {
 public:
  void init(Context&) override {}
  void onRound(Context& ctx, std::span<const Message>) override {
    if (!ctx.neighbors().empty()) ctx.send(ctx.neighbors()[0], 7, {});
    ++rounds_;
  }
  bool isDone() const override { return false; }
  int rounds() const { return rounds_; }

 private:
  int rounds_ = 0;
};

TEST(Network, RoundCapStopsNonQuiescentRuns) {
  const auto g = pathGraph(2);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<ChattyNode>());
  programs.push_back(std::make_unique<ChattyNode>());
  Network net(g, std::move(programs));
  const auto stats = net.run(25);
  EXPECT_FALSE(stats.all_done);
  EXPECT_EQ(stats.rounds, 25);
  EXPECT_EQ(static_cast<const ChattyNode&>(net.program(0)).rounds(), 25);
}

/// Records every sender it hears from.
class ListenerNode final : public NodeProgram {
 public:
  void init(Context& ctx) override { ctx.broadcast(1, {ctx.self()}); }
  void onRound(Context&, std::span<const Message> inbox) override {
    for (const Message& m : inbox) heard_.push_back(m.from);
  }
  bool isDone() const override { return true; }
  const std::vector<int>& heard() const { return heard_; }

 private:
  std::vector<int> heard_;
};

TEST(Network, MessagesOnlyTravelAlongEdges) {
  // Star: 0 is the hub.  Leaves only ever hear the hub.
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {0, 2}, {0, 3}};
  const graph::InterferenceGraph g(4, edges);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int v = 0; v < 4; ++v) programs.push_back(std::make_unique<ListenerNode>());
  Network net(g, std::move(programs));
  (void)net.run(10);
  for (int leaf = 1; leaf < 4; ++leaf) {
    for (const int from : static_cast<const ListenerNode&>(net.program(leaf)).heard()) {
      EXPECT_EQ(from, 0);
    }
  }
  // The hub heard every leaf exactly once.
  auto hub_heard = static_cast<const ListenerNode&>(net.program(0)).heard();
  std::sort(hub_heard.begin(), hub_heard.end());
  EXPECT_EQ(hub_heard, (std::vector<int>{1, 2, 3}));
}

TEST(Network, QuiescenceNeedsEmptyInFlight) {
  // A done node that sent one last message: the network must process the
  // delivery round before declaring quiescence.
  const auto g = pathGraph(2);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<FloodNode>(true, 5));
  programs.push_back(std::make_unique<FloodNode>(false, 5));
  Network net(g, std::move(programs));
  const auto stats = net.run(100);
  EXPECT_TRUE(stats.all_done);
  EXPECT_GE(stats.rounds, 2);  // round 0 delivers, round 1 drains the relay
}

}  // namespace
}  // namespace rfid::dist
