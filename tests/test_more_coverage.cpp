// Edge-case batch: behaviors not covered by the per-module suites —
// protocol caps, Colorwave shrink probing, stream output, bounds.
#include <gtest/gtest.h>

#include <sstream>

#include "distributed/colorwave.h"
#include "geometry/disk.h"
#include "geometry/vec2.h"
#include "protocol/aloha.h"
#include "sched/mcs.h"
#include "sched/hill_climbing.h"
#include "test_helpers.h"

namespace rfid {
namespace {

TEST(MoreGeometry, DiskBounds) {
  const geom::Disk d{{3.0, -2.0}, 1.5};
  const geom::Aabb b = d.bounds();
  EXPECT_DOUBLE_EQ(b.lo.x, 1.5);
  EXPECT_DOUBLE_EQ(b.lo.y, -3.5);
  EXPECT_DOUBLE_EQ(b.hi.x, 4.5);
  EXPECT_DOUBLE_EQ(b.hi.y, -0.5);
  EXPECT_DOUBLE_EQ(b.width(), 3.0);
}

TEST(MoreGeometry, Vec2StreamOutput) {
  std::ostringstream os;
  os << geom::Vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(MoreProtocol, AlohaFrameCapReportsIncomplete) {
  workload::Rng rng(1);
  protocol::AlohaOptions opt;
  opt.max_frames = 1;
  opt.initial_frame = 2;  // 2 slots for 50 tags: cannot finish in 1 frame
  const protocol::AlohaResult res = protocol::runAloha(50, rng, opt);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.frames, 1);
  EXPECT_LT(res.tags_identified, 50);
}

TEST(MoreProtocol, AlohaFrameSizeStaysClamped) {
  workload::Rng rng(2);
  protocol::AlohaOptions opt;
  opt.initial_frame = 4096;  // above max
  opt.max_frame = 8;
  opt.min_frame = 2;
  const protocol::AlohaResult res = protocol::runAloha(20, rng, opt);
  EXPECT_TRUE(res.completed);
  // Every frame ≤ max_frame → micro_slots ≤ frames * max_frame.
  EXPECT_LE(res.micro_slots, static_cast<std::int64_t>(res.frames) * 8);
}

TEST(MoreColorwave, DownProbingShrinksOversizedPalette) {
  // Sparse graph colored with a huge initial palette: with shrink probing
  // enabled, maxColors should fall and the palette compact over time.
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {2, 3}};
  const graph::InterferenceGraph g(6, edges);
  std::vector<core::Reader> readers;
  for (int i = 0; i < 6; ++i) {
    readers.push_back(test::makeReader(i * 100.0, 0.0, 5.0));
  }
  const core::System sys(std::move(readers), {});

  dist::ColorwaveOptions opt;
  opt.initial_max_colors = 32;
  opt.down_threshold = 0.05;  // enable shrink probing
  opt.min_colors = 2;
  opt.settle_rounds = 4000;
  dist::ColorwaveScheduler cw(g, 3, opt);
  (void)cw.schedule(sys);
  auto colors = cw.colors();
  int mx = 0;
  for (const int c : colors) mx = std::max(mx, c);
  EXPECT_LT(mx, 32) << "palette should have compacted below the initial 32";
}

TEST(MoreMcs, ScheduleRecordsActiveSets) {
  core::System sys = test::figure2System();
  sched::HillClimbingScheduler ghc;
  const sched::McsResult res = sched::runCoveringSchedule(sys, ghc);
  ASSERT_TRUE(res.completed);
  ASSERT_FALSE(res.schedule.empty());
  // First slot is GHC's {B}.
  EXPECT_EQ(res.schedule[0].active, (std::vector<int>{1}));
  EXPECT_EQ(res.schedule[0].tags_read, 3);
}

TEST(MoreWeight, SingleWeightMatchesCoverageMinusRead) {
  core::System sys = test::smallRandomSystem(5, 12, 80);
  for (int v = 0; v < sys.numReaders(); ++v) {
    EXPECT_EQ(sys.singleWeight(v), static_cast<int>(sys.coverage(v).size()));
  }
  // Mark every other tag and re-check.
  for (int t = 0; t < sys.numTags(); t += 2) sys.markRead(t);
  for (int v = 0; v < sys.numReaders(); ++v) {
    int expect = 0;
    for (const int t : sys.coverage(v)) expect += !sys.isRead(t);
    EXPECT_EQ(sys.singleWeight(v), expect);
  }
}

TEST(MoreSystem, MarkUnreadRearmsTags) {
  core::System sys = test::figure2System();
  sys.markRead(0);
  EXPECT_EQ(sys.unreadCount(), 4);
  sys.markUnread(0);
  EXPECT_EQ(sys.unreadCount(), 5);
  EXPECT_FALSE(sys.isRead(0));
}

}  // namespace
}  // namespace rfid
