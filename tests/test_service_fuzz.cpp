// test_service_fuzz.cpp — fuzz sweeps over the service request parser, the
// daemon's outermost trust boundary (src/service/request.h).
//
// Three generators hammer RequestStreamParser: byte-level mutations of a
// valid request stream (flips, deletions, duplications), truncations at
// every prefix length, and token soup assembled from the protocol's own
// vocabulary (the nastiest inputs are almost-valid ones).  The invariants
// are the fail-closed contract, not any particular parse:
//
//   * next() never crashes, hangs, or reads past its limits (ASan/UBSan in
//     the sanitizer CI job make this bite);
//   * the stream always terminates: every call yields kRequest, kError, or
//     kEof, and total items are bounded by the input's line count;
//   * every kError carries a structured rejection (status kRejected, a
//     parse-layer code, non-empty detail);
//   * every kRequest satisfies the documented value bounds — hostile bytes
//     can never smuggle an out-of-range deployment past admission.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "service/request.h"
#include "test_helpers.h"
#include "workload/rng.h"

namespace rfid::service {
namespace {

/// A valid two-request stream exercising every key, used as mutation seed.
std::string validStream() {
  return
      "request alpha-1\n"
      "algo alg2\n"
      "layout clusters\n"
      "readers 12\n"
      "tags 60\n"
      "side 50.5\n"
      "lambda-R 9\n"
      "lambda-r 3\n"
      "seed 42\n"
      "rho 1.5\n"
      "k 3\n"
      "channels 4\n"
      "deadline-ms 2500\n"
      "max-slots 7\n"
      "retries 2\n"
      "checkpoint off\n"
      "hang-ms 10\n"
      "pace-ms 20\n"
      "fault-begin\n"
      "seed 9\n"
      "crash 0 1 3\n"
      "miss 0.25\n"
      "fault-end\n"
      "end\n"
      "request beta.2\n"
      "end\n";
}

/// Drains the parser over `input`, asserting the fail-closed invariants.
/// Returns (requests, errors) for callers that assert more.
std::pair<int, int> drainAndCheck(const std::string& input) {
  std::istringstream in(input);
  RequestStreamParser p(in);
  RequestSpec spec;
  Response err;
  int requests = 0;
  int errors = 0;
  // Each iteration consumes at least one input line, so line count + 1
  // bounds the items a terminating parser can yield.  Tripping the guard
  // means next() stopped consuming input — an infinite-loop bug.
  const int max_items =
      static_cast<int>(std::count(input.begin(), input.end(), '\n')) + 2;
  for (int i = 0; i <= max_items; ++i) {
    const auto item = p.next(&spec, &err);
    if (item == RequestStreamParser::Item::kEof) {
      EXPECT_EQ(p.parsed(), requests);
      EXPECT_EQ(p.errors(), errors);
      return {requests, errors};
    }
    if (item == RequestStreamParser::Item::kError) {
      ++errors;
      EXPECT_EQ(err.status, Status::kRejected);
      EXPECT_TRUE(err.code == Code::kParse || err.code == Code::kTooLarge ||
                  err.code == Code::kTruncated || err.code == Code::kBadValue)
          << codeName(err.code);
      EXPECT_FALSE(err.detail.empty());
      // A rejection must itself serialize safely (hostile bytes may have
      // landed in id/detail; writeJson escapes them).
      std::ostringstream os;
      err.writeJson(os);
      EXPECT_FALSE(os.str().empty());
      continue;
    }
    ++requests;
    // Parsed specs respect every documented bound — the OOM guard.
    EXPECT_TRUE(validRequestId(spec.id));
    EXPECT_GE(spec.readers, 1);
    EXPECT_LE(spec.readers, kMaxReaders);
    EXPECT_GE(spec.tags, 0);
    EXPECT_LE(spec.tags, kMaxTags);
    EXPECT_GT(spec.side, 0.0);
    EXPECT_GE(spec.deadline_ms, 0);
    EXPECT_LE(spec.deadline_ms, kMaxDeadlineMs);
    EXPECT_GE(spec.max_slots, 0);
    EXPECT_LE(spec.max_slots, kMaxSlotCap);
    EXPECT_GE(spec.retries, -1);
    EXPECT_LE(spec.retries, kMaxRetries);
    EXPECT_GE(spec.hang_ms, 0);
    EXPECT_LE(spec.hang_ms, kMaxHangMs);
    EXPECT_GE(spec.pace_ms, 0);
    EXPECT_LE(spec.pace_ms, kMaxPaceMs);
  }
  ADD_FAILURE() << "parser failed to terminate within " << max_items
                << " items";
  return {requests, errors};
}

class ServiceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServiceFuzz, ByteMutationsNeverCrashTheParser) {
  workload::Rng rng(workload::deriveSeed(GetParam(), "svc.fuzz.mutate"));
  const std::string base = validStream();
  for (int iter = 0; iter < test::iterBudget(40); ++iter) {
    std::string s = base;
    const int edits = rng.uniformInt(1, 8);
    for (int e = 0; e < edits && !s.empty(); ++e) {
      const auto pos =
          static_cast<std::size_t>(rng.uniformInt(0, static_cast<int>(s.size()) - 1));
      switch (rng.uniformInt(0, 3)) {
        case 0:  // flip to an arbitrary byte (NUL and friends included)
          s[pos] = static_cast<char>(rng.uniformInt(0, 255));
          break;
        case 1:  // delete
          s.erase(pos, 1);
          break;
        case 2:  // duplicate a chunk
          s.insert(pos, s.substr(pos, static_cast<std::size_t>(
                                          rng.uniformInt(1, 16))));
          break;
        default:  // swap two bytes
          std::swap(s[pos], s[static_cast<std::size_t>(rng.uniformInt(
                                0, static_cast<int>(s.size()) - 1))]);
      }
    }
    drainAndCheck(s);
  }
}

TEST_P(ServiceFuzz, TruncationsAlwaysFailClosed) {
  const std::string base = validStream();
  // Every prefix — the mid-request ones must yield kTruncated or a clean
  // shorter parse, never a hang or crash.
  const auto stride = static_cast<std::size_t>(
      1 + static_cast<int>(GetParam() % 3));
  for (std::size_t len = 0; len < base.size(); len += stride) {
    drainAndCheck(base.substr(0, len));
  }
}

TEST_P(ServiceFuzz, TokenSoupIsAlwaysStructurallyHandled) {
  workload::Rng rng(workload::deriveSeed(GetParam(), "svc.fuzz.soup"));
  const std::vector<std::string> words = {
      "request",  "end",        "algo",       "alg2",    "readers",
      "tags",     "deadline-ms", "fault-begin", "fault-end", "seed",
      "crash",    "miss",       "checkpoint", "on",      "off",
      "r1",       "-1",         "0",          "999999999999999999999",
      "1e308",    "nan",        "#",          "",        "\t",
      "🦀",       std::string(100, 'a'),      "request request",
  };
  for (int iter = 0; iter < test::iterBudget(40); ++iter) {
    std::string s;
    const int lines = rng.uniformInt(0, 40);
    for (int l = 0; l < lines; ++l) {
      const int tokens = rng.uniformInt(1, 4);
      for (int t = 0; t < tokens; ++t) {
        if (t > 0) s += ' ';
        s += words[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(words.size()) - 1))];
      }
      s += '\n';
    }
    drainAndCheck(s);
  }
}

TEST(ServiceFuzzLimits, OversizedLinesAreConsumedNotStored) {
  // A multi-megabyte body line must cost O(kMaxLineLen) memory and yield
  // exactly one kTooLarge error; after resyncing past that request's `end`
  // the next request must parse fine.
  std::string s = "request bad\n";
  s += std::string(4 * kMaxLineLen, 'x');
  s += "\nend\nrequest ok\nend\n";
  const auto [requests, errors] = drainAndCheck(s);
  EXPECT_EQ(requests, 1);
  EXPECT_EQ(errors, 1);
}

TEST(ServiceFuzzLimits, ValidSeedStreamParsesCleanly) {
  // The mutation baseline itself must be green, or every sweep above is
  // fuzzing garbage.
  const auto [requests, errors] = drainAndCheck(validStream());
  EXPECT_EQ(requests, 2);
  EXPECT_EQ(errors, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ServiceFuzz,
                         ::testing::ValuesIn(test::seedRange(101, 6)));

}  // namespace
}  // namespace rfid::service
