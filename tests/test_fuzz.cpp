// Randomized invariant sweeps ("fuzz"): hammer every scheduler over many
// random instances and assert the referee-level invariants that must hold
// regardless of algorithm quality.
#include <gtest/gtest.h>

#include <algorithm>

#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/channels.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "sched/qlearning.h"
#include "test_helpers.h"

namespace rfid {
namespace {

/// Invariants of a single slot outcome.
void checkSlotInvariants(const core::System& sys, std::span<const int> active,
                         std::span<const int> served) {
  // Served tags are unread, covered by exactly one active reader, and that
  // reader is not an RTc victim — re-derived from first principles here,
  // independently of System's implementation.
  for (const int t : served) {
    ASSERT_FALSE(sys.isRead(t));
    int coverers = 0;
    int owner = -1;
    for (const int v : active) {
      if (std::binary_search(sys.coverage(v).begin(), sys.coverage(v).end(), t)) {
        ++coverers;
        owner = v;
      }
    }
    ASSERT_EQ(coverers, 1) << "tag " << t;
    for (const int u : active) {
      if (u == owner) continue;
      const double ru = sys.reader(u).interference_radius;
      ASSERT_GT(geom::dist(sys.reader(owner).pos, sys.reader(u).pos), ru)
          << "owner " << owner << " is an RTc victim of " << u;
    }
  }
  // No duplicates in the active set.
  std::vector<int> sorted(active.begin(), active.end());
  std::sort(sorted.begin(), sorted.end());
  ASSERT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, AllSchedulersSatisfySlotInvariants) {
  core::System sys = test::smallRandomSystem(GetParam(), 22, 140, 55.0);
  const graph::InterferenceGraph g(sys);

  sched::PtasScheduler alg1;
  sched::GrowthScheduler alg2(g);
  dist::GrowthDistributedScheduler alg3(g);
  sched::HillClimbingScheduler ghc;
  dist::ColorwaveScheduler ca(sys, GetParam());
  sched::QLearningScheduler hiq(GetParam());
  sched::MultiChannelScheduler mc(sched::ChannelOptions{2});

  const std::vector<sched::OneShotScheduler*> all = {&alg1, &alg2, &alg3,
                                                     &ghc, &ca, &hiq, &mc};
  for (sched::OneShotScheduler* s : all) {
    sys.resetReads();
    // Run several slots, mutating read state, checking each outcome.
    for (int slot = 0; slot < 4; ++slot) {
      const sched::OneShotResult one = s->schedule(sys);
      const auto served = sys.wellCoveredTags(one.readers);
      checkSlotInvariants(sys, one.readers, served);
      // MC reports the *channeled* weight (same-channel-only RTc), which
      // legitimately exceeds the single-channel referee's count; all other
      // schedulers must agree with the referee exactly.
      if (s != &mc) {
        ASSERT_EQ(one.weight, static_cast<int>(served.size())) << s->name();
      } else {
        ASSERT_GE(one.weight, static_cast<int>(served.size()));
      }
      sys.markRead(served);
    }
  }
}

TEST_P(FuzzSweep, OurAlgorithmsAlwaysProposeFeasibleSets) {
  core::System sys = test::smallRandomSystem(GetParam() ^ 0xf00d, 20, 120);
  const graph::InterferenceGraph g(sys);
  sched::PtasScheduler alg1;
  sched::GrowthScheduler alg2(g);
  dist::GrowthDistributedScheduler alg3(g);
  for (int slot = 0; slot < 3; ++slot) {
    for (sched::OneShotScheduler* s :
         std::vector<sched::OneShotScheduler*>{&alg1, &alg2, &alg3}) {
      const auto res = s->schedule(sys);
      ASSERT_TRUE(sys.isFeasible(res.readers)) << s->name();
    }
    sys.markRead(sys.wellCoveredTags(alg2.schedule(sys).readers));
  }
}

TEST_P(FuzzSweep, McsNeverLosesTags) {
  core::System sys = test::smallRandomSystem(GetParam() ^ 0xbeef, 18, 130);
  const int coverable = sys.unreadCoverableCount();
  sched::HillClimbingScheduler ghc;
  const sched::McsResult res = sched::runCoveringSchedule(sys, ghc);
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.tags_read, coverable);
  // Re-running on a finished system is a no-op.
  const sched::McsResult again = sched::runCoveringSchedule(sys, ghc);
  ASSERT_EQ(again.slots, 0);
}

// Default 10 seeds; RFIDSCHED_TEST_ITERS widens or narrows the sweep.
INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzSweep,
    ::testing::Range<std::uint64_t>(
        7000, 7000 + static_cast<std::uint64_t>(test::iterBudget(10))));

}  // namespace
}  // namespace rfid
