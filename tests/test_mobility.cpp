// Mobility tests: random-waypoint kinematics, snapshot consistency, survey
// staleness semantics, and the monotone cost of stale surveys.
#include <gtest/gtest.h>

#include "sched/hill_climbing.h"
#include "workload/mobility.h"

namespace rfid::workload {
namespace {

MobilityConfig smallConfig() {
  MobilityConfig cfg;
  cfg.deploy.num_readers = 15;
  cfg.deploy.num_tags = 200;
  cfg.deploy.region_side = 60.0;
  cfg.deploy.lambda_R = 9.0;
  cfg.deploy.lambda_r = 5.0;
  cfg.speed = 3.0;
  cfg.slots = 30;
  return cfg;
}

SchedulerFactory ghcFactory() {
  return [](const core::System&, const graph::InterferenceGraph&) {
    return std::make_unique<sched::HillClimbingScheduler>();
  };
}

TEST(Mobility, ReadersStayInRegionAndMove) {
  const MobilityConfig cfg = smallConfig();
  MobilitySimulation sim(cfg, 1);
  const auto before = sim.positions();
  (void)sim.run(ghcFactory());
  const auto& after = sim.positions();
  ASSERT_EQ(before.size(), after.size());
  int moved = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_GE(after[i].x, 0.0);
    EXPECT_LE(after[i].x, cfg.deploy.region_side);
    EXPECT_GE(after[i].y, 0.0);
    EXPECT_LE(after[i].y, cfg.deploy.region_side);
    moved += (geom::dist(before[i], after[i]) > 1e-9);
  }
  EXPECT_GT(moved, 10) << "most readers should have moved in 30 slots";
}

TEST(Mobility, DeterministicInSeed) {
  const MobilityConfig cfg = smallConfig();
  MobilitySimulation a(cfg, 7), b(cfg, 7);
  const MobilityResult ra = a.run(ghcFactory());
  const MobilityResult rb = b.run(ghcFactory());
  EXPECT_EQ(ra.tags_read, rb.tags_read);
  EXPECT_EQ(ra.served_series, rb.served_series);
}

TEST(Mobility, ServesTagsAndAccountsSeries) {
  const MobilityConfig cfg = smallConfig();
  MobilitySimulation sim(cfg, 3);
  const MobilityResult res = sim.run(ghcFactory());
  EXPECT_EQ(res.slots_run, cfg.slots);
  EXPECT_EQ(static_cast<int>(res.served_series.size()), cfg.slots);
  int sum = 0;
  for (const int s : res.served_series) sum += s;
  EXPECT_EQ(sum, res.tags_read);
  EXPECT_GT(res.tags_read, 0);
  EXPECT_LE(res.tags_read, cfg.deploy.num_tags);
}

TEST(Mobility, TagsNeverServedTwice) {
  // tags_read ≤ num_tags already implies no double counting in aggregate;
  // run two simulations with different schedulers to stress the read-flag
  // persistence across snapshots.
  const MobilityConfig cfg = smallConfig();
  MobilitySimulation sim(cfg, 4);
  const MobilityResult res = sim.run(ghcFactory());
  EXPECT_LE(res.tags_read, cfg.deploy.num_tags);
}

TEST(Mobility, StaleSurveysReadFewerTagsOnBatch) {
  double fresh = 0, stale = 0;
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    MobilityConfig cfg = smallConfig();
    cfg.slots = 40;
    cfg.survey_period = 1;
    MobilitySimulation a(cfg, seed);
    fresh += a.run(ghcFactory()).tags_read;
    cfg.survey_period = 40;  // one survey at t=0, never refreshed
    MobilitySimulation b(cfg, seed);
    stale += b.run(ghcFactory()).tags_read;
  }
  EXPECT_GE(fresh, stale);
}

TEST(Mobility, ZeroSpeedMatchesStaticScheduling) {
  // With speed 0 the survey never rots: period 1 and period 1000 agree.
  MobilityConfig cfg = smallConfig();
  cfg.speed = 0.0;
  cfg.pause_slots = 1000000;  // belt and braces: nobody ever picks a target
  cfg.survey_period = 1;
  MobilitySimulation a(cfg, 5);
  const int fresh = a.run(ghcFactory()).tags_read;
  cfg.survey_period = 1000;
  MobilitySimulation b(cfg, 5);
  const int stale = b.run(ghcFactory()).tags_read;
  EXPECT_EQ(fresh, stale);
}

}  // namespace
}  // namespace rfid::workload
