// Geometry substrate tests: Vec2 arithmetic, Disk/Aabb predicates, and the
// spatial grid checked property-style against brute force.
#include <gtest/gtest.h>

#include "geometry/disk.h"
#include "geometry/spatial_grid.h"
#include "geometry/vec2.h"
#include "workload/rng.h"

namespace rfid::geom {
namespace {

TEST(Vec2, ArithmeticAndNorm) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{1.0, -2.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 2.0}));
  EXPECT_EQ((a - b), (Vec2{2.0, 6.0}));
  EXPECT_EQ((a * 2.0), (Vec2{6.0, 8.0}));
  EXPECT_EQ((2.0 * a), (Vec2{6.0, 8.0}));
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Vec2, DistanceMatchesDefinition2) {
  // ‖v_i − v_j‖ = sqrt((x_i−x_j)² + (y_i−y_j)²)
  EXPECT_DOUBLE_EQ(dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(dist2({1, 1}, {4, 5}), 25.0);
  EXPECT_DOUBLE_EQ(dist({-3, -4}, {0, 0}), 5.0);
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
  v *= 2.0;
  EXPECT_EQ(v, (Vec2{4.0, 6.0}));
}

TEST(Disk, ContainsIsClosed) {
  const Disk d{{0.0, 0.0}, 2.0};
  EXPECT_TRUE(d.contains({2.0, 0.0}));   // boundary point counts
  EXPECT_TRUE(d.contains({0.0, 0.0}));
  EXPECT_FALSE(d.contains({2.0 + 1e-9, 0.0}));
}

TEST(Disk, DiskDiskIntersection) {
  const Disk a{{0.0, 0.0}, 1.0};
  EXPECT_TRUE(a.intersects(Disk{{2.0, 0.0}, 1.0}));   // touching counts
  EXPECT_TRUE(a.intersects(Disk{{1.0, 0.0}, 1.0}));
  EXPECT_FALSE(a.intersects(Disk{{2.5, 0.0}, 1.0}));
  EXPECT_TRUE(a.intersects(Disk{{0.1, 0.1}, 0.01}));  // nested
}

TEST(Disk, StrictlyInsideBox) {
  const Aabb box{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_TRUE((Disk{{5.0, 5.0}, 2.0}).strictlyInside(box));
  // Touching the boundary is NOT strictly inside (PTAS survive predicate).
  EXPECT_FALSE((Disk{{2.0, 5.0}, 2.0}).strictlyInside(box));
  EXPECT_FALSE((Disk{{5.0, 9.5}, 1.0}).strictlyInside(box));
  EXPECT_FALSE((Disk{{11.0, 5.0}, 0.5}).strictlyInside(box));
}

TEST(Disk, DiskBoxIntersection) {
  const Aabb box{{0.0, 0.0}, {4.0, 4.0}};
  EXPECT_TRUE((Disk{{2.0, 2.0}, 0.5}).intersects(box));   // inside
  EXPECT_TRUE((Disk{{-1.0, 2.0}, 1.5}).intersects(box));  // crosses edge
  EXPECT_TRUE((Disk{{5.0, 5.0}, 1.5}).intersects(box));   // corner graze
  EXPECT_FALSE((Disk{{5.5, 5.5}, 1.0}).intersects(box));  // corner miss
  EXPECT_FALSE((Disk{{-2.0, 2.0}, 1.0}).intersects(box));
}

TEST(Aabb, ContainsAndIntersects) {
  const Aabb a{{0, 0}, {2, 2}};
  const Aabb b{{1, 1}, {3, 3}};
  const Aabb c{{2, 2}, {3, 3}};  // shares corner point
  const Aabb d{{2.1, 0}, {3, 1}};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(a.intersects(c));
  EXPECT_FALSE(a.intersects(d));
  EXPECT_TRUE(a.contains({1, 1}));
  EXPECT_TRUE(a.contains({2, 2}));
  EXPECT_FALSE(a.contains({2.5, 1}));
  EXPECT_DOUBLE_EQ(b.width(), 2.0);
  EXPECT_DOUBLE_EQ(b.height(), 2.0);
}

TEST(SpatialGrid, EmptyPointSet) {
  const SpatialGrid grid({}, 1.0);
  EXPECT_EQ(grid.size(), 0);
  EXPECT_TRUE(grid.queryDisk({0, 0}, 100.0).empty());
}

TEST(SpatialGrid, SinglePointHitAndMiss) {
  const std::vector<Vec2> pts = {{5.0, 5.0}};
  const SpatialGrid grid(pts, 2.0);
  EXPECT_EQ(grid.queryDisk({5.0, 5.0}, 0.0), (std::vector<int>{0}));
  EXPECT_EQ(grid.queryDisk({4.0, 5.0}, 1.0), (std::vector<int>{0}));
  EXPECT_TRUE(grid.queryDisk({0.0, 0.0}, 1.0).empty());
}

TEST(SpatialGrid, NegativeCoordinates) {
  const std::vector<Vec2> pts = {{-5.0, -5.0}, {-4.5, -5.0}, {5.0, 5.0}};
  const SpatialGrid grid(pts, 1.0);
  EXPECT_EQ(grid.queryDisk({-5.0, -5.0}, 0.6), (std::vector<int>{0, 1}));
}

// Property: grid query equals brute-force scan for random points/queries,
// across cell sizes smaller and larger than the query radius.
class SpatialGridProperty : public ::testing::TestWithParam<double> {};

TEST_P(SpatialGridProperty, MatchesBruteForce) {
  const double cell = GetParam();
  workload::Rng rng(12345);
  std::vector<Vec2> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)});
  }
  const SpatialGrid grid(pts, cell);
  for (int q = 0; q < 50; ++q) {
    const Vec2 c{rng.uniform(-60.0, 60.0), rng.uniform(-60.0, 60.0)};
    const double r = rng.uniform(0.0, 20.0);
    std::vector<int> expected;
    for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
      if (dist2(pts[static_cast<std::size_t>(i)], c) <= r * r) expected.push_back(i);
    }
    EXPECT_EQ(grid.queryDisk(c, r), expected)
        << "cell=" << cell << " query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, SpatialGridProperty,
                         ::testing::Values(0.5, 1.0, 4.0, 25.0));

TEST(SpatialGrid, AppendingOverloadKeepsExistingContents) {
  const std::vector<Vec2> pts = {{0.0, 0.0}, {1.0, 0.0}};
  const SpatialGrid grid(pts, 1.0);
  std::vector<int> out = {99};
  grid.queryDisk({0.0, 0.0}, 0.5, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 99);
  EXPECT_EQ(out[1], 0);
}

}  // namespace
}  // namespace rfid::geom
