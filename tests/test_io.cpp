// Deployment serialization tests: exact round-trips and fail-closed
// parsing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "test_helpers.h"
#include "workload/io.h"

namespace rfid::workload {
namespace {

TEST(Io, RoundTripPreservesEverything) {
  const core::System original = test::smallRandomSystem(42, 20, 150, 60.0);
  std::stringstream ss;
  saveDeployment(ss, original);
  const auto loaded = loadDeployment(ss);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->numReaders(), original.numReaders());
  ASSERT_EQ(loaded->numTags(), original.numTags());
  for (int v = 0; v < original.numReaders(); ++v) {
    EXPECT_EQ(loaded->reader(v).pos, original.reader(v).pos);
    EXPECT_EQ(loaded->reader(v).interference_radius,
              original.reader(v).interference_radius);
    EXPECT_EQ(loaded->reader(v).interrogation_radius,
              original.reader(v).interrogation_radius);
  }
  for (int t = 0; t < original.numTags(); ++t) {
    EXPECT_EQ(loaded->tag(t).pos, original.tag(t).pos);
    EXPECT_EQ(loaded->tag(t).epc, original.tag(t).epc);
  }
  // Derived structures must agree too — the real test of exactness.
  for (int v = 0; v < original.numReaders(); ++v) {
    EXPECT_EQ(test::toVec(loaded->coverage(v)), test::toVec(original.coverage(v)));
  }
}

TEST(Io, FileRoundTrip) {
  const core::System sys = test::figure2System();
  const std::string path = "io_test_deployment.csv";
  ASSERT_TRUE(saveDeploymentFile(path, sys));
  const auto loaded = loadDeploymentFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->numReaders(), 3);
  EXPECT_EQ(loaded->numTags(), 5);
  EXPECT_EQ(loaded->weight(std::vector<int>{0, 2}), 4);  // Figure 2 intact
  std::filesystem::remove(path);
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# comment\n\nreader,0,1.0,2.0,5.0,3.0\n# more\ntag,0,1.5,2.0,7\n";
  const auto loaded = loadDeployment(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->numReaders(), 1);
  EXPECT_EQ(loaded->tag(0).epc, 7u);
}

TEST(Io, FailsClosedOnGarbage) {
  for (const std::string bad : {
           "reader,0,1.0,2.0,5.0\n",          // missing field
           "reader,0,1.0,2.0,5.0,3.0,9\n",    // extra field
           "reader,x,1.0,2.0,5.0,3.0\n",      // non-numeric id
           "reader,0,1.0,2.0,3.0,5.0\n",      // gamma > R
           "reader,0,1.0,2.0,5.0,0.0\n",      // gamma = 0
           "widget,0,1,2\n",                  // unknown record
           "tag,0,1.0,2.0\n",                 // short tag
           "\x01garbage\n",                   // binary noise
       }) {
    std::stringstream ss(bad);
    EXPECT_FALSE(loadDeployment(ss).has_value()) << bad;
  }
}

TEST(Io, EmptyInputIsRejected) {
  std::stringstream ss("# only a comment\n");
  EXPECT_FALSE(loadDeployment(ss).has_value());
}

TEST(Io, MissingFileIsRejected) {
  EXPECT_FALSE(loadDeploymentFile("/nonexistent/path.csv").has_value());
}

TEST(Io, TrulyEmptyFileIsRejected) {
  // A zero-byte file (created but never written — a crashed save outside
  // the atomic writer, or a stray touch) must fail closed, not yield an
  // empty System.
  const std::string p = "io_empty_test.csv";
  { std::ofstream os(p, std::ios::binary | std::ios::trunc); }
  EXPECT_FALSE(loadDeploymentFile(p).has_value());
  std::remove(p.c_str());
}

TEST(Io, EpcUint64BoundaryRoundTrip) {
  // EPCs are full-width uint64: INT_MAX+1, 2^63, and UINT64_MAX must
  // survive load → save → load exactly (a signed-int path would mangle
  // all three).
  const std::uint64_t epcs[] = {2147483648ull, 9223372036854775808ull,
                                18446744073709551615ull};
  std::stringstream in;
  in << "reader,0,1.0,2.0,5.0,3.0\n";
  for (int i = 0; i < 3; ++i) {
    in << "tag," << i << ',' << (1.0 + i) << ",2.0," << epcs[i] << '\n';
  }
  const auto first = loadDeployment(in);
  ASSERT_TRUE(first.has_value());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(first->tag(i).epc, epcs[i]);
  std::stringstream out;
  saveDeployment(out, *first);
  const auto second = loadDeployment(out);
  ASSERT_TRUE(second.has_value());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(second->tag(i).epc, epcs[i]);
}

TEST(Io, EpcRejectsSignAndOverflow) {
  // UINT64_MAX is 18446744073709551615; everything past it — one more, a
  // 10× digit string, an absurdly long run of 9s — must be rejected rather
  // than silently wrapped, alongside signs and trailing junk.
  for (const std::string epc :
       {"-1", "+7", "18446744073709551616", "184467440737095516150",
        "99999999999999999999999999999999", "", "7x", "0x10"}) {
    std::stringstream ss("reader,0,1.0,2.0,5.0,3.0\ntag,0,1.0,2.0," + epc +
                         "\n");
    EXPECT_FALSE(loadDeployment(ss).has_value()) << "epc=" << epc;
  }
}

TEST(Io, CrlfLineEndingsTolerated) {
  std::stringstream ss(
      "# exported from a spreadsheet\r\n"
      "reader,0,1.0,2.0,5.0,3.0\r\n"
      "tag,0,1.5,2.0,7\r\n");
  const auto loaded = loadDeployment(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->numReaders(), 1);
  EXPECT_EQ(loaded->tag(0).epc, 7u);
}

TEST(Io, DuplicateIdsRejected) {
  {
    std::stringstream ss(
        "reader,0,1.0,2.0,5.0,3.0\n"
        "reader,0,9.0,9.0,5.0,3.0\n");
    EXPECT_FALSE(loadDeployment(ss).has_value()) << "duplicate reader id";
  }
  {
    std::stringstream ss(
        "reader,0,1.0,2.0,5.0,3.0\n"
        "tag,3,1.0,2.0,7\n"
        "tag,3,4.0,5.0,8\n");
    EXPECT_FALSE(loadDeployment(ss).has_value()) << "duplicate tag id";
  }
}

TEST(Io, NonFiniteFieldsRejectedWithNamedLine) {
  // stod accepts "nan" and "inf"; the loader must not — one poisoned
  // coordinate makes every downstream distance comparison meaningless.
  const char* cases[] = {
      "reader,0,nan,2.0,5.0,3.0\n",  // NaN coordinate
      "reader,0,1.0,inf,5.0,3.0\n",  // inf coordinate
      "reader,0,1.0,2.0,inf,inf\n",  // inf radii (passes r.valid()!)
      "reader,0,1.0,2.0,5.0,nan\n",  // NaN radius
  };
  for (const char* text : cases) {
    std::stringstream ss(text);
    std::string err;
    EXPECT_FALSE(loadDeployment(ss, &err).has_value()) << text;
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  }
  {
    std::stringstream ss(
        "reader,0,1.0,2.0,5.0,3.0\n"
        "tag,3,nan,5.0,8\n");
    std::string err;
    EXPECT_FALSE(loadDeployment(ss, &err).has_value());
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("tag position"), std::string::npos) << err;
  }
}

TEST(Io, NegativeRadiusRejected) {
  for (const char* text : {"reader,0,1.0,2.0,-5.0,3.0\n",
                           "reader,0,1.0,2.0,5.0,-3.0\n"}) {
    std::stringstream ss(text);
    std::string err;
    EXPECT_FALSE(loadDeployment(ss, &err).has_value()) << text;
    EXPECT_FALSE(err.empty());
  }
}

TEST(Io, ErrorsNameTheProblem) {
  {
    std::stringstream ss("reader,0,1.0,2.0,5.0,3.0\nbogus,1,2\n");
    std::string err;
    EXPECT_FALSE(loadDeployment(ss, &err).has_value());
    EXPECT_NE(err.find("unrecognized"), std::string::npos) << err;
  }
  {
    std::stringstream ss("tag,0,1.0,2.0,7\n");
    std::string err;
    EXPECT_FALSE(loadDeployment(ss, &err).has_value());
    EXPECT_NE(err.find("no readers"), std::string::npos) << err;
  }
  {
    std::string err;
    EXPECT_FALSE(loadDeploymentFile("/nonexistent_xyz/d.csv", &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
  }
}

TEST(Io, SaveFailureNeverLeavesTornFile) {
  namespace fs = std::filesystem;
  const core::System sys = test::figure2System();
  // Unreachable parent directory: the atomic writer cannot even create its
  // temporary, so it must report failure and create nothing.
  EXPECT_FALSE(saveDeploymentFile("/nonexistent_dir_xyz/dep.csv", sys));
  EXPECT_FALSE(fs::exists("/nonexistent_dir_xyz"));
  // Target occupied by a directory: the tmp write succeeds but the final
  // rename cannot (simulating a failure after partial IO).  The directory
  // must be untouched and the temporary cleaned up — no torn artifacts.
  const std::string dir_target = "io_test_target_dir";
  fs::create_directory(dir_target);
  EXPECT_FALSE(saveDeploymentFile(dir_target, sys));
  EXPECT_TRUE(fs::is_directory(dir_target));
  EXPECT_FALSE(fs::exists(dir_target + ".tmp"));
  fs::remove(dir_target);
}

}  // namespace
}  // namespace rfid::workload
