// Algorithm 3 tests: the distributed protocol must produce feasible sets,
// meet Theorem 6 empirically, keep coordinators separated, and quiesce.
#include <gtest/gtest.h>

#include "distributed/growth_distributed.h"
#include "graph/traversal.h"
#include "sched/exact.h"
#include "sched/growth.h"
#include "test_helpers.h"

namespace rfid::dist {
namespace {

TEST(DistributedGrowth, FeasibleAndPositiveOnRandomInstances) {
  for (const std::uint64_t seed : {1u, 4u, 7u, 10u}) {
    const core::System sys = test::smallRandomSystem(seed, 20, 120, 60.0);
    const graph::InterferenceGraph g(sys);
    GrowthDistributedScheduler alg3(g);
    const sched::OneShotResult res = alg3.schedule(sys);
    EXPECT_TRUE(sys.isFeasible(res.readers)) << "seed " << seed;
    EXPECT_EQ(sys.weight(res.readers), res.weight);
    EXPECT_GT(res.weight, 0);
    EXPECT_TRUE(alg3.lastStats().quiesced);
  }
}

// Theorem 6: w(X) ≥ w(OPT)/ρ — verified against the exact optimum.
class DistributedApproximation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedApproximation, MeetsTheorem6Bound) {
  const core::System sys = test::smallRandomSystem(GetParam(), 12, 90);
  const graph::InterferenceGraph g(sys);
  DistributedGrowthOptions opt;
  opt.rho = 1.5;
  GrowthDistributedScheduler alg3(g, opt);
  sched::ExactScheduler exact;
  const int got = alg3.schedule(sys).weight;
  const int best = exact.schedule(sys).weight;
  EXPECT_GE(static_cast<double>(got) + 1e-9,
            static_cast<double>(best) / opt.rho)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedApproximation,
                         ::testing::Range<std::uint64_t>(300, 310));

TEST(DistributedGrowth, IsolatedReaderBecomesItsOwnCoordinator) {
  std::vector<core::Reader> readers = {test::makeReader(0, 0, 5.0, 3.0)};
  std::vector<core::Tag> tags = {test::makeTag(1, 0)};
  const core::System sys(std::move(readers), std::move(tags));
  const graph::InterferenceGraph g(sys);
  GrowthDistributedScheduler alg3(g);
  const sched::OneShotResult res = alg3.schedule(sys);
  EXPECT_EQ(res.readers, (std::vector<int>{0}));
  EXPECT_EQ(res.weight, 1);
  EXPECT_EQ(alg3.lastStats().heads, 1);
}

TEST(DistributedGrowth, ZeroWeightReadersNeverSelected) {
  // One reader with a tag, one without; both isolated in the graph.
  std::vector<core::Reader> readers = {test::makeReader(0, 0, 5.0, 3.0),
                                       test::makeReader(50, 50, 5.0, 3.0)};
  std::vector<core::Tag> tags = {test::makeTag(1, 0)};
  const core::System sys(std::move(readers), std::move(tags));
  const graph::InterferenceGraph g(sys);
  GrowthDistributedScheduler alg3(g);
  const sched::OneShotResult res = alg3.schedule(sys);
  EXPECT_EQ(res.readers, (std::vector<int>{0}));
  EXPECT_TRUE(alg3.lastStats().quiesced);
}

TEST(DistributedGrowth, CoordinatorsRespectSeparation) {
  // Track heads on a longer path-like deployment: readers in a line with
  // interference chaining them.  After the run, any two heads must be more
  // than 2c+2 hops apart OR ordered by the removal waves (a later head
  // outside the earlier head's removal region).  We check the weaker —
  // but unconditional — invariant that the union of Γ's is independent,
  // plus that at least two coordinators fired on a long chain.
  std::vector<core::Reader> readers;
  std::vector<core::Tag> tags;
  for (int i = 0; i < 16; ++i) {
    readers.push_back(test::makeReader(i * 8.0, 0.0, 10.0, 4.0));
    tags.push_back(test::makeTag(i * 8.0, 1.0));
    tags.push_back(test::makeTag(i * 8.0, -1.0));
  }
  const core::System sys(std::move(readers), std::move(tags));
  const graph::InterferenceGraph g(sys);
  GrowthDistributedScheduler alg3(g);
  const sched::OneShotResult res = alg3.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_GT(res.weight, 0);
  EXPECT_GE(alg3.lastStats().heads, 1);
  EXPECT_TRUE(alg3.lastStats().quiesced);
}

// The distributed algorithm never exceeds the centralized one by much nor
// collapses: on average it lands within a factor of Alg2 (same ρ) — the
// ordering the paper reports in Figures 6–9.
TEST(DistributedGrowth, TracksCentralizedQuality) {
  double alg2_total = 0.0, alg3_total = 0.0;
  for (const std::uint64_t seed : {20u, 22u, 24u, 26u, 28u}) {
    const core::System sys = test::smallRandomSystem(seed, 20, 120, 60.0);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler alg2(g);
    GrowthDistributedScheduler alg3(g);
    alg2_total += alg2.schedule(sys).weight;
    alg3_total += alg3.schedule(sys).weight;
  }
  EXPECT_GE(alg3_total, 0.7 * alg2_total);
  EXPECT_LE(alg3_total, 1.3 * alg2_total);
}

TEST(DistributedGrowth, MessageAccountingIsPlausible) {
  const core::System sys = test::smallRandomSystem(30, 25, 150, 60.0);
  const graph::InterferenceGraph g(sys);
  GrowthDistributedScheduler alg3(g);
  (void)alg3.schedule(sys);
  const auto& st = alg3.lastStats();
  EXPECT_GT(st.messages, 0);
  EXPECT_GT(st.payload_words, st.messages);  // every message carries data
  EXPECT_GT(st.rounds, 2 * DistributedGrowthOptions{}.c + 2);
}

TEST(DistributedGrowth, AllTagsReadMeansEmptySchedule) {
  core::System sys = test::smallRandomSystem(33, 10, 50);
  for (int t = 0; t < sys.numTags(); ++t) sys.markRead(t);
  const graph::InterferenceGraph g(sys);
  GrowthDistributedScheduler alg3(g);
  const sched::OneShotResult res = alg3.schedule(sys);
  EXPECT_TRUE(res.readers.empty());
  EXPECT_TRUE(alg3.lastStats().quiesced);
}

}  // namespace
}  // namespace rfid::dist
