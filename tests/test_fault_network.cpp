// Lossy-substrate tests: drop/dup/delay accounting on dist::Network,
// quiescence with a nonempty delayed queue, crashed-node semantics, and the
// self-healing hardening of both distributed schedulers — ColorWave
// re-converges around a crashed neighbor and GrowthDistributed terminates
// (evicting silent rivals) instead of deadlocking.
#include <gtest/gtest.h>

#include <memory>

#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "distributed/network.h"
#include "fault/channel_model.h"
#include "fault/fault_plan.h"
#include "graph/interference_graph.h"
#include "sched/mcs.h"
#include "test_helpers.h"

namespace rfid::dist {
namespace {

graph::InterferenceGraph pathGraph(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return graph::InterferenceGraph(n, edges);
}

/// Sends one token at init; counts copies and their arrival rounds.
class PingNode final : public NodeProgram {
 public:
  explicit PingNode(bool origin) : origin_(origin) {}
  void init(Context& ctx) override {
    if (origin_) ctx.broadcast(1, {42});
  }
  void onRound(Context& ctx, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      ASSERT_EQ(m.data.size(), 1u);
      EXPECT_EQ(m.data[0], 42);
      ++copies_;
      last_round_ = ctx.round();
    }
  }
  bool isDone() const override { return true; }
  int copies() const { return copies_; }
  int lastRound() const { return last_round_; }

 private:
  bool origin_;
  int copies_ = 0;
  int last_round_ = -1;
};

TEST(FaultNetwork, CertainDropDeliversNothing) {
  fault::FaultPlan plan;
  fault::LinkFaults lf;
  lf.drop = 1.0;
  plan.setLinkDefaults(lf);
  fault::ChannelModel ch(plan);

  const auto g = pathGraph(2);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<PingNode>(true));
  programs.push_back(std::make_unique<PingNode>(false));
  Network net(g, std::move(programs));
  net.attachChannel(&ch);
  const auto stats = net.run(50);
  EXPECT_TRUE(stats.all_done);
  EXPECT_EQ(stats.dropped, 1);
  EXPECT_EQ(stats.messages, 0);
  EXPECT_EQ(static_cast<const PingNode&>(net.program(1)).copies(), 0);
}

TEST(FaultNetwork, CertainDupDeliversTwoCopies) {
  fault::FaultPlan plan;
  fault::LinkFaults lf;
  lf.dup = 1.0;
  plan.setLinkDefaults(lf);
  fault::ChannelModel ch(plan);

  const auto g = pathGraph(2);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<PingNode>(true));
  programs.push_back(std::make_unique<PingNode>(false));
  Network net(g, std::move(programs));
  net.attachChannel(&ch);
  const auto stats = net.run(50);
  EXPECT_TRUE(stats.all_done);
  EXPECT_EQ(stats.duplicated, 1);
  EXPECT_EQ(stats.messages, 2);  // both copies count as real traffic
  EXPECT_EQ(static_cast<const PingNode&>(net.program(1)).copies(), 2);
}

TEST(FaultNetwork, DelayedCopyArrivesLateAndBlocksQuiescence) {
  // Satellite regression: every program is done after round 0, yet a
  // delayed copy is still on the wire — the network must keep running
  // until the delayed queue drains, then deliver it.
  fault::FaultPlan plan;
  fault::LinkFaults lf;
  lf.delay = 1.0;
  lf.max_delay = 1;  // exactly one extra round
  plan.setLinkDefaults(lf);
  fault::ChannelModel ch(plan);

  const auto g = pathGraph(2);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<PingNode>(true));
  programs.push_back(std::make_unique<PingNode>(false));
  Network net(g, std::move(programs));
  net.attachChannel(&ch);
  const auto stats = net.run(50);
  EXPECT_TRUE(stats.all_done);
  EXPECT_EQ(stats.delayed, 1);
  const auto& sink = static_cast<const PingNode&>(net.program(1));
  EXPECT_EQ(sink.copies(), 1);
  EXPECT_EQ(sink.lastRound(), 1);  // one round later than the clean run
  EXPECT_GE(stats.rounds, 2);      // quiescence waited for the drain
}

TEST(FaultNetwork, CrashedNodeNeitherRunsNorReceives) {
  fault::FaultPlan plan;
  plan.addCrash(1, 0, -1);
  fault::ChannelModel ch(plan);

  const auto g = pathGraph(3);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int v = 0; v < 3; ++v) {
    programs.push_back(std::make_unique<PingNode>(v == 0));
  }
  Network net(g, std::move(programs));
  net.attachChannel(&ch);
  const auto stats = net.run(50);
  // The dead middle node blocks neither quiescence nor the run; the send
  // to it is discarded as a dead drop.
  EXPECT_TRUE(stats.all_done);
  EXPECT_EQ(stats.dead_drops, 1);
  EXPECT_EQ(static_cast<const PingNode&>(net.program(1)).copies(), 0);
  EXPECT_EQ(static_cast<const PingNode&>(net.program(2)).copies(), 0);
}

TEST(FaultNetwork, RunStatsCarryFaultTotalsAcrossRuns) {
  fault::FaultPlan plan;
  fault::LinkFaults lf;
  lf.drop = 1.0;
  plan.setLinkDefaults(lf);
  fault::ChannelModel ch(plan);

  const auto g = pathGraph(2);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<PingNode>(true));
  programs.push_back(std::make_unique<PingNode>(false));
  Network net(g, std::move(programs));
  net.attachChannel(&ch);
  (void)net.run(10);
  (void)net.run(10);  // init is per-run; second run drops another send
  EXPECT_EQ(net.stats().dropped, 2);
}

// --- ColorWave hardening ----------------------------------------------------

TEST(FaultColorwave, ReconvergesAroundACrashedNeighbor) {
  // A triangle needs 3 colors among live nodes; after node 2 crashes the
  // remaining edge needs only a proper 2-node coloring.  The crash happens
  // mid-protocol: the survivors must shake off the dead node's stale color
  // and settle, which is exactly what silence eviction enables.
  const graph::InterferenceGraph g(
      3, std::vector<std::pair<int, int>>{{0, 1}, {1, 2}, {0, 2}});
  fault::FaultPlan plan;
  plan.addCrash(2, 1, -1);  // dies in slot 1, never recovers
  fault::ChannelModel ch(plan);

  ColorwaveOptions opt;
  opt.settle_rounds = 400;
  opt.silence_timeout = 16;
  ColorwaveScheduler ca(g, /*seed=*/3, opt);
  ca.attachChannel(&ch);

  ch.setSlot(0);
  ca.runProtocol(400);
  EXPECT_TRUE(ca.convergedAmongAlive());  // everyone alive: full convergence

  ch.setSlot(1);  // node 2 is now down
  ca.runProtocol(400);
  EXPECT_TRUE(ca.convergedAmongAlive());
  EXPECT_GT(ca.evictedNeighborLinks(), 0);  // silence detection fired
}

TEST(FaultColorwave, ConvergedAmongAliveMatchesConvergedWithoutChannel) {
  const auto g = pathGraph(4);
  ColorwaveScheduler ca(g, /*seed=*/7);
  ca.runProtocol(500);
  EXPECT_EQ(ca.converged(), ca.convergedAmongAlive());
}

TEST(FaultColorwave, SurvivesHeavyMessageLoss) {
  // 30% loss on every link: announcements go missing constantly, but the
  // version-filtered wire format and silence re-admission must keep the
  // protocol live and eventually properly colored among the live nodes.
  core::System sys = rfid::test::smallRandomSystem(4, 12, 60, 40.0);
  fault::FaultPlan plan;
  plan.setSeed(11);
  fault::LinkFaults lf;
  lf.drop = 0.3;
  lf.dup = 0.1;
  lf.delay = 0.2;
  lf.max_delay = 2;
  plan.setLinkDefaults(lf);
  fault::ChannelModel ch(plan);

  ColorwaveOptions opt;
  opt.silence_timeout = 32;
  ColorwaveScheduler ca(sys, /*seed=*/5, opt);
  ca.attachChannel(&ch);
  ca.runProtocol(3000);
  EXPECT_TRUE(ca.convergedAmongAlive());
}

// --- GrowthDistributed hardening --------------------------------------------

TEST(FaultGrowth, TerminatesWhenTheTopRivalIsDeadFromTheStart) {
  // The heaviest reader is dead before init: it floods no INFO, so no
  // rival ever defers to it.  The protocol must simply run among the live
  // readers, quiesce, and never select the dead one.
  core::System sys = rfid::test::smallRandomSystem(6, 10, 100, 35.0);
  const graph::InterferenceGraph g(sys);

  // Find the reader the greedy order would fire first and kill it.
  int top = 0;
  for (int v = 1; v < sys.numReaders(); ++v) {
    if (std::pair(sys.singleWeight(v), v) >
        std::pair(sys.singleWeight(top), top)) {
      top = v;
    }
  }
  fault::FaultPlan plan;
  plan.addCrash(top, 0, -1);
  fault::ChannelModel ch(plan);

  DistributedGrowthOptions opt;
  opt.max_rounds = 5000;
  opt.retry_patience = 8;
  GrowthDistributedScheduler alg3(g, opt);
  alg3.attachChannel(&ch);
  const sched::OneShotResult res = alg3.schedule(sys);
  EXPECT_TRUE(alg3.lastStats().quiesced);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  for (const int v : res.readers) EXPECT_NE(v, top);
}

TEST(FaultGrowth, BlockedNodeRetriesThenEvictsTheSilentRival) {
  // Two adjacent readers, reader 1 heavier.  Half the messages from 1 to 0
  // are lost: on seeds where 1's initial INFO slips through but its RESULT
  // copy drops, node 0 is White, blocked on a rival it can no longer hear
  // — the pre-hardening protocol would spin to the round cap.  The retry
  // clock must fire (head 1 re-answers) or, failing that, evict the rival;
  // every seed must quiesce.
  int exercised = 0;
  for (const std::uint64_t seed :
       {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u}) {
    std::vector<core::Reader> readers = {
        rfid::test::makeReader(0.0, 0.0, 10.0, 6.0),
        rfid::test::makeReader(4.0, 0.0, 10.0, 6.0),
    };
    std::vector<core::Tag> tags = {
        rfid::test::makeTag(-2.0, 0.0),  // reader 0 only
        rfid::test::makeTag(6.0, 0.0),   // reader 1 only
        rfid::test::makeTag(7.0, 0.0),   // reader 1 only: 1 outweighs 0
    };
    core::System sys(std::move(readers), std::move(tags));
    const graph::InterferenceGraph g(sys);
    ASSERT_EQ(g.numEdges(), 1);

    fault::FaultPlan plan;
    plan.setSeed(seed);
    fault::LinkFaults lossy;
    lossy.drop = 0.5;
    plan.setLink(1, 0, lossy);
    fault::ChannelModel ch(plan);

    DistributedGrowthOptions opt;
    opt.max_rounds = 2000;
    opt.retry_patience = 4;
    opt.max_retries = 2;
    GrowthDistributedScheduler alg3(g, opt);
    alg3.attachChannel(&ch);
    (void)alg3.schedule(sys);
    EXPECT_TRUE(alg3.lastStats().quiesced) << "seed " << seed;
    exercised += alg3.lastStats().info_retries +
                 alg3.lastStats().evicted_rivals;
  }
  // At least one seed must have taken the blocked path (INFO delivered,
  // RESULT starved) — otherwise this test exercises nothing.
  EXPECT_GT(exercised, 0);
}

TEST(FaultGrowth, RetriesRecoverFromDroppedResultFloods) {
  // Lossy everywhere: INFO and RESULT floods both suffer.  The protocol
  // must still terminate within the round cap on every slot of a full MCS
  // run, with retry/eviction stats exposed.
  core::System sys = rfid::test::smallRandomSystem(8, 14, 140, 45.0);
  const graph::InterferenceGraph g(sys);
  fault::FaultPlan plan;
  plan.setSeed(21);
  fault::LinkFaults lf;
  lf.drop = 0.35;
  plan.setLinkDefaults(lf);
  fault::ChannelModel ch(plan);

  DistributedGrowthOptions opt;
  opt.max_rounds = 20000;
  opt.retry_patience = 8;
  GrowthDistributedScheduler alg3(g, opt);
  alg3.attachChannel(&ch);

  sched::McsOptions mcs;
  mcs.faults = &plan;
  mcs.channel = &ch;
  mcs.max_slots = 300;
  mcs.max_stall = 60;
  const sched::McsResult res = sched::runCoveringSchedule(sys, alg3, mcs);
  EXPECT_TRUE(alg3.lastStats().quiesced) << "protocol deadlocked";
  EXPECT_GT(res.tags_read, 0);
  EXPECT_LT(res.slots, 300);  // terminated well before the cap
}

TEST(FaultGrowth, CleanChannelMatchesDetachedRun) {
  // Attaching a channel with an all-zero plan arms the lossy wire format;
  // the *scheduling outcome* must match the detached run exactly (the
  // hardening may add words on the wire, never change decisions).
  core::System sys = rfid::test::smallRandomSystem(9, 12, 100, 40.0);
  const graph::InterferenceGraph g(sys);

  GrowthDistributedScheduler plain(g);
  const sched::OneShotResult a = plain.schedule(sys);

  fault::FaultPlan zero;
  fault::ChannelModel ch(zero);
  GrowthDistributedScheduler armed(g);
  armed.attachChannel(&ch);
  const sched::OneShotResult b = armed.schedule(sys);

  EXPECT_EQ(a.readers, b.readers);
  EXPECT_EQ(a.weight, b.weight);
}

}  // namespace
}  // namespace rfid::dist
