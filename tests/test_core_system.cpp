// Core model tests: coverage precomputation, Definition 1/2/3 semantics,
// read-state, and the paper's worked examples (Figures 1 and 2).
#include <gtest/gtest.h>

#include "core/system.h"
#include "test_helpers.h"
#include "workload/rng.h"

namespace rfid::core {
namespace {

using test::figure2System;
using test::makeReader;
using test::makeTag;

TEST(Reader, ValidityInvariant) {
  EXPECT_TRUE(makeReader(0, 0, 10.0, 5.0).valid());
  EXPECT_TRUE(makeReader(0, 0, 10.0, 10.0).valid());  // gamma == R allowed
  Reader bad = makeReader(0, 0, 5.0, 5.0);
  bad.interrogation_radius = 6.0;  // gamma > R violates the model
  EXPECT_FALSE(bad.valid());
  bad.interrogation_radius = 0.0;
  EXPECT_FALSE(bad.valid());
}

TEST(Reader, IndependenceDefinition2) {
  const Reader a = makeReader(0, 0, 10.0);
  const Reader b = makeReader(10.0, 0, 4.0);
  // dist = 10 is NOT > max(10, 4): b sits on a's interference boundary.
  EXPECT_FALSE(independent(a, b));
  const Reader c = makeReader(10.5, 0, 4.0);
  EXPECT_TRUE(independent(a, c));
  // Symmetry even with asymmetric radii.
  EXPECT_EQ(independent(a, c), independent(c, a));
  EXPECT_EQ(independent(a, b), independent(b, a));
}

TEST(System, CoverageBothWays) {
  const System sys = figure2System();
  // Reader A (index 0) covers Tag1 and Tag2.
  EXPECT_EQ(test::toVec(sys.coverage(0)), (std::vector<int>{0, 1}));
  // Reader B covers Tag2, Tag3, Tag5.
  EXPECT_EQ(test::toVec(sys.coverage(1)), (std::vector<int>{1, 2, 4}));
  // Reader C covers Tag3, Tag4.
  EXPECT_EQ(test::toVec(sys.coverage(2)), (std::vector<int>{2, 3}));
  // Inverse maps.
  EXPECT_EQ(test::toVec(sys.coverers(1)), (std::vector<int>{0, 1}));
  EXPECT_EQ(test::toVec(sys.coverers(4)), (std::vector<int>{1}));
}

TEST(System, FeasibilityPairwise) {
  const System sys = figure2System();
  EXPECT_TRUE(sys.isFeasible(std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(sys.isFeasible(std::vector<int>{0, 2}));
  EXPECT_TRUE(sys.isFeasible(std::vector<int>{}));
  EXPECT_FALSE(sys.isFeasible(std::vector<int>{0, 0}));  // duplicate
}

TEST(System, InfeasibleWhenInterfering) {
  std::vector<Reader> readers = {makeReader(0, 0, 10.0), makeReader(5, 0, 3.0)};
  const System sys(std::move(readers), {makeTag(1, 0)});
  EXPECT_FALSE(sys.isFeasible(std::vector<int>{0, 1}));
}

// The paper's Figure 2: w({A,B,C}) = 3 < w({A,C}) = 4.
TEST(System, Figure2WeightParadox) {
  const System sys = figure2System();
  EXPECT_EQ(sys.weight(std::vector<int>{0, 1, 2}), 3);
  EXPECT_EQ(sys.weight(std::vector<int>{0, 2}), 4);
  EXPECT_EQ(sys.wellCoveredTags(std::vector<int>{0, 1, 2}),
            (std::vector<int>{0, 3, 4}));
  EXPECT_EQ(sys.wellCoveredTags(std::vector<int>{0, 2}),
            (std::vector<int>{0, 1, 2, 3}));
}

TEST(System, SingleWeightCountsWholeInterrogationDisk) {
  const System sys = figure2System();
  EXPECT_EQ(sys.singleWeight(0), 2);  // Tags 1, 2
  EXPECT_EQ(sys.singleWeight(1), 3);  // Tags 2, 3, 5
  EXPECT_EQ(sys.singleWeight(2), 2);  // Tags 3, 4
}

// Figure 1(b): an RTc victim reads nothing, but its signal still denies the
// overlap tags of others (it keeps radiating).
TEST(System, RtcVictimReadsNothing) {
  std::vector<Reader> readers = {
      makeReader(0, 0, 20.0, 5.0),   // A: big interference disk
      makeReader(10, 0, 4.0, 3.0),   // B inside A's interference region
  };
  std::vector<Tag> tags = {
      makeTag(1, 0),    // inside A's interrogation only
      makeTag(10, 1),   // inside B's interrogation only
  };
  const System sys(std::move(readers), std::move(tags));
  ASSERT_FALSE(sys.isFeasible(std::vector<int>{0, 1}));
  // Activating both: B is a victim (inside A's disk), so tag 1 is lost;
  // A is NOT a victim (A is outside B's 4-radius disk), so tag 0 is read.
  EXPECT_EQ(sys.wellCoveredTags(std::vector<int>{0, 1}), (std::vector<int>{0}));
  EXPECT_EQ(sys.weight(std::vector<int>{0, 1}), 1);
  // Alone, each serves its own tag.
  EXPECT_EQ(sys.weight(std::vector<int>{0}), 1);
  EXPECT_EQ(sys.weight(std::vector<int>{1}), 1);
}

TEST(System, MutualRtcKillsBothReaders) {
  std::vector<Reader> readers = {
      makeReader(0, 0, 10.0, 5.0),
      makeReader(5, 0, 10.0, 5.0),
  };
  std::vector<Tag> tags = {makeTag(-3, 0), makeTag(8, 0)};
  const System sys(std::move(readers), std::move(tags));
  EXPECT_EQ(sys.weight(std::vector<int>{0, 1}), 0);
  EXPECT_TRUE(sys.wellCoveredTags(std::vector<int>{0, 1}).empty());
}

// A victim's interrogation region still participates in RRc (Definition 1,
// third condition says "no other reader v_j in X", not "active reader").
TEST(System, VictimStillCausesRrc) {
  std::vector<Reader> readers = {
      makeReader(0, 0, 30.0, 6.0),   // A
      makeReader(8, 0, 6.5, 6.0),    // B: victim of A, overlaps A's region
  };
  std::vector<Tag> tags = {
      makeTag(4, 0),   // covered by A (4) and B (4) both
  };
  const System sys(std::move(readers), std::move(tags));
  // B is a victim; the tag is covered by two readers of X → nobody reads it.
  EXPECT_EQ(sys.weight(std::vector<int>{0, 1}), 0);
}

TEST(System, ReadStateLifecycle) {
  System sys = figure2System();
  EXPECT_EQ(sys.unreadCount(), 5);
  EXPECT_EQ(sys.unreadCoverableCount(), 5);
  sys.markRead(0);
  EXPECT_TRUE(sys.isRead(0));
  EXPECT_EQ(sys.unreadCount(), 4);
  EXPECT_EQ(sys.weight(std::vector<int>{0, 2}), 3);  // Tag1 no longer counts
  sys.markRead(std::vector<int>{1, 2});
  EXPECT_EQ(sys.unreadCount(), 2);
  sys.resetReads();
  EXPECT_EQ(sys.unreadCount(), 5);
  EXPECT_EQ(sys.weight(std::vector<int>{0, 2}), 4);
}

TEST(System, UncoverableTagsTracked) {
  std::vector<Reader> readers = {makeReader(0, 0, 10.0, 5.0)};
  std::vector<Tag> tags = {makeTag(1, 0), makeTag(50, 50)};
  System sys(std::move(readers), std::move(tags));
  EXPECT_EQ(sys.unreadCount(), 2);
  EXPECT_EQ(sys.unreadCoverableCount(), 1);
  EXPECT_TRUE(sys.coverers(1).empty());
}

TEST(System, EmptySetHasZeroWeight) {
  const System sys = figure2System();
  EXPECT_EQ(sys.weight(std::vector<int>{}), 0);
  EXPECT_TRUE(sys.wellCoveredTags(std::vector<int>{}).empty());
}

TEST(System, WeightScratchBufferIsRestored) {
  // Repeated evaluations must not leak multiplicity state.
  const System sys = figure2System();
  const int w1 = sys.weight(std::vector<int>{0, 1, 2});
  const int w2 = sys.weight(std::vector<int>{0, 1, 2});
  EXPECT_EQ(w1, w2);
  const int w3 = sys.weight(std::vector<int>{0, 2});
  EXPECT_EQ(w3, 4);
}

TEST(System, IdsAreRewrittenToIndices) {
  std::vector<Reader> readers = {makeReader(0, 0, 5.0), makeReader(20, 0, 5.0)};
  readers[0].id = 42;
  readers[1].id = 17;
  std::vector<Tag> tags = {makeTag(1, 1)};
  tags[0].id = 99;
  const System sys(std::move(readers), std::move(tags));
  EXPECT_EQ(sys.reader(0).id, 0);
  EXPECT_EQ(sys.reader(1).id, 1);
  EXPECT_EQ(sys.tag(0).id, 0);
}

// Weight subadditivity: w(X1 ∪ X2) ≤ w(X1) + w(X2) for disjoint feasible
// unions — the §IV complication, checked on random instances.
TEST(System, WeightIsSubadditive) {
  workload::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const System sys = test::smallRandomSystem(1000 + static_cast<std::uint64_t>(trial));
    // Split readers into two halves; feasibility not required for the
    // inequality to be interesting, but use singletons to keep X feasible.
    std::vector<int> x1, x2;
    for (int v = 0; v < sys.numReaders(); ++v) {
      (v % 2 == 0 ? x1 : x2).push_back(v);
    }
    std::vector<int> both = x1;
    both.insert(both.end(), x2.begin(), x2.end());
    EXPECT_LE(sys.weight(both), sys.weight(x1) + sys.weight(x2));
  }
}

}  // namespace
}  // namespace rfid::core
