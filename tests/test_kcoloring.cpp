// k-coloring channel baseline tests ([13]): pinned palette, channel-aware
// referee agreement, and its known blind spot (RRc overlap tags).
#include <gtest/gtest.h>

#include "distributed/kcoloring.h"
#include "test_helpers.h"

namespace rfid::dist {
namespace {

TEST(KColoring, ActivatesEveryoneWithinPalette) {
  const core::System sys = test::smallRandomSystem(1, 20, 120, 50.0);
  KColoringScheduler kc(sys, 4, 1);
  const sched::ChanneledResult res = kc.scheduleChanneled(sys);
  EXPECT_EQ(static_cast<int>(res.readers.size()), sys.numReaders());
  for (const int c : res.channel) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
}

TEST(KColoring, WeightMatchesChanneledReferee) {
  const core::System sys = test::smallRandomSystem(2, 18, 110, 50.0);
  KColoringScheduler kc(sys, 4, 2);
  const sched::ChanneledResult res = kc.scheduleChanneled(sys);
  EXPECT_EQ(res.weight,
            static_cast<int>(sched::wellCoveredTagsChanneled(
                                 sys, res.readers, res.channel)
                                 .size()));
}

TEST(KColoring, EnoughChannelsConverge) {
  // Generous palette: the sensing graph is easily colorable and the
  // protocol should settle into a proper coloring.
  const core::System sys = test::smallRandomSystem(3, 15, 60, 60.0);
  KColoringScheduler kc(sys, 32, 3);
  (void)kc.scheduleChanneled(sys);
  EXPECT_TRUE(kc.converged());
}

TEST(KColoring, MoreChannelsMoreWeightOnBatch) {
  double w2 = 0, w8 = 0;
  for (const std::uint64_t seed : {4u, 5u, 6u}) {
    const core::System sys = test::smallRandomSystem(seed, 20, 130, 45.0);
    KColoringScheduler a(sys, 2, seed), b(sys, 8, seed);
    w2 += a.scheduleChanneled(sys).weight;
    w8 += b.scheduleChanneled(sys).weight;
  }
  EXPECT_GE(w8, w2);
}

TEST(KColoring, RrcBlindSpotLeavesOverlapTagsUnread) {
  // The Figure-2 instance: every tag in an interrogation overlap is
  // invisible to pure channel assignment — all readers are always on.
  core::System sys = test::figure2System();
  KColoringScheduler kc(sys, 8, 7);
  const auto res = kc.scheduleChanneled(sys);
  const auto served =
      sched::wellCoveredTagsChanneled(sys, res.readers, res.channel);
  // Tags 2 and 3 (indices 1, 2) sit in overlaps and cannot be served.
  EXPECT_TRUE(std::find(served.begin(), served.end(), 1) == served.end());
  EXPECT_TRUE(std::find(served.begin(), served.end(), 2) == served.end());
  // The exclusive tags are served once the palette separates the readers.
  EXPECT_EQ(res.weight, 3);
}

TEST(KColoring, ChanneledMcsReportsHonestIncompleteness) {
  // With overlap tags unreachable, the channeled MCS driver must stop and
  // report incompleteness rather than loop forever.
  core::System sys = test::figure2System();
  KColoringScheduler kc(sys, 8, 8);
  const sched::ChanneledMcsResult res =
      sched::runChanneledCoveringSchedule(sys, kc, 2000);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.tags_read, 3);
}

}  // namespace
}  // namespace rfid::dist
