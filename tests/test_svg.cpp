// SVG renderer tests: structural validity and color semantics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/svg.h"
#include "test_helpers.h"

namespace rfid::analysis {
namespace {

int countOccurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Svg, ContainsAllEntities) {
  const core::System sys = test::figure2System();
  const std::string svg = renderSvg(sys, std::vector<int>{});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 3 readers → 3 interference + 3 interrogation circles + 3 squares;
  // 5 tags → 5 dots.
  EXPECT_EQ(countOccurrences(svg, "<circle"), 3 + 3 + 5);
  EXPECT_EQ(countOccurrences(svg, "<rect"), 1 + 3);  // background + readers
}

TEST(Svg, ActiveReadersHighlighted) {
  const core::System sys = test::figure2System();
  const std::string idle = renderSvg(sys, std::vector<int>{});
  const std::string active = renderSvg(sys, std::vector<int>{0, 2});
  // Active render uses the green highlight; idle render doesn't.
  EXPECT_EQ(countOccurrences(idle, "#2e7d32'"), 0);
  EXPECT_GT(countOccurrences(active, "#2e7d32'"), 0);
}

TEST(Svg, ServedTagsGreenReadTagsGray) {
  core::System sys = test::figure2System();
  sys.markRead(4);  // Tag5 pre-read → gray
  const std::string svg = renderSvg(sys, std::vector<int>{0, 2});
  // {A,C} well-covers tags 0..3 → 4 green tag dots.
  EXPECT_EQ(countOccurrences(svg, "r='1.6' fill='#2e7d32'"), 4);
  EXPECT_EQ(countOccurrences(svg, "fill='#cccccc'"), 1);
}

TEST(Svg, OptionsSuppressLayers) {
  const core::System sys = test::figure2System();
  SvgOptions opt;
  opt.draw_interference = false;
  const std::string svg = renderSvg(sys, std::vector<int>{}, opt);
  EXPECT_EQ(svg.find("stroke-dasharray"), std::string::npos);
}

TEST(Svg, WritesFileWithDirectories) {
  const core::System sys = test::figure2System();
  const std::string path = "svg_test_dir/deep/fig.svg";
  EXPECT_TRUE(writeSvgFile(path, sys, std::vector<int>{1}));
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::filesystem::remove_all("svg_test_dir");
}

}  // namespace
}  // namespace rfid::analysis
