// Fault-injected MCS driver tests: the referee semantics of crashes (silent
// vs loud), benching/re-planning, degradation accounting, orphan-aware
// termination, and the empty-plan bit-identity guarantee.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/channel_model.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "sched/exact.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "test_helpers.h"

namespace rfid::sched {
namespace {

std::string dumpJson(const obs::MetricsRegistry& r) {
  std::ostringstream os;
  r.writeJson(os, 2);
  return os.str();
}

TEST(FaultMcs, SilentlyCrashedReaderReadsNothingAndOrphansItsTags) {
  // Figure 2, reader A dead from slot 0 forever (silent).  Tag1 is covered
  // by A alone → orphaned; everything else is still servable by B and C.
  core::System sys = test::figure2System();
  fault::FaultPlan plan;
  plan.addCrash(0, 0, -1, /*loud=*/false);

  HillClimbingScheduler ghc;
  McsOptions opt;
  opt.faults = &plan;
  const McsResult res = runCoveringSchedule(sys, ghc, opt);

  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.tags_read, 4);  // Tags 2..5
  EXPECT_EQ(res.degradation.tags_orphaned, 1);
  EXPECT_FALSE(sys.isRead(0));
  // A was proposed at least once before the driver learned it is dead.
  EXPECT_GE(res.degradation.crashed_activations, 1);
  EXPECT_GE(res.degradation.faulty_slots, 1);
}

TEST(FaultMcs, LoudCrashJamsItsInterrogationDiskForever) {
  // Same geometry, but reader B fails *loud*: its stuck transmitter keeps
  // every tag in its interrogation disk at multiplicity >= 2 in every
  // future slot.  Tag5 (B only, coverer dead) and Tags 2, 3 (inside B's
  // disk, jammed) are all orphaned; a silent B-crash would orphan Tag5
  // alone.  Only the exclusive tags of A and C survive.
  core::System sys = test::figure2System();
  fault::FaultPlan loud_plan;
  loud_plan.addCrash(1, 0, -1, /*loud=*/true);

  ExactScheduler exact;  // proposes {A, C} (weight 4) in slot 0
  McsOptions opt;
  opt.faults = &loud_plan;
  const McsResult res = runCoveringSchedule(sys, exact, opt);

  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.tags_read, 2);  // Tag1 (A) and Tag4 (C)
  EXPECT_EQ(res.degradation.tags_orphaned, 3);

  core::System sys2 = test::figure2System();
  fault::FaultPlan silent_plan;
  silent_plan.addCrash(1, 0, -1, /*loud=*/false);
  McsOptions opt2;
  opt2.faults = &silent_plan;
  const McsResult res2 = runCoveringSchedule(sys2, exact, opt2);
  EXPECT_EQ(res2.tags_read, 4);
  EXPECT_EQ(res2.degradation.tags_orphaned, 1);
}

TEST(FaultMcs, BenchedReaderIsReplannedAroundThenReprobed) {
  // A crashes for slots [0, 2) only.  The driver sees the slot-0 failure,
  // benches A for reprobe_interval slots (proposals strip it: re-planned
  // activations), then re-probes; since A recovered at slot 2 the run still
  // completes with every tag read.
  core::System sys = test::figure2System();
  fault::FaultPlan plan;
  plan.addCrash(0, 0, 2, /*loud=*/false);

  ExactScheduler exact;
  McsOptions opt;
  opt.faults = &plan;
  opt.reprobe_interval = 8;
  const McsResult res = runCoveringSchedule(sys, exact, opt);

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.tags_read, 5);
  EXPECT_GE(res.degradation.crashed_activations, 1);
  EXPECT_GE(res.degradation.replanned_activations, 1);
  EXPECT_EQ(res.degradation.tags_orphaned, 0);
  // A stays benched until slot 1 + reprobe_interval even though the outage
  // ended at slot 2 — its exclusive Tag1 cannot be served before then.
  EXPECT_GE(res.slots, 1 + opt.reprobe_interval);
}

TEST(FaultMcs, TerminatesImmediatelyWhenEverythingLeftIsOrphaned) {
  // One reader, dead from slot 0 forever: every coverable tag is orphaned
  // before the first slot executes.  The driver must exit without burning
  // max_stall empty slots.
  std::vector<core::Reader> readers = {test::makeReader(0, 0, 5.0, 3.0)};
  std::vector<core::Tag> tags = {test::makeTag(1, 0), test::makeTag(-1, 1)};
  core::System sys(std::move(readers), std::move(tags));
  fault::FaultPlan plan;
  plan.addCrash(0, 0, -1);

  HillClimbingScheduler ghc;
  McsOptions opt;
  opt.faults = &plan;
  const McsResult res = runCoveringSchedule(sys, ghc, opt);

  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.slots, 0);
  EXPECT_EQ(res.tags_read, 0);
  EXPECT_EQ(res.degradation.tags_orphaned, 2);
}

TEST(FaultMcs, DegradationAccountingIsConsistent) {
  // A busier run: one permanent death, one transient outage, interrogation
  // misses.  Whatever the schedule does, the conservation law holds:
  // tags read + still-unread-coverable == initially coverable, and the
  // orphan count never exceeds what is left unread.
  core::System sys = test::smallRandomSystem(21, 12, 90, 45.0);
  const int coverable_before = sys.unreadCoverableCount();
  ASSERT_GT(coverable_before, 0);

  fault::FaultPlan plan;
  plan.setSeed(5);
  plan.addCrash(3, 0, -1, /*loud=*/false);
  plan.addCrash(7, 2, 6, /*loud=*/false);
  plan.setMissRate(0.1);

  HillClimbingScheduler ghc;
  McsOptions opt;
  opt.faults = &plan;
  const McsResult res = runCoveringSchedule(sys, ghc, opt);

  EXPECT_EQ(res.tags_read + sys.unreadCoverableCount(), coverable_before);
  EXPECT_LE(res.degradation.tags_orphaned, sys.unreadCoverableCount());
  EXPECT_GE(res.degradation.faulty_slots, res.degradation.slots_lost);
  EXPECT_LE(res.degradation.faulty_slots, res.slots);
  // If the run fell short, only orphans explain giving up early (stall and
  // slot caps are far above what this instance needs).
  if (!res.completed) {
    EXPECT_EQ(sys.unreadCoverableCount(), res.degradation.tags_orphaned);
  }
  int sum = 0;
  for (const SlotRecord& s : res.schedule) sum += s.tags_read;
  EXPECT_EQ(sum, res.tags_read);
}

TEST(FaultMcs, MissedTagsAreRetriedInLaterSlots) {
  // Miss faults re-arm tags rather than losing them: with no crashes the
  // run must still complete, just in more slots, and every miss is counted.
  core::System sys = test::smallRandomSystem(22, 10, 60, 40.0);
  const int coverable = sys.unreadCoverableCount();

  fault::FaultPlan plan;
  plan.setSeed(9);
  plan.setMissRate(0.3);

  HillClimbingScheduler ghc;
  McsOptions opt;
  opt.faults = &plan;
  const McsResult res = runCoveringSchedule(sys, ghc, opt);

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.tags_read, coverable);
  EXPECT_GT(res.degradation.tags_missed, 0);
  EXPECT_EQ(res.degradation.tags_orphaned, 0);
  EXPECT_EQ(res.degradation.crashed_activations, 0);
}

TEST(FaultMcs, EmptyPlanIsBitIdenticalToNoPlan) {
  // The acceptance criterion in code: attaching an all-zero FaultPlan (and
  // its ChannelModel) must reproduce the unfaulted run bit for bit —
  // schedule, result fields, and the exported metrics JSON.
  core::System a = test::smallRandomSystem(23, 12, 90, 45.0);
  core::System b = test::smallRandomSystem(23, 12, 90, 45.0);

  HillClimbingScheduler ghc;
  obs::MetricsRegistry plain_reg;
  McsOptions plain;
  plain.metrics = &plain_reg;
  const McsResult r1 = runCoveringSchedule(a, ghc, plain);

  fault::FaultPlan zero;
  zero.setSeed(99);  // a seed alone leaves the plan empty
  ASSERT_TRUE(zero.empty());
  fault::ChannelModel ch(zero);
  obs::MetricsRegistry fault_reg;
  McsOptions wired;
  wired.metrics = &fault_reg;
  wired.faults = &zero;
  wired.channel = &ch;
  const McsResult r2 = runCoveringSchedule(b, ghc, wired);

  EXPECT_EQ(r1.slots, r2.slots);
  EXPECT_EQ(r1.tags_read, r2.tags_read);
  EXPECT_EQ(r1.completed, r2.completed);
  ASSERT_EQ(r1.schedule.size(), r2.schedule.size());
  for (std::size_t i = 0; i < r1.schedule.size(); ++i) {
    EXPECT_EQ(r1.schedule[i].active, r2.schedule[i].active);
    EXPECT_EQ(r1.schedule[i].tags_read, r2.schedule[i].tags_read);
  }
  EXPECT_EQ(r2.degradation.faulty_slots, 0);
  EXPECT_EQ(r2.degradation.ideal_tags_read, 0);
  EXPECT_EQ(dumpJson(plain_reg), dumpJson(fault_reg));
}

TEST(FaultMcs, FaultCountersMatchDegradationStruct) {
  core::System sys = test::smallRandomSystem(24, 12, 90, 45.0);
  fault::FaultPlan plan;
  plan.setSeed(3);
  plan.addCrash(1, 0, -1);
  plan.setMissRate(0.15);

  HillClimbingScheduler ghc;
  obs::MetricsRegistry reg;
  McsOptions opt;
  opt.metrics = &reg;
  opt.faults = &plan;
  const McsResult res = runCoveringSchedule(sys, ghc, opt);

#ifndef RFIDSCHED_NO_OBS
  const std::string json = dumpJson(reg);
  EXPECT_NE(json.find("fault.mcs.crashed_activations"), std::string::npos);
  EXPECT_EQ(reg.counter("fault.mcs.crashed_activations").value(),
            res.degradation.crashed_activations);
  EXPECT_EQ(reg.counter("fault.mcs.replanned_activations").value(),
            res.degradation.replanned_activations);
  EXPECT_EQ(reg.counter("fault.mcs.tags_missed").value(),
            res.degradation.tags_missed);
  EXPECT_EQ(reg.counter("fault.mcs.faulty_slots").value(),
            res.degradation.faulty_slots);
  EXPECT_EQ(reg.counter("fault.mcs.slots_lost").value(),
            res.degradation.slots_lost);
#else
  (void)res;
#endif
}

}  // namespace
}  // namespace rfid::sched
