// WeightEvaluator tests: incremental push/pop must agree exactly with the
// System referee on feasible sets, under random instances and read-state.
#include <gtest/gtest.h>

#include "core/weight.h"
#include "test_helpers.h"
#include "workload/rng.h"

namespace rfid::core {
namespace {

TEST(WeightEvaluator, MatchesReferenceOnFigure2) {
  const System sys = test::figure2System();
  WeightEvaluator eval(sys);
  EXPECT_EQ(eval.weight(), 0);
  EXPECT_EQ(eval.push(0), 2);  // A: tags 1, 2 exclusive
  EXPECT_EQ(eval.weight(), 2);
  EXPECT_EQ(eval.push(2), 2);  // C: tags 3, 4
  EXPECT_EQ(eval.weight(), 4);
  // B overlaps both: gains Tag5, loses Tag2 and Tag3 → delta = 1 − 2 = −1.
  EXPECT_EQ(eval.peekDelta(1), -1);
  EXPECT_EQ(eval.push(1), -1);
  EXPECT_EQ(eval.weight(), 3);
  EXPECT_EQ(eval.weight(), sys.weight(eval.members()));
  EXPECT_EQ(eval.pop(), 1);  // removing B restores 4
  EXPECT_EQ(eval.weight(), 4);
}

TEST(WeightEvaluator, PeekDoesNotMutate) {
  const System sys = test::figure2System();
  WeightEvaluator eval(sys);
  eval.push(0);
  const int w = eval.weight();
  (void)eval.peekDelta(1);
  (void)eval.peekDelta(2);
  EXPECT_EQ(eval.weight(), w);
  EXPECT_EQ(eval.size(), 1);
}

TEST(WeightEvaluator, ClearEmptiesAndBalances) {
  const System sys = test::figure2System();
  WeightEvaluator eval(sys);
  eval.push(0);
  eval.push(2);
  eval.clear();
  EXPECT_EQ(eval.weight(), 0);
  EXPECT_EQ(eval.size(), 0);
}

TEST(WeightEvaluator, RespectsReadState) {
  System sys = test::figure2System();
  sys.markRead(0);  // Tag1 gone
  WeightEvaluator eval(sys);
  EXPECT_EQ(eval.push(0), 1);  // only Tag2 remains for A
  EXPECT_EQ(eval.weight(), sys.weight(eval.members()));
}

// Property: arbitrary push/pop walks agree with System::weight at every
// step, on random feasible sequences across random instances.
class WeightEvaluatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightEvaluatorProperty, AgreesWithRefereeUnderRandomWalk) {
  System sys = test::smallRandomSystem(GetParam(), 14, 80);
  // Randomly mark some tags read to exercise the unread filter.
  workload::Rng rng(GetParam() ^ 0xabcdef);
  for (int t = 0; t < sys.numTags(); ++t) {
    if (rng.bernoulli(0.3)) sys.markRead(t);
  }
  WeightEvaluator eval(sys);
  std::vector<int> members;
  for (int step = 0; step < 200; ++step) {
    const bool do_push = members.empty() || rng.bernoulli(0.6);
    if (do_push) {
      // Pick a random reader independent of all current members.
      const int v = rng.uniformInt(0, sys.numReaders() - 1);
      bool ok = true;
      for (const int u : members) {
        if (u == v || !sys.independent(u, v)) { ok = false; break; }
      }
      if (!ok) continue;
      eval.push(v);
      members.push_back(v);
    } else {
      eval.pop();
      members.pop_back();
    }
    ASSERT_EQ(eval.weight(), sys.weight(members)) << "step " << step;
    ASSERT_EQ(eval.size(), static_cast<int>(members.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightEvaluatorProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(WeightEvaluator, PushPopAreExactInverses) {
  const System sys = test::smallRandomSystem(99, 12, 70);
  WeightEvaluator eval(sys);
  for (int v = 0; v < sys.numReaders(); ++v) {
    const int before = eval.weight();
    bool independent_of_all = true;
    for (const int u : eval.members()) {
      if (!sys.independent(u, v)) { independent_of_all = false; break; }
    }
    if (!independent_of_all) continue;
    const int d = eval.push(v);
    const int d2 = eval.pop();
    EXPECT_EQ(d, -d2);
    EXPECT_EQ(eval.weight(), before);
    eval.push(v);  // keep it for the next iteration's interplay
  }
}

}  // namespace
}  // namespace rfid::core
