// Dynamic tag arrival tests: instance generation, conservation laws of the
// simulation, latency accounting, and drain behavior.
#include <gtest/gtest.h>

#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "workload/dynamic.h"

namespace rfid::workload {
namespace {

DynamicConfig smallConfig() {
  DynamicConfig cfg;
  cfg.arrival_rate = 8.0;
  cfg.arrival_slots = 10;
  cfg.drain_slots = 200;
  cfg.deploy.num_readers = 15;
  cfg.deploy.region_side = 50.0;
  cfg.deploy.lambda_R = 9.0;
  cfg.deploy.lambda_r = 5.0;
  return cfg;
}

TEST(Dynamic, InstanceIsDeterministicAndParked) {
  const DynamicConfig cfg = smallConfig();
  DynamicInstance a = makeDynamicInstance(cfg, 11);
  DynamicInstance b = makeDynamicInstance(cfg, 11);
  ASSERT_EQ(a.system.numTags(), b.system.numTags());
  for (int t = 0; t < a.system.numTags(); ++t) {
    EXPECT_EQ(a.arrival_slot[static_cast<std::size_t>(t)],
              b.arrival_slot[static_cast<std::size_t>(t)]);
    EXPECT_TRUE(a.system.isRead(t)) << "tags start parked";
  }
  EXPECT_EQ(static_cast<int>(a.arrival_slot.size()), a.system.numTags());
}

TEST(Dynamic, ArrivalSlotsWithinWindow) {
  const DynamicConfig cfg = smallConfig();
  const DynamicInstance inst = makeDynamicInstance(cfg, 12);
  for (const int s : inst.arrival_slot) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, cfg.arrival_slots);
  }
  // Poisson(8) over 10 slots: expect ~80 tags, loosely banded.
  EXPECT_GT(inst.system.numTags(), 40);
  EXPECT_LT(inst.system.numTags(), 140);
}

TEST(Dynamic, SimulationConservesTags) {
  const DynamicConfig cfg = smallConfig();
  DynamicInstance inst = makeDynamicInstance(cfg, 13);
  sched::HillClimbingScheduler ghc;
  const DynamicResult res = runDynamicSimulation(inst, ghc, cfg);
  EXPECT_EQ(res.arrived, inst.system.numTags());
  EXPECT_LE(res.served, res.arrived_coverable);
  EXPECT_TRUE(res.drained);
  EXPECT_EQ(res.served, res.arrived_coverable);  // drained = all served
  EXPECT_EQ(static_cast<int>(res.backlog.size()), res.slots_run);
}

TEST(Dynamic, LatencyIsNonNegativeAndBounded) {
  const DynamicConfig cfg = smallConfig();
  DynamicInstance inst = makeDynamicInstance(cfg, 14);
  sched::HillClimbingScheduler ghc;
  const DynamicResult res = runDynamicSimulation(inst, ghc, cfg);
  EXPECT_GE(res.mean_latency, 0.0);
  EXPECT_LT(res.mean_latency, res.slots_run);
}

TEST(Dynamic, BacklogNeverExceedsPresentTags) {
  const DynamicConfig cfg = smallConfig();
  DynamicInstance inst = makeDynamicInstance(cfg, 15);
  sched::HillClimbingScheduler ghc;
  const DynamicResult res = runDynamicSimulation(inst, ghc, cfg);
  EXPECT_LE(res.max_backlog, res.arrived);
  EXPECT_GT(res.max_backlog, 0);
}

TEST(Dynamic, HigherRateMeansMoreBacklog) {
  DynamicConfig low = smallConfig();
  DynamicConfig high = smallConfig();
  high.arrival_rate = 40.0;
  DynamicInstance a = makeDynamicInstance(low, 16);
  DynamicInstance b = makeDynamicInstance(high, 16);
  sched::HillClimbingScheduler ghc1, ghc2;
  const DynamicResult ra = runDynamicSimulation(a, ghc1, low);
  const DynamicResult rb = runDynamicSimulation(b, ghc2, high);
  EXPECT_GT(rb.max_backlog, ra.max_backlog);
}

TEST(Dynamic, ZeroArrivalRateIsSafeAndEmpty) {
  // poisson(0) is UB in the raw distribution; the generator must treat a
  // zero rate as "no arrivals", and the simulation must cope with an empty
  // field (no served tags, latency defined as 0, immediate drain).
  DynamicConfig cfg = smallConfig();
  cfg.arrival_rate = 0.0;
  DynamicInstance inst = makeDynamicInstance(cfg, 18);
  EXPECT_EQ(inst.system.numTags(), 0);
  sched::HillClimbingScheduler ghc;
  const DynamicResult res = runDynamicSimulation(inst, ghc, cfg);
  EXPECT_EQ(res.arrived, 0);
  EXPECT_EQ(res.served, 0);
  EXPECT_EQ(res.mean_latency, 0.0);
  EXPECT_TRUE(res.drained);
  EXPECT_LE(res.slots_run, cfg.arrival_slots + 1);
}

TEST(Dynamic, AllUncoverableArrivalsDrainWithoutService) {
  // Every arrival lands outside the lone reader's interrogation disk: the
  // loop must neither serve nor stall forever, and mean_latency must stay
  // defined at served == 0.
  std::vector<core::Reader> readers;
  core::Reader r;
  r.pos = {0.0, 0.0};
  r.interference_radius = 2.0;
  r.interrogation_radius = 1.0;
  readers.push_back(r);
  std::vector<core::Tag> tags;
  std::vector<int> arrival;
  for (int i = 0; i < 6; ++i) {
    core::Tag t;
    t.id = i;
    t.pos = {100.0 + i, 100.0};  // far outside coverage
    tags.push_back(t);
    arrival.push_back(i % 3);
  }
  DynamicInstance inst{core::System(std::move(readers), std::move(tags)),
                       std::move(arrival)};
  for (int t = 0; t < inst.system.numTags(); ++t) inst.system.markRead(t);

  DynamicConfig cfg;
  cfg.arrival_slots = 3;
  cfg.drain_slots = 5;
  sched::HillClimbingScheduler ghc;
  const DynamicResult res = runDynamicSimulation(inst, ghc, cfg);
  EXPECT_EQ(res.arrived, 6);
  EXPECT_EQ(res.arrived_coverable, 0);
  EXPECT_EQ(res.served, 0);
  EXPECT_EQ(res.mean_latency, 0.0);
  EXPECT_EQ(res.max_backlog, 0);
  EXPECT_TRUE(res.drained);
  EXPECT_LE(res.slots_run, cfg.arrival_slots + 1);
}

TEST(Dynamic, WorksWithGraphBasedScheduler) {
  const DynamicConfig cfg = smallConfig();
  DynamicInstance inst = makeDynamicInstance(cfg, 17);
  const graph::InterferenceGraph g(inst.system);
  sched::GrowthScheduler alg2(g);
  const DynamicResult res = runDynamicSimulation(inst, alg2, cfg);
  EXPECT_TRUE(res.drained);
  EXPECT_EQ(res.served, res.arrived_coverable);
}

}  // namespace
}  // namespace rfid::workload
