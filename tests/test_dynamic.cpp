// Dynamic tag arrival tests: instance generation, conservation laws of the
// simulation, latency accounting, and drain behavior.
#include <gtest/gtest.h>

#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "workload/dynamic.h"

namespace rfid::workload {
namespace {

DynamicConfig smallConfig() {
  DynamicConfig cfg;
  cfg.arrival_rate = 8.0;
  cfg.arrival_slots = 10;
  cfg.drain_slots = 200;
  cfg.deploy.num_readers = 15;
  cfg.deploy.region_side = 50.0;
  cfg.deploy.lambda_R = 9.0;
  cfg.deploy.lambda_r = 5.0;
  return cfg;
}

TEST(Dynamic, InstanceIsDeterministicAndParked) {
  const DynamicConfig cfg = smallConfig();
  DynamicInstance a = makeDynamicInstance(cfg, 11);
  DynamicInstance b = makeDynamicInstance(cfg, 11);
  ASSERT_EQ(a.system.numTags(), b.system.numTags());
  for (int t = 0; t < a.system.numTags(); ++t) {
    EXPECT_EQ(a.arrival_slot[static_cast<std::size_t>(t)],
              b.arrival_slot[static_cast<std::size_t>(t)]);
    EXPECT_TRUE(a.system.isRead(t)) << "tags start parked";
  }
  EXPECT_EQ(static_cast<int>(a.arrival_slot.size()), a.system.numTags());
}

TEST(Dynamic, ArrivalSlotsWithinWindow) {
  const DynamicConfig cfg = smallConfig();
  const DynamicInstance inst = makeDynamicInstance(cfg, 12);
  for (const int s : inst.arrival_slot) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, cfg.arrival_slots);
  }
  // Poisson(8) over 10 slots: expect ~80 tags, loosely banded.
  EXPECT_GT(inst.system.numTags(), 40);
  EXPECT_LT(inst.system.numTags(), 140);
}

TEST(Dynamic, SimulationConservesTags) {
  const DynamicConfig cfg = smallConfig();
  DynamicInstance inst = makeDynamicInstance(cfg, 13);
  sched::HillClimbingScheduler ghc;
  const DynamicResult res = runDynamicSimulation(inst, ghc, cfg);
  EXPECT_EQ(res.arrived, inst.system.numTags());
  EXPECT_LE(res.served, res.arrived_coverable);
  EXPECT_TRUE(res.drained);
  EXPECT_EQ(res.served, res.arrived_coverable);  // drained = all served
  EXPECT_EQ(static_cast<int>(res.backlog.size()), res.slots_run);
}

TEST(Dynamic, LatencyIsNonNegativeAndBounded) {
  const DynamicConfig cfg = smallConfig();
  DynamicInstance inst = makeDynamicInstance(cfg, 14);
  sched::HillClimbingScheduler ghc;
  const DynamicResult res = runDynamicSimulation(inst, ghc, cfg);
  EXPECT_GE(res.mean_latency, 0.0);
  EXPECT_LT(res.mean_latency, res.slots_run);
}

TEST(Dynamic, BacklogNeverExceedsPresentTags) {
  const DynamicConfig cfg = smallConfig();
  DynamicInstance inst = makeDynamicInstance(cfg, 15);
  sched::HillClimbingScheduler ghc;
  const DynamicResult res = runDynamicSimulation(inst, ghc, cfg);
  EXPECT_LE(res.max_backlog, res.arrived);
  EXPECT_GT(res.max_backlog, 0);
}

TEST(Dynamic, HigherRateMeansMoreBacklog) {
  DynamicConfig low = smallConfig();
  DynamicConfig high = smallConfig();
  high.arrival_rate = 40.0;
  DynamicInstance a = makeDynamicInstance(low, 16);
  DynamicInstance b = makeDynamicInstance(high, 16);
  sched::HillClimbingScheduler ghc1, ghc2;
  const DynamicResult ra = runDynamicSimulation(a, ghc1, low);
  const DynamicResult rb = runDynamicSimulation(b, ghc2, high);
  EXPECT_GT(rb.max_backlog, ra.max_backlog);
}

TEST(Dynamic, WorksWithGraphBasedScheduler) {
  const DynamicConfig cfg = smallConfig();
  DynamicInstance inst = makeDynamicInstance(cfg, 17);
  const graph::InterferenceGraph g(inst.system);
  sched::GrowthScheduler alg2(g);
  const DynamicResult res = runDynamicSimulation(inst, alg2, cfg);
  EXPECT_TRUE(res.drained);
  EXPECT_EQ(res.served, res.arrived_coverable);
}

}  // namespace
}  // namespace rfid::workload
