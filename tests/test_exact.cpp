// Exact solver tests: branch & bound vs exhaustive enumeration on small
// random instances, LocalProblem semantics, and budget behavior.
#include <gtest/gtest.h>

#include <numeric>

#include "sched/exact.h"
#include "test_helpers.h"
#include "workload/rng.h"

namespace rfid::sched {
namespace {

/// Exhaustive reference: best weight over all feasible subsets.
int bruteForceBest(const core::System& sys) {
  const int n = sys.numReaders();
  int best = 0;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<int> x;
    for (int v = 0; v < n; ++v) {
      if (mask & (1u << v)) x.push_back(v);
    }
    if (!sys.isFeasible(x)) continue;
    best = std::max(best, sys.weight(x));
  }
  return best;
}

TEST(ExactSolver, Figure2Optimum) {
  const core::System sys = test::figure2System();
  ExactScheduler solver;
  const OneShotResult res = solver.schedule(sys);
  EXPECT_EQ(res.weight, 4);
  EXPECT_EQ(res.readers, (std::vector<int>{0, 2}));  // {A, C}, not {A,B,C}
}

TEST(ExactSolver, EmptySystem) {
  const core::System sys({}, {});
  ExactScheduler solver;
  const OneShotResult res = solver.schedule(sys);
  EXPECT_TRUE(res.readers.empty());
  EXPECT_EQ(res.weight, 0);
}

TEST(ExactSolver, RespectsReadState) {
  core::System sys = test::figure2System();
  // Serve tags 1 and 2 (A's whole coverage): A becomes worthless.
  sys.markRead(std::vector<int>{0, 1});
  ExactScheduler solver;
  const OneShotResult res = solver.schedule(sys);
  // Remaining unread: idx2 (B∩C), idx3 (C only), idx4 (B only) — every
  // feasible set nets at most 2 (the B∩C tag is lost whenever both run).
  EXPECT_EQ(res.weight, 2);
  EXPECT_EQ(res.weight, bruteForceBest(sys));
}

class ExactVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsBruteForce, AgreesOnRandomInstances) {
  const core::System sys = test::smallRandomSystem(GetParam(), 12, 80);
  ExactScheduler solver;
  const OneShotResult res = solver.schedule(sys);
  EXPECT_TRUE(sys.isFeasible(res.readers));
  EXPECT_EQ(sys.weight(res.readers), res.weight);
  EXPECT_EQ(res.weight, bruteForceBest(sys));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBruteForce,
                         ::testing::Range<std::uint64_t>(100, 112));

TEST(SolveLocal, SharedTagIdsModelRrc) {
  // Two conflict-free candidates sharing one tag: selecting both loses the
  // shared tag, so the optimum picks the pair anyway (2+2-2=2 vs single 2)…
  // make the overlap decisive: each has 1 exclusive + 1 shared.
  LocalProblem p;
  p.adj = {{}, {}};
  p.coverage = {{1, 2}, {2, 3}};
  const BnbResult both = solveLocal(p);
  // {0,1}: tags 1 and 3 exclusive, tag 2 lost → weight 2; singles weigh 2.
  EXPECT_EQ(both.weight, 2);
  EXPECT_TRUE(both.optimal);
}

TEST(SolveLocal, OverlapMakesFewerBetter) {
  // Figure 2 in LocalProblem form: A{1,2} B{2,3,5} C{3,4}, no conflicts.
  LocalProblem p;
  p.adj = {{}, {}, {}};
  p.coverage = {{1, 2}, {2, 3, 5}, {3, 4}};
  const BnbResult res = solveLocal(p);
  EXPECT_EQ(res.weight, 4);
  EXPECT_EQ(res.members, (std::vector<int>{0, 2}));
}

TEST(SolveLocal, ConflictsForbidCoselection) {
  LocalProblem p;
  p.adj = {{1}, {0}};
  p.coverage = {{1, 2, 3}, {4, 5}};
  const BnbResult res = solveLocal(p);
  EXPECT_EQ(res.weight, 3);
  EXPECT_EQ(res.members, (std::vector<int>{0}));
}

TEST(SolveLocal, EmptyProblem) {
  const BnbResult res = solveLocal(LocalProblem{});
  EXPECT_TRUE(res.members.empty());
  EXPECT_EQ(res.weight, 0);
  EXPECT_TRUE(res.optimal);
}

TEST(SolveLocal, NodeBudgetReportsNonOptimal) {
  // A big clique-free instance with a 1-node budget cannot finish.
  LocalProblem p;
  const int n = 20;
  p.adj.resize(n);
  p.coverage.resize(n);
  for (int i = 0; i < n; ++i) p.coverage[static_cast<std::size_t>(i)] = {i};
  const BnbResult res = solveLocal(p, 1);
  EXPECT_FALSE(res.optimal);
  // Unlimited budget solves it: all candidates independent, all tags
  // distinct → take everything.
  const BnbResult full = solveLocal(p, 0);
  EXPECT_TRUE(full.optimal);
  EXPECT_EQ(full.weight, n);
  EXPECT_EQ(static_cast<int>(full.members.size()), n);
}

TEST(MaxWeightFeasibleSubset, RestrictsToCandidates) {
  const core::System sys = test::figure2System();
  const std::vector<int> candidates = {1};  // only B allowed
  const BnbResult res = maxWeightFeasibleSubset(sys, candidates);
  EXPECT_EQ(res.members, (std::vector<int>{1}));
  EXPECT_EQ(res.weight, 3);
}

TEST(MaxWeightFeasibleSubset, EmptyCandidates) {
  const core::System sys = test::figure2System();
  const BnbResult res = maxWeightFeasibleSubset(sys, std::vector<int>{});
  EXPECT_TRUE(res.members.empty());
  EXPECT_EQ(res.weight, 0);
}

}  // namespace
}  // namespace rfid::sched
namespace rfid::sched {
namespace {

TEST(SolveLocalPreload, CoveringClaimedTagScoresNegative) {
  LocalProblem p;
  p.adj = {{}};
  p.coverage = {{7}};
  p.preload = {7};  // tag 7 already exclusively covered outside
  const BnbResult res = solveLocal(p);
  // Selecting the candidate would turn tag 7 double-covered: marginal −1.
  EXPECT_TRUE(res.members.empty());
  EXPECT_EQ(res.weight, 0);
}

TEST(SolveLocalPreload, DoublyClaimedTagIsNeutral) {
  LocalProblem p;
  p.adj = {{}};
  p.coverage = {{7, 8}};
  p.preload = {7, 7};  // tag 7 already lost to RRc outside; 8 is fresh
  const BnbResult res = solveLocal(p);
  EXPECT_EQ(res.members, (std::vector<int>{0}));
  EXPECT_EQ(res.weight, 1);  // +1 for tag 8, 0 for tag 7
}

TEST(SolveLocalPreload, TradesClaimedForFresh) {
  LocalProblem p;
  p.adj = {{}};
  p.coverage = {{1, 2, 3}};  // two fresh tags + one claimed
  p.preload = {3};
  const BnbResult res = solveLocal(p);
  EXPECT_EQ(res.members, (std::vector<int>{0}));
  EXPECT_EQ(res.weight, 1);  // +2 fresh − 1 cancelled
}

TEST(SolveLocalPreload, IrrelevantPreloadIgnored) {
  LocalProblem p;
  p.adj = {{}};
  p.coverage = {{1}};
  p.preload = {99, 98, 97};  // tags no candidate covers
  const BnbResult res = solveLocal(p);
  EXPECT_EQ(res.weight, 1);
}

TEST(MaxWeightFeasibleSubset, CommittedReadersShapeTheMarginal) {
  // Figure 2 again: commit B, then ask for the best extension among {A, C}.
  const core::System sys = test::figure2System();
  const std::vector<int> candidates = {0, 2};
  const std::vector<int> committed = {1};
  const BnbResult res = maxWeightFeasibleSubset(sys, candidates, 0, committed);
  // A adds Tag1 (+1) but cancels Tag2 (−1): 0.  C adds Tag4 (+1) and
  // cancels Tag3 (−1): 0.  Nothing strictly improves on committed {B}.
  EXPECT_EQ(res.weight, 0);
  EXPECT_TRUE(res.members.empty());
}

TEST(MaxWeightFeasibleSubset, CommittedRespectsReadState) {
  core::System sys = test::figure2System();
  sys.markRead(1);  // Tag2 served: A no longer cancels anything of B's
  const std::vector<int> candidates = {0};
  const std::vector<int> committed = {1};
  const BnbResult res = maxWeightFeasibleSubset(sys, candidates, 0, committed);
  EXPECT_EQ(res.members, (std::vector<int>{0}));
  EXPECT_EQ(res.weight, 1);  // Tag1 fresh
}

}  // namespace
}  // namespace rfid::sched
