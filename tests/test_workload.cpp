// Workload tests: deterministic RNG splitting, the paper's radius
// distributions with the R ≥ r repair, and the deployment layouts.
#include <gtest/gtest.h>

#include "workload/deployment.h"
#include "workload/distributions.h"
#include "workload/rng.h"
#include "workload/scenario.h"

namespace rfid::workload {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(42), b(43);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, SplitIsOrderIndependent) {
  const Rng root(7);
  Rng s1 = root.split("alpha", 3);
  // Draw from the root's engine-independent property: splitting again after
  // the parent was used must give the same child stream.
  Rng root2(7);
  (void)root2.next();
  Rng s2 = root2.split("alpha", 3);
  EXPECT_EQ(s1.next(), s2.next());
  // Different labels/indices give different streams.
  Rng s3 = root.split("alpha", 4);
  Rng s4 = root.split("beta", 3);
  Rng s5 = root.split("alpha", 3);
  const auto v5 = s5.next();
  EXPECT_NE(s3.next(), v5);
  EXPECT_NE(s4.next(), v5);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Distributions, PoissonRadiusClampsToOne) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(poissonRadius(rng, 0.1), 1.0);  // tiny mean draws many zeros
  }
}

TEST(Distributions, PoissonRadiusMeanTracksLambda) {
  Rng rng(6);
  const double lambda = 10.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += poissonRadius(rng, lambda);
  EXPECT_NEAR(sum / n, lambda, 0.15);  // clamp at 1 is negligible at λ=10
}

TEST(Distributions, RadiusPairEnforcesOrder) {
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    // λ_r > λ_R provokes frequent violations → exercises the swap repair.
    const auto [R, r] = radiusPair(rng, 3.0, 6.0);
    EXPECT_GE(R, r);
    EXPECT_GE(r, 1.0);
  }
}

TEST(Distributions, BetaScaledKeepsRatio) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const auto [R, r] = radiusPairBeta(rng, 10.0, 0.4);
    EXPECT_DOUBLE_EQ(r, 0.4 * R);
    EXPECT_GE(R, 1.0);
  }
}

TEST(Deployment, UniformInBoundsAndValid) {
  DeploymentConfig cfg;
  cfg.num_readers = 40;
  cfg.num_tags = 300;
  const auto readers = uniformReaders(cfg, Rng(1));
  const auto tags = uniformTags(cfg, Rng(2));
  ASSERT_EQ(readers.size(), 40u);
  ASSERT_EQ(tags.size(), 300u);
  for (const auto& r : readers) {
    EXPECT_TRUE(r.valid());
    EXPECT_GE(r.pos.x, 0.0);
    EXPECT_LE(r.pos.x, cfg.region_side);
    EXPECT_GE(r.pos.y, 0.0);
    EXPECT_LE(r.pos.y, cfg.region_side);
  }
  for (const auto& t : tags) {
    EXPECT_GE(t.pos.x, 0.0);
    EXPECT_LE(t.pos.x, cfg.region_side);
  }
}

TEST(Deployment, DeterministicInSeed) {
  DeploymentConfig cfg;
  const auto a = uniformReaders(cfg, Rng(9));
  const auto b = uniformReaders(cfg, Rng(9));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pos, b[i].pos);
    EXPECT_EQ(a[i].interference_radius, b[i].interference_radius);
  }
}

TEST(Deployment, ClusteredTagsStayInRegion) {
  DeploymentConfig cfg;
  cfg.num_tags = 500;
  const auto tags = clusteredTags(cfg, Rng(3), 5, 8.0);
  ASSERT_EQ(tags.size(), 500u);
  for (const auto& t : tags) {
    EXPECT_GE(t.pos.x, 0.0);
    EXPECT_LE(t.pos.x, cfg.region_side);
    EXPECT_GE(t.pos.y, 0.0);
    EXPECT_LE(t.pos.y, cfg.region_side);
  }
}

TEST(Deployment, AisleTagsConcentrateOnAisles) {
  DeploymentConfig cfg;
  cfg.num_tags = 1000;
  const int aisles = 4;
  const auto tags = aisleTags(cfg, Rng(4), aisles, 0.5);
  const double spacing = cfg.region_side / (aisles + 1);
  int near_aisle = 0;
  for (const auto& t : tags) {
    for (int a = 1; a <= aisles; ++a) {
      if (std::abs(t.pos.y - a * spacing) < 2.0) {
        ++near_aisle;
        break;
      }
    }
  }
  EXPECT_GT(near_aisle, 990);  // ~4σ of jitter
}

TEST(Deployment, GridReadersRegularPlacement) {
  DeploymentConfig cfg;
  cfg.num_readers = 12;
  const auto readers = gridReaders(cfg, Rng(5), 4, 3);
  ASSERT_EQ(readers.size(), 12u);
  EXPECT_EQ(readers[0].pos, (geom::Vec2{12.5, 100.0 / 6.0}));
  EXPECT_EQ(readers[5].pos.x, readers[1].pos.x);  // same column
}

TEST(Scenario, PaperPresetMatchesSectionVI) {
  const Scenario sc = paperScenario(12.0, 5.0);
  EXPECT_EQ(sc.deploy.num_readers, 50);
  EXPECT_EQ(sc.deploy.num_tags, 1200);
  EXPECT_DOUBLE_EQ(sc.deploy.region_side, 100.0);
  EXPECT_DOUBLE_EQ(sc.deploy.lambda_R, 12.0);
  EXPECT_DOUBLE_EQ(sc.deploy.lambda_r, 5.0);
}

TEST(Scenario, MakeSystemDeterministicAndValid) {
  const Scenario sc = paperScenario();
  const core::System a = makeSystem(sc, 123);
  const core::System b = makeSystem(sc, 123);
  ASSERT_EQ(a.numReaders(), 50);
  ASSERT_EQ(a.numTags(), 1200);
  for (int v = 0; v < a.numReaders(); ++v) {
    EXPECT_EQ(a.reader(v).pos, b.reader(v).pos);
    EXPECT_TRUE(a.reader(v).valid());
  }
  const core::System c = makeSystem(sc, 124);
  bool any_differs = false;
  for (int v = 0; v < a.numReaders(); ++v) {
    if (!(a.reader(v).pos == c.reader(v).pos)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Scenario, LayoutsProduceWorkingSystems) {
  for (const Layout layout : {Layout::kUniform, Layout::kClusteredTags,
                              Layout::kAisles, Layout::kGridReaders}) {
    Scenario sc = paperScenario();
    sc.layout = layout;
    sc.deploy.num_readers = 20;
    sc.deploy.num_tags = 100;
    const core::System sys = makeSystem(sc, 55);
    EXPECT_EQ(sys.numReaders(), 20);
    EXPECT_EQ(sys.numTags(), 100);
  }
}

}  // namespace
}  // namespace rfid::workload
