// test_cost.cpp — the deterministic cost-attribution contract (obs/cost.h):
// CostBill arithmetic and JSON layout, CostLedger accounting identities
// (Σ slots <= total, phases name-sorted), and the headline guarantee that
// the exported attribution JSON is byte-for-byte identical across
// --threads counts — on plain MCS runs, under a fault plan, and through a
// checkpoint interrupt/resume cycle.
//
// Value assertions ride inside #ifndef RFIDSCHED_NO_OBS; the unguarded
// tests exercise the stub API so a NO_OBS build compiles every call site.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "ckpt/mcs_ckpt.h"
#include "fault/fault_plan.h"
#include "graph/interference_graph.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "sched/growth.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "test_helpers.h"

namespace rfid {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 9105;

// --- CostBill: plain data, live in every build mode -------------------------

TEST(CostBill, ArithmeticAndWorkUnits) {
  obs::CostBill a;
  a.weight_evals = 10;
  a.queue_work = 5;
  a.dp_entries = 3;
  a.bnb_nodes = 2;
  a.cache_hits = 7;
  a.net_messages = 100;
  obs::CostBill b;
  b.weight_evals = 1;
  b.net_rounds = 4;

  a.add(b);
  EXPECT_EQ(a.weight_evals, 11);
  EXPECT_EQ(a.net_rounds, 4);
  // Cache and network terms deliberately stay out of the headline scalar.
  EXPECT_EQ(a.workUnits(), 11 + 5 + 3 + 2);
  a.subtract(b);
  EXPECT_EQ(a.weight_evals, 10);
  EXPECT_EQ(a.net_rounds, 0);

  obs::CostBill c;
  EXPECT_TRUE(c.zero());
  EXPECT_FALSE(a.zero());
  EXPECT_TRUE(c == obs::CostBill{});
  EXPECT_FALSE(c == a);
}

TEST(CostBill, JsonCarriesEveryFieldInDeclarationOrder) {
  obs::CostBill b;
  b.weight_evals = 1;
  b.net_rounds = 2;
  std::ostringstream os;
  b.writeJson(os);
  const std::string j = os.str();
  std::size_t pos = 0;
  for (const auto& f : obs::kCostFields) {
    const std::size_t at = j.find(std::string("\"") + f.name + "\":", pos);
    ASSERT_NE(at, std::string::npos) << f.name << " missing/out of order: " << j;
    pos = at;
  }
  EXPECT_NE(j.find("\"weight_evals\":1"), std::string::npos);
  EXPECT_NE(j.find("\"net_rounds\":2"), std::string::npos);
}

// --- ledger API (stub-safe) --------------------------------------------------

TEST(CostLedger, ApiIsUsableInEveryBuildMode) {
  obs::CostLedger ledger;
  obs::CostBill b;
  b.weight_evals = 3;
  ledger.charge("alg.phase", b);
  ledger.commitSlot(b);
  std::ostringstream os;
  ledger.writeJson(os);
  EXPECT_FALSE(os.str().empty());
  (void)ledger.total();
  (void)ledger.numPhases();
  (void)ledger.numSlots();
}

#ifndef RFIDSCHED_NO_OBS

// --- ledger semantics --------------------------------------------------------

TEST(CostLedger, ChargesAccumulateAndSlotsSliceTheTotal) {
  obs::CostLedger ledger;
  obs::CostBill b;
  b.weight_evals = 4;
  ledger.charge("b.phase", b);
  ledger.charge("a.phase", b);
  ledger.charge("b.phase", b);
  obs::CostBill empty;
  ledger.charge("skipped", empty);  // zero bills never create a phase

  EXPECT_EQ(ledger.numPhases(), 2u);
  EXPECT_EQ(ledger.total().weight_evals, 12);
  ASSERT_NE(ledger.phase("b.phase"), nullptr);
  EXPECT_EQ(ledger.phase("b.phase")->weight_evals, 8);
  EXPECT_EQ(ledger.phase("skipped"), nullptr);

  ledger.commitSlot(ledger.total());
  EXPECT_EQ(ledger.numSlots(), 1u);
  EXPECT_EQ(ledger.slot(0).weight_evals, 12);

  std::ostringstream os;
  ledger.writeJson(os);
  const std::string j = os.str();
  // Phases iterate name-sorted, independent of charge order.
  EXPECT_LT(j.find("a.phase"), j.find("b.phase"));
  EXPECT_NE(j.find("\"slots\""), std::string::npos);
}

// --- cross-thread determinism ------------------------------------------------

std::string costJsonForMcs(int threads, bool with_faults) {
  core::System sys = test::smallRandomSystem(kSeed, 24, 400, 70.0);
  const graph::InterferenceGraph g(sys);
  sched::GrowthOptions o;
  o.num_threads = threads;
  sched::GrowthScheduler alg2(g, o);

  obs::CostLedger ledger;
  alg2.attachCost(&ledger);
  sched::McsOptions opt;
  opt.max_stall = 50;
  opt.cost = &ledger;
  fault::FaultPlan plan;
  plan.setSeed(kSeed);
  if (with_faults) {
    for (int i = 0; i < 5; ++i) {
      plan.addCrash(i * 3, 0, -1, /*loud=*/(i % 2) != 0);
    }
    opt.faults = &plan;
  }
  sched::runCoveringSchedule(sys, alg2, opt);

  std::ostringstream os;
  ledger.writeJson(os);
  return os.str();
}

TEST(CostDeterminism, McsAttributionIsByteIdenticalAcrossThreadCounts) {
  for (const bool faults : {false, true}) {
    SCOPED_TRACE(faults ? "faulted" : "clean");
    const std::string at1 = costJsonForMcs(1, faults);
    EXPECT_EQ(at1, costJsonForMcs(4, faults));
    EXPECT_EQ(at1, costJsonForMcs(8, faults));
    // A real run charged real work.
    EXPECT_NE(at1.find("alg2.selection"), std::string::npos);
    EXPECT_NE(at1.find("mcs.referee"), std::string::npos);
  }
}

TEST(CostDeterminism, PtasShiftAttributionIsThreadCountInvariant) {
  const auto run = [](int threads) {
    core::System sys = test::smallRandomSystem(kSeed + 1, 18, 250, 60.0);
    sched::PtasOptions o;
    o.num_threads = threads;
    sched::PtasScheduler alg1(o);
    obs::CostLedger ledger;
    alg1.attachCost(&ledger);
    alg1.schedule(sys);
    std::ostringstream os;
    ledger.writeJson(os);
    return os.str();
  };
  const std::string at1 = run(1);
  EXPECT_EQ(at1, run(4));
  EXPECT_NE(at1.find("alg1.shifts"), std::string::npos);
  EXPECT_NE(at1.find("alg1.standalone"), std::string::npos);
}

TEST(CostDeterminism, LazyAndReferencePathsChargeTheSameRefereeBill) {
  // The lazy and reference selection paths legitimately differ in *search*
  // cost (that asymmetry is the whole point of the lazy path), but the MCS
  // referee's bill depends only on the schedule — which is identical.
  const auto refereeBill = [](bool lazy) {
    core::System sys = test::smallRandomSystem(kSeed + 2, 20, 300, 65.0);
    const graph::InterferenceGraph g(sys);
    sched::GrowthOptions o;
    o.lazy_selection = lazy;
    sched::GrowthScheduler alg2(g, o);
    obs::CostLedger ledger;
    alg2.attachCost(&ledger);
    sched::McsOptions opt;
    opt.max_stall = 50;
    opt.cost = &ledger;
    sched::runCoveringSchedule(sys, alg2, opt);
    const obs::CostBill* bill = ledger.phase("mcs.referee");
    return bill == nullptr ? obs::CostBill{} : *bill;
  };
  const obs::CostBill lazy = refereeBill(true);
  const obs::CostBill ref = refereeBill(false);
  EXPECT_FALSE(lazy.zero());
  EXPECT_TRUE(lazy == ref);
}

class CostCkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid suffix: ctest -j cases are separate processes sharing one cwd.
    dir_ = "cost_ckpt_tmp." + std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

std::string costJsonCheckpointed(int threads, const std::string& ckpt_path,
                                 bool resume, int slot_cap) {
  core::System sys = test::smallRandomSystem(kSeed, 24, 400, 70.0);
  const graph::InterferenceGraph g(sys);
  sched::GrowthOptions o;
  o.num_threads = threads;
  sched::GrowthScheduler alg2(g, o);

  obs::CostLedger ledger;
  alg2.attachCost(&ledger);
  sched::McsOptions opt;
  opt.max_stall = 50;
  opt.cost = &ledger;

  ckpt::RunBudget budget;
  if (slot_cap > 0) {
    budget.setSlotCap(slot_cap);
    opt.budget = &budget;
    alg2.attachCancel(&budget.token());
  }
  ckpt::CheckpointSetup setup;
  setup.path = ckpt_path;
  setup.resume = resume;
  setup.seed = kSeed;
  const ckpt::CheckpointedRun run =
      ckpt::runMcsCheckpointed(sys, alg2, opt, setup);
  EXPECT_TRUE(run.ok) << run.error;

  std::ostringstream os;
  ledger.writeJson(os);
  return os.str();
}

TEST_F(CostCkptTest, ResumedRunReproducesTheUninterruptedAttribution) {
  // Replay recomputes every committed slot through the live loop, so the
  // resumed ledger must equal an uninterrupted run's — at any thread count.
  const std::string base =
      costJsonCheckpointed(1, dir_ + "/base", /*resume=*/false, /*slot_cap=*/0);
  const std::string cut =
      costJsonCheckpointed(1, dir_ + "/cut", /*resume=*/false, /*slot_cap=*/1);
  EXPECT_NE(base, cut);  // the interrupt genuinely cut the run short
  const std::string resumed =
      costJsonCheckpointed(4, dir_ + "/cut", /*resume=*/true, /*slot_cap=*/0);
  EXPECT_EQ(base, resumed);
}

#endif  // RFIDSCHED_NO_OBS

}  // namespace
}  // namespace rfid
