// test_check.cpp — the invariant oracle itself (src/check/invariants.h).
//
// Two directions, both load-bearing: clean runs across every scheduler and
// execution path must validate with zero violations (no false alarms), and
// seeded corruptions — a tampered served set, an infeasible proposal, an
// inflated weight claim, a double-read — must each raise the specific
// invariant they break (no blindness).  tools/mutation_smoke.sh repeats the
// blindness check end-to-end against mutated production binaries.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "ckpt/budget.h"
#include "ckpt/mcs_ckpt.h"
#include "core/weight.h"
#include "fault/fault_plan.h"
#include "graph/interference_graph.h"
#include "obs/metrics.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "test_helpers.h"

namespace rfid {
namespace {

using check::CheckLevel;
using check::CheckOptions;
using check::ScheduleValidator;

bool hasIssue(const ScheduleValidator& val, const std::string& invariant) {
  for (const auto& i : val.issues()) {
    if (i.invariant == invariant) return true;
  }
  return false;
}

std::string issueList(const ScheduleValidator& val) {
  std::string out;
  for (const auto& i : val.issues()) out += i.invariant + " ";
  return out;
}

// ---- no false alarms: clean runs validate across schedulers ----

TEST(ScheduleValidator, CleanMcsRunsPassAcrossSchedulers) {
  for (const std::uint64_t seed : {401u, 402u}) {
    core::System sys = test::smallRandomSystem(seed, 16, 120, 50.0);
    const graph::InterferenceGraph g(sys);
    sched::PtasScheduler alg1;
    sched::GrowthScheduler alg2(g);
    sched::HillClimbingScheduler ghc;
    const std::vector<sched::OneShotScheduler*> all = {&alg1, &alg2, &ghc};
    for (sched::OneShotScheduler* s : all) {
      sys.resetReads();
      ScheduleValidator val;
      sched::McsOptions opt;
      opt.validator = &val;
      const sched::McsResult res = sched::runCoveringSchedule(sys, *s, opt);
      EXPECT_TRUE(res.completed) << s->name();
      EXPECT_NE(res.stop, sched::McsStop::kCheckFailed) << s->name();
      EXPECT_TRUE(val.ok()) << s->name() << ": " << issueList(val);
      EXPECT_EQ(val.slotsChecked(), res.slots) << s->name();
    }
  }
}

TEST(ScheduleValidator, ParanoidLevelPassesOnCleanRun) {
  core::System sys = test::smallRandomSystem(411, 14, 100, 45.0);
  obs::MetricsRegistry reg;
  CheckOptions co;
  co.level = CheckLevel::kParanoid;
  co.metrics = &reg;
  ScheduleValidator val(co);
  sched::HillClimbingScheduler ghc;
  sched::McsOptions opt;
  opt.validator = &val;
  const sched::McsResult res = sched::runCoveringSchedule(sys, ghc, opt);
  EXPECT_TRUE(res.completed);
  EXPECT_TRUE(val.ok()) << issueList(val);
#ifndef RFIDSCHED_NO_OBS
  // The observability contract: slots and violations land in check.*.
  // (A NO_OBS build stubs every counter to 0 — the validation itself,
  // asserted above, is what must survive there.)
  EXPECT_EQ(reg.counter("check.slots_checked").value(), res.slots);
  EXPECT_EQ(reg.counter("check.violations").value(), 0);
  EXPECT_GT(reg.counter("check.tags_scanned").value(), 0);
#endif
}

TEST(ScheduleValidator, FaultInjectedRunValidatesAgainstFaultedReferee) {
  fault::FaultPlan plan;
  plan.addCrash(2, 1, -1, /*loud=*/true);   // reader 2: permanently loud
  plan.addCrash(4, 0, 9, /*loud=*/false);   // reader 4: silent, slots 0–9
  plan.setMissRate(0.1);

  core::System sys = test::smallRandomSystem(421, 16, 120, 50.0);
  const graph::InterferenceGraph g(sys);
  sched::GrowthScheduler alg2(g);
  CheckOptions co;
  co.faults = &plan;
  ScheduleValidator val(co);
  sched::McsOptions opt;
  opt.validator = &val;
  opt.faults = &plan;
  ASSERT_EQ(co.reprobe_interval, opt.reprobe_interval)
      << "validator must mirror the driver's bench bookkeeping";
  const sched::McsResult res = sched::runCoveringSchedule(sys, alg2, opt);
  EXPECT_NE(res.stop, sched::McsStop::kCheckFailed);
  EXPECT_TRUE(val.ok()) << issueList(val);
  EXPECT_EQ(val.slotsChecked(), res.slots);
}

TEST(ScheduleValidator, CheckpointResumeRevalidatesReplayedSlots) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "check_resume.journal").string();
  std::remove(path.c_str());
  std::remove((path + ".snap").c_str());

  // The instance must genuinely outlast the slot cap.
  {
    core::System sys = test::smallRandomSystem(431, 30, 400, 60.0);
    sched::HillClimbingScheduler ghc;
    ASSERT_GE(sched::runCoveringSchedule(sys, ghc).slots, 3)
        << "instance too easy to test a mid-run resume";
  }
  // Interrupted prefix, validated.
  {
    core::System sys = test::smallRandomSystem(431, 30, 400, 60.0);
    sched::HillClimbingScheduler ghc;
    ckpt::RunBudget budget;
    budget.setSlotCap(2);
    ScheduleValidator val;
    sched::McsOptions opt;
    opt.validator = &val;
    opt.budget = &budget;
    ckpt::CheckpointSetup setup;
    setup.path = path;
    setup.seed = 431;
    const ckpt::CheckpointedRun run =
        ckpt::runMcsCheckpointed(sys, ghc, opt, setup);
    ASSERT_TRUE(run.ok) << run.error;
    ASSERT_TRUE(run.result.interrupted);
    EXPECT_TRUE(val.ok()) << issueList(val);
    EXPECT_EQ(val.slotsChecked(), run.result.slots);
  }
  // Resume: replayed slots re-enter the driver loop and are re-validated
  // exactly like live ones (a fresh validator sees the whole run).
  {
    core::System sys = test::smallRandomSystem(431, 30, 400, 60.0);
    sched::HillClimbingScheduler ghc;
    ScheduleValidator val;
    sched::McsOptions opt;
    opt.validator = &val;
    ckpt::CheckpointSetup setup;
    setup.path = path;
    setup.resume = true;
    setup.seed = 431;
    const ckpt::CheckpointedRun run =
        ckpt::runMcsCheckpointed(sys, ghc, opt, setup);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_EQ(run.replayed_slots, 2);
    EXPECT_TRUE(run.result.completed);
    EXPECT_TRUE(val.ok()) << issueList(val);
    EXPECT_EQ(val.slotsChecked(), run.result.slots);
  }
  std::remove(path.c_str());
  std::remove((path + ".snap").c_str());
}

// ---- no blindness: seeded corruptions raise the specific invariant ----

/// A slot proposal as the driver would hand it to the validator.
sched::OneShotResult proposalFor(core::System& sys) {
  sched::HillClimbingScheduler ghc;
  return ghc.schedule(sys);
}

TEST(ScheduleValidator, CleanManualSlotPasses) {
  core::System sys = test::figure2System();
  ScheduleValidator val;
  ASSERT_TRUE(val.beginRun(sys));
  const sched::OneShotResult one = proposalFor(sys);
  const std::vector<int> served = sys.wellCoveredTags(one.readers);
  EXPECT_TRUE(val.checkSlot(sys, 0, one, one.readers, {}, served));
  EXPECT_TRUE(val.ok()) << issueList(val);
}

TEST(ScheduleValidator, CatchesTamperedServedSet) {
  core::System sys = test::figure2System();
  ScheduleValidator val;
  ASSERT_TRUE(val.beginRun(sys));
  const sched::OneShotResult one = proposalFor(sys);
  std::vector<int> served = sys.wellCoveredTags(one.readers);
  ASSERT_FALSE(served.empty());
  served.pop_back();  // referee "loses" a tag it must have served
  EXPECT_FALSE(val.checkSlot(sys, 0, one, one.readers, {}, served));
  EXPECT_TRUE(hasIssue(val, "slot.served-mismatch")) << issueList(val);
}

TEST(ScheduleValidator, CatchesInfeasibleProposal) {
  // Two readers 5 apart with R = 10: flagrantly dependent (Definition 2).
  std::vector<core::Reader> readers = {test::makeReader(0, 0, 10.0, 6.0),
                                       test::makeReader(5, 0, 10.0, 6.0)};
  std::vector<core::Tag> tags = {test::makeTag(0, 3), test::makeTag(5, -3)};
  core::System sys(std::move(readers), std::move(tags));
  ScheduleValidator val;
  ASSERT_TRUE(val.beginRun(sys));
  sched::OneShotResult bad;
  bad.readers = {0, 1};
  bad.weight = 0;
  val.checkSlot(sys, 0, bad, bad.readers, {}, sys.wellCoveredTags(bad.readers));
  EXPECT_FALSE(val.ok());
  EXPECT_TRUE(hasIssue(val, "slot.infeasible")) << issueList(val);
}

TEST(ScheduleValidator, CatchesInflatedWeightClaim) {
  core::System sys = test::figure2System();
  ScheduleValidator val;
  ASSERT_TRUE(val.beginRun(sys));
  sched::OneShotResult one = proposalFor(sys);
  const std::vector<int> served = sys.wellCoveredTags(one.readers);
  one.weight += 3;  // scheduler brags
  EXPECT_FALSE(val.checkSlot(sys, 0, one, one.readers, {}, served));
  EXPECT_TRUE(hasIssue(val, "slot.claimed-weight-mismatch")) << issueList(val);
}

TEST(ScheduleValidator, CatchesDoubleRead) {
  core::System sys = test::figure2System();
  ScheduleValidator val;
  ASSERT_TRUE(val.beginRun(sys));
  const sched::OneShotResult one = proposalFor(sys);
  const std::vector<int> served = sys.wellCoveredTags(one.readers);
  ASSERT_FALSE(served.empty());
  // Proper driver order: validate pre-commit, then commit.
  ASSERT_TRUE(val.checkSlot(sys, 0, one, one.readers, {}, served));
  sys.markRead(served);
  // Same served set again: every tag is now read in the shadow ledger.
  sys.resetReads();  // production state lies; the shadow does not
  EXPECT_FALSE(val.checkSlot(sys, 1, one, one.readers, {}, served));
  EXPECT_TRUE(hasIssue(val, "slot.reread")) << issueList(val);
}

TEST(ScheduleValidator, CatchesZeroWeightCommit) {
  // Reader 1 covers nothing; committing it alone is a wasted slot while
  // tag 0 (coverable by reader 0) remains unread.
  std::vector<core::Reader> readers = {test::makeReader(0, 0, 8.0, 4.0),
                                       test::makeReader(100, 0, 8.0, 4.0)};
  std::vector<core::Tag> tags = {test::makeTag(0, 2)};
  core::System sys(std::move(readers), std::move(tags));
  ScheduleValidator val;
  ASSERT_TRUE(val.beginRun(sys));
  sched::OneShotResult idle;
  idle.readers = {1};
  idle.weight = 0;
  EXPECT_FALSE(val.checkSlot(sys, 0, idle, idle.readers, {}, {}));
  EXPECT_TRUE(hasIssue(val, "slot.zero-weight-commit")) << issueList(val);
}

TEST(ScheduleValidator, FailFastOffAccumulatesIssues) {
  core::System sys = test::figure2System();
  CheckOptions co;
  co.fail_fast = false;
  ScheduleValidator val(co);
  ASSERT_TRUE(val.beginRun(sys));
  sched::OneShotResult one = proposalFor(sys);
  std::vector<int> served = sys.wellCoveredTags(one.readers);
  one.weight += 1;
  ASSERT_FALSE(served.empty());
  served.pop_back();
  // Without fail_fast the slot call reports true (keep running) while the
  // violations accumulate for the end-of-run report.
  EXPECT_TRUE(val.checkSlot(sys, 0, one, one.readers, {}, served));
  EXPECT_FALSE(val.ok());
  EXPECT_GE(val.violations(), 2);
  EXPECT_TRUE(hasIssue(val, "slot.claimed-weight-mismatch")) << issueList(val);
  EXPECT_TRUE(hasIssue(val, "slot.served-mismatch")) << issueList(val);
}

TEST(ScheduleValidator, DriverAbortsRunOnViolation) {
  // A scheduler that lies about its weight on every slot: the driver must
  // stop at the first commit attempt with kCheckFailed and commit nothing.
  class Braggart : public sched::OneShotScheduler {
   public:
    sched::OneShotResult schedule(const core::System& sys) override {
      sched::HillClimbingScheduler inner;
      sched::OneShotResult r = inner.schedule(sys);
      r.weight += 5;
      return r;
    }
    std::string name() const override { return "braggart"; }
  };
  core::System sys = test::smallRandomSystem(441, 12, 90, 45.0);
  Braggart bad;
  ScheduleValidator val;
  sched::McsOptions opt;
  opt.validator = &val;
  const sched::McsResult res = sched::runCoveringSchedule(sys, bad, opt);
  EXPECT_EQ(res.stop, sched::McsStop::kCheckFailed);
  EXPECT_EQ(res.slots, 0);
  EXPECT_FALSE(val.ok());
  EXPECT_TRUE(hasIssue(val, "slot.claimed-weight-mismatch")) << issueList(val);
}

// ---- the WeightEvaluator self-audit ----

TEST(WeightEvaluatorAudit, PassesThroughPushPopSequences) {
  core::System sys = test::smallRandomSystem(451, 12, 90, 45.0);
  core::WeightEvaluator eval(sys);
  std::string why;
  EXPECT_TRUE(eval.checkInvariants(&why)) << why;
  for (int v = 0; v < sys.numReaders(); v += 2) eval.push(v);
  EXPECT_TRUE(eval.checkInvariants(&why)) << why;
  eval.pop();
  eval.pop();
  EXPECT_TRUE(eval.checkInvariants(&why)) << why;
  eval.clear();
  EXPECT_TRUE(eval.checkInvariants(&why)) << why;
}

TEST(WeightEvaluatorAudit, DetectsReadStateMutatedUnderHeldStack) {
  core::System sys = test::figure2System();
  core::WeightEvaluator eval(sys);
  eval.push(0);  // reader A exclusively covers Tag1
  ASSERT_GT(eval.weight(), 0);
  sys.markRead(0);  // mutate read-state behind the evaluator's back
  std::string why;
  EXPECT_FALSE(eval.checkInvariants(&why));
  EXPECT_FALSE(why.empty());
  sys.resetReads();
}

}  // namespace
}  // namespace rfid
