// test_gen2_fuzz.cpp — randomized robustness sweeps for the Gen2 link layer
// (ctest label `fuzz`; also exercised under ASan/UBSan in CI).
//
// Two promises under arbitrary configurations:
//   1. never hang — every round respects its micro-slot / frame caps and
//      terminates, completed or not;
//   2. never identify a tag twice in one session — the round-level acked[]
//      self-check stays clean and persistence windows are honoured.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "protocol/gen2.h"
#include "protocol/slot_timing.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "test_helpers.h"
#include "workload/rng.h"

namespace rfid {
namespace {

using protocol::Gen2Options;
using protocol::Gen2Policy;
using protocol::Gen2RoundResult;
using protocol::Gen2Session;
using protocol::Gen2SessionState;
using protocol::runGen2Round;

Gen2Options randomOptions(workload::Rng& rng) {
  Gen2Options opt;
  opt.q0 = rng.uniformInt(0, 15);
  opt.c = rng.uniform(0.1, 0.5);
  opt.policy = rng.uniformInt(0, 1) == 0 ? Gen2Policy::kQAlgorithm
                                         : Gen2Policy::kAfsa;
  switch (rng.uniformInt(0, 3)) {
    case 0: opt.session = Gen2Session::kS0; break;
    case 1: opt.session = Gen2Session::kS1; break;
    case 2: opt.session = Gen2Session::kS2; break;
    default: opt.session = Gen2Session::kS3; break;
  }
  opt.mpr_k = rng.uniformInt(0, 4);
  opt.persistence = rng.uniformInt(0, 4);
  opt.alternate_target = rng.uniformInt(0, 1) == 1;
  return opt;
}

// Random configs over multi-slot round sequences with shared session state:
// bounded work, no double-identification, and completed rounds account for
// every participant exactly once.
TEST(Gen2Fuzz, RoundSequencesNeverHangNorDoubleIdentify) {
  for (const std::uint64_t seed : test::seedRange(1000, test::iterBudget(40))) {
    workload::Rng rng(seed);
    const Gen2Options opt = randomOptions(rng);
    const int n = rng.uniformInt(0, 600);
    std::vector<int> pop(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pop[static_cast<std::size_t>(i)] = i;

    Gen2SessionState st;
    const int persist = protocol::persistenceSlots(opt);
    // last_identified[t] = macro-slot of the most recent identification.
    std::vector<int> last(static_cast<std::size_t>(n), -1000000);
    const int slots = rng.uniformInt(1, 8);
    for (int slot = 0; slot < slots; ++slot) {
      st.startSlot(slot, opt);
      workload::Rng round_rng = rng.split("round", static_cast<std::uint64_t>(slot));
      const Gen2RoundResult r = runGen2Round(
          pop, st, slot, protocol::roundTarget(opt, slot), round_rng, opt);

      ASSERT_FALSE(r.double_identified) << "seed=" << seed << " slot=" << slot;
      ASSERT_LE(r.micro_slots, opt.max_micro_slots);
      ASSERT_LE(r.frames, opt.max_frames);
      ASSERT_GE(r.air_us, 0);
      ASSERT_LE(static_cast<int>(r.identified.size()) + r.session_skips, n);

      // No tag re-identified within its persistence window (fixed-target
      // runs only — alternation legitimately re-reads on the flip side).
      for (const int t : pop) {
        ASSERT_GE(t, 0);
        ASSERT_LT(t, n);
      }
      for (const int t : r.identified) {
        if (!opt.alternate_target) {
          ASSERT_GT(slot - last[static_cast<std::size_t>(t)], persist)
              << "seed=" << seed << " slot=" << slot << " tag=" << t;
        }
        last[static_cast<std::size_t>(t)] = slot;
      }
      // A completed round identified each participant at most once.
      std::vector<int> ids = r.identified;
      std::sort(ids.begin(), ids.end());
      ASSERT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
      if (r.completed) {
        ASSERT_EQ(static_cast<int>(ids.size()) + r.session_skips, n)
            << "seed=" << seed << " slot=" << slot;
      }
    }
  }
}

// Pathologically tight caps: the round must stop at the cap and report
// incomplete instead of hanging.
TEST(Gen2Fuzz, TightCapsTerminateIncomplete) {
  for (const std::uint64_t seed : test::seedRange(2000, test::iterBudget(20))) {
    workload::Rng rng(seed);
    Gen2Options opt = randomOptions(rng);
    opt.max_micro_slots = rng.uniformInt(0, 12);
    opt.max_frames = rng.uniformInt(1, 3);
    Gen2SessionState st;
    workload::Rng round_rng(seed ^ 0x9e3779b97f4a7c15ULL);
    const int n = 400;
    std::vector<int> pop(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pop[static_cast<std::size_t>(i)] = i;
    const Gen2RoundResult r =
        runGen2Round(pop, st, 0, protocol::Gen2Target::kA, round_rng, opt);
    ASSERT_FALSE(r.double_identified);
    ASSERT_LE(r.frames, opt.max_frames);
    // 400 tags cannot fit in ≤ 3 tiny frames; the caps must have tripped.
    ASSERT_FALSE(r.completed);
  }
}

// End-to-end: random configs replayed over real covering schedules keep the
// link self-check green and the work bounded.
TEST(Gen2Fuzz, LinkReplayOnRandomSystemsStaysSound) {
  for (const std::uint64_t seed : test::seedRange(3000, test::iterBudget(12))) {
    workload::Rng cfg_rng(seed);
    core::System sys = test::smallRandomSystem(seed);
    sched::HillClimbingScheduler ghc;
    const sched::McsResult res = sched::runCoveringSchedule(sys, ghc);
    if (!res.completed) continue;

    protocol::LinkOptions lo;
    lo.link = protocol::Link::kGen2;
    lo.gen2 = randomOptions(cfg_rng);
    // Co-simulation pins target A; exercise the remaining surface.
    lo.gen2.alternate_target = false;
    const protocol::LinkTimingResult lt =
        protocol::timeScheduleLink(sys, res, lo, workload::Rng(seed));
    ASSERT_TRUE(lt.check_ok) << "seed=" << seed << ": " << lt.check_detail;
    ASSERT_EQ(lt.double_identifications, 0);
    ASSERT_EQ(lt.tags_read, res.tags_read);
    ASSERT_GE(lt.air_us_serial, lt.air_us);
    ASSERT_LE(lt.micro_slots,
              lo.gen2.max_micro_slots * static_cast<std::int64_t>(res.slots));
  }
}

}  // namespace
}  // namespace rfid
