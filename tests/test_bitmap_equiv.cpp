// test_bitmap_equiv.cpp — the blocked-bitmap weight referee against the
// retained CSR reference path (docs/performance.md).
//
// The bitmap referee re-expresses weight(X), singleWeight(v), and
// wellCoveredTags() as word-parallel popcount sweeps over Morton-ordered
// coverage rows.  Every row of the equivalence matrix pins it to the CSR
// scalar path on the same instance: raw referee calls, one-shot schedules,
// MCS slot sequences (with and without fault injection), streaming churn,
// and checkpoint resume must be byte-identical.  The SFC permutation that
// underlies the layout is property-tested as a round-trip bijection.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "check/index_oracle.h"
#include "ckpt/budget.h"
#include "ckpt/mcs_ckpt.h"
#include "fault/fault_plan.h"
#include "geometry/morton.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/mcs.h"
#include "test_helpers.h"

namespace rfid::core {
namespace {

System bitmapSystem(std::uint64_t seed, int n = 70, int m = 1200) {
  return test::smallRandomSystem(seed, n, m, /*side=*/60.0);
}

// ---- raw referee equivalence: weight / singleWeight / wellCoveredTags ----

TEST(BitmapEquiv, RefereeMatchesCsrOnRandomSubsets) {
  for (const std::uint64_t seed : test::seedRange(101, test::iterBudget(4))) {
    System fast = bitmapSystem(seed);
    System ref = bitmapSystem(seed);
    ref.setReferenceEval(true);
    ASSERT_FALSE(fast.referenceEval());
    ASSERT_TRUE(ref.referenceEval());

    std::mt19937 rng(static_cast<unsigned>(seed));
    for (int round = 0; round < 12; ++round) {
      // Random active set, occasionally with jamming readers; the referee
      // must agree on weights and on the exact well-covered tag sets.
      std::vector<int> x;
      std::vector<int> jam;
      for (int v = 0; v < fast.numReaders(); ++v) {
        const unsigned r = rng() % 8;
        if (r < 2) x.push_back(v);
        else if (r == 2) jam.push_back(v);
      }
      ASSERT_EQ(fast.weight(x), ref.weight(x)) << "seed " << seed;
      ASSERT_EQ(fast.wellCoveredTags(x, jam), ref.wellCoveredTags(x, jam))
          << "seed " << seed << " round " << round;
      for (const int v : x) {
        ASSERT_EQ(fast.singleWeight(v), ref.singleWeight(v));
      }
      // Consume some of the served tags so later rounds see a different
      // read-state (the bitmap referee masks read bits word-parallel).
      const std::vector<int> served = fast.wellCoveredTags(x, jam);
      for (std::size_t i = 0; i < served.size(); i += 3) {
        fast.markRead(served[i]);
        ref.markRead(served[i]);
      }
    }
  }
}

// ---- one-shot and MCS schedule equivalence across referee paths ----

TEST(BitmapEquiv, OneShotScheduleIdenticalAcrossReferees) {
  for (const std::uint64_t seed : test::seedRange(111, test::iterBudget(3))) {
    System fast = bitmapSystem(seed);
    System ref = bitmapSystem(seed);
    ref.setReferenceEval(true);
    const graph::InterferenceGraph gf(fast);
    const graph::InterferenceGraph gr(ref);
    sched::GrowthScheduler sf(gf);
    sched::GrowthScheduler sr(gr);
    const sched::OneShotResult a = sf.schedule(fast);
    const sched::OneShotResult b = sr.schedule(ref);
    EXPECT_EQ(a.readers, b.readers) << "seed " << seed;
    EXPECT_EQ(a.weight, b.weight) << "seed " << seed;
  }
}

void expectSameMcs(const sched::McsResult& a, const sched::McsResult& b,
                   const std::string& what) {
  EXPECT_EQ(a.slots, b.slots) << what;
  EXPECT_EQ(a.tags_read, b.tags_read) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  ASSERT_EQ(a.schedule.size(), b.schedule.size()) << what;
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].active, b.schedule[i].active) << what << " slot " << i;
    EXPECT_EQ(a.schedule[i].tags_read, b.schedule[i].tags_read)
        << what << " slot " << i;
  }
}

TEST(BitmapEquiv, McsSlotSequencesIdenticalAcrossReferees) {
  for (const std::uint64_t seed : test::seedRange(121, test::iterBudget(2))) {
    sched::McsResult want;
    {
      System sys = bitmapSystem(seed);
      sys.setReferenceEval(true);
      const graph::InterferenceGraph g(sys);
      sched::GrowthScheduler s(g);
      want = sched::runCoveringSchedule(sys, s, {});
    }
    {
      System sys = bitmapSystem(seed);
      const graph::InterferenceGraph g(sys);
      sched::GrowthScheduler s(g);
      const sched::McsResult got = sched::runCoveringSchedule(sys, s, {});
      expectSameMcs(want, got, "mcs seed " + std::to_string(seed));
    }
  }
}

TEST(BitmapEquiv, FaultInjectedMcsIdenticalAcrossReferees) {
  fault::FaultPlan plan;
  plan.addCrash(2, 1, -1, /*loud=*/true);
  plan.addCrash(7, 0, -1, /*loud=*/false);

  sched::McsResult want;
  {
    System sys = bitmapSystem(131);
    sys.setReferenceEval(true);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler s(g);
    sched::McsOptions opt;
    opt.faults = &plan;
    want = sched::runCoveringSchedule(sys, s, opt);
  }
  {
    System sys = bitmapSystem(131);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler s(g);
    sched::McsOptions opt;
    opt.faults = &plan;
    expectSameMcs(want, sched::runCoveringSchedule(sys, s, opt), "fault mcs");
  }
}

// ---- streaming churn: incremental bitmap maintenance vs rebuild ----

TEST(BitmapEquiv, ChurnedBitmapMatchesRebuildAndCsr) {
  for (const std::uint64_t seed : test::seedRange(141, test::iterBudget(3))) {
    System sys = bitmapSystem(seed, 40, 500);
    std::mt19937 rng(static_cast<unsigned>(seed) + 9);
    const double side = 60.0;
    auto pos = [&rng, side] {
      return geom::Vec2{side * (static_cast<double>(rng() % 10000) / 10000.0),
                        side * (static_cast<double>(rng() % 10000) / 10000.0)};
    };
    for (int op = 0; op < 120; ++op) {
      const unsigned k = rng() % 4;
      if (k == 0) {
        Tag t;
        t.pos = pos();
        t.epc = static_cast<std::uint64_t>(100000 + op);
        sys.addTag(t);
      } else if (k == 1) {
        const int t = static_cast<int>(rng() % static_cast<unsigned>(sys.numTags()));
        if (!sys.departed(t)) sys.removeTag(t);
      } else {
        const int t = static_cast<int>(rng() % static_cast<unsigned>(sys.numTags()));
        if (!sys.departed(t)) sys.moveTag(t, pos());
      }
      if (rng() % 5 == 0) {
        const int t = static_cast<int>(rng() % static_cast<unsigned>(sys.numTags()));
        if (!sys.departed(t)) sys.markRead(t);
      }
    }
    // The incrementally patched bitmap must agree with the CSR referee on
    // every single-reader weight, with the oracle's independent geometry
    // rebuild, and with its own from-scratch reconstruction.
    System ref = sys;  // same churned state
    ref.setReferenceEval(true);
    for (int v = 0; v < sys.numReaders(); ++v) {
      ASSERT_EQ(sys.singleWeight(v), ref.singleWeight(v)) << "reader " << v;
    }
    check::IncrementalIndexOracle oracle;
    EXPECT_EQ(oracle.verify(sys, /*slot=*/0), check::IndexVerdict::kOk)
        << "seed " << seed;
    const std::uint64_t live = sys.bitmapFingerprint();
    sys.rebuildIndex();
    EXPECT_EQ(sys.bitmapFingerprint(), live) << "seed " << seed;
  }
}

TEST(BitmapEquiv, OracleDetectsAndHealsBitmapDesync) {
  System sys = bitmapSystem(151, 30, 300);
  check::IncrementalIndexOracle oracle;
  ASSERT_EQ(oracle.verify(sys, 0), check::IndexVerdict::kOk);
  sys.testOnlyCorruptBitmap();
  EXPECT_EQ(oracle.verify(sys, 1), check::IndexVerdict::kHealed);
  EXPECT_EQ(oracle.divergences(), 1);
  EXPECT_EQ(oracle.verify(sys, 2), check::IndexVerdict::kOk);
}

// ---- checkpoint resume across referee paths ----

TEST(BitmapEquiv, ResumedRunMatchesUninterruptedReferenceReferee) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "bitmap_equiv_ckpt.journal").string();
  std::remove(path.c_str());
  std::remove((path + ".snap").c_str());

  sched::McsResult want;
  {
    System sys = bitmapSystem(161);
    sys.setReferenceEval(true);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler s(g);
    want = sched::runCoveringSchedule(sys, s, {});
  }
  ASSERT_GE(want.slots, 3) << "instance too easy to test a mid-run resume";

  {
    System sys = bitmapSystem(161);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler s(g);
    ckpt::RunBudget budget;
    budget.setSlotCap(2);
    sched::McsOptions opt;
    opt.budget = &budget;
    s.attachCancel(&budget.token());
    ckpt::CheckpointSetup setup;
    setup.path = path;
    setup.seed = 161;
    const ckpt::CheckpointedRun run =
        ckpt::runMcsCheckpointed(sys, s, opt, setup);
    ASSERT_TRUE(run.ok) << run.error;
    ASSERT_TRUE(run.result.interrupted);
  }
  {
    System sys = bitmapSystem(161);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler s(g);
    ckpt::CheckpointSetup setup;
    setup.path = path;
    setup.resume = true;
    setup.seed = 161;
    const ckpt::CheckpointedRun run =
        ckpt::runMcsCheckpointed(sys, s, {}, setup);
    ASSERT_TRUE(run.ok) << run.error;
    ASSERT_FALSE(run.result.interrupted);
    expectSameMcs(want, run.result, "resumed vs reference referee");
  }
  std::remove(path.c_str());
  std::remove((path + ".snap").c_str());
}

// ---- SFC permutation properties ----

TEST(BitmapEquiv, SfcPermutationRoundTripsAndMatchesMortonOrder) {
  for (const std::uint64_t seed : test::seedRange(171, test::iterBudget(4))) {
    const System sys = bitmapSystem(seed, 50, 800);
    const int n = sys.numReaders();
    const int m = sys.numTags();

    // Round-trip bijections: bit/tag and row/reader.
    std::vector<char> seen_bit(static_cast<std::size_t>(m), 0);
    for (int t = 0; t < m; ++t) {
      const std::uint32_t p = sys.tagBit(t);
      ASSERT_LT(p, sys.numTagBits());
      ASSERT_EQ(sys.bitTag(p), t);
      ASSERT_EQ(seen_bit[p], 0) << "bit position reused";
      seen_bit[p] = 1;
    }
    std::vector<char> seen_row(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      const std::uint32_t r = sys.readerRow(v);
      ASSERT_LT(r, static_cast<std::uint32_t>(n));
      ASSERT_EQ(sys.rowReader(r), v);
      ASSERT_EQ(seen_row[r], 0) << "arena row reused";
      seen_row[r] = 1;
    }

    // The construction-time permutations are exactly mortonOrder() over the
    // respective position sets: bit p holds the p-th tag on the Z-curve.
    std::vector<geom::Vec2> tag_pos;
    tag_pos.reserve(static_cast<std::size_t>(m));
    for (const Tag& t : sys.tags()) tag_pos.push_back(t.pos);
    const std::vector<int> tag_order = geom::mortonOrder(tag_pos);
    for (std::size_t p = 0; p < tag_order.size(); ++p) {
      ASSERT_EQ(sys.bitTag(static_cast<std::uint32_t>(p)), tag_order[p]);
    }
    std::vector<geom::Vec2> reader_pos;
    reader_pos.reserve(static_cast<std::size_t>(n));
    for (const Reader& r : sys.readers()) reader_pos.push_back(r.pos);
    const std::vector<int> reader_order = geom::mortonOrder(reader_pos);
    for (std::size_t r = 0; r < reader_order.size(); ++r) {
      ASSERT_EQ(sys.rowReader(static_cast<std::uint32_t>(r)), reader_order[r]);
    }

    // Bitmap rows decode back to exactly the CSR coverage lists, and all
    // public results stay in original-id space (schedules/goldens contract).
    for (int v = 0; v < n; ++v) {
      std::vector<int> decoded;
      for (const BitEntry& e : sys.bitRow(v)) {
        for (std::uint64_t bits = e.bits; bits != 0; bits &= bits - 1) {
          const std::uint32_t p = (e.word << 6) +
              static_cast<std::uint32_t>(std::countr_zero(bits));
          decoded.push_back(sys.bitTag(p));
        }
      }
      std::sort(decoded.begin(), decoded.end());
      std::vector<int> want(sys.coverage(v).begin(), sys.coverage(v).end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(decoded, want) << "reader " << v;
    }
  }
}

}  // namespace
}  // namespace rfid::core
