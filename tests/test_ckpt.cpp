// test_ckpt.cpp — checkpoint subsystem units (docs/recovery.md): record
// codecs and CRCs, torn-tail semantics, the corruption fuzz sweeps
// (truncate at every byte offset, flip every bit of every record), run
// budgets, and the atomic file writer.  The sweeps are the satellite's
// hard guarantee: readJournal() must never crash on hostile bytes and must
// fail closed on everything except exactly one torn tail record.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/atomic_file.h"
#include "ckpt/budget.h"
#include "ckpt/journal.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/mcs.h"
#include "test_helpers.h"

namespace rfid::ckpt {
namespace {

namespace fs = std::filesystem;

class CkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Suffix with the pid: ctest -j runs each case as its own process, and
    // concurrent cases sharing one fixture dir race each other's remove_all.
    dir_ = "ckpt_test_tmp." + std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

JournalHeader testHeader() {
  JournalHeader h;
  h.algo = "Alg2";
  h.seed = 42;
  h.deployment_hash = 0x0123456789abcdefull;
  h.fault_hash = 0xfeedull;
  return h;
}

SlotEntry testSlot(int q) {
  SlotEntry e;
  e.slot = q;
  e.active = {1, 4, 7 + q};
  e.served = {2 * q, 2 * q + 1};
  e.crashed = q % 2;
  e.replanned = 1;
  e.missed = 2;
  e.ideal = 3 + q;
  e.faulty = (q % 2) != 0;
  e.lost = false;
  e.epoch = q / 3;
  e.fp = 0xdeadbeefcafe0000ull + static_cast<std::uint64_t>(q);
  return e;
}

/// Writes a journal with `n` slots and returns its full byte content.
std::string makeJournal(const std::string& p, int n) {
  JournalWriter w;
  EXPECT_TRUE(w.create(p, testHeader()));
  for (int q = 0; q < n; ++q) EXPECT_TRUE(w.appendSlot(testSlot(q)));
  w.close();
  std::ifstream is(p, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  return text;
}

void writeBytes(const std::string& p, const std::string& bytes) {
  std::ofstream os(p, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- hashes ----

TEST(CkptHash, Crc32KnownVectors) {
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);  // the classic IEEE check value
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(CkptHash, Fnv1aBasics) {
  EXPECT_EQ(fnv1a(""), 1469598103934665603ull);  // offset basis
  EXPECT_NE(fnv1a("reader,0"), fnv1a("reader,1"));
  // Chaining is equivalent to hashing the concatenation.
  EXPECT_EQ(fnv1a("cd", fnv1a("ab")), fnv1a("abcd"));
}

// ---- record codecs ----

TEST(CkptCodec, HeaderRoundTrip) {
  const JournalHeader h = testHeader();
  JournalHeader out;
  ASSERT_TRUE(decodeHeader(encodeHeader(h), &out));
  EXPECT_EQ(out, h);
}

TEST(CkptCodec, SlotRoundTrip) {
  for (int q : {0, 1, 5, 1000}) {
    const SlotEntry e = testSlot(q);
    SlotEntry out;
    ASSERT_TRUE(decodeSlot(encodeSlot(e), &out));
    EXPECT_EQ(out, e);
  }
  // Empty active / served sets are legal (a stalled slot).
  SlotEntry empty;
  SlotEntry out;
  ASSERT_TRUE(decodeSlot(encodeSlot(empty), &out));
  EXPECT_EQ(out, empty);
}

TEST(CkptCodec, DecodersRejectEveryTamperedByte) {
  const std::string hdr = encodeHeader(testHeader());
  const std::string slot = encodeSlot(testSlot(3));
  JournalHeader h;
  SlotEntry e;
  for (std::size_t i = 0; i < hdr.size(); ++i) {
    std::string t = hdr;
    t[i] = static_cast<char>(t[i] ^ 0x01);
    EXPECT_FALSE(decodeHeader(t, &h)) << "byte " << i;
  }
  for (std::size_t i = 0; i < slot.size(); ++i) {
    std::string t = slot;
    t[i] = static_cast<char>(t[i] ^ 0x01);
    EXPECT_FALSE(decodeSlot(t, &e)) << "byte " << i;
  }
}

TEST(CkptCodec, SnapshotRoundTripAllNibbleBoundaries) {
  // 0..9 tags crosses every 4-tags-per-nibble packing boundary.
  for (int tags = 0; tags <= 9; ++tags) {
    Snapshot s;
    s.slot = 17;
    for (int t = 0; t < tags; ++t) {
      s.read.push_back(static_cast<char>(t % 3 == 0 ? 1 : 0));
    }
    const std::string text = encodeSnapshot(s, 0xabcdull);
    Snapshot out;
    std::uint64_t dep = 0;
    ASSERT_TRUE(decodeSnapshot(text, &out, &dep)) << tags << " tags";
    EXPECT_EQ(out.slot, s.slot);
    EXPECT_EQ(out.read, s.read);
    EXPECT_EQ(dep, 0xabcdull);
  }
}

TEST(CkptCodec, SnapshotRejectsTamper) {
  Snapshot s;
  s.slot = 4;
  s.read = {1, 0, 1, 1, 0};
  const std::string text = encodeSnapshot(s, 99);
  Snapshot out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string t = text;
    t[i] = static_cast<char>(t[i] ^ 0x10);
    EXPECT_FALSE(decodeSnapshot(t, &out, nullptr)) << "byte " << i;
  }
}

// ---- journal writer / reader ----

TEST_F(CkptTest, WriteThenReadBack) {
  const std::string p = path("j");
  makeJournal(p, 5);
  std::string err;
  const auto data = readJournal(p, &err);
  ASSERT_TRUE(data.has_value()) << err;
  EXPECT_EQ(data->header, testHeader());
  ASSERT_EQ(data->slots.size(), 5u);
  for (int q = 0; q < 5; ++q) EXPECT_EQ(data->slots[q], testSlot(q));
  EXPECT_FALSE(data->dropped_torn_tail);
  EXPECT_EQ(data->valid_bytes, fs::file_size(p));
}

TEST_F(CkptTest, CreateRefusesToClobber) {
  const std::string p = path("j");
  makeJournal(p, 1);
  JournalWriter w;
  std::string err;
  EXPECT_FALSE(w.create(p, testHeader(), &err));
  EXPECT_NE(err.find("resume it or remove it"), std::string::npos) << err;
  // The existing journal is untouched.
  EXPECT_TRUE(readJournal(p).has_value());
}

TEST_F(CkptTest, TornTailIsDroppedAndTruncatedOnAppend) {
  const std::string p = path("j");
  const std::string full = makeJournal(p, 3);
  // Simulate a crash mid-write of record 3: append half a record.
  const std::string torn = encodeSlot(testSlot(3)).substr(0, 20);
  writeBytes(p, full + torn);

  std::string err;
  const auto data = readJournal(p, &err);
  ASSERT_TRUE(data.has_value()) << err;
  EXPECT_TRUE(data->dropped_torn_tail);
  ASSERT_EQ(data->slots.size(), 3u);
  EXPECT_EQ(data->valid_bytes, full.size());

  // openAppend truncates the torn bytes, and appending continues cleanly.
  JournalWriter w;
  ASSERT_TRUE(w.openAppend(p, data->header, data->valid_bytes, &err)) << err;
  ASSERT_TRUE(w.appendSlot(testSlot(3)));
  w.close();
  const auto again = readJournal(p, &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_FALSE(again->dropped_torn_tail);
  ASSERT_EQ(again->slots.size(), 4u);
  EXPECT_EQ(again->slots[3], testSlot(3));
}

TEST_F(CkptTest, InteriorCorruptionFailsClosed) {
  const std::string p = path("j");
  std::string text = makeJournal(p, 4);
  // Damage a byte in the middle of the file (inside record 1), keeping the
  // tail intact: this must NOT be treated as a torn tail.
  text[text.size() / 2] ^= 0x40;
  writeBytes(p, text);
  std::string err;
  EXPECT_FALSE(readJournal(p, &err).has_value());
  EXPECT_NE(err.find("corrupt"), std::string::npos) << err;
}

TEST_F(CkptTest, SlotSequenceGapFailsClosed) {
  const std::string p = path("j");
  JournalWriter w;
  ASSERT_TRUE(w.create(p, testHeader()));
  ASSERT_TRUE(w.appendSlot(testSlot(0)));
  ASSERT_TRUE(w.appendSlot(testSlot(2)));  // skipped slot 1
  // A valid non-final record must follow, otherwise the gap record is
  // (correctly) indistinguishable from a torn tail and dropped.
  ASSERT_TRUE(w.appendSlot(testSlot(3)));
  w.close();
  std::string err;
  EXPECT_FALSE(readJournal(p, &err).has_value());
  EXPECT_NE(err.find("sequence gap"), std::string::npos) << err;
}

TEST_F(CkptTest, EmptyAndHeaderlessFilesFailClosed) {
  const std::string p = path("j");
  writeBytes(p, "");
  EXPECT_FALSE(readJournal(p).has_value());
  writeBytes(p, "not a journal\n");
  EXPECT_FALSE(readJournal(p).has_value());
  EXPECT_FALSE(readJournal(path("missing")).has_value());
}

// ---- corruption fuzz sweeps ----

TEST_F(CkptTest, TornHeaderFailsClosedEvenWithValidSlotsBehindIt) {
  // The one-torn-record leniency is for the *tail* only.  A journal whose
  // header record is damaged identifies no run at all — resuming against
  // the wrong deployment would silently produce garbage — so it must fail
  // closed even when perfectly valid slot records follow the damage.
  const std::string p = path("j");
  const std::string hdr = encodeHeader(testHeader()) + "\n";
  const std::string slots = encodeSlot(testSlot(0)) + "\n" +
                            encodeSlot(testSlot(1)) + "\n";
  std::string err;

  // Header cut mid-record, intact slots appended after the tear.
  writeBytes(p, hdr.substr(0, hdr.size() / 2) + slots);
  EXPECT_FALSE(readJournal(p, &err).has_value());
  EXPECT_FALSE(err.empty());

  // Header missing its newline terminator, slots glued on.
  writeBytes(p, hdr.substr(0, hdr.size() - 1) + slots);
  EXPECT_FALSE(readJournal(p, &err).has_value());

  // Header replaced by a slot record: first record must BE a header.
  writeBytes(p, slots);
  EXPECT_FALSE(readJournal(p, &err).has_value());

  // Zero-byte journal: nothing to resume.
  writeBytes(p, "");
  EXPECT_FALSE(readJournal(p, &err).has_value());
}

TEST_F(CkptTest, FuzzTruncateAtEveryByteOffset) {
  const std::string p = path("j");
  const std::string full = makeJournal(p, 6);
  const auto orig = readJournal(p);
  ASSERT_TRUE(orig.has_value());
  const std::size_t header_bytes =
      encodeHeader(testHeader()).size() + 1;  // + '\n'

  const std::string cut_path = path("cut");
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    writeBytes(cut_path, full.substr(0, cut));
    const auto data = readJournal(cut_path);  // must never crash
    if (cut < header_bytes) {
      // Header incomplete: nothing to resume, fail closed.
      EXPECT_FALSE(data.has_value()) << "cut=" << cut;
      continue;
    }
    // Past the header every truncation is recoverable: complete records
    // survive, at most one partial tail record is dropped.
    ASSERT_TRUE(data.has_value()) << "cut=" << cut;
    EXPECT_EQ(data->header, orig->header);
    ASSERT_LE(data->slots.size(), orig->slots.size());
    for (std::size_t q = 0; q < data->slots.size(); ++q) {
      EXPECT_EQ(data->slots[q], orig->slots[q]) << "cut=" << cut;
    }
    EXPECT_EQ(data->dropped_torn_tail, cut != full.size() &&
                                           data->valid_bytes != cut)
        << "cut=" << cut;
    EXPECT_LE(data->valid_bytes, cut);
  }
}

TEST_F(CkptTest, FuzzFlipEveryBitOfEveryRecord) {
  const std::string p = path("j");
  const std::string full = makeJournal(p, 4);
  const auto orig = readJournal(p);
  ASSERT_TRUE(orig.has_value());

  const std::string flip_path = path("flip");
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string t = full;
      t[byte] = static_cast<char>(t[byte] ^ (1 << bit));
      writeBytes(flip_path, t);
      const auto data = readJournal(flip_path);  // must never crash
      if (!data.has_value()) continue;           // failed closed: fine
      // Anything readJournal accepts must be a strict prefix of the truth
      // (the damaged record — wherever the flip landed — was dropped as a
      // torn tail, never silently altered).
      EXPECT_EQ(data->header, orig->header) << "byte=" << byte;
      ASSERT_LT(data->slots.size(), orig->slots.size())
          << "byte=" << byte << " bit=" << bit
          << ": single-bit corruption accepted in full";
      for (std::size_t q = 0; q < data->slots.size(); ++q) {
        EXPECT_EQ(data->slots[q], orig->slots[q]) << "byte=" << byte;
      }
    }
  }
}

// ---- atomic file writer ----

TEST_F(CkptTest, AtomicWriteRoundTripAndOverwrite) {
  const std::string p = path("f");
  ASSERT_TRUE(writeFileAtomic(p, "first"));
  std::ifstream a(p);
  std::string got((std::istreambuf_iterator<char>(a)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "first");
  ASSERT_TRUE(writeFileAtomic(p, "second, longer content"));
  std::ifstream b(p);
  got.assign(std::istreambuf_iterator<char>(b),
             std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "second, longer content");
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(CkptTest, AtomicWriteFailureReportsStepAndLeavesNoTmp) {
  std::string err;
  EXPECT_FALSE(writeFileAtomic(path("no_such_dir") + "/f", "x", &err));
  EXPECT_NE(err.find("open tmp"), std::string::npos) << err;
  // Rename failure (target is a directory): the old target survives and
  // the temporary is cleaned up — no torn artifacts on any failure path.
  const std::string dirp = path("adir");
  fs::create_directory(dirp);
  err.clear();
  EXPECT_FALSE(writeFileAtomic(dirp, "x", &err));
  EXPECT_NE(err.find("rename"), std::string::npos) << err;
  EXPECT_TRUE(fs::is_directory(dirp));
  EXPECT_FALSE(fs::exists(dirp + ".tmp"));
}

// ---- budgets ----

TEST(CkptBudget, UnarmedBudgetNeverStops) {
  RunBudget b;
  EXPECT_FALSE(b.armed());
  EXPECT_EQ(b.charge(0), BudgetStop::kNone);
  EXPECT_EQ(b.charge(1 << 20), BudgetStop::kNone);
}

TEST(CkptBudget, SlotCapFiresDeterministically) {
  RunBudget b;
  b.setSlotCap(3);
  EXPECT_TRUE(b.armed());
  EXPECT_EQ(b.charge(2), BudgetStop::kNone);
  EXPECT_EQ(b.charge(3), BudgetStop::kSlotCap);
  EXPECT_EQ(b.charge(4), BudgetStop::kSlotCap);
  // The cap outranks an expired deadline: cap-limited runs stop at the
  // same slot regardless of wall-clock jitter.
  b.setDeadline(std::chrono::milliseconds(0));
  EXPECT_EQ(b.charge(3), BudgetStop::kSlotCap);
}

TEST(CkptBudget, ExpiredDeadlineStops) {
  RunBudget b;
  b.setDeadline(std::chrono::milliseconds(0));
  EXPECT_TRUE(b.armed());
  EXPECT_EQ(b.charge(0), BudgetStop::kDeadline);
  EXPECT_TRUE(b.token().cancelled());
}

TEST(CkptBudget, ExplicitCancelStops) {
  RunBudget b;
  EXPECT_EQ(b.charge(0), BudgetStop::kNone);
  b.token().cancel();
  EXPECT_EQ(b.charge(0), BudgetStop::kCancelled);
  EXPECT_TRUE(b.token().cancelled());
}

TEST(CkptBudget, TokenDeadlineLifecycle) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
  t.setDeadline(std::chrono::steady_clock::now() +
                std::chrono::hours(24));
  EXPECT_FALSE(t.deadlineExpired());
  t.setDeadline(std::chrono::steady_clock::now() -
                std::chrono::milliseconds(1));
  EXPECT_TRUE(t.deadlineExpired());
  t.clearDeadline();
  EXPECT_FALSE(t.cancelled());
}

TEST(CkptBudget, StopNames) {
  EXPECT_STREQ(budgetStopName(BudgetStop::kNone), "none");
  EXPECT_STREQ(budgetStopName(BudgetStop::kSlotCap), "slot-cap");
  EXPECT_STREQ(budgetStopName(BudgetStop::kDeadline), "deadline");
  EXPECT_STREQ(budgetStopName(BudgetStop::kCancelled), "cancelled");
}

// ---- budget / token edge cases (the service layer's contracts) ----

TEST(CkptBudget, ZeroAndNegativeDeadlinesFireImmediately) {
  // A <= 0 deadline must arm and fire at the very first checkpoint — the
  // admission layer maps "deadline already spent" onto exactly this.
  RunBudget zero;
  zero.setDeadline(std::chrono::milliseconds(0));
  EXPECT_TRUE(zero.armed());
  EXPECT_EQ(zero.charge(0), BudgetStop::kDeadline);

  RunBudget negative;
  negative.setDeadline(std::chrono::milliseconds(-50));
  EXPECT_TRUE(negative.armed());
  EXPECT_EQ(negative.charge(0), BudgetStop::kDeadline);
  EXPECT_TRUE(negative.token().cancelled());
}

TEST(CkptBudget, AlreadyCancelledTokenAtAdmissionRunsZeroSlots) {
  // A token cancelled before the run starts (client gone, drain racing
  // admission) must yield a valid empty result: zero committed slots,
  // interrupted, kCancelled — never a partial first slot.
  core::System sys = test::smallRandomSystem(7, 10, 60, 40.0);
  const graph::InterferenceGraph g(sys);
  sched::GrowthScheduler scheduler(g);
  RunBudget budget;
  budget.token().cancel();
  sched::McsOptions opt;
  opt.budget = &budget;
  scheduler.attachCancel(&budget.token());
  const sched::McsResult res = sched::runCoveringSchedule(sys, scheduler, opt);
  EXPECT_EQ(res.slots, 0);
  EXPECT_EQ(res.tags_read, 0);
  EXPECT_TRUE(res.interrupted);
  EXPECT_EQ(res.stop, sched::McsStop::kCancelled);
  EXPECT_TRUE(res.schedule.empty());
}

/// Cancels the shared token *during* the Nth schedule() call — the
/// raced-with-final-slot-commit window: the driver has already committed
/// N-1 slots and is mid-proposal for slot N when the cancel lands.
class CancelDuringNthCall : public sched::OneShotScheduler {
 public:
  CancelDuringNthCall(sched::OneShotScheduler& inner, CancelToken& token,
                      int fire_on_call)
      : inner_(inner), token_(token), fire_on_call_(fire_on_call) {}

  std::string name() const override { return inner_.name(); }
  sched::OneShotResult schedule(const core::System& sys) override {
    if (++calls_ == fire_on_call_) token_.cancel();
    return inner_.schedule(sys);
  }

 private:
  sched::OneShotScheduler& inner_;
  CancelToken& token_;
  int fire_on_call_;
  int calls_ = 0;
};

TEST(CkptBudget, CancelRacedWithFinalSlotCommitKeepsPrefixOnly) {
  // Baseline trajectory, uninterrupted.
  core::System base = test::smallRandomSystem(11, 12, 80, 45.0);
  const graph::InterferenceGraph g0(base);
  sched::GrowthScheduler s0(g0);
  const sched::McsResult full = sched::runCoveringSchedule(base, s0);
  ASSERT_GE(full.slots, 2) << "need a multi-slot run to race the last slot";

  // Same run, but the token fires inside the final slot's schedule() call.
  // The anytime contract: that proposal is discarded, never committed, so
  // the result is exactly the first slots-1 of the uninterrupted run.
  core::System sys = test::smallRandomSystem(11, 12, 80, 45.0);
  const graph::InterferenceGraph g(sys);
  sched::GrowthScheduler inner(g);
  RunBudget budget;
  CancelDuringNthCall racer(inner, budget.token(), full.slots);
  sched::McsOptions opt;
  opt.budget = &budget;
  const sched::McsResult res = sched::runCoveringSchedule(sys, racer, opt);
  EXPECT_TRUE(res.interrupted);
  EXPECT_EQ(res.stop, sched::McsStop::kCancelled);
  ASSERT_EQ(res.slots, full.slots - 1);
  for (int q = 0; q < res.slots; ++q) {
    const auto idx = static_cast<std::size_t>(q);
    EXPECT_EQ(res.schedule[idx].active, full.schedule[idx].active)
        << "slot " << q;
    EXPECT_EQ(res.schedule[idx].tags_read, full.schedule[idx].tags_read)
        << "slot " << q;
  }
}

}  // namespace
}  // namespace rfid::ckpt
