// Streaming MCS tests (docs/streaming.md): the metamorphic anchor (an
// empty churn trace is bit-identical to the static driver for every
// algorithm at every thread count), churn trace generation/serialization,
// overload control, the index oracle's divergence contract inside the
// stream, and checkpoint interrupt/resume bit-identity with the churn
// trace folded into the journal identity.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "check/index_oracle.h"
#include "ckpt/mcs_ckpt.h"
#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/streaming.h"
#include "test_helpers.h"
#include "workload/churn.h"

namespace rfid::sched {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 8101;

std::unique_ptr<OneShotScheduler> makeScheduler(
    const std::string& algo, const graph::InterferenceGraph& g,
    const core::System& sys, int threads) {
  if (algo == "alg2") {
    GrowthOptions o;
    o.num_threads = threads;
    return std::make_unique<GrowthScheduler>(g, o);
  }
  if (algo == "alg3") return std::make_unique<dist::GrowthDistributedScheduler>(g);
  if (algo == "ghc") return std::make_unique<HillClimbingScheduler>();
  if (algo == "ca") return std::make_unique<dist::ColorwaveScheduler>(sys, kSeed);
  ADD_FAILURE() << "unknown algo " << algo;
  return nullptr;
}

TEST(Streaming, EmptyTraceIsBitIdenticalToStaticMcs) {
  // The metamorphic anchor: with no churn the streaming driver must commit
  // exactly the slots, tags, metrics, and cost ledger of
  // runCoveringSchedule — for every algorithm, at every thread count.
  for (const std::string algo : {"alg2", "alg3", "ghc", "ca"}) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE(algo + " threads=" + std::to_string(threads));

      core::System a = test::smallRandomSystem(kSeed, 20, 300, 60.0);
      const graph::InterferenceGraph ga(a);
      auto sa = makeScheduler(algo, ga, a, threads);
      obs::MetricsRegistry reg_a;
      obs::CostLedger cost_a;
      sa->attachMetrics(&reg_a);
      sa->attachCost(&cost_a);
      McsOptions mo;
      mo.max_stall = 50;
      mo.metrics = &reg_a;
      mo.cost = &cost_a;
      const McsResult want = runCoveringSchedule(a, *sa, mo);

      core::System b = test::smallRandomSystem(kSeed, 20, 300, 60.0);
      const graph::InterferenceGraph gb(b);
      auto sb = makeScheduler(algo, gb, b, threads);
      obs::MetricsRegistry reg_b;
      obs::CostLedger cost_b;
      sb->attachMetrics(&reg_b);
      sb->attachCost(&cost_b);
      StreamingOptions so;
      so.max_stall = 50;
      so.metrics = &reg_b;
      so.cost = &cost_b;
      const StreamingResult got = runStreamingMcs(b, *sb, {}, so);

      EXPECT_EQ(got.slots, want.slots);
      EXPECT_EQ(got.tags_read, want.tags_read);
      EXPECT_EQ(got.uncoverable, want.uncoverable);
      EXPECT_EQ(got.idle_slots, 0);
      EXPECT_EQ(got.stream_slots, want.slots);
      EXPECT_TRUE(got.drained);
      ASSERT_EQ(got.schedule.size(), want.schedule.size());
      for (std::size_t q = 0; q < want.schedule.size(); ++q) {
        EXPECT_EQ(got.schedule[q].active, want.schedule[q].active)
            << "slot " << q;
        EXPECT_EQ(got.schedule[q].tags_read, want.schedule[q].tags_read)
            << "slot " << q;
      }
      std::ostringstream ma, mb, ca_j, cb_j;
      reg_a.writeJson(ma);
      reg_b.writeJson(mb);
      EXPECT_EQ(ma.str(), mb.str()) << "metrics JSON diverged";
      cost_a.writeJson(ca_j);
      cost_b.writeJson(cb_j);
      EXPECT_EQ(ca_j.str(), cb_j.str()) << "cost ledger diverged";
    }
  }
}

TEST(Streaming, ChurnTraceGenerationIsDeterministicAndRateFaithful) {
  workload::ChurnConfig cc;
  cc.arrival_rate = 6.0;
  cc.depart_rate = 2.0;
  cc.move_rate = 1.0;
  cc.slots = 50;
  const workload::ChurnTrace a = workload::makeChurnTrace(cc, 100, 5);
  const workload::ChurnTrace b = workload::makeChurnTrace(cc, 100, 5);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_TRUE(a.events[i] == b.events[i]) << "event " << i;
  }
  EXPECT_NE(workload::churnTraceHash(a),
            workload::churnTraceHash(workload::makeChurnTrace(cc, 100, 6)));

  // Poisson(6) arrivals over 50 slots: loosely banded around 300.
  int arrivals = 0;
  for (const auto& e : a.events) {
    arrivals += e.kind == workload::ChurnKind::kArrive ? 1 : 0;
  }
  EXPECT_GT(arrivals, 150);
  EXPECT_LT(arrivals, 450);

  // Zero rates mean zero events, not UB.
  workload::ChurnConfig quiet;
  quiet.arrival_rate = 0.0;
  quiet.slots = 20;
  EXPECT_TRUE(workload::makeChurnTrace(quiet, 10, 1).empty());

  // A 10x burst multiplier produces strictly more arrivals than the same
  // seed without one.
  workload::ChurnConfig bursty = cc;
  bursty.burst_multiplier = 10.0;
  bursty.burst_enter = 0.2;
  int burst_arrivals = 0;
  for (const auto& e : workload::makeChurnTrace(bursty, 100, 5).events) {
    burst_arrivals += e.kind == workload::ChurnKind::kArrive ? 1 : 0;
  }
  EXPECT_GT(burst_arrivals, arrivals);
}

TEST(Streaming, ChurnTraceRoundTripsAndFailsClosed) {
  workload::ChurnConfig cc;
  cc.arrival_rate = 4.0;
  cc.depart_rate = 1.0;
  cc.move_rate = 1.0;
  cc.slots = 30;
  const workload::ChurnTrace trace = workload::makeChurnTrace(cc, 40, 9);
  std::ostringstream os;
  workload::saveChurnTrace(os, trace);
  std::istringstream is(os.str());
  const auto loaded = workload::loadChurnTrace(is);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_TRUE(loaded->events[i] == trace.events[i]) << "event " << i;
  }
  EXPECT_EQ(workload::churnTraceHash(*loaded), workload::churnTraceHash(trace));

  const auto rejects = [](const char* text, const char* what) {
    std::istringstream ss(text);
    std::string err;
    EXPECT_FALSE(workload::loadChurnTrace(ss, &err).has_value()) << what;
    EXPECT_NE(err.find("churn trace line"), std::string::npos) << err;
  };
  rejects("arrive,0,nan,2.0,7\n", "non-finite coordinate");
  rejects("arrive,0,1.0\n", "short record");
  rejects("depart,0,-3\n", "negative tag");
  rejects("warp,0,1\n", "unknown kind");
  rejects("depart,5,1\ndepart,4,2\n", "out-of-order slots");
}

TEST(Streaming, ServesChurningPopulationAndDrains) {
  core::System sys = test::smallRandomSystem(kSeed, 20, 200, 60.0);
  const graph::InterferenceGraph g(sys);
  GrowthScheduler alg2(g);
  workload::ChurnConfig cc;
  cc.arrival_rate = 5.0;
  cc.depart_rate = 1.0;
  cc.move_rate = 1.0;
  cc.slots = 40;
  cc.region_side = 60.0;
  const workload::ChurnTrace trace =
      workload::makeChurnTrace(cc, sys.numTags(), kSeed);

  check::IncrementalIndexOracle oracle;
  StreamingOptions so;
  so.oracle = &oracle;
  const StreamingResult res = runStreamingMcs(sys, alg2, trace, so);
  EXPECT_TRUE(res.drained);
  EXPECT_GT(res.arrived, 0);
  EXPECT_GT(res.departed, 0);
  EXPECT_GT(res.moved, 0);
  EXPECT_EQ(res.skipped_events, 0);
  EXPECT_GT(res.tags_read, 0);
  EXPECT_GE(res.latency_p99, res.latency_p50);
  EXPECT_GT(res.tags_per_sec, 0.0);
  EXPECT_GT(res.index_checks, 0);
  EXPECT_EQ(res.index_divergences, 0) << "incremental index diverged";
  EXPECT_EQ(sys.unreadCoverableCount(), 0);
}

TEST(Streaming, BacklogBoundShedsAndCapsBacklog) {
  core::System sys = test::smallRandomSystem(kSeed + 1, 10, 50, 50.0);
  const graph::InterferenceGraph g(sys);
  GrowthScheduler alg2(g);
  workload::ChurnConfig cc;
  cc.arrival_rate = 8.0;
  cc.burst_multiplier = 10.0;  // 10x bursts must not grow backlog unboundedly
  cc.burst_enter = 0.3;
  cc.slots = 60;
  cc.region_side = 50.0;
  const workload::ChurnTrace trace =
      workload::makeChurnTrace(cc, sys.numTags(), kSeed);

  StreamingOptions so;
  so.max_backlog = 12;
  const StreamingResult res = runStreamingMcs(sys, alg2, trace, so);
  EXPECT_LE(res.backlog_peak, 12);
  EXPECT_GT(res.shed, 0) << "a 10x burst against 12 backlog slots must shed";
  EXPECT_TRUE(res.drained);

  // kRejectLargest sheds too, and both policies keep the bound.
  core::System sys2 = test::smallRandomSystem(kSeed + 1, 10, 50, 50.0);
  const graph::InterferenceGraph g2(sys2);  // scheduler keeps a reference
  GrowthScheduler alg2b(g2);
  so.shed_policy = service::ShedPolicy::kRejectLargest;
  const StreamingResult res2 = runStreamingMcs(sys2, alg2b, trace, so);
  EXPECT_LE(res2.backlog_peak, 12);
  EXPECT_GT(res2.shed, 0);
}

TEST(Streaming, DeadlineAgingShedsStaleTags) {
  // A deterministic RRc starvation: readers A and B are independent
  // (distance 11 > max interference radius 10) but their interrogation
  // disks (γ = 9) overlap.  One shared tag sits in the overlap; every slot
  // two fresh exclusive tags arrive per reader, so greedy always activates
  // both readers (w({A,B}) = 4 beats any single reader's 3) and the shared
  // tag is cancelled by RRc forever.  Without aging it starves; with
  // shed_after_slots = 3 the driver must shed it once it is 4 slots old.
  std::vector<core::Reader> readers;
  for (const double x : {0.0, 11.0}) {
    core::Reader r;
    r.pos = {x, 0.0};
    r.interference_radius = 10.0;
    r.interrogation_radius = 9.0;
    readers.push_back(r);
  }
  core::System sys(std::move(readers), {});
  const graph::InterferenceGraph g(sys);
  ASSERT_EQ(g.numEdges(), 0) << "A and B must be independent";
  GrowthScheduler alg2(g);

  workload::ChurnTrace trace;
  const auto arrive = [&trace](int slot, double x, double y) {
    workload::ChurnEvent e;
    e.slot = slot;
    e.kind = workload::ChurnKind::kArrive;
    e.pos = {x, y};
    e.epc = static_cast<std::uint64_t>(trace.events.size());
    trace.events.push_back(e);
  };
  arrive(0, 5.5, 0.0);  // the shared tag, covered by both readers
  for (int s = 0; s < 10; ++s) {
    arrive(s, -5.0, 0.0);  // A-exclusive pair
    arrive(s, -5.0, 1.0);
    arrive(s, 16.0, 0.0);  // B-exclusive pair
    arrive(s, 16.0, 1.0);
  }
  trace.horizon = 10;

  StreamingOptions so;
  so.shed_after_slots = 3;
  const StreamingResult res = runStreamingMcs(sys, alg2, trace, so);
  EXPECT_EQ(res.shed_aged, 1) << "the starved shared tag must age out";
  EXPECT_EQ(res.shed, 0) << "no backlog bound is set";
  EXPECT_EQ(res.tags_read, 40) << "every exclusive tag is served";
  EXPECT_TRUE(res.drained);
  EXPECT_EQ(res.latency_p99, 0.0) << "exclusive tags are served on arrival";
}

TEST(Streaming, InvalidTraceTargetsAreCountedNotFatal) {
  core::System sys = test::smallRandomSystem(kSeed + 3, 10, 30, 40.0);
  const graph::InterferenceGraph g(sys);
  GrowthScheduler alg2(g);
  workload::ChurnTrace trace;
  workload::ChurnEvent dep;
  dep.slot = 0;
  dep.kind = workload::ChurnKind::kDepart;
  dep.tag = 9999;  // out of range
  trace.events.push_back(dep);
  workload::ChurnEvent dup = dep;
  dup.tag = 0;
  trace.events.push_back(dup);  // valid…
  trace.events.push_back(dup);  // …then already departed
  trace.horizon = 1;
  const StreamingResult res = runStreamingMcs(sys, alg2, trace, {});
  EXPECT_EQ(res.departed, 1);
  EXPECT_EQ(res.skipped_events, 2);
  EXPECT_TRUE(res.drained);
}

TEST(Streaming, OracleDivergenceHealsInProductionStopsUnderCheck) {
  workload::ChurnConfig cc;
  cc.arrival_rate = 3.0;
  cc.slots = 20;
  cc.region_side = 40.0;

  // Production posture: divergence is healed, the stream finishes, the
  // incident is on the record.
  {
    core::System sys = test::smallRandomSystem(kSeed + 4, 10, 40, 40.0);
    const graph::InterferenceGraph g(sys);  // scheduler keeps a reference
    GrowthScheduler alg2(g);
    sys.testOnlyCorruptIndex();
    check::IndexOracleOptions oo;
    oo.paranoid = true;
    check::IncrementalIndexOracle oracle(oo);
    StreamingOptions so;
    so.oracle = &oracle;
    const StreamingResult res = runStreamingMcs(
        sys, alg2, workload::makeChurnTrace(cc, sys.numTags(), kSeed), so);
    EXPECT_EQ(res.stop, McsStop::kNone);
    EXPECT_TRUE(res.drained);
    EXPECT_EQ(res.index_divergences, 1);
    EXPECT_EQ(res.index_heals, 1);
  }
  // --check posture: any divergence, healed or not, stops the run.
  {
    core::System sys = test::smallRandomSystem(kSeed + 4, 10, 40, 40.0);
    const graph::InterferenceGraph g(sys);  // scheduler keeps a reference
    GrowthScheduler alg2(g);
    sys.testOnlyCorruptIndex();
    check::IndexOracleOptions oo;
    oo.paranoid = true;
    check::IncrementalIndexOracle oracle(oo);
    StreamingOptions so;
    so.oracle = &oracle;
    so.fail_on_divergence = true;
    const StreamingResult res = runStreamingMcs(
        sys, alg2, workload::makeChurnTrace(cc, sys.numTags(), kSeed), so);
    EXPECT_EQ(res.stop, McsStop::kCheckFailed);
    EXPECT_EQ(res.slots, 0) << "must stop before committing any slot";
  }
}

class StreamCkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid suffix: ctest -j cases are separate processes sharing one cwd.
    dir_ = "stream_ckpt_tmp." + std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }
  std::string dir_;
};

struct StreamRunOut {
  StreamingCheckpointedRun run;
  std::string metrics;
};

StreamRunOut runStreamOnce(const workload::ChurnTrace& trace,
                           const std::string& ckpt_path, bool resume,
                           int slot_cap) {
  core::System sys = test::smallRandomSystem(kSeed + 5, 16, 120, 50.0);
  const graph::InterferenceGraph g(sys);  // scheduler keeps a reference
  GrowthScheduler alg2(g);
  obs::MetricsRegistry reg;
  StreamingOptions so;
  so.metrics = &reg;
  ckpt::RunBudget budget;
  if (slot_cap > 0) {
    budget.setSlotCap(slot_cap);
    so.budget = &budget;
  }
  ckpt::CheckpointSetup setup;
  setup.path = ckpt_path;
  setup.resume = resume;
  setup.seed = kSeed;
  setup.snapshot_every = 2;
  StreamRunOut out;
  out.run = runStreamingCheckpointed(sys, alg2, trace, so, setup);
  std::ostringstream os;
  reg.writeJson(os);
  out.metrics = os.str();
  return out;
}

workload::ChurnTrace ckptTrace() {
  workload::ChurnConfig cc;
  cc.arrival_rate = 4.0;
  cc.depart_rate = 1.0;
  cc.slots = 30;
  cc.region_side = 50.0;
  return workload::makeChurnTrace(cc, 120, kSeed);
}

TEST_F(StreamCkptTest, InterruptThenResumeIsBitIdentical) {
  const workload::ChurnTrace trace = ckptTrace();
  const StreamRunOut base =
      runStreamOnce(trace, path("base"), /*resume=*/false, /*slot_cap=*/0);
  ASSERT_TRUE(base.run.ok) << base.run.error;
  ASSERT_GT(base.run.result.slots, 3) << "scenario too easy to test resume";

  const StreamRunOut cut =
      runStreamOnce(trace, path("cut"), /*resume=*/false, /*slot_cap=*/3);
  ASSERT_TRUE(cut.run.ok) << cut.run.error;
  ASSERT_TRUE(cut.run.result.interrupted);
  EXPECT_EQ(cut.run.result.slots, 3);

  const StreamRunOut res =
      runStreamOnce(trace, path("cut"), /*resume=*/true, /*slot_cap=*/0);
  ASSERT_TRUE(res.run.ok) << res.run.error;
  EXPECT_TRUE(res.run.resumed);
  EXPECT_EQ(res.run.replayed_slots, 3);

  const StreamingResult& a = base.run.result;
  const StreamingResult& b = res.run.result;
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.stream_slots, b.stream_slots);
  EXPECT_EQ(a.idle_slots, b.idle_slots);
  EXPECT_EQ(a.tags_read, b.tags_read);
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.departed, b.departed);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t q = 0; q < a.schedule.size(); ++q) {
    EXPECT_EQ(a.schedule[q].active, b.schedule[q].active) << "slot " << q;
    EXPECT_EQ(a.schedule[q].tags_read, b.schedule[q].tags_read)
        << "slot " << q;
  }
  EXPECT_EQ(base.metrics, res.metrics);
}

TEST_F(StreamCkptTest, JournalIdentityIncludesTheChurnTrace) {
  const workload::ChurnTrace trace = ckptTrace();
  const StreamRunOut base =
      runStreamOnce(trace, path("j"), /*resume=*/false, /*slot_cap=*/3);
  ASSERT_TRUE(base.run.ok) << base.run.error;

  // Same deployment, same seed, different churn: resume must fail closed.
  workload::ChurnConfig other;
  other.arrival_rate = 9.0;
  other.slots = 30;
  other.region_side = 50.0;
  const workload::ChurnTrace different =
      workload::makeChurnTrace(other, 120, kSeed);
  const StreamRunOut bad =
      runStreamOnce(different, path("j"), /*resume=*/true, /*slot_cap=*/0);
  EXPECT_FALSE(bad.run.ok);
  EXPECT_NE(bad.run.error.find("churn"), std::string::npos) << bad.run.error;
}

}  // namespace
}  // namespace rfid::sched
