// Ablation: the growth-bounded algorithms' stop parameter ρ = 1 + ε
// (Theorems 4 and 6: the result is a 1/ρ approximation; Theorems 3 and 5:
// the neighborhood radius r̄ is bounded by a constant c(ρ) — smaller ρ means
// deeper exploration).  Reports one-shot weight, observed max r̄, and the
// distributed algorithm's communication cost per ρ.
#include <iomanip>
#include <iostream>

#include "analysis/stats.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 10;

  std::cout << "# Ablation: growth stop parameter rho (Theorems 3-6)\n"
            << "# 50 readers, 1200 tags, lambda_R=10, lambda_r=4, " << seeds
            << " seeds\n\n";
  std::cout << std::left << std::setw(7) << "rho" << std::setw(11) << "1/rho"
            << std::setw(12) << "w(Alg2)" << std::setw(10) << "rbar2"
            << std::setw(12) << "w(Alg3)" << std::setw(10) << "rbar3"
            << std::setw(14) << "msgs(Alg3)" << '\n';

  const workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  for (const double rho : {1.05, 1.1, 1.25, 1.5, 2.0, 3.0}) {
    analysis::RunningStat w2, r2, w3, r3, msgs;
    for (int s = 0; s < seeds; ++s) {
      const core::System sys = workload::makeSystem(sc, 6000 + static_cast<std::uint64_t>(s));
      const graph::InterferenceGraph g(sys);

      sched::GrowthOptions o2;
      o2.rho = rho;
      sched::GrowthScheduler alg2(g, o2);
      w2.add(alg2.schedule(sys).weight);
      r2.add(alg2.lastStats().max_rbar);

      dist::DistributedGrowthOptions o3;
      o3.rho = rho;
      dist::GrowthDistributedScheduler alg3(g, o3);
      w3.add(alg3.schedule(sys).weight);
      r3.add(alg3.lastStats().max_rbar);
      msgs.add(static_cast<double>(alg3.lastStats().messages));
    }
    std::cout << std::setw(7) << std::fixed << std::setprecision(2) << rho
              << std::setw(11) << std::setprecision(3) << 1.0 / rho
              << std::setw(12) << std::setprecision(1) << w2.mean()
              << std::setw(10) << std::setprecision(2) << r2.mean()
              << std::setw(12) << std::setprecision(1) << w3.mean()
              << std::setw(10) << std::setprecision(2) << r3.mean()
              << std::setw(14) << std::setprecision(0) << msgs.mean() << '\n';
  }
  std::cout << "\n# Expected: weights are flat-to-slightly-decreasing in rho "
               "(the 1/rho bound is loose in practice); rbar shrinks as rho "
               "grows, and message cost with it.\n";
  return 0;
}
