// Extension: dynamic tag arrivals.  The paper notes (§VII) that prior work
// assumes a static tag population; this bench measures how the schedulers
// behave when tags stream in — throughput, service latency, and peak
// backlog vs arrival rate — comparing the centralized location-free
// algorithm against the greedy baseline.
#include <iomanip>
#include <iostream>

#include "analysis/stats.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "workload/dynamic.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 10;

  std::cout << "# Extension: dynamic tag arrivals (rate sweep)\n"
            << "# 50 readers, 100x100, lambda_R=10, lambda_r=4; arrivals for "
               "40 slots, then drain; " << seeds << " seeds\n\n";
  std::cout << std::left << std::setw(7) << "rate" << std::setw(8) << "algo"
            << std::setw(12) << "latency" << std::setw(12) << "backlog"
            << std::setw(12) << "slots" << std::setw(10) << "drained"
            << '\n';

  for (const double rate : {10.0, 20.0, 40.0, 80.0}) {
    workload::DynamicConfig cfg;
    cfg.arrival_rate = rate;
    cfg.arrival_slots = 40;
    cfg.drain_slots = 400;
    cfg.deploy.num_readers = 50;
    cfg.deploy.region_side = 100.0;
    cfg.deploy.lambda_R = 10.0;
    cfg.deploy.lambda_r = 4.0;

    struct Row {
      analysis::RunningStat latency, backlog, slots;
      int drained = 0;
    } alg2_row, ghc_row;

    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 9500 + static_cast<std::uint64_t>(s);
      {
        workload::DynamicInstance inst = workload::makeDynamicInstance(cfg, seed);
        const graph::InterferenceGraph g(inst.system);
        sched::GrowthScheduler alg2(g);
        const auto res = workload::runDynamicSimulation(inst, alg2, cfg);
        alg2_row.latency.add(res.mean_latency);
        alg2_row.backlog.add(res.max_backlog);
        alg2_row.slots.add(res.slots_run);
        alg2_row.drained += res.drained;
      }
      {
        workload::DynamicInstance inst = workload::makeDynamicInstance(cfg, seed);
        sched::HillClimbingScheduler ghc;
        const auto res = workload::runDynamicSimulation(inst, ghc, cfg);
        ghc_row.latency.add(res.mean_latency);
        ghc_row.backlog.add(res.max_backlog);
        ghc_row.slots.add(res.slots_run);
        ghc_row.drained += res.drained;
      }
    }
    auto print = [&](const char* name, const Row& r) {
      std::cout << std::setw(7) << std::fixed << std::setprecision(0) << rate
                << std::setw(8) << name << std::setw(12)
                << std::setprecision(2) << r.latency.mean() << std::setw(12)
                << std::setprecision(1) << r.backlog.mean() << std::setw(12)
                << r.slots.mean() << std::setw(10)
                << (std::to_string(r.drained) + "/" + std::to_string(seeds))
                << '\n';
    };
    print("Alg2", alg2_row);
    print("GHC", ghc_row);
  }
  std::cout << "\n# Expected: latency and backlog grow with the rate; the "
               "weight-aware scheduler keeps both lower than the baseline "
               "as pressure rises.\n";
  return 0;
}
