// Microbenchmarks for the one-shot schedulers: cost per scheduling decision
// as the system scales, and the full MCS loop at paper scale.
//
// The BM_OneShot* benchmarks run with NO metrics registry attached — they
// double as the "obs enabled but unsubscribed" overhead measurement against
// a -DRFIDSCHED_NO_OBS build (EXPERIMENTS.md).  BM_OneShotInstrumented runs
// the same decision with a registry attached and reports the work counters
// (weight evaluations per schedule() call) alongside the timing.
#include <benchmark/benchmark.h>

#include <memory>

#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "obs/metrics.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

namespace {

using namespace rfid;

workload::Scenario scaled(int readers) {
  workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  sc.deploy.num_readers = readers;
  sc.deploy.num_tags = readers * 24;
  // Grow the region with the fleet to hold density roughly constant.
  sc.deploy.region_side = 100.0 * std::sqrt(readers / 50.0);
  return sc;
}

void BM_OneShotPtas(benchmark::State& state) {
  const core::System sys = workload::makeSystem(
      scaled(static_cast<int>(state.range(0))), 11);
  sched::PtasScheduler ptas;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptas.schedule(sys).weight);
  }
}
BENCHMARK(BM_OneShotPtas)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_OneShotGrowth(benchmark::State& state) {
  const core::System sys = workload::makeSystem(
      scaled(static_cast<int>(state.range(0))), 12);
  const graph::InterferenceGraph g(sys);
  sched::GrowthScheduler alg2(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg2.schedule(sys).weight);
  }
}
BENCHMARK(BM_OneShotGrowth)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_OneShotDistributed(benchmark::State& state) {
  const core::System sys = workload::makeSystem(
      scaled(static_cast<int>(state.range(0))), 13);
  const graph::InterferenceGraph g(sys);
  dist::GrowthDistributedScheduler alg3(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg3.schedule(sys).weight);
  }
}
BENCHMARK(BM_OneShotDistributed)->Arg(25)->Arg(50)->Arg(100);

void BM_OneShotGhc(benchmark::State& state) {
  const core::System sys = workload::makeSystem(
      scaled(static_cast<int>(state.range(0))), 14);
  sched::HillClimbingScheduler ghc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ghc.schedule(sys).weight);
  }
}
BENCHMARK(BM_OneShotGhc)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

// One scheduling decision at paper scale with a MetricsRegistry attached:
// arg selects the algorithm.  Reports the scheduler's work counters as
// per-iteration benchmark counters, so algorithms can be compared by how
// many w(X) evaluations a decision costs, not just wall-clock.
void BM_OneShotInstrumented(benchmark::State& state) {
  const core::System sys = workload::makeSystem(scaled(50), 16);
  const graph::InterferenceGraph g(sys);
  std::unique_ptr<sched::OneShotScheduler> scheduler;
  switch (state.range(0)) {
    case 0: scheduler = std::make_unique<sched::PtasScheduler>(); break;
    case 1: scheduler = std::make_unique<sched::GrowthScheduler>(g); break;
    case 2:
      scheduler = std::make_unique<dist::GrowthDistributedScheduler>(g);
      break;
    default: scheduler = std::make_unique<sched::HillClimbingScheduler>(); break;
  }
  state.SetLabel(scheduler->name());
  obs::MetricsRegistry registry;
  scheduler->attachMetrics(&registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler->schedule(sys).weight);
  }
  const double calls = static_cast<double>(
      registry.counter("sched.schedule_calls").value());
  if (calls > 0) {
    state.counters["weight_evals_per_call"] = benchmark::Counter(
        static_cast<double>(registry.counter("sched.weight_evals").value()) /
        calls);
    state.counters["candidates_per_call"] = benchmark::Counter(
        static_cast<double>(registry.counter("sched.candidates").value()) /
        calls);
  }
}
BENCHMARK(BM_OneShotInstrumented)->DenseRange(0, 3);

void BM_FullMcsPaperScale(benchmark::State& state) {
  const workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  for (auto _ : state) {
    core::System sys = workload::makeSystem(sc, 15);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler alg2(g);
    const sched::McsResult res = sched::runCoveringSchedule(sys, alg2);
    benchmark::DoNotOptimize(res.slots);
  }
}
BENCHMARK(BM_FullMcsPaperScale);

}  // namespace

BENCHMARK_MAIN();
