// Microbenchmarks for the one-shot schedulers: cost per scheduling decision
// as the system scales, and the full MCS loop at paper scale.
#include <benchmark/benchmark.h>

#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

namespace {

using namespace rfid;

workload::Scenario scaled(int readers) {
  workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  sc.deploy.num_readers = readers;
  sc.deploy.num_tags = readers * 24;
  // Grow the region with the fleet to hold density roughly constant.
  sc.deploy.region_side = 100.0 * std::sqrt(readers / 50.0);
  return sc;
}

void BM_OneShotPtas(benchmark::State& state) {
  const core::System sys = workload::makeSystem(
      scaled(static_cast<int>(state.range(0))), 11);
  sched::PtasScheduler ptas;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptas.schedule(sys).weight);
  }
}
BENCHMARK(BM_OneShotPtas)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_OneShotGrowth(benchmark::State& state) {
  const core::System sys = workload::makeSystem(
      scaled(static_cast<int>(state.range(0))), 12);
  const graph::InterferenceGraph g(sys);
  sched::GrowthScheduler alg2(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg2.schedule(sys).weight);
  }
}
BENCHMARK(BM_OneShotGrowth)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_OneShotDistributed(benchmark::State& state) {
  const core::System sys = workload::makeSystem(
      scaled(static_cast<int>(state.range(0))), 13);
  const graph::InterferenceGraph g(sys);
  dist::GrowthDistributedScheduler alg3(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg3.schedule(sys).weight);
  }
}
BENCHMARK(BM_OneShotDistributed)->Arg(25)->Arg(50)->Arg(100);

void BM_OneShotGhc(benchmark::State& state) {
  const core::System sys = workload::makeSystem(
      scaled(static_cast<int>(state.range(0))), 14);
  sched::HillClimbingScheduler ghc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ghc.schedule(sys).weight);
  }
}
BENCHMARK(BM_OneShotGhc)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_FullMcsPaperScale(benchmark::State& state) {
  const workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  for (auto _ : state) {
    core::System sys = workload::makeSystem(sc, 15);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler alg2(g);
    const sched::McsResult res = sched::runCoveringSchedule(sys, alg2);
    benchmark::DoNotOptimize(res.slots);
  }
}
BENCHMARK(BM_FullMcsPaperScale);

}  // namespace

BENCHMARK_MAIN();
