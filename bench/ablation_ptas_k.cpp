// Ablation: the PTAS quality/runtime trade-off in the shifting parameter k
// (Theorem 2: at least a (1−1/k)² fraction of the optimum survives the best
// shift).  Reports one-shot weight, the Theorem-2 floor, observed DP size,
// and wall time per k.
#include <chrono>
#include <iomanip>
#include <iostream>

#include "analysis/stats.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 10;

  std::cout << "# Ablation: PTAS shifting parameter k (Theorem 2)\n"
            << "# 50 readers, 1200 tags, lambda_R=10, lambda_r=4, " << seeds
            << " seeds\n\n";
  std::cout << std::left << std::setw(4) << "k" << std::setw(12) << "(1-1/k)^2"
            << std::setw(12) << "w_promote" << std::setw(12) << "w_strict"
            << std::setw(14) << "dp_entries" << std::setw(10) << "ms/call"
            << '\n';

  const workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  for (const int k : {2, 3, 4, 5, 6, 8}) {
    analysis::RunningStat promote, strict, dp, ms;
    for (int s = 0; s < seeds; ++s) {
      const core::System sys = workload::makeSystem(sc, 5000 + static_cast<std::uint64_t>(s));
      sched::PtasOptions opt;
      opt.k = k;
      sched::PtasScheduler ptas(opt);
      const auto t0 = std::chrono::steady_clock::now();
      const sched::OneShotResult res = ptas.schedule(sys);
      const auto t1 = std::chrono::steady_clock::now();
      promote.add(res.weight);
      dp.add(static_cast<double>(ptas.lastStats().dp_entries));
      ms.add(std::chrono::duration<double, std::milli>(t1 - t0).count());

      sched::PtasOptions sopt = opt;
      sopt.strict_survive = true;  // §IV's textbook discard rule
      sched::PtasScheduler textbook(sopt);
      strict.add(textbook.schedule(sys).weight);
    }
    const double floor = (1.0 - 1.0 / k) * (1.0 - 1.0 / k);
    std::cout << std::setw(4) << k << std::setw(12) << std::fixed
              << std::setprecision(3) << floor << std::setw(12)
              << std::setprecision(1) << promote.mean() << std::setw(12)
              << strict.mean() << std::setw(14) << std::setprecision(0)
              << dp.mean() << std::setw(10) << std::setprecision(2)
              << ms.mean() << '\n';
  }
  std::cout << "\n# Expected: the strict (Section IV) variant climbs with k "
               "per Theorem 2's (1-1/k)^2 floor; the default promotion "
               "variant is k-insensitive because nothing is discarded.\n";
  return 0;
}
