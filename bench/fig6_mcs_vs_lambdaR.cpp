// Figure 6 reproduction: size of the covering schedule as a function of the
// interference-radius mean λ_R, with the interrogation mean λ_r fixed.
//
// Paper: "Algorithm 1 has the best performance in terms of least scheduling
// size … Algorithm 2 also performs much better than the rest … Algorithm 3
// … still beats CA and GHC in all range of values."
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rfid::bench;
  FigureConfig cfg;
  cfg.figure = "Figure 6";
  cfg.sweep_name = "lambda_R";
  cfg.sweep = {6, 8, 10, 12, 14, 16};
  cfg.fixed = 4.0;  // λ_r
  cfg.sweep_is_lambda_R = true;
  cfg.metric = Metric::kMcsSlots;
  cfg.seeds = seedsFromArgv(argc, argv, 20);

  FigureMetrics metrics;
  const auto set = runFigure(cfg, &metrics);
  emitFigure(cfg, set, "fig6_mcs_vs_lambdaR",
             "Alg1 < Alg2 < Alg3 < {CA, GHC}; schedules grow with lambda_R "
             "(more interference, fewer concurrent readers)",
             &metrics);
  return 0;
}
