// Extension experiment: physical air-time of the covering schedules.
//
// The paper counts macro time-slots and sizes the slot so every active
// reader serves ≥1 tag (§III).  This bench descends to the link layer
// (§II's TTc substrate): each slot costs the micro-slots of its slowest
// reader's tag arbitration — framed ALOHA or deterministic tree-walking —
// turning "slots" into comparable on-air time.  A schedule with fewer
// macro-slots but heavily loaded readers can lose in air-time; this bench
// shows whether the paper's ranking survives the conversion.
#include <iomanip>
#include <iostream>

#include "analysis/stats.h"
#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "protocol/slot_timing.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 10;

  std::cout << "# Extension: link-layer air-time of covering schedules\n"
            << "# 50 readers, 1200 tags, lambda_R=10, lambda_r=4, " << seeds
            << " seeds\n\n";
  std::cout << std::left << std::setw(7) << "algo" << std::setw(12)
            << "macroslots" << std::setw(16) << "aloha_micro"
            << std::setw(16) << "tree_micro" << std::setw(12) << "tags"
            << '\n';

  const workload::Scenario sc = workload::paperScenario(10.0, 4.0);

  struct Row {
    analysis::RunningStat slots, aloha, tree, tags;
  };
  const std::vector<std::string> names = {"Alg1", "Alg2", "Alg3", "CA", "GHC"};
  std::vector<Row> rows(names.size());

  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 8000 + static_cast<std::uint64_t>(s);
    core::System sys = workload::makeSystem(sc, seed);
    const graph::InterferenceGraph g(sys);

    sched::PtasScheduler alg1;
    sched::GrowthScheduler alg2(g);
    dist::GrowthDistributedScheduler alg3(g);
    dist::ColorwaveScheduler ca(sys, seed);
    sched::HillClimbingScheduler ghc;
    const std::vector<sched::OneShotScheduler*> scheds = {&alg1, &alg2, &alg3,
                                                          &ca, &ghc};
    for (std::size_t i = 0; i < scheds.size(); ++i) {
      sys.resetReads();
      const sched::McsResult mcs = sched::runCoveringSchedule(sys, *scheds[i]);
      const auto aloha = protocol::timeSchedule(
          sys, mcs, protocol::Arbitration::kAloha, workload::Rng(seed));
      const auto tree = protocol::timeSchedule(
          sys, mcs, protocol::Arbitration::kTreeWalk, workload::Rng(seed));
      rows[i].slots.add(mcs.slots);
      rows[i].aloha.add(static_cast<double>(aloha.micro_slots));
      rows[i].tree.add(static_cast<double>(tree.micro_slots));
      rows[i].tags.add(mcs.tags_read);
    }
  }

  for (std::size_t i = 0; i < names.size(); ++i) {
    std::cout << std::setw(7) << names[i] << std::setw(12) << std::fixed
              << std::setprecision(1) << rows[i].slots.mean() << std::setw(16)
              << std::setprecision(0) << rows[i].aloha.mean() << std::setw(16)
              << rows[i].tree.mean() << std::setw(12) << std::setprecision(1)
              << rows[i].tags.mean() << '\n';
  }
  std::cout << "\n# Expected: the macro-slot ranking (Alg1 best) persists in "
               "air-time; tree-walking is deterministic and usually cheaper "
               "than ALOHA at these densities.\n";
  return 0;
}
