// Ablation: multi-channel operation (paper §VII's dense-mode / k-coloring
// discussion).  With C channels, interfering readers can transmit
// concurrently on different frequencies (RTc is per-channel), but RRc at
// tags persists.  Sweeps C and reports one-shot weight and covering
// schedule size: weight should climb and saturate once RRc binds; the
// schedule should shrink accordingly.
#include <iomanip>
#include <iostream>

#include "analysis/stats.h"
#include "sched/channels.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 10;

  std::cout << "# Ablation: number of channels (Section VII discussion)\n"
            << "# 50 readers, 1200 tags, lambda_R=10, lambda_r=4, " << seeds
            << " seeds; greedy channel-aware scheduler\n\n";
  std::cout << std::left << std::setw(10) << "channels" << std::setw(14)
            << "oneshot_w" << std::setw(12) << "mcs_slots" << '\n';

  const workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  for (const int channels : {1, 2, 3, 4, 8}) {
    analysis::RunningStat weight, slots;
    for (int s = 0; s < seeds; ++s) {
      core::System sys = workload::makeSystem(sc, 9000 + static_cast<std::uint64_t>(s));
      sched::MultiChannelScheduler mc(sched::ChannelOptions{channels});
      weight.add(mc.schedule(sys).weight);
      sys.resetReads();
      sched::MultiChannelScheduler mc2(sched::ChannelOptions{channels});
      slots.add(sched::runChanneledCoveringSchedule(sys, mc2).slots);
    }
    std::cout << std::setw(10) << channels << std::setw(14) << std::fixed
              << std::setprecision(1) << weight.mean() << std::setw(12)
              << std::setprecision(2) << slots.mean() << '\n';
  }
  std::cout << "\n# Expected: weight rises with C then saturates (RRc "
               "becomes the binding constraint); slots shrink in kind.\n";
  return 0;
}
