// Microbenchmarks for the core substrates: spatial index, system
// construction, weight evaluation, interference/sensing graph builds.
// These are the inner loops every scheduler leans on.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/weight.h"
#include "graph/interference_graph.h"
#include "workload/scenario.h"

namespace {

using namespace rfid;

workload::Scenario scaled(int readers, int tags) {
  workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  sc.deploy.num_readers = readers;
  sc.deploy.num_tags = tags;
  return sc;
}

void BM_SystemConstruction(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)) * 24);
  for (auto _ : state) {
    core::System sys = workload::makeSystem(sc, 1);
    benchmark::DoNotOptimize(sys.numTags());
  }
}
BENCHMARK(BM_SystemConstruction)->Arg(50)->Arg(200)->Arg(800);

void BM_SpatialGridQuery(benchmark::State& state) {
  const auto sc = scaled(50, static_cast<int>(state.range(0)));
  const core::System sys = workload::makeSystem(sc, 2);
  std::vector<geom::Vec2> pts;
  for (const core::Tag& t : sys.tags()) pts.push_back(t.pos);
  const geom::SpatialGrid grid(pts, 4.0);
  std::vector<int> out;
  int i = 0;
  for (auto _ : state) {
    out.clear();
    grid.queryDisk(sys.reader(i % sys.numReaders()).pos, 4.0, out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_SpatialGridQuery)->Arg(1200)->Arg(12000)->Arg(120000);

void BM_WeightEvaluation(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)) * 24);
  const core::System sys = workload::makeSystem(sc, 3);
  // A plausible mid-size feasible set: greedy independent fill.
  std::vector<int> x;
  for (int v = 0; v < sys.numReaders(); ++v) {
    bool ok = true;
    for (const int u : x) ok = ok && sys.independent(u, v);
    if (ok) x.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.weight(x));
  }
}
BENCHMARK(BM_WeightEvaluation)->Arg(50)->Arg(200)->Arg(800);

void BM_WeightEvaluatorPushPop(benchmark::State& state) {
  const auto sc = scaled(50, 1200);
  const core::System sys = workload::makeSystem(sc, 4);
  core::WeightEvaluator eval(sys);
  int v = 0;
  for (auto _ : state) {
    eval.push(v % sys.numReaders());
    benchmark::DoNotOptimize(eval.weight());
    eval.pop();
    ++v;
  }
}
BENCHMARK(BM_WeightEvaluatorPushPop);

void BM_InterferenceGraphBuild(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)));
  const core::System sys = workload::makeSystem(sc, 5);
  for (auto _ : state) {
    graph::InterferenceGraph g(sys);
    benchmark::DoNotOptimize(g.numEdges());
  }
}
BENCHMARK(BM_InterferenceGraphBuild)->Arg(50)->Arg(200)->Arg(800);

void BM_SensingGraphBuild(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)));
  const core::System sys = workload::makeSystem(sc, 6);
  for (auto _ : state) {
    auto g = graph::buildSensingGraph(sys);
    benchmark::DoNotOptimize(g.numEdges());
  }
}
BENCHMARK(BM_SensingGraphBuild)->Arg(50)->Arg(200)->Arg(800);

}  // namespace

BENCHMARK_MAIN();
