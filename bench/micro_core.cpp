// Microbenchmarks for the core substrates: spatial index, system
// construction, weight evaluation, interference/sensing graph builds.
// These are the inner loops every scheduler leans on.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/weight.h"
#include "graph/interference_graph.h"
#include "workload/scenario.h"

namespace {

using namespace rfid;

workload::Scenario scaled(int readers, int tags) {
  workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  sc.deploy.num_readers = readers;
  sc.deploy.num_tags = tags;
  return sc;
}

void BM_SystemConstruction(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)) * 24);
  for (auto _ : state) {
    core::System sys = workload::makeSystem(sc, 1);
    benchmark::DoNotOptimize(sys.numTags());
  }
}
BENCHMARK(BM_SystemConstruction)->Arg(50)->Arg(200)->Arg(800);

// Construction throughput on a fixed deployment: counting-sort CSR build +
// Morton SFC reorder + blocked-bitmap build, the per-candidate cost of any
// outer loop that evaluates many Systems (deployment optimization).
// BM_SystemConstruction above includes deployment *generation*; this one
// isolates the index builds.
void BM_SystemBuild(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)) * 24);
  const core::System proto = workload::makeSystem(sc, 8);
  const std::vector<core::Reader> readers(proto.readers().begin(),
                                          proto.readers().end());
  const std::vector<core::Tag> tags(proto.tags().begin(), proto.tags().end());
  for (auto _ : state) {
    core::System sys(readers, tags);
    benchmark::DoNotOptimize(sys.numTagBits());
  }
  state.SetItemsProcessed(state.iterations() *
                          (proto.numReaders() + proto.numTags()));
}
BENCHMARK(BM_SystemBuild)->Arg(200)->Arg(800)->Arg(4000);

void BM_SpatialGridQuery(benchmark::State& state) {
  const auto sc = scaled(50, static_cast<int>(state.range(0)));
  const core::System sys = workload::makeSystem(sc, 2);
  std::vector<geom::Vec2> pts;
  for (const core::Tag& t : sys.tags()) pts.push_back(t.pos);
  const geom::SpatialGrid grid(pts, 4.0);
  std::vector<int> out;
  int i = 0;
  for (auto _ : state) {
    out.clear();
    grid.queryDisk(sys.reader(i % sys.numReaders()).pos, 4.0, out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_SpatialGridQuery)->Arg(1200)->Arg(12000)->Arg(120000);

void BM_WeightEvaluation(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)) * 24);
  const core::System sys = workload::makeSystem(sc, 3);
  // A plausible mid-size feasible set: greedy independent fill.
  std::vector<int> x;
  for (int v = 0; v < sys.numReaders(); ++v) {
    bool ok = true;
    for (const int u : x) ok = ok && sys.independent(u, v);
    if (ok) x.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.weight(x));
  }
}
BENCHMARK(BM_WeightEvaluation)->Arg(50)->Arg(200)->Arg(800);

void BM_WeightEvaluatorPushPop(benchmark::State& state) {
  const auto sc = scaled(50, 1200);
  const core::System sys = workload::makeSystem(sc, 4);
  core::WeightEvaluator eval(sys);
  int v = 0;
  for (auto _ : state) {
    eval.push(v % sys.numReaders());
    benchmark::DoNotOptimize(eval.weight());
    eval.pop();
    ++v;
  }
}
BENCHMARK(BM_WeightEvaluatorPushPop);

// The selection round both greedy schedulers run to exhaustion: take the
// argmax marginal delta, commit, repeat while positive.  Reference rescans
// every reader per pick; the lazy queue pays one inverted-index walk per
// commit (docs/performance.md).  Both variants make identical picks.
void BM_GreedySelectionReference(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)) * 24);
  const core::System sys = workload::makeSystem(sc, 7);
  const int n = sys.numReaders();
  for (auto _ : state) {
    core::WeightEvaluator eval(sys);
    std::vector<char> open(static_cast<std::size_t>(n), 1);
    while (true) {
      int best = -1;
      int bw = 0;
      for (int v = 0; v < n; ++v) {
        if (open[static_cast<std::size_t>(v)] == 0) continue;
        const int d = eval.peekDelta(v);
        if (d > bw) {
          bw = d;
          best = v;
        }
      }
      if (best < 0) break;
      eval.push(best);
      open[static_cast<std::size_t>(best)] = 0;
    }
    benchmark::DoNotOptimize(eval.weight());
  }
}
BENCHMARK(BM_GreedySelectionReference)->Arg(200)->Arg(800)->Arg(2000);

void BM_GreedySelectionLazy(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)) * 24);
  const core::System sys = workload::makeSystem(sc, 7);
  const int n = sys.numReaders();
  std::vector<int> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  core::StandaloneWeightCache cache;
  core::LazyGreedyQueue queue;
  for (auto _ : state) {
    core::WeightEvaluator eval(sys);
    std::vector<char> open(static_cast<std::size_t>(n), 1);
    cache.sync(sys);
    queue.beginRound(eval, all, cache.weights());
    while (true) {
      const int best = queue.pickBest(open);
      if (best < 0) break;
      eval.push(best);
      queue.invalidate(best);
      open[static_cast<std::size_t>(best)] = 0;
    }
    benchmark::DoNotOptimize(eval.weight());
  }
}
BENCHMARK(BM_GreedySelectionLazy)->Arg(200)->Arg(800)->Arg(2000);

void BM_InterferenceGraphBuild(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)));
  const core::System sys = workload::makeSystem(sc, 5);
  for (auto _ : state) {
    graph::InterferenceGraph g(sys);
    benchmark::DoNotOptimize(g.numEdges());
  }
}
BENCHMARK(BM_InterferenceGraphBuild)->Arg(50)->Arg(200)->Arg(800);

void BM_SensingGraphBuild(benchmark::State& state) {
  const auto sc = scaled(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)));
  const core::System sys = workload::makeSystem(sc, 6);
  for (auto _ : state) {
    auto g = graph::buildSensingGraph(sys);
    benchmark::DoNotOptimize(g.numEdges());
  }
}
BENCHMARK(BM_SensingGraphBuild)->Arg(50)->Arg(200)->Arg(800);

}  // namespace

BENCHMARK_MAIN();
