// Figure 7 reproduction: size of the covering schedule as a function of the
// interrogation-radius mean λ_r, with the interference mean λ_R fixed.
//
// Paper: "the performance of each algorithm improves as [the interrogation
// mean] increases, because larger interrogation region provides a larger
// coverage area.  And the gap between our algorithms and the others becomes
// even bigger when the interrogation range increases."
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rfid::bench;
  FigureConfig cfg;
  cfg.figure = "Figure 7";
  cfg.sweep_name = "lambda_r";
  cfg.sweep = {2, 3, 4, 5, 6, 7};
  cfg.fixed = 10.0;  // λ_R
  cfg.sweep_is_lambda_R = false;
  cfg.metric = Metric::kMcsSlots;
  cfg.seeds = seedsFromArgv(argc, argv, 20);

  FigureMetrics metrics;
  const auto set = runFigure(cfg, &metrics);
  emitFigure(cfg, set, "fig7_mcs_vs_lambdar",
             "Alg1 < Alg2 < Alg3 < {CA, GHC}; all improve as lambda_r grows "
             "and the gap to the baselines widens",
             &metrics);
  return 0;
}
