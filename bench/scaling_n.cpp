// Scalability study: the paper motivates its distributed design with
// "large scale RFID systems" — this bench measures how every scheduler's
// wall time and quality scale with fleet size n at constant density
// (region grows with √n), plus the distributed algorithm's communication
// bill, which is the real cost of having no central entity.
#include <chrono>
#include <cmath>
#include <iomanip>
#include <iostream>

#include "analysis/stats.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

namespace {

/// Full covering-schedule runs at production scale (n >= 1000).  This is the
/// hot path the perf trajectory (BENCH_*.json, tools/bench_record.sh) tracks:
/// wall time covers runCoveringSchedule only — deployment generation and
/// graph construction are excluded, so before/after numbers isolate the
/// scheduling kernels.  Only default-constructed schedulers are used, so the
/// section compiles (and means the same thing) against any library version.
void mcsSection(int seeds) {
  using namespace rfid;
  std::cout << "\n# MCS covering schedule at scale (constant density, "
            << seeds << " seed(s); ms per full run)\n";
  std::cout << std::left << std::setw(7) << "n" << std::setw(7) << "algo"
            << std::setw(8) << "slots" << std::setw(9) << "tags"
            << std::setw(12) << "ms" << '\n';
  for (const int n : {1000, 2000, 4000}) {
    workload::Scenario sc = workload::paperScenario(10.0, 4.0);
    sc.deploy.num_readers = n;
    sc.deploy.num_tags = n * 24;
    sc.deploy.region_side = 100.0 * std::sqrt(n / 50.0);

    for (const char* algo : {"alg2", "ghc"}) {
      analysis::RunningStat slots, tags, ms;
      for (int s = 0; s < seeds; ++s) {
        core::System sys =
            workload::makeSystem(sc, 77000 + static_cast<std::uint64_t>(s));
        const graph::InterferenceGraph g(sys);
        sched::GrowthScheduler alg2(g);
        sched::HillClimbingScheduler ghc;
        sched::OneShotScheduler& sch =
            algo[0] == 'a' ? static_cast<sched::OneShotScheduler&>(alg2)
                           : static_cast<sched::OneShotScheduler&>(ghc);
        const auto t0 = std::chrono::steady_clock::now();
        const sched::McsResult res = sched::runCoveringSchedule(sys, sch);
        const auto t = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        slots.add(res.slots);
        tags.add(res.tags_read);
        ms.add(t);
      }
      std::cout << std::setw(7) << n << std::setw(7) << algo << std::fixed
                << std::setprecision(1) << std::setw(8) << slots.mean()
                << std::setw(9) << std::setprecision(0) << tags.mean()
                << std::setw(12) << std::setprecision(2) << ms.mean() << '\n';
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 5;

  std::cout << "# Scaling study: one-shot scheduling vs fleet size n\n"
            << "# density held constant (region side = 100*sqrt(n/50)); "
            << seeds << " seeds; times in ms per decision\n\n";
  std::cout << std::left << std::setw(6) << "n" << std::setw(11) << "w(Alg1)"
            << std::setw(10) << "ms" << std::setw(11) << "w(Alg2)"
            << std::setw(10) << "ms" << std::setw(11) << "w(Alg3)"
            << std::setw(10) << "ms" << std::setw(12) << "msgs(Alg3)"
            << std::setw(11) << "w(GHC)" << '\n';

  for (const int n : {25, 50, 100, 200, 400}) {
    workload::Scenario sc = workload::paperScenario(10.0, 4.0);
    sc.deploy.num_readers = n;
    sc.deploy.num_tags = n * 24;
    sc.deploy.region_side = 100.0 * std::sqrt(n / 50.0);

    analysis::RunningStat w1, t1, w2, t2, w3, t3, msgs, wg;
    for (int s = 0; s < seeds; ++s) {
      const core::System sys =
          workload::makeSystem(sc, 11000 + static_cast<std::uint64_t>(s));
      const graph::InterferenceGraph g(sys);

      auto timed = [](auto&& fn) {
        const auto t0 = std::chrono::steady_clock::now();
        const int w = fn();
        const auto t = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        return std::pair<int, double>(w, t);
      };

      sched::PtasScheduler alg1;
      const auto [rw1, rt1] = timed([&] { return alg1.schedule(sys).weight; });
      w1.add(rw1);
      t1.add(rt1);

      sched::GrowthScheduler alg2(g);
      const auto [rw2, rt2] = timed([&] { return alg2.schedule(sys).weight; });
      w2.add(rw2);
      t2.add(rt2);

      dist::GrowthDistributedScheduler alg3(g);
      const auto [rw3, rt3] = timed([&] { return alg3.schedule(sys).weight; });
      w3.add(rw3);
      t3.add(rt3);
      msgs.add(static_cast<double>(alg3.lastStats().messages));

      sched::HillClimbingScheduler ghc;
      wg.add(ghc.schedule(sys).weight);
    }
    std::cout << std::setw(6) << n << std::fixed << std::setprecision(1)
              << std::setw(11) << w1.mean() << std::setw(10) << t1.mean()
              << std::setw(11) << w2.mean() << std::setw(10) << t2.mean()
              << std::setw(11) << w3.mean() << std::setw(10) << t3.mean()
              << std::setw(12) << std::setprecision(0) << msgs.mean()
              << std::setw(11) << std::setprecision(1) << wg.mean() << '\n';
  }
  std::cout << "\n# Expected: weights scale ~linearly with n at constant "
               "density; Alg2/Alg3 times stay near-linear (local "
               "neighborhoods), message cost grows with n and degree.\n";

  mcsSection(std::min(seeds, 2));
  return 0;
}
