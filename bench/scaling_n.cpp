// Scalability study: the paper motivates its distributed design with
// "large scale RFID systems" — this bench measures how every scheduler's
// wall time and quality scale with fleet size n at constant density
// (region grows with √n), plus the distributed algorithm's communication
// bill, which is the real cost of having no central entity.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>

#include "analysis/stats.h"
#include "obs/metrics.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

namespace {

/// Full covering-schedule runs at production scale (n >= 1000).  This is the
/// hot path the perf trajectory (BENCH_*.json, tools/bench_record.sh) tracks:
/// wall time covers runCoveringSchedule only — deployment generation and
/// graph construction are excluded, so before/after numbers isolate the
/// scheduling kernels.  Only default-constructed schedulers are used, so the
/// section compiles (and means the same thing) against any library version.
void mcsSection(int seeds) {
  using namespace rfid;
  std::cout << "\n# MCS covering schedule at scale (constant density, "
            << seeds << " seed(s); ms per full run)\n";
  std::cout << std::left << std::setw(7) << "n" << std::setw(7) << "algo"
            << std::setw(8) << "slots" << std::setw(9) << "tags"
            << std::setw(12) << "ms" << '\n';
  for (const int n : {1000, 2000, 4000}) {
    workload::Scenario sc = workload::paperScenario(10.0, 4.0);
    sc.deploy.num_readers = n;
    sc.deploy.num_tags = n * 24;
    sc.deploy.region_side = 100.0 * std::sqrt(n / 50.0);

    for (const char* algo : {"alg2", "ghc"}) {
      analysis::RunningStat slots, tags, ms;
      for (int s = 0; s < seeds; ++s) {
        core::System sys =
            workload::makeSystem(sc, 77000 + static_cast<std::uint64_t>(s));
        const graph::InterferenceGraph g(sys);
        sched::GrowthScheduler alg2(g);
        sched::HillClimbingScheduler ghc;
        sched::OneShotScheduler& sch =
            algo[0] == 'a' ? static_cast<sched::OneShotScheduler&>(alg2)
                           : static_cast<sched::OneShotScheduler&>(ghc);
        const auto t0 = std::chrono::steady_clock::now();
        const sched::McsResult res = sched::runCoveringSchedule(sys, sch);
        const auto t = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        slots.add(res.slots);
        tags.add(res.tags_read);
        ms.add(t);
      }
      std::cout << std::setw(7) << n << std::setw(7) << algo << std::fixed
                << std::setprecision(1) << std::setw(8) << slots.mean()
                << std::setw(9) << std::setprecision(0) << tags.mean()
                << std::setw(12) << std::setprecision(2) << ms.mean() << '\n';
    }
  }
}

/// Peak resident set in MiB from /proc/self/status (VmHWM); 0 when the
/// platform has no procfs.
double peakRssMib() {
  std::ifstream st("/proc/self/status");
  std::string line;
  while (std::getline(st, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

/// Large-scale sweep (--large): full alg2 MCS up to n=100k readers / m=1M
/// tags, one run per point (seeds would double an already minutes-long
/// section).  Emits one machine-parseable line per point — wall, peak RSS,
/// and the referee/selection work counters — which tools/bench_record.sh
/// scrapes into BENCH json for tools/bench_compare.py to gate.
void largeSection() {
  using namespace rfid;
  std::cout << "\n# Large-scale MCS (alg2; one seed per point; "
               "wall includes scheduling only)\n";
  struct Point {
    int n;
    int tags_per_reader;
  };
  for (const Point pt : {Point{20000, 10}, Point{50000, 10}, Point{100000, 10}}) {
    workload::Scenario sc = workload::paperScenario(10.0, 4.0);
    sc.deploy.num_readers = pt.n;
    sc.deploy.num_tags = static_cast<long long>(pt.n) * pt.tags_per_reader >
                                 std::numeric_limits<int>::max()
                             ? std::numeric_limits<int>::max()
                             : pt.n * pt.tags_per_reader;
    sc.deploy.region_side = 100.0 * std::sqrt(pt.n / 50.0);

    const auto tb0 = std::chrono::steady_clock::now();
    core::System sys = workload::makeSystem(sc, 99000);
    const graph::InterferenceGraph g(sys);
    const double build_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - tb0)
                                .count();

    obs::MetricsRegistry reg;
    sys.attachMetrics(&reg);
    sched::GrowthScheduler alg2(g);
    alg2.attachMetrics(&reg);
    const auto t0 = std::chrono::steady_clock::now();
    const sched::McsResult res = sched::runCoveringSchedule(sys, alg2);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    std::cout << "large n=" << pt.n << " m=" << sc.deploy.num_tags
              << " algo=alg2 slots=" << res.slots << " tags=" << res.tags_read
              << " completed=" << (res.completed ? 1 : 0) << std::fixed
              << std::setprecision(1) << " build_ms=" << build_ms
              << " wall_ms=" << wall_ms << " rss_mib=" << peakRssMib()
              << " weight_evals=" << reg.counter("core.weight_evals").value()
              << " work_units=" << reg.counter("sched.weight_evals").value()
              << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rfid;
  if (argc > 1 && std::strcmp(argv[1], "--large") == 0) {
    largeSection();
    return 0;
  }
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 5;

  std::cout << "# Scaling study: one-shot scheduling vs fleet size n\n"
            << "# density held constant (region side = 100*sqrt(n/50)); "
            << seeds << " seeds; times in ms per decision\n\n";
  std::cout << std::left << std::setw(6) << "n" << std::setw(11) << "w(Alg1)"
            << std::setw(10) << "ms" << std::setw(11) << "w(Alg2)"
            << std::setw(10) << "ms" << std::setw(11) << "w(Alg3)"
            << std::setw(10) << "ms" << std::setw(12) << "msgs(Alg3)"
            << std::setw(11) << "w(GHC)" << '\n';

  for (const int n : {25, 50, 100, 200, 400}) {
    workload::Scenario sc = workload::paperScenario(10.0, 4.0);
    sc.deploy.num_readers = n;
    sc.deploy.num_tags = n * 24;
    sc.deploy.region_side = 100.0 * std::sqrt(n / 50.0);

    analysis::RunningStat w1, t1, w2, t2, w3, t3, msgs, wg;
    for (int s = 0; s < seeds; ++s) {
      const core::System sys =
          workload::makeSystem(sc, 11000 + static_cast<std::uint64_t>(s));
      const graph::InterferenceGraph g(sys);

      auto timed = [](auto&& fn) {
        const auto t0 = std::chrono::steady_clock::now();
        const int w = fn();
        const auto t = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        return std::pair<int, double>(w, t);
      };

      sched::PtasScheduler alg1;
      const auto [rw1, rt1] = timed([&] { return alg1.schedule(sys).weight; });
      w1.add(rw1);
      t1.add(rt1);

      sched::GrowthScheduler alg2(g);
      const auto [rw2, rt2] = timed([&] { return alg2.schedule(sys).weight; });
      w2.add(rw2);
      t2.add(rt2);

      dist::GrowthDistributedScheduler alg3(g);
      const auto [rw3, rt3] = timed([&] { return alg3.schedule(sys).weight; });
      w3.add(rw3);
      t3.add(rt3);
      msgs.add(static_cast<double>(alg3.lastStats().messages));

      sched::HillClimbingScheduler ghc;
      wg.add(ghc.schedule(sys).weight);
    }
    std::cout << std::setw(6) << n << std::fixed << std::setprecision(1)
              << std::setw(11) << w1.mean() << std::setw(10) << t1.mean()
              << std::setw(11) << w2.mean() << std::setw(10) << t2.mean()
              << std::setw(11) << w3.mean() << std::setw(10) << t3.mean()
              << std::setw(12) << std::setprecision(0) << msgs.mean()
              << std::setw(11) << std::setprecision(1) << wg.mean() << '\n';
  }
  std::cout << "\n# Expected: weights scale ~linearly with n at constant "
               "density; Alg2/Alg3 times stay near-linear (local "
               "neighborhoods), message cost grows with n and degree.\n";

  mcsSection(std::min(seeds, 2));
  return 0;
}
