// Figure 8 reproduction: total number of well-covered tags in one time-slot
// as a function of the interrogation-radius mean λ_r (λ_R fixed).
//
// Paper: "all of our algorithms perform significantly better than the other
// algorithms … because all our approaches are able to find a feasible
// scheduling set with near maximum weight."
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rfid::bench;
  FigureConfig cfg;
  cfg.figure = "Figure 8";
  cfg.sweep_name = "lambda_r";
  cfg.sweep = {2, 3, 4, 5, 6, 7};
  cfg.fixed = 10.0;  // λ_R
  cfg.sweep_is_lambda_R = false;
  cfg.metric = Metric::kOneShotWeight;
  cfg.seeds = seedsFromArgv(argc, argv, 20);

  FigureMetrics metrics;
  const auto set = runFigure(cfg, &metrics);
  emitFigure(cfg, set, "fig8_oneshot_vs_lambdar",
             "Alg1 >= Alg2 >= Alg3 > {CA, GHC}; weights grow with lambda_r "
             "(larger coverage per reader)",
             &metrics);
  return 0;
}
