// Extended baseline comparison: adds the HiQ Q-learning allocator ([14])
// and the multi-channel greedy to the paper's CA/GHC baselines, on both
// metrics, at the paper's scale.  One table, six algorithms.
#include <iomanip>
#include <iostream>

#include "analysis/stats.h"
#include "distributed/colorwave.h"
#include "graph/interference_graph.h"
#include "sched/channels.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/pruning.h"
#include "sched/ptas.h"
#include "sched/qlearning.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 10;

  std::cout << "# Extended baselines at paper scale (50 readers, 1200 tags, "
               "lambda_R=10, lambda_r=4), " << seeds << " seeds\n\n";
  std::cout << std::left << std::setw(8) << "algo" << std::setw(14)
            << "oneshot_w" << std::setw(12) << "mcs_slots" << '\n';

  const workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  struct Row {
    analysis::RunningStat w, slots;
  };
  const std::vector<std::string> names = {"Alg1", "Alg2",     "GHC", "CA",
                                          "HiQ",  "CA+prune", "MC2"};
  std::vector<Row> rows(names.size());

  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 12000 + static_cast<std::uint64_t>(s);
    core::System sys = workload::makeSystem(sc, seed);
    const graph::InterferenceGraph g(sys);

    sched::PtasScheduler alg1;
    sched::GrowthScheduler alg2(g);
    sched::HillClimbingScheduler ghc;
    dist::ColorwaveScheduler ca(sys, seed);
    sched::QLearningScheduler hiq(seed);
    sched::MultiChannelScheduler mc2(sched::ChannelOptions{2});

    // Pruning overlay: Colorwave's class, re-selected by marginal weight —
    // isolates how much of CA's gap is weight-blindness vs TDMA structure.
    sched::PruningWrapper ca_pruned(
        std::make_unique<dist::ColorwaveScheduler>(sys, seed));

    const std::vector<sched::OneShotScheduler*> single = {
        &alg1, &alg2, &ghc, &ca, &hiq, &ca_pruned};
    for (std::size_t i = 0; i < single.size(); ++i) {
      sys.resetReads();
      rows[i].w.add(single[i]->schedule(sys).weight);
      sys.resetReads();
      rows[i].slots.add(sched::runCoveringSchedule(sys, *single[i]).slots);
    }
    // MC2 lives in the channeled model: score and drive it with the
    // channel-aware referee (cross-channel interference is legal there).
    sys.resetReads();
    rows[6].w.add(mc2.scheduleChanneled(sys).weight);
    sys.resetReads();
    sched::MultiChannelScheduler mc2_mcs(sched::ChannelOptions{2});
    rows[6].slots.add(sched::runChanneledCoveringSchedule(sys, mc2_mcs).slots);
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::cout << std::setw(8) << names[i] << std::fixed << std::setw(14)
              << std::setprecision(1) << rows[i].w.mean() << std::setw(12)
              << std::setprecision(2) << rows[i].slots.mean() << '\n';
  }
  std::cout << "\n# Expected ranking: Alg1/Alg2 lead; MC2 tops raw one-shot "
               "weight (extra spectrum is a resource the single-channel "
               "algorithms don't have); HiQ lands near CA.  CA+prune "
               "typically equals CA: a converged color class rarely holds "
               "negative-marginal members, so the baseline's gap is "
               "structural (weight-blind class FORMATION), not post-hoc "
               "fixable.\n";
  return 0;
}
