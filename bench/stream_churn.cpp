// Extension: streaming MCS under churn (docs/streaming.md).  The paper's
// MCS schedules a fixed population; this bench measures the streaming
// driver against live churn — sustained throughput (tags/sec), service
// latency p50/p99, and the cost of the two robustness layers:
//
//   * overload control — a 10x bursty arrival process with and without a
//     backlog bound, showing bounded backlog is bought with shed tags, not
//     latency collapse;
//   * self-healing validation — the incremental-index oracle at increasing
//     cadences up to paranoid (every slot), showing what the O(n·m)
//     geometry rebuild costs relative to an unchecked stream.
#include <chrono>
#include <iomanip>
#include <iostream>

#include "analysis/stats.h"
#include "check/index_oracle.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/streaming.h"
#include "workload/churn.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 5;

  workload::Scenario sc;
  sc.deploy.num_readers = 40;
  sc.deploy.num_tags = 400;
  sc.deploy.region_side = 90.0;
  sc.deploy.lambda_R = 10.0;
  sc.deploy.lambda_r = 5.0;

  std::cout << "# Extension: streaming MCS under churn\n"
            << "# 40 readers, 400 initial tags, 90x90; 60 churn slots; "
            << seeds << " seeds\n\n";

  const auto stream = [&](std::uint64_t seed, double burst, int max_backlog,
                          int shed_after, int oracle_every, bool paranoid,
                          sched::StreamingResult& res, double& wall_ms) {
    core::System sys = workload::makeSystem(sc, seed);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler alg2(g);
    workload::ChurnConfig cc;
    cc.arrival_rate = 6.0;
    cc.depart_rate = 2.0;
    cc.move_rate = 2.0;
    cc.slots = 60;
    cc.region_side = sc.deploy.region_side;
    cc.burst_multiplier = burst;
    cc.burst_enter = 0.15;
    const workload::ChurnTrace trace =
        workload::makeChurnTrace(cc, sys.numTags(), seed);
    check::IndexOracleOptions oo;
    oo.every_epochs = oracle_every;
    oo.paranoid = paranoid;
    check::IncrementalIndexOracle oracle(oo);
    sched::StreamingOptions so;
    so.max_backlog = max_backlog;
    so.shed_after_slots = shed_after;
    if (oracle_every > 0 || paranoid) so.oracle = &oracle;
    const auto t0 = std::chrono::steady_clock::now();
    res = sched::runStreamingMcs(sys, alg2, trace, so);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  };

  struct Row {
    analysis::RunningStat tps, p50, p99, backlog, shed, ms;
    int drained = 0;
  };
  const auto run_rows = [&](double burst, int max_backlog, int shed_after,
                            int oracle_every, bool paranoid, Row& row) {
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 9800 + static_cast<std::uint64_t>(s);
      sched::StreamingResult res;
      double ms = 0.0;
      stream(seed, burst, max_backlog, shed_after, oracle_every, paranoid,
             res, ms);
      row.tps.add(res.tags_per_sec);
      row.p50.add(res.latency_p50);
      row.p99.add(res.latency_p99);
      row.backlog.add(res.backlog_peak);
      row.shed.add(res.shed + res.shed_aged);
      row.ms.add(ms);
      row.drained += res.drained;
    }
  };
  const auto print = [&](const char* name, const Row& r) {
    std::cout << std::left << std::setw(22) << name << std::right
              << std::setw(9) << std::fixed << std::setprecision(0)
              << r.tps.mean() << std::setw(7) << std::setprecision(1)
              << r.p50.mean() << std::setw(7) << r.p99.mean() << std::setw(9)
              << r.backlog.mean() << std::setw(7) << r.shed.mean()
              << std::setw(9) << std::setprecision(2) << r.ms.mean()
              << std::setw(9)
              << (std::to_string(r.drained) + "/" + std::to_string(seeds))
              << '\n';
  };

  std::cout << std::left << std::setw(22) << "config" << std::right
            << std::setw(9) << "tags/s" << std::setw(7) << "p50"
            << std::setw(7) << "p99" << std::setw(9) << "backlog"
            << std::setw(7) << "shed" << std::setw(9) << "ms" << std::setw(9)
            << "drained" << '\n';

  // Overload control: the 10x burst with no bound vs bounded backlog.
  Row steady, burst_free, burst_bound, burst_aged;
  run_rows(1.0, 0, 0, 0, false, steady);
  print("steady", steady);
  run_rows(10.0, 0, 0, 0, false, burst_free);
  print("burst10x", burst_free);
  run_rows(10.0, 40, 0, 0, false, burst_bound);
  print("burst10x+backlog40", burst_bound);
  run_rows(10.0, 0, 8, 0, false, burst_aged);
  print("burst10x+deadline8", burst_aged);

  // Oracle overhead: cadence sweep up to paranoid.
  Row o64, o8, opar;
  run_rows(1.0, 0, 0, 64, false, o64);
  print("oracle every64", o64);
  run_rows(1.0, 0, 0, 8, false, o8);
  print("oracle every8", o8);
  run_rows(1.0, 0, 0, 0, true, opar);
  print("oracle paranoid", opar);

  std::cout << "\n# Expected: the backlog bound caps peak backlog (paying in "
               "shed tags) and the deadline caps p99; the paranoid oracle "
               "multiplies wall time without changing any schedule.\n";
  return 0;
}
