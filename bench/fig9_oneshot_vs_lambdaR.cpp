// Figure 9 reproduction: total number of well-covered tags in one time-slot
// as a function of the interference-radius mean λ_R (λ_r fixed).
//
// Paper: "the total number of well-covered tags decreases as the
// interference range increases" — bigger interference disks mean fewer
// concurrently-active readers.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rfid::bench;
  FigureConfig cfg;
  cfg.figure = "Figure 9";
  cfg.sweep_name = "lambda_R";
  cfg.sweep = {6, 8, 10, 12, 14, 16};
  cfg.fixed = 4.0;  // λ_r
  cfg.sweep_is_lambda_R = true;
  cfg.metric = Metric::kOneShotWeight;
  cfg.seeds = seedsFromArgv(argc, argv, 20);

  FigureMetrics metrics;
  const auto set = runFigure(cfg, &metrics);
  emitFigure(cfg, set, "fig9_oneshot_vs_lambdaR",
             "Alg1 >= Alg2 >= Alg3 > {CA, GHC}; weights shrink as lambda_R "
             "grows (interference suppresses concurrency)",
             &metrics);
  return 0;
}
