// Ablation: sensitivity to β = γ/R, the interrogation-to-interference
// ratio of §II (r_i = β·R_i).  β controls RRc pressure: past β = 1/2, two
// *independent* readers can still overlap interrogation regions, which is
// what makes the weight sub-additive and separates the location-aware PTAS
// from the location-free algorithms (they cannot see graph-invisible
// overlaps).
#include <iomanip>
#include <iostream>

#include "analysis/stats.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 10;

  std::cout << "# Ablation: beta = gamma/R (RRc pressure, Section II model)\n"
            << "# 50 readers, 1200 tags, lambda_R=12, r = beta*R, " << seeds
            << " seeds; one-shot weight\n\n";
  std::cout << std::left << std::setw(7) << "beta" << std::setw(11) << "Alg1"
            << std::setw(11) << "Alg2" << std::setw(11) << "Alg3"
            << std::setw(11) << "GHC" << '\n';

  for (const double beta : {0.2, 0.3, 0.4, 0.5, 0.6, 0.75, 0.9}) {
    analysis::RunningStat w1, w2, w3, wg;
    for (int s = 0; s < seeds; ++s) {
      workload::Scenario sc = workload::paperScenario(12.0, 4.0);
      sc.deploy.radius_mode = workload::RadiusMode::kBetaScaled;
      sc.deploy.beta = beta;
      const core::System sys =
          workload::makeSystem(sc, 7000 + static_cast<std::uint64_t>(s));
      const graph::InterferenceGraph g(sys);

      sched::PtasScheduler alg1;
      w1.add(alg1.schedule(sys).weight);
      sched::GrowthScheduler alg2(g);
      w2.add(alg2.schedule(sys).weight);
      dist::GrowthDistributedScheduler alg3(g);
      w3.add(alg3.schedule(sys).weight);
      sched::HillClimbingScheduler ghc;
      wg.add(ghc.schedule(sys).weight);
    }
    std::cout << std::setw(7) << std::fixed << std::setprecision(2) << beta
              << std::setw(11) << std::setprecision(1) << w1.mean()
              << std::setw(11) << w2.mean() << std::setw(11) << w3.mean()
              << std::setw(11) << wg.mean() << '\n';
  }
  std::cout << "\n# Expected: weights grow with beta (bigger interrogation "
               "disks cover more tags); the location-free algorithms track "
               "Alg1 closely below beta=0.5 and fall behind above it, where "
               "graph-invisible RRc overlaps appear.\n";
  return 0;
}
