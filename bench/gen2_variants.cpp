// Extension experiment: Gen2 link-layer variants on a fixed MCS schedule.
//
// PR10's seconds-denominated objective: schedule one covering schedule per
// deployment (Alg2), then replay it under every link model — unit cost,
// framed ALOHA, tree-walking, and EPC Gen2 with session / policy / MPR
// variations.  The schedule is identical across variants, so differences
// are pure link-layer physics: sessions decide whether already-read tags
// burn air-time, MPR(k≥2) resolves k-occupancy collisions in one
// micro-slot and must shorten the schedule versus baseline Gen2.
//
// Machine-readable `gen2point` lines feed tools/bench_record.sh →
// BENCH_PR10.json, gated by tools/bench_compare.py (deterministic
// counters; double_id is zero-stays-zero).
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "graph/interference_graph.h"
#include "protocol/gen2.h"
#include "protocol/slot_timing.h"
#include "sched/growth.h"
#include "sched/mcs.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 2;

  std::cout << "# Extension: Gen2 link variants on a fixed Alg2 MCS schedule\n"
            << "# 50 readers, 1200 tags, lambda_R=10, lambda_r=4, " << seeds
            << " seeds\n\n";

  struct Variant {
    const char* name;
    protocol::LinkOptions lo;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "aloha";
    v.lo.link = protocol::Link::kAloha;
    variants.push_back(v);
    v.name = "tree";
    v.lo.link = protocol::Link::kTreeWalk;
    variants.push_back(v);
    v.name = "gen2-s2";  // baseline Gen2: S2, Q-algorithm, no MPR
    v.lo = {};
    v.lo.link = protocol::Link::kGen2;
    variants.push_back(v);
    v.name = "gen2-s0";
    v.lo.gen2.session = protocol::Gen2Session::kS0;
    variants.push_back(v);
    v.name = "gen2-s1";
    v.lo.gen2.session = protocol::Gen2Session::kS1;
    variants.push_back(v);
    v.name = "gen2-afsa";
    v.lo.gen2 = {};
    v.lo.gen2.policy = protocol::Gen2Policy::kAfsa;
    variants.push_back(v);
    v.name = "gen2-mpr2";
    v.lo.gen2 = {};
    v.lo.gen2.mpr_k = 2;
    variants.push_back(v);
    v.name = "gen2-mpr4";
    v.lo.gen2.mpr_k = 4;
    variants.push_back(v);
  }

  const workload::Scenario sc = workload::paperScenario(10.0, 4.0);
  std::cout << std::left << std::setw(11) << "variant" << std::setw(7)
            << "seed" << std::setw(13) << "air_s" << std::setw(13)
            << "serial_s" << std::setw(10) << "micro" << std::setw(7)
            << "macro" << std::setw(7) << "tags" << std::setw(8) << "skips"
            << '\n';

  std::int64_t base_air = 0, mpr2_air = 0, mpr4_air = 0;
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 8100 + static_cast<std::uint64_t>(s);
    core::System sys = workload::makeSystem(sc, seed);
    const graph::InterferenceGraph g(sys);
    sched::GrowthScheduler alg2(g);
    sys.resetReads();
    const sched::McsResult mcs = sched::runCoveringSchedule(sys, alg2);

    for (const Variant& v : variants) {
      const protocol::LinkTimingResult lt = protocol::timeScheduleLink(
          sys, mcs, v.lo, workload::Rng(seed).split("link"));
      const std::string name(v.name);
      if (name == "gen2-s2") base_air += lt.air_us;
      if (name == "gen2-mpr2") mpr2_air += lt.air_us;
      if (name == "gen2-mpr4") mpr4_air += lt.air_us;
      std::cout << std::setw(11) << v.name << std::setw(7) << seed
                << std::setw(13) << std::fixed << std::setprecision(6)
                << static_cast<double>(lt.air_us) / 1e6 << std::setw(13)
                << static_cast<double>(lt.air_us_serial) / 1e6
                << std::setw(10) << lt.micro_slots << std::setw(7)
                << lt.macro_slots << std::setw(7) << lt.tags_read
                << std::setw(8) << lt.session_skips
                << (lt.check_ok ? "" : "  CHECK-FAIL") << '\n';
      // Machine-readable point for bench_record.sh / bench_compare.py.
      std::cout << "gen2point variant=" << v.name << " seed=" << seed
                << " air_us=" << lt.air_us << " serial_us=" << lt.air_us_serial
                << " micro=" << lt.micro_slots << " macro=" << lt.macro_slots
                << " tags=" << lt.tags_read << " skips=" << lt.session_skips
                << " double_id=" << lt.double_identifications
                << " check=" << (lt.check_ok ? 1 : 0) << '\n';
    }
    std::cout << '\n';
  }

  std::cout << "# MPR ablation (sum over seeds): baseline=" << base_air
            << "us mpr2=" << mpr2_air << "us mpr4=" << mpr4_air << "us\n";
  const bool mpr_wins = mpr2_air < base_air && mpr4_air <= mpr2_air;
  std::cout << (mpr_wins ? "# PASS: MPR(k>=2) shortens the schedule\n"
                         : "# FAIL: MPR did not shorten the schedule\n");
  return mpr_wins ? 0 : 1;
}
