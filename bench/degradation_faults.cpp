// Graceful degradation under injected faults (docs/faults.md).
//
// Two sweeps over random deployments:
//
//   1. Permanent reader crashes (fraction of the fleet, every other crash
//      loud) against the *centralized* fault-oblivious schedulers Alg 2 and
//      GHC.  The MCS referee benches readers it has seen fail and stops as
//      soon as every remaining tag is orphaned, so the interesting outputs
//      are achieved coverage vs. the ideal, schedule length, and how much
//      of the fleet's proposals had to be re-planned around.
//
//   2. Message loss (uniform link drop probability) against the
//      *distributed* schedulers Alg 3 and Colorwave, whose §V-B substrate
//      actually rides the lossy channel.  Self-healing shows up as bounded
//      schedule growth plus the retry/eviction counters instead of a
//      deadlocked network.
#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/stats.h"
#include "ckpt/mcs_ckpt.h"
#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "fault/channel_model.h"
#include "fault/fault_plan.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "workload/scenario.h"

namespace {

rfid::core::System makeSystem(std::uint64_t seed) {
  rfid::workload::Scenario sc;
  sc.deploy.num_readers = 24;
  sc.deploy.num_tags = 400;
  sc.deploy.region_side = 70.0;
  sc.deploy.lambda_R = 10.0;
  sc.deploy.lambda_r = 4.0;
  return rfid::workload::makeSystem(sc, seed);
}

rfid::fault::FaultPlan crashPlan(std::uint64_t seed, double frac) {
  rfid::fault::FaultPlan plan;
  plan.setSeed(seed);
  const int n = 24;
  const int k = static_cast<int>(frac * n + 0.5);
  // Spread the victims over the id range; alternate silent / loud.
  for (int i = 0; i < k; ++i) {
    plan.addCrash(i * n / std::max(1, k), 0, -1, /*loud=*/(i % 2) != 0);
  }
  return plan;
}

/// Runs one sweep configuration, journaling it under `ckpt_dir` when the
/// sweep was started with a checkpoint directory.  auto_resume means a
/// rerun after a crash replays finished configurations from their journals
/// (verified, near-instant) instead of recomputing them, so the sweep picks
/// up where it died with byte-identical output.
rfid::sched::McsResult runConfig(rfid::core::System& sys,
                                 rfid::sched::OneShotScheduler& scheduler,
                                 const rfid::sched::McsOptions& opt,
                                 const std::string& ckpt_dir,
                                 const std::string& tag, std::uint64_t seed) {
  if (ckpt_dir.empty()) {
    return rfid::sched::runCoveringSchedule(sys, scheduler, opt);
  }
  rfid::ckpt::CheckpointSetup setup;
  setup.path = ckpt_dir + "/" + tag + ".journal";
  setup.auto_resume = true;
  setup.seed = seed;
  rfid::ckpt::CheckpointedRun run =
      rfid::ckpt::runMcsCheckpointed(sys, scheduler, opt, setup);
  if (!run.ok) {
    std::cerr << "checkpoint error (" << setup.path << "): " << run.error
              << "\n";
    std::exit(1);
  }
  return run.result;
}

std::string configTag(const char* sweep, const char* algo, double knob,
                      std::uint64_t seed) {
  std::ostringstream os;
  os << sweep << '-' << algo << '-' << static_cast<int>(knob * 100.0 + 0.5)
     << "-s" << seed;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 6;
  // Optional checkpoint directory: journal every configuration there and
  // auto-resume finished ones on rerun (crash-safe sweeps, docs/recovery.md).
  const std::string ckpt_dir = argc > 2 ? argv[2] : "";

  std::cout << "# Degradation under permanent reader crashes "
            << "(fault-oblivious centralized planning)\n"
            << "# 24 readers, 400 tags, lambda_R=10, lambda_r=4, " << seeds
            << " seeds; every other crash is loud; max_stall=50\n\n";
  std::cout << std::left << std::setw(12) << "crash_frac" << std::setw(8)
            << "algo" << std::setw(10) << "slots" << std::setw(12)
            << "read_frac" << std::setw(13) << "orphan_frac" << std::setw(11)
            << "replanned" << '\n';
  for (const double frac : {0.0, 0.1, 0.2, 0.3}) {
    for (const char* algo : {"Alg2", "GHC"}) {
      analysis::RunningStat slots, read_frac, orphan_frac, replanned;
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(s);
        core::System sys = makeSystem(seed);
        const double coverable = std::max(1, sys.unreadCoverableCount());
        const fault::FaultPlan plan = crashPlan(seed, frac);
        sched::McsOptions opt;
        opt.faults = &plan;
        opt.max_stall = 50;  // a fault-oblivious proposer can stall forever
        const graph::InterferenceGraph g(sys);
        sched::McsResult res;
        const std::string tag = configTag("crash", algo, frac, seed);
        if (algo[0] == 'A') {
          sched::GrowthScheduler alg2(g);
          res = runConfig(sys, alg2, opt, ckpt_dir, tag, seed);
        } else {
          sched::HillClimbingScheduler ghc;
          res = runConfig(sys, ghc, opt, ckpt_dir, tag, seed);
        }
        slots.add(res.slots);
        read_frac.add(static_cast<double>(res.tags_read) / coverable);
        orphan_frac.add(static_cast<double>(res.degradation.tags_orphaned) /
                        coverable);
        replanned.add(res.degradation.replanned_activations);
      }
      std::cout << std::setw(12) << std::fixed << std::setprecision(1) << frac
                << std::setw(8) << algo << std::setw(10)
                << std::setprecision(1) << slots.mean() << std::setw(12)
                << std::setprecision(3) << read_frac.mean() << std::setw(13)
                << orphan_frac.mean() << std::setw(11) << std::setprecision(1)
                << replanned.mean() << '\n';
    }
  }

  std::cout << "\n# Degradation under message loss "
            << "(distributed substrates ride the lossy channel)\n\n";
  std::cout << std::left << std::setw(11) << "drop_prob" << std::setw(8)
            << "algo" << std::setw(10) << "slots" << std::setw(12)
            << "read_frac" << std::setw(10) << "retries" << std::setw(11)
            << "evictions" << '\n';
  for (const double drop : {0.0, 0.1, 0.2, 0.3}) {
    for (const char* algo : {"Alg3", "CA"}) {
      analysis::RunningStat slots, read_frac, retries, evictions;
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(s);
        core::System sys = makeSystem(seed);
        const double coverable = std::max(1, sys.unreadCoverableCount());
        fault::FaultPlan plan;
        plan.setSeed(seed);
        fault::LinkFaults lf;
        lf.drop = drop;
        plan.setLinkDefaults(lf);
        fault::ChannelModel ch(plan);
        sched::McsOptions opt;
        opt.faults = &plan;
        opt.channel = &ch;
        opt.max_stall = 50;
        const graph::InterferenceGraph g(sys);
        sched::McsResult res;
        const std::string tag = configTag("loss", algo, drop, seed);
        if (algo[0] == 'A') {
          dist::GrowthDistributedScheduler alg3(g);
          alg3.attachChannel(&ch);
          res = runConfig(sys, alg3, opt, ckpt_dir, tag, seed);
          retries.add(alg3.lastStats().info_retries);
          evictions.add(alg3.lastStats().evicted_rivals);
        } else {
          dist::ColorwaveScheduler ca(sys, seed);
          ca.attachChannel(&ch);
          res = runConfig(sys, ca, opt, ckpt_dir, tag, seed);
          retries.add(0.0);
          evictions.add(ca.evictedNeighborLinks());
        }
        slots.add(res.slots);
        read_frac.add(static_cast<double>(res.tags_read) / coverable);
      }
      std::cout << std::setw(11) << std::fixed << std::setprecision(1) << drop
                << std::setw(8) << algo << std::setw(10)
                << std::setprecision(1) << slots.mean() << std::setw(12)
                << std::setprecision(3) << read_frac.mean() << std::setw(10)
                << std::setprecision(1) << retries.mean() << std::setw(11)
                << evictions.mean() << '\n';
    }
  }
  std::cout << "\n# Expected: read_frac degrades smoothly (never a hang); "
               "crash sweeps leave orphans,\n# loss sweeps recover full "
               "coverage at the cost of slots, retries, and evictions.\n";
  return 0;
}
