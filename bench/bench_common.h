// bench_common.h — shared harness for the figure-reproduction benches.
//
// Every figure in the paper's §VI is a sweep over λ_R or λ_r with the other
// fixed, averaging a metric over random deployments, with five curves:
// Alg 1 (PTAS), Alg 2 (centralized location-free), Alg 3 (distributed),
// CA (Colorwave), GHC (greedy hill-climbing).  This header factors the
// sweep so each fig*_ binary only states its axes and metric.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "analysis/chart.h"
#include "analysis/parallel.h"
#include "analysis/series.h"
#include "analysis/table.h"
#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "obs/metrics.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

namespace rfid::bench {

/// Which quantity a figure reports.
enum class Metric {
  kMcsSlots,       // Figures 6, 7: size of the covering schedule
  kOneShotWeight,  // Figures 8, 9: well-covered tags in a single slot
};

struct FigureConfig {
  std::string figure;        // e.g. "Figure 6"
  std::string sweep_name;    // "lambda_R" or "lambda_r"
  std::vector<double> sweep; // swept mean radii
  double fixed = 0.0;        // the other mean
  bool sweep_is_lambda_R = true;
  Metric metric = Metric::kMcsSlots;
  int seeds = 20;
  std::uint64_t seed_base = 1000;
};

inline constexpr const char* kFigureAlgos[] = {"Alg1", "Alg2", "Alg3", "CA",
                                               "GHC"};

/// Per-algorithm metric totals accumulated across an entire sweep; filled
/// by runFigure and written as a sidecar JSON by emitFigure.  Non-copyable
/// (registries hold mutexes), so pass by pointer.
struct FigureMetrics {
  obs::MetricsRegistry algo[5];
};

/// Runs the sweep and returns one curve per algorithm.
///
/// Sweep points × seeds are independent, so they run via
/// analysis::parallelFor into pre-sized slots; accumulation into the
/// SeriesSet happens sequentially afterwards, making the output
/// bit-identical at any thread count (each iteration derives everything
/// from its own (x, seed) pair).  The same discipline covers metrics: each
/// iteration records into its own per-(iteration, algorithm) registry, and
/// the registries are merged into `metrics` sequentially in index order —
/// so the sidecar JSON is also bit-identical at any thread count.
inline analysis::SeriesSet runFigure(const FigureConfig& cfg,
                                     FigureMetrics* metrics = nullptr) {
  const int xs = static_cast<int>(cfg.sweep.size());
  // 64-bit-safe sizing: a misconfigured sweep (huge seed count) must fail
  // closed with a message, not wrap the sample index.
  const std::int64_t total64 =
      static_cast<std::int64_t>(xs) * static_cast<std::int64_t>(cfg.seeds);
  if (total64 > std::numeric_limits<int>::max()) {
    std::cerr << "figure sweep too large: " << xs << " points x " << cfg.seeds
              << " seeds = " << total64 << " samples exceeds the 2^31-1 cap\n";
    return {};
  }
  const int total = static_cast<int>(total64);
  struct Sample {
    double value[5] = {0, 0, 0, 0, 0};
    obs::MetricsRegistry metrics[5];
  };
  std::vector<Sample> samples(static_cast<std::size_t>(total));

  analysis::parallelFor(0, total, [&](int idx) {
    const double x = cfg.sweep[static_cast<std::size_t>(idx / cfg.seeds)];
    const int s = idx % cfg.seeds;
    const double lambda_R = cfg.sweep_is_lambda_R ? x : cfg.fixed;
    const double lambda_r = cfg.sweep_is_lambda_R ? cfg.fixed : x;
    const workload::Scenario sc = workload::paperScenario(lambda_R, lambda_r);
    const std::uint64_t seed = cfg.seed_base +
                               static_cast<std::uint64_t>(s) * 7919 +
                               static_cast<std::uint64_t>(x * 100);
    core::System sys = workload::makeSystem(sc, seed);
    const graph::InterferenceGraph g(sys);

    sched::PtasScheduler alg1;
    sched::GrowthScheduler alg2(g);
    dist::GrowthDistributedScheduler alg3(g);
    dist::ColorwaveScheduler ca(sys, seed);
    sched::HillClimbingScheduler ghc;
    sched::OneShotScheduler* schedulers[5] = {&alg1, &alg2, &alg3, &ca, &ghc};

    for (int a = 0; a < 5; ++a) {
      sys.resetReads();
      obs::MetricsRegistry* reg =
          metrics ? &samples[static_cast<std::size_t>(idx)].metrics[a]
                  : nullptr;
      sys.attachMetrics(reg);
      schedulers[a]->attachMetrics(reg);
      double value = 0.0;
      if (cfg.metric == Metric::kMcsSlots) {
        sched::McsOptions mcs_opt;
        mcs_opt.metrics = reg;
        const sched::McsResult res =
            sched::runCoveringSchedule(sys, *schedulers[a], mcs_opt);
        value = res.slots;
        if (!res.completed) {
          std::cerr << "warning: " << kFigureAlgos[a] << " did not complete at "
                    << cfg.sweep_name << "=" << x << " seed " << seed << '\n';
        }
      } else {
        value = schedulers[a]->schedule(sys).weight;
      }
      samples[static_cast<std::size_t>(idx)].value[a] = value;
    }
  });

  analysis::SeriesSet out;
  for (int idx = 0; idx < total; ++idx) {
    const double x = cfg.sweep[static_cast<std::size_t>(idx / cfg.seeds)];
    for (int a = 0; a < 5; ++a) {
      out.add(kFigureAlgos[a], x, samples[static_cast<std::size_t>(idx)].value[a]);
      if (metrics) {
        metrics->algo[a].merge(samples[static_cast<std::size_t>(idx)].metrics[a]);
      }
    }
  }
  return out;
}

/// Writes results/<stem>.metrics.json: one top-level key per algorithm,
/// each value the registry's deterministic JSON dump.  Counters are totals
/// over the whole sweep (all points × seeds), making runs with the same
/// seed count directly diffable.
inline bool writeFigureMetricsFile(const std::string& path,
                                   const FigureMetrics& metrics) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n";
  for (int a = 0; a < 5; ++a) {
    os << "  \"" << kFigureAlgos[a] << "\":\n";
    metrics.algo[a].writeJson(os, 2);
    os << (a + 1 < 5 ? ",\n" : "\n");
  }
  os << "}\n";
  return static_cast<bool>(os);
}

/// Prints the figure header, the table, and writes results/<stem>.csv plus
/// (when `metrics` is given) the results/<stem>.metrics.json sidecar.
inline void emitFigure(const FigureConfig& cfg, const analysis::SeriesSet& set,
                       const std::string& stem, const std::string& shape_note,
                       const FigureMetrics* metrics = nullptr) {
  std::cout << "# " << cfg.figure << " — "
            << (cfg.metric == Metric::kMcsSlots
                    ? "size of the covering schedule (time-slots)"
                    : "well-covered tags in one time-slot")
            << "\n# 50 readers, 1200 tags, 100x100 region; "
            << (cfg.sweep_is_lambda_R ? "lambda_r" : "lambda_R") << " fixed at "
            << cfg.fixed << "; " << cfg.seeds << " seeds per point\n"
            << "# Paper shape: " << shape_note << "\n\n";
  analysis::printTable(std::cout, set, cfg.sweep_name);
  const std::string csv_path = "results/" + stem + ".csv";
  if (analysis::writeCsvFile(csv_path, set, cfg.sweep_name)) {
    std::cout << "\n(csv written to " << csv_path << ")\n";
  }
  analysis::ChartOptions chart;
  chart.title = cfg.figure;
  chart.x_label = cfg.sweep_name;
  chart.y_label = cfg.metric == Metric::kMcsSlots
                      ? "covering-schedule slots"
                      : "well-covered tags per slot";
  const std::string svg_path = "results/" + stem + ".svg";
  if (analysis::writeChartSvgFile(svg_path, set, chart)) {
    std::cout << "(chart written to " << svg_path << ")\n";
  }
  if (metrics != nullptr) {
    const std::string metrics_path = "results/" + stem + ".metrics.json";
    if (writeFigureMetricsFile(metrics_path, *metrics)) {
      std::cout << "(metrics written to " << metrics_path << ")\n";
    }
  }
}

/// Shared CLI: an optional single argument overrides the seed count
/// (e.g. quick smoke runs in CI use 2).
inline int seedsFromArgv(int argc, char** argv, int fallback) {
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace rfid::bench
