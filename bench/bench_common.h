// bench_common.h — shared harness for the figure-reproduction benches.
//
// Every figure in the paper's §VI is a sweep over λ_R or λ_r with the other
// fixed, averaging a metric over random deployments, with five curves:
// Alg 1 (PTAS), Alg 2 (centralized location-free), Alg 3 (distributed),
// CA (Colorwave), GHC (greedy hill-climbing).  This header factors the
// sweep so each fig*_ binary only states its axes and metric.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/chart.h"
#include "analysis/parallel.h"
#include "analysis/series.h"
#include "analysis/table.h"
#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/scenario.h"

namespace rfid::bench {

/// Which quantity a figure reports.
enum class Metric {
  kMcsSlots,       // Figures 6, 7: size of the covering schedule
  kOneShotWeight,  // Figures 8, 9: well-covered tags in a single slot
};

struct FigureConfig {
  std::string figure;        // e.g. "Figure 6"
  std::string sweep_name;    // "lambda_R" or "lambda_r"
  std::vector<double> sweep; // swept mean radii
  double fixed = 0.0;        // the other mean
  bool sweep_is_lambda_R = true;
  Metric metric = Metric::kMcsSlots;
  int seeds = 20;
  std::uint64_t seed_base = 1000;
};

inline constexpr const char* kFigureAlgos[] = {"Alg1", "Alg2", "Alg3", "CA",
                                               "GHC"};

/// Runs the sweep and returns one curve per algorithm.
///
/// Sweep points × seeds are independent, so they run via
/// analysis::parallelFor into pre-sized slots; accumulation into the
/// SeriesSet happens sequentially afterwards, making the output
/// bit-identical at any thread count (each iteration derives everything
/// from its own (x, seed) pair).
inline analysis::SeriesSet runFigure(const FigureConfig& cfg) {
  const int xs = static_cast<int>(cfg.sweep.size());
  const int total = xs * cfg.seeds;
  struct Sample {
    double value[5] = {0, 0, 0, 0, 0};
  };
  std::vector<Sample> samples(static_cast<std::size_t>(total));

  analysis::parallelFor(0, total, [&](int idx) {
    const double x = cfg.sweep[static_cast<std::size_t>(idx / cfg.seeds)];
    const int s = idx % cfg.seeds;
    const double lambda_R = cfg.sweep_is_lambda_R ? x : cfg.fixed;
    const double lambda_r = cfg.sweep_is_lambda_R ? cfg.fixed : x;
    const workload::Scenario sc = workload::paperScenario(lambda_R, lambda_r);
    const std::uint64_t seed = cfg.seed_base +
                               static_cast<std::uint64_t>(s) * 7919 +
                               static_cast<std::uint64_t>(x * 100);
    core::System sys = workload::makeSystem(sc, seed);
    const graph::InterferenceGraph g(sys);

    sched::PtasScheduler alg1;
    sched::GrowthScheduler alg2(g);
    dist::GrowthDistributedScheduler alg3(g);
    dist::ColorwaveScheduler ca(sys, seed);
    sched::HillClimbingScheduler ghc;
    sched::OneShotScheduler* schedulers[5] = {&alg1, &alg2, &alg3, &ca, &ghc};

    for (int a = 0; a < 5; ++a) {
      sys.resetReads();
      double value = 0.0;
      if (cfg.metric == Metric::kMcsSlots) {
        const sched::McsResult res =
            sched::runCoveringSchedule(sys, *schedulers[a]);
        value = res.slots;
        if (!res.completed) {
          std::cerr << "warning: " << kFigureAlgos[a] << " did not complete at "
                    << cfg.sweep_name << "=" << x << " seed " << seed << '\n';
        }
      } else {
        value = schedulers[a]->schedule(sys).weight;
      }
      samples[static_cast<std::size_t>(idx)].value[a] = value;
    }
  });

  analysis::SeriesSet out;
  for (int idx = 0; idx < total; ++idx) {
    const double x = cfg.sweep[static_cast<std::size_t>(idx / cfg.seeds)];
    for (int a = 0; a < 5; ++a) {
      out.add(kFigureAlgos[a], x, samples[static_cast<std::size_t>(idx)].value[a]);
    }
  }
  return out;
}

/// Prints the figure header, the table, and writes results/<stem>.csv.
inline void emitFigure(const FigureConfig& cfg, const analysis::SeriesSet& set,
                       const std::string& stem, const std::string& shape_note) {
  std::cout << "# " << cfg.figure << " — "
            << (cfg.metric == Metric::kMcsSlots
                    ? "size of the covering schedule (time-slots)"
                    : "well-covered tags in one time-slot")
            << "\n# 50 readers, 1200 tags, 100x100 region; "
            << (cfg.sweep_is_lambda_R ? "lambda_r" : "lambda_R") << " fixed at "
            << cfg.fixed << "; " << cfg.seeds << " seeds per point\n"
            << "# Paper shape: " << shape_note << "\n\n";
  analysis::printTable(std::cout, set, cfg.sweep_name);
  const std::string csv_path = "results/" + stem + ".csv";
  if (analysis::writeCsvFile(csv_path, set, cfg.sweep_name)) {
    std::cout << "\n(csv written to " << csv_path << ")\n";
  }
  analysis::ChartOptions chart;
  chart.title = cfg.figure;
  chart.x_label = cfg.sweep_name;
  chart.y_label = cfg.metric == Metric::kMcsSlots
                      ? "covering-schedule slots"
                      : "well-covered tags per slot";
  const std::string svg_path = "results/" + stem + ".svg";
  if (analysis::writeChartSvgFile(svg_path, set, chart)) {
    std::cout << "(chart written to " << svg_path << ")\n";
  }
}

/// Shared CLI: an optional single argument overrides the seed count
/// (e.g. quick smoke runs in CI use 2).
inline int seedsFromArgv(int argc, char** argv, int fallback) {
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace rfid::bench
