// Extension: mobile readers and stale site surveys (the §I motivation).
//
// Readers move under random waypoint; the scheduler plans on the last site
// survey while the referee scores against true positions.  Sweeping the
// survey period quantifies how quickly location knowledge rots — the
// phenomenon that motivates the paper's location-free algorithms in the
// first place.  The location-free Alg2 still needs the survey's
// *interference graph*, so it decays too; the point of comparison is how
// gracefully each input ages.
#include <iomanip>
#include <iostream>

#include "analysis/stats.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/ptas.h"
#include "workload/mobility.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const int seeds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 10;

  std::cout << "# Extension: reader mobility vs survey staleness\n"
            << "# 40 readers moving at 2 units/slot in 100x100, 800 tags, "
            << "60 slots; " << seeds << " seeds; metric = tags read\n\n";
  std::cout << std::left << std::setw(15) << "survey_period" << std::setw(12)
            << "Alg1" << std::setw(12) << "Alg2" << std::setw(12) << "GHC"
            << '\n';

  workload::MobilityConfig cfg;
  cfg.deploy.num_readers = 40;
  cfg.deploy.num_tags = 800;
  cfg.deploy.region_side = 100.0;
  cfg.deploy.lambda_R = 10.0;
  cfg.deploy.lambda_r = 5.0;
  cfg.speed = 2.0;
  cfg.slots = 60;

  const workload::SchedulerFactory make_alg1 =
      [](const core::System&, const graph::InterferenceGraph&) {
        return std::make_unique<sched::PtasScheduler>();
      };
  const workload::SchedulerFactory make_alg2 =
      [](const core::System&, const graph::InterferenceGraph& g) {
        return std::make_unique<sched::GrowthScheduler>(g);
      };
  const workload::SchedulerFactory make_ghc =
      [](const core::System&, const graph::InterferenceGraph&) {
        return std::make_unique<sched::HillClimbingScheduler>();
      };

  for (const int period : {1, 3, 10, 30}) {
    cfg.survey_period = period;
    analysis::RunningStat a1, a2, gh;
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 13000 + static_cast<std::uint64_t>(s);
      {
        workload::MobilitySimulation sim(cfg, seed);
        a1.add(sim.run(make_alg1).tags_read);
      }
      {
        workload::MobilitySimulation sim(cfg, seed);
        a2.add(sim.run(make_alg2).tags_read);
      }
      {
        workload::MobilitySimulation sim(cfg, seed);
        gh.add(sim.run(make_ghc).tags_read);
      }
    }
    std::cout << std::setw(15) << period << std::fixed << std::setw(12)
              << std::setprecision(1) << a1.mean() << std::setw(12)
              << a2.mean() << std::setw(12) << gh.mean() << '\n';
  }
  std::cout << "\n# Expected: all schedulers read fewer tags as the survey "
               "goes stale; the drop from period 1 to 30 is the price of "
               "planning on dead reckoning.\n";
  return 0;
}
