// rfidsched_serve — the multi-tenant scheduler daemon (docs/service.md).
//
//   rfidsched_serve [--workers N] [--queue N] [--shed newest|largest]
//                   [--stall-ms N] [--watchdog-ms N] [--retries N]
//                   [--backoff-ms N] [--backoff-cap-ms N]
//                   [--ckpt-dir DIR] [--snapshot-every N]
//                   [--fault PATH] [--drain-ms N] [--threads N]
//                   [--metrics PATH] [--prom PATH] [--trace PATH]
//                   [--jsonl PATH] [--mask-wall]
//                   [--requests PATH]
//
// Reads request specs (the line protocol in docs/service.md) from
// --requests PATH or stdin, runs them on a fixed worker pool with admission
// control, watchdog supervision, and retries, and writes one JSON response
// line per request to stdout in *completion* order.  Parse and admission
// rejections are responses too — every request gets exactly one line.
//
// SIGTERM/SIGINT start a graceful drain: admission closes, queued requests
// bounce with code "draining", in-flight requests get --drain-ms to finish
// or checkpoint (resumable PR3 journals under --ckpt-dir), telemetry
// flushes, and the daemon exits 6 (clean) or 7 (a worker had to be
// abandoned).  EOF on the request stream waits for all submitted work,
// drains, flushes, and exits 0.
//
// --fault applies a service-wide fault plan to every request that does not
// carry its own inline plan.  --mask-wall zeroes the wall-clock fields of
// every response so output is byte-diffable across runs.
//
// Exit codes: 0 EOF + clean drain; 2 bad usage; 6 signal + clean drain;
//             7 unclean drain (hung workers).
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/budget.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/request.h"
#include "service/service.h"
#include "service/signals.h"

namespace {

struct Args {
  int workers = 2;
  int queue = 16;
  std::string shed = "newest";
  int stall_ms = 500;
  int watchdog_ms = 5;
  int retries = 1;
  int backoff_ms = 5;
  int backoff_cap_ms = 100;
  std::string ckpt_dir;
  int snapshot_every = 16;
  std::string fault_path;
  int drain_ms = 2000;
  int threads = 1;
  std::string metrics_path;
  std::string prom_path;
  std::string trace_path;
  std::string jsonl_path;
  bool mask_wall = false;
  std::string requests_path;  // empty = stdin
};

void usage() {
  std::cerr <<
      "usage: rfidsched_serve [--workers N] [--queue N]\n"
      "                       [--shed newest|largest] [--stall-ms N]\n"
      "                       [--watchdog-ms N] [--retries N]\n"
      "                       [--backoff-ms N] [--backoff-cap-ms N]\n"
      "                       [--ckpt-dir DIR] [--snapshot-every N]\n"
      "                       [--fault PATH] [--drain-ms N] [--threads N]\n"
      "                       [--metrics PATH] [--prom PATH] [--trace PATH]\n"
      "                       [--jsonl PATH] [--mask-wall] [--requests PATH]\n"
      "\n"
      "Reads request specs (docs/service.md) from --requests or stdin and\n"
      "writes one JSON response per line to stdout in completion order.\n"
      "SIGTERM/SIGINT drain gracefully.\n"
      "\n"
      "exit codes: 0 EOF + clean drain; 2 bad usage; 6 signal + clean\n"
      "            drain; 7 unclean drain (hung workers)\n";
}

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (f == "--workers" && (v = next())) a.workers = std::atoi(v);
    else if (f == "--queue" && (v = next())) a.queue = std::atoi(v);
    else if (f == "--shed" && (v = next())) a.shed = v;
    else if (f == "--stall-ms" && (v = next())) a.stall_ms = std::atoi(v);
    else if (f == "--watchdog-ms" && (v = next())) a.watchdog_ms = std::atoi(v);
    else if (f == "--retries" && (v = next())) a.retries = std::atoi(v);
    else if (f == "--backoff-ms" && (v = next())) a.backoff_ms = std::atoi(v);
    else if (f == "--backoff-cap-ms" && (v = next())) a.backoff_cap_ms = std::atoi(v);
    else if (f == "--ckpt-dir" && (v = next())) a.ckpt_dir = v;
    else if (f == "--snapshot-every" && (v = next())) a.snapshot_every = std::atoi(v);
    else if (f == "--fault" && (v = next())) a.fault_path = v;
    else if (f == "--drain-ms" && (v = next())) a.drain_ms = std::atoi(v);
    else if (f == "--threads" && (v = next())) a.threads = std::atoi(v);
    else if (f == "--metrics" && (v = next())) a.metrics_path = v;
    else if (f == "--prom" && (v = next())) a.prom_path = v;
    else if (f == "--trace" && (v = next())) a.trace_path = v;
    else if (f == "--jsonl" && (v = next())) a.jsonl_path = v;
    else if (f == "--mask-wall") a.mask_wall = true;
    else if (f == "--requests" && (v = next())) a.requests_path = v;
    else {
      std::cerr << "unknown or valueless option: " << f << "\n";
      return false;
    }
  }
  const auto reject = [](const char* flag, const char* why) {
    std::cerr << "invalid value for " << flag << ": " << why << "\n";
    return false;
  };
  if (a.workers < 1 || a.workers > 256) return reject("--workers", "need 1..256");
  if (a.queue < 1 || a.queue > 100000) return reject("--queue", "need 1..100000");
  if (a.shed != "newest" && a.shed != "largest") {
    return reject("--shed", "need newest|largest");
  }
  if (a.watchdog_ms < 1) return reject("--watchdog-ms", "must be >= 1");
  if (a.retries < 0 || a.retries > rfid::service::kMaxRetries) {
    return reject("--retries", "need 0..10");
  }
  if (a.backoff_ms < 1) return reject("--backoff-ms", "must be >= 1");
  if (a.drain_ms < 0) return reject("--drain-ms", "must be >= 0");
  if (a.threads < 0) return reject("--threads", "must be >= 0");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rfid;
  Args args;
  if (!parse(argc, argv, args)) {
    usage();
    return 2;
  }

  std::ifstream req_file;
  std::istream* in = &std::cin;
  if (!args.requests_path.empty()) {
    req_file.open(args.requests_path);
    if (!req_file) {
      std::cerr << "failed to open --requests " << args.requests_path << "\n";
      return 2;
    }
    in = &req_file;
  }

  fault::FaultPlan default_plan;
  if (!args.fault_path.empty()) {
    std::string err;
    auto loaded = fault::FaultPlan::loadFile(args.fault_path, &err);
    if (!loaded) {
      std::cerr << "failed to load fault plan from " << args.fault_path << ": "
                << err << "\n";
      return 2;
    }
    default_plan = std::move(*loaded);
  }

  obs::MetricsRegistry registry;
  obs::TraceSink sink;
  obs::MetricsRegistry* metrics =
      args.metrics_path.empty() && args.prom_path.empty() ? nullptr : &registry;
  obs::TraceSink* trace =
      args.trace_path.empty() && args.jsonl_path.empty() ? nullptr : &sink;

  service::ServiceOptions opt;
  opt.workers = args.workers;
  opt.queue_capacity = static_cast<std::size_t>(args.queue);
  opt.shed = args.shed == "largest" ? service::ShedPolicy::kRejectLargest
                                    : service::ShedPolicy::kRejectNewest;
  opt.watchdog_period_ms = args.watchdog_ms;
  opt.stall_window_ms = args.stall_ms;
  opt.default_retries = args.retries;
  opt.backoff_base_ms = args.backoff_ms;
  opt.backoff_cap_ms = args.backoff_cap_ms;
  opt.checkpoint_dir = args.ckpt_dir;
  opt.snapshot_every = args.snapshot_every;
  opt.default_faults = default_plan.empty() ? nullptr : &default_plan;
  opt.metrics = metrics;
  opt.trace = trace;
  opt.solver_threads = args.threads;
  opt.mask_wall = args.mask_wall;

  service::Service svc(opt);
  svc.start();

  // The signal handler cancels this token directly (lock-free) so that
  // in-flight solves start checkpointing before the read loop's next EINTR.
  ckpt::CancelToken stop_token;
  service::installStopSignalHandlers(&stop_token);

  // Responses complete on worker threads; serialize the output stream.
  std::mutex out_mu;
  const bool mask_wall = args.mask_wall;
  const auto respond = [&](const service::Response& r) {
    std::lock_guard<std::mutex> lk(out_mu);
    r.writeJson(std::cout, mask_wall);
    std::cout << '\n' << std::flush;
  };

  // Session pump: parse → submit → hand each ticket to a detached waiter
  // that prints the response on completion.  Tickets are shared_ptrs, so a
  // waiter outliving the Job is fine; drain guarantees every ticket
  // completes, so every waiter terminates.
  std::vector<std::thread> waiters;
  service::RequestStreamParser parser(*in);
  bool eof = false;
  while (!eof && service::stopSignal() == 0) {
    service::RequestSpec spec;
    service::Response err;
    switch (parser.next(&spec, &err)) {
      case service::RequestStreamParser::Item::kEof:
        eof = true;
        break;
      case service::RequestStreamParser::Item::kError:
        if (metrics != nullptr) {
          metrics->counter("svc.parse_errors").add(1);
        }
        respond(err);
        break;
      case service::RequestStreamParser::Item::kRequest: {
        service::Response reject;
        auto ticket = svc.submit(std::move(spec), &reject);
        if (ticket == nullptr) {
          respond(reject);
          break;
        }
        waiters.emplace_back([ticket, &respond] { respond(ticket->wait()); });
        break;
      }
    }
  }

  const int sig = service::stopSignal();
  if (sig == 0) {
    // EOF: let everything submitted resolve before draining.
    svc.waitIdle([] { return service::stopSignal() != 0; });
  }

  const service::DrainReport rep = svc.drain(args.drain_ms);

  std::cerr << "drain: bounced=" << rep.bounced
            << " completed=" << rep.completed
            << " checkpointed=" << rep.checkpointed
            << " cancelled=" << rep.cancelled << " hung=" << rep.hung_workers
            << (rep.clean() ? " (clean)" : " (UNCLEAN)") << "\n";

  // A hung worker never completes its ticket, so its waiter thread can
  // never be joined — flush telemetry first and exit hard in that case.
  if (rep.clean()) {
    for (std::thread& t : waiters) t.join();
  }

  bool flush_ok = true;
  if (!args.metrics_path.empty() &&
      !registry.writeJsonFile(args.metrics_path)) {
    std::cerr << "failed to write metrics to " << args.metrics_path << "\n";
    flush_ok = false;
  }
  if (!args.prom_path.empty() &&
      !registry.writePrometheusFile(args.prom_path)) {
    std::cerr << "failed to write prometheus text to " << args.prom_path
              << "\n";
    flush_ok = false;
  }
  if (!args.trace_path.empty() && !sink.writeChromeTraceFile(args.trace_path)) {
    std::cerr << "failed to write trace to " << args.trace_path << "\n";
    flush_ok = false;
  }
  if (!args.jsonl_path.empty() && !sink.writeJsonlFile(args.jsonl_path)) {
    std::cerr << "failed to write jsonl to " << args.jsonl_path << "\n";
    flush_ok = false;
  }

  if (!rep.clean()) {
    std::cout.flush();
    std::_Exit(7);  // un-joinable waiters: skip destructors, evidence is out
  }
  if (!flush_ok) return 2;
  return sig != 0 ? 6 : 0;
}
