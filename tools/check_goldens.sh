#!/usr/bin/env bash
# check_goldens.sh — golden-file regression check for the CLI surface
# (docs/testing.md).  Runs the canonical invocation against the committed
# deployment and diffs stdout, the metrics JSON, the (time-normalized)
# JSONL event stream, the deterministic cost-attribution JSON, and the
# masked rfidsched_report rendering against tests/golden/.  Registered in
# ctest with the `integration` label; tools/update_goldens.sh re-records
# after an intentional output change.
#
#   usage: tools/check_goldens.sh [path-to-rfidsched_cli] [--update]
#
# rfidsched_report is expected beside the CLI binary (same build tree).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cli="${1:-$repo/build/tools/rfidsched_cli}"
mode="${2:-check}"
golden="$repo/tests/golden"
report="$(dirname "$cli")/rfidsched_report"

if [ ! -x "$cli" ]; then
  echo "check_goldens: CLI not found at $cli" >&2
  exit 1
fi
if [ ! -x "$report" ]; then
  echo "check_goldens: rfidsched_report not found at $report" >&2
  exit 1
fi

scratch="$(mktemp -d /tmp/rfidsched-golden.XXXXXX)"
trap 'rm -rf "$scratch"' EXIT
cd "$scratch"

# The canonical run: fixed committed deployment, deterministic algorithm,
# metrics + events + cost attribution enabled, the invariant oracle armed.
# --threads 1 pins the parallel fan-out so the trace's span structure is
# byte-stable; the cost JSON is identical at every thread count by contract
# (tests/test_cost.cpp), so pinning it here is belt and braces.  Output
# paths are relative so stdout (which echoes them) is byte-stable.
"$cli" --load "$golden/deploy.csv" --algo alg2 --mode mcs --check \
  --threads 1 --metrics metrics.json --jsonl events.jsonl --cost cost.json \
  > stdout.txt

# Event timestamps/durations and the *_us histograms are wall-clock (they
# ride with the attached trace); zero them so the goldens pin structure and
# counts, not scheduling jitter.
sed -E 's/"ts_us": [0-9]+/"ts_us": 0/; s/"dur_us": [0-9]+/"dur_us": 0/' \
  events.jsonl > events.normalized.jsonl
sed -E 's/"([a-zA-Z0-9_.]+_us)": \{[^}]*\}/"\1": {}/' \
  metrics.json > metrics.normalized.json

# The analyzer rendering over the run's own telemetry, wall-clock masked:
# everything left is deterministic (counters, cost bills, span structure).
"$report" --metrics metrics.json --jsonl events.jsonl --cost cost.json \
  --mask-wall > report.txt

# The same canonical run replayed under the Gen2 link (PR10): air-time is
# integer-microsecond arithmetic over splittable-RNG draws, so stdout —
# including the seconds-denominated schedule length — is byte-stable.
"$cli" --load "$golden/deploy.csv" --algo alg2 --mode mcs --check \
  --threads 1 --link gen2 > gen2_stdout.txt

if [ "$mode" = "--update" ]; then
  cp stdout.txt "$golden/cli_stdout.txt"
  cp metrics.normalized.json "$golden/cli_metrics.json"
  cp events.normalized.jsonl "$golden/cli_events.jsonl"
  cp cost.json "$golden/cli_cost.json"
  cp report.txt "$golden/cli_report.txt"
  cp gen2_stdout.txt "$golden/cli_gen2_stdout.txt"
  echo "goldens updated in $golden"
  exit 0
fi

fails=0
for pair in "stdout.txt cli_stdout.txt" \
            "metrics.normalized.json cli_metrics.json" \
            "events.normalized.jsonl cli_events.jsonl" \
            "cost.json cli_cost.json" \
            "report.txt cli_report.txt" \
            "gen2_stdout.txt cli_gen2_stdout.txt"; do
  set -- $pair
  if ! diff -u "$golden/$2" "$1"; then
    echo "golden mismatch: $2 (ran: $1)" >&2
    fails=$((fails + 1))
  fi
done

if [ "$fails" -ne 0 ]; then
  echo "goldens: $fails mismatch(es); if intentional, run tools/update_goldens.sh" >&2
  exit 1
fi
echo "goldens: ok"
