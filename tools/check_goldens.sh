#!/usr/bin/env bash
# check_goldens.sh — golden-file regression check for the CLI surface
# (docs/testing.md).  Runs the canonical invocation against the committed
# deployment and diffs stdout, the metrics JSON, and the (time-normalized)
# JSONL event stream against tests/golden/.  Registered in ctest with the
# `integration` label; tools/update_goldens.sh re-records after an
# intentional output change.
#
#   usage: tools/check_goldens.sh [path-to-rfidsched_cli] [--update]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cli="${1:-$repo/build/tools/rfidsched_cli}"
mode="${2:-check}"
golden="$repo/tests/golden"

if [ ! -x "$cli" ]; then
  echo "check_goldens: CLI not found at $cli" >&2
  exit 1
fi

scratch="$(mktemp -d /tmp/rfidsched-golden.XXXXXX)"
trap 'rm -rf "$scratch"' EXIT
cd "$scratch"

# The canonical run: fixed committed deployment, deterministic algorithm,
# metrics + events enabled, the invariant oracle armed.  Output paths are
# relative so stdout (which echoes them) is byte-stable.
"$cli" --load "$golden/deploy.csv" --algo alg2 --mode mcs --check \
  --metrics metrics.json --jsonl events.jsonl > stdout.txt

# Event timestamps/durations and the *_us histograms are wall-clock (they
# ride with the attached trace); zero them so the goldens pin structure and
# counts, not scheduling jitter.
sed -E 's/"ts_us": [0-9]+/"ts_us": 0/; s/"dur_us": [0-9]+/"dur_us": 0/' \
  events.jsonl > events.normalized.jsonl
sed -E 's/"([a-zA-Z_.]+_us)": \{[^}]*\}/"\1": {}/' \
  metrics.json > metrics.normalized.json

if [ "$mode" = "--update" ]; then
  cp stdout.txt "$golden/cli_stdout.txt"
  cp metrics.normalized.json "$golden/cli_metrics.json"
  cp events.normalized.jsonl "$golden/cli_events.jsonl"
  echo "goldens updated in $golden"
  exit 0
fi

fails=0
for pair in "stdout.txt cli_stdout.txt" \
            "metrics.normalized.json cli_metrics.json" \
            "events.normalized.jsonl cli_events.jsonl"; do
  set -- $pair
  if ! diff -u "$golden/$2" "$1"; then
    echo "golden mismatch: $2 (ran: $1)" >&2
    fails=$((fails + 1))
  fi
done

if [ "$fails" -ne 0 ]; then
  echo "goldens: $fails mismatch(es); if intentional, run tools/update_goldens.sh" >&2
  exit 1
fi
echo "goldens: ok"
