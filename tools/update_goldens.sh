#!/usr/bin/env bash
# update_goldens.sh — re-record the CLI golden files after an intentional
# output change (docs/testing.md).  Review the diff before committing: a
# golden update is a statement that the new output is the correct one.
#
#   usage: tools/update_goldens.sh [path-to-rfidsched_cli]
set -euo pipefail
exec "$(dirname "$0")/check_goldens.sh" \
  "${1:-$(cd "$(dirname "$0")/.." && pwd)/build/tools/rfidsched_cli}" --update
