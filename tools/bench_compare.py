#!/usr/bin/env python3
"""bench_compare.py — the perf-regression gate over deterministic work units.

    tools/bench_compare.py --baseline BENCH_PR6.json --baseline-label pr6 \
        [--record BUILD_DIR | --current OUT.json] [--current-label current] \
        [--threshold 0.02] [--wall-threshold 0.25] [--selftest]

Compares a fresh bench_record.sh run (--record builds one into a temp file)
or a previously recorded document (--current) against the committed baseline
entry.  The gate is over the *deterministic* counters recorded per CLI mode
(sched.*/core.*/mcs.* work counters and the cost-ledger work units): any
counter that GREW by more than --threshold (default 2%) fails the gate,
because those numbers depend only on (deployment, algorithm, seed) — growth
is a real algorithmic regression, never jitter.  Decreases pass (and are
reported as improvements).  Wall-clock numbers can jitter with the machine,
so they only WARN when they drift beyond --wall-threshold (default 25%).

--selftest proves the gate has teeth without a live run: it seeds a +5%
work-unit regression into a copy of the baseline entry and requires the
comparison to fail, then requires the unmodified entry to pass clean.

Exit codes: 0 gate passed; 1 regression (or selftest failure); 2 bad usage.
"""
import argparse
import copy
import json
import os
import subprocess
import sys
import tempfile

# Deterministic per-mode counters: growth beyond the threshold fails.
DET_KEYS = (
    "sched.weight_evals",
    "sched.schedule_calls",
    "core.weight_evals",
    "mcs.slots",
    "mcs.tags_read",
)

# Deterministic service counters from the closed-loop point recorded by
# rfidsched_load: in a closed loop with concurrency <= queue capacity and
# stall detection off, these depend only on (workload, seeds), never on
# scheduling jitter, so growth is a real regression.  The open-loop
# saturation sweep is machine-dependent and stays advisory.
SVC_KEYS = (
    "svc.admitted",
    "svc.completed",
    "svc.failed",
    "svc.cancelled",
    "svc.rejected",
    "svc.retries",
    "mcs.slots",
    "mcs.tags_read",
    "sched.schedule_calls",
    "sched.weight_evals",
)

# The fixed closed-loop point --service-record replays; must match the
# parameters bench_record.sh passes to `rfidsched_load --mode bench` so the
# recorded baseline and the gate measure the same workload.
SERVICE_POINT = ("--mode", "closed", "--requests", "32", "--concurrency",
                 "8", "--workers", "2", "--queue", "16", "--readers", "30",
                 "--tags", "600", "--side", "80", "--seed", "11")

# Deterministic streaming counters from the fixed churn point: the trace,
# the shed decisions, the committed slots, and the oracle verdicts depend
# only on (deployment, seed, trace), never on the machine.  Zero-valued
# counters (check.index_divergence above all) must STAY zero.
STREAM_KEYS = (
    "stream.arrived",
    "stream.departed",
    "stream.moved",
    "stream.shed",
    "stream.shed_aged",
    "check.index_checks",
    "check.index_divergence",
    "check.index_heals",
    "mcs.slots",
    "mcs.stall_slots",
    "mcs.tags_read",
    "sched.schedule_calls",
    "sched.weight_evals",
)
# Gated summary gauges: slot-denominated, hence deterministic.  Growth in a
# latency percentile or the backlog peak is a real service regression.
STREAM_SUMMARY_KEYS = ("stream.backlog_peak", "stream.latency_p50",
                       "stream.latency_p99")

# Deterministic fields of the large-scale MCS sweep (bench/scaling_n
# --large, recorded under RFIDSCHED_BENCH_LARGE=1): slots, tags read, and
# the referee/selection work counters depend only on (n, m, seed).  A
# completed point must STAY completed.  wall_ms / build_ms / rss_mib are
# machine numbers and stay advisory.
LARGE_KEYS = ("slots", "tags", "completed", "weight_evals", "work_units")
LARGE_WALL_KEYS = ("build_ms", "wall_ms", "rss_mib")

# Deterministic fields of the Gen2 link-variant points (bench/gen2_variants,
# PR10): air-time, micro/macro slots, tags, and session skips depend only on
# (deployment seed, link config) — the replay derives every draw from a
# splittable RNG keyed by (seed, slot, reader).  double_id must STAY zero
# (a round acking the same tag twice is the bug the self-check exists for)
# and check must stay 1.
GEN2_KEYS = ("air_us", "serial_us", "micro", "macro", "tags", "skips")

# The fixed stream point --stream-record replays; must match the
# parameters bench_record.sh passes to `rfidsched_cli --mode stream`.
STREAM_POINT = ("--mode", "stream", "--algo", "alg2", "--readers", "200",
                "--tags", "4000", "--side", "120", "--seed", "17",
                "--arrival-rate", "10", "--depart-rate", "3",
                "--move-rate", "3", "--stream-slots", "80", "--burst", "10",
                "--burst-enter", "0.1", "--burst-exit", "0.25",
                "--max-backlog", "300", "--shed-after", "30",
                "--oracle-every", "16")


def det_counters(mode_entry):
    """Flatten one cli_mcs_n2000 mode entry to {name: value} deterministic counters."""
    out = {}
    for k in DET_KEYS:
        if k in mode_entry:
            out[k] = mode_entry[k]
    cost = mode_entry.get("cost")
    if cost:
        out["cost.work_units"] = cost.get("work_units", 0)
        for k, v in sorted(cost.get("total", {}).items()):
            out[f"cost.total.{k}"] = v
    return out


def compare(base_entry, cur_entry, threshold, wall_threshold):
    """Returns (failures, warnings, lines) comparing two bench_record entries."""
    failures, warnings, lines = [], [], []
    base_modes = base_entry.get("cli_mcs_n2000", {})
    cur_modes = cur_entry.get("cli_mcs_n2000", {})
    for mode in sorted(base_modes):
        if mode not in cur_modes:
            warnings.append(f"mode '{mode}' missing from current run (skipped)")
            continue
        base_c = det_counters(base_modes[mode])
        cur_c = det_counters(cur_modes[mode])
        for name in sorted(base_c):
            if name not in cur_c:
                warnings.append(f"{mode}/{name}: not recorded by current run")
                continue
            b, c = base_c[name], cur_c[name]
            if b <= 0:
                continue
            growth = (c - b) / b
            tag = "ok"
            if growth > threshold:
                tag = "FAIL"
                failures.append(
                    f"{mode}/{name}: {b} -> {c} (+{growth:.1%} > {threshold:.0%})")
            elif growth < 0:
                tag = "improved"
            lines.append(f"  [{tag}] {mode}/{name}: {b} -> {c} ({growth:+.1%})")
        bw = base_modes[mode].get("wall_ms")
        cw = cur_modes[mode].get("wall_ms")
        if bw and cw and bw > 0:
            drift = (cw - bw) / bw
            if abs(drift) > wall_threshold:
                warnings.append(
                    f"{mode}/wall_ms drifted {drift:+.1%} ({bw} -> {cw} ms) — "
                    "wall clock is advisory, check the work counters above")
            lines.append(f"  [wall] {mode}/wall_ms: {bw} -> {cw} ({drift:+.1%})")

    sf, sw, sl = compare_service(base_entry.get("service"),
                                 cur_entry.get("service"),
                                 threshold, wall_threshold)
    tf, tw, tl = compare_stream(base_entry.get("stream_churn"),
                                cur_entry.get("stream_churn"),
                                threshold, wall_threshold)
    lf, lw, ll = compare_large(base_entry.get("large_mcs"),
                               cur_entry.get("large_mcs"),
                               threshold, wall_threshold)
    gf, gw, gl = compare_gen2(base_entry.get("gen2_variants"),
                              cur_entry.get("gen2_variants"), threshold)
    return (failures + sf + tf + lf + gf, warnings + sw + tw + lw + gw,
            lines + sl + tl + ll + gl)


def compare_gen2(base_pts, cur_pts, threshold):
    """Gates the deterministic Gen2 link-variant points (exact-seed replay)."""
    failures, warnings, lines = [], [], []
    if not base_pts:
        return failures, warnings, lines
    if not cur_pts:
        warnings.append("gen2_variants section missing from current run (skipped)")
        return failures, warnings, lines
    cur_by_key = {(p.get("variant"), p.get("seed")): p for p in cur_pts}
    for bp in base_pts:
        key = (bp.get("variant"), bp.get("seed"))
        label = f"gen2 {key[0]} seed={key[1]}"
        cp = cur_by_key.get(key)
        if cp is None:
            warnings.append(f"{label}: point missing from current run")
            continue
        # Zero-stays-zero: a double identification appearing is exactly the
        # protocol bug the round-level self-check exists to catch.
        if cp.get("double_id", 0) > bp.get("double_id", 0):
            failures.append(f"{label}/double_id: {bp.get('double_id', 0)} -> "
                            f"{cp.get('double_id')} (was zero)")
            lines.append(f"  [FAIL] {label}/double_id: "
                         f"{bp.get('double_id', 0)} -> {cp.get('double_id')}")
        if bp.get("check", 1) == 1 and cp.get("check", 1) != 1:
            failures.append(f"{label}/check: 1 -> {cp.get('check')}")
            lines.append(f"  [FAIL] {label}/check: 1 -> {cp.get('check')}")
        for name in GEN2_KEYS:
            if name not in bp:
                continue
            if name not in cp:
                warnings.append(f"{label}/{name}: not recorded by current run")
                continue
            b, c = bp[name], cp[name]
            if b <= 0:
                continue
            growth = (c - b) / b
            tag = "ok"
            if growth > threshold:
                tag = "FAIL"
                failures.append(
                    f"{label}/{name}: {b} -> {c} (+{growth:.1%} > {threshold:.0%})")
            elif growth < 0:
                tag = "improved"
            lines.append(f"  [{tag}] {label}/{name}: {b} -> {c} ({growth:+.1%})")
    return failures, warnings, lines


def compare_large(base_pts, cur_pts, threshold, wall_threshold):
    """Gates the deterministic fields of the large-scale MCS sweep points."""
    failures, warnings, lines = [], [], []
    if not base_pts:
        return failures, warnings, lines
    if not cur_pts:
        warnings.append("large_mcs section missing from current run (skipped)")
        return failures, warnings, lines
    cur_by_key = {(p.get("n"), p.get("m")): p for p in cur_pts}
    for bp in base_pts:
        key = (bp.get("n"), bp.get("m"))
        label = f"large n={key[0]} m={key[1]}"
        cp = cur_by_key.get(key)
        if cp is None:
            warnings.append(f"{label}: point missing from current run")
            continue
        if bp.get("completed", 1) == 1 and cp.get("completed", 1) != 1:
            failures.append(f"{label}/completed: 1 -> {cp.get('completed')}")
            lines.append(f"  [FAIL] {label}/completed: 1 -> {cp.get('completed')}")
        for name in LARGE_KEYS:
            if name == "completed" or name not in bp:
                continue
            if name not in cp:
                warnings.append(f"{label}/{name}: not recorded by current run")
                continue
            b, c = bp[name], cp[name]
            if b <= 0:
                continue
            growth = (c - b) / b
            tag = "ok"
            if growth > threshold:
                tag = "FAIL"
                failures.append(
                    f"{label}/{name}: {b} -> {c} (+{growth:.1%} > {threshold:.0%})")
            elif growth < 0:
                tag = "improved"
            lines.append(f"  [{tag}] {label}/{name}: {b} -> {c} ({growth:+.1%})")
        for name in LARGE_WALL_KEYS:
            b, c = bp.get(name), cp.get(name)
            if b and c and b > 0:
                drift = (c - b) / b
                if abs(drift) > wall_threshold:
                    warnings.append(
                        f"{label}/{name} drifted {drift:+.1%} ({b} -> {c}) — "
                        "machine numbers are advisory, check the work "
                        "counters above")
                lines.append(f"  [wall] {label}/{name}: {b} -> {c} ({drift:+.1%})")
    return failures, warnings, lines


def compare_service(base_svc, cur_svc, threshold, wall_threshold):
    """Gates the deterministic closed-loop svc.* counters; latency advisory."""
    failures, warnings, lines = [], [], []
    if not base_svc:
        return failures, warnings, lines
    if not cur_svc:
        warnings.append("service section missing from current run (skipped)")
        return failures, warnings, lines
    base_c = base_svc.get("service_closed_loop", {}).get("counters", {})
    cur_c = cur_svc.get("service_closed_loop", {}).get("counters", {})
    for name in SVC_KEYS:
        if name not in base_c:
            continue
        if name not in cur_c:
            warnings.append(f"service/{name}: not recorded by current run")
            continue
        b, c = base_c[name], cur_c[name]
        if b <= 0:
            # Zero-valued failure counters must STAY zero: the closed loop
            # has no legitimate source of failures or rejections.
            if c > b:
                failures.append(f"service/{name}: {b} -> {c} (was zero)")
                lines.append(f"  [FAIL] service/{name}: {b} -> {c}")
            continue
        growth = (c - b) / b
        tag = "ok"
        if growth > threshold:
            tag = "FAIL"
            failures.append(
                f"service/{name}: {b} -> {c} (+{growth:.1%} > {threshold:.0%})")
        elif growth < 0:
            tag = "improved"
        lines.append(f"  [{tag}] service/{name}: {b} -> {c} ({growth:+.1%})")
    base_s = base_svc.get("service_closed_loop", {}).get("summary", {})
    cur_s = cur_svc.get("service_closed_loop", {}).get("summary", {})
    for name in ("p50_ms", "p99_ms", "throughput_rps"):
        b, c = base_s.get(name), cur_s.get(name)
        if b and c and b > 0:
            drift = (c - b) / b
            if abs(drift) > wall_threshold:
                warnings.append(
                    f"service/{name} drifted {drift:+.1%} ({b} -> {c}) — "
                    "latency/throughput are advisory, check svc.* above")
            lines.append(f"  [wall] service/{name}: {b} -> {c} ({drift:+.1%})")
    return failures, warnings, lines


def compare_stream(base_st, cur_st, threshold, wall_threshold):
    """Gates the deterministic stream.*/check.* counters of the churn point."""
    failures, warnings, lines = [], [], []
    if not base_st:
        return failures, warnings, lines
    if not cur_st:
        warnings.append("stream_churn section missing from current run (skipped)")
        return failures, warnings, lines

    def gate(section, keys, base_d, cur_d):
        for name in keys:
            if name not in base_d:
                continue
            if name not in cur_d:
                warnings.append(f"{section}/{name}: not recorded by current run")
                continue
            b, c = base_d[name], cur_d[name]
            if b <= 0:
                # check.index_divergence (and friends) must stay zero: a
                # divergence appearing is the index bug this gate exists for.
                if c > b:
                    failures.append(f"{section}/{name}: {b} -> {c} (was zero)")
                    lines.append(f"  [FAIL] {section}/{name}: {b} -> {c}")
                continue
            growth = (c - b) / b
            tag = "ok"
            if growth > threshold:
                tag = "FAIL"
                failures.append(
                    f"{section}/{name}: {b} -> {c} (+{growth:.1%} > {threshold:.0%})")
            elif growth < 0:
                tag = "improved"
            lines.append(f"  [{tag}] {section}/{name}: {b} -> {c} ({growth:+.1%})")

    gate("stream", STREAM_KEYS, base_st.get("counters", {}),
         cur_st.get("counters", {}))
    gate("stream", STREAM_SUMMARY_KEYS, base_st.get("summary", {}),
         cur_st.get("summary", {}))
    cost_b = base_st.get("cost", {})
    cost_c = cur_st.get("cost", {})
    if cost_b:
        flat_b = {"cost.work_units": cost_b.get("work_units", 0)}
        flat_b.update({f"cost.total.{k}": v
                       for k, v in cost_b.get("total", {}).items()})
        flat_c = {"cost.work_units": cost_c.get("work_units", 0)}
        flat_c.update({f"cost.total.{k}": v
                       for k, v in cost_c.get("total", {}).items()})
        gate("stream", tuple(sorted(flat_b)), flat_b, flat_c)
    # Throughput is deterministic too but a ratio; drift is advisory with
    # the work counters above as the authority.
    b = base_st.get("summary", {}).get("stream.tags_per_sec")
    c = cur_st.get("summary", {}).get("stream.tags_per_sec")
    if b and c and b > 0:
        drift = (c - b) / b
        if abs(drift) > wall_threshold:
            warnings.append(
                f"stream/tags_per_sec drifted {drift:+.1%} ({b} -> {c}) — "
                "check the stream.* counters above")
        lines.append(f"  [wall] stream/tags_per_sec: {b} -> {c} ({drift:+.1%})")
    bw, cw = base_st.get("wall_ms"), cur_st.get("wall_ms")
    if bw and cw and bw > 0:
        drift = (cw - bw) / bw
        if abs(drift) > wall_threshold:
            warnings.append(
                f"stream/wall_ms drifted {drift:+.1%} ({bw} -> {cw} ms) — "
                "wall clock is advisory, check the work counters above")
        lines.append(f"  [wall] stream/wall_ms: {bw} -> {cw} ({drift:+.1%})")
    return failures, warnings, lines


def selftest(base_entry, threshold, wall_threshold):
    """The gate must flag a seeded +5% work regression and pass a clean copy."""
    seeded = copy.deepcopy(base_entry)
    touched = 0
    for mode in seeded.get("cli_mcs_n2000", {}).values():
        for k in DET_KEYS:
            if isinstance(mode.get(k), (int, float)) and mode[k] > 0:
                mode[k] = type(mode[k])(mode[k] * 1.05) + 1
                touched += 1
        if "cost" in mode:
            mode["cost"]["work_units"] = int(mode["cost"]["work_units"] * 1.05) + 1
            mode["cost"]["total"] = {
                k: int(v * 1.05) + 1 for k, v in mode["cost"]["total"].items()}
            touched += 1
    svc = seeded.get("service", {}).get("service_closed_loop", {}).get(
        "counters", {})
    for k in SVC_KEYS:
        if isinstance(svc.get(k), (int, float)) and svc[k] > 0:
            svc[k] = type(svc[k])(svc[k] * 1.05) + 1
            touched += 1
    st = seeded.get("stream_churn", {})
    for k in STREAM_KEYS:
        v = st.get("counters", {}).get(k)
        if isinstance(v, (int, float)) and v > 0:
            st["counters"][k] = type(v)(v * 1.05) + 1
            touched += 1
    # The zero-stays-zero rule must have teeth for the divergence counter.
    if "counters" in st and st["counters"].get("check.index_divergence") == 0:
        st["counters"]["check.index_divergence"] = 1
        touched += 1
    for pt in seeded.get("large_mcs", []):
        for k in LARGE_KEYS:
            if k != "completed" and isinstance(pt.get(k), (int, float)) and pt[k] > 0:
                pt[k] = type(pt[k])(pt[k] * 1.05) + 1
                touched += 1
    for pt in seeded.get("gen2_variants", []):
        for k in GEN2_KEYS:
            if isinstance(pt.get(k), (int, float)) and pt[k] > 0:
                pt[k] = type(pt[k])(pt[k] * 1.05) + 1
                touched += 1
        # Zero-stays-zero must have teeth for the double-ack counter too.
        if pt.get("double_id") == 0:
            pt["double_id"] = 1
            touched += 1
    if touched == 0:
        print("selftest: baseline entry has no deterministic counters", file=sys.stderr)
        return False
    fail_seeded, _, _ = compare(base_entry, seeded, threshold, wall_threshold)
    fail_clean, _, _ = compare(base_entry, copy.deepcopy(base_entry),
                               threshold, wall_threshold)
    ok = bool(fail_seeded) and not fail_clean
    print(f"selftest: seeded +5% regression flagged on {len(fail_seeded)} "
          f"counters, clean copy flagged on {len(fail_clean)} — "
          f"{'OK' if ok else 'BROKEN GATE'}")
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", default="BENCH_PR6.json")
    ap.add_argument("--baseline-label", default="pr6")
    ap.add_argument("--record", metavar="BUILD_DIR",
                    help="run tools/bench_record.sh against this build dir")
    ap.add_argument("--service-record", metavar="BUILD_DIR",
                    help="re-run only the fixed closed-loop service point "
                         "(rfidsched_load) and gate its svc.* counters")
    ap.add_argument("--stream-record", metavar="BUILD_DIR",
                    help="re-run only the fixed streaming churn point "
                         "(rfidsched_cli --mode stream) and gate its "
                         "stream.*/check.* counters")
    ap.add_argument("--gen2-record", metavar="BUILD_DIR",
                    help="re-run only the Gen2 link-variant points "
                         "(bench/gen2_variants) and gate their deterministic "
                         "fields")
    ap.add_argument("--current", metavar="OUT_JSON",
                    help="compare an already-recorded document instead")
    ap.add_argument("--current-label", default="current")
    ap.add_argument("--threshold", type=float, default=0.02)
    ap.add_argument("--wall-threshold", type=float, default=0.25)
    ap.add_argument("--selftest", action="store_true",
                    help="only verify the gate catches a seeded regression")
    args = ap.parse_args()

    try:
        doc = json.load(open(args.baseline))
    except (OSError, ValueError) as e:
        print(f"cannot load baseline {args.baseline}: {e}", file=sys.stderr)
        return 2
    if args.baseline_label not in doc:
        print(f"label '{args.baseline_label}' not in {args.baseline} "
              f"(has: {', '.join(sorted(doc))})", file=sys.stderr)
        return 2
    base_entry = doc[args.baseline_label]

    if args.selftest:
        return 0 if selftest(base_entry, args.threshold, args.wall_threshold) else 1

    if sum(map(bool, (args.record, args.service_record, args.stream_record,
                      args.gen2_record, args.current))) != 1:
        print("give exactly one of --record BUILD_DIR / "
              "--service-record BUILD_DIR / --stream-record BUILD_DIR / "
              "--gen2-record BUILD_DIR / --current OUT.json",
              file=sys.stderr)
        return 2

    if args.gen2_record:
        bench = os.path.join(args.gen2_record, "bench", "gen2_variants")
        try:
            raw = subprocess.check_output([bench, "2"], text=True)
        except (OSError, subprocess.CalledProcessError) as e:
            print(f"gen2 point failed: {e}", file=sys.stderr)
            return 2
        cur_pts = []
        for line in raw.splitlines():
            if not line.startswith("gen2point "):
                continue
            point = {}
            for kv in line.split()[1:]:
                k, _, v = kv.partition("=")
                try:
                    point[k] = int(v)
                except ValueError:
                    point[k] = v
            cur_pts.append(point)
        failures, warnings, lines = compare_gen2(
            base_entry.get("gen2_variants"), cur_pts, args.threshold)
        print(f"bench_compare (gen2 points): {args.baseline}"
              f"[{args.baseline_label}]")
        for line in lines:
            print(line)
        for w in warnings:
            print(f"warning: {w}")
        if not lines and not failures:
            print("warning: baseline has no gen2_variants section — "
                  "nothing gated", file=sys.stderr)
        if failures:
            print(f"\nFAIL: {len(failures)} gen2 counter(s) regressed:")
            for f in failures:
                print(f"  {f}")
            return 1
        print("\nPASS: gen2 link-variant counters match the baseline")
        return 0

    if args.stream_record:
        cli = os.path.join(args.stream_record, "tools", "rfidsched_cli")
        with tempfile.TemporaryDirectory() as td:
            mpath = os.path.join(td, "m.json")
            cpath = os.path.join(td, "c.json")
            cmd = [cli, *STREAM_POINT, "--metrics", mpath, "--cost", cpath]
            try:
                subprocess.check_output(cmd, text=True)
                metrics = json.load(open(mpath))
                cost_total = json.load(open(cpath)).get("total", {})
            except (OSError, ValueError, subprocess.CalledProcessError) as e:
                print(f"stream point failed: {e}", file=sys.stderr)
                return 2
        cur_st = {
            "counters": {k: v for k, v in metrics.get("counters", {}).items()
                         if k.startswith(("stream.", "check.", "mcs.",
                                          "sched."))},
            "summary": {k: v for k, v in metrics.get("gauges", {}).items()
                        if k.startswith("stream.")},
        }
        if cost_total:
            cur_st["cost"] = {
                "work_units": (cost_total.get("weight_evals", 0)
                               + cost_total.get("queue_work", 0)
                               + cost_total.get("dp_entries", 0)
                               + cost_total.get("bnb_nodes", 0)),
                "total": cost_total,
            }
        failures, warnings, lines = compare_stream(
            base_entry.get("stream_churn"), cur_st,
            args.threshold, args.wall_threshold)
        print(f"bench_compare (stream point): {args.baseline}"
              f"[{args.baseline_label}]")
        for line in lines:
            print(line)
        for w in warnings:
            print(f"warning: {w}")
        if not lines and not failures:
            print("warning: baseline has no stream_churn section — "
                  "nothing gated", file=sys.stderr)
        if failures:
            print(f"\nFAIL: {len(failures)} stream counter(s) regressed:")
            for f in failures:
                print(f"  {f}")
            return 1
        print("\nPASS: streaming churn counters match the baseline")
        return 0

    if args.service_record:
        here = os.path.dirname(os.path.abspath(__file__))
        load = os.path.join(args.service_record, "tools", "rfidsched_load")
        cmd = [load, *SERVICE_POINT,
               "--fault", os.path.join(here, "soak_fault.plan")]
        try:
            raw = subprocess.check_output(cmd, text=True)
        except (OSError, subprocess.CalledProcessError) as e:
            print(f"service point failed: {e}", file=sys.stderr)
            return 2
        point = json.loads(raw)
        # Closed mode emits {"mode","summary","counters"}; wrap it in the
        # shape bench_record.sh stores so compare_service sees one schema.
        cur_svc = {"service_closed_loop": {"summary": point.get("summary", {}),
                                           "counters": point.get("counters", {})}}
        failures, warnings, lines = compare_service(
            base_entry.get("service"), cur_svc,
            args.threshold, args.wall_threshold)
        print(f"bench_compare (service point): {args.baseline}"
              f"[{args.baseline_label}]")
        for line in lines:
            print(line)
        for w in warnings:
            print(f"warning: {w}")
        if not lines and not failures:
            print("warning: baseline has no service section — nothing gated",
                  file=sys.stderr)
        if failures:
            print(f"\nFAIL: {len(failures)} service counter(s) regressed:")
            for f in failures:
                print(f"  {f}")
            return 1
        print("\nPASS: closed-loop service counters match the baseline")
        return 0

    if args.record:
        here = os.path.dirname(os.path.abspath(__file__))
        with tempfile.TemporaryDirectory() as td:
            out = os.path.join(td, "current.json")
            rc = subprocess.call([os.path.join(here, "bench_record.sh"),
                                  args.record, args.current_label, out])
            if rc != 0:
                print(f"bench_record.sh failed with exit {rc}", file=sys.stderr)
                return 2
            cur_doc = json.load(open(out))
    else:
        try:
            cur_doc = json.load(open(args.current))
        except (OSError, ValueError) as e:
            print(f"cannot load {args.current}: {e}", file=sys.stderr)
            return 2
    if args.current_label not in cur_doc:
        print(f"label '{args.current_label}' not in current document", file=sys.stderr)
        return 2

    failures, warnings, lines = compare(base_entry, cur_doc[args.current_label],
                                        args.threshold, args.wall_threshold)
    print(f"bench_compare: {args.baseline}[{args.baseline_label}] vs "
          f"{args.current_label}")
    for line in lines:
        print(line)
    for w in warnings:
        print(f"warning: {w}")
    if failures:
        print(f"\nFAIL: {len(failures)} deterministic counter(s) regressed "
              f"beyond {args.threshold:.0%}:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nPASS: no deterministic work-unit counter grew beyond "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
