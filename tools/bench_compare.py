#!/usr/bin/env python3
"""bench_compare.py — the perf-regression gate over deterministic work units.

    tools/bench_compare.py --baseline BENCH_PR6.json --baseline-label pr6 \
        [--record BUILD_DIR | --current OUT.json] [--current-label current] \
        [--threshold 0.02] [--wall-threshold 0.25] [--selftest]

Compares a fresh bench_record.sh run (--record builds one into a temp file)
or a previously recorded document (--current) against the committed baseline
entry.  The gate is over the *deterministic* counters recorded per CLI mode
(sched.*/core.*/mcs.* work counters and the cost-ledger work units): any
counter that GREW by more than --threshold (default 2%) fails the gate,
because those numbers depend only on (deployment, algorithm, seed) — growth
is a real algorithmic regression, never jitter.  Decreases pass (and are
reported as improvements).  Wall-clock numbers can jitter with the machine,
so they only WARN when they drift beyond --wall-threshold (default 25%).

--selftest proves the gate has teeth without a live run: it seeds a +5%
work-unit regression into a copy of the baseline entry and requires the
comparison to fail, then requires the unmodified entry to pass clean.

Exit codes: 0 gate passed; 1 regression (or selftest failure); 2 bad usage.
"""
import argparse
import copy
import json
import os
import subprocess
import sys
import tempfile

# Deterministic per-mode counters: growth beyond the threshold fails.
DET_KEYS = (
    "sched.weight_evals",
    "sched.schedule_calls",
    "core.weight_evals",
    "mcs.slots",
    "mcs.tags_read",
)


def det_counters(mode_entry):
    """Flatten one cli_mcs_n2000 mode entry to {name: value} deterministic counters."""
    out = {}
    for k in DET_KEYS:
        if k in mode_entry:
            out[k] = mode_entry[k]
    cost = mode_entry.get("cost")
    if cost:
        out["cost.work_units"] = cost.get("work_units", 0)
        for k, v in sorted(cost.get("total", {}).items()):
            out[f"cost.total.{k}"] = v
    return out


def compare(base_entry, cur_entry, threshold, wall_threshold):
    """Returns (failures, warnings, lines) comparing two bench_record entries."""
    failures, warnings, lines = [], [], []
    base_modes = base_entry.get("cli_mcs_n2000", {})
    cur_modes = cur_entry.get("cli_mcs_n2000", {})
    for mode in sorted(base_modes):
        if mode not in cur_modes:
            warnings.append(f"mode '{mode}' missing from current run (skipped)")
            continue
        base_c = det_counters(base_modes[mode])
        cur_c = det_counters(cur_modes[mode])
        for name in sorted(base_c):
            if name not in cur_c:
                warnings.append(f"{mode}/{name}: not recorded by current run")
                continue
            b, c = base_c[name], cur_c[name]
            if b <= 0:
                continue
            growth = (c - b) / b
            tag = "ok"
            if growth > threshold:
                tag = "FAIL"
                failures.append(
                    f"{mode}/{name}: {b} -> {c} (+{growth:.1%} > {threshold:.0%})")
            elif growth < 0:
                tag = "improved"
            lines.append(f"  [{tag}] {mode}/{name}: {b} -> {c} ({growth:+.1%})")
        bw = base_modes[mode].get("wall_ms")
        cw = cur_modes[mode].get("wall_ms")
        if bw and cw and bw > 0:
            drift = (cw - bw) / bw
            if abs(drift) > wall_threshold:
                warnings.append(
                    f"{mode}/wall_ms drifted {drift:+.1%} ({bw} -> {cw} ms) — "
                    "wall clock is advisory, check the work counters above")
            lines.append(f"  [wall] {mode}/wall_ms: {bw} -> {cw} ({drift:+.1%})")
    return failures, warnings, lines


def selftest(base_entry, threshold, wall_threshold):
    """The gate must flag a seeded +5% work regression and pass a clean copy."""
    seeded = copy.deepcopy(base_entry)
    touched = 0
    for mode in seeded.get("cli_mcs_n2000", {}).values():
        for k in DET_KEYS:
            if isinstance(mode.get(k), (int, float)) and mode[k] > 0:
                mode[k] = type(mode[k])(mode[k] * 1.05) + 1
                touched += 1
        if "cost" in mode:
            mode["cost"]["work_units"] = int(mode["cost"]["work_units"] * 1.05) + 1
            mode["cost"]["total"] = {
                k: int(v * 1.05) + 1 for k, v in mode["cost"]["total"].items()}
            touched += 1
    if touched == 0:
        print("selftest: baseline entry has no deterministic counters", file=sys.stderr)
        return False
    fail_seeded, _, _ = compare(base_entry, seeded, threshold, wall_threshold)
    fail_clean, _, _ = compare(base_entry, copy.deepcopy(base_entry),
                               threshold, wall_threshold)
    ok = bool(fail_seeded) and not fail_clean
    print(f"selftest: seeded +5% regression flagged on {len(fail_seeded)} "
          f"counters, clean copy flagged on {len(fail_clean)} — "
          f"{'OK' if ok else 'BROKEN GATE'}")
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", default="BENCH_PR6.json")
    ap.add_argument("--baseline-label", default="pr6")
    ap.add_argument("--record", metavar="BUILD_DIR",
                    help="run tools/bench_record.sh against this build dir")
    ap.add_argument("--current", metavar="OUT_JSON",
                    help="compare an already-recorded document instead")
    ap.add_argument("--current-label", default="current")
    ap.add_argument("--threshold", type=float, default=0.02)
    ap.add_argument("--wall-threshold", type=float, default=0.25)
    ap.add_argument("--selftest", action="store_true",
                    help="only verify the gate catches a seeded regression")
    args = ap.parse_args()

    try:
        doc = json.load(open(args.baseline))
    except (OSError, ValueError) as e:
        print(f"cannot load baseline {args.baseline}: {e}", file=sys.stderr)
        return 2
    if args.baseline_label not in doc:
        print(f"label '{args.baseline_label}' not in {args.baseline} "
              f"(has: {', '.join(sorted(doc))})", file=sys.stderr)
        return 2
    base_entry = doc[args.baseline_label]

    if args.selftest:
        return 0 if selftest(base_entry, args.threshold, args.wall_threshold) else 1

    if bool(args.record) == bool(args.current):
        print("give exactly one of --record BUILD_DIR / --current OUT.json",
              file=sys.stderr)
        return 2

    if args.record:
        here = os.path.dirname(os.path.abspath(__file__))
        with tempfile.TemporaryDirectory() as td:
            out = os.path.join(td, "current.json")
            rc = subprocess.call([os.path.join(here, "bench_record.sh"),
                                  args.record, args.current_label, out])
            if rc != 0:
                print(f"bench_record.sh failed with exit {rc}", file=sys.stderr)
                return 2
            cur_doc = json.load(open(out))
    else:
        try:
            cur_doc = json.load(open(args.current))
        except (OSError, ValueError) as e:
            print(f"cannot load {args.current}: {e}", file=sys.stderr)
            return 2
    if args.current_label not in cur_doc:
        print(f"label '{args.current_label}' not in current document", file=sys.stderr)
        return 2

    failures, warnings, lines = compare(base_entry, cur_doc[args.current_label],
                                        args.threshold, args.wall_threshold)
    print(f"bench_compare: {args.baseline}[{args.baseline_label}] vs "
          f"{args.current_label}")
    for line in lines:
        print(line)
    for w in warnings:
        print(f"warning: {w}")
    if failures:
        print(f"\nFAIL: {len(failures)} deterministic counter(s) regressed "
              f"beyond {args.threshold:.0%}:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nPASS: no deterministic work-unit counter grew beyond "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
