#!/bin/sh
# service_soak.sh — soak the scheduler daemon under chaos, then SIGTERM it
# mid-flight and require a clean graceful drain.
#
#   tools/service_soak.sh <build-dir> [seconds]
#
# Starts rfidsched_serve with the soak fault plan, stall watchdog, retries,
# and checkpointing enabled, then feeds it a continuous request stream
# through a fifo: every batch carries one request that wedges its first
# attempt (watchdog bait), mild pacing, and a fresh seed.  Batch ids repeat
# on purpose, so journals left by cancelled requests get resumed against a
# *different* deployment — exercising the integrity fail-closed + retry
# path on top of the stall path.  Halfway through the soak window the
# daemon gets SIGTERM.
#
# Assertions:
#   * the daemon exits 6 (signal + clean drain) — 7 would mean a worker
#     hung past the drain deadline;
#   * the drain report says hung=0 and (clean);
#   * every response line is valid JSON (one response per request, even
#     under parse errors, shedding, and the mid-stream kill).
#
# Exit codes: 0 soak passed; 1 an assertion failed; 2 bad usage.
set -eu

BUILD_DIR=${1:?usage: service_soak.sh <build-dir> [seconds]}
DUR=${2:-60}
SERVE="$BUILD_DIR/tools/rfidsched_serve"
LOAD="$BUILD_DIR/tools/rfidsched_load"
PLAN="$(dirname "$0")/soak_fault.plan"
[ -x "$SERVE" ] || { echo "missing $SERVE (build rfidsched_serve)"; exit 2; }
[ -x "$LOAD" ] || { echo "missing $LOAD (build rfidsched_load)"; exit 2; }

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
FIFO="$TMP/req.fifo"
mkfifo "$FIFO"
mkdir -p "$TMP/ckpt"

"$SERVE" --workers 2 --queue 8 --stall-ms 250 --watchdog-ms 5 --retries 2 \
  --fault "$PLAN" --ckpt-dir "$TMP/ckpt" --snapshot-every 4 \
  --drain-ms 3000 --mask-wall --metrics "$TMP/metrics.json" \
  --prom "$TMP/metrics.prom" \
  < "$FIFO" > "$TMP/resp.jsonl" 2> "$TMP/serve.err" &
SERVE_PID=$!

# Hold the fifo's write end open for the whole soak so EOF never races the
# feeder, then pump request batches into it until the window closes.
exec 9> "$FIFO"
(
  end=$(( $(date +%s) + DUR ))
  i=0
  while [ "$(date +%s)" -lt "$end" ]; do
    "$LOAD" --mode emit --requests 3 --readers 20 --tags 300 --side 60 \
      --seed "$i" --hang-first 5000 --pace-ms 2 || break
    i=$((i + 1))
    sleep 1
  done >&9
) &
FEED_PID=$!

sleep $(( DUR / 2 ))
echo "soak: sending SIGTERM to the daemon after $(( DUR / 2 ))s"
kill -TERM "$SERVE_PID"

rc=0
wait "$SERVE_PID" || rc=$?
kill "$FEED_PID" 2> /dev/null || true
wait "$FEED_PID" 2> /dev/null || true
exec 9>&-

echo "soak: daemon exited $rc"
cat "$TMP/serve.err"

fail=0
if [ "$rc" -ne 6 ]; then
  echo "FAIL: expected exit 6 (signal + clean drain), got $rc"
  fail=1
fi
if ! grep -q "hung=0" "$TMP/serve.err"; then
  echo "FAIL: drain report does not say hung=0"
  fail=1
fi
if ! grep -q "(clean)" "$TMP/serve.err"; then
  echo "FAIL: drain report is not clean"
  fail=1
fi
responses=0
while IFS= read -r line; do
  [ -n "$line" ] || continue
  if ! printf '%s' "$line" | python3 -m json.tool > /dev/null 2>&1; then
    echo "FAIL: malformed response line: $line"
    fail=1
  fi
  responses=$((responses + 1))
done < "$TMP/resp.jsonl"
echo "soak: $responses response lines, all JSON-valid"
if [ "$responses" -lt 1 ]; then
  echo "FAIL: the daemon produced no responses"
  fail=1
fi
[ "$fail" -eq 0 ] && echo "soak: PASS" || echo "soak: FAIL"
exit "$fail"
