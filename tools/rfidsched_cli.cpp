// rfidsched_cli — run any scenario × algorithm from the command line.
//
//   rfidsched_cli [--algo alg1|alg2|alg3|ghc|ca|exact|mc]
//                 [--mode oneshot|mcs|stream] [--readers N] [--tags M]
//                 [--side S] [--lambda-R X] [--lambda-r Y] [--seed S]
//                 [--layout uniform|clusters|aisles|grid]
//                 [--channels C] [--rho R] [--k K] [--svg PATH]
//                 [--save PATH] [--load PATH] [--fault PATH]
//                 [--metrics PATH] [--trace PATH] [--jsonl PATH]
//                 [--cost PATH] [--prom PATH]
//                 [--checkpoint PATH] [--resume]
//                 [--deadline-ms N] [--max-slots N]
//                 [--threads N] [--ref-eval] [--check[=paranoid]]
//
// --threads caps the worker threads the parallel schedulers (alg1 shift
// fan-out, alg2 component fan-out) may use; 0 picks the hardware
// concurrency.  --ref-eval runs the retained reference selection paths
// (full rescans, sequential shifts) instead of the lazy/parallel hot paths
// — the schedules are identical either way (docs/performance.md), the flag
// exists for benchmarking and equivalence checks.
//
// Prints a human-readable report; --svg additionally renders the (first)
// slot decision.  --save writes the generated deployment to PATH (CSV) and
// --load runs on a previously saved deployment instead of generating one,
// so a site survey can be replayed against every algorithm.
//
// --fault loads a fault::FaultPlan text spec (grammar in docs/faults.md)
// and replays its reader crashes, link losses, and interrogation misses
// against the run; mcs mode then prints the degradation summary (slots
// lost, crashed activations, orphaned tags, achieved vs. ideal coverage).
//
// Observability: --metrics writes a JSON metrics dump (counters / gauges /
// histograms from the scheduler, the MCS driver, the System referee, and
// the network simulator), --trace writes a Chrome trace_event file for
// chrome://tracing, and --jsonl writes the same events as JSON-lines.
// --cost writes the deterministic per-phase / per-slot cost-attribution
// ledger (bit-identical across --threads counts), --prom writes the metrics
// as Prometheus text exposition.  All telemetry sinks are flushed on the
// early-exit paths too (budget exit 3, checkpoint-integrity exit 4,
// invariant-violation exit 5), so a failed run still leaves its evidence
// behind for rfidsched_report.  See docs/observability.md.
//
// Crash safety and budgets (mcs mode only; docs/recovery.md):
// --checkpoint journals every committed slot to PATH (snapshot sidecar at
// PATH.snap); --resume validates and replays an existing journal and
// continues — resumed output is byte-identical to an uninterrupted run
// (checkpoint chatter goes to stderr so stdout stays diffable).
// --deadline-ms / --max-slots bound the run; an expiring budget returns
// the valid best-so-far schedule marked interrupted.
//
// Streaming (--mode stream, or the --stream shorthand; docs/streaming.md):
// the population churns while the schedule runs.  Tag arrivals, departures,
// and moves come from a generated Poisson/bursty-MMPP trace (--arrival-rate,
// --depart-rate, --move-rate, --stream-slots, --burst) or a file (--churn);
// the driver patches the coverage index incrementally, an index oracle
// periodically re-derives it from raw geometry and self-heals divergences,
// and overload control (--max-backlog, --shed-after, --shed-policy) sheds
// load instead of letting backlog grow without bound.  --checkpoint/--resume
// work as in mcs mode with the churn trace folded into the journal identity.
//
// --check arms the runtime invariant oracle (docs/testing.md): every slot
// is re-verified from first principles — independence from raw geometry,
// the served set by a naive exactly-one-coverage scan, monotone read-state
// growth, MCS postconditions — against the faulted referee when --fault is
// given, and across replayed slots when resuming.  --check=paranoid adds
// whole-bitmap and referee cross-checks at every slot.  Verdicts go to
// stderr so stdout stays byte-identical to an unchecked run; overhead is
// visible in the check.* metrics.
//
// Exit codes:
//   0  success
//   2  bad usage / bad configuration (the offending flag is named)
//   3  run interrupted by --deadline-ms / --max-slots — or by SIGTERM/SIGINT,
//      which ride the same cooperative-cancel path: the driver stops at the
//      next slot boundary, telemetry flushes, and the journal (with
//      --checkpoint) is left resumable instead of torn mid-write
//      (result still valid and, with --checkpoint, resumable)
//   4  checkpoint integrity failure (corrupt journal, identity mismatch,
//      replay divergence, journal write error)
//   5  invariant violation detected by --check
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <limits>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/svg.h"
#include "check/index_oracle.h"
#include "check/invariants.h"
#include "ckpt/budget.h"
#include "ckpt/mcs_ckpt.h"
#include "distributed/colorwave.h"
#include "fault/channel_model.h"
#include "fault/fault_plan.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "protocol/gen2.h"
#include "protocol/slot_timing.h"
#include "sched/channels.h"
#include "sched/exact.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "sched/streaming.h"
#include "service/queue.h"
#include "service/signals.h"
#include "workload/churn.h"
#include "workload/io.h"
#include "workload/scenario.h"

namespace {

struct Cli {
  std::string algo = "alg2";
  std::string mode = "mcs";
  std::string layout = "uniform";
  std::string svg_path;
  std::string save_path;     // write the generated deployment and continue
  std::string load_path;     // run on a saved deployment instead of generating
  std::string metrics_path;  // JSON metrics dump
  std::string trace_path;    // Chrome trace_event JSON
  std::string jsonl_path;    // JSONL event log
  std::string cost_path;     // deterministic cost-attribution ledger (JSON)
  std::string prom_path;     // Prometheus text exposition of the metrics
  std::string fault_path;    // fault plan text spec
  std::string ckpt_path;     // slot journal (snapshot rides at PATH.snap)
  bool resume = false;       // replay + continue an existing journal
  int deadline_ms = -1;      // wall-clock budget (-1 = unset, 0 allowed)
  int max_slots = 0;         // committed-slot budget (0 = unset)
  int readers = 50;
  int tags = 1200;
  double side = 100.0;
  double lambda_R = 10.0;
  double lambda_r = 4.0;
  std::uint64_t seed = 1;
  int channels = 2;
  double rho = 1.25;
  int k = 4;
  int threads = 0;       // 0 = hardware concurrency
  bool ref_eval = false; // reference selection paths (oracle / baseline)
  bool check = false;           // arm the invariant oracle
  bool check_paranoid = false;  // per-slot bitmap/referee cross-checks
  // Streaming (--mode stream only).
  std::string churn_path;       // load a churn trace instead of generating
  std::string save_churn_path;  // write the generated churn trace (CSV)
  double arrival_rate = 5.0;    // Poisson tag arrivals per stream slot
  double depart_rate = 0.0;     // Poisson departures per stream slot
  double move_rate = 0.0;       // Poisson moves per stream slot
  int stream_slots = 100;       // generated trace horizon (slots of churn)
  double burst = 1.0;           // MMPP burst arrival-rate multiplier
  double burst_enter = 0.05;    // P(enter burst) per slot
  double burst_exit = 0.25;     // P(leave burst) per slot
  int max_backlog = 0;          // shed unread coverable tags above this (0=off)
  int shed_after = 0;           // shed tags unread for more slots (0=off)
  std::string shed_policy = "newest";  // newest|largest
  int oracle_every = 64;        // index-oracle cadence in structural epochs
  // Link-layer co-simulation (docs/protocol.md).  "unit" is the paper's
  // unit-cost slot and leaves every output byte-identical to a pre-link run.
  std::string link = "unit";         // unit|aloha|tree|gen2
  int gen2_q0 = 4;                   // initial Q (frame 2^Q)
  double gen2_c = 0.3;               // Q-algorithm step
  std::string gen2_session = "s2";   // s0|s1|s2|s3
  int gen2_mpr = 1;                  // MPR capability (<=1 = plain Gen2)
  int gen2_persistence = 16;         // S2/S3 flag persistence (macro-slots)
  std::string gen2_policy = "qalg";  // qalg|afsa
};

void usage() {
  std::cerr <<
      "usage: rfidsched_cli [--algo alg1|alg2|alg3|ghc|ca|exact|mc]\n"
      "                     [--mode oneshot|mcs|stream] [--readers N] [--tags M]\n"
      "                     [--side S] [--lambda-R X] [--lambda-r Y]\n"
      "                     [--seed S] [--layout uniform|clusters|aisles|grid]\n"
      "                     [--channels C] [--rho R] [--k K] [--svg PATH]\n"
      "                     [--save PATH] [--load PATH] [--fault PATH]\n"
      "                     [--metrics PATH] [--trace PATH] [--jsonl PATH]\n"
      "                     [--cost PATH] [--prom PATH]\n"
      "                     [--checkpoint PATH] [--resume]\n"
      "                     [--deadline-ms N] [--max-slots N]\n"
      "\n"
      "  --save PATH     write the generated deployment to PATH (CSV), then run\n"
      "  --load PATH     run on a saved deployment instead of generating one\n"
      "  --fault PATH    inject the fault plan at PATH (spec: docs/faults.md)\n"
      "  --metrics PATH  write scheduler/driver/referee metrics as JSON\n"
      "  --trace PATH    write a Chrome trace_event file (chrome://tracing)\n"
      "  --jsonl PATH    write the trace as JSON-lines (one event per line)\n"
      "  --cost PATH     write the deterministic cost-attribution ledger\n"
      "                  (per-phase and per-slot work units; bit-identical\n"
      "                  across --threads counts)\n"
      "  --prom PATH     write the metrics as Prometheus text exposition\n"
      "  --checkpoint P  journal committed MCS slots to P (crash-safe;\n"
      "                  docs/recovery.md); refuses to overwrite an existing\n"
      "                  journal unless --resume is given\n"
      "  --resume        validate + replay the journal at --checkpoint and\n"
      "                  continue; resumed output is byte-identical to an\n"
      "                  uninterrupted run\n"
      "  --deadline-ms N stop after N ms wall clock with the best-so-far\n"
      "                  schedule (mcs mode only)\n"
      "  --max-slots N   stop after N committed slots (mcs mode only)\n"
      "  --threads N     worker threads for parallel schedulers (0 = auto)\n"
      "  --ref-eval      use the reference selection paths and the CSR\n"
      "                  reference weight referee (same schedules, no\n"
      "                  lazy/parallel/bitmap speedups; for benchmarking)\n"
      "  --check         re-verify every slot from first principles (the\n"
      "                  invariant oracle, docs/testing.md); verdicts go to\n"
      "                  stderr, violations exit 5\n"
      "  --check=paranoid  additionally cross-check the read bitmap and the\n"
      "                  referee at every slot\n"
      "\n"
      "streaming (--mode stream, shorthand --stream; docs/streaming.md):\n"
      "  --arrival-rate X  Poisson tag arrivals per stream slot (default 5)\n"
      "  --depart-rate X   Poisson tag departures per stream slot (default 0)\n"
      "  --move-rate X     Poisson tag moves per stream slot (default 0)\n"
      "  --stream-slots N  churn-trace horizon in stream slots (default 100)\n"
      "  --burst X         bursty MMPP: multiply the arrival rate by X while\n"
      "                  in a burst (default 1 = plain Poisson)\n"
      "  --burst-enter P / --burst-exit P  per-slot burst entry/exit odds\n"
      "  --churn PATH      replay the churn trace at PATH instead of\n"
      "                  generating one\n"
      "  --save-churn P    write the generated churn trace to P (CSV)\n"
      "  --max-backlog N   shed unread coverable tags above N (0 = off)\n"
      "  --shed-after N    shed tags unread for more than N slots (0 = off)\n"
      "  --shed-policy newest|largest  which tags the backlog bound sheds\n"
      "  --oracle-every N  verify the incremental coverage index against raw\n"
      "                  geometry every N structural epochs (default 64;\n"
      "                  --check=paranoid verifies every iteration)\n"
      "\n"
      "link-layer co-simulation (docs/protocol.md):\n"
      "  --link L          unit|aloha|tree|gen2 (default unit = the paper's\n"
      "                  unit-cost slot, output unchanged).  mcs mode replays\n"
      "                  the schedule under the link model and reports the\n"
      "                  seconds-denominated schedule length; stream mode\n"
      "                  co-simulates gen2 online.  Incompatible with --fault\n"
      "  --gen2-q0 N       initial Q, frame size 2^Q (default 4)\n"
      "  --gen2-c X        Q-algorithm step C in (0,1] (default 0.3)\n"
      "  --gen2-session S  s0|s1|s2|s3 (default s2; s2/s3 flags persist\n"
      "                  across macro-slots so inventoried tags cost nothing)\n"
      "  --gen2-mpr K      resolve up to K colliding replies per micro-slot\n"
      "                  (default 1 = plain single-reply Gen2)\n"
      "  --gen2-persistence N  s2/s3 flag persistence in macro-slots\n"
      "                  (default 16)\n"
      "  --gen2-policy P   qalg|afsa Q-adaptation policy (default qalg)\n"
      "\n"
      "exit codes: 0 success; 2 bad usage; 3 interrupted by budget\n"
      "            (--deadline-ms/--max-slots); 4 checkpoint integrity\n"
      "            failure; 5 invariant violation (--check)\n";
}

bool parse(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto known = [&a]() {
      static const char* flags[] = {
          "--algo", "--mode", "--layout", "--svg",  "--save",
          "--load", "--metrics", "--trace", "--jsonl", "--cost",
          "--prom", "--readers",
          "--tags", "--side", "--lambda-R", "--lambda-r", "--seed",
          "--channels", "--rho", "--k", "--fault", "--checkpoint",
          "--deadline-ms", "--max-slots", "--threads",
          "--arrival-rate", "--depart-rate", "--move-rate", "--stream-slots",
          "--burst", "--burst-enter", "--burst-exit", "--churn",
          "--save-churn", "--max-backlog", "--shed-after", "--shed-policy",
          "--oracle-every", "--link", "--gen2-q0", "--gen2-c",
          "--gen2-session", "--gen2-mpr", "--gen2-persistence",
          "--gen2-policy"};
      for (const char* f : flags) {
        if (a == f) return true;
      }
      return false;
    };
    const char* v = nullptr;
    if (a == "--algo" && (v = next())) cli.algo = v;
    else if (a == "--mode" && (v = next())) cli.mode = v;
    else if (a == "--layout" && (v = next())) cli.layout = v;
    else if (a == "--svg" && (v = next())) cli.svg_path = v;
    else if (a == "--save" && (v = next())) cli.save_path = v;
    else if (a == "--load" && (v = next())) cli.load_path = v;
    else if (a == "--metrics" && (v = next())) cli.metrics_path = v;
    else if (a == "--trace" && (v = next())) cli.trace_path = v;
    else if (a == "--jsonl" && (v = next())) cli.jsonl_path = v;
    else if (a == "--cost" && (v = next())) cli.cost_path = v;
    else if (a == "--prom" && (v = next())) cli.prom_path = v;
    else if (a == "--fault" && (v = next())) cli.fault_path = v;
    else if (a == "--checkpoint" && (v = next())) cli.ckpt_path = v;
    else if (a == "--resume") cli.resume = true;
    else if (a == "--deadline-ms" && (v = next())) cli.deadline_ms = std::atoi(v);
    else if (a == "--max-slots" && (v = next())) cli.max_slots = std::atoi(v);
    else if (a == "--readers" && (v = next())) {
      // 64-bit-safe parse: a value past int range must be rejected with the
      // flag named, not wrapped into a small (or negative) count.
      const long long x = std::strtoll(v, nullptr, 10);
      if (x > std::numeric_limits<int>::max()) {
        std::cerr << "invalid value for --readers: " << v
                  << " exceeds the supported maximum "
                  << std::numeric_limits<int>::max() << "\n";
        return false;
      }
      cli.readers = static_cast<int>(x);
    }
    else if (a == "--tags" && (v = next())) {
      const long long x = std::strtoll(v, nullptr, 10);
      if (x > std::numeric_limits<int>::max()) {
        std::cerr << "invalid value for --tags: " << v
                  << " exceeds the supported maximum "
                  << std::numeric_limits<int>::max() << "\n";
        return false;
      }
      cli.tags = static_cast<int>(x);
    }
    else if (a == "--side" && (v = next())) cli.side = std::atof(v);
    else if (a == "--lambda-R" && (v = next())) cli.lambda_R = std::atof(v);
    else if (a == "--lambda-r" && (v = next())) cli.lambda_r = std::atof(v);
    else if (a == "--seed" && (v = next())) cli.seed = std::strtoull(v, nullptr, 10);
    else if (a == "--channels" && (v = next())) cli.channels = std::atoi(v);
    else if (a == "--rho" && (v = next())) cli.rho = std::atof(v);
    else if (a == "--k" && (v = next())) cli.k = std::atoi(v);
    else if (a == "--threads" && (v = next())) cli.threads = std::atoi(v);
    else if (a == "--stream") cli.mode = "stream";
    else if (a == "--arrival-rate" && (v = next())) cli.arrival_rate = std::atof(v);
    else if (a == "--depart-rate" && (v = next())) cli.depart_rate = std::atof(v);
    else if (a == "--move-rate" && (v = next())) cli.move_rate = std::atof(v);
    else if (a == "--stream-slots" && (v = next())) cli.stream_slots = std::atoi(v);
    else if (a == "--burst" && (v = next())) cli.burst = std::atof(v);
    else if (a == "--burst-enter" && (v = next())) cli.burst_enter = std::atof(v);
    else if (a == "--burst-exit" && (v = next())) cli.burst_exit = std::atof(v);
    else if (a == "--churn" && (v = next())) cli.churn_path = v;
    else if (a == "--save-churn" && (v = next())) cli.save_churn_path = v;
    else if (a == "--max-backlog" && (v = next())) cli.max_backlog = std::atoi(v);
    else if (a == "--shed-after" && (v = next())) cli.shed_after = std::atoi(v);
    else if (a == "--shed-policy" && (v = next())) cli.shed_policy = v;
    else if (a == "--oracle-every" && (v = next())) cli.oracle_every = std::atoi(v);
    else if (a == "--link" && (v = next())) cli.link = v;
    else if (a == "--gen2-q0" && (v = next())) cli.gen2_q0 = std::atoi(v);
    else if (a == "--gen2-c" && (v = next())) cli.gen2_c = std::atof(v);
    else if (a == "--gen2-session" && (v = next())) cli.gen2_session = v;
    else if (a == "--gen2-mpr" && (v = next())) cli.gen2_mpr = std::atoi(v);
    else if (a == "--gen2-persistence" && (v = next())) cli.gen2_persistence = std::atoi(v);
    else if (a == "--gen2-policy" && (v = next())) cli.gen2_policy = v;
    else if (a == "--ref-eval") cli.ref_eval = true;
    else if (a == "--check") cli.check = true;
    else if (a == "--check=paranoid") {
      cli.check = true;
      cli.check_paranoid = true;
    }
    else if (known()) {
      std::cerr << "missing value for option: " << a << "\n";
      return false;
    } else {
      std::cerr << "unknown option: " << a << "\n";
      return false;
    }
  }
  const auto reject = [](const char* flag, const char* why) {
    std::cerr << "invalid value for " << flag << ": " << why << "\n";
    return false;
  };
  if (cli.readers <= 0) return reject("--readers", "must be > 0");
  if (cli.tags < 0) return reject("--tags", "must be >= 0");
  if (cli.side <= 0) return reject("--side", "must be > 0");
  if (cli.lambda_R < 1) return reject("--lambda-R", "must be >= 1");
  if (cli.lambda_r < 1) return reject("--lambda-r", "must be >= 1");
  if (cli.k < 2) return reject("--k", "must be >= 2");
  if (cli.rho <= 1.0) return reject("--rho", "must be > 1");
  if (cli.channels < 1) return reject("--channels", "must be >= 1");
  if (cli.threads < 0) return reject("--threads", "must be >= 0");
  if (cli.deadline_ms < -1) return reject("--deadline-ms", "must be >= 0");
  if (cli.max_slots < 0) return reject("--max-slots", "must be > 0");
  if (cli.resume && cli.ckpt_path.empty()) {
    return reject("--resume", "requires --checkpoint PATH");
  }
  const bool ckpt_flags = !cli.ckpt_path.empty() || cli.deadline_ms >= 0 ||
                          cli.max_slots > 0;
  if (ckpt_flags && cli.mode != "mcs" && cli.mode != "stream") {
    return reject("--checkpoint/--deadline-ms/--max-slots",
                  "only apply to --mode mcs or stream");
  }
  if (cli.arrival_rate < 0) return reject("--arrival-rate", "must be >= 0");
  if (cli.depart_rate < 0) return reject("--depart-rate", "must be >= 0");
  if (cli.move_rate < 0) return reject("--move-rate", "must be >= 0");
  if (cli.stream_slots < 0) return reject("--stream-slots", "must be >= 0");
  if (cli.burst < 1.0) return reject("--burst", "must be >= 1");
  if (cli.burst_enter < 0 || cli.burst_enter > 1) {
    return reject("--burst-enter", "must be a probability in [0,1]");
  }
  if (cli.burst_exit < 0 || cli.burst_exit > 1) {
    return reject("--burst-exit", "must be a probability in [0,1]");
  }
  if (cli.max_backlog < 0) return reject("--max-backlog", "must be >= 0");
  if (cli.shed_after < 0) return reject("--shed-after", "must be >= 0");
  if (cli.shed_policy != "newest" && cli.shed_policy != "largest") {
    return reject("--shed-policy", "must be newest or largest");
  }
  if (cli.oracle_every < 0) return reject("--oracle-every", "must be >= 0");
  if (cli.link != "unit" && cli.link != "aloha" && cli.link != "tree" &&
      cli.link != "gen2") {
    return reject("--link", "must be unit, aloha, tree, or gen2");
  }
  if (cli.gen2_q0 < 0 || cli.gen2_q0 > 15) {
    return reject("--gen2-q0", "must be in [0, 15]");
  }
  if (cli.gen2_c <= 0.0 || cli.gen2_c > 1.0) {
    return reject("--gen2-c", "must be in (0, 1]");
  }
  if (cli.gen2_session != "s0" && cli.gen2_session != "s1" &&
      cli.gen2_session != "s2" && cli.gen2_session != "s3") {
    return reject("--gen2-session", "must be s0, s1, s2, or s3");
  }
  if (cli.gen2_mpr < 0) return reject("--gen2-mpr", "must be >= 0");
  if (cli.gen2_persistence < 0) {
    return reject("--gen2-persistence", "must be >= 0");
  }
  if (cli.gen2_policy != "qalg" && cli.gen2_policy != "afsa") {
    return reject("--gen2-policy", "must be qalg or afsa");
  }
  if (cli.link != "unit") {
    if (cli.mode == "oneshot") {
      return reject("--link", "only applies to --mode mcs or stream");
    }
    if (cli.mode == "stream" && cli.link != "gen2") {
      return reject("--link",
                    "stream mode co-simulates only gen2 (mcs mode also "
                    "replays aloha/tree)");
    }
    if (!cli.fault_path.empty()) {
      return reject("--link",
                    "cannot co-simulate a fault-injected run (the schedule "
                    "records proposed sets, not faulted executions)");
    }
  }
  return true;
}

/// Integer-microsecond air time as "S.UUUUUU" seconds — pure integer
/// arithmetic, so the printed schedule length is bit-identical everywhere.
std::string secondsStr(std::int64_t us) {
  std::ostringstream os;
  os << us / 1000000 << '.' << std::setw(6) << std::setfill('0')
     << us % 1000000;
  return os.str();
}

rfid::protocol::Gen2Options buildGen2Options(const Cli& cli) {
  using rfid::protocol::Gen2Policy;
  using rfid::protocol::Gen2Session;
  rfid::protocol::Gen2Options o;
  o.q0 = cli.gen2_q0;
  o.c = cli.gen2_c;
  o.mpr_k = cli.gen2_mpr;
  o.persistence = cli.gen2_persistence;
  o.policy = cli.gen2_policy == "afsa" ? Gen2Policy::kAfsa
                                       : Gen2Policy::kQAlgorithm;
  if (cli.gen2_session == "s0") o.session = Gen2Session::kS0;
  else if (cli.gen2_session == "s1") o.session = Gen2Session::kS1;
  else if (cli.gen2_session == "s3") o.session = Gen2Session::kS3;
  else o.session = Gen2Session::kS2;
  return o;
}

std::string linkConfigStr(const Cli& cli) {
  std::ostringstream os;
  os << cli.link;
  if (cli.link == "gen2") {
    os << "[q0=" << cli.gen2_q0 << " c=" << cli.gen2_c << " session="
       << cli.gen2_session << " mpr=" << cli.gen2_mpr << " policy="
       << cli.gen2_policy << "]";
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rfid;
  Cli cli;
  if (!parse(argc, argv, cli)) {
    usage();
    return 2;
  }

  workload::Scenario sc = workload::paperScenario(cli.lambda_R, cli.lambda_r);
  sc.deploy.num_readers = cli.readers;
  sc.deploy.num_tags = cli.tags;
  sc.deploy.region_side = cli.side;
  if (cli.layout == "clusters") sc.layout = workload::Layout::kClusteredTags;
  else if (cli.layout == "aisles") sc.layout = workload::Layout::kAisles;
  else if (cli.layout == "grid") sc.layout = workload::Layout::kGridReaders;
  else if (cli.layout != "uniform") {
    std::cerr << "invalid value for --layout: " << cli.layout << "\n";
    usage();
    return 2;
  }

  // Observability sinks live for the whole invocation; attachments below
  // are nullptr-safe, so runs without --metrics/--trace/--cost pay nothing.
  obs::MetricsRegistry registry;
  obs::TraceSink sink;
  obs::CostLedger ledger;
  obs::MetricsRegistry* metrics =
      cli.metrics_path.empty() && cli.prom_path.empty() ? nullptr : &registry;
  obs::TraceSink* trace =
      cli.trace_path.empty() && cli.jsonl_path.empty() ? nullptr : &sink;
  obs::CostLedger* cost = cli.cost_path.empty() ? nullptr : &ledger;

  core::System sys = [&]() -> core::System {
    try {
      if (!cli.load_path.empty()) {
        std::string err;
        auto loaded = workload::loadDeploymentFile(cli.load_path, &err);
        if (!loaded) {
          std::cerr << "failed to load deployment from " << cli.load_path
                    << ": " << err << "\n";
          std::exit(2);
        }
        return std::move(*loaded);
      }
      return workload::makeSystem(sc, cli.seed);
    } catch (const std::length_error& e) {
      // The coverage index would overflow its 32-bit arena offsets
      // (core::System fails closed); surface the sizing math as bad usage.
      std::cerr << "invalid --readers/--tags combination: " << e.what() << "\n";
      std::exit(2);
    }
  }();
  // --ref-eval switches the System referee to the CSR reference path too, so
  // the flag exercises the whole reference stack (selection + weights).
  sys.setReferenceEval(cli.ref_eval);
  sys.attachMetrics(metrics);
  if (!cli.save_path.empty()) {
    if (!workload::saveDeploymentFile(cli.save_path, sys)) {
      std::cerr << "failed to save deployment to " << cli.save_path << "\n";
      return 2;
    }
    std::cout << "deployment saved to " << cli.save_path << '\n';
  }
  const graph::InterferenceGraph g(sys);

  std::unique_ptr<sched::OneShotScheduler> scheduler;
  if (cli.algo == "alg1") {
    sched::PtasOptions o;
    o.k = cli.k;
    o.parallel_shifts = !cli.ref_eval;
    o.num_threads = cli.threads;
    scheduler = std::make_unique<sched::PtasScheduler>(o);
  } else if (cli.algo == "alg2") {
    sched::GrowthOptions o;
    o.rho = cli.rho;
    o.lazy_selection = !cli.ref_eval;
    o.num_threads = cli.threads;
    scheduler = std::make_unique<sched::GrowthScheduler>(g, o);
  } else if (cli.algo == "alg3") {
    dist::DistributedGrowthOptions o;
    o.rho = cli.rho;
    scheduler = std::make_unique<dist::GrowthDistributedScheduler>(g, o);
  } else if (cli.algo == "ghc") {
    scheduler = std::make_unique<sched::HillClimbingScheduler>(!cli.ref_eval);
  } else if (cli.algo == "ca") {
    scheduler = std::make_unique<dist::ColorwaveScheduler>(sys, cli.seed);
  } else if (cli.algo == "exact") {
    scheduler = std::make_unique<sched::ExactScheduler>();
  } else if (cli.algo == "mc") {
    scheduler = std::make_unique<sched::MultiChannelScheduler>(
        sched::ChannelOptions{cli.channels});
  } else {
    std::cerr << "invalid value for --algo: " << cli.algo << "\n";
    usage();
    return 2;
  }
  scheduler->attachMetrics(metrics);
  scheduler->attachTrace(trace);
  scheduler->attachCost(cost);

  // Signal hardening: SIGTERM/SIGINT cancel this token from the handler, so
  // a kill rides the same cooperative-cancel path as an expiring budget —
  // the driver stops at the next slot boundary (schedulers bail at their
  // next poll), the journal stays whole, and every telemetry sink flushes
  // before the exit-3 return.  An unfired token is behavior-identical to no
  // token at all, so goldens and equivalence checks are unaffected.
  ckpt::RunBudget budget;
  service::installStopSignalHandlers(&budget.token());
  scheduler->attachCancel(&budget.token());

  // Fault injection: the plan drives the MCS referee, the channel model
  // makes any distributed scheduler's control plane lossy and crash-prone.
  fault::FaultPlan fault_plan;
  std::unique_ptr<fault::ChannelModel> channel;
  if (!cli.fault_path.empty()) {
    std::string err;
    auto loaded = fault::FaultPlan::loadFile(cli.fault_path, &err);
    if (!loaded) {
      std::cerr << "failed to load fault plan from " << cli.fault_path << ": "
                << err << "\n";
      return 2;
    }
    fault_plan = std::move(*loaded);
    if (!fault_plan.empty()) {
      channel = std::make_unique<fault::ChannelModel>(fault_plan);
      scheduler->attachChannel(channel.get());
    }
  }

  // The invariant oracle.  Expectations are per-algorithm: Colorwave's raw
  // color classes and the multi-channel scheduler legitimately propose
  // infeasible (single-channel) sets, the multi-channel weight is scored on
  // its own channel model, and schedulers that stall pre-convergence or run
  // over a lossy control plane are exempt from the strict greedy-progress
  // postcondition.  Verdicts print to stderr so stdout stays byte-identical
  // to an unchecked run.
  check::ScheduleValidator validator = [&]() {
    check::CheckOptions co;
    co.level = cli.check_paranoid ? check::CheckLevel::kParanoid
                                  : check::CheckLevel::kNormal;
    co.expect_feasible = cli.algo != "ca" && cli.algo != "mc";
    const bool lossy_control =
        channel != nullptr && (cli.algo == "alg3" || cli.algo == "ca");
    co.expect_exact_weight = cli.algo != "mc" && !lossy_control;
    co.expect_progress = cli.algo == "alg1" || cli.algo == "alg2" ||
                         cli.algo == "ghc" || cli.algo == "exact" ||
                         (cli.algo == "alg3" && channel == nullptr);
    // One-shot decisions are not refereed through the fault plan, so the
    // oracle only mirrors it in mcs mode.
    if (!fault_plan.empty() && cli.mode == "mcs") co.faults = &fault_plan;
    co.metrics = metrics;
    co.trace = trace;
    return check::ScheduleValidator(co);
  }();

  // Every telemetry sink in one place: the happy path and every early exit
  // (budget exit 3, checkpoint-integrity exit 4, invariant-violation exit 5)
  // flush through here, so a failed run still leaves its metrics, spans, and
  // cost ledger behind for rfidsched_report.  Returns 0 or the exit code.
  const auto flushTelemetry = [&]() -> int {
    if (!cli.metrics_path.empty()) {
      if (registry.writeJsonFile(cli.metrics_path)) {
        std::cout << "metrics written to " << cli.metrics_path << '\n';
      } else {
        std::cerr << "failed to write metrics to " << cli.metrics_path << "\n";
        return 2;
      }
    }
    if (!cli.prom_path.empty()) {
      if (registry.writePrometheusFile(cli.prom_path)) {
        std::cout << "prometheus metrics written to " << cli.prom_path << '\n';
      } else {
        std::cerr << "failed to write prometheus metrics to " << cli.prom_path
                  << "\n";
        return 2;
      }
    }
    if (!cli.trace_path.empty()) {
      if (sink.writeChromeTraceFile(cli.trace_path)) {
        std::cout << "trace written to " << cli.trace_path << '\n';
      } else {
        std::cerr << "failed to write trace to " << cli.trace_path << "\n";
        return 2;
      }
    }
    if (!cli.jsonl_path.empty()) {
      if (sink.writeJsonlFile(cli.jsonl_path)) {
        std::cout << "jsonl events written to " << cli.jsonl_path << '\n';
      } else {
        std::cerr << "failed to write jsonl to " << cli.jsonl_path << "\n";
        return 2;
      }
    }
    if (!cli.cost_path.empty()) {
      if (ledger.writeJsonFile(cli.cost_path)) {
        std::cout << "cost attribution written to " << cli.cost_path << '\n';
      } else {
        std::cerr << "failed to write cost ledger to " << cli.cost_path
                  << "\n";
        return 2;
      }
    }
    return 0;
  };

  std::cout << "deployment: " << sys.numReaders() << " readers, "
            << sys.numTags() << " tags (" << sys.unreadCoverableCount()
            << " coverable), layout " << cli.layout << ", seed " << cli.seed
            << "\ninterference graph: " << g.numEdges()
            << " edges, max degree " << g.maxDegree() << "\nalgorithm: "
            << scheduler->name() << "\n\n";

  // The streaming index oracle (stream mode only; constructed up here so the
  // shared check verdict at the bottom can read its counters and issues).
  check::IncrementalIndexOracle oracle([&]() {
    check::IndexOracleOptions oo;
    oo.every_epochs = cli.oracle_every;
    oo.paranoid = cli.check_paranoid;
    // Only stream mode drives the oracle; registering its counters in the
    // static modes would pollute their metrics exports with dead zeros.
    oo.metrics = cli.mode == "stream" ? metrics : nullptr;
    oo.trace = cli.mode == "stream" ? trace : nullptr;
    return oo;
  }());

  bool interrupted = false;
  bool check_failed = false;
  // Gen2 link co-simulation verdict (empty = ok); escalates to exit 5
  // under --check, a warning otherwise.
  std::string link_fail_detail;
  if (cli.mode == "oneshot") {
    obs::ScopedTimer run_span(metrics, "cli.run_us", trace, "cli.oneshot");
    const sched::OneShotResult res = scheduler->schedule(sys);
    run_span.stop();
    if (cli.check) {
      // One decision, validated like one slot: CSR audit, feasibility and
      // claimed weight from raw geometry, served set by the naive scan.
      if (validator.beginRun(sys)) {
        const std::vector<int> served = sys.wellCoveredTags(res.readers);
        validator.checkSlot(sys, 0, res, res.readers, {}, served);
      }
      check_failed = !validator.ok();
    }
    std::cout << "one-shot: " << res.readers.size()
              << " readers active, weight " << res.weight << "\nreaders:";
    for (const int v : res.readers) std::cout << ' ' << v;
    std::cout << '\n';
    if (!cli.svg_path.empty() &&
        analysis::writeSvgFile(cli.svg_path, sys, res.readers)) {
      std::cout << "svg written to " << cli.svg_path << '\n';
    }
  } else if (cli.mode == "mcs") {
    if (!cli.svg_path.empty()) {
      const sched::OneShotResult first = scheduler->schedule(sys);
      if (analysis::writeSvgFile(cli.svg_path, sys, first.readers)) {
        std::cout << "first-slot svg written to " << cli.svg_path << '\n';
      }
    }
    sched::McsOptions mcs_opt;
    mcs_opt.metrics = metrics;
    mcs_opt.trace = trace;
    mcs_opt.cost = cost;
    if (!fault_plan.empty()) {
      mcs_opt.faults = &fault_plan;
      mcs_opt.channel = channel.get();
    }
    if (cli.check) mcs_opt.validator = &validator;
    if (cli.deadline_ms >= 0) {
      budget.setDeadline(std::chrono::milliseconds(cli.deadline_ms));
    }
    if (cli.max_slots > 0) budget.setSlotCap(cli.max_slots);
    // Always attached: the budget also carries the signal-cancel token, and
    // an unarmed, unfired budget never changes the driver's behavior.
    mcs_opt.budget = &budget;
    ckpt::CheckpointSetup setup;
    setup.path = cli.ckpt_path;
    setup.resume = cli.resume;
    setup.seed = cli.seed;
    const ckpt::CheckpointedRun run =
        ckpt::runMcsCheckpointed(sys, *scheduler, mcs_opt, setup);
    if (!run.ok) {
      std::cerr << "checkpoint error: " << run.error << "\n";
      flushTelemetry();  // best-effort: the partial run's evidence still lands
      return 4;
    }
    // Checkpoint chatter goes to stderr: stdout must stay byte-comparable
    // between a resumed run and an uninterrupted one.
    if (run.resumed) {
      std::cerr << "resumed " << cli.ckpt_path << ": " << run.replayed_slots
                << " committed slots replayed and verified\n";
    }
    const sched::McsResult& res = run.result;
    check_failed = cli.check &&
                   (res.stop == sched::McsStop::kCheckFailed || !validator.ok());
    if (res.interrupted) {
      interrupted = true;
      std::cerr << "run interrupted ("
                << (service::stopSignal() != 0 ? "signal"
                                               : sched::mcsStopName(res.stop))
                << ") after " << res.slots << " committed slots";
      if (!cli.ckpt_path.empty()) std::cerr << "; resume with --resume";
      std::cerr << "\n";
    }
    std::cout << "covering schedule: " << res.slots << " slots, "
              << res.tags_read << " tags read, " << res.uncoverable
              << " uncoverable, "
              << (res.completed ? "completed" : "INCOMPLETE") << '\n';
    if (!fault_plan.empty()) {
      const sched::McsDegradation& d = res.degradation;
      std::cout << "degradation: " << d.faulty_slots << " faulty slots ("
                << d.slots_lost << " lost), " << d.crashed_activations
                << " crashed activations, " << d.replanned_activations
                << " re-planned, " << d.tags_missed << " tags missed, "
                << d.tags_orphaned << " orphaned; coverage " << res.tags_read
                << " achieved vs " << d.ideal_tags_read << " ideal\n";
    }
    for (std::size_t i = 0; i < res.schedule.size() && i < 25; ++i) {
      std::cout << "  slot " << i + 1 << ": "
                << res.schedule[i].active.size() << " readers, "
                << res.schedule[i].tags_read << " tags\n";
    }
    if (res.schedule.size() > 25) {
      std::cout << "  ... (" << res.schedule.size() - 25 << " more slots)\n";
    }
    if (cli.link != "unit") {
      // Replay the committed schedule under the selected link model and
      // convert macro-slots into air-time (docs/protocol.md).  The replay
      // re-marks the system's read-state, which nothing below consumes.
      protocol::LinkOptions lo;
      protocol::parseLink(cli.link, lo.link);
      lo.gen2 = buildGen2Options(cli);
      lo.metrics = metrics;
      const protocol::LinkTimingResult lt = protocol::timeScheduleLink(
          sys, res, lo, workload::Rng(cli.seed).split("link"));
      std::cout << "link " << linkConfigStr(cli) << ": schedule "
                << secondsStr(lt.air_us) << " s air-time (serial "
                << secondsStr(lt.air_us_serial) << " s), " << lt.micro_slots
                << " micro-slots over " << lt.macro_slots << " macro-slots\n";
      if (lo.link == protocol::Link::kGen2) {
        std::cout << "gen2: " << lt.tags_read << " fresh reads, "
                  << lt.stale_repliers << " stale repliers, "
                  << lt.session_skips << " session skips, " << lt.frames
                  << " frames\n";
        if (!lt.check_ok) link_fail_detail = lt.check_detail;
      }
    }
  } else if (cli.mode == "stream") {
    workload::ChurnTrace churn;
    if (!cli.churn_path.empty()) {
      std::string err;
      auto loaded = workload::loadChurnTraceFile(cli.churn_path, &err);
      if (!loaded) {
        std::cerr << "failed to load churn trace from " << cli.churn_path
                  << ": " << err << "\n";
        return 2;
      }
      churn = std::move(*loaded);
    } else {
      workload::ChurnConfig cc;
      cc.arrival_rate = cli.arrival_rate;
      cc.depart_rate = cli.depart_rate;
      cc.move_rate = cli.move_rate;
      cc.slots = cli.stream_slots;
      cc.region_side = cli.side;
      cc.burst_multiplier = cli.burst;
      cc.burst_enter = cli.burst_enter;
      cc.burst_exit = cli.burst_exit;
      churn = workload::makeChurnTrace(cc, sys.numTags(), cli.seed);
    }
    if (!cli.save_churn_path.empty()) {
      if (!workload::saveChurnTraceFile(cli.save_churn_path, churn)) {
        std::cerr << "failed to save churn trace to " << cli.save_churn_path
                  << "\n";
        return 2;
      }
      std::cout << "churn trace saved to " << cli.save_churn_path << '\n';
    }

    sched::StreamingOptions st_opt;
    st_opt.metrics = metrics;
    st_opt.trace = trace;
    st_opt.cost = cost;
    if (!fault_plan.empty()) {
      st_opt.faults = &fault_plan;
      st_opt.channel = channel.get();
    }
    st_opt.oracle = &oracle;
    st_opt.fail_on_divergence = cli.check;
    st_opt.max_backlog = cli.max_backlog;
    st_opt.shed_policy = cli.shed_policy == "largest"
                             ? service::ShedPolicy::kRejectLargest
                             : service::ShedPolicy::kRejectNewest;
    st_opt.shed_after_slots = cli.shed_after;
    if (cli.deadline_ms >= 0) {
      budget.setDeadline(std::chrono::milliseconds(cli.deadline_ms));
    }
    if (cli.max_slots > 0) budget.setSlotCap(cli.max_slots);
    st_opt.budget = &budget;
    // Online gen2 co-simulation rides the driver's commit hook — every
    // committed busy slot (including replayed ones on resume) is arbitrated
    // as it lands, with session flags carried across slots.
    std::unique_ptr<protocol::Gen2LinkTimer> link_timer;
    if (cli.link == "gen2") {
      link_timer = std::make_unique<protocol::Gen2LinkTimer>(
          sys, buildGen2Options(cli), workload::Rng(cli.seed).split("link"));
      st_opt.on_commit = [&link_timer](int slot, std::span<const int> active,
                                       std::span<const int> served) {
        link_timer->onSlot(slot, active, served);
      };
    }
    ckpt::CheckpointSetup setup;
    setup.path = cli.ckpt_path;
    setup.resume = cli.resume;
    setup.seed = cli.seed;
    const sched::StreamingCheckpointedRun run =
        sched::runStreamingCheckpointed(sys, *scheduler, churn, st_opt, setup);
    if (!run.ok) {
      std::cerr << "checkpoint error: " << run.error << "\n";
      flushTelemetry();  // best-effort: the partial run's evidence still lands
      return 4;
    }
    if (run.resumed) {
      std::cerr << "resumed " << cli.ckpt_path << ": " << run.replayed_slots
                << " committed slots replayed and verified\n";
    }
    const sched::StreamingResult& res = run.result;
    check_failed =
        cli.check && (res.stop == sched::McsStop::kCheckFailed || !oracle.ok());
    if (res.interrupted) {
      interrupted = true;
      std::cerr << "run interrupted ("
                << (service::stopSignal() != 0 ? "signal"
                                               : sched::mcsStopName(res.stop))
                << ") after " << res.slots << " committed slots";
      if (!cli.ckpt_path.empty()) std::cerr << "; resume with --resume";
      std::cerr << "\n";
    }
    std::cout << "streaming schedule: " << res.stream_slots
              << " stream slots (" << res.slots << " busy, " << res.idle_slots
              << " idle), " << res.tags_read << " tags read, "
              << res.uncoverable << " uncoverable, "
              << (res.drained ? "drained" : "NOT DRAINED") << '\n';
    std::cout << "churn: " << res.arrived << " arrived, " << res.departed
              << " departed, " << res.moved << " moved";
    if (res.skipped_events > 0) {
      std::cout << ", " << res.skipped_events << " events skipped";
    }
    std::cout << '\n';
    std::cout << "overload: backlog peak " << res.backlog_peak << ", shed "
              << res.shed << " (backlog) + " << res.shed_aged << " (aged)\n";
    std::cout << "service: latency p50 " << res.latency_p50 << " / p99 "
              << res.latency_p99 << " slots, " << res.tags_per_sec
              << " tags/sec\n";
    if (link_timer != nullptr) {
      const protocol::LinkTimingResult& lt = link_timer->result();
      link_timer->flushMetrics(metrics);
      std::cout << "link " << linkConfigStr(cli) << ": schedule "
                << secondsStr(lt.air_us) << " s air-time (serial "
                << secondsStr(lt.air_us_serial) << " s), " << lt.micro_slots
                << " micro-slots over " << lt.macro_slots << " busy slots\n";
      std::cout << "gen2: " << lt.identified << " tags identified, "
                << lt.session_skips << " session skips, " << lt.frames
                << " frames\n";
      if (!lt.check_ok) link_fail_detail = lt.check_detail;
    }
    if (oracle.checks() > 0 || oracle.divergences() > 0) {
      std::cerr << "index oracle: " << oracle.checks() << " checks, "
                << oracle.divergences() << " divergences, " << oracle.heals()
                << " heals\n";
    }
    if (!fault_plan.empty()) {
      const sched::McsDegradation& d = res.degradation;
      std::cout << "degradation: " << d.faulty_slots << " faulty slots ("
                << d.slots_lost << " lost), " << d.crashed_activations
                << " crashed activations, " << d.replanned_activations
                << " re-planned, " << d.tags_missed << " tags missed, "
                << d.tags_orphaned << " orphaned; coverage " << res.tags_read
                << " achieved vs " << d.ideal_tags_read << " ideal\n";
    }
  } else {
    std::cerr << "invalid value for --mode: " << cli.mode << "\n";
    usage();
    return 2;
  }

  if (const int rc = flushTelemetry(); rc != 0) return rc;
  if (!link_fail_detail.empty()) {
    // Gen2 co-simulation invariants (round completion, no double acks, no
    // re-identification inside the persistence window) are part of the
    // --check contract; without --check they still warn.
    std::cerr << "check: "
              << (cli.check ? "FAILED — " : "warning (link, unchecked) — ")
              << link_fail_detail << "\n";
    if (cli.check) return 5;
  }
  if (cli.check) {
    if (check_failed) {
      if (cli.mode == "stream") {
        std::cerr << "check: FAILED — " << oracle.divergences()
                  << " index divergences (" << oracle.heals() << " healed)\n";
        for (const check::CheckIssue& is : oracle.issues()) {
          std::cerr << "  [slot " << is.slot << "] " << is.invariant << ": "
                    << is.detail << "\n";
        }
      } else {
        validator.report(std::cerr);
      }
      return 5;
    }
    if (cli.mode == "stream") {
      std::cerr << "check: ok (" << oracle.checks()
                << " index verifications)\n";
    } else {
      std::cerr << "check: ok (" << validator.slotsChecked()
                << " slots validated)\n";
    }
  }
  // A signal that landed too late to interrupt the run (or mid-oneshot,
  // where the scheduler returned its best-so-far set) still reports the
  // interrupted exit so wrappers can tell a kill from a clean finish.
  return interrupted || service::stopSignal() != 0 ? 3 : 0;
}
