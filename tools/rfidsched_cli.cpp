// rfidsched_cli — run any scenario × algorithm from the command line.
//
//   rfidsched_cli [--algo alg1|alg2|alg3|ghc|ca|exact|mc]
//                 [--mode oneshot|mcs] [--readers N] [--tags M]
//                 [--side S] [--lambda-R X] [--lambda-r Y] [--seed S]
//                 [--layout uniform|clusters|aisles|grid]
//                 [--channels C] [--rho R] [--k K] [--svg PATH]
//
// Prints a human-readable report; --svg additionally renders the (first)
// slot decision.  Exit code 0 on success, 2 on bad usage.
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/svg.h"
#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "graph/interference_graph.h"
#include "sched/channels.h"
#include "sched/exact.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/io.h"
#include "workload/scenario.h"

namespace {

struct Cli {
  std::string algo = "alg2";
  std::string mode = "mcs";
  std::string layout = "uniform";
  std::string svg_path;
  std::string save_path;  // write the generated deployment and exit paths
  std::string load_path;  // run on a saved deployment instead of generating
  int readers = 50;
  int tags = 1200;
  double side = 100.0;
  double lambda_R = 10.0;
  double lambda_r = 4.0;
  std::uint64_t seed = 1;
  int channels = 2;
  double rho = 1.25;
  int k = 4;
};

void usage() {
  std::cerr <<
      "usage: rfidsched_cli [--algo alg1|alg2|alg3|ghc|ca|exact|mc]\n"
      "                     [--mode oneshot|mcs] [--readers N] [--tags M]\n"
      "                     [--side S] [--lambda-R X] [--lambda-r Y]\n"
      "                     [--seed S] [--layout uniform|clusters|aisles|grid]\n"
      "                     [--channels C] [--rho R] [--k K] [--svg PATH]\n"
      "                     [--save PATH] [--load PATH]\n";
}

bool parse(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--algo" && (v = next())) cli.algo = v;
    else if (a == "--mode" && (v = next())) cli.mode = v;
    else if (a == "--layout" && (v = next())) cli.layout = v;
    else if (a == "--svg" && (v = next())) cli.svg_path = v;
    else if (a == "--save" && (v = next())) cli.save_path = v;
    else if (a == "--load" && (v = next())) cli.load_path = v;
    else if (a == "--readers" && (v = next())) cli.readers = std::atoi(v);
    else if (a == "--tags" && (v = next())) cli.tags = std::atoi(v);
    else if (a == "--side" && (v = next())) cli.side = std::atof(v);
    else if (a == "--lambda-R" && (v = next())) cli.lambda_R = std::atof(v);
    else if (a == "--lambda-r" && (v = next())) cli.lambda_r = std::atof(v);
    else if (a == "--seed" && (v = next())) cli.seed = std::strtoull(v, nullptr, 10);
    else if (a == "--channels" && (v = next())) cli.channels = std::atoi(v);
    else if (a == "--rho" && (v = next())) cli.rho = std::atof(v);
    else if (a == "--k" && (v = next())) cli.k = std::atoi(v);
    else {
      std::cerr << "unknown or incomplete option: " << a << "\n";
      return false;
    }
  }
  return cli.readers > 0 && cli.tags >= 0 && cli.side > 0 &&
         cli.lambda_R >= 1 && cli.lambda_r >= 1 && cli.k >= 2 &&
         cli.rho > 1.0 && cli.channels >= 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rfid;
  Cli cli;
  if (!parse(argc, argv, cli)) {
    usage();
    return 2;
  }

  workload::Scenario sc = workload::paperScenario(cli.lambda_R, cli.lambda_r);
  sc.deploy.num_readers = cli.readers;
  sc.deploy.num_tags = cli.tags;
  sc.deploy.region_side = cli.side;
  if (cli.layout == "clusters") sc.layout = workload::Layout::kClusteredTags;
  else if (cli.layout == "aisles") sc.layout = workload::Layout::kAisles;
  else if (cli.layout == "grid") sc.layout = workload::Layout::kGridReaders;
  else if (cli.layout != "uniform") { usage(); return 2; }

  core::System sys = [&]() -> core::System {
    if (!cli.load_path.empty()) {
      auto loaded = workload::loadDeploymentFile(cli.load_path);
      if (!loaded) {
        std::cerr << "failed to load deployment from " << cli.load_path << "\n";
        std::exit(2);
      }
      return std::move(*loaded);
    }
    return workload::makeSystem(sc, cli.seed);
  }();
  if (!cli.save_path.empty()) {
    if (!workload::saveDeploymentFile(cli.save_path, sys)) {
      std::cerr << "failed to save deployment to " << cli.save_path << "\n";
      return 2;
    }
    std::cout << "deployment saved to " << cli.save_path << '\n';
  }
  const graph::InterferenceGraph g(sys);

  std::unique_ptr<sched::OneShotScheduler> scheduler;
  if (cli.algo == "alg1") {
    sched::PtasOptions o;
    o.k = cli.k;
    scheduler = std::make_unique<sched::PtasScheduler>(o);
  } else if (cli.algo == "alg2") {
    sched::GrowthOptions o;
    o.rho = cli.rho;
    scheduler = std::make_unique<sched::GrowthScheduler>(g, o);
  } else if (cli.algo == "alg3") {
    dist::DistributedGrowthOptions o;
    o.rho = cli.rho;
    scheduler = std::make_unique<dist::GrowthDistributedScheduler>(g, o);
  } else if (cli.algo == "ghc") {
    scheduler = std::make_unique<sched::HillClimbingScheduler>();
  } else if (cli.algo == "ca") {
    scheduler = std::make_unique<dist::ColorwaveScheduler>(sys, cli.seed);
  } else if (cli.algo == "exact") {
    scheduler = std::make_unique<sched::ExactScheduler>();
  } else if (cli.algo == "mc") {
    scheduler = std::make_unique<sched::MultiChannelScheduler>(
        sched::ChannelOptions{cli.channels});
  } else {
    usage();
    return 2;
  }

  std::cout << "deployment: " << sys.numReaders() << " readers, "
            << sys.numTags() << " tags (" << sys.unreadCoverableCount()
            << " coverable), layout " << cli.layout << ", seed " << cli.seed
            << "\ninterference graph: " << g.numEdges()
            << " edges, max degree " << g.maxDegree() << "\nalgorithm: "
            << scheduler->name() << "\n\n";

  if (cli.mode == "oneshot") {
    const sched::OneShotResult res = scheduler->schedule(sys);
    std::cout << "one-shot: " << res.readers.size()
              << " readers active, weight " << res.weight << "\nreaders:";
    for (const int v : res.readers) std::cout << ' ' << v;
    std::cout << '\n';
    if (!cli.svg_path.empty() &&
        analysis::writeSvgFile(cli.svg_path, sys, res.readers)) {
      std::cout << "svg written to " << cli.svg_path << '\n';
    }
  } else if (cli.mode == "mcs") {
    if (!cli.svg_path.empty()) {
      const sched::OneShotResult first = scheduler->schedule(sys);
      if (analysis::writeSvgFile(cli.svg_path, sys, first.readers)) {
        std::cout << "first-slot svg written to " << cli.svg_path << '\n';
      }
    }
    const sched::McsResult res = sched::runCoveringSchedule(sys, *scheduler);
    std::cout << "covering schedule: " << res.slots << " slots, "
              << res.tags_read << " tags read, " << res.uncoverable
              << " uncoverable, "
              << (res.completed ? "completed" : "INCOMPLETE") << '\n';
    for (std::size_t i = 0; i < res.schedule.size() && i < 25; ++i) {
      std::cout << "  slot " << i + 1 << ": "
                << res.schedule[i].active.size() << " readers, "
                << res.schedule[i].tags_read << " tags\n";
    }
    if (res.schedule.size() > 25) {
      std::cout << "  ... (" << res.schedule.size() - 25 << " more slots)\n";
    }
  } else {
    usage();
    return 2;
  }
  return 0;
}
