#!/bin/sh
# bench_record.sh — record one labelled point of the perf trajectory.
#
#   tools/bench_record.sh <build-dir> <label> [out.json]
#
# Runs the fixed-seed perf workloads (bench/scaling_n with its MCS-at-scale
# section, bench/micro_core, timed rfidsched_cli MCS runs at n = 2000, and —
# when the daemon tools are built — the rfidsched_load service saturation
# bench: a closed-loop capacity probe plus a 0.5x/1x/2x open-loop sweep
# recording req/s, p50/p99 latency, and shed counts under the soak fault
# plan) and merges the wall-clock numbers plus the sched.*/core.*/svc.* work
# counters into <out.json> (default BENCH_PR4.json) under <label>.  When the binary
# supports --cost, the deterministic cost-attribution counters (total work
# units plus the full per-field bill) ride along under "cost" — these are
# what tools/bench_compare.py gates on, since they cannot jitter.  Run it
# once on the pre-change build and once per mode on the post-change build;
# the JSON then holds the before/after trajectory side by side
# (docs/performance.md explains how to read it).
#
# CLI mode flags (--ref-eval / --threads) that the binary under test does
# not support are skipped, so the same script runs against any library
# version.
set -eu

BUILD_DIR=${1:?usage: bench_record.sh <build-dir> <label> [out.json]}
LABEL=${2:?usage: bench_record.sh <build-dir> <label> [out.json]}
OUT=${3:-BENCH_PR4.json}

SCALING="$BUILD_DIR/bench/scaling_n"
MICRO="$BUILD_DIR/bench/micro_core"
CLI="$BUILD_DIR/tools/rfidsched_cli"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== scaling_n (2 seeds) =="
"$SCALING" 2 > "$TMP/scaling.txt"
sed -n '/# MCS covering schedule/,$p' "$TMP/scaling.txt"

echo "== micro_core =="
"$MICRO" --benchmark_format=json \
  --benchmark_filter='BM_(SystemConstruction|SystemBuild|WeightEvaluation|WeightEvaluatorPushPop|GreedySelection)' \
  > "$TMP/micro.json" 2> /dev/null

# Large-scale sweep (PR9): full alg2 MCS at n = 20k/50k/100k readers, up to
# 1M tags.  Minutes-long, so opt-in: RFIDSCHED_BENCH_LARGE=1.  The emitted
# key=value lines (wall, peak RSS, referee/selection work counters) are
# scraped into "large_mcs"; tools/bench_compare.py gates the deterministic
# fields (slots/tags/completed and the work counters) and treats wall/RSS
# as advisory.
if [ "${RFIDSCHED_BENCH_LARGE:-0}" = "1" ]; then
  echo "== scaling_n --large (n up to 100k; this takes minutes) =="
  "$SCALING" --large > "$TMP/large.txt"
  grep '^large ' "$TMP/large.txt" || true
fi

# Timed CLI MCS runs: wall clock for the whole invocation plus the work
# counters from --metrics.  Modes beyond "default" need the post-PR flags.
cli_run() {
  mode=$1; shift
  cost_flag=""
  # Probe --cost support so the script still runs pre-PR6 binaries.
  if "$CLI" --cost 2>&1 | grep -q "missing value"; then
    cost_flag="--cost $TMP/c_$mode.json"
  fi
  start=$(date +%s%N)
  if "$CLI" --algo alg2 --mode mcs --readers 2000 --tags 48000 \
      --side 632.455 --seed 7 --metrics "$TMP/m_$mode.json" $cost_flag "$@" \
      > "$TMP/cli_$mode.txt" 2>&1; then
    end=$(date +%s%N)
    echo "$mode $(( (end - start) / 1000000 ))" >> "$TMP/cli_times.txt"
    echo "== cli alg2 n=2000 [$mode]: $(( (end - start) / 1000000 )) ms =="
  else
    echo "== cli alg2 n=2000 [$mode]: unsupported by this binary, skipped =="
  fi
}
: > "$TMP/cli_times.txt"
cli_run default
cli_run reference --ref-eval
cli_run single_thread --threads 1

# Service saturation point (PR7): closed-loop capacity probe plus the
# 0.5x/1x/2x open-loop sweep (req/s vs p50/p99 latency and shed rate),
# under the soak fault plan.  Skipped when the binary predates the daemon.
LOAD="$BUILD_DIR/tools/rfidsched_load"
if [ -x "$LOAD" ]; then
  echo "== service bench (closed-loop probe + saturation sweep) =="
  "$LOAD" --mode bench --requests 32 --concurrency 8 --workers 2 --queue 16 \
    --readers 30 --tags 600 --side 80 --seed 11 --duration-s 2 \
    --fault "$(dirname "$0")/soak_fault.plan" > "$TMP/service.json"
  python3 -m json.tool "$TMP/service.json" > /dev/null
else
  echo "== service bench: rfidsched_load not built, skipped =="
fi

# Streaming churn point (PR8): one fixed bursty trace through the streaming
# MCS driver with overload control and the incremental-index oracle on.
# Everything recorded here — stream.*/check.* counters, the latency
# percentiles (in slots), and the cost ledger — is deterministic in
# (deployment, seed, trace), so tools/bench_compare.py gates on it.
# Parameters must match STREAM_POINT in bench_compare.py.
echo "== stream churn point =="
stream_start=$(date +%s%N)
if "$CLI" --mode stream --algo alg2 --readers 200 --tags 4000 --side 120 \
    --seed 17 --arrival-rate 10 --depart-rate 3 --move-rate 3 \
    --stream-slots 80 --burst 10 --burst-enter 0.1 --burst-exit 0.25 \
    --max-backlog 300 --shed-after 30 --oracle-every 16 \
    --metrics "$TMP/stream_m.json" --cost "$TMP/stream_c.json" \
    > "$TMP/stream.txt" 2>&1; then
  stream_end=$(date +%s%N)
  echo "$(( (stream_end - stream_start) / 1000000 ))" > "$TMP/stream_ms.txt"
  sed -n '/^streaming schedule/,/^index oracle/p' "$TMP/stream.txt"
else
  echo "== stream point: unsupported by this binary, skipped =="
fi

# Gen2 link-variant point (PR10): a fixed Alg2 schedule replayed under every
# link model.  Each `gen2point` line is fully deterministic in (deployment
# seed, link config) — air_us / micro / macro / tags / skips are exact-match
# gated by tools/bench_compare.py and double_id is zero-stays-zero.
GEN2="$BUILD_DIR/bench/gen2_variants"
if [ -x "$GEN2" ]; then
  echo "== gen2 link variants (2 seeds) =="
  "$GEN2" 2 > "$TMP/gen2.txt"
  grep '^gen2point ' "$TMP/gen2.txt" || true
  tail -2 "$TMP/gen2.txt"
else
  echo "== gen2 variants: bench not built, skipped =="
fi

python3 - "$TMP" "$LABEL" "$OUT" <<'EOF'
import json, re, sys, os
tmp, label, out = sys.argv[1], sys.argv[2], sys.argv[3]

entry = {"scaling_n_mcs": [], "micro_core": {}, "cli_mcs_n2000": {}}

in_mcs = False
for line in open(os.path.join(tmp, "scaling.txt")):
    if line.startswith("# MCS covering schedule"):
        in_mcs = True
        continue
    if not in_mcs:
        continue
    m = re.match(r"\s*(\d+)\s+(\w+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)", line)
    if m:
        entry["scaling_n_mcs"].append({
            "n": int(m.group(1)), "algo": m.group(2),
            "slots": float(m.group(3)), "tags_read": float(m.group(4)),
            "ms": float(m.group(5))})

micro = json.load(open(os.path.join(tmp, "micro.json")))
for b in micro.get("benchmarks", []):
    entry["micro_core"][b["name"]] = round(b["real_time"], 1)

for line in open(os.path.join(tmp, "cli_times.txt")):
    mode, ms = line.split()
    run = {"wall_ms": int(ms)}
    mpath = os.path.join(tmp, f"m_{mode}.json")
    if os.path.exists(mpath):
        counters = json.load(open(mpath)).get("counters", {})
        for k in ("sched.weight_evals", "sched.schedule_calls",
                  "core.weight_evals", "mcs.slots", "mcs.tags_read"):
            if k in counters:
                run[k] = counters[k]
    cpath = os.path.join(tmp, f"c_{mode}.json")
    if os.path.exists(cpath):
        cost = json.load(open(cpath))
        total = cost.get("total", {})
        if total:
            run["cost"] = {
                "work_units": (total.get("weight_evals", 0)
                               + total.get("queue_work", 0)
                               + total.get("dp_entries", 0)
                               + total.get("bnb_nodes", 0)),
                "total": total,
                "slots": len(cost.get("slots", [])),
            }
    entry["cli_mcs_n2000"][mode] = run

lpath = os.path.join(tmp, "large.txt")
if os.path.exists(lpath):
    large = []
    for line in open(lpath):
        if not line.startswith("large "):
            continue
        point = {}
        for kv in line.split()[1:]:
            k, _, v = kv.partition("=")
            try:
                point[k] = int(v)
            except ValueError:
                try:
                    point[k] = float(v)
                except ValueError:
                    point[k] = v
        large.append(point)
    if large:
        entry["large_mcs"] = large

spath = os.path.join(tmp, "service.json")
if os.path.exists(spath):
    entry["service"] = json.load(open(spath))

smpath = os.path.join(tmp, "stream_m.json")
if os.path.exists(smpath):
    metrics = json.load(open(smpath))
    counters = {k: v for k, v in metrics.get("counters", {}).items()
                if k.startswith(("stream.", "check.", "mcs.", "sched."))}
    summary = {k: v for k, v in metrics.get("gauges", {}).items()
               if k.startswith("stream.")}
    stream = {"counters": counters, "summary": summary}
    with open(os.path.join(tmp, "stream_ms.txt")) as f:
        stream["wall_ms"] = int(f.read().strip())
    scpath = os.path.join(tmp, "stream_c.json")
    if os.path.exists(scpath):
        total = json.load(open(scpath)).get("total", {})
        if total:
            stream["cost"] = {
                "work_units": (total.get("weight_evals", 0)
                               + total.get("queue_work", 0)
                               + total.get("dp_entries", 0)
                               + total.get("bnb_nodes", 0)),
                "total": total,
            }
    entry["stream_churn"] = stream

gpath = os.path.join(tmp, "gen2.txt")
if os.path.exists(gpath):
    points = []
    for line in open(gpath):
        if not line.startswith("gen2point "):
            continue
        point = {}
        for kv in line.split()[1:]:
            k, _, v = kv.partition("=")
            try:
                point[k] = int(v)
            except ValueError:
                point[k] = v
        points.append(point)
    if points:
        entry["gen2_variants"] = points

doc = {}
if os.path.exists(out):
    doc = json.load(open(out))
doc[label] = entry
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"recorded '{label}' into {out}")
EOF
