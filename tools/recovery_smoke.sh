#!/bin/sh
# recovery_smoke.sh — end-to-end crash/recovery check (docs/recovery.md).
#
#   1. run a journaled MCS sweep and SIGKILL it mid-run;
#   2. resume from the journal and require stdout byte-identical to an
#      uninterrupted run;
#   3. run with a 0 ms deadline and require the distinct interrupted exit
#      status (3), not success and not a crash.
#
# Usage: tools/recovery_smoke.sh [path-to-rfidsched_cli]
set -eu

CLI="${1:-build/tools/rfidsched_cli}"
[ -x "$CLI" ] || { echo "recovery_smoke: CLI not found at $CLI" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Big enough that the run takes a few hundred ms (room to kill mid-run).
CFG="--mode mcs --algo ca --readers 200 --tags 5000 --side 120 --seed 11"

echo "== baseline (uninterrupted, journaled) =="
$CLI $CFG --checkpoint "$TMP/jbase" > "$TMP/base.out"

echo "== SIGKILL mid-run =="
$CLI $CFG --checkpoint "$TMP/j" > "$TMP/killed.out" 2>/dev/null &
PID=$!
# Wait for real progress: header + at least 3 committed slot records.
TRIES=0
while [ "$(cat "$TMP/j" 2>/dev/null | wc -l)" -lt 4 ]; do
    if ! kill -0 "$PID" 2>/dev/null; then break; fi
    TRIES=$((TRIES + 1))
    [ "$TRIES" -gt 30000 ] && { echo "timed out waiting for journal" >&2; exit 1; }
    sleep 0.001 2>/dev/null || sleep 1
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

echo "== resume and compare =="
$CLI $CFG --checkpoint "$TMP/j" --resume > "$TMP/resumed.out"
if ! cmp -s "$TMP/base.out" "$TMP/resumed.out"; then
    echo "FAIL: resumed output differs from uninterrupted run" >&2
    diff "$TMP/base.out" "$TMP/resumed.out" >&2 || true
    exit 1
fi
echo "resumed output byte-identical to uninterrupted run"

echo "== deadline interrupt exits 3 =="
STATUS=0
$CLI $CFG --deadline-ms 0 > /dev/null 2>&1 || STATUS=$?
if [ "$STATUS" -ne 3 ]; then
    echo "FAIL: --deadline-ms 0 exited $STATUS, want 3" >&2
    exit 1
fi
echo "deadline interrupt exited 3 as expected"

echo "recovery smoke: OK"
