// rfidsched_load — load generator + saturation benchmark for the service
// (docs/service.md).
//
//   rfidsched_load --mode closed|open|emit|bench [options]
//
// Modes:
//   closed  Closed-loop generator: --concurrency clients each keep exactly
//           one request outstanding against an *in-process* Service until
//           --requests have been submitted.  Deterministic by construction
//           (no queue overflow at concurrency <= queue), so its svc.*
//           counters are the bench_compare gate for PR7.  Prints a JSON
//           summary to stdout.
//   open    Open-loop Poisson generator: arrivals at --rate req/s
//           (exponential gaps, seeded) for --duration-s seconds, regardless
//           of completions — the mode that drives the daemon past
//           saturation and exercises shedding.  Prints a JSON summary.
//   emit    Writes --requests request specs (the line protocol) to stdout
//           for piping into rfidsched_serve — the soak harness transport.
//           --hang-first marks request 0 with hang-ms (watchdog bait);
//           --pace-ms paces every request's slots (slow but live).
//   bench   Saturation sweep: measures closed-loop capacity, then runs
//           open-loop points at 0.5x / 1x / 2x that rate and reports
//           req/s vs p50/p99 latency and shed rate — the BENCH_PR7.json
//           "service_saturation" section, with the closed-loop counters as
//           the deterministic "service_closed_loop" section.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "service/request.h"
#include "service/service.h"
#include "workload/rng.h"

namespace {

using Clock = std::chrono::steady_clock;
using rfid::service::RequestSpec;
using rfid::service::Response;
using rfid::service::Service;
using rfid::service::ServiceOptions;
using rfid::service::Status;

struct Args {
  std::string mode = "closed";
  int requests = 64;
  int concurrency = 8;
  int workers = 2;
  int queue = 16;
  std::string shed = "newest";
  int threads = 1;
  double rate = 20.0;      // open/bench: arrivals per second
  double duration_s = 3.0; // open/bench: per-point run time
  std::uint64_t seed = 1;
  // Workload shape (kept small so a point finishes in seconds).
  int readers = 40;
  int tags = 800;
  double side = 90.0;
  std::string algo = "alg2";
  int deadline_ms = 0;
  int retries = -1;        // -1 = inherit the service default
  int stall_ms = 0;        // 0 = stall detection off (closed-loop default)
  int hang_first_ms = 0;   // emit: wedge request 0
  int pace_ms = 0;
  std::string fault_path;  // service-wide plan for closed/open/bench
  std::string ckpt_dir;
};

void usage() {
  std::cerr <<
      "usage: rfidsched_load --mode closed|open|emit|bench\n"
      "  common:  --requests N --concurrency C --workers W --queue Q\n"
      "           --shed newest|largest --threads N --seed S\n"
      "           --readers N --tags M --side S --algo A --deadline-ms N\n"
      "           --retries N --stall-ms N --fault PATH --ckpt-dir DIR\n"
      "  open:    --rate RPS --duration-s S\n"
      "  emit:    --hang-first MS --pace-ms MS\n"
      "  bench:   --rate (ignored; sweeps 0.5x/1x/2x measured capacity)\n";
}

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (f == "--mode" && (v = next())) a.mode = v;
    else if (f == "--requests" && (v = next())) a.requests = std::atoi(v);
    else if (f == "--concurrency" && (v = next())) a.concurrency = std::atoi(v);
    else if (f == "--workers" && (v = next())) a.workers = std::atoi(v);
    else if (f == "--queue" && (v = next())) a.queue = std::atoi(v);
    else if (f == "--shed" && (v = next())) a.shed = v;
    else if (f == "--threads" && (v = next())) a.threads = std::atoi(v);
    else if (f == "--rate" && (v = next())) a.rate = std::atof(v);
    else if (f == "--duration-s" && (v = next())) a.duration_s = std::atof(v);
    else if (f == "--seed" && (v = next())) a.seed = std::strtoull(v, nullptr, 10);
    else if (f == "--readers" && (v = next())) a.readers = std::atoi(v);
    else if (f == "--tags" && (v = next())) a.tags = std::atoi(v);
    else if (f == "--side" && (v = next())) a.side = std::atof(v);
    else if (f == "--algo" && (v = next())) a.algo = v;
    else if (f == "--deadline-ms" && (v = next())) a.deadline_ms = std::atoi(v);
    else if (f == "--retries" && (v = next())) a.retries = std::atoi(v);
    else if (f == "--stall-ms" && (v = next())) a.stall_ms = std::atoi(v);
    else if (f == "--hang-first" && (v = next())) a.hang_first_ms = std::atoi(v);
    else if (f == "--pace-ms" && (v = next())) a.pace_ms = std::atoi(v);
    else if (f == "--fault" && (v = next())) a.fault_path = v;
    else if (f == "--ckpt-dir" && (v = next())) a.ckpt_dir = v;
    else {
      std::cerr << "unknown or valueless option: " << f << "\n";
      return false;
    }
  }
  if (a.mode != "closed" && a.mode != "open" && a.mode != "emit" &&
      a.mode != "bench") {
    std::cerr << "invalid --mode: " << a.mode << "\n";
    return false;
  }
  if (a.requests < 1 || a.concurrency < 1 || a.workers < 1 || a.queue < 1 ||
      a.rate <= 0.0 || a.duration_s <= 0.0) {
    std::cerr << "nonpositive count/rate/duration\n";
    return false;
  }
  return true;
}

RequestSpec specFor(const Args& a, int index) {
  RequestSpec s;
  s.id = "load-" + std::to_string(index);
  s.algo = a.algo;
  s.readers = a.readers;
  s.tags = a.tags;
  s.side = a.side;
  s.seed = a.seed + static_cast<std::uint64_t>(index);
  s.deadline_ms = a.deadline_ms;
  s.retries = a.retries;
  s.pace_ms = a.pace_ms;
  s.checkpoint = !a.ckpt_dir.empty();
  return s;
}

/// Per-run tally, mutex-guarded (completions land on waiter threads).
struct Tally {
  std::mutex mu;
  std::vector<double> latency_ms;
  std::int64_t sent = 0;
  std::int64_t completed = 0;
  std::int64_t cancelled = 0;
  std::int64_t failed = 0;
  std::int64_t rejected = 0;

  void account(const Response& r) {
    std::lock_guard<std::mutex> lk(mu);
    switch (r.status) {
      case Status::kOk:
        ++completed;
        latency_ms.push_back(r.latency_ms);
        break;
      case Status::kCancelled: ++cancelled; break;
      case Status::kFailed: ++failed; break;
      case Status::kRejected: ++rejected; break;
    }
  }
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

ServiceOptions serviceOptions(const Args& a, const rfid::fault::FaultPlan* plan,
                              rfid::obs::MetricsRegistry* metrics) {
  ServiceOptions opt;
  opt.workers = a.workers;
  opt.queue_capacity = static_cast<std::size_t>(a.queue);
  opt.shed = a.shed == "largest" ? rfid::service::ShedPolicy::kRejectLargest
                                 : rfid::service::ShedPolicy::kRejectNewest;
  opt.stall_window_ms = a.stall_ms;
  if (a.retries >= 0) opt.default_retries = a.retries;
  opt.checkpoint_dir = a.ckpt_dir;
  opt.default_faults = plan != nullptr && !plan->empty() ? plan : nullptr;
  opt.metrics = metrics;
  opt.solver_threads = a.threads;
  return opt;
}

/// Closed loop: `concurrency` clients, each submit → wait → submit, until
/// `requests` have been issued.  Returns elapsed seconds.
double runClosedLoop(Service& svc, const Args& a, Tally& tally) {
  std::atomic<int> next{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(a.concurrency));
  for (int c = 0; c < a.concurrency; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= a.requests) return;
        Response reject;
        auto ticket = svc.submit(specFor(a, i), &reject);
        {
          std::lock_guard<std::mutex> lk(tally.mu);
          ++tally.sent;
        }
        if (ticket == nullptr) {
          tally.account(reject);
          continue;
        }
        tally.account(ticket->wait());
      }
    });
  }
  for (auto& t : clients) t.join();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Open loop: Poisson arrivals at `rate` for `duration_s`, completions
/// collected on detached-by-join waiter threads.  Returns elapsed seconds.
double runOpenLoop(Service& svc, const Args& a, double rate, Tally& tally) {
  rfid::workload::Rng rng(rfid::workload::deriveSeed(a.seed, "load.arrivals"));
  const auto t0 = Clock::now();
  const auto until = t0 + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(a.duration_s));
  std::vector<std::thread> waiters;
  int index = 0;
  auto arrival = t0;
  while (arrival < until) {
    std::this_thread::sleep_until(arrival);
    Response reject;
    auto ticket = svc.submit(specFor(a, index), &reject);
    {
      std::lock_guard<std::mutex> lk(tally.mu);
      ++tally.sent;
    }
    if (ticket == nullptr) {
      tally.account(reject);
    } else {
      waiters.emplace_back(
          [ticket, &tally] { tally.account(ticket->wait()); });
    }
    ++index;
    // Exponential inter-arrival gap: -ln(U)/rate.
    const double u = std::max(1e-12, rng.uniform(0.0, 1.0));
    arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(-std::log(u) / rate));
  }
  svc.waitIdle([] { return false; });
  for (auto& t : waiters) t.join();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void writeCounters(std::ostream& os, rfid::obs::MetricsRegistry& reg) {
  // Deterministic svc.* / mcs.* / sched.* counters only — the
  // bench_compare gate reads exactly these keys.
  const char* keys[] = {"svc.admitted",  "svc.completed", "svc.failed",
                        "svc.cancelled", "svc.rejected",  "svc.retries",
                        "mcs.slots",     "mcs.tags_read",
                        "sched.schedule_calls", "sched.weight_evals"};
  bool first = true;
  os << "{";
  for (const char* k : keys) {
    if (!first) os << ",";
    first = false;
    os << "\"" << k << "\":" << reg.counter(k).value();
  }
  os << "}";
}

void writeTally(std::ostream& os, const Tally& t, double elapsed_s) {
  os << "{\"sent\":" << t.sent << ",\"completed\":" << t.completed
     << ",\"cancelled\":" << t.cancelled << ",\"failed\":" << t.failed
     << ",\"rejected\":" << t.rejected << ",\"elapsed_s\":" << elapsed_s
     << ",\"throughput_rps\":"
     << (elapsed_s > 0.0 ? static_cast<double>(t.completed) / elapsed_s : 0.0)
     << ",\"p50_ms\":" << percentile(t.latency_ms, 50)
     << ",\"p99_ms\":" << percentile(t.latency_ms, 99) << "}";
}

int runEmit(const Args& a) {
  for (int i = 0; i < a.requests; ++i) {
    const RequestSpec s = specFor(a, i);
    std::cout << "request " << s.id << "\n"
              << "algo " << s.algo << "\n"
              << "readers " << s.readers << "\n"
              << "tags " << s.tags << "\n"
              << "side " << s.side << "\n"
              << "seed " << s.seed << "\n";
    if (s.deadline_ms > 0) std::cout << "deadline-ms " << s.deadline_ms << "\n";
    if (s.retries >= 0) std::cout << "retries " << s.retries << "\n";
    if (s.pace_ms > 0) std::cout << "pace-ms " << s.pace_ms << "\n";
    if (i == 0 && a.hang_first_ms > 0) {
      std::cout << "hang-ms " << a.hang_first_ms << "\n";
    }
    std::cout << "end\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rfid;
  Args args;
  if (!parse(argc, argv, args)) {
    usage();
    return 2;
  }
  if (args.mode == "emit") return runEmit(args);

  fault::FaultPlan plan;
  if (!args.fault_path.empty()) {
    std::string err;
    auto loaded = fault::FaultPlan::loadFile(args.fault_path, &err);
    if (!loaded) {
      std::cerr << "failed to load fault plan: " << err << "\n";
      return 2;
    }
    plan = std::move(*loaded);
  }

  if (args.mode == "closed" || args.mode == "open") {
    obs::MetricsRegistry reg;
    Service svc(serviceOptions(args, &plan, &reg));
    svc.start();
    Tally tally;
    const double elapsed =
        args.mode == "closed" ? runClosedLoop(svc, args, tally)
                              : runOpenLoop(svc, args, args.rate, tally);
    svc.drain(1000);
    std::cout << "{\"mode\":\"" << args.mode << "\",\"summary\":";
    writeTally(std::cout, tally, elapsed);
    std::cout << ",\"counters\":";
    writeCounters(std::cout, reg);
    std::cout << "}\n";
    // Closed-loop clients wait for each other, so nothing may fail or be
    // shed; open loop legitimately sheds at rates past capacity.
    if (args.mode == "closed") {
      return tally.completed == tally.sent && tally.failed == 0 ? 0 : 1;
    }
    return tally.failed == 0 ? 0 : 1;
  }

  // bench: closed-loop capacity probe, then 0.5x / 1x / 2x open-loop sweep.
  obs::MetricsRegistry closed_reg;
  Tally closed_tally;
  double closed_elapsed = 0.0;
  {
    Service svc(serviceOptions(args, &plan, &closed_reg));
    svc.start();
    closed_elapsed = runClosedLoop(svc, args, closed_tally);
    svc.drain(1000);
  }
  const double capacity_rps =
      closed_elapsed > 0.0
          ? static_cast<double>(closed_tally.completed) / closed_elapsed
          : 1.0;

  std::cout << "{\"service_closed_loop\":{\"summary\":";
  writeTally(std::cout, closed_tally, closed_elapsed);
  std::cout << ",\"counters\":";
  writeCounters(std::cout, closed_reg);
  std::cout << "},\"capacity_rps\":" << capacity_rps
            << ",\"service_saturation\":[";
  const double factors[] = {0.5, 1.0, 2.0};
  bool first = true;
  for (const double f : factors) {
    const double rate = std::max(0.5, capacity_rps * f);
    obs::MetricsRegistry reg;
    Service svc(serviceOptions(args, &plan, &reg));
    svc.start();
    Tally tally;
    const double elapsed = runOpenLoop(svc, args, rate, tally);
    svc.drain(2000);
    if (!first) std::cout << ",";
    first = false;
    std::cout << "{\"factor\":" << f << ",\"rate_rps\":" << rate
              << ",\"shed\":" << tally.rejected << ",\"stats\":";
    writeTally(std::cout, tally, elapsed);
    std::cout << "}";
  }
  std::cout << "]}\n";
  return 0;
}
