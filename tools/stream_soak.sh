#!/bin/sh
# stream_soak.sh — streaming chaos soak (docs/streaming.md).
#
#   1. generate one bursty churn trace (10x MMPP bursts) and run the
#      streaming driver over it journaled and under the paranoid index
#      oracle — every slot's incremental CSR index is verified against a
#      from-scratch geometry rebuild; any divergence exits 5;
#   2. run the same trace again and SIGKILL the process mid-stream;
#   3. resume from the journal and require stdout byte-identical to the
#      uninterrupted run — the churn replay, the shed decisions, and the
#      latency percentiles must all survive a crash;
#   4. re-verify the resumed run's oracle report shows zero divergences.
#
# Usage: tools/stream_soak.sh [path-to-rfidsched_cli]
set -eu

CLI="${1:-build/tools/rfidsched_cli}"
[ -x "$CLI" ] || { echo "stream_soak: CLI not found at $CLI" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Big enough to take a few hundred ms (room to kill mid-stream); 10x bursts
# against a backlog bound and a service deadline so both shed paths run.
CFG="--mode stream --algo alg2 --readers 150 --tags 3000 --side 110 --seed 23 \
  --arrival-rate 20 --depart-rate 6 --move-rate 6 --stream-slots 120 \
  --burst 10 --burst-enter 0.1 --burst-exit 0.25 \
  --max-backlog 400 --shed-after 40 --check=paranoid"

echo "== generate the churn trace once, reuse it everywhere =="
$CLI $CFG --save-churn "$TMP/churn.csv" > /dev/null 2>&1

echo "== baseline (uninterrupted, journaled, paranoid oracle) =="
$CLI $CFG --churn "$TMP/churn.csv" --checkpoint "$TMP/jbase" \
  > "$TMP/base.out" 2> "$TMP/base.err"
grep -q "check: ok" "$TMP/base.err" || {
  echo "FAIL: paranoid oracle did not report clean" >&2
  cat "$TMP/base.err" >&2
  exit 1
}

echo "== SIGKILL mid-stream =="
$CLI $CFG --churn "$TMP/churn.csv" --checkpoint "$TMP/j" \
  > "$TMP/killed.out" 2>/dev/null &
PID=$!
# Wait for real progress: header + at least 3 committed slot records.
TRIES=0
while [ "$(cat "$TMP/j" 2>/dev/null | wc -l)" -lt 4 ]; do
    if ! kill -0 "$PID" 2>/dev/null; then break; fi
    TRIES=$((TRIES + 1))
    [ "$TRIES" -gt 30000 ] && { echo "timed out waiting for journal" >&2; exit 1; }
    sleep 0.001 2>/dev/null || sleep 1
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

echo "== resume and compare =="
$CLI $CFG --churn "$TMP/churn.csv" --checkpoint "$TMP/j" --resume \
  > "$TMP/resumed.out" 2> "$TMP/resumed.err"
if ! cmp -s "$TMP/base.out" "$TMP/resumed.out"; then
    echo "FAIL: resumed stream differs from uninterrupted run" >&2
    diff "$TMP/base.out" "$TMP/resumed.out" >&2 || true
    exit 1
fi
echo "resumed stream byte-identical to uninterrupted run"

echo "== zero divergences across the soak =="
for ERR in "$TMP/base.err" "$TMP/resumed.err"; do
    if grep -q "index divergence" "$ERR"; then
        echo "FAIL: index oracle reported a divergence in $ERR" >&2
        cat "$ERR" >&2
        exit 1
    fi
    grep -q "check: ok" "$ERR" || {
        echo "FAIL: no clean oracle verdict in $ERR" >&2
        cat "$ERR" >&2
        exit 1
    }
done
echo "paranoid oracle: zero divergences"

# The overload machinery must actually have engaged under the 10x bursts —
# a soak that never sheds is not a soak.
grep -q "overload:" "$TMP/base.out" || {
    echo "FAIL: no overload report in stream output" >&2
    cat "$TMP/base.out" >&2
    exit 1
}

echo "stream soak: OK"
