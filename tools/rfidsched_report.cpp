// rfidsched_report — post-mortem analyzer for rfidsched_cli telemetry.
//
//   rfidsched_report [--metrics PATH] [--jsonl PATH] [--cost PATH]
//                    [--baseline-metrics PATH] [--baseline-cost PATH]
//                    [--svg PATH] [--top N] [--slots N] [--mask-wall]
//
// Ingests whatever a run wrote (--metrics JSON dump, --jsonl span log,
// --cost attribution ledger) and prints a human-readable report: run
// summary, deterministic per-phase cost attribution, per-slot timeline, top
// span phases by inclusive/exclusive wall time, and fault / checkpoint /
// check summaries.  At least one input file is required.
//
// --baseline-metrics loads a second run and appends a counter-by-counter
// comparison (baseline / current / ratio) — pointing it at a --ref-eval
// run's metrics reproduces the lazy-vs-reference weight-eval headline from
// docs/performance.md straight from recorded telemetry.  --baseline-cost
// additionally compares total cost-ledger work units.
//
// --svg renders the per-slot timeline (tags delivered, work units) as a
// line chart.  --mask-wall blanks every wall-clock figure and switches
// wall-ranked tables to name order so the text output is byte-stable for
// golden tests (tools/check_goldens.sh).
//
// Exit codes: 0 success; 2 bad usage or unreadable/unparseable input.
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/report.h"

namespace {

void usage() {
  std::cerr <<
      "usage: rfidsched_report [--metrics PATH] [--jsonl PATH] [--cost PATH]\n"
      "                        [--baseline-metrics PATH] [--baseline-cost PATH]\n"
      "                        [--svg PATH] [--top N] [--slots N] [--mask-wall]\n"
      "\n"
      "  --metrics PATH    metrics JSON written by rfidsched_cli --metrics\n"
      "  --jsonl PATH      span log written by rfidsched_cli --jsonl\n"
      "  --cost PATH       cost ledger written by rfidsched_cli --cost\n"
      "  --baseline-metrics PATH  second run's metrics; appends a comparison\n"
      "  --baseline-cost PATH     second run's cost ledger (with the above)\n"
      "  --svg PATH        render the per-slot timeline as an SVG chart\n"
      "  --top N           span-phase rows to show (default 10)\n"
      "  --slots N         timeline rows before eliding (default 25)\n"
      "  --mask-wall       blank wall-clock figures (deterministic output)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rfid;
  std::string metrics_path, jsonl_path, cost_path;
  std::string base_metrics_path, base_cost_path;
  std::string svg_path;
  analysis::ReportOptions opt;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--metrics" && (v = next())) metrics_path = v;
    else if (a == "--jsonl" && (v = next())) jsonl_path = v;
    else if (a == "--cost" && (v = next())) cost_path = v;
    else if (a == "--baseline-metrics" && (v = next())) base_metrics_path = v;
    else if (a == "--baseline-cost" && (v = next())) base_cost_path = v;
    else if (a == "--svg" && (v = next())) svg_path = v;
    else if (a == "--top" && (v = next())) opt.top_spans = std::atoi(v);
    else if (a == "--slots" && (v = next())) opt.max_slot_rows = std::atoi(v);
    else if (a == "--mask-wall") opt.mask_wall = true;
    else {
      std::cerr << (v == nullptr && (a == "--metrics" || a == "--jsonl" ||
                                     a == "--cost" || a == "--svg" ||
                                     a == "--baseline-metrics" ||
                                     a == "--baseline-cost" || a == "--top" ||
                                     a == "--slots")
                        ? "missing value for option: "
                        : "unknown option: ")
                << a << "\n";
      usage();
      return 2;
    }
  }
  if (metrics_path.empty() && jsonl_path.empty() && cost_path.empty()) {
    std::cerr << "no input: give at least one of --metrics/--jsonl/--cost\n";
    usage();
    return 2;
  }
  if (!base_cost_path.empty() && base_metrics_path.empty()) {
    std::cerr << "--baseline-cost requires --baseline-metrics\n";
    usage();
    return 2;
  }

  analysis::RunTelemetry run;
  std::string err;
  const auto load = [&err](bool ok, const std::string& path) {
    if (!ok) std::cerr << "failed to load " << path << ": " << err << "\n";
    return ok;
  };
  if (!metrics_path.empty() &&
      !load(analysis::loadMetricsFile(metrics_path, run, &err), metrics_path)) {
    return 2;
  }
  if (!jsonl_path.empty() &&
      !load(analysis::loadTraceFile(jsonl_path, run, &err), jsonl_path)) {
    return 2;
  }
  if (!cost_path.empty() &&
      !load(analysis::loadCostFile(cost_path, run, &err), cost_path)) {
    return 2;
  }

  std::cout << analysis::renderReport(run, opt);

  if (!base_metrics_path.empty()) {
    analysis::RunTelemetry base;
    if (!load(analysis::loadMetricsFile(base_metrics_path, base, &err),
              base_metrics_path)) {
      return 2;
    }
    if (!base_cost_path.empty() &&
        !load(analysis::loadCostFile(base_cost_path, base, &err),
              base_cost_path)) {
      return 2;
    }
    std::cout << '\n' << analysis::renderComparison(base, run);
  }

  if (!svg_path.empty()) {
    if (!analysis::hasPerSlotData(run)) {
      // Not an error: a metrics-only run (or a NO_OBS build's stub
      // telemetry) simply has nothing to chart.
      std::cerr << "svg skipped: no per-slot data in the loaded telemetry\n";
    } else if (analysis::writeReportSvgFile(svg_path, run)) {
      std::cout << "svg written to " << svg_path << '\n';
    } else {
      std::cerr << "failed to write svg to " << svg_path << "\n";
      return 2;
    }
  }
  return 0;
}
