#!/usr/bin/env bash
# mutation_smoke.sh — prove the --check oracle has teeth (docs/testing.md).
#
# For each seeded mutant below, copy the source tree into a scratch
# directory, apply exactly one bug to the production code, build only the
# CLI, and require that `rfidsched_cli --check` exits 5 (invariant
# violation).  Finally, build the *unmutated* tree the same way and require
# a clean exit — so the harness fails both when the oracle goes blind and
# when it cries wolf.
#
#   usage: tools/mutation_smoke.sh [scratch-dir]
#
# The scratch dir defaults to a fresh mktemp dir and is removed on success.
# Each mutant is applied by a sed replacement that is grep-verified to
# match exactly once, so silent drift of the mutation target fails loudly.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
scratch="${1:-$(mktemp -d /tmp/rfidsched-mutants.XXXXXX)}"
mkdir -p "$scratch"

# Four runs per tree, and a mutant is caught if any exits 5:
#
#  * a generated instance — small enough to build+run in seconds, big enough
#    that every mutated code path executes.  GHC keeps the search cheap even
#    under a mutated independence predicate (a flipped comparison makes the
#    interference graph dense, which would blow up exact B&B).
#  * a hand-crafted deployment where two *independent* readers (dist 8 >
#    R = 5) have overlapping interrogation disks (γ = 4.5) that both cover
#    the midpoint tag, and flanking tags make the pair strictly better than
#    either single so GHC really commits it.  That slot has a tag with
#    radiator multiplicity 2 — the only way to observe the exactly-one
#    filter, since feasible schedules on the generated workload rarely
#    overlap interrogation zones.
gen_args="--algo ghc --mode mcs --readers 25 --tags 300 --side 70 --seed 11 --check"
# A churn run for the streaming index oracle: departures and moves splice
# the dual CSR index in place, and --oracle-every 1 verifies it against a
# from-scratch geometry rebuild after every slot.
stream_args="--algo alg2 --mode stream --readers 25 --tags 300 --side 70 --seed 11 \
  --arrival-rate 4 --depart-rate 2 --move-rate 1 --stream-slots 30 \
  --oracle-every 1 --check"
overlap_csv="$scratch/overlap.csv"
cat > "$overlap_csv" <<'EOF'
# rfidsched deployment v1
reader,0,0,0,5,4.5
reader,1,8,0,5,4.5
tag,0,4,0,100
tag,1,0,1,101
tag,2,0,-1,102
tag,3,8,1,103
tag,4,8,-1,104
EOF
overlap_args="--load $overlap_csv --algo ghc --mode mcs --check"
# The overlap deployment again, scheduled by the CSR reference referee.
# Since PR9 the bitmap index drives weight evaluation by default, so a bug
# confined to the CSR exactly-one path (e.g. drop-exactly-one) no longer
# perturbs default-mode schedules; this run keeps that path observable.
ref_args="--load $overlap_csv --algo ghc --mode mcs --check --ref-eval"
# A Gen2 link-layer replay (PR10): the co-simulation self-checks fresh-read
# accounting, double acks, and session-persistence windows, escalated to
# exit 5 under --check.  Only this run executes src/protocol/gen2.cpp.
gen2_args="--algo ghc --mode mcs --readers 25 --tags 300 --side 70 --seed 11 --check --link gen2"

# name|file|pattern|replacement  (POSIX basic regexps for sed/grep -c)
mutants=(
  "flip-independence|src/core/reader.h|return geom::dist2(a.pos, b.pos) > m \* m;|return geom::dist2(a.pos, b.pos) < m * m;"
  "drop-exactly-one|src/core/system.cpp|count\[static_cast<std::size_t>(t)\] == 1|count[static_cast<std::size_t>(t)] >= 1"
  "csr-off-by-one|src/core/system.h|covr_off_\[static_cast<std::size_t>(t) + 1\]|covr_off_[static_cast<std::size_t>(t)]"
  "drop-mark-read|src/sched/mcs.cpp|    sys.markRead(served);|    // sys.markRead(served);"
  "churn-skip-covr-delta|src/core/system.cpp|  covrReplace(t, {});|  // covrReplace(t, {});"
  # Bitmap desync: an arriving/moving tag that needs a fresh 64-tag block in
  # its coverer's row gets a zero-bit entry — the bit is lost and a zero
  # word is stored (canonical-form violation), so the CSR and bitmap
  # referees drift apart, which the oracle's independently rebuilt bitmap
  # fingerprint must flag.
  "bitmap-desync-insert|src/core/system.cpp|bit_arena_\[--write\] = BitEntry{w, 0, mask};|bit_arena_[--write] = BitEntry{w, 0, 0};"
  # Gen2 session amnesia: acked tags never set their inventoried flag, so an
  # S2 tag covered in a later macro-slot replies and is re-identified inside
  # its persistence window — the link replay's persistence check exits 5.
  "gen2-skip-session-ack|src/protocol/gen2.cpp|          session.onAck(t, macro_slot, target);|          // session.onAck(t, macro_slot, target);"
  # Gen2 MPR off-by-one: a singleton slot (occupancy 1 vs k=1) classifies as
  # a collision, so no tag is ever identified; the round burns its frame cap,
  # reports incomplete, and the replay check exits 5.  Deterministic, no UB.
  "gen2-mpr-threshold-off|src/protocol/gen2.cpp|static_cast<int>(b.size()) <= k|static_cast<int>(b.size()) < k"
)

run_cli() {
  # $1 = tree, $2 = args; prints the exit code.
  local tree="$1" got=0
  # shellcheck disable=SC2086
  "$tree/build/tools/rfidsched_cli" $2 \
    > "$tree/stdout.txt" 2> "$tree/stderr.txt" || got=$?
  echo "$got"
}

build_and_check() {
  # $1 = tree, $2 = expected exit code (5 = mutant, 0 = clean), $3 = label
  local tree="$1" want="$2" label="$3"
  cmake -S "$tree" -B "$tree/build" \
    -DRFIDSCHED_BUILD_TESTS=OFF -DRFIDSCHED_BUILD_BENCH=OFF \
    -DRFIDSCHED_BUILD_EXAMPLES=OFF > /dev/null
  cmake --build "$tree/build" --target rfidsched_cli -j > /dev/null
  local g1 g2 g3 g4 g5
  g1=$(run_cli "$tree" "$gen_args")
  local why="$(tail -1 "$tree/stderr.txt")"
  g2=$(run_cli "$tree" "$overlap_args")
  [ "$g2" -eq 5 ] && why="$(tail -1 "$tree/stderr.txt")"
  g3=$(run_cli "$tree" "$stream_args")
  [ "$g3" -eq 5 ] && why="$(tail -1 "$tree/stderr.txt")"
  g4=$(run_cli "$tree" "$ref_args")
  [ "$g4" -eq 5 ] && why="$(tail -1 "$tree/stderr.txt")"
  g5=$(run_cli "$tree" "$gen2_args")
  [ "$g5" -eq 5 ] && why="$(tail -1 "$tree/stderr.txt")"
  case "$g1$g2$g3$g4$g5" in *[!05]*)
    echo "FAIL [$label]: unexpected exits gen=$g1 overlap=$g2 stream=$g3 ref=$g4 gen2=$g5" >&2
    sed 's/^/    /' "$tree/stderr.txt" >&2
    return 1
  esac
  if [ "$want" -eq 5 ]; then
    if [ "$g1" -ne 5 ] && [ "$g2" -ne 5 ] && [ "$g3" -ne 5 ] && [ "$g4" -ne 5 ] && [ "$g5" -ne 5 ]; then
      echo "FAIL [$label]: mutant escaped (gen=$g1 overlap=$g2 stream=$g3 ref=$g4 gen2=$g5)" >&2
      return 1
    fi
  elif [ "$g1" -ne 0 ] || [ "$g2" -ne 0 ] || [ "$g3" -ne 0 ] || [ "$g4" -ne 0 ] || [ "$g5" -ne 0 ]; then
    echo "FAIL [$label]: clean tree flagged (gen=$g1 overlap=$g2 stream=$g3 ref=$g4 gen2=$g5)" >&2
    sed 's/^/    /' "$tree/stderr.txt" >&2
    return 1
  fi
  echo "ok   [$label]: gen=$g1 overlap=$g2 stream=$g3 ref=$g4 gen2=$g5 ($why)"
}

copy_tree() {
  # Only what a TESTS/BENCH/EXAMPLES-off configure needs.
  local dst="$1"
  rm -rf "$dst"
  mkdir -p "$dst"
  tar -C "$repo" -cf - CMakeLists.txt src tools | tar -xf - -C "$dst"
}

fails=0
for spec in "${mutants[@]}"; do
  IFS='|' read -r name file pattern replacement _ <<< "$spec"
  tree="$scratch/$name"
  copy_tree "$tree"
  target="$tree/$file"
  hits=$(grep -c -- "$pattern" "$target" || true)
  if [ "$hits" -ne 1 ]; then
    echo "FAIL [$name]: mutation target matched $hits times in $file (want 1)" >&2
    fails=$((fails + 1))
    continue
  fi
  sed -i "s|$pattern|$replacement|" "$target"
  if cmp -s "$repo/$file" "$target"; then
    echo "FAIL [$name]: sed left $file unchanged" >&2
    fails=$((fails + 1))
    continue
  fi
  build_and_check "$tree" 5 "$name" || fails=$((fails + 1))
done

clean="$scratch/clean-head"
copy_tree "$clean"
build_and_check "$clean" 0 "clean-head" || fails=$((fails + 1))

if [ "$fails" -ne 0 ]; then
  echo "mutation smoke: $fails FAILURE(S); scratch kept at $scratch" >&2
  exit 1
fi
echo "mutation smoke: all ${#mutants[@]} mutants caught, clean tree passes"
rm -rf "$scratch"
