#include "analysis/chart.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace rfid::analysis {

namespace {

// A color-blind-friendly categorical palette (Okabe–Ito).
constexpr const char* kPalette[] = {"#0072b2", "#d55e00", "#009e73",
                                    "#cc79a7", "#e69f00", "#56b4e9",
                                    "#f0e442", "#000000"};
constexpr int kPaletteSize = 8;

/// Largest "nice" step (1/2/5 × 10^k) giving at most `max_ticks` intervals.
double niceStep(double range, int max_ticks) {
  if (range <= 0.0) return 1.0;
  const double rough = range / max_ticks;
  const double mag = std::pow(10.0, std::floor(std::log10(rough)));
  for (const double m : {1.0, 2.0, 5.0, 10.0}) {
    if (m * mag >= rough) return m * mag;
  }
  return 10.0 * mag;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

}  // namespace

std::string renderLineChart(const SeriesSet& set, const ChartOptions& opt) {
  const auto xs = set.xValues();
  const auto& names = set.seriesNames();

  // Data ranges (y covers mean ± ci).
  double x_lo = 0, x_hi = 1, y_lo = 0, y_hi = 1;
  bool first = true;
  for (const std::string& name : names) {
    for (const double x : xs) {
      const RunningStat* s = set.at(name, x);
      if (s == nullptr || s->count() == 0) continue;
      const double lo = s->mean() - s->ci95();
      const double hi = s->mean() + s->ci95();
      if (first) {
        x_lo = x_hi = x;
        y_lo = lo;
        y_hi = hi;
        first = false;
      } else {
        x_lo = std::min(x_lo, x);
        x_hi = std::max(x_hi, x);
        y_lo = std::min(y_lo, lo);
        y_hi = std::max(y_hi, hi);
      }
    }
  }
  if (opt.y_from_zero) y_lo = std::min(0.0, y_lo);
  if (x_hi - x_lo < 1e-12) x_hi = x_lo + 1.0;
  if (y_hi - y_lo < 1e-12) y_hi = y_lo + 1.0;
  y_hi += (y_hi - y_lo) * 0.05;  // headroom

  const double ml = 62, mr = 16, mt = opt.title.empty() ? 16 : 36, mb = 46;
  const double pw = opt.width - ml - mr;
  const double ph = opt.height - mt - mb;
  auto X = [&](double x) { return ml + (x - x_lo) / (x_hi - x_lo) * pw; };
  auto Y = [&](double y) { return mt + ph - (y - y_lo) / (y_hi - y_lo) * ph; };

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << opt.width
      << "' height='" << opt.height
      << "' font-family='sans-serif' font-size='11'>\n"
      << "<rect width='100%' height='100%' fill='white'/>\n";
  if (!opt.title.empty()) {
    svg << "<text x='" << opt.width / 2.0
        << "' y='20' text-anchor='middle' font-size='14'>" << opt.title
        << "</text>\n";
  }

  // Gridlines + ticks.
  const double ys = niceStep(y_hi - y_lo, 8);
  for (double y = std::ceil(y_lo / ys) * ys; y <= y_hi + 1e-9; y += ys) {
    svg << "<line x1='" << ml << "' y1='" << Y(y) << "' x2='" << ml + pw
        << "' y2='" << Y(y) << "' stroke='#eeeeee'/>\n"
        << "<text x='" << ml - 6 << "' y='" << Y(y) + 4
        << "' text-anchor='end'>" << fmt(y) << "</text>\n";
  }
  const double xstep = niceStep(x_hi - x_lo, 8);
  for (double x = std::ceil(x_lo / xstep) * xstep; x <= x_hi + 1e-9;
       x += xstep) {
    svg << "<line x1='" << X(x) << "' y1='" << mt + ph << "' x2='" << X(x)
        << "' y2='" << mt + ph + 4 << "' stroke='#444444'/>\n"
        << "<text x='" << X(x) << "' y='" << mt + ph + 17
        << "' text-anchor='middle'>" << fmt(x) << "</text>\n";
  }
  // Axes.
  svg << "<line x1='" << ml << "' y1='" << mt << "' x2='" << ml << "' y2='"
      << mt + ph << "' stroke='#444444'/>\n"
      << "<line x1='" << ml << "' y1='" << mt + ph << "' x2='" << ml + pw
      << "' y2='" << mt + ph << "' stroke='#444444'/>\n";
  if (!opt.x_label.empty()) {
    svg << "<text x='" << ml + pw / 2 << "' y='" << opt.height - 8
        << "' text-anchor='middle'>" << opt.x_label << "</text>\n";
  }
  if (!opt.y_label.empty()) {
    svg << "<text x='14' y='" << mt + ph / 2 << "' text-anchor='middle' "
        << "transform='rotate(-90 14 " << mt + ph / 2 << ")'>" << opt.y_label
        << "</text>\n";
  }

  // Series: CI whiskers behind, polyline, markers on top.
  for (std::size_t si = 0; si < names.size(); ++si) {
    const char* color = kPalette[si % kPaletteSize];
    std::ostringstream pts;
    for (const double x : xs) {
      const RunningStat* s = set.at(names[si], x);
      if (s == nullptr || s->count() == 0) continue;
      const double ci = s->ci95();
      if (ci > 0.0) {
        svg << "<line x1='" << X(x) << "' y1='" << Y(s->mean() - ci)
            << "' x2='" << X(x) << "' y2='" << Y(s->mean() + ci)
            << "' stroke='" << color << "' stroke-opacity='0.45'/>\n";
      }
      pts << X(x) << ',' << Y(s->mean()) << ' ';
    }
    svg << "<polyline points='" << pts.str() << "' fill='none' stroke='"
        << color << "' stroke-width='1.8'/>\n";
    for (const double x : xs) {
      const RunningStat* s = set.at(names[si], x);
      if (s == nullptr || s->count() == 0) continue;
      svg << "<circle cx='" << X(x) << "' cy='" << Y(s->mean())
          << "' r='2.8' fill='" << color << "'/>\n";
    }
  }

  // Legend (top-right inside the plot).
  const double lx = ml + pw - 86, ly = mt + 8;
  for (std::size_t si = 0; si < names.size(); ++si) {
    const double yy = ly + 16 * static_cast<double>(si);
    svg << "<line x1='" << lx << "' y1='" << yy << "' x2='" << lx + 18
        << "' y2='" << yy << "' stroke='" << kPalette[si % kPaletteSize]
        << "' stroke-width='2'/>\n"
        << "<text x='" << lx + 24 << "' y='" << yy + 4 << "'>" << names[si]
        << "</text>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

bool writeChartSvgFile(const std::string& path, const SeriesSet& set,
                       const ChartOptions& opt) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream os(path);
  if (!os) return false;
  os << renderLineChart(set, opt);
  return static_cast<bool>(os);
}

}  // namespace rfid::analysis
