// table.h — rendering experiment results as aligned text and CSV.
//
// The figure harnesses print the same rows the paper plots: one row per
// sweep value, one column per algorithm (mean ± 95% CI), so a reader can
// compare shapes against the paper directly from the terminal, and the CSV
// form feeds any plotting tool.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/series.h"

namespace rfid::analysis {

/// Prints `set` as an aligned table.  `x_label` heads the sweep column.
/// When `with_ci` is set, cells read "mean ±ci".
void printTable(std::ostream& os, const SeriesSet& set,
                const std::string& x_label, bool with_ci = true);

/// Writes `set` as CSV with columns x, <series>_mean, <series>_ci, ...
void writeCsv(std::ostream& os, const SeriesSet& set,
              const std::string& x_label);

/// Convenience: writes the CSV to `path`, creating parent dirs if needed.
/// Returns false (and leaves no partial file) on I/O failure.
bool writeCsvFile(const std::string& path, const SeriesSet& set,
                  const std::string& x_label);

}  // namespace rfid::analysis
