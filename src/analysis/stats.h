// stats.h — streaming statistics for experiment aggregation.
//
// Every figure in the paper averages a metric over random deployments.  The
// harness accumulates samples into RunningStat (Welford's algorithm: stable
// single-pass mean/variance) and reports mean ± 95% CI so the "shape"
// comparisons in EXPERIMENTS.md are backed by uncertainty estimates rather
// than single runs.
#pragma once

#include <cstdint>

namespace rfid::analysis {

/// Single-pass mean/variance accumulator (Welford).
class RunningStat {
 public:
  void add(double x);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double stderrMean() const;
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95() const { return 1.96 * stderrMean(); }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStat& o);

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rfid::analysis
