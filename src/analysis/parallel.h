// parallel.h — deterministic parallel sweeps.
//
// Experiment sweeps are embarrassingly parallel across seeds, and the
// library is built so parallelism cannot change results: every iteration
// derives its RNG by splitting (seed, label, index) — independent of
// execution order — and writes to its own output slot; accumulation happens
// afterwards, sequentially.  parallelFor is the minimal tool for that
// pattern: static block partitioning, one thread per block, join, first
// exception rethrown.
//
// (On a single-core CI box this degrades to a plain loop; the point is the
// *discipline* — results are bit-identical at any thread count.)
#pragma once

#include <functional>

namespace rfid::analysis {

/// Runs fn(i) for every i in [begin, end), distributed over up to
/// `num_threads` threads (0 = hardware concurrency).  Blocks until all
/// iterations finish.  If any iteration throws, the first exception (in
/// thread order) is rethrown after the join; remaining iterations of other
/// threads still run.
///
/// fn must be safe to call concurrently for distinct i — the intended use
/// writes each result to its own pre-sized slot.
void parallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int num_threads = 0);

}  // namespace rfid::analysis
