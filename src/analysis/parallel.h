// parallel.h — deterministic parallel sweeps.
//
// Experiment sweeps are embarrassingly parallel across seeds, and the
// library is built so parallelism cannot change results: every iteration
// derives its RNG by splitting (seed, label, index) — independent of
// execution order — and writes to its own output slot; accumulation happens
// afterwards, sequentially.  parallelFor is the minimal tool for that
// pattern: static block partitioning, one thread per block, join, first
// exception rethrown.
//
// The same discipline now also carries the scheduler hot paths (parallel
// PTAS shifts, growth-phase subproblems — docs/performance.md): those run
// thousands of small iterations per second, so the callable is a template
// parameter (no std::function allocation per call) and the chunked variant
// hands each worker a whole [lo, hi) block plus its worker index, letting
// callers keep per-worker scratch state without thread_local.
//
// (On a single-core CI box this degrades to a plain loop; the point is the
// *discipline* — results are bit-identical at any thread count.)
#pragma once

#include <algorithm>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace rfid::analysis {

/// Runs fn(worker, lo, hi) for a static partition of [begin, end) into up to
/// `num_threads` contiguous chunks (0 = hardware concurrency).  `worker` is
/// the chunk index, dense in [0, chunks); chunk boundaries depend only on
/// (begin, end, resolved thread count), never on scheduling.  Blocks until
/// all chunks finish.  If any chunk throws, the first exception (in worker
/// order) is rethrown after the join; other workers still run to completion.
///
/// fn must be safe to call concurrently for distinct chunks — the intended
/// use writes each result to its own pre-sized slot, keyed by iteration
/// index or worker index.
template <typename Fn>
void parallelForChunks(int begin, int end, Fn&& fn, int num_threads = 0) {
  const int n = end - begin;
  if (n <= 0) return;
  int threads = num_threads > 0
                    ? num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::clamp(threads, 1, n);

  const int chunk = (n + threads - 1) / threads;
  if (threads == 1) {
    fn(0, begin, end);
    return;
  }

  // Static block partition: worker t handles [begin + t*chunk, ...).
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const int lo = begin + t * chunk;
    const int hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, t, &fn, &errors]() {
      try {
        fn(t, lo, hi);
      } catch (...) {
        errors[static_cast<std::size_t>(t)] = std::current_exception();
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

/// Runs fn(i) for every i in [begin, end), distributed over up to
/// `num_threads` threads (0 = hardware concurrency).  Same contract as
/// parallelForChunks with the chunk loop inlined; the callable is a
/// template parameter, so tight per-index lambdas are invoked directly
/// (no std::function indirection on the hot path).
template <typename Fn>
void parallelFor(int begin, int end, Fn&& fn, int num_threads = 0) {
  parallelForChunks(
      begin, end,
      [&fn](int /*worker*/, int lo, int hi) {
        for (int i = lo; i < hi; ++i) fn(i);
      },
      num_threads);
}

/// The pre-template signature, kept as a thin wrapper so existing callers
/// (and code that stores the callable in a std::function anyway) compile
/// unchanged against the out-of-line definition.
void parallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int num_threads);

}  // namespace rfid::analysis
