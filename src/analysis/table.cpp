#include "analysis/table.h"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rfid::analysis {

namespace {

std::string cell(const RunningStat* s, bool with_ci) {
  if (s == nullptr || s->count() == 0) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << s->mean();
  if (with_ci && s->count() > 1) {
    os << " ±" << std::setprecision(2) << s->ci95();
  }
  return os.str();
}

}  // namespace

void printTable(std::ostream& os, const SeriesSet& set,
                const std::string& x_label, bool with_ci) {
  const auto xs = set.xValues();
  const auto& names = set.seriesNames();

  // Compute column widths.
  std::size_t xw = x_label.size();
  for (const double x : xs) {
    std::ostringstream tmp;
    tmp << std::fixed << std::setprecision(1) << x;
    xw = std::max(xw, tmp.str().size());
  }
  std::vector<std::size_t> widths;
  for (const auto& name : names) {
    std::size_t w = name.size();
    for (const double x : xs) w = std::max(w, cell(set.at(name, x), with_ci).size());
    widths.push_back(w);
  }

  os << std::left << std::setw(static_cast<int>(xw) + 2) << x_label;
  for (std::size_t c = 0; c < names.size(); ++c) {
    os << std::setw(static_cast<int>(widths[c]) + 2) << names[c];
  }
  os << '\n';
  for (const double x : xs) {
    std::ostringstream xv;
    xv << std::fixed << std::setprecision(1) << x;
    os << std::setw(static_cast<int>(xw) + 2) << xv.str();
    for (std::size_t c = 0; c < names.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2)
         << cell(set.at(names[c], x), with_ci);
    }
    os << '\n';
  }
}

void writeCsv(std::ostream& os, const SeriesSet& set,
              const std::string& x_label) {
  const auto xs = set.xValues();
  const auto& names = set.seriesNames();
  os << x_label;
  for (const auto& name : names) os << ',' << name << "_mean," << name << "_ci95";
  os << '\n';
  for (const double x : xs) {
    os << x;
    for (const auto& name : names) {
      const RunningStat* s = set.at(name, x);
      if (s == nullptr || s->count() == 0) {
        os << ",,";
      } else {
        os << ',' << s->mean() << ',' << s->ci95();
      }
    }
    os << '\n';
  }
}

bool writeCsvFile(const std::string& path, const SeriesSet& set,
                  const std::string& x_label) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream os(path);
  if (!os) return false;
  writeCsv(os, set, x_label);
  return static_cast<bool>(os);
}

}  // namespace rfid::analysis
