// svg.h — SVG rendering of deployments and schedules.
//
// A reproduction lives or dies by whether readers of the code can *see*
// what the scheduler decided.  This writer renders a deployment — tags as
// dots, interrogation disks solid, interference disks dashed — and
// optionally one slot's decision: active readers highlighted, their
// well-covered tags recolored.  Pure text output, no dependencies.
#pragma once

#include <span>
#include <string>

#include "core/system.h"

namespace rfid::analysis {

struct SvgOptions {
  double pixels_per_unit = 7.0;
  double margin_units = 5.0;
  bool draw_interference = true;   // dashed R_i disks
  bool draw_interrogation = true;  // solid γ_i disks
};

/// Renders the system (and optionally an active set) to an SVG string.
/// `active` readers are highlighted; tags currently well-covered by them
/// are drawn green, already-read tags gray, unread-uncovered tags black.
std::string renderSvg(const core::System& sys, std::span<const int> active,
                      const SvgOptions& opt = {});

/// Convenience: renderSvg to a file.  Returns false on I/O failure.
bool writeSvgFile(const std::string& path, const core::System& sys,
                  std::span<const int> active, const SvgOptions& opt = {});

}  // namespace rfid::analysis
