#include "analysis/svg.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "geometry/disk.h"

namespace rfid::analysis {

namespace {

/// Bounding box of everything drawable, in deployment units.
geom::Aabb sceneBounds(const core::System& sys, double margin) {
  geom::Aabb box{{0.0, 0.0}, {1.0, 1.0}};
  bool first = true;
  auto grow = [&box, &first](geom::Vec2 p, double r) {
    if (first) {
      box = {{p.x - r, p.y - r}, {p.x + r, p.y + r}};
      first = false;
      return;
    }
    box.lo.x = std::min(box.lo.x, p.x - r);
    box.lo.y = std::min(box.lo.y, p.y - r);
    box.hi.x = std::max(box.hi.x, p.x + r);
    box.hi.y = std::max(box.hi.y, p.y + r);
  };
  for (const core::Reader& r : sys.readers()) grow(r.pos, r.interference_radius);
  for (const core::Tag& t : sys.tags()) grow(t.pos, 0.0);
  box.lo.x -= margin;
  box.lo.y -= margin;
  box.hi.x += margin;
  box.hi.y += margin;
  return box;
}

}  // namespace

std::string renderSvg(const core::System& sys, std::span<const int> active,
                      const SvgOptions& opt) {
  const geom::Aabb box = sceneBounds(sys, opt.margin_units);
  const double s = opt.pixels_per_unit;
  const double w = box.width() * s;
  const double h = box.height() * s;
  // SVG's y axis points down; flip so the plot reads like the math.
  auto X = [&](double x) { return (x - box.lo.x) * s; };
  auto Y = [&](double y) { return h - (y - box.lo.y) * s; };

  std::vector<char> is_active(static_cast<std::size_t>(sys.numReaders()), 0);
  for (const int v : active) is_active[static_cast<std::size_t>(v)] = 1;
  const std::vector<int> served = sys.wellCoveredTags(active);

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w
      << "' height='" << h << "' viewBox='0 0 " << w << ' ' << h << "'>\n"
      << "<rect width='100%' height='100%' fill='white'/>\n";

  // Interference disks first (back layer), then interrogation, then points.
  if (opt.draw_interference) {
    for (const core::Reader& r : sys.readers()) {
      svg << "<circle cx='" << X(r.pos.x) << "' cy='" << Y(r.pos.y)
          << "' r='" << r.interference_radius * s
          << "' fill='none' stroke='#bbbbbb' stroke-dasharray='4 3'/>\n";
    }
  }
  if (opt.draw_interrogation) {
    for (const core::Reader& r : sys.readers()) {
      const bool on = is_active[static_cast<std::size_t>(r.id)] != 0;
      svg << "<circle cx='" << X(r.pos.x) << "' cy='" << Y(r.pos.y)
          << "' r='" << r.interrogation_radius * s << "' fill='"
          << (on ? "#2e7d3218" : "#1565c010") << "' stroke='"
          << (on ? "#2e7d32" : "#90a4ae") << "'/>\n";
    }
  }
  for (const core::Tag& t : sys.tags()) {
    const bool was_read = sys.isRead(t.id);
    const bool now = std::binary_search(served.begin(), served.end(), t.id);
    const char* color = now ? "#2e7d32" : (was_read ? "#cccccc" : "#212121");
    svg << "<circle cx='" << X(t.pos.x) << "' cy='" << Y(t.pos.y)
        << "' r='1.6' fill='" << color << "'/>\n";
  }
  for (const core::Reader& r : sys.readers()) {
    const bool on = is_active[static_cast<std::size_t>(r.id)] != 0;
    svg << "<rect x='" << X(r.pos.x) - 3.5 << "' y='" << Y(r.pos.y) - 3.5
        << "' width='7' height='7' fill='" << (on ? "#2e7d32" : "#c62828")
        << "'/>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

bool writeSvgFile(const std::string& path, const core::System& sys,
                  std::span<const int> active, const SvgOptions& opt) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream os(path);
  if (!os) return false;
  os << renderSvg(sys, active, opt);
  return static_cast<bool>(os);
}

}  // namespace rfid::analysis
