#include "analysis/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "analysis/chart.h"
#include "analysis/series.h"

namespace rfid::analysis {

// ---------------------------------------------------------------------------
// JSON parser.

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  bool parse(JsonValue& out, std::string* err) {
    skipWs();
    const bool ok = value(out);
    if (ok) {
      skipWs();
      if (pos_ != s_.size()) return fail("trailing garbage", err);
      return true;
    }
    if (err != nullptr) *err = err_;
    return false;
  }

 private:
  bool fail(const std::string& what, std::string* err = nullptr) {
    err_ = what + " at offset " + std::to_string(pos_);
    if (err != nullptr) *err = err_;
    return false;
  }

  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return string(out.str);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out.type = JsonValue::Type::kNull;
        return true;
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected key");
      std::string key;
      if (!string(key)) return false;
      skipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skipWs();
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skipWs();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      JsonValue item;
      if (!value(item)) return false;
      out.array.push_back(std::move(item));
      skipWs();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (our writers only ever emit
          // control characters here; surrogate pairs are out of scope).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    const std::string buf(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) {
      pos_ = start;
      return fail("bad number");
    }
    out.type = JsonValue::Type::kNumber;
    out.number = v;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const JsonValue* hit = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) hit = &v;
  }
  return hit;
}

double JsonValue::num(double fallback) const {
  return type == Type::kNumber ? number : fallback;
}

bool parseJson(std::string_view text, JsonValue& out, std::string* err) {
  return JsonParser(text).parse(out, err);
}

// ---------------------------------------------------------------------------
// Loaders.

namespace {

bool readFile(const std::string& path, std::string& out, std::string* err) {
  std::ifstream is(path);
  if (!is) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

void loadBill(const JsonValue& v, obs::CostBill& bill) {
  for (const auto& f : obs::kCostFields) {
    if (const JsonValue* m = v.find(f.name)) {
      bill.*f.member = static_cast<std::int64_t>(m->num());
    }
  }
}

}  // namespace

double ReportEvent::arg(std::string_view key, double fallback) const {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return fallback;
}

double RunTelemetry::counter(std::string_view name, double fallback) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

bool loadMetricsJson(std::string_view text, RunTelemetry& out,
                     std::string* err) {
  JsonValue root;
  if (!parseJson(text, root, err)) return false;
  if (root.type != JsonValue::Type::kObject) {
    if (err != nullptr) *err = "metrics JSON is not an object";
    return false;
  }
  if (const JsonValue* sec = root.find("counters")) {
    for (const auto& [name, v] : sec->object) out.counters[name] = v.num();
  }
  if (const JsonValue* sec = root.find("gauges")) {
    for (const auto& [name, v] : sec->object) out.gauges[name] = v.num();
  }
  if (const JsonValue* sec = root.find("histograms")) {
    for (const auto& [name, v] : sec->object) {
      HistogramSummary h;
      if (const JsonValue* m = v.find("count"))
        h.count = static_cast<std::int64_t>(m->num());
      if (const JsonValue* m = v.find("min")) h.min = m->num();
      if (const JsonValue* m = v.find("max")) h.max = m->num();
      if (const JsonValue* m = v.find("mean")) h.mean = m->num();
      if (const JsonValue* m = v.find("p50")) h.p50 = m->num();
      if (const JsonValue* m = v.find("p90")) h.p90 = m->num();
      if (const JsonValue* m = v.find("p99")) h.p99 = m->num();
      out.histograms[name] = h;
    }
  }
  out.has_metrics = true;
  return true;
}

bool loadTraceJsonl(std::string_view text, RunTelemetry& out,
                    std::string* err) {
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    JsonValue root;
    std::string perr;
    if (!parseJson(line, root, &perr) ||
        root.type != JsonValue::Type::kObject) {
      if (err != nullptr) {
        *err = "line " + std::to_string(lineno) + ": " +
               (perr.empty() ? "not an object" : perr);
      }
      return false;
    }
    ReportEvent e;
    if (const JsonValue* v = root.find("kind")) e.kind = v->str;
    if (const JsonValue* v = root.find("name")) e.name = v->str;
    if (const JsonValue* v = root.find("ts_us"))
      e.ts_us = static_cast<std::int64_t>(v->num());
    if (const JsonValue* v = root.find("dur_us"))
      e.dur_us = static_cast<std::int64_t>(v->num());
    if (const JsonValue* v = root.find("tid"))
      e.tid = static_cast<int>(v->num());
    if (const JsonValue* v = root.find("span_id"))
      e.span_id = static_cast<std::uint64_t>(v->num());
    if (const JsonValue* v = root.find("parent_id"))
      e.parent_id = static_cast<std::uint64_t>(v->num());
    if (const JsonValue* v = root.find("args")) {
      for (const auto& [k, a] : v->object) e.args.emplace_back(k, a.num());
    }
    out.events.push_back(std::move(e));
  }
  out.has_trace = true;
  return true;
}

bool loadCostJson(std::string_view text, RunTelemetry& out, std::string* err) {
  JsonValue root;
  if (!parseJson(text, root, err)) return false;
  if (root.type != JsonValue::Type::kObject) {
    if (err != nullptr) *err = "cost JSON is not an object";
    return false;
  }
  if (const JsonValue* total = root.find("total")) {
    loadBill(*total, out.cost_total);
  }
  if (const JsonValue* phases = root.find("phases")) {
    for (const auto& [name, v] : phases->object) {
      obs::CostBill b;
      loadBill(v, b);
      out.cost_phases.emplace_back(name, b);
    }
  }
  if (const JsonValue* slots = root.find("slots")) {
    for (const JsonValue& v : slots->array) {
      obs::CostBill b;
      loadBill(v, b);
      out.cost_slots.push_back(b);
    }
  }
  out.has_cost = true;
  return true;
}

bool loadMetricsFile(const std::string& path, RunTelemetry& out,
                     std::string* err) {
  std::string text;
  return readFile(path, text, err) && loadMetricsJson(text, out, err);
}

bool loadTraceFile(const std::string& path, RunTelemetry& out,
                   std::string* err) {
  std::string text;
  return readFile(path, text, err) && loadTraceJsonl(text, out, err);
}

bool loadCostFile(const std::string& path, RunTelemetry& out,
                  std::string* err) {
  std::string text;
  return readFile(path, text, err) && loadCostJson(text, out, err);
}

// ---------------------------------------------------------------------------
// Rendering.

namespace {

std::string fmtI64(std::int64_t v) { return std::to_string(v); }

std::string fmtDouble(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string fmtPct(double num, double den) {
  if (den <= 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * num / den);
  return buf;
}

std::string pad(std::string s, std::size_t width, bool right = true) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return right ? fill + s : s + fill;
}

/// "label ........ value" with dotted leaders, the report's key/value idiom.
void kv(std::ostream& os, std::string_view label, const std::string& value) {
  os << "  " << label << ' ';
  const std::size_t dots =
      label.size() + 1 < 30 ? 30 - (label.size() + 1) : 2;
  os << std::string(dots, '.') << ' ' << value << '\n';
}

struct SpanAgg {
  std::string name;
  std::int64_t count = 0;
  std::int64_t incl_us = 0;
  std::int64_t excl_us = 0;
};

/// Aggregate the span tree by name: inclusive = summed durations,
/// exclusive = inclusive minus the durations of direct children (resolved
/// through span_id/parent_id).
std::vector<SpanAgg> aggregateSpans(const std::vector<ReportEvent>& events) {
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].span_id != 0 && events[i].dur_us > 0) {
      by_id.emplace(events[i].span_id, i);
    }
  }
  std::vector<std::int64_t> excl(events.size(), 0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].dur_us <= 0) continue;
    excl[i] += events[i].dur_us;
    const auto it = by_id.find(events[i].parent_id);
    if (events[i].parent_id != 0 && it != by_id.end()) {
      excl[it->second] -= events[i].dur_us;
    }
  }
  std::map<std::string, SpanAgg> agg;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].dur_us <= 0) continue;
    SpanAgg& a = agg[events[i].name];
    a.name = events[i].name;
    ++a.count;
    a.incl_us += events[i].dur_us;
    a.excl_us += excl[i];
  }
  std::vector<SpanAgg> out;
  out.reserve(agg.size());
  for (auto& [name, a] : agg) out.push_back(std::move(a));
  return out;
}

/// Per-slot rows merged from the kSlot trace spans and the cost ledger's
/// committed-slot bills.  Trace rows cover *executed* slots (including
/// stalls), cost rows cover *committed* slots — they line up 1:1 on clean
/// runs and the report prints "-" where a source is missing.
struct SlotRow {
  int proposed = -1;
  int delivered = -1;
  std::int64_t work = -1;
  std::int64_t wall_us = -1;
};

std::vector<SlotRow> slotRows(const RunTelemetry& run) {
  std::vector<SlotRow> rows;
  for (const ReportEvent& e : run.events) {
    if (e.kind != "slot" || e.name != "mcs.slot") continue;
    SlotRow r;
    r.proposed = static_cast<int>(e.arg("proposed", -1));
    r.delivered = static_cast<int>(e.arg("delivered", -1));
    r.wall_us = e.dur_us;
    rows.push_back(r);
  }
  for (std::size_t i = 0; i < run.cost_slots.size(); ++i) {
    if (i >= rows.size()) rows.emplace_back();
    rows[i].work = run.cost_slots[i].workUnits();
  }
  return rows;
}

bool anyPrefixed(const std::map<std::string, double>& m,
                 std::string_view prefix) {
  for (const auto& [name, v] : m) {
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

}  // namespace

std::string renderReport(const RunTelemetry& run, const ReportOptions& opt) {
  std::ostringstream os;
  const auto wall = [&](std::int64_t us) -> std::string {
    return opt.mask_wall ? "-" : fmtI64(us);
  };
  const auto wallD = [&](double us) -> std::string {
    return opt.mask_wall ? "-" : fmtDouble(us);
  };

  os << "rfidsched run report\n====================\n";

  // --- run summary ---------------------------------------------------------
  os << "\nrun\n";
  const std::pair<const char*, const char*> summary_rows[] = {
      {"slots committed", "mcs.slots"},
      {"tags read", "mcs.tags_read"},
      {"stall slots", "mcs.stall_slots"},
      {"schedule calls", "sched.schedule_calls"},
      {"candidates scanned", "sched.candidates"},
      {"weight evals (scheduler)", "sched.weight_evals"},
      {"weight evals (referee)", "core.weight_evals"},
      {"protocol messages", "net.messages"},
      {"protocol rounds", "net.protocol_rounds"},
  };
  bool any_summary = false;
  for (const auto& [label, name] : summary_rows) {
    const auto it = run.counters.find(name);
    if (it == run.counters.end()) continue;
    kv(os, label, fmtDouble(it->second));
    any_summary = true;
  }
  if (!any_summary) os << "  (no metrics loaded)\n";

  // --- deterministic cost attribution --------------------------------------
  if (run.has_cost) {
    os << "\ncost attribution (deterministic work units)\n";
    kv(os, "total work units", fmtI64(run.cost_total.workUnits()));
    if (!run.cost_phases.empty()) {
      os << "  " << pad("phase", 20, false) << pad("work", 12)
         << pad("w_evals", 12) << pad("q_work", 10) << pad("dp", 10)
         << pad("bnb", 10) << pad("net_msgs", 10) << '\n';
      for (const auto& [name, b] : run.cost_phases) {
        os << "  " << pad(name, 20, false) << pad(fmtI64(b.workUnits()), 12)
           << pad(fmtI64(b.weight_evals), 12) << pad(fmtI64(b.queue_work), 10)
           << pad(fmtI64(b.dp_entries), 10) << pad(fmtI64(b.bnb_nodes), 10)
           << pad(fmtI64(b.net_messages), 10) << '\n';
      }
    }
    const obs::CostBill& t = run.cost_total;
    if (t.cache_hits + t.cache_misses > 0) {
      kv(os, "cache syncs (diff/full)",
         fmtI64(t.cache_hits) + "/" + fmtI64(t.cache_misses) + " (" +
             fmtPct(static_cast<double>(t.cache_hits),
                    static_cast<double>(t.cache_hits + t.cache_misses)) +
             " diff), " + fmtI64(t.cache_refreshes) + " rows refreshed");
    }
    if (t.queue_pops > 0) {
      kv(os, "queue pops (stale)",
         fmtI64(t.queue_pops) + " (" + fmtI64(t.queue_stale_pops) + ", " +
             fmtPct(static_cast<double>(t.queue_stale_pops),
                    static_cast<double>(t.queue_pops)) +
             ")");
    }
    if (t.net_messages > 0) {
      kv(os, "network",
         fmtI64(t.net_messages) + " messages over " + fmtI64(t.net_rounds) +
             " rounds");
    }
  }

  // --- per-slot timeline ---------------------------------------------------
  const std::vector<SlotRow> rows = slotRows(run);
  if (!rows.empty()) {
    os << "\nper-slot timeline\n";
    os << "  " << pad("slot", 6) << pad("proposed", 10) << pad("delivered", 11)
       << pad("work", 12) << pad("wall_us", 12) << '\n';
    const std::size_t shown =
        std::min(rows.size(), static_cast<std::size_t>(
                                  std::max(opt.max_slot_rows, 1)));
    for (std::size_t i = 0; i < shown; ++i) {
      const SlotRow& r = rows[i];
      os << "  " << pad(fmtI64(static_cast<std::int64_t>(i) + 1), 6)
         << pad(r.proposed < 0 ? "-" : fmtI64(r.proposed), 10)
         << pad(r.delivered < 0 ? "-" : fmtI64(r.delivered), 11)
         << pad(r.work < 0 ? "-" : fmtI64(r.work), 12)
         << pad(r.wall_us < 0 ? "-" : wall(r.wall_us), 12) << '\n';
    }
    if (rows.size() > shown) {
      os << "  ... (" << rows.size() - shown << " more slots)\n";
    }
  }

  // --- span phases ---------------------------------------------------------
  if (run.has_trace) {
    std::vector<SpanAgg> spans = aggregateSpans(run.events);
    if (!spans.empty()) {
      if (opt.mask_wall) {
        // Wall order is run-dependent; goldens get stable name order.
        std::sort(spans.begin(), spans.end(),
                  [](const SpanAgg& a, const SpanAgg& b) {
                    return a.name < b.name;
                  });
      } else {
        std::sort(spans.begin(), spans.end(),
                  [](const SpanAgg& a, const SpanAgg& b) {
                    if (a.incl_us != b.incl_us) return a.incl_us > b.incl_us;
                    return a.name < b.name;
                  });
      }
      os << "\nspan phases"
         << (opt.mask_wall ? " (name order)" : " (by inclusive wall time)")
         << "\n";
      os << "  " << pad("phase", 24, false) << pad("count", 8)
         << pad("incl_us", 12) << pad("excl_us", 12) << '\n';
      const std::size_t shown = std::min(
          spans.size(),
          static_cast<std::size_t>(std::max(opt.top_spans, 1)));
      for (std::size_t i = 0; i < shown; ++i) {
        os << "  " << pad(spans[i].name, 24, false)
           << pad(fmtI64(spans[i].count), 8)
           << pad(wall(spans[i].incl_us), 12)
           << pad(wall(spans[i].excl_us), 12) << '\n';
      }
      if (spans.size() > shown) {
        os << "  ... (" << spans.size() - shown << " more phases)\n";
      }
    }
  }

  // --- wall-clock histograms -----------------------------------------------
  if (!run.histograms.empty()) {
    os << "\nwall-clock histograms\n";
    os << "  " << pad("name", 24, false) << pad("count", 8) << pad("mean", 12)
       << pad("p50", 12) << pad("p90", 12) << pad("p99", 12) << '\n';
    for (const auto& [name, h] : run.histograms) {
      os << "  " << pad(name, 24, false) << pad(fmtI64(h.count), 8)
         << pad(wallD(h.mean), 12) << pad(wallD(h.p50), 12)
         << pad(wallD(h.p90), 12) << pad(wallD(h.p99), 12) << '\n';
    }
  }

  // --- faults --------------------------------------------------------------
  if (anyPrefixed(run.counters, "fault.") || anyPrefixed(run.gauges, "fault.")) {
    os << "\nfault degradation\n";
    const std::pair<const char*, const char*> fault_rows[] = {
        {"faulty slots", "fault.mcs.faulty_slots"},
        {"slots lost", "fault.mcs.slots_lost"},
        {"crashed activations", "fault.mcs.crashed_activations"},
        {"replanned activations", "fault.mcs.replanned_activations"},
        {"tags missed", "fault.mcs.tags_missed"},
        {"messages dropped", "fault.net.dropped"},
        {"messages duplicated", "fault.net.duplicated"},
        {"messages delayed", "fault.net.delayed"},
        {"dead-node drops", "fault.net.dead_drops"},
    };
    for (const auto& [label, name] : fault_rows) {
      const auto it = run.counters.find(name);
      if (it != run.counters.end()) kv(os, label, fmtDouble(it->second));
    }
    const auto orphaned = run.gauges.find("fault.mcs.tags_orphaned");
    if (orphaned != run.gauges.end()) {
      kv(os, "tags orphaned", fmtDouble(orphaned->second));
    }
    const auto ideal = run.gauges.find("fault.mcs.ideal_tags_read");
    if (ideal != run.gauges.end()) {
      kv(os, "achieved vs ideal coverage",
         fmtDouble(run.counter("mcs.tags_read")) + " / " +
             fmtDouble(ideal->second));
    }
  }

  // --- checkpoints ---------------------------------------------------------
  if (anyPrefixed(run.counters, "ckpt.")) {
    os << "\ncheckpoints\n";
    kv(os, "slots journaled", fmtDouble(run.counter("ckpt.slots_committed")));
    kv(os, "snapshots written", fmtDouble(run.counter("ckpt.snapshots")));
    std::int64_t replays = 0;
    for (const ReportEvent& e : run.events) {
      if (e.name == "ckpt.replay") ++replays;
    }
    if (replays > 0) kv(os, "replay events", fmtI64(replays));
  }

  // --- gen2 link layer -----------------------------------------------------
  if (anyPrefixed(run.counters, "protocol.gen2.")) {
    os << "\ngen2 link layer\n";
    const auto seconds = [](double us) {
      char buf[48];
      const auto whole = static_cast<std::int64_t>(us) / 1000000;
      const auto frac = static_cast<std::int64_t>(us) % 1000000;
      std::snprintf(buf, sizeof(buf), "%lld.%06lld s",
                    static_cast<long long>(whole), static_cast<long long>(frac));
      return std::string(buf);
    };
    kv(os, "schedule length", seconds(run.counter("protocol.gen2.air_us")));
    kv(os, "serial air-time",
       seconds(run.counter("protocol.gen2.air_us_serial")));
    const std::pair<const char*, const char*> gen2_rows[] = {
        {"macro-slots", "protocol.gen2.macro_slots"},
        {"micro-slots", "protocol.gen2.micro_slots"},
        {"frames", "protocol.gen2.frames"},
        {"tags identified", "protocol.gen2.tags_identified"},
        {"fresh reads", "protocol.gen2.fresh_reads"},
        {"session skips", "protocol.gen2.session_skips"},
        {"stale repliers", "protocol.gen2.stale_repliers"},
        {"double identifications", "protocol.gen2.double_identifications"},
    };
    for (const auto& [label, name] : gen2_rows) {
      const auto it = run.counters.find(name);
      if (it != run.counters.end()) kv(os, label, fmtDouble(it->second));
    }
  }

  // --- invariant oracle ----------------------------------------------------
  if (anyPrefixed(run.counters, "check.")) {
    os << "\ninvariant oracle\n";
    kv(os, "slots checked", fmtDouble(run.counter("check.slots_checked")));
    kv(os, "violations", fmtDouble(run.counter("check.violations")));
    kv(os, "tags scanned", fmtDouble(run.counter("check.tags_scanned")));
  }

  return os.str();
}

std::string renderComparison(const RunTelemetry& baseline,
                             const RunTelemetry& current) {
  std::ostringstream os;
  os << "run comparison (baseline vs current)\n"
     << "====================================\n";
  os << "  " << pad("counter", 28, false) << pad("baseline", 14)
     << pad("current", 14) << pad("ratio", 10) << '\n';
  const char* names[] = {
      "sched.weight_evals", "core.weight_evals",  "sched.candidates",
      "sched.schedule_calls", "mcs.slots",        "mcs.tags_read",
      "net.messages",
  };
  const auto ratio = [](double base, double cur) -> std::string {
    if (cur <= 0.0) return "-";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", base / cur);
    return buf;
  };
  for (const char* name : names) {
    const auto b = baseline.counters.find(name);
    const auto c = current.counters.find(name);
    if (b == baseline.counters.end() && c == current.counters.end()) continue;
    const double bv = b == baseline.counters.end() ? 0.0 : b->second;
    const double cv = c == current.counters.end() ? 0.0 : c->second;
    os << "  " << pad(name, 28, false) << pad(fmtDouble(bv), 14)
       << pad(fmtDouble(cv), 14) << pad(ratio(bv, cv), 10) << '\n';
  }
  if (baseline.has_cost && current.has_cost) {
    const std::int64_t bw = baseline.cost_total.workUnits();
    const std::int64_t cw = current.cost_total.workUnits();
    os << "  " << pad("cost.work_units", 28, false) << pad(fmtI64(bw), 14)
       << pad(fmtI64(cw), 14)
       << pad(ratio(static_cast<double>(bw), static_cast<double>(cw)), 10)
       << '\n';
  }
  return os.str();
}

bool hasPerSlotData(const RunTelemetry& run) {
  for (const SlotRow& row : slotRows(run)) {
    if (row.delivered >= 0 || row.work >= 0) return true;
  }
  return false;
}

bool writeReportSvgFile(const std::string& path, const RunTelemetry& run) {
  const std::vector<SlotRow> rows = slotRows(run);
  SeriesSet set;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double x = static_cast<double>(i) + 1.0;
    if (rows[i].delivered >= 0) {
      set.add("tags delivered", x, static_cast<double>(rows[i].delivered));
    }
    if (rows[i].work >= 0) {
      set.add("work units", x, static_cast<double>(rows[i].work));
    }
  }
  if (set.seriesNames().empty()) return false;
  ChartOptions opt;
  opt.title = "per-slot timeline";
  opt.x_label = "slot";
  opt.y_label = "count";
  return writeChartSvgFile(path, set, opt);
}

}  // namespace rfid::analysis
