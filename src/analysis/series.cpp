#include "analysis/series.h"

#include <algorithm>

namespace rfid::analysis {

void SeriesSet::add(const std::string& series, double x, double value) {
  if (data_.find(series) == data_.end()) order_.push_back(series);
  data_[series][x].add(value);
}

std::vector<double> SeriesSet::xValues() const {
  std::vector<double> xs;
  for (const auto& [name, curve] : data_) {
    for (const auto& [x, stat] : curve) xs.push_back(x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

const RunningStat* SeriesSet::at(const std::string& series, double x) const {
  const auto it = data_.find(series);
  if (it == data_.end()) return nullptr;
  const auto jt = it->second.find(x);
  if (jt == it->second.end()) return nullptr;
  return &jt->second;
}

}  // namespace rfid::analysis
