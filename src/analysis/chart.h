// chart.h — SVG line charts for sweep results.
//
// The figure benches print tables and CSVs; this renders the same
// SeriesSet as a chart comparable to the paper's figures — one line per
// algorithm, mean markers with 95% CI whiskers, axes with round ticks, and
// a legend.  Pure text SVG, no dependencies, deterministic output.
#pragma once

#include <string>

#include "analysis/series.h"

namespace rfid::analysis {

struct ChartOptions {
  int width = 640;
  int height = 420;
  std::string title;
  std::string x_label;
  std::string y_label;
  /// Force the y axis to start at zero (the paper's figures do).
  bool y_from_zero = true;
};

/// Renders the series set as an SVG line chart.
std::string renderLineChart(const SeriesSet& set, const ChartOptions& opt);

/// Convenience: renders to a file, creating parent directories.
bool writeChartSvgFile(const std::string& path, const SeriesSet& set,
                       const ChartOptions& opt);

}  // namespace rfid::analysis
