#include "analysis/parallel.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

namespace rfid::analysis {

void parallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int num_threads) {
  const int n = end - begin;
  if (n <= 0) return;
  int threads = num_threads > 0
                    ? num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::clamp(threads, 1, n);

  if (threads == 1) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }

  // Static block partition: thread t handles [begin + t*chunk, ...).
  const int chunk = (n + threads - 1) / threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const int lo = begin + t * chunk;
    const int hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn, &errors, t]() {
      try {
        for (int i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        errors[static_cast<std::size_t>(t)] = std::current_exception();
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace rfid::analysis
