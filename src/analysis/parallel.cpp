#include "analysis/parallel.h"

namespace rfid::analysis {

void parallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int num_threads) {
  parallelFor(begin, end, [&fn](int i) { fn(i); }, num_threads);
}

}  // namespace rfid::analysis
