// report.h — the run-report analyzer behind rfidsched_report.
//
// Ingests the telemetry a rfidsched_cli run leaves behind — the --metrics
// JSON dump, the --jsonl span log, and the --cost attribution ledger — and
// renders a human-readable post-mortem: run summary, per-phase deterministic
// cost attribution (cache hit rates, queue churn, protocol traffic), the
// per-slot timeline, the top span phases by inclusive/exclusive wall time
// reconstructed from the causal span tree, and fault / checkpoint / check
// summaries when those subsystems ran.
//
// Everything here works from the recorded files alone — no live run is
// needed — so two runs can be compared after the fact (renderComparison),
// which is how the lazy-vs-reference weight-eval headline from
// docs/performance.md is reproduced from telemetry.
//
// Determinism: with ReportOptions::mask_wall set every wall-clock figure
// prints as "-" and wall-ordered tables fall back to name order, so the text
// output of a `--threads 1` run is byte-stable and golden-testable
// (tools/check_goldens.sh).
//
// The JSON subset parser below accepts exactly what this repo's writers emit
// (objects, arrays, strings with the obs escape set, finite numbers, bools,
// null) and is exposed for reuse by tools and tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/cost.h"

namespace rfid::analysis {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  /// Object members in file order (duplicate keys keep the last).
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// The numeric value, or `fallback` for non-numbers.
  double num(double fallback = 0.0) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Returns false and fills `err` (when given) with a position-stamped
/// message on malformed input.
bool parseJson(std::string_view text, JsonValue& out,
               std::string* err = nullptr);

// ---------------------------------------------------------------------------
// Telemetry model.

/// One histogram as exported by MetricsRegistry::writeJson (summary stats,
/// not raw buckets — the JSON dump is the interface).
struct HistogramSummary {
  std::int64_t count = 0;
  double min = 0.0, max = 0.0, mean = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
};

/// One trace event from the --jsonl log (span or instant).
struct ReportEvent {
  std::string kind;
  std::string name;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  int tid = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::vector<std::pair<std::string, double>> args;

  double arg(std::string_view key, double fallback = 0.0) const;
};

/// Everything one run left behind.  Each section is optional — the report
/// renders whatever was loaded and skips the rest.
struct RunTelemetry {
  bool has_metrics = false;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  bool has_trace = false;
  std::vector<ReportEvent> events;

  bool has_cost = false;
  obs::CostBill cost_total;
  /// Phases in ledger (name) order, as CostLedger::writeJson emits them.
  std::vector<std::pair<std::string, obs::CostBill>> cost_phases;
  std::vector<obs::CostBill> cost_slots;

  double counter(std::string_view name, double fallback = 0.0) const;
};

/// Loaders parse the in-memory text (any returns false + `err` on bad
/// input); the *File variants read the file first.  Loading marks the
/// corresponding has_* flag.  An RFIDSCHED_NO_OBS run writes "{}" metrics
/// and an empty cost ledger — both load cleanly to empty sections.
bool loadMetricsJson(std::string_view text, RunTelemetry& out,
                     std::string* err = nullptr);
bool loadTraceJsonl(std::string_view text, RunTelemetry& out,
                    std::string* err = nullptr);
bool loadCostJson(std::string_view text, RunTelemetry& out,
                  std::string* err = nullptr);
bool loadMetricsFile(const std::string& path, RunTelemetry& out,
                     std::string* err = nullptr);
bool loadTraceFile(const std::string& path, RunTelemetry& out,
                   std::string* err = nullptr);
bool loadCostFile(const std::string& path, RunTelemetry& out,
                  std::string* err = nullptr);

// ---------------------------------------------------------------------------
// Rendering.

struct ReportOptions {
  /// Rows in the span-phase table (top-k by inclusive wall time).
  int top_spans = 10;
  /// Rows in the per-slot timeline before it elides the middle.
  int max_slot_rows = 25;
  /// Print every wall-clock figure as "-" and order wall-ranked tables by
  /// name instead, so the output is byte-stable across runs (goldens).
  bool mask_wall = false;
};

/// The full text report (ends with a newline).
std::string renderReport(const RunTelemetry& run, const ReportOptions& opt = {});

/// Baseline comparison: per-counter baseline / current / ratio for the
/// deterministic work counters plus the cost-ledger work units.  This is
/// the telemetry-only reproduction of the lazy-vs-reference speedup
/// (docs/performance.md): load the reference run as `baseline` and the lazy
/// run as `current` and the sched.weight_evals row carries the headline
/// ratio.
std::string renderComparison(const RunTelemetry& baseline,
                             const RunTelemetry& current);

/// True when the telemetry carries anything chartable per slot (kSlot
/// spans in the trace or per-slot cost bills) — the precondition for
/// writeReportSvgFile, so callers can distinguish "nothing to chart" from
/// a write failure.
bool hasPerSlotData(const RunTelemetry& run);

/// Per-slot SVG chart (tags delivered and cost work units per slot, from
/// whichever of trace/cost was loaded).  False when neither per-slot source
/// is present or the file cannot be written.
bool writeReportSvgFile(const std::string& path, const RunTelemetry& run);

}  // namespace rfid::analysis
