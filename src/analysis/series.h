// series.h — (x, statistic) series keyed by sweep parameter and algorithm.
//
// A figure in the paper is a family of curves: one per algorithm, each a
// metric as a function of the swept parameter (λ_R or λ_r).  SeriesSet is
// the in-memory form of one figure; the table/CSV writers render it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/stats.h"

namespace rfid::analysis {

/// One figure's worth of curves: series name → (x → RunningStat).
class SeriesSet {
 public:
  /// Adds one sample for curve `series` at sweep value `x`.
  void add(const std::string& series, double x, double value);

  /// Curve names in insertion order.
  const std::vector<std::string>& seriesNames() const { return order_; }

  /// Sorted distinct x values across all curves.
  std::vector<double> xValues() const;

  /// The accumulator for (series, x); null if absent.
  const RunningStat* at(const std::string& series, double x) const;

 private:
  std::map<std::string, std::map<double, RunningStat>> data_;
  std::vector<std::string> order_;
};

}  // namespace rfid::analysis
