#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

namespace rfid::analysis {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderrMean() const {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void RunningStat::merge(const RunningStat& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = n_ + o.n_;
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / static_cast<double>(n);
  mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ = n;
}

}  // namespace rfid::analysis
