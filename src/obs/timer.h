// timer.h — RAII wall-clock spans feeding histograms and the trace sink.
//
// A ScopedTimer measures one span on the steady clock and, at stop() or
// destruction, records the elapsed microseconds into a named histogram of
// the attached MetricsRegistry and/or a complete event in the attached
// TraceSink.  Both attachments are optional; with neither the timer never
// touches the clock.  arg() annotates the trace span with values that only
// become known mid-span (e.g. the delivered weight of an MCS slot).
//
// With a trace attached, the timer is also a node in the causal span tree:
// construction allocates a span id, adopts the thread's current span as
// parent, and pushes itself on the thread's span stack; stop() pops and
// records the complete event with both ids.  A timer created on a worker
// thread has no implicit parent — the dispatcher captures spanId() of the
// enclosing timer and the worker calls setParent() explicitly
// (sched/growth.cpp, sched/ptas.cpp show the pattern).
//
// Wall-clock histograms are inherently non-deterministic, so deterministic
// exports (the bench sidecars) pass metrics = nullptr here and keep only
// count metrics — see docs/observability.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef RFIDSCHED_NO_OBS
#include <chrono>
#endif

namespace rfid::obs {

#ifndef RFIDSCHED_NO_OBS

class ScopedTimer {
 public:
  /// `hist_name` names the histogram (microseconds); `span_name` names the
  /// trace event (defaults to hist_name).  Either sink may be nullptr.
  ScopedTimer(MetricsRegistry* metrics, std::string_view hist_name,
              TraceSink* trace = nullptr, std::string_view span_name = {},
              EventKind kind = EventKind::kSpan)
      : metrics_(metrics),
        trace_(trace),
        hist_(hist_name),
        span_(span_name.empty() ? hist_name : span_name),
        kind_(kind) {
    if (trace_ != nullptr) {
      span_id_ = trace_->newSpanId();
      parent_id_ = trace_->currentSpan();
      trace_->pushSpan(span_id_);
    }
    if (metrics_ != nullptr || trace_ != nullptr) {
      start_ts_us_ = trace_ != nullptr ? trace_->nowUs() : 0;
      t0_ = std::chrono::steady_clock::now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Attaches a numeric annotation to the trace span (ignored without a
  /// trace sink).
  void arg(std::string_view key, double value) {
    if (trace_ != nullptr) args_.emplace_back(std::string(key), value);
  }

  /// Overrides the implicit (thread-stack) parent — for spans whose causal
  /// parent lives on another thread.  No effect after stop().
  void setParent(std::uint64_t parent_span_id) { parent_id_ = parent_span_id; }

  /// This span's id in the trace tree; 0 without a trace sink.
  std::uint64_t spanId() const { return span_id_; }

  /// Ends the span and records it (idempotent).  Returns elapsed µs.
  std::int64_t stop() {
    if (stopped_) return elapsed_us_;
    stopped_ = true;
    if (trace_ != nullptr) trace_->popSpan();
    if (metrics_ == nullptr && trace_ == nullptr) return 0;
    elapsed_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0_)
                      .count();
    if (metrics_ != nullptr) {
      metrics_->histogram(hist_).record(static_cast<double>(elapsed_us_));
    }
    if (trace_ != nullptr) {
      // Chrome drops ph:"X" events with dur 0; clamp to 1µs so very fast
      // spans stay visible.
      trace_->complete(kind_, span_, start_ts_us_,
                       elapsed_us_ > 0 ? elapsed_us_ : 1, std::move(args_), 0,
                       span_id_, parent_id_);
    }
    return elapsed_us_;
  }

 private:
  MetricsRegistry* metrics_;
  TraceSink* trace_;
  std::string hist_;
  std::string span_;
  EventKind kind_;
  std::vector<TraceArg> args_;
  std::chrono::steady_clock::time_point t0_{};
  std::int64_t start_ts_us_ = 0;
  std::int64_t elapsed_us_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  bool stopped_ = false;
};

#else  // RFIDSCHED_NO_OBS

class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry*, std::string_view, TraceSink* = nullptr,
              std::string_view = {}, EventKind = EventKind::kSpan) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  void arg(std::string_view, double) {}
  void setParent(std::uint64_t) {}
  std::uint64_t spanId() const { return 0; }
  std::int64_t stop() { return 0; }
};

#endif  // RFIDSCHED_NO_OBS

}  // namespace rfid::obs
