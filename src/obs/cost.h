// cost.h — deterministic per-phase / per-slot cost attribution.
//
// Wall-clock histograms (obs/timer.h) tell you where the *time* went, but
// they are non-deterministic, so CI cannot diff them and a refactor's cost
// shift hides inside scheduling jitter.  A CostBill is the deterministic
// twin: a fixed-layout ledger line of *work units* — weight evaluations,
// standalone-cache syncs and refreshes, lazy-greedy queue operations, CSR
// rows walked, branch & bound nodes, network traffic — that depends only on
// (deployment, algorithm, seed, fault plan), never on thread count or
// machine speed.
//
// The accumulation discipline mirrors the repo's parallel-determinism rule
// (docs/performance.md): workers accumulate bills into *private* structs
// (one per interaction component / PTAS shift), and the owner reduces them
// in serial order before charging the shared CostLedger.  The ledger itself
// is therefore single-threaded by contract — it is only ever touched from
// the thread that called schedule()/runCoveringSchedule — and its JSON
// export is bit-identical for every `--threads` value (tests/test_cost.cpp
// holds this byte-for-byte).
//
// Like the rest of rfid::obs, CostLedger degrades to an inert stub under
// -DRFIDSCHED_NO_OBS.  CostBill itself stays a plain struct in both modes:
// it is inert data with no dependencies, and keeping it real lets callers
// accumulate locals unconditionally (the increments ride on loops that
// already walk the data being counted).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#ifndef RFIDSCHED_NO_OBS
#include <map>
#include <vector>
#endif

namespace rfid::obs {

/// One line of deterministic work accounting.  Field semantics
/// (docs/observability.md has the long form):
///   weight_evals    — exact weight-engine operations: WeightEvaluator
///                     push/pop, reference peekDelta scans, and System
///                     referee evaluations (w(X) / wellCoveredTags calls).
///   csr_rows        — CSR coverage rows walked end-to-end (one unit per
///                     reader→tags or tag→readers list traversal).
///   cache_hits      — StandaloneWeightCache syncs served by the read-state
///                     diff walk (the cache was reusable).
///   cache_misses    — syncs that had to rebuild the cache in full (first
///                     use or deployment change).
///   cache_refreshes — per-tag refresh walks performed by diff syncs plus
///                     per-reader recomputations performed by full builds.
///   queue_pops      — LazyGreedyQueue heap entries popped…
///   queue_stale_pops— …of which lazily-deleted (superseded key) entries.
///   queue_work      — total O(1) queue operations (seeds, pops, key
///                     adjustments) — LazyGreedyQueue::workUnits.
///   dp_entries      — PTAS memoized (square, context) states.
///   bnb_nodes       — branch & bound nodes expanded.
///   net_messages    — network message-hops delivered.
///   net_rounds      — synchronous network rounds executed.
struct CostBill {
  std::int64_t weight_evals = 0;
  std::int64_t csr_rows = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_refreshes = 0;
  std::int64_t queue_pops = 0;
  std::int64_t queue_stale_pops = 0;
  std::int64_t queue_work = 0;
  std::int64_t dp_entries = 0;
  std::int64_t bnb_nodes = 0;
  std::int64_t net_messages = 0;
  std::int64_t net_rounds = 0;

  void add(const CostBill& o);
  void subtract(const CostBill& o);
  bool zero() const;
  /// The headline scalar the perf-regression gate tracks: total search
  /// effort behind the schedule (weight engine + queue + DP + B&B).  Cache
  /// bookkeeping and network traffic are tracked per-field instead — they
  /// trade against the search terms, so folding them in would let a
  /// regression hide inside its own mitigation.
  std::int64_t workUnits() const {
    return weight_evals + queue_work + dp_entries + bnb_nodes;
  }
  bool operator==(const CostBill& o) const = default;

  /// Deterministic JSON object on one line, fields in declaration order:
  /// {"weight_evals":0,...}.  No trailing newline.
  void writeJson(std::ostream& os) const;
};

/// Field table for generic consumers (JSON export, the report tool, the
/// bench recorder): declaration order, stable names.
struct CostField {
  const char* name;
  std::int64_t CostBill::* member;
};
inline constexpr CostField kCostFields[] = {
    {"weight_evals", &CostBill::weight_evals},
    {"csr_rows", &CostBill::csr_rows},
    {"cache_hits", &CostBill::cache_hits},
    {"cache_misses", &CostBill::cache_misses},
    {"cache_refreshes", &CostBill::cache_refreshes},
    {"queue_pops", &CostBill::queue_pops},
    {"queue_stale_pops", &CostBill::queue_stale_pops},
    {"queue_work", &CostBill::queue_work},
    {"dp_entries", &CostBill::dp_entries},
    {"bnb_nodes", &CostBill::bnb_nodes},
    {"net_messages", &CostBill::net_messages},
    {"net_rounds", &CostBill::net_rounds},
};

#ifndef RFIDSCHED_NO_OBS

/// Serial-order sink for CostBills.  charge() adds a bill to a named phase
/// (dot-separated, e.g. "alg2.selection"); commitSlot() appends the next
/// MCS slot's bill (the driver computes it as the delta of total() across
/// the slot).  NOT thread-safe — by design: every charge must happen on the
/// owning thread, in program order, which is exactly what makes the export
/// reproducible.  Phases iterate name-sorted; slots in commit order.
class CostLedger {
 public:
  CostLedger() = default;
  CostLedger(const CostLedger&) = delete;
  CostLedger& operator=(const CostLedger&) = delete;

  void charge(std::string_view phase, const CostBill& bill);
  void commitSlot(const CostBill& bill);

  /// Sum over all phases (slot bills are a re-slicing of the same charges,
  /// not additional cost; an aborted slot's charges stay in the phase
  /// totals without a slot line, so Σ slots <= total).
  const CostBill& total() const { return total_; }
  /// Phase bill, or nullptr if never charged.
  const CostBill* phase(std::string_view name) const;
  std::size_t numPhases() const { return phases_.size(); }
  std::size_t numSlots() const { return slots_.size(); }
  const CostBill& slot(std::size_t i) const { return slots_[i]; }

  /// Deterministic JSON: {"total":{...},"phases":{...},"slots":[...]}.
  /// `indent` spaces prefix every emitted line; no trailing newline.
  void writeJson(std::ostream& os, int indent = 0) const;
  bool writeJsonFile(const std::string& path) const;

 private:
  std::map<std::string, CostBill, std::less<>> phases_;
  std::vector<CostBill> slots_;
  CostBill total_;
};

#else  // RFIDSCHED_NO_OBS — inert stub, same API, zero cost.

class CostLedger {
 public:
  CostLedger() = default;
  CostLedger(const CostLedger&) = delete;
  CostLedger& operator=(const CostLedger&) = delete;

  void charge(std::string_view, const CostBill&) {}
  void commitSlot(const CostBill&) {}
  const CostBill& total() const { return empty_; }
  const CostBill* phase(std::string_view) const { return nullptr; }
  std::size_t numPhases() const { return 0; }
  std::size_t numSlots() const { return 0; }
  const CostBill& slot(std::size_t) const { return empty_; }
  void writeJson(std::ostream& os, int indent = 0) const;  // emits "{}"
  bool writeJsonFile(const std::string& path) const;

 private:
  CostBill empty_;
};

#endif  // RFIDSCHED_NO_OBS

}  // namespace rfid::obs
