// metrics.h — the rfid::obs metrics registry (counters, gauges, histograms).
//
// Observability layer used across the stack: the MCS driver, the one-shot
// schedulers, the System referee, the network simulator, and the link-layer
// protocols all report into a MetricsRegistry when one is attached (nullptr
// = detached, near-zero cost).  Design goals, in order:
//
//   1. Cheap enough to leave on.  Handles (Counter&, Gauge&, Histogram&)
//      are resolved once by name and then bumped without lookups; hot paths
//      cache the handle and guard with a single pointer test.
//   2. Deterministic exports.  Entries are stored name-sorted and exported
//      in that order, so two runs that record the same values byte-compare
//      equal.  Parallel sweeps follow the repo's discipline: one registry
//      per iteration, merged sequentially in index order afterwards
//      (see bench_common.h), which makes the sidecar JSON bit-identical at
//      any analysis::parallelFor thread count.
//   3. Fully compiled out under -DRFIDSCHED_NO_OBS: every class degrades to
//      an empty inline stub so call sites compile unchanged and the
//      optimizer erases them.
//
// Naming convention (docs/observability.md): dot-separated lowercase paths,
// `<subsystem>.<quantity>`, e.g. "mcs.slots", "sched.weight_evals",
// "net.messages", "protocol.aloha.frames", "core.grid_queries".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#ifndef RFIDSCHED_NO_OBS
#include <atomic>
#include <map>
#include <mutex>

#include "analysis/stats.h"
#endif

namespace rfid::obs {

#ifndef RFIDSCHED_NO_OBS

/// Monotonically increasing integer metric.  Thread-safe (relaxed atomic):
/// concurrent adds from parallel sweeps produce exact totals.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> v_{0};
};

/// Last-value-wins floating-point metric (e.g. "rounds of the latest run").
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<double> v_{0.0};
};

/// Streaming distribution: analysis::RunningStat (count/min/max/mean) plus
/// fixed power-of-two log buckets for percentile estimates.  Bucket i covers
/// (2^(i-1), 2^i] with bucket 0 holding everything <= 1; percentile() does
/// linear interpolation inside the selected bucket and clamps to the
/// observed [min, max].  Thread-safe (one small mutex per histogram).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double v);
  std::int64_t count() const;
  double min() const;
  double max() const;
  double mean() const;
  /// Estimated p-th percentile, p in [0, 100].  0 with no samples.
  double percentile(double p) const;
  void merge(const Histogram& o);

 private:
  friend class MetricsRegistry;
  static int bucketOf(double v);

  mutable std::mutex mu_;
  analysis::RunningStat stat_;
  std::int64_t buckets_[kBuckets] = {};
};

/// Named metric store.  counter()/gauge()/histogram() create on first use
/// and return a stable reference; re-registering a name as a different kind
/// throws std::logic_error (name-collision semantics are strict so a typo
/// cannot silently fork a metric).  Non-copyable; share by pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  bool empty() const;

  /// Adds every counter of `o`, merges histograms, and overwrites gauges
  /// with `o`'s values (last writer wins — merge in a deterministic order).
  /// Kind mismatches throw std::logic_error.
  void merge(const MetricsRegistry& o);

  /// Deterministic JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,min,max,mean,p50,p90,p99}}}, keys sorted.
  /// `indent` spaces prefix every emitted line (for embedding); no trailing
  /// newline.
  void writeJson(std::ostream& os, int indent = 0) const;
  bool writeJsonFile(const std::string& path) const;

  /// Prometheus text exposition format v0.0.4 (groundwork for the service
  /// endpoint, ROADMAP item 2).  Dots in metric names become underscores
  /// ("mcs.slots" → "mcs_slots"); counters get a `_total` suffix per
  /// convention; histograms export _count/_min/_max/_mean/_p50/_p90/_p99
  /// gauges (the log-2 buckets are an estimator, not a Prometheus
  /// cumulative histogram, so quantiles are exported pre-computed).
  /// Name-sorted, trailing newline included.
  void writePrometheus(std::ostream& os) const;
  bool writePrometheusFile(const std::string& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Entry& entry(std::string_view name, Kind kind);

  mutable std::mutex mu_;
  // std::map: stable node addresses (handles survive later insertions) and
  // name-sorted iteration for deterministic export.
  std::map<std::string, Entry, std::less<>> entries_;
};

#else  // RFIDSCHED_NO_OBS — inert stubs, same API, zero cost.

class Counter {
 public:
  void add(std::int64_t = 1) {}
  std::int64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(double) {}
  double value() const { return 0.0; }
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;
  void record(double) {}
  std::int64_t count() const { return 0; }
  double min() const { return 0.0; }
  double max() const { return 0.0; }
  double mean() const { return 0.0; }
  double percentile(double) const { return 0.0; }
  void merge(const Histogram&) {}
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view) { return histogram_; }
  bool empty() const { return true; }
  void merge(const MetricsRegistry&) {}
  void writeJson(std::ostream& os, int indent = 0) const;  // emits "{}"
  bool writeJsonFile(const std::string& path) const;
  void writePrometheus(std::ostream&) const {}
  bool writePrometheusFile(const std::string& path) const;

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // RFIDSCHED_NO_OBS

}  // namespace rfid::obs
