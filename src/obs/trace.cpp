#include "obs/trace.h"

#include <fstream>
#include <ostream>

#ifndef RFIDSCHED_NO_OBS
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#endif

namespace rfid::obs {

const char* eventKindName(EventKind k) {
  switch (k) {
    case EventKind::kSlot: return "slot";
    case EventKind::kWeightEval: return "weight_eval";
    case EventKind::kMessage: return "message";
    case EventKind::kRound: return "round";
    case EventKind::kFrame: return "frame";
    case EventKind::kFault: return "fault";
    case EventKind::kSpan: return "span";
    case EventKind::kCkpt: return "ckpt";
    case EventKind::kCheck: return "check";
  }
  return "span";
}

#ifndef RFIDSCHED_NO_OBS

namespace {

void writeJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void writeJsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
  } else if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    os << static_cast<long long>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
  }
}

void writeArgs(std::ostream& os, const std::vector<TraceArg>& args) {
  os << '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    writeJsonString(os, args[i].first);
    os << ": ";
    writeJsonNumber(os, args[i].second);
  }
  os << '}';
}

// One stack shared by every sink this thread touches; entries carry the
// owning sink so nested sinks (tests) stay independent.
thread_local std::vector<std::pair<const TraceSink*, std::uint64_t>>
    t_span_stack;

}  // namespace

TraceSink::TraceSink() : origin_(std::chrono::steady_clock::now()) {
  threadId();  // the constructing thread claims tid 0
}

std::int64_t TraceSink::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

std::uint64_t TraceSink::newSpanId() {
  return next_span_.fetch_add(1, std::memory_order_relaxed);
}

void TraceSink::pushSpan(std::uint64_t id) {
  t_span_stack.emplace_back(this, id);
}

void TraceSink::popSpan() {
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->first == this) {
      t_span_stack.erase(std::next(it).base());
      return;
    }
  }
}

std::uint64_t TraceSink::currentSpan() const {
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->first == this) return it->second;
  }
  return 0;
}

int TraceSink::threadId() {
  const std::lock_guard<std::mutex> lock(tid_mu_);
  const auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(), static_cast<int>(tids_.size()));
  return it->second;
}

void TraceSink::complete(EventKind kind, std::string name, std::int64_t ts_us,
                         std::int64_t dur_us, std::vector<TraceArg> args,
                         int tid, std::uint64_t span_id,
                         std::uint64_t parent_id) {
  if (tid == 0) tid = threadId();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{kind, std::move(name), ts_us, dur_us, tid,
                               span_id, parent_id, std::move(args)});
}

void TraceSink::instant(EventKind kind, std::string name,
                        std::vector<TraceArg> args, int tid) {
  complete(kind, std::move(name), nowUs(), 0, std::move(args), tid, 0,
           currentSpan());
}

std::size_t TraceSink::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceSink::writeJsonl(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const TraceEvent& e : events_) {
    os << "{\"kind\": \"" << eventKindName(e.kind) << "\", \"name\": ";
    writeJsonString(os, e.name);
    os << ", \"ts_us\": " << e.ts_us << ", \"dur_us\": " << e.dur_us
       << ", \"tid\": " << e.tid << ", \"span_id\": " << e.span_id
       << ", \"parent_id\": " << e.parent_id << ", \"args\": ";
    writeArgs(os, e.args);
    os << "}\n";
  }
}

bool TraceSink::writeJsonlFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  writeJsonl(os);
  return static_cast<bool>(os);
}

void TraceSink::writeChromeTrace(std::ostream& os) const {
  std::vector<TraceEvent> sorted = snapshot();
  // chrome://tracing renders one row per (pid, tid); sorting by (tid, ts)
  // guarantees monotonically non-decreasing timestamps within each row even
  // when spans were recorded at their end time.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });
  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TraceEvent& e = sorted[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"name\": ";
    writeJsonString(os, e.name);
    os << ", \"cat\": \"" << eventKindName(e.kind) << "\", \"ph\": \""
       << (e.dur_us > 0 ? 'X' : 'i') << "\", \"ts\": " << e.ts_us;
    if (e.dur_us > 0) os << ", \"dur\": " << e.dur_us;
    else os << ", \"s\": \"t\"";
    os << ", \"pid\": 0, \"tid\": " << e.tid << ", \"args\": ";
    // Span/parent ids ride in args — the trace_event format has no native
    // parent field for ph:"X", and viewers surface args on click.
    std::vector<TraceArg> args = e.args;
    if (e.span_id != 0) {
      args.emplace_back("span_id", static_cast<double>(e.span_id));
      args.emplace_back("parent_id", static_cast<double>(e.parent_id));
    }
    writeArgs(os, args);
    os << "}";
  }
  os << (sorted.empty() ? "]}" : "\n]}");
}

bool TraceSink::writeChromeTraceFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  writeChromeTrace(os);
  os << '\n';
  return static_cast<bool>(os);
}

#else  // RFIDSCHED_NO_OBS

bool TraceSink::writeJsonlFile(const std::string& path) const {
  std::ofstream os(path);
  return static_cast<bool>(os);
}

void TraceSink::writeChromeTrace(std::ostream& os) const {
  os << "{\"traceEvents\": []}";
}

bool TraceSink::writeChromeTraceFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  writeChromeTrace(os);
  os << '\n';
  return static_cast<bool>(os);
}

#endif  // RFIDSCHED_NO_OBS

}  // namespace rfid::obs
