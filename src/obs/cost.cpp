#include "obs/cost.h"

#include <fstream>
#include <ostream>

namespace rfid::obs {

void CostBill::add(const CostBill& o) {
  for (const auto& f : kCostFields) this->*f.member += o.*f.member;
}

void CostBill::subtract(const CostBill& o) {
  for (const auto& f : kCostFields) this->*f.member -= o.*f.member;
}

bool CostBill::zero() const {
  for (const auto& f : kCostFields) {
    if (this->*f.member != 0) return false;
  }
  return true;
}

void CostBill::writeJson(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& f : kCostFields) {
    if (!first) os << ',';
    first = false;
    os << '"' << f.name << "\":" << this->*f.member;
  }
  os << '}';
}

#ifndef RFIDSCHED_NO_OBS

void CostLedger::charge(std::string_view phase, const CostBill& bill) {
  if (bill.zero()) return;
  auto it = phases_.find(phase);
  if (it == phases_.end()) {
    it = phases_.emplace(std::string(phase), CostBill{}).first;
  }
  it->second.add(bill);
  total_.add(bill);
}

void CostLedger::commitSlot(const CostBill& bill) { slots_.push_back(bill); }

const CostBill* CostLedger::phase(std::string_view name) const {
  auto it = phases_.find(name);
  return it == phases_.end() ? nullptr : &it->second;
}

namespace {
std::string pad(int n) { return std::string(static_cast<std::size_t>(n), ' '); }
}  // namespace

void CostLedger::writeJson(std::ostream& os, int indent) const {
  const std::string p0 = pad(indent);
  const std::string p1 = pad(indent + 2);
  const std::string p2 = pad(indent + 4);
  os << "{\n" << p1 << "\"total\": ";
  total_.writeJson(os);
  os << ",\n" << p1 << "\"phases\": {";
  bool first = true;
  for (const auto& [name, bill] : phases_) {
    os << (first ? "\n" : ",\n") << p2 << '"' << name << "\": ";
    first = false;
    bill.writeJson(os);
  }
  if (!first) os << '\n' << p1;
  os << "},\n" << p1 << "\"slots\": [";
  first = true;
  for (const auto& bill : slots_) {
    os << (first ? "\n" : ",\n") << p2;
    first = false;
    bill.writeJson(os);
  }
  if (!first) os << '\n' << p1;
  os << "]\n" << p0 << '}';
}

bool CostLedger::writeJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  writeJson(out);
  out << '\n';
  return out.good();
}

#else  // RFIDSCHED_NO_OBS

void CostLedger::writeJson(std::ostream& os, int) const { os << "{}"; }

bool CostLedger::writeJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "{}\n";
  return out.good();
}

#endif  // RFIDSCHED_NO_OBS

}  // namespace rfid::obs
