#include "obs/metrics.h"

#include <fstream>
#include <ostream>

#ifndef RFIDSCHED_NO_OBS
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>
#endif

namespace rfid::obs {

#ifndef RFIDSCHED_NO_OBS

namespace {

/// JSON number: integral values print without a fractional part so counter
/// JSON stays exact; everything else round-trips via %.17g.  Non-finite
/// values (never produced by the metrics themselves) degrade to 0.
std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const char* kindName(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

int Histogram::bucketOf(double v) {
  int idx = 0;
  double bound = 1.0;
  while (v > bound && idx < kBuckets - 1) {
    bound *= 2.0;
    ++idx;
  }
  return idx;
}

void Histogram::record(double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  stat_.add(v);
  ++buckets_[bucketOf(v)];
}

std::int64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stat_.count();
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stat_.min();
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stat_.max();
}

double Histogram::mean() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stat_.mean();
}

double Histogram::percentile(double p) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t n = stat_.count();
  if (n == 0) return 0.0;
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(n);
  std::int64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += buckets_[i];
    if (static_cast<double>(cum) >= rank) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i);
      const double frac = (rank - before) / static_cast<double>(buckets_[i]);
      return std::clamp(lo + (hi - lo) * frac, stat_.min(), stat_.max());
    }
  }
  return stat_.max();
}

void Histogram::merge(const Histogram& o) {
  // Lock ordering: callers merge distinct registries, and self-merge is the
  // only way to alias — guard it instead of ordering the locks.
  if (this == &o) return;
  const std::lock_guard<std::mutex> lock_o(o.mu_);
  const std::lock_guard<std::mutex> lock(mu_);
  stat_.merge(o.stat_);
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               Kind kind) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered as " +
                             kindName(static_cast<int>(it->second.kind)) +
                             ", requested as " +
                             kindName(static_cast<int>(kind)));
    }
    return it->second;
  }
  Entry& e = entries_[std::string(name)];
  e.kind = kind;
  return e;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return entry(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return entry(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return entry(name, Kind::kHistogram).histogram;
}

bool MetricsRegistry::empty() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty();
}

void MetricsRegistry::merge(const MetricsRegistry& o) {
  if (this == &o) return;
  // Snapshot o's names first so we never hold both registry locks while
  // touching entries (entry() locks mu_ internally).
  std::vector<std::pair<std::string, Kind>> names;
  {
    const std::lock_guard<std::mutex> lock(o.mu_);
    names.reserve(o.entries_.size());
    for (const auto& [name, e] : o.entries_) names.emplace_back(name, e.kind);
  }
  for (const auto& [name, kind] : names) {
    Entry& mine = entry(name, kind);
    const std::lock_guard<std::mutex> lock(o.mu_);
    const auto it = o.entries_.find(name);
    if (it == o.entries_.end()) continue;
    switch (kind) {
      case Kind::kCounter:
        mine.counter.add(it->second.counter.value());
        break;
      case Kind::kGauge:
        mine.gauge.set(it->second.gauge.value());
        break;
      case Kind::kHistogram:
        mine.histogram.merge(it->second.histogram);
        break;
    }
  }
}

void MetricsRegistry::writeJson(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  const std::lock_guard<std::mutex> lock(mu_);

  const auto emitSection = [&](Kind kind, const char* title, bool last) {
    os << pad << "  \"" << title << "\": {";
    bool first = true;
    for (const auto& [name, e] : entries_) {
      if (e.kind != kind) continue;
      os << (first ? "\n" : ",\n") << pad << "    \"" << name << "\": ";
      first = false;
      switch (kind) {
        case Kind::kCounter:
          os << e.counter.value();
          break;
        case Kind::kGauge:
          os << jsonNumber(e.gauge.value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = e.histogram;
          os << "{\"count\": " << h.count()
             << ", \"min\": " << jsonNumber(h.min())
             << ", \"max\": " << jsonNumber(h.max())
             << ", \"mean\": " << jsonNumber(h.mean())
             << ", \"p50\": " << jsonNumber(h.percentile(50))
             << ", \"p90\": " << jsonNumber(h.percentile(90))
             << ", \"p99\": " << jsonNumber(h.percentile(99)) << "}";
          break;
        }
      }
    }
    os << (first ? "}" : "\n" + pad + "  }") << (last ? "\n" : ",\n");
  };

  os << pad << "{\n";
  emitSection(Kind::kCounter, "counters", false);
  emitSection(Kind::kGauge, "gauges", false);
  emitSection(Kind::kHistogram, "histograms", true);
  os << pad << "}";
}

bool MetricsRegistry::writeJsonFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  writeJson(os);
  os << '\n';
  return static_cast<bool>(os);
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Our dot-separated
// names map dots (and any other outlaw character) to underscores.
std::string promName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

}  // namespace

void MetricsRegistry::writePrometheus(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : entries_) {
    const std::string base = promName(name);
    switch (e.kind) {
      case Kind::kCounter:
        os << "# TYPE " << base << "_total counter\n"
           << base << "_total " << e.counter.value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << base << " gauge\n"
           << base << ' ' << jsonNumber(e.gauge.value()) << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = e.histogram;
        const std::pair<const char*, double> fields[] = {
            {"_count", static_cast<double>(h.count())},
            {"_min", h.min()},
            {"_max", h.max()},
            {"_mean", h.mean()},
            {"_p50", h.percentile(50)},
            {"_p90", h.percentile(90)},
            {"_p99", h.percentile(99)},
        };
        for (const auto& [suffix, value] : fields) {
          os << "# TYPE " << base << suffix << " gauge\n"
             << base << suffix << ' ' << jsonNumber(value) << '\n';
        }
        break;
      }
    }
  }
}

bool MetricsRegistry::writePrometheusFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  writePrometheus(os);
  return static_cast<bool>(os);
}

#else  // RFIDSCHED_NO_OBS

void MetricsRegistry::writeJson(std::ostream& os, int indent) const {
  for (int i = 0; i < indent; ++i) os << ' ';
  os << "{}";
}

bool MetricsRegistry::writeJsonFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << "{}\n";
  return static_cast<bool>(os);
}

bool MetricsRegistry::writePrometheusFile(const std::string& path) const {
  std::ofstream os(path);
  return static_cast<bool>(os);
}

#endif  // RFIDSCHED_NO_OBS

}  // namespace rfid::obs
