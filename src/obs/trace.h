// trace.h — structured event tracing with JSONL and Chrome trace export.
//
// A TraceSink records typed events — slot scheduled, weight evaluated,
// message sent, round completed, protocol frame resolved, generic span —
// stamped on the sink's own monotonic clock (microseconds since sink
// creation).  v2 adds *causal spans*: every timed span carries a sink-unique
// span id plus the id of its parent, so a run exports as a tree
// (run → slot → scheduler → component/shift → selection) instead of a flat
// event soup.  Parentage is tracked with a per-thread span stack — a span
// opened while another is open on the same thread nests under it
// automatically; spans handed to worker threads set their parent explicitly
// (ScopedTimer::setParent).  Thread ids are registered on first use, in
// order of first event, with the sink-creating thread as tid 0.
//
// Two exporters:
//
//   * writeJsonl:       one self-describing JSON object per line, the
//                       machine-diffable form scripts consume; includes
//                       span_id/parent_id (0 = none/root).
//   * writeChromeTrace: the Chrome trace_event JSON object
//                       ({"traceEvents": [...]}) that loads directly in
//                       chrome://tracing or https://ui.perfetto.dev; events
//                       are emitted sorted by (tid, ts) so timestamps are
//                       monotonically non-decreasing per thread row, and
//                       span/parent ids ride in args.
//
// Like the metrics registry, the whole class degrades to an inert stub
// under -DRFIDSCHED_NO_OBS.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef RFIDSCHED_NO_OBS
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#endif

namespace rfid::obs {

/// Event taxonomy (docs/observability.md).  Doubles as the Chrome "cat"
/// field, so traces can be filtered per category in the viewer.
enum class EventKind {
  kSlot,        // one MCS time-slot executed
  kWeightEval,  // a w(X) referee evaluation
  kMessage,     // network message traffic
  kRound,       // one synchronous network round completed
  kFrame,       // a link-layer protocol frame / walk resolved
  kFault,       // an injected fault fired (crash, drop, miss, orphan)
  kSpan,        // generic timed span (ScopedTimer default)
  kCkpt,        // checkpoint IO: journal replay, snapshot written
  kCheck,       // invariant oracle: slot validated, violation flagged
};

const char* eventKindName(EventKind k);

/// Numeric key/value annotation attached to an event ("args" in both
/// export formats).
using TraceArg = std::pair<std::string, double>;

struct TraceEvent {
  EventKind kind = EventKind::kSpan;
  std::string name;
  std::int64_t ts_us = 0;   // microseconds since sink creation
  std::int64_t dur_us = 0;  // 0 => instant event
  int tid = 0;
  std::uint64_t span_id = 0;    // 0 => event is not itself a span node
  std::uint64_t parent_id = 0;  // 0 => root (or unparented instant)
  std::vector<TraceArg> args;
};

#ifndef RFIDSCHED_NO_OBS

class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Microseconds since sink creation (steady clock, monotonic).
  std::int64_t nowUs() const;

  /// Allocates a fresh sink-unique span id (never 0).
  std::uint64_t newSpanId();

  /// Per-thread span stack.  pushSpan makes `id` the implicit parent of
  /// spans/instants recorded later on this thread; popSpan undoes the most
  /// recent push for this sink on this thread (LIFO — RAII ScopedTimers
  /// enforce the discipline).  currentSpan returns the top, 0 if empty.
  void pushSpan(std::uint64_t id);
  void popSpan();
  std::uint64_t currentSpan() const;

  /// Stable small integer for the calling thread, assigned on first call in
  /// call order; the thread that constructed the sink is 0.
  int threadId();

  /// Records a timed span [ts_us, ts_us + dur_us).  tid 0 means "resolve
  /// via threadId()"; span/parent ids of 0 mean the event is not a tree
  /// node / has no recorded parent.
  void complete(EventKind kind, std::string name, std::int64_t ts_us,
                std::int64_t dur_us, std::vector<TraceArg> args = {},
                int tid = 0, std::uint64_t span_id = 0,
                std::uint64_t parent_id = 0);

  /// Records an instantaneous event stamped now, parented under the calling
  /// thread's current span.
  void instant(EventKind kind, std::string name,
               std::vector<TraceArg> args = {}, int tid = 0);

  std::size_t size() const;
  std::vector<TraceEvent> snapshot() const;

  void writeJsonl(std::ostream& os) const;
  bool writeJsonlFile(const std::string& path) const;
  void writeChromeTrace(std::ostream& os) const;
  bool writeChromeTraceFile(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point origin_;
  std::atomic<std::uint64_t> next_span_{1};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  mutable std::mutex tid_mu_;
  std::map<std::thread::id, int> tids_;
};

#else  // RFIDSCHED_NO_OBS

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  std::int64_t nowUs() const { return 0; }
  std::uint64_t newSpanId() { return 0; }
  void pushSpan(std::uint64_t) {}
  void popSpan() {}
  std::uint64_t currentSpan() const { return 0; }
  int threadId() { return 0; }
  void complete(EventKind, std::string, std::int64_t, std::int64_t,
                std::vector<TraceArg> = {}, int = 0, std::uint64_t = 0,
                std::uint64_t = 0) {}
  void instant(EventKind, std::string, std::vector<TraceArg> = {}, int = 0) {}
  std::size_t size() const { return 0; }
  std::vector<TraceEvent> snapshot() const { return {}; }
  void writeJsonl(std::ostream&) const {}
  bool writeJsonlFile(const std::string& path) const;
  void writeChromeTrace(std::ostream& os) const;  // "{"traceEvents": []}"
  bool writeChromeTraceFile(const std::string& path) const;
};

#endif  // RFIDSCHED_NO_OBS

}  // namespace rfid::obs
