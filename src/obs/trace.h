// trace.h — structured event tracing with JSONL and Chrome trace export.
//
// A TraceSink records typed events — slot scheduled, weight evaluated,
// message sent, round completed, protocol frame resolved, generic span —
// stamped on the sink's own monotonic clock (microseconds since sink
// creation).  Two exporters:
//
//   * writeJsonl:       one self-describing JSON object per line, the
//                       machine-diffable form scripts consume.
//   * writeChromeTrace: the Chrome trace_event JSON object
//                       ({"traceEvents": [...]}) that loads directly in
//                       chrome://tracing or https://ui.perfetto.dev; events
//                       are emitted sorted by (tid, ts) so timestamps are
//                       monotonically non-decreasing per thread row.
//
// Like the metrics registry, the whole class degrades to an inert stub
// under -DRFIDSCHED_NO_OBS.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef RFIDSCHED_NO_OBS
#include <chrono>
#include <mutex>
#endif

namespace rfid::obs {

/// Event taxonomy (docs/observability.md).  Doubles as the Chrome "cat"
/// field, so traces can be filtered per category in the viewer.
enum class EventKind {
  kSlot,        // one MCS time-slot executed
  kWeightEval,  // a w(X) referee evaluation
  kMessage,     // network message traffic
  kRound,       // one synchronous network round completed
  kFrame,       // a link-layer protocol frame / walk resolved
  kFault,       // an injected fault fired (crash, drop, miss, orphan)
  kSpan,        // generic timed span (ScopedTimer default)
  kCkpt,        // checkpoint IO: journal replay, snapshot written
  kCheck,       // invariant oracle: slot validated, violation flagged
};

const char* eventKindName(EventKind k);

/// Numeric key/value annotation attached to an event ("args" in both
/// export formats).
using TraceArg = std::pair<std::string, double>;

struct TraceEvent {
  EventKind kind = EventKind::kSpan;
  std::string name;
  std::int64_t ts_us = 0;   // microseconds since sink creation
  std::int64_t dur_us = 0;  // 0 => instant event
  int tid = 0;
  std::vector<TraceArg> args;
};

#ifndef RFIDSCHED_NO_OBS

class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Microseconds since sink creation (steady clock, monotonic).
  std::int64_t nowUs() const;

  /// Records a timed span [ts_us, ts_us + dur_us).
  void complete(EventKind kind, std::string name, std::int64_t ts_us,
                std::int64_t dur_us, std::vector<TraceArg> args = {},
                int tid = 0);

  /// Records an instantaneous event stamped now.
  void instant(EventKind kind, std::string name,
               std::vector<TraceArg> args = {}, int tid = 0);

  std::size_t size() const;
  std::vector<TraceEvent> snapshot() const;

  void writeJsonl(std::ostream& os) const;
  bool writeJsonlFile(const std::string& path) const;
  void writeChromeTrace(std::ostream& os) const;
  bool writeChromeTraceFile(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

#else  // RFIDSCHED_NO_OBS

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  std::int64_t nowUs() const { return 0; }
  void complete(EventKind, std::string, std::int64_t, std::int64_t,
                std::vector<TraceArg> = {}, int = 0) {}
  void instant(EventKind, std::string, std::vector<TraceArg> = {}, int = 0) {}
  std::size_t size() const { return 0; }
  std::vector<TraceEvent> snapshot() const { return {}; }
  void writeJsonl(std::ostream&) const {}
  bool writeJsonlFile(const std::string& path) const;
  void writeChromeTrace(std::ostream& os) const;  // "{"traceEvents": []}"
  bool writeChromeTraceFile(const std::string& path) const;
};

#endif  // RFIDSCHED_NO_OBS

}  // namespace rfid::obs
