// reader.h — the RFID reader model (paper §II).
//
// Each reader v_i sits at a fixed position and carries two radii: the
// interrogation radius γ_i (tags inside can be read) and the interference
// radius R_i (other readers inside suffer reader–tag collision when v_i
// transmits).  The paper's general model allows per-reader radii — the whole
// point of the IPDPS 2011 generalization over Zhou et al. — with the single
// physical invariant γ_i ≤ R_i (a reader's signal reaches at least as far as
// it can read).
#pragma once

#include "geometry/vec2.h"

namespace rfid::core {

/// One RFID reader.  Plain value type; identity is the index in the owning
/// System, mirrored in `id` for convenience in logs and messages.
struct Reader {
  int id = 0;
  geom::Vec2 pos;
  /// Interference radius R_i: readers within this disk of an *active* v_i
  /// cannot read anything (RTc).
  double interference_radius = 0.0;
  /// Interrogation radius γ_i ≤ R_i: tags within this disk are readable.
  double interrogation_radius = 0.0;

  /// True iff the radii satisfy the model invariant 0 < γ ≤ R.
  bool valid() const {
    return interrogation_radius > 0.0 &&
           interrogation_radius <= interference_radius;
  }
};

/// Independence predicate of Definition 2: v_i ⟂ v_j iff neither reader lies
/// inside the other's interference disk, i.e. ‖v_i − v_j‖ > max(R_i, R_j).
/// Symmetric by construction.
inline bool independent(const Reader& a, const Reader& b) {
  const double m =
      a.interference_radius > b.interference_radius ? a.interference_radius
                                                    : b.interference_radius;
  return geom::dist2(a.pos, b.pos) > m * m;
}

}  // namespace rfid::core
