// system.h — the multi-reader RFID system model (paper §II–III).
//
// A System owns the static deployment (readers, tags, precomputed coverage
// lists) plus the one piece of mutable state the MCS loop needs: which tags
// have already been served.  Everything the schedulers consume — coverage,
// independence, weights, well-covered semantics — is defined here so that
// every algorithm (PTAS, growth-bounded, distributed, Colorwave, GHC) is
// scored by the exact same referee.
//
// Coverage is stored CSR-style (offsets + one flat index array) in both
// directions: reader → tags in its interrogation disk, and the inverted
// tag → covering readers index.  The flat layout keeps the weight kernels'
// inner loops on contiguous memory, and the inverted index is what lets the
// lazy-greedy machinery (core/weight.h) dirty-mark exactly the readers whose
// marginal weight a commit or a served tag actually changed
// (docs/performance.md).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/reader.h"
#include "core/tag.h"
#include "geometry/spatial_grid.h"
#include "obs/metrics.h"

namespace rfid::core {

/// One blocked-bitmap row element: 64 tag-bit slots starting at bit
/// position `word * 64`.  Rows store only non-zero words, ascending by
/// `word`, all rows back to back in one arena (core::System below).
struct BitEntry {
  std::uint32_t word = 0;   // tag-bit block index (bit positions word*64 ..)
  std::uint32_t pad = 0;    // keeps the arena element 16-byte, one load/entry
  std::uint64_t bits = 0;   // never zero for a stored entry (canonical form)
};

/// Reusable per-thread buffers for weight evaluation.  The scratch-taking
/// System overloads are safe to call concurrently, one scratch per thread
/// (the parallel PTAS shifts do exactly that); the scratch-less overloads
/// fall back to one internal buffer and stay single-threaded.
/// Zero-initialized by System::initScratch and restored to zero after every
/// evaluation, so one scratch serves any number of sequential calls.
struct WeightScratch {
  std::vector<int> count;    // per-tag coverage multiplicity within X
  std::vector<char> victim;  // per-reader RTc victim flag within X
  // Bitmap-referee buffers (word-indexed by tag bit block): exactly-one
  // counting accumulates `once`/`twice` over the active rows, `touched`
  // remembers which words to zero afterwards, `marked` which victim flags,
  // and `qbuf` backs the reader-grid victim queries.
  std::vector<std::uint64_t> once;
  std::vector<std::uint64_t> twice;
  std::vector<int> touched;
  std::vector<int> marked;
  std::vector<int> qbuf;
};

/// The deployment plus the tag read-state.
///
/// Thread-safety: const member functions are safe to call concurrently
/// *except* the scratch-less weight()/wellCoveredTags() overloads, which
/// share an internal scratch buffer (documented on the members).  Parallel
/// evaluation passes an explicit WeightScratch per thread instead.
class System {
 public:
  /// Builds the system and precomputes coverage both ways (reader → tags in
  /// its interrogation disk, tag → covering readers).  Reader/tag `id`
  /// fields are rewritten to their indices to keep identity unambiguous.
  System(std::vector<Reader> readers, std::vector<Tag> tags);

  int numReaders() const { return static_cast<int>(readers_.size()); }
  int numTags() const { return static_cast<int>(tags_.size()); }
  const Reader& reader(int i) const { return readers_[static_cast<std::size_t>(i)]; }
  const Tag& tag(int i) const { return tags_[static_cast<std::size_t>(i)]; }
  std::span<const Reader> readers() const { return readers_; }
  std::span<const Tag> tags() const { return tags_; }

  /// Tag indices inside reader `v`'s interrogation disk, ascending.
  std::span<const int> coverage(int v) const {
    const auto lo = static_cast<std::size_t>(cov_off_[static_cast<std::size_t>(v)]);
    const auto hi = static_cast<std::size_t>(cov_off_[static_cast<std::size_t>(v) + 1]);
    return {cov_idx_.data() + lo, hi - lo};
  }
  /// Reader indices whose interrogation disk contains tag `t`, ascending
  /// (the inverted coverage index).
  std::span<const int> coverers(int t) const {
    const auto lo = static_cast<std::size_t>(covr_off_[static_cast<std::size_t>(t)]);
    const auto hi = static_cast<std::size_t>(covr_off_[static_cast<std::size_t>(t) + 1]);
    return {covr_idx_.data() + lo, hi - lo};
  }

  /// A process-unique id minted at construction (copies share it — they are
  /// the same deployment).  Schedulers use it to key caches derived from
  /// the static coverage structure (components, standalone-weight caches)
  /// without risking address-reuse aliasing across Systems.
  std::uint64_t instanceId() const { return instance_id_; }

  /// Definition 2 independence: ‖v_i − v_j‖ > max(R_i, R_j).
  bool independent(int i, int j) const {
    return core::independent(reader(i), reader(j));
  }

  /// True iff `X` is a feasible scheduling set (pairwise independent).
  /// O(|X|²); scheduling sets are small (bounded by the packing number).
  bool isFeasible(std::span<const int> X) const;

  // ---- read-state (MCS loop renders served tags passive) ----

  bool isRead(int t) const { return read_[static_cast<std::size_t>(t)] != 0; }
  void markRead(int t) {
    read_[static_cast<std::size_t>(t)] = 1;
    const std::uint32_t p = bit_of_[static_cast<std::size_t>(t)];
    read_bits_[p >> 6] |= std::uint64_t{1} << (p & 63);
  }
  void markRead(std::span<const int> tags);
  /// Re-arms a tag.  Two uses: undoing experiment state, and the dynamic
  /// arrival simulation (workload::DynamicSimulation), which pre-places all
  /// future tags as read ("not in the field yet") and un-reads each one at
  /// its arrival slot.
  void markUnread(int t) {
    read_[static_cast<std::size_t>(t)] = 0;
    const std::uint32_t p = bit_of_[static_cast<std::size_t>(t)];
    read_bits_[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
  }
  /// Forgets all reads; used between independent experiments on one System.
  void resetReads();
  /// The raw read bitmap, one byte per tag (nonzero = read).  Checkpoint
  /// snapshots and the check:: oracle copy it wholesale instead of n
  /// isRead() calls.
  std::span<const char> readState() const { return read_; }
  /// Number of unread tags (coverable or not).
  int unreadCount() const;
  /// Number of unread tags covered by at least one reader — the MCS loop
  /// terminates exactly when this reaches zero.
  int unreadCoverableCount() const;

  // ---- well-covered semantics (Definition 1) ----

  /// Tags well-covered when exactly the readers in `X` are active.  Valid
  /// for *arbitrary* X, feasible or not: a reader lying inside another
  /// active reader's interference disk is an RTc victim and reads nothing,
  /// and a tag covered by more than one active reader is lost to RRc.
  /// Only unread tags are reported.  Uses the internal scratch buffer
  /// (not thread-safe across concurrent calls on one System).
  std::vector<int> wellCoveredTags(std::span<const int> X) const;

  /// Fault-mode referee: tags well-covered by the readers of `X` while the
  /// readers in `jamming` also radiate.  A jamming reader (a loud-failed
  /// crash, fault::FaultPlan) counts for RRc coverage multiplicity and RTc
  /// victimization exactly like an active reader, but reads nothing.  `X`
  /// and `jamming` must be disjoint.  With `jamming` empty this is exactly
  /// wellCoveredTags(X).  Same scratch-buffer caveat.
  std::vector<int> wellCoveredTags(std::span<const int> X,
                                   std::span<const int> jamming) const;

  /// wellCoveredTags with caller-owned scratch: thread-safe with one
  /// scratch per thread.  `scratch` must come from initScratch().
  std::vector<int> wellCoveredTags(std::span<const int> X,
                                   std::span<const int> jamming,
                                   WeightScratch& scratch) const;

  /// w(X) of Definition 3: |wellCoveredTags(X)| without materializing the
  /// list.  Same scratch-buffer caveat.
  int weight(std::span<const int> X) const;

  /// weight with caller-owned scratch: thread-safe with one scratch per
  /// thread.  `scratch` must come from initScratch().
  int weight(std::span<const int> X, WeightScratch& scratch) const;

  /// Sizes (and zero-fills) a scratch for use with this System.
  void initScratch(WeightScratch& scratch) const;

  /// w({v}): unread tags in v's interrogation disk (activating v alone
  /// well-covers all of them).  Thread-safe.
  int singleWeight(int v) const;

  // ---- structural churn (streaming mode, docs/streaming.md) ----
  //
  // Tags arrive, move, and depart while readers stay fixed.  Each mutation
  // patches the dual CSR index in place, bumps the structural epoch, and
  // appends the affected reader rows to a bounded dirty-reader log so the
  // scheduler-side caches (core/weight.h) can absorb churn through the same
  // diff mechanism they already use for read-state changes across slots.
  // None of these are thread-safe; call them only between schedule() calls
  // (the streaming driver does exactly that).

  /// Appends a new tag (position + EPC; `id` is rewritten to the new index)
  /// and splices it into both CSR directions.  Returns the tag's index.
  /// Indices of existing tags never change; departed slots are not reused.
  int addTag(Tag t);

  /// Removes tag `t` from the field: its CSR entries are spliced out (its
  /// coverers row becomes empty), it is marked read, and the index becomes
  /// a tombstone (`departed`).  Safe on read tags; must not be repeated.
  void removeTag(int t);

  /// Moves tag `t` to `pos`, rewriting its coverage in both CSR directions.
  /// The read-state is untouched: an unread tag stays unread at the new
  /// position.  Must not be called on a departed tag.
  void moveTag(int t, geom::Vec2 pos);

  /// True once removeTag(t) has run: the index is a tombstone with no
  /// coverage that must never be counted or served again.
  bool departed(int t) const { return departed_[static_cast<std::size_t>(t)] != 0; }

  /// Monotone counter bumped by every structural mutation (add/remove/move).
  /// Cache layers key on (instanceId, structuralEpoch) — instanceId alone
  /// stays constant across in-place mutation.
  std::uint64_t structuralEpoch() const { return structural_epoch_; }

  /// FNV-1a over the four CSR arrays — the incremental-index identity the
  /// check::IncrementalIndexOracle compares against a from-scratch rebuild.
  std::uint64_t indexFingerprint() const;

  /// Shared hash so the oracle can fingerprint its independently rebuilt
  /// arrays with the exact same byte order.
  static std::uint64_t fingerprintArrays(std::span<const int> cov_off,
                                         std::span<const int> cov_idx,
                                         std::span<const int> covr_off,
                                         std::span<const int> covr_idx);

  // ---- bitmap coverage index (the popcount weight referee) ----
  //
  // Beside the dual CSR lives a blocked per-reader coverage bitmap: tag t
  // occupies bit position tagBit(t) (Morton rank of its position, so one
  // disk's tags cluster into few words; churn-added tags append at the
  // tail), and reader v's row — the non-zero 64-bit words of its coverage
  // set — sits at arena rows readerRow(v), rows themselves in Morton order
  // of the reader positions.  weight(), wellCoveredTags(), singleWeight()
  // and unreadCoverableCount() run over this index by default; the CSR
  // element walk remains available as the reference referee
  // (setReferenceEval).  Both paths produce bit-identical results; the
  // incremental-index oracle verifies the bitmap against geometry exactly
  // like the CSR (docs/performance.md).

  /// Switches the referee kernels to the CSR reference path (true) or the
  /// bitmap path (false, default).  Purely an evaluation-strategy switch:
  /// results are identical; only speed differs.
  void setReferenceEval(bool on) { reference_eval_ = on; }
  bool referenceEval() const { return reference_eval_; }

  /// Tag t's bit position in the coverage bitmaps (Morton rank at
  /// construction; tags added later append past the construction range).
  std::uint32_t tagBit(int t) const { return bit_of_[static_cast<std::size_t>(t)]; }
  /// Inverse of tagBit: the tag occupying bit position `p`.
  int bitTag(std::uint32_t p) const { return tag_of_[static_cast<std::size_t>(p)]; }
  /// Reader v's row slot in the bitmap arena (Morton rank of its position).
  std::uint32_t readerRow(int v) const { return row_of_[static_cast<std::size_t>(v)]; }
  /// Inverse of readerRow.
  int rowReader(std::uint32_t r) const { return reader_of_[static_cast<std::size_t>(r)]; }
  /// Reader v's bitmap row: non-zero words ascending by block index.
  std::span<const BitEntry> bitRow(int v) const {
    const std::uint32_t r = row_of_[static_cast<std::size_t>(v)];
    return {bit_arena_.data() + bit_off_[r], bit_off_[r + 1] - bit_off_[r]};
  }
  /// Number of allocated tag bit positions (== numTags(); grows with addTag).
  std::uint32_t numTagBits() const { return static_cast<std::uint32_t>(tag_of_.size()); }
  /// Read-state bitmap, one bit per tag bit position (see tagBit); bit set
  /// means the tag is read or departed.  Lets caches diff read-state
  /// word-parallel instead of polling isRead() per tag.
  std::span<const std::uint64_t> readBits() const { return read_bits_; }

  /// FNV-1a over the bitmap arena, offsets, and both SFC permutations —
  /// the bitmap counterpart of indexFingerprint() for the oracle.
  std::uint64_t bitmapFingerprint() const;

  /// Shared hash for the oracle's independently rebuilt bitmap.
  static std::uint64_t fingerprintBitmap(std::span<const std::uint32_t> off,
                                         std::span<const BitEntry> arena,
                                         std::span<const std::uint32_t> row_of,
                                         std::span<const std::uint32_t> bit_of);

  /// Rebuilds both CSR directions from raw geometry (skipping departed
  /// tags), discarding whatever the incremental path had accumulated — the
  /// self-heal step after the oracle flags a divergence.  Invalidates every
  /// dirty-log cursor, so caches do a full rebuild at their next sync.
  void rebuildIndex();

  // The dirty-reader log: every mutation appends the reader rows it
  // touched.  A cache remembers dirtyLogEnd() at each sync and processes
  // dirtyLogFrom(cursor) next time; a cursor behind dirtyLogBase() means
  // the window was compacted (or the index rebuilt) and the cache must do
  // a full rebuild.  Entries may repeat; consumers de-duplicate.
  std::uint64_t dirtyLogBase() const { return dirty_base_; }
  std::uint64_t dirtyLogEnd() const {
    return dirty_base_ + static_cast<std::uint64_t>(dirty_log_.size());
  }
  /// Valid only for dirtyLogBase() <= cursor <= dirtyLogEnd().
  std::span<const int> dirtyLogFrom(std::uint64_t cursor) const {
    const auto skip = static_cast<std::size_t>(cursor - dirty_base_);
    return {dirty_log_.data() + skip, dirty_log_.size() - skip};
  }

  /// Test hook: silently corrupts one CSR entry (no epoch bump, no dirty
  /// log) to simulate an incremental-update bug for the oracle tests.
  void testOnlyCorruptIndex();

  /// Test hook: flips one bit in the bitmap arena (CSR untouched) to
  /// simulate a bitmap/CSR desync for the oracle and mutation-smoke tests.
  void testOnlyCorruptBitmap();

  // ---- observability ----

  /// Attaches a metrics registry (nullptr detaches).  Flushes the
  /// construction-time spatial-grid query count (`core.grid_queries`) once
  /// per attach and from then on counts every referee evaluation:
  /// `core.weight_evals` (weight()) and `core.well_covered_evals`
  /// (wellCoveredTags()).  Counter handles are cached here, so the hot
  /// paths pay one pointer test when detached.  Counters are atomic, so
  /// parallel scratch-taking evaluations bill exact totals.
  void attachMetrics(obs::MetricsRegistry* m);
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  template <typename OnTag>
  void forEachWellCovered(std::span<const int> X, std::span<const int> jamming,
                          std::span<int> count, std::span<char> victim,
                          OnTag&& on_tag) const;

  /// From-scratch CSR construction (constructor and rebuildIndex); skips
  /// departed tags.
  void buildIndex();
  /// Fails closed (std::length_error with sizing math) when the coverage
  /// index would overflow the 32-bit arena offsets.
  void checkIndexCapacity() const;
  /// Assigns the SFC permutations (constructor only — bit positions and row
  /// slots stay stable across mutations and rebuilds so fingerprints,
  /// caches, and the oracle all speak one layout).
  void assignSfcOrder();
  /// Rebuilds the bitmap arena from the current CSR under the existing
  /// permutations (constructor and rebuildIndex).
  void buildBitmap();
  /// Splices tag `t`'s bit into / out of the bitmap rows of `readers`.
  void bitmapInsert(std::span<const int> readers, int t);
  void bitmapErase(std::span<const int> readers, int t);
  /// Bitmap-path referee kernels (weight / wellCoveredTags); `out` nullptr
  /// means count only.  Exactly-one counting over once/twice accumulators;
  /// victims marked through the reader grid above a small |X| threshold.
  int evalBitmap(std::span<const int> X, std::span<const int> jamming,
                 WeightScratch& scratch, std::vector<int>* out) const;
  void markVictims(std::span<const int> X, std::span<const int> jamming,
                   WeightScratch& scratch) const;
  /// Materializes the directed interference rows (constructor only).
  void buildInterferenceRows();
  /// Readers covering position `pos`, ascending (lazy reader grid query).
  void coveringReaders(geom::Vec2 pos, std::vector<int>& out);
  /// Splices tag `t` into / out of the cov rows of `readers` (ascending).
  void covInsert(std::span<const int> readers, int t);
  void covErase(std::span<const int> readers, int t);
  /// Replaces covr row `t` with `readers` (ascending).
  void covrReplace(int t, std::span<const int> readers);
  void logDirty(std::span<const int> readers);
  /// Forces every dirty-log cursor behind the window (full cache rebuild).
  void invalidateDirtyLog();

  std::vector<Reader> readers_;
  std::vector<Tag> tags_;
  // CSR coverage, both directions.  Offsets have one trailing entry, so
  // list v is cov_idx_[cov_off_[v] .. cov_off_[v+1]).
  std::vector<int> cov_off_;   // size numReaders()+1
  std::vector<int> cov_idx_;   // reader → tags, ascending per reader
  std::vector<int> covr_off_;  // size numTags()+1
  std::vector<int> covr_idx_;  // tag → readers, ascending per tag
  // Bitmap coverage index: one arena of non-zero words, rows in Morton
  // reader order (bit_off_ has one trailing entry per the CSR convention),
  // plus the two SFC permutations and the word-parallel read / coverable
  // state the popcount kernels AND against.
  std::vector<BitEntry> bit_arena_;
  std::vector<std::uint32_t> bit_off_;        // size numReaders()+1, by row
  std::vector<std::uint32_t> row_of_;         // reader → arena row
  std::vector<int> reader_of_;                // arena row → reader
  std::vector<std::uint32_t> bit_of_;         // tag → bit position
  std::vector<int> tag_of_;                   // bit position → tag
  std::vector<std::uint64_t> read_bits_;      // read-state, word per block
  std::vector<std::uint64_t> coverable_bits_; // ≥1 coverer, word per block
  bool reference_eval_ = false;
  std::vector<char> read_;
  // Structural-churn state.
  std::vector<char> departed_;       // tombstones (removeTag)
  std::uint64_t structural_epoch_ = 0;
  std::vector<int> dirty_log_;       // reader rows touched by mutations
  std::uint64_t dirty_base_ = 0;     // log-sequence number of dirty_log_[0]
  double max_gamma_ = 1.0;           // cell size for the reader grid
  // Lazy grid over reader positions (readers are static): built on the
  // first addTag/moveTag, reused for every later coverer query.  Immutable
  // and self-contained once built, so copies of the System share it.
  std::shared_ptr<const geom::SpatialGrid> reader_index_;
  // Directed interference rows: intf_idx_[intf_off_[v] .. intf_off_[v+1])
  // lists the readers u != v inside v's interference disk, ascending — the
  // victims v creates when it radiates.  Readers are static, so the rows
  // never need maintenance; on adversarially dense deployments (total past
  // the build cap) the offsets stay empty and the victim pass falls back
  // to per-radiator grid queries.
  std::vector<int> intf_off_;
  std::vector<int> intf_idx_;
  // Internal scratch backing the scratch-less evaluation overloads.
  mutable WeightScratch scratch_;
  std::uint64_t instance_id_ = 0;
  // Observability (cached handles; counter bumps through a const System are
  // metric mutations, not model mutations).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* weight_evals_ = nullptr;
  obs::Counter* well_covered_evals_ = nullptr;
  std::int64_t grid_queries_ = 0;  // spatial-grid disk queries at build time
};

}  // namespace rfid::core
