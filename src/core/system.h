// system.h — the multi-reader RFID system model (paper §II–III).
//
// A System owns the static deployment (readers, tags, precomputed coverage
// lists) plus the one piece of mutable state the MCS loop needs: which tags
// have already been served.  Everything the schedulers consume — coverage,
// independence, weights, well-covered semantics — is defined here so that
// every algorithm (PTAS, growth-bounded, distributed, Colorwave, GHC) is
// scored by the exact same referee.
//
// Coverage is stored CSR-style (offsets + one flat index array) in both
// directions: reader → tags in its interrogation disk, and the inverted
// tag → covering readers index.  The flat layout keeps the weight kernels'
// inner loops on contiguous memory, and the inverted index is what lets the
// lazy-greedy machinery (core/weight.h) dirty-mark exactly the readers whose
// marginal weight a commit or a served tag actually changed
// (docs/performance.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/reader.h"
#include "core/tag.h"
#include "geometry/spatial_grid.h"
#include "obs/metrics.h"

namespace rfid::core {

/// Reusable per-thread buffers for weight evaluation.  The scratch-taking
/// System overloads are safe to call concurrently, one scratch per thread
/// (the parallel PTAS shifts do exactly that); the scratch-less overloads
/// fall back to one internal buffer and stay single-threaded.
/// Zero-initialized by System::initScratch and restored to zero after every
/// evaluation, so one scratch serves any number of sequential calls.
struct WeightScratch {
  std::vector<int> count;    // per-tag coverage multiplicity within X
  std::vector<char> victim;  // per-reader RTc victim flag within X
};

/// The deployment plus the tag read-state.
///
/// Thread-safety: const member functions are safe to call concurrently
/// *except* the scratch-less weight()/wellCoveredTags() overloads, which
/// share an internal scratch buffer (documented on the members).  Parallel
/// evaluation passes an explicit WeightScratch per thread instead.
class System {
 public:
  /// Builds the system and precomputes coverage both ways (reader → tags in
  /// its interrogation disk, tag → covering readers).  Reader/tag `id`
  /// fields are rewritten to their indices to keep identity unambiguous.
  System(std::vector<Reader> readers, std::vector<Tag> tags);

  int numReaders() const { return static_cast<int>(readers_.size()); }
  int numTags() const { return static_cast<int>(tags_.size()); }
  const Reader& reader(int i) const { return readers_[static_cast<std::size_t>(i)]; }
  const Tag& tag(int i) const { return tags_[static_cast<std::size_t>(i)]; }
  std::span<const Reader> readers() const { return readers_; }
  std::span<const Tag> tags() const { return tags_; }

  /// Tag indices inside reader `v`'s interrogation disk, ascending.
  std::span<const int> coverage(int v) const {
    const auto lo = static_cast<std::size_t>(cov_off_[static_cast<std::size_t>(v)]);
    const auto hi = static_cast<std::size_t>(cov_off_[static_cast<std::size_t>(v) + 1]);
    return {cov_idx_.data() + lo, hi - lo};
  }
  /// Reader indices whose interrogation disk contains tag `t`, ascending
  /// (the inverted coverage index).
  std::span<const int> coverers(int t) const {
    const auto lo = static_cast<std::size_t>(covr_off_[static_cast<std::size_t>(t)]);
    const auto hi = static_cast<std::size_t>(covr_off_[static_cast<std::size_t>(t) + 1]);
    return {covr_idx_.data() + lo, hi - lo};
  }

  /// A process-unique id minted at construction (copies share it — they are
  /// the same deployment).  Schedulers use it to key caches derived from
  /// the static coverage structure (components, standalone-weight caches)
  /// without risking address-reuse aliasing across Systems.
  std::uint64_t instanceId() const { return instance_id_; }

  /// Definition 2 independence: ‖v_i − v_j‖ > max(R_i, R_j).
  bool independent(int i, int j) const {
    return core::independent(reader(i), reader(j));
  }

  /// True iff `X` is a feasible scheduling set (pairwise independent).
  /// O(|X|²); scheduling sets are small (bounded by the packing number).
  bool isFeasible(std::span<const int> X) const;

  // ---- read-state (MCS loop renders served tags passive) ----

  bool isRead(int t) const { return read_[static_cast<std::size_t>(t)] != 0; }
  void markRead(int t) { read_[static_cast<std::size_t>(t)] = 1; }
  void markRead(std::span<const int> tags);
  /// Re-arms a tag.  Two uses: undoing experiment state, and the dynamic
  /// arrival simulation (workload::DynamicSimulation), which pre-places all
  /// future tags as read ("not in the field yet") and un-reads each one at
  /// its arrival slot.
  void markUnread(int t) { read_[static_cast<std::size_t>(t)] = 0; }
  /// Forgets all reads; used between independent experiments on one System.
  void resetReads();
  /// The raw read bitmap, one byte per tag (nonzero = read).  Checkpoint
  /// snapshots and the check:: oracle copy it wholesale instead of n
  /// isRead() calls.
  std::span<const char> readState() const { return read_; }
  /// Number of unread tags (coverable or not).
  int unreadCount() const;
  /// Number of unread tags covered by at least one reader — the MCS loop
  /// terminates exactly when this reaches zero.
  int unreadCoverableCount() const;

  // ---- well-covered semantics (Definition 1) ----

  /// Tags well-covered when exactly the readers in `X` are active.  Valid
  /// for *arbitrary* X, feasible or not: a reader lying inside another
  /// active reader's interference disk is an RTc victim and reads nothing,
  /// and a tag covered by more than one active reader is lost to RRc.
  /// Only unread tags are reported.  Uses the internal scratch buffer
  /// (not thread-safe across concurrent calls on one System).
  std::vector<int> wellCoveredTags(std::span<const int> X) const;

  /// Fault-mode referee: tags well-covered by the readers of `X` while the
  /// readers in `jamming` also radiate.  A jamming reader (a loud-failed
  /// crash, fault::FaultPlan) counts for RRc coverage multiplicity and RTc
  /// victimization exactly like an active reader, but reads nothing.  `X`
  /// and `jamming` must be disjoint.  With `jamming` empty this is exactly
  /// wellCoveredTags(X).  Same scratch-buffer caveat.
  std::vector<int> wellCoveredTags(std::span<const int> X,
                                   std::span<const int> jamming) const;

  /// wellCoveredTags with caller-owned scratch: thread-safe with one
  /// scratch per thread.  `scratch` must come from initScratch().
  std::vector<int> wellCoveredTags(std::span<const int> X,
                                   std::span<const int> jamming,
                                   WeightScratch& scratch) const;

  /// w(X) of Definition 3: |wellCoveredTags(X)| without materializing the
  /// list.  Same scratch-buffer caveat.
  int weight(std::span<const int> X) const;

  /// weight with caller-owned scratch: thread-safe with one scratch per
  /// thread.  `scratch` must come from initScratch().
  int weight(std::span<const int> X, WeightScratch& scratch) const;

  /// Sizes (and zero-fills) a scratch for use with this System.
  void initScratch(WeightScratch& scratch) const;

  /// w({v}): unread tags in v's interrogation disk (activating v alone
  /// well-covers all of them).  Thread-safe.
  int singleWeight(int v) const;

  // ---- observability ----

  /// Attaches a metrics registry (nullptr detaches).  Flushes the
  /// construction-time spatial-grid query count (`core.grid_queries`) once
  /// per attach and from then on counts every referee evaluation:
  /// `core.weight_evals` (weight()) and `core.well_covered_evals`
  /// (wellCoveredTags()).  Counter handles are cached here, so the hot
  /// paths pay one pointer test when detached.  Counters are atomic, so
  /// parallel scratch-taking evaluations bill exact totals.
  void attachMetrics(obs::MetricsRegistry* m);
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  template <typename OnTag>
  void forEachWellCovered(std::span<const int> X, std::span<const int> jamming,
                          std::span<int> count, std::span<char> victim,
                          OnTag&& on_tag) const;

  std::vector<Reader> readers_;
  std::vector<Tag> tags_;
  // CSR coverage, both directions.  Offsets have one trailing entry, so
  // list v is cov_idx_[cov_off_[v] .. cov_off_[v+1]).
  std::vector<int> cov_off_;   // size numReaders()+1
  std::vector<int> cov_idx_;   // reader → tags, ascending per reader
  std::vector<int> covr_off_;  // size numTags()+1
  std::vector<int> covr_idx_;  // tag → readers, ascending per tag
  std::vector<char> read_;
  // Internal scratch backing the scratch-less evaluation overloads.
  mutable WeightScratch scratch_;
  std::uint64_t instance_id_ = 0;
  // Observability (cached handles; counter bumps through a const System are
  // metric mutations, not model mutations).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* weight_evals_ = nullptr;
  obs::Counter* well_covered_evals_ = nullptr;
  std::int64_t grid_queries_ = 0;  // spatial-grid disk queries at build time
};

}  // namespace rfid::core
