// system.h — the multi-reader RFID system model (paper §II–III).
//
// A System owns the static deployment (readers, tags, precomputed coverage
// lists) plus the one piece of mutable state the MCS loop needs: which tags
// have already been served.  Everything the schedulers consume — coverage,
// independence, weights, well-covered semantics — is defined here so that
// every algorithm (PTAS, growth-bounded, distributed, Colorwave, GHC) is
// scored by the exact same referee.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/reader.h"
#include "core/tag.h"
#include "geometry/spatial_grid.h"
#include "obs/metrics.h"

namespace rfid::core {

/// The deployment plus the tag read-state.
///
/// Thread-safety: const member functions are safe to call concurrently
/// *except* weight()/wellCoveredTags(), which use an internal scratch buffer
/// (documented on the members).  Use one System per thread or a
/// WeightEvaluator per thread for parallel sweeps.
class System {
 public:
  /// Builds the system and precomputes coverage both ways (reader → tags in
  /// its interrogation disk, tag → covering readers).  Reader/tag `id`
  /// fields are rewritten to their indices to keep identity unambiguous.
  System(std::vector<Reader> readers, std::vector<Tag> tags);

  int numReaders() const { return static_cast<int>(readers_.size()); }
  int numTags() const { return static_cast<int>(tags_.size()); }
  const Reader& reader(int i) const { return readers_[static_cast<std::size_t>(i)]; }
  const Tag& tag(int i) const { return tags_[static_cast<std::size_t>(i)]; }
  std::span<const Reader> readers() const { return readers_; }
  std::span<const Tag> tags() const { return tags_; }

  /// Tag indices inside reader `v`'s interrogation disk, ascending.
  std::span<const int> coverage(int v) const {
    return coverage_[static_cast<std::size_t>(v)];
  }
  /// Reader indices whose interrogation disk contains tag `t`, ascending.
  std::span<const int> coverers(int t) const {
    return coverers_[static_cast<std::size_t>(t)];
  }

  /// Definition 2 independence: ‖v_i − v_j‖ > max(R_i, R_j).
  bool independent(int i, int j) const {
    return core::independent(reader(i), reader(j));
  }

  /// True iff `X` is a feasible scheduling set (pairwise independent).
  /// O(|X|²); scheduling sets are small (bounded by the packing number).
  bool isFeasible(std::span<const int> X) const;

  // ---- read-state (MCS loop renders served tags passive) ----

  bool isRead(int t) const { return read_[static_cast<std::size_t>(t)] != 0; }
  void markRead(int t) { read_[static_cast<std::size_t>(t)] = 1; }
  void markRead(std::span<const int> tags);
  /// Re-arms a tag.  Two uses: undoing experiment state, and the dynamic
  /// arrival simulation (workload::DynamicSimulation), which pre-places all
  /// future tags as read ("not in the field yet") and un-reads each one at
  /// its arrival slot.
  void markUnread(int t) { read_[static_cast<std::size_t>(t)] = 0; }
  /// Forgets all reads; used between independent experiments on one System.
  void resetReads();
  /// Number of unread tags (coverable or not).
  int unreadCount() const;
  /// Number of unread tags covered by at least one reader — the MCS loop
  /// terminates exactly when this reaches zero.
  int unreadCoverableCount() const;

  // ---- well-covered semantics (Definition 1) ----

  /// Tags well-covered when exactly the readers in `X` are active.  Valid
  /// for *arbitrary* X, feasible or not: a reader lying inside another
  /// active reader's interference disk is an RTc victim and reads nothing,
  /// and a tag covered by more than one active reader is lost to RRc.
  /// Only unread tags are reported.  Uses the internal scratch buffer
  /// (not thread-safe across concurrent calls on one System).
  std::vector<int> wellCoveredTags(std::span<const int> X) const;

  /// Fault-mode referee: tags well-covered by the readers of `X` while the
  /// readers in `jamming` also radiate.  A jamming reader (a loud-failed
  /// crash, fault::FaultPlan) counts for RRc coverage multiplicity and RTc
  /// victimization exactly like an active reader, but reads nothing.  `X`
  /// and `jamming` must be disjoint.  With `jamming` empty this is exactly
  /// wellCoveredTags(X).  Same scratch-buffer caveat.
  std::vector<int> wellCoveredTags(std::span<const int> X,
                                   std::span<const int> jamming) const;

  /// w(X) of Definition 3: |wellCoveredTags(X)| without materializing the
  /// list.  Same scratch-buffer caveat.
  int weight(std::span<const int> X) const;

  /// w({v}): unread tags in v's interrogation disk (activating v alone
  /// well-covers all of them).  Thread-safe.
  int singleWeight(int v) const;

  // ---- observability ----

  /// Attaches a metrics registry (nullptr detaches).  Flushes the
  /// construction-time spatial-grid query count (`core.grid_queries`) once
  /// per attach and from then on counts every referee evaluation:
  /// `core.weight_evals` (weight()) and `core.well_covered_evals`
  /// (wellCoveredTags()).  Counter handles are cached here, so the hot
  /// paths pay one pointer test when detached.
  void attachMetrics(obs::MetricsRegistry* m);
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  template <typename OnTag>
  void forEachWellCovered(std::span<const int> X, std::span<const int> jamming,
                          OnTag&& on_tag) const;

  std::vector<Reader> readers_;
  std::vector<Tag> tags_;
  std::vector<std::vector<int>> coverage_;
  std::vector<std::vector<int>> coverers_;
  std::vector<char> read_;
  // Scratch for weight evaluation: per-tag coverage multiplicity within the
  // currently evaluated X.  Reset to zero after every evaluation.
  mutable std::vector<int> scratch_count_;
  mutable std::vector<char> scratch_victim_;
  // Observability (cached handles; counter bumps through a const System are
  // metric mutations, not model mutations).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* weight_evals_ = nullptr;
  obs::Counter* well_covered_evals_ = nullptr;
  std::int64_t grid_queries_ = 0;  // spatial-grid disk queries at build time
};

}  // namespace rfid::core
