// system.h — the multi-reader RFID system model (paper §II–III).
//
// A System owns the static deployment (readers, tags, precomputed coverage
// lists) plus the one piece of mutable state the MCS loop needs: which tags
// have already been served.  Everything the schedulers consume — coverage,
// independence, weights, well-covered semantics — is defined here so that
// every algorithm (PTAS, growth-bounded, distributed, Colorwave, GHC) is
// scored by the exact same referee.
//
// Coverage is stored CSR-style (offsets + one flat index array) in both
// directions: reader → tags in its interrogation disk, and the inverted
// tag → covering readers index.  The flat layout keeps the weight kernels'
// inner loops on contiguous memory, and the inverted index is what lets the
// lazy-greedy machinery (core/weight.h) dirty-mark exactly the readers whose
// marginal weight a commit or a served tag actually changed
// (docs/performance.md).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/reader.h"
#include "core/tag.h"
#include "geometry/spatial_grid.h"
#include "obs/metrics.h"

namespace rfid::core {

/// Reusable per-thread buffers for weight evaluation.  The scratch-taking
/// System overloads are safe to call concurrently, one scratch per thread
/// (the parallel PTAS shifts do exactly that); the scratch-less overloads
/// fall back to one internal buffer and stay single-threaded.
/// Zero-initialized by System::initScratch and restored to zero after every
/// evaluation, so one scratch serves any number of sequential calls.
struct WeightScratch {
  std::vector<int> count;    // per-tag coverage multiplicity within X
  std::vector<char> victim;  // per-reader RTc victim flag within X
};

/// The deployment plus the tag read-state.
///
/// Thread-safety: const member functions are safe to call concurrently
/// *except* the scratch-less weight()/wellCoveredTags() overloads, which
/// share an internal scratch buffer (documented on the members).  Parallel
/// evaluation passes an explicit WeightScratch per thread instead.
class System {
 public:
  /// Builds the system and precomputes coverage both ways (reader → tags in
  /// its interrogation disk, tag → covering readers).  Reader/tag `id`
  /// fields are rewritten to their indices to keep identity unambiguous.
  System(std::vector<Reader> readers, std::vector<Tag> tags);

  int numReaders() const { return static_cast<int>(readers_.size()); }
  int numTags() const { return static_cast<int>(tags_.size()); }
  const Reader& reader(int i) const { return readers_[static_cast<std::size_t>(i)]; }
  const Tag& tag(int i) const { return tags_[static_cast<std::size_t>(i)]; }
  std::span<const Reader> readers() const { return readers_; }
  std::span<const Tag> tags() const { return tags_; }

  /// Tag indices inside reader `v`'s interrogation disk, ascending.
  std::span<const int> coverage(int v) const {
    const auto lo = static_cast<std::size_t>(cov_off_[static_cast<std::size_t>(v)]);
    const auto hi = static_cast<std::size_t>(cov_off_[static_cast<std::size_t>(v) + 1]);
    return {cov_idx_.data() + lo, hi - lo};
  }
  /// Reader indices whose interrogation disk contains tag `t`, ascending
  /// (the inverted coverage index).
  std::span<const int> coverers(int t) const {
    const auto lo = static_cast<std::size_t>(covr_off_[static_cast<std::size_t>(t)]);
    const auto hi = static_cast<std::size_t>(covr_off_[static_cast<std::size_t>(t) + 1]);
    return {covr_idx_.data() + lo, hi - lo};
  }

  /// A process-unique id minted at construction (copies share it — they are
  /// the same deployment).  Schedulers use it to key caches derived from
  /// the static coverage structure (components, standalone-weight caches)
  /// without risking address-reuse aliasing across Systems.
  std::uint64_t instanceId() const { return instance_id_; }

  /// Definition 2 independence: ‖v_i − v_j‖ > max(R_i, R_j).
  bool independent(int i, int j) const {
    return core::independent(reader(i), reader(j));
  }

  /// True iff `X` is a feasible scheduling set (pairwise independent).
  /// O(|X|²); scheduling sets are small (bounded by the packing number).
  bool isFeasible(std::span<const int> X) const;

  // ---- read-state (MCS loop renders served tags passive) ----

  bool isRead(int t) const { return read_[static_cast<std::size_t>(t)] != 0; }
  void markRead(int t) { read_[static_cast<std::size_t>(t)] = 1; }
  void markRead(std::span<const int> tags);
  /// Re-arms a tag.  Two uses: undoing experiment state, and the dynamic
  /// arrival simulation (workload::DynamicSimulation), which pre-places all
  /// future tags as read ("not in the field yet") and un-reads each one at
  /// its arrival slot.
  void markUnread(int t) { read_[static_cast<std::size_t>(t)] = 0; }
  /// Forgets all reads; used between independent experiments on one System.
  void resetReads();
  /// The raw read bitmap, one byte per tag (nonzero = read).  Checkpoint
  /// snapshots and the check:: oracle copy it wholesale instead of n
  /// isRead() calls.
  std::span<const char> readState() const { return read_; }
  /// Number of unread tags (coverable or not).
  int unreadCount() const;
  /// Number of unread tags covered by at least one reader — the MCS loop
  /// terminates exactly when this reaches zero.
  int unreadCoverableCount() const;

  // ---- well-covered semantics (Definition 1) ----

  /// Tags well-covered when exactly the readers in `X` are active.  Valid
  /// for *arbitrary* X, feasible or not: a reader lying inside another
  /// active reader's interference disk is an RTc victim and reads nothing,
  /// and a tag covered by more than one active reader is lost to RRc.
  /// Only unread tags are reported.  Uses the internal scratch buffer
  /// (not thread-safe across concurrent calls on one System).
  std::vector<int> wellCoveredTags(std::span<const int> X) const;

  /// Fault-mode referee: tags well-covered by the readers of `X` while the
  /// readers in `jamming` also radiate.  A jamming reader (a loud-failed
  /// crash, fault::FaultPlan) counts for RRc coverage multiplicity and RTc
  /// victimization exactly like an active reader, but reads nothing.  `X`
  /// and `jamming` must be disjoint.  With `jamming` empty this is exactly
  /// wellCoveredTags(X).  Same scratch-buffer caveat.
  std::vector<int> wellCoveredTags(std::span<const int> X,
                                   std::span<const int> jamming) const;

  /// wellCoveredTags with caller-owned scratch: thread-safe with one
  /// scratch per thread.  `scratch` must come from initScratch().
  std::vector<int> wellCoveredTags(std::span<const int> X,
                                   std::span<const int> jamming,
                                   WeightScratch& scratch) const;

  /// w(X) of Definition 3: |wellCoveredTags(X)| without materializing the
  /// list.  Same scratch-buffer caveat.
  int weight(std::span<const int> X) const;

  /// weight with caller-owned scratch: thread-safe with one scratch per
  /// thread.  `scratch` must come from initScratch().
  int weight(std::span<const int> X, WeightScratch& scratch) const;

  /// Sizes (and zero-fills) a scratch for use with this System.
  void initScratch(WeightScratch& scratch) const;

  /// w({v}): unread tags in v's interrogation disk (activating v alone
  /// well-covers all of them).  Thread-safe.
  int singleWeight(int v) const;

  // ---- structural churn (streaming mode, docs/streaming.md) ----
  //
  // Tags arrive, move, and depart while readers stay fixed.  Each mutation
  // patches the dual CSR index in place, bumps the structural epoch, and
  // appends the affected reader rows to a bounded dirty-reader log so the
  // scheduler-side caches (core/weight.h) can absorb churn through the same
  // diff mechanism they already use for read-state changes across slots.
  // None of these are thread-safe; call them only between schedule() calls
  // (the streaming driver does exactly that).

  /// Appends a new tag (position + EPC; `id` is rewritten to the new index)
  /// and splices it into both CSR directions.  Returns the tag's index.
  /// Indices of existing tags never change; departed slots are not reused.
  int addTag(Tag t);

  /// Removes tag `t` from the field: its CSR entries are spliced out (its
  /// coverers row becomes empty), it is marked read, and the index becomes
  /// a tombstone (`departed`).  Safe on read tags; must not be repeated.
  void removeTag(int t);

  /// Moves tag `t` to `pos`, rewriting its coverage in both CSR directions.
  /// The read-state is untouched: an unread tag stays unread at the new
  /// position.  Must not be called on a departed tag.
  void moveTag(int t, geom::Vec2 pos);

  /// True once removeTag(t) has run: the index is a tombstone with no
  /// coverage that must never be counted or served again.
  bool departed(int t) const { return departed_[static_cast<std::size_t>(t)] != 0; }

  /// Monotone counter bumped by every structural mutation (add/remove/move).
  /// Cache layers key on (instanceId, structuralEpoch) — instanceId alone
  /// stays constant across in-place mutation.
  std::uint64_t structuralEpoch() const { return structural_epoch_; }

  /// FNV-1a over the four CSR arrays — the incremental-index identity the
  /// check::IncrementalIndexOracle compares against a from-scratch rebuild.
  std::uint64_t indexFingerprint() const;

  /// Shared hash so the oracle can fingerprint its independently rebuilt
  /// arrays with the exact same byte order.
  static std::uint64_t fingerprintArrays(std::span<const int> cov_off,
                                         std::span<const int> cov_idx,
                                         std::span<const int> covr_off,
                                         std::span<const int> covr_idx);

  /// Rebuilds both CSR directions from raw geometry (skipping departed
  /// tags), discarding whatever the incremental path had accumulated — the
  /// self-heal step after the oracle flags a divergence.  Invalidates every
  /// dirty-log cursor, so caches do a full rebuild at their next sync.
  void rebuildIndex();

  // The dirty-reader log: every mutation appends the reader rows it
  // touched.  A cache remembers dirtyLogEnd() at each sync and processes
  // dirtyLogFrom(cursor) next time; a cursor behind dirtyLogBase() means
  // the window was compacted (or the index rebuilt) and the cache must do
  // a full rebuild.  Entries may repeat; consumers de-duplicate.
  std::uint64_t dirtyLogBase() const { return dirty_base_; }
  std::uint64_t dirtyLogEnd() const {
    return dirty_base_ + static_cast<std::uint64_t>(dirty_log_.size());
  }
  /// Valid only for dirtyLogBase() <= cursor <= dirtyLogEnd().
  std::span<const int> dirtyLogFrom(std::uint64_t cursor) const {
    const auto skip = static_cast<std::size_t>(cursor - dirty_base_);
    return {dirty_log_.data() + skip, dirty_log_.size() - skip};
  }

  /// Test hook: silently corrupts one CSR entry (no epoch bump, no dirty
  /// log) to simulate an incremental-update bug for the oracle tests.
  void testOnlyCorruptIndex();

  // ---- observability ----

  /// Attaches a metrics registry (nullptr detaches).  Flushes the
  /// construction-time spatial-grid query count (`core.grid_queries`) once
  /// per attach and from then on counts every referee evaluation:
  /// `core.weight_evals` (weight()) and `core.well_covered_evals`
  /// (wellCoveredTags()).  Counter handles are cached here, so the hot
  /// paths pay one pointer test when detached.  Counters are atomic, so
  /// parallel scratch-taking evaluations bill exact totals.
  void attachMetrics(obs::MetricsRegistry* m);
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  template <typename OnTag>
  void forEachWellCovered(std::span<const int> X, std::span<const int> jamming,
                          std::span<int> count, std::span<char> victim,
                          OnTag&& on_tag) const;

  /// From-scratch CSR construction (constructor and rebuildIndex); skips
  /// departed tags.
  void buildIndex();
  /// Readers covering position `pos`, ascending (lazy reader grid query).
  void coveringReaders(geom::Vec2 pos, std::vector<int>& out);
  /// Splices tag `t` into / out of the cov rows of `readers` (ascending).
  void covInsert(std::span<const int> readers, int t);
  void covErase(std::span<const int> readers, int t);
  /// Replaces covr row `t` with `readers` (ascending).
  void covrReplace(int t, std::span<const int> readers);
  void logDirty(std::span<const int> readers);
  /// Forces every dirty-log cursor behind the window (full cache rebuild).
  void invalidateDirtyLog();

  std::vector<Reader> readers_;
  std::vector<Tag> tags_;
  // CSR coverage, both directions.  Offsets have one trailing entry, so
  // list v is cov_idx_[cov_off_[v] .. cov_off_[v+1]).
  std::vector<int> cov_off_;   // size numReaders()+1
  std::vector<int> cov_idx_;   // reader → tags, ascending per reader
  std::vector<int> covr_off_;  // size numTags()+1
  std::vector<int> covr_idx_;  // tag → readers, ascending per tag
  std::vector<char> read_;
  // Structural-churn state.
  std::vector<char> departed_;       // tombstones (removeTag)
  std::uint64_t structural_epoch_ = 0;
  std::vector<int> dirty_log_;       // reader rows touched by mutations
  std::uint64_t dirty_base_ = 0;     // log-sequence number of dirty_log_[0]
  double max_gamma_ = 1.0;           // cell size for the reader grid
  // Lazy grid over reader positions (readers are static): built on the
  // first addTag/moveTag, reused for every later coverer query.  Immutable
  // and self-contained once built, so copies of the System share it.
  std::shared_ptr<const geom::SpatialGrid> reader_index_;
  // Internal scratch backing the scratch-less evaluation overloads.
  mutable WeightScratch scratch_;
  std::uint64_t instance_id_ = 0;
  // Observability (cached handles; counter bumps through a const System are
  // metric mutations, not model mutations).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* weight_evals_ = nullptr;
  obs::Counter* well_covered_evals_ = nullptr;
  std::int64_t grid_queries_ = 0;  // spatial-grid disk queries at build time
};

}  // namespace rfid::core
