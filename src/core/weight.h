// weight.h — incremental weight evaluation for search algorithms.
//
// The exact solver, the PTAS enumeration, and GHC all explore feasible sets
// by adding/removing one reader at a time.  Recomputing w(X) from scratch at
// every node is O(Σ coverage); the incremental evaluator keeps the per-tag
// coverage multiplicities live so each push/pop costs only the coverage of
// the moved reader, and the weight is available in O(1).
//
// The evaluator assumes the maintained set stays *feasible* (pairwise
// independent) — under feasibility there are no RTc victims, so
//   w(X) = #{ unread tags covered by exactly one reader of X }.
// Callers (B&B, PTAS, GHC) only ever extend by independent readers, so this
// holds by construction.  For arbitrary sets use System::weight.
#pragma once

#include <span>
#include <vector>

#include "core/system.h"

namespace rfid::core {

/// Maintains w(X) under push/pop of readers for a feasible X.
///
/// The evaluator reads the System's live tag read-state: weights always
/// refer to *currently unread* tags, which is exactly the per-slot semantics
/// of Definition 3 inside the MCS loop.
class WeightEvaluator {
 public:
  explicit WeightEvaluator(const System& sys);

  /// Adds reader v to the maintained set.  Returns the weight delta, which
  /// may be negative: v's exclusive unread tags enter, while tags that were
  /// exclusively covered by an existing member and are also covered by v
  /// leave (RRc, Figure 2's phenomenon).
  int push(int v);

  /// Removes the most recently pushed reader (LIFO, matching search
  /// backtracking).  Returns the weight delta (negation of the push delta
  /// when the read-state has not changed in between).
  int pop();

  /// Current w(X).
  int weight() const { return weight_; }

  /// Members in push order.
  std::span<const int> members() const { return stack_; }

  int size() const { return static_cast<int>(stack_.size()); }

  /// Weight delta that push(v) *would* return, without mutating state.
  int peekDelta(int v) const;

  /// Drops all members.
  void clear();

 private:
  const System* sys_;
  std::vector<int> count_;  // per-tag coverage multiplicity within X
  std::vector<int> stack_;
  int weight_ = 0;
};

}  // namespace rfid::core
