// weight.h — incremental weight evaluation and lazy-greedy selection.
//
// The exact solver, the PTAS enumeration, and GHC all explore feasible sets
// by adding/removing one reader at a time.  Recomputing w(X) from scratch at
// every node is O(Σ coverage); the incremental evaluator keeps the per-tag
// coverage multiplicities live so each push/pop costs only the coverage of
// the moved reader, and the weight is available in O(1).
//
// On top of the evaluator sits the lazy-greedy selection machinery the
// coordinator pick loops (Alg2, GHC) use instead of rescanning all n
// readers' marginal deltas every iteration:
//
//   * StandaloneWeightCache keeps w({v}) for every reader across MCS slots,
//     refreshed incrementally from the read-state diff — only readers
//     covering a tag served in the previous slot are touched.
//   * LazyGreedyQueue answers argmax_v peekDelta(v) with a max-heap whose
//     keys are kept *exact* through the inverted tag→readers index: when a
//     reader is committed, exactly the readers sharing one of its unread
//     tags receive the per-tag delta adjustment.  (The textbook Minoux
//     stale-upper-bound variant is inadmissible here: RRc makes marginal
//     deltas non-monotone — a shared singly-covered tag that gains a second
//     coverer *raises* every other coverer's delta by 1 — so stale keys can
//     under-estimate and a lazy pop could return the wrong argmax.  Exact
//     incremental keys cost the same inverted-index walk and keep the
//     selection bit-identical to the reference scan; docs/performance.md.)
//
// The evaluator assumes the maintained set stays *feasible* (pairwise
// independent) — under feasibility there are no RTc victims, so
//   w(X) = #{ unread tags covered by exactly one reader of X }.
// Callers (B&B, PTAS, GHC) only ever extend by independent readers, so this
// holds by construction.  For arbitrary sets use System::weight.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/system.h"

namespace rfid::core {

/// Maintains w(X) under push/pop of readers for a feasible X.
///
/// The evaluator reads the System's live tag read-state: weights always
/// refer to *currently unread* tags, which is exactly the per-slot semantics
/// of Definition 3 inside the MCS loop.
class WeightEvaluator {
 public:
  explicit WeightEvaluator(const System& sys);

  /// Adds reader v to the maintained set.  Returns the weight delta, which
  /// may be negative: v's exclusive unread tags enter, while tags that were
  /// exclusively covered by an existing member and are also covered by v
  /// leave (RRc, Figure 2's phenomenon).
  int push(int v);

  /// Removes the most recently pushed reader (LIFO, matching search
  /// backtracking).  Returns the weight delta (negation of the push delta
  /// when the read-state has not changed in between).
  int pop();

  /// Current w(X).
  int weight() const { return weight_; }

  /// Members in push order.
  std::span<const int> members() const { return stack_; }

  int size() const { return static_cast<int>(stack_.size()); }

  /// Weight delta that push(v) *would* return, without mutating state.
  int peekDelta(int v) const;

  /// Coverage multiplicity of tag `t` within the maintained set (read tags
  /// included — the lazy-greedy invalidation walk classifies transitions by
  /// this value right after a push).
  int multiplicity(int t) const { return count_[static_cast<std::size_t>(t)]; }

  const System& system() const { return *sys_; }

  /// Self-audit for the check:: oracle and the property tests: recomputes
  /// every per-tag multiplicity and the weight from scratch against the
  /// System's current read-state and compares them to the incrementally
  /// maintained values.  O(Σ coverage of members).  On mismatch returns
  /// false and, when `why` is non-null, describes the first divergence.
  bool checkInvariants(std::string* why = nullptr) const;

  /// push/pop operations since construction — each walks exactly one CSR
  /// coverage row, so this doubles as the evaluator's weight_evals and
  /// csr_rows contribution to a CostBill.  peekDelta is deliberately NOT
  /// counted here: it is called from debug asserts (LazyGreedyQueue) and
  /// from reference scans that gate their own counting, and a counter bump
  /// inside it would make the tally differ between build types.
  std::int64_t ops() const { return ops_; }

  /// Drops all members.
  void clear();

 private:
  const System* sys_;
  std::vector<int> count_;  // per-tag coverage multiplicity within X
  std::vector<int> stack_;
  int weight_ = 0;
  std::int64_t ops_ = 0;
};

/// Cross-slot cache of standalone weights w({v}) = |unread ∩ coverage(v)|.
///
/// sync() must be called with the current System before each selection
/// round.  The first call (or a deployment change, detected via
/// System::instanceId) builds the cache in one full pass; later calls walk
/// the read-state diff against an internal shadow bitmap and adjust only
/// the coverers of flipped tags — the MCS meta-loop's cross-slot refresh
/// touches exactly the readers covering a tag served in the previous slot.
///
/// Structural churn (System::addTag/removeTag/moveTag) rides the same diff
/// mechanism: the cache keeps a cursor into the System's dirty-reader log
/// and recomputes exactly the rows mutations touched since the last sync,
/// then runs the ordinary read-diff walk skipping those rows (they are
/// already exact).  A cursor behind the log window (compaction, or a
/// rebuildIndex self-heal) falls back to one full build.
class StandaloneWeightCache {
 public:
  /// Deterministic work accounting across sync() calls: a full build is a
  /// cache miss (n reader rows recomputed), a diff sync is a hit
  /// (one coverers row refreshed per flipped tag, plus one row per unique
  /// dirty-log reader).
  struct Stats {
    std::int64_t full_builds = 0;
    std::int64_t diff_syncs = 0;
    std::int64_t rows_refreshed = 0;
  };

  void sync(const System& sys);

  /// weights()[v] == sys.singleWeight(v) as of the last sync().
  std::span<const int> weights() const { return standalone_; }

  const Stats& stats() const { return stats_; }

 private:
  std::uint64_t sys_id_ = 0;
  std::uint64_t dirty_cursor_ = 0;  // System dirty-log position consumed
  std::vector<int> standalone_;
  // Shadow of System::readBits() as of the last sync, indexed by tag bit
  // position (stable for a tag's lifetime).  The diff walk XORs whole
  // 64-tag blocks, so an unchanged block costs one compare, not 64 polls.
  std::vector<std::uint64_t> shadow_bits_;
  std::uint32_t shadow_nbits_ = 0;  // tag bits tracked at last sync
  std::vector<char> dirty_mask_;    // per-sync scratch over readers
  Stats stats_;
};

/// Exact lazy-greedy argmax over marginal deltas of a WeightEvaluator.
///
/// Contract (per selection round):
///   1. beginRound(eval, candidates, seeds) with an *empty* evaluator;
///      seeds[v] must equal peekDelta(v) under the empty set, i.e. the
///      standalone weight (StandaloneWeightCache::weights()).
///   2. pickBest(eligible) returns the eligible candidate with the maximum
///      strictly-positive delta (ties → lowest index), exactly matching the
///      reference O(n·coverage) scan.  A popped ineligible candidate is
///      dropped for the rest of the round, so eligibility must only shrink
///      (both greedy loops only ever kill / block readers).  After -1 is
///      returned the round is exhausted.
///   3. After every eval.push(v) of the round, call invalidate(v) so the
///      keys of readers sharing an unread tag with v are adjusted.
///
/// The heap holds (key, reader) entries under lazy deletion: every key
/// adjustment pushes a fresh entry, and pops discard entries whose key no
/// longer matches the reader's current exact delta.  Total work per commit
/// is one inverted-index walk of the committed reader's unread coverage.
class LazyGreedyQueue {
 public:
  void beginRound(const WeightEvaluator& eval, std::span<const int> candidates,
                  std::span<const int> seeds);

  int pickBest(std::span<const char> eligible, int* delta_out = nullptr);

  void invalidate(int v);

  /// O(1) key adjustments + heap operations performed since construction —
  /// the work measure reported to sched.* counters (each unit is far
  /// cheaper than one reference peekDelta scan; docs/performance.md).
  std::int64_t workUnits() const { return work_units_; }

  /// Heap entries popped since construction, and the subset discarded as
  /// lazily-deleted (key superseded by a later adjustment).  Their ratio is
  /// the queue's churn — the report tool surfaces it next to the cache hit
  /// rate.
  std::int64_t pops() const { return pops_; }
  std::int64_t stalePops() const { return stale_pops_; }

 private:
  void adjust(int v, int by);

  const WeightEvaluator* eval_ = nullptr;
  const System* sys_ = nullptr;
  std::vector<int> value_;                 // exact peekDelta per candidate
  std::vector<std::pair<int, int>> heap_;  // (key, reader), lazy deletion
  std::int64_t work_units_ = 0;
  std::int64_t pops_ = 0;
  std::int64_t stale_pops_ = 0;
};

}  // namespace rfid::core
