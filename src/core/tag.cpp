#include "core/tag.h"

// Tag is a plain value type; see reader.cpp for why this TU exists.
