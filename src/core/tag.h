// tag.h — the passive RFID tag model (paper §II).
//
// Tags are passive: they have no battery and no protocol state of their own
// beyond a (unique) identifier used by the link-layer protocols in
// src/protocol.  Whether a tag has already been served is *system* state
// (the MCS loop renders served tags passive), so the read flag lives in
// core::System, not here.
#pragma once

#include <cstdint>

#include "geometry/vec2.h"

namespace rfid::core {

/// One passive tag.
struct Tag {
  int id = 0;
  geom::Vec2 pos;
  /// EPC-style identifier used by tree-walking arbitration; defaults to the
  /// index but scenarios may assign structured IDs.
  std::uint64_t epc = 0;
};

}  // namespace rfid::core
