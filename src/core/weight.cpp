#include "core/weight.h"

#include <algorithm>
#include <cassert>

namespace rfid::core {

WeightEvaluator::WeightEvaluator(const System& sys) : sys_(&sys) {
  count_.assign(static_cast<std::size_t>(sys.numTags()), 0);
}

int WeightEvaluator::push(int v) {
  int delta = 0;
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) {
      // Served tags never count, but multiplicities must still be tracked
      // so pop() restores state exactly.
      ++count_[static_cast<std::size_t>(t)];
      continue;
    }
    const int c = count_[static_cast<std::size_t>(t)]++;
    if (c == 0) {
      ++delta;  // newly exclusively covered
    } else if (c == 1) {
      --delta;  // previously exclusive tag now lost to RRc
    }
  }
  stack_.push_back(v);
  weight_ += delta;
  return delta;
}

int WeightEvaluator::pop() {
  assert(!stack_.empty());
  const int v = stack_.back();
  stack_.pop_back();
  int delta = 0;
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) {
      --count_[static_cast<std::size_t>(t)];
      continue;
    }
    const int c = --count_[static_cast<std::size_t>(t)];
    if (c == 0) {
      --delta;  // tag was exclusive to v, leaves the well-covered set
    } else if (c == 1) {
      ++delta;  // tag regains exclusivity for its remaining coverer
    }
  }
  weight_ += delta;
  return delta;
}

int WeightEvaluator::peekDelta(int v) const {
  int delta = 0;
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) continue;
    const int c = count_[static_cast<std::size_t>(t)];
    if (c == 0) ++delta;
    else if (c == 1) --delta;
  }
  return delta;
}

void WeightEvaluator::clear() {
  while (!stack_.empty()) pop();
  assert(weight_ == 0);
}

}  // namespace rfid::core
