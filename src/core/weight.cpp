#include "core/weight.h"

#include <algorithm>
#include <cassert>

namespace rfid::core {

WeightEvaluator::WeightEvaluator(const System& sys) : sys_(&sys) {
  count_.assign(static_cast<std::size_t>(sys.numTags()), 0);
}

int WeightEvaluator::push(int v) {
  ++ops_;
  int delta = 0;
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) {
      // Served tags never count, but multiplicities must still be tracked
      // so pop() restores state exactly.
      ++count_[static_cast<std::size_t>(t)];
      continue;
    }
    const int c = count_[static_cast<std::size_t>(t)]++;
    if (c == 0) {
      ++delta;  // newly exclusively covered
    } else if (c == 1) {
      --delta;  // previously exclusive tag now lost to RRc
    }
  }
  stack_.push_back(v);
  weight_ += delta;
  return delta;
}

int WeightEvaluator::pop() {
  assert(!stack_.empty());
  ++ops_;
  const int v = stack_.back();
  stack_.pop_back();
  int delta = 0;
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) {
      --count_[static_cast<std::size_t>(t)];
      continue;
    }
    const int c = --count_[static_cast<std::size_t>(t)];
    if (c == 0) {
      --delta;  // tag was exclusive to v, leaves the well-covered set
    } else if (c == 1) {
      ++delta;  // tag regains exclusivity for its remaining coverer
    }
  }
  weight_ += delta;
  return delta;
}

int WeightEvaluator::peekDelta(int v) const {
  int delta = 0;
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) continue;
    const int c = count_[static_cast<std::size_t>(t)];
    if (c == 0) ++delta;
    else if (c == 1) --delta;
  }
  return delta;
}

bool WeightEvaluator::checkInvariants(std::string* why) const {
  std::vector<int> expect(count_.size(), 0);
  for (const int v : stack_) {
    for (const int t : sys_->coverage(v)) ++expect[static_cast<std::size_t>(t)];
  }
  int w = 0;
  for (std::size_t t = 0; t < expect.size(); ++t) {
    if (expect[t] != count_[t]) {
      if (why != nullptr) {
        *why = "tag " + std::to_string(t) + " multiplicity " +
               std::to_string(count_[t]) + ", recount " +
               std::to_string(expect[t]);
      }
      return false;
    }
    if (expect[t] == 1 && !sys_->isRead(static_cast<int>(t))) ++w;
  }
  if (w != weight_) {
    if (why != nullptr) {
      *why = "weight " + std::to_string(weight_) + ", recount " +
             std::to_string(w);
    }
    return false;
  }
  return true;
}

void WeightEvaluator::clear() {
  while (!stack_.empty()) pop();
  assert(weight_ == 0);
}

void StandaloneWeightCache::sync(const System& sys) {
  const auto n = static_cast<std::size_t>(sys.numReaders());
  const auto m = static_cast<std::size_t>(sys.numTags());
  if (sys.instanceId() != sys_id_ || dirty_cursor_ < sys.dirtyLogBase()) {
    // New deployment, or the dirty-log window moved past our cursor
    // (compaction / rebuildIndex): rebuild from scratch.
    sys_id_ = sys.instanceId();
    standalone_.assign(n, 0);
    shadow_read_.assign(m, 0);
    for (std::size_t v = 0; v < n; ++v) {
      standalone_[v] = sys.singleWeight(static_cast<int>(v));
    }
    for (std::size_t t = 0; t < m; ++t) {
      shadow_read_[t] = sys.isRead(static_cast<int>(t)) ? 1 : 0;
    }
    dirty_cursor_ = sys.dirtyLogEnd();
    ++stats_.full_builds;
    stats_.rows_refreshed += static_cast<std::int64_t>(n);
    return;
  }
  ++stats_.diff_syncs;
  // Structural churn first: recompute exactly the rows mutations touched
  // since the last sync.  Tags appended since then enter the shadow at
  // their current bit — their coverers are all in the dirty log, so the
  // rows below absorb them exactly and the shadow must not flag a diff.
  const std::span<const int> dirty = sys.dirtyLogFrom(dirty_cursor_);
  dirty_cursor_ = sys.dirtyLogEnd();
  const std::size_t old_m = shadow_read_.size();
  for (std::size_t t = old_m; t < m; ++t) {
    shadow_read_.push_back(sys.isRead(static_cast<int>(t)) ? 1 : 0);
  }
  const bool churned = !dirty.empty();
  if (churned) {
    dirty_mask_.assign(n, 0);
    for (const int v : dirty) {
      if (dirty_mask_[static_cast<std::size_t>(v)] != 0) continue;
      dirty_mask_[static_cast<std::size_t>(v)] = 1;
      standalone_[static_cast<std::size_t>(v)] = sys.singleWeight(v);
      ++stats_.rows_refreshed;
    }
  }
  // Read-state diff: adjust only the coverers of tags whose read-state
  // flipped since the last sync (within the MCS loop, exactly the tags the
  // previous slot served) — skipping dirty rows, which are already exact.
  for (std::size_t t = 0; t < old_m; ++t) {
    const char cur = sys.isRead(static_cast<int>(t)) ? 1 : 0;
    if (cur == shadow_read_[t]) continue;
    shadow_read_[t] = cur;
    ++stats_.rows_refreshed;
    const int by = (cur != 0) ? -1 : 1;
    for (const int u : sys.coverers(static_cast<int>(t))) {
      if (churned && dirty_mask_[static_cast<std::size_t>(u)] != 0) continue;
      standalone_[static_cast<std::size_t>(u)] += by;
    }
  }
}

void LazyGreedyQueue::beginRound(const WeightEvaluator& eval,
                                 std::span<const int> candidates,
                                 std::span<const int> seeds) {
  assert(eval.size() == 0 && "round must start from an empty evaluator");
  eval_ = &eval;
  sys_ = &eval.system();
  value_.resize(static_cast<std::size_t>(sys_->numReaders()));
  heap_.clear();
  heap_.reserve(candidates.size());
  for (const int v : candidates) {
    value_[static_cast<std::size_t>(v)] = seeds[static_cast<std::size_t>(v)];
    heap_.emplace_back(seeds[static_cast<std::size_t>(v)], v);
  }
  // Max-heap on (key desc, index asc): the comparator says "worse than",
  // so an equal-key entry with the *higher* index sinks.
  std::make_heap(heap_.begin(), heap_.end(), [](const auto& a, const auto& b) {
    return a.first < b.first || (a.first == b.first && a.second > b.second);
  });
  work_units_ += static_cast<std::int64_t>(candidates.size());
}

int LazyGreedyQueue::pickBest(std::span<const char> eligible, int* delta_out) {
  const auto worse = [](const std::pair<int, int>& a,
                        const std::pair<int, int>& b) {
    return a.first < b.first || (a.first == b.first && a.second > b.second);
  };
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), worse);
    const auto [key, v] = heap_.back();
    heap_.pop_back();
    ++work_units_;
    ++pops_;
    // Lazy deletion: a key adjustment pushed a fresh entry, so an entry
    // whose key disagrees with the current exact delta is superseded.
    if (key != value_[static_cast<std::size_t>(v)]) {
      ++stale_pops_;
      continue;
    }
    if (eligible[static_cast<std::size_t>(v)] == 0) continue;
    // Keys are exact, so the surviving top is the true argmax; the greedy
    // rule only ever commits strictly positive deltas.
    if (key <= 0) return -1;
    assert(key == eval_->peekDelta(v));
    if (delta_out != nullptr) *delta_out = key;
    return v;
  }
  return -1;
}

void LazyGreedyQueue::adjust(int v, int by) {
  const int nv = (value_[static_cast<std::size_t>(v)] += by);
  heap_.emplace_back(nv, v);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const auto& a, const auto& b) {
                   return a.first < b.first ||
                          (a.first == b.first && a.second > b.second);
                 });
  ++work_units_;
}

void LazyGreedyQueue::invalidate(int v) {
  // Walk v's unread coverage through the inverted index and apply the exact
  // per-tag delta change implied by the multiplicity transition push(v)
  // caused: 0→1 turns the tag's +1 (exclusive gain) into −1 (RRc loss) for
  // every other coverer; 1→2 turns −1 into 0 — the transition where deltas
  // *grow*, which is why stale-upper-bound laziness is inadmissible here.
  // Entries for v itself (or dead readers) may be pushed; pickBest drops
  // them via the eligibility mask.
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) continue;
    const int c = eval_->multiplicity(t);
    if (c == 1) {
      for (const int u : sys_->coverers(t)) {
        if (u != v) adjust(u, -2);
      }
    } else if (c == 2) {
      for (const int u : sys_->coverers(t)) {
        if (u != v) adjust(u, 1);
      }
    }
  }
}

}  // namespace rfid::core
