#include "core/weight.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace rfid::core {

WeightEvaluator::WeightEvaluator(const System& sys) : sys_(&sys) {
  count_.assign(static_cast<std::size_t>(sys.numTags()), 0);
}

int WeightEvaluator::push(int v) {
  ++ops_;
  int delta = 0;
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) {
      // Served tags never count, but multiplicities must still be tracked
      // so pop() restores state exactly.
      ++count_[static_cast<std::size_t>(t)];
      continue;
    }
    const int c = count_[static_cast<std::size_t>(t)]++;
    if (c == 0) {
      ++delta;  // newly exclusively covered
    } else if (c == 1) {
      --delta;  // previously exclusive tag now lost to RRc
    }
  }
  stack_.push_back(v);
  weight_ += delta;
  return delta;
}

int WeightEvaluator::pop() {
  assert(!stack_.empty());
  ++ops_;
  const int v = stack_.back();
  stack_.pop_back();
  int delta = 0;
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) {
      --count_[static_cast<std::size_t>(t)];
      continue;
    }
    const int c = --count_[static_cast<std::size_t>(t)];
    if (c == 0) {
      --delta;  // tag was exclusive to v, leaves the well-covered set
    } else if (c == 1) {
      ++delta;  // tag regains exclusivity for its remaining coverer
    }
  }
  weight_ += delta;
  return delta;
}

int WeightEvaluator::peekDelta(int v) const {
  int delta = 0;
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) continue;
    const int c = count_[static_cast<std::size_t>(t)];
    if (c == 0) ++delta;
    else if (c == 1) --delta;
  }
  return delta;
}

bool WeightEvaluator::checkInvariants(std::string* why) const {
  std::vector<int> expect(count_.size(), 0);
  for (const int v : stack_) {
    for (const int t : sys_->coverage(v)) ++expect[static_cast<std::size_t>(t)];
  }
  int w = 0;
  for (std::size_t t = 0; t < expect.size(); ++t) {
    if (expect[t] != count_[t]) {
      if (why != nullptr) {
        *why = "tag " + std::to_string(t) + " multiplicity " +
               std::to_string(count_[t]) + ", recount " +
               std::to_string(expect[t]);
      }
      return false;
    }
    if (expect[t] == 1 && !sys_->isRead(static_cast<int>(t))) ++w;
  }
  if (w != weight_) {
    if (why != nullptr) {
      *why = "weight " + std::to_string(weight_) + ", recount " +
             std::to_string(w);
    }
    return false;
  }
  return true;
}

void WeightEvaluator::clear() {
  while (!stack_.empty()) pop();
  assert(weight_ == 0);
}

void StandaloneWeightCache::sync(const System& sys) {
  const auto n = static_cast<std::size_t>(sys.numReaders());
  const std::span<const std::uint64_t> live = sys.readBits();
  if (sys.instanceId() != sys_id_ || dirty_cursor_ < sys.dirtyLogBase()) {
    // New deployment, or the dirty-log window moved past our cursor
    // (compaction / rebuildIndex): rebuild from scratch.
    sys_id_ = sys.instanceId();
    standalone_.assign(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      standalone_[v] = sys.singleWeight(static_cast<int>(v));
    }
    shadow_bits_.assign(live.begin(), live.end());
    shadow_nbits_ = sys.numTagBits();
    dirty_cursor_ = sys.dirtyLogEnd();
    ++stats_.full_builds;
    stats_.rows_refreshed += static_cast<std::int64_t>(n);
    return;
  }
  ++stats_.diff_syncs;
  // Structural churn first: recompute exactly the rows mutations touched
  // since the last sync.  Tags appended since then enter the shadow at
  // their current bit — their coverers are all in the dirty log, so the
  // rows below absorb them exactly and the shadow must not flag a diff.
  const std::span<const int> dirty = sys.dirtyLogFrom(dirty_cursor_);
  dirty_cursor_ = sys.dirtyLogEnd();
  const std::uint32_t old_bits = shadow_nbits_;
  const std::uint32_t new_bits = sys.numTagBits();
  if (new_bits > old_bits) {
    shadow_bits_.resize(live.size(), 0);
    // Seed appended bit positions at their current read value so the diff
    // walk below sees no flip for them; the boundary word keeps its old
    // low bits (still subject to the diff) and absorbs the new high bits.
    for (std::uint32_t p = old_bits; p < new_bits; ++p) {
      const std::uint64_t bit = std::uint64_t{1} << (p & 63);
      shadow_bits_[p >> 6] =
          (shadow_bits_[p >> 6] & ~bit) | (live[p >> 6] & bit);
    }
    shadow_nbits_ = new_bits;
  }
  const bool churned = !dirty.empty();
  if (churned) {
    dirty_mask_.assign(n, 0);
    for (const int v : dirty) {
      if (dirty_mask_[static_cast<std::size_t>(v)] != 0) continue;
      dirty_mask_[static_cast<std::size_t>(v)] = 1;
      standalone_[static_cast<std::size_t>(v)] = sys.singleWeight(v);
      ++stats_.rows_refreshed;
    }
  }
  // Read-state diff: adjust only the coverers of tags whose read-state
  // flipped since the last sync (within the MCS loop, exactly the tags the
  // previous slot served) — skipping dirty rows, which are already exact.
  // XOR whole 64-tag blocks: unchanged blocks (the vast majority late in a
  // covering schedule) cost one compare each.
  for (std::size_t w = 0; w < shadow_bits_.size(); ++w) {
    std::uint64_t flips = live[w] ^ shadow_bits_[w];
    if (flips == 0) continue;
    shadow_bits_[w] = live[w];
    for (; flips != 0; flips &= flips - 1) {
      const auto p = static_cast<std::uint32_t>(
          (w << 6) + static_cast<std::size_t>(std::countr_zero(flips)));
      const int t = sys.bitTag(p);
      ++stats_.rows_refreshed;
      const int by = ((live[w] >> (p & 63)) & 1) != 0 ? -1 : 1;
      for (const int u : sys.coverers(t)) {
        if (churned && dirty_mask_[static_cast<std::size_t>(u)] != 0) continue;
        standalone_[static_cast<std::size_t>(u)] += by;
      }
    }
  }
}

void LazyGreedyQueue::beginRound(const WeightEvaluator& eval,
                                 std::span<const int> candidates,
                                 std::span<const int> seeds) {
  assert(eval.size() == 0 && "round must start from an empty evaluator");
  eval_ = &eval;
  sys_ = &eval.system();
  value_.resize(static_cast<std::size_t>(sys_->numReaders()));
  heap_.clear();
  heap_.reserve(candidates.size());
  for (const int v : candidates) {
    value_[static_cast<std::size_t>(v)] = seeds[static_cast<std::size_t>(v)];
    heap_.emplace_back(seeds[static_cast<std::size_t>(v)], v);
  }
  // Max-heap on (key desc, index asc): the comparator says "worse than",
  // so an equal-key entry with the *higher* index sinks.
  std::make_heap(heap_.begin(), heap_.end(), [](const auto& a, const auto& b) {
    return a.first < b.first || (a.first == b.first && a.second > b.second);
  });
  work_units_ += static_cast<std::int64_t>(candidates.size());
}

int LazyGreedyQueue::pickBest(std::span<const char> eligible, int* delta_out) {
  const auto worse = [](const std::pair<int, int>& a,
                        const std::pair<int, int>& b) {
    return a.first < b.first || (a.first == b.first && a.second > b.second);
  };
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), worse);
    const auto [key, v] = heap_.back();
    heap_.pop_back();
    ++work_units_;
    ++pops_;
    // Lazy deletion: a key adjustment pushed a fresh entry, so an entry
    // whose key disagrees with the current exact delta is superseded.
    if (key != value_[static_cast<std::size_t>(v)]) {
      ++stale_pops_;
      continue;
    }
    if (eligible[static_cast<std::size_t>(v)] == 0) continue;
    // Keys are exact, so the surviving top is the true argmax; the greedy
    // rule only ever commits strictly positive deltas.
    if (key <= 0) return -1;
    assert(key == eval_->peekDelta(v));
    if (delta_out != nullptr) *delta_out = key;
    return v;
  }
  return -1;
}

void LazyGreedyQueue::adjust(int v, int by) {
  const int nv = (value_[static_cast<std::size_t>(v)] += by);
  heap_.emplace_back(nv, v);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const auto& a, const auto& b) {
                   return a.first < b.first ||
                          (a.first == b.first && a.second > b.second);
                 });
  ++work_units_;
}

void LazyGreedyQueue::invalidate(int v) {
  // Walk v's unread coverage through the inverted index and apply the exact
  // per-tag delta change implied by the multiplicity transition push(v)
  // caused: 0→1 turns the tag's +1 (exclusive gain) into −1 (RRc loss) for
  // every other coverer; 1→2 turns −1 into 0 — the transition where deltas
  // *grow*, which is why stale-upper-bound laziness is inadmissible here.
  // Entries for v itself (or dead readers) may be pushed; pickBest drops
  // them via the eligibility mask.
  for (const int t : sys_->coverage(v)) {
    if (sys_->isRead(t)) continue;
    const int c = eval_->multiplicity(t);
    if (c == 1) {
      for (const int u : sys_->coverers(t)) {
        if (u != v) adjust(u, -2);
      }
    } else if (c == 2) {
      for (const int u : sys_->coverers(t)) {
        if (u != v) adjust(u, 1);
      }
    }
  }
}

}  // namespace rfid::core
