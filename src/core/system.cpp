#include "core/system.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "geometry/morton.h"

namespace rfid::core {

namespace {

std::uint64_t nextInstanceId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Below this many radiating readers the O(k²) victim scan beats the grid
/// queries (it touches no cells and no qbuf); both produce the exact same
/// flags, so the threshold is pure tuning.
constexpr std::size_t kVictimGridThreshold = 12;

}  // namespace

System::System(std::vector<Reader> readers, std::vector<Tag> tags)
    : readers_(std::move(readers)), tags_(std::move(tags)),
      instance_id_(nextInstanceId()) {
  for (std::size_t i = 0; i < readers_.size(); ++i) {
    readers_[i].id = static_cast<int>(i);
    assert(readers_[i].valid() && "reader must satisfy 0 < gamma <= R");
  }
  for (std::size_t i = 0; i < tags_.size(); ++i) tags_[i].id = static_cast<int>(i);

  departed_.assign(tags_.size(), 0);
  read_.assign(tags_.size(), 0);
  buildIndex();
  assignSfcOrder();
  buildBitmap();

  // The reader grid is built eagerly: the bitmap referee's victim pass
  // queries it from const (and concurrent) weight evaluations, which must
  // not race a lazy build.  Readers never move, so this is once per System.
  {
    std::vector<geom::Vec2> reader_pos;
    reader_pos.reserve(readers_.size());
    for (const Reader& r : readers_) reader_pos.push_back(r.pos);
    reader_index_ = std::make_shared<geom::SpatialGrid>(reader_pos, max_gamma_);
  }
  buildInterferenceRows();

  initScratch(scratch_);
}

void System::buildIndex() {
  // Index tags once; coverage queries are disk queries around readers.
  double max_gamma = 1.0;
  for (const Reader& r : readers_) max_gamma = std::max(max_gamma, r.interrogation_radius);
  max_gamma_ = max_gamma;
  std::vector<geom::Vec2> tag_pos;
  tag_pos.reserve(tags_.size());
  for (const Tag& t : tags_) tag_pos.push_back(t.pos);
  const geom::SpatialGrid tag_index(tag_pos, max_gamma);

  // Build reader → tag coverage directly into the CSR arrays, then invert
  // by counting sort: iterating v ascending appends each tag's coverers in
  // ascending reader order, matching the per-list sort queryDisk provides
  // for tags.
  cov_off_.assign(readers_.size() + 1, 0);
  cov_idx_.clear();
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    // queryDisk appends (and sorts the appended tail), so the flat index
    // array is produced directly, one reader after another.  Departed tags
    // still sit in the grid at their last position; drop them from the
    // appended tail (stable, preserving ascending order).
    const std::size_t before = cov_idx_.size();
    tag_index.queryDisk(readers_[v].pos, readers_[v].interrogation_radius,
                        cov_idx_);
    ++grid_queries_;
    std::size_t w = before;
    for (std::size_t r = before; r < cov_idx_.size(); ++r) {
      if (departed_[static_cast<std::size_t>(cov_idx_[r])] == 0) {
        cov_idx_[w++] = cov_idx_[r];
      }
    }
    cov_idx_.resize(w);
    cov_off_[v + 1] = static_cast<int>(cov_idx_.size());
  }

  covr_off_.assign(tags_.size() + 1, 0);
  for (const int t : cov_idx_) ++covr_off_[static_cast<std::size_t>(t) + 1];
  for (std::size_t t = 0; t < tags_.size(); ++t) covr_off_[t + 1] += covr_off_[t];
  covr_idx_.resize(cov_idx_.size());
  std::vector<int> cursor(covr_off_.begin(), covr_off_.end() - 1);
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    for (const int t : coverage(static_cast<int>(v))) {
      covr_idx_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(t)]++)] =
          static_cast<int>(v);
    }
  }
  checkIndexCapacity();
}

void System::checkIndexCapacity() const {
  // The CSR offsets are int and the bitmap arena offsets are uint32: a
  // coverage index past 2^31 − 1 entries would wrap both.  Fail closed with
  // the sizing math rather than corrupt silently — the bench generators and
  // the CLI surface this message verbatim.
  constexpr std::size_t kMaxEntries = 0x7fffffff;
  if (cov_idx_.size() > kMaxEntries) {
    throw std::length_error(
        "coverage index overflow: n=" + std::to_string(readers_.size()) +
        " readers x m=" + std::to_string(tags_.size()) + " tags produce " +
        std::to_string(cov_idx_.size()) +
        " coverage entries, past the 2^31-1 a 32-bit arena offset can "
        "address; reduce density or split the deployment");
  }
}

void System::assignSfcOrder() {
  // Morton rank of the positions: tag t's coverage bit is bit_of_[t], and
  // reader v's bitmap row sits at arena slot row_of_[v].  The permutations
  // are fixed here once — mutations append past them and rebuilds reuse
  // them — so every external id (schedules, journals, goldens) stays in
  // original-id space and only this layer speaks Morton order.
  std::vector<geom::Vec2> pos;
  pos.reserve(tags_.size());
  for (const Tag& t : tags_) pos.push_back(t.pos);
  const std::vector<int> tag_order = geom::mortonOrder(pos);
  bit_of_.resize(tags_.size());
  tag_of_.resize(tags_.size());
  for (std::size_t k = 0; k < tag_order.size(); ++k) {
    tag_of_[k] = tag_order[k];
    bit_of_[static_cast<std::size_t>(tag_order[k])] = static_cast<std::uint32_t>(k);
  }
  pos.clear();
  pos.reserve(readers_.size());
  for (const Reader& r : readers_) pos.push_back(r.pos);
  const std::vector<int> reader_order = geom::mortonOrder(pos);
  row_of_.resize(readers_.size());
  reader_of_.resize(readers_.size());
  for (std::size_t k = 0; k < reader_order.size(); ++k) {
    reader_of_[k] = reader_order[k];
    row_of_[static_cast<std::size_t>(reader_order[k])] = static_cast<std::uint32_t>(k);
  }
}

void System::buildBitmap() {
  const std::size_t n = readers_.size();
  const std::size_t words = (tag_of_.size() + 63) / 64;
  bit_off_.assign(n + 1, 0);
  bit_arena_.clear();
  bit_arena_.reserve(cov_idx_.size());  // ≤ one entry per coverage element
  std::vector<std::uint32_t> bits;
  for (std::size_t r = 0; r < n; ++r) {
    const int v = reader_of_[r];
    const std::span<const int> cov = coverage(v);
    bits.clear();
    bits.reserve(cov.size());
    for (const int t : cov) bits.push_back(bit_of_[static_cast<std::size_t>(t)]);
    std::sort(bits.begin(), bits.end());
    for (const std::uint32_t p : bits) {
      const std::uint32_t w = p >> 6;
      if (bit_arena_.size() > bit_off_[r] && bit_arena_.back().word == w) {
        bit_arena_.back().bits |= std::uint64_t{1} << (p & 63);
      } else {
        bit_arena_.push_back({w, 0, std::uint64_t{1} << (p & 63)});
      }
    }
    bit_off_[r + 1] = static_cast<std::uint32_t>(bit_arena_.size());
  }
  bit_arena_.shrink_to_fit();  // the single arena allocation per System

  read_bits_.assign(words, 0);
  for (std::size_t t = 0; t < tags_.size(); ++t) {
    if (read_[t] != 0) {
      const std::uint32_t p = bit_of_[t];
      read_bits_[p >> 6] |= std::uint64_t{1} << (p & 63);
    }
  }
  coverable_bits_.assign(words, 0);
  for (std::size_t t = 0; t < tags_.size(); ++t) {
    if (covr_off_[t + 1] > covr_off_[t]) {
      const std::uint32_t p = bit_of_[t];
      coverable_bits_[p >> 6] |= std::uint64_t{1} << (p & 63);
    }
  }
}

void System::initScratch(WeightScratch& scratch) const {
  scratch.count.assign(tags_.size(), 0);
  scratch.victim.assign(readers_.size(), 0);
  scratch.once.assign(read_bits_.size(), 0);
  scratch.twice.assign(read_bits_.size(), 0);
  scratch.touched.clear();
  scratch.marked.clear();
  scratch.qbuf.clear();
}

bool System::isFeasible(std::span<const int> X) const {
  for (std::size_t i = 0; i < X.size(); ++i) {
    for (std::size_t j = i + 1; j < X.size(); ++j) {
      if (X[i] == X[j]) return false;  // duplicates are not a set
      if (!independent(X[i], X[j])) return false;
    }
  }
  return true;
}

void System::markRead(std::span<const int> tags) {
  for (const int t : tags) markRead(t);
}

void System::resetReads() {
  std::fill(read_.begin(), read_.end(), 0);
  std::fill(read_bits_.begin(), read_bits_.end(), 0);
}

int System::unreadCount() const {
  int n = 0;
  for (const char r : read_) n += (r == 0);
  return n;
}

int System::unreadCoverableCount() const {
  if (!reference_eval_) {
    int n = 0;
    for (std::size_t w = 0; w < coverable_bits_.size(); ++w) {
      n += std::popcount(coverable_bits_[w] & ~read_bits_[w]);
    }
    return n;
  }
  int n = 0;
  for (std::size_t t = 0; t < tags_.size(); ++t) {
    if (read_[t] == 0 && covr_off_[t + 1] > covr_off_[t]) ++n;
  }
  return n;
}

template <typename OnTag>
void System::forEachWellCovered(std::span<const int> X,
                                std::span<const int> jamming,
                                std::span<int> count, std::span<char> victim,
                                OnTag&& on_tag) const {
  // `jamming` readers radiate like members of X (passes 1 and 2) but never
  // read (pass 3) — the loud-failure semantics of the fault model.  The
  // common no-fault call passes an empty span and compiles to the original
  // three-pass evaluation.
  //
  // Pass 1: RTc victims — v_i inside some other active v_j's interference
  // disk reads nothing (Definition 1, second condition).  Note the
  // asymmetry: only R_j matters for whether v_i is a victim.
  const auto victimOf = [this, X, jamming](int vi) -> char {
    const Reader& a = reader(vi);
    for (const int vj : X) {
      if (vi == vj) continue;
      const double rj = reader(vj).interference_radius;
      if (geom::dist2(a.pos, reader(vj).pos) <= rj * rj) return 1;
    }
    for (const int vj : jamming) {
      if (vi == vj) continue;
      const double rj = reader(vj).interference_radius;
      if (geom::dist2(a.pos, reader(vj).pos) <= rj * rj) return 1;
    }
    return 0;
  };
  for (const int vi : X) {
    victim[static_cast<std::size_t>(vi)] = victimOf(vi);
  }
  // Pass 2: coverage multiplicity among all radiating readers (RRc counts
  // every active interrogation region, victim or not — a victim still
  // radiates, and so does a loud-failed reader).
  for (const int v : X) {
    for (const int t : coverage(v)) ++count[static_cast<std::size_t>(t)];
  }
  for (const int v : jamming) {
    for (const int t : coverage(v)) ++count[static_cast<std::size_t>(t)];
  }
  // Pass 3: a tag is well-covered iff it is unread, covered by exactly one
  // radiating reader, and that reader is a non-victim member of X.
  for (const int v : X) {
    if (victim[static_cast<std::size_t>(v)] != 0) continue;
    for (const int t : coverage(v)) {
      if (count[static_cast<std::size_t>(t)] == 1 && read_[static_cast<std::size_t>(t)] == 0) {
        on_tag(t);
      }
    }
  }
  // Pass 4: restore scratch.
  for (const int v : X) {
    for (const int t : coverage(v)) count[static_cast<std::size_t>(t)] = 0;
  }
  for (const int v : jamming) {
    for (const int t : coverage(v)) count[static_cast<std::size_t>(t)] = 0;
  }
}

void System::buildInterferenceRows() {
  // At the paper's densities each interference disk holds a handful of
  // readers, so the rows cost O(n) memory and turn every victim pass from
  // a grid query into a short contiguous walk.  An adversarially dense
  // deployment (everyone inside everyone's disk) would cost O(n²); cap the
  // build and leave the grid fallback in place instead.
  const std::size_t cap =
      std::max<std::size_t>(std::size_t{1} << 22, readers_.size() * 64);
  intf_off_.assign(readers_.size() + 1, 0);
  intf_idx_.clear();
  std::vector<int> qbuf;
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    qbuf.clear();
    reader_index_->queryDisk(readers_[v].pos, readers_[v].interference_radius,
                             qbuf);
    ++grid_queries_;
    for (const int u : qbuf) {
      if (static_cast<std::size_t>(u) != v) intf_idx_.push_back(u);
    }
    if (intf_idx_.size() > cap) {
      intf_off_.clear();
      intf_idx_.clear();
      intf_idx_.shrink_to_fit();
      return;
    }
    intf_off_[v + 1] = static_cast<int>(intf_idx_.size());
  }
}

void System::markVictims(std::span<const int> X, std::span<const int> jamming,
                         WeightScratch& scratch) const {
  // RTc victims among the radiators, Definition 1's second condition.  Both
  // paths compute the identical flags; `marked` records every flag set so
  // the scratch returns to all-zero afterwards.
  const std::size_t k = X.size() + jamming.size();
  if (intf_off_.empty() && k < kVictimGridThreshold) {
    for (const int vi : X) {
      const Reader& a = reader(vi);
      char f = 0;
      for (const int vj : X) {
        if (vi == vj) continue;
        const double rj = reader(vj).interference_radius;
        if (geom::dist2(a.pos, reader(vj).pos) <= rj * rj) { f = 1; break; }
      }
      if (f == 0) {
        for (const int vj : jamming) {
          if (vi == vj) continue;
          const double rj = reader(vj).interference_radius;
          if (geom::dist2(a.pos, reader(vj).pos) <= rj * rj) { f = 1; break; }
        }
      }
      if (f != 0) {
        scratch.victim[static_cast<std::size_t>(vi)] = 1;
        scratch.marked.push_back(vi);
      }
    }
    return;
  }
  // Row/grid pass: every radiator marks the readers inside its interference
  // disk (except itself).  Marks may land on non-members; only members'
  // flags are read, and every mark is undone through `marked`.  The
  // precomputed interference rows hold exactly the set the grid query
  // returns (minus the radiator), so both branches set identical flags.
  const bool rows = !intf_off_.empty();
  const auto mark_disk = [this, &scratch, rows](int vj) {
    if (rows) {
      const auto b = static_cast<std::size_t>(
          intf_off_[static_cast<std::size_t>(vj)]);
      const auto e = static_cast<std::size_t>(
          intf_off_[static_cast<std::size_t>(vj) + 1]);
      for (std::size_t i = b; i < e; ++i) {
        const int u = intf_idx_[i];
        if (scratch.victim[static_cast<std::size_t>(u)] != 0) continue;
        scratch.victim[static_cast<std::size_t>(u)] = 1;
        scratch.marked.push_back(u);
      }
      return;
    }
    const Reader& rj = reader(vj);
    scratch.qbuf.clear();
    reader_index_->queryDisk(rj.pos, rj.interference_radius, scratch.qbuf);
    for (const int u : scratch.qbuf) {
      if (u == vj || scratch.victim[static_cast<std::size_t>(u)] != 0) continue;
      scratch.victim[static_cast<std::size_t>(u)] = 1;
      scratch.marked.push_back(u);
    }
  };
  for (const int vj : X) mark_disk(vj);
  for (const int vj : jamming) mark_disk(vj);
}

int System::evalBitmap(std::span<const int> X, std::span<const int> jamming,
                       WeightScratch& scratch, std::vector<int>* out) const {
  const std::size_t words = read_bits_.size();
  if (scratch.once.size() < words) {
    // addTag grew the bit space past this scratch (caller-owned scratches
    // cannot be resized from the mutation path).
    scratch.once.resize(words, 0);
    scratch.twice.resize(words, 0);
  }
  markVictims(X, jamming, scratch);
  // Exactly-one counting, word-parallel: after the sweep `once & ~twice`
  // holds the bits covered by exactly one radiating reader.
  const auto accumulate = [this, &scratch](int v) {
    for (const BitEntry& e : bitRow(v)) {
      if (scratch.once[e.word] == 0) scratch.touched.push_back(static_cast<int>(e.word));
      scratch.twice[e.word] |= scratch.once[e.word] & e.bits;
      scratch.once[e.word] |= e.bits;
    }
  };
  for (const int v : X) accumulate(v);
  for (const int v : jamming) accumulate(v);
  // Emit: a well-covered tag's unique radiator is its non-victim member, so
  // walking the members' rows reports each exactly once, unread bits only.
  int w = 0;
  for (const int v : X) {
    if (scratch.victim[static_cast<std::size_t>(v)] != 0) continue;
    for (const BitEntry& e : bitRow(v)) {
      const std::uint64_t well = e.bits & scratch.once[e.word] &
                                 ~scratch.twice[e.word] & ~read_bits_[e.word];
      if (out == nullptr) {
        w += std::popcount(well);
      } else {
        const std::uint32_t base = e.word << 6;
        for (std::uint64_t b = well; b != 0; b &= b - 1) {
          out->push_back(
              tag_of_[base + static_cast<std::uint32_t>(std::countr_zero(b))]);
        }
      }
    }
  }
  if (out != nullptr) w = static_cast<int>(out->size());
  for (const int wd : scratch.touched) {
    scratch.once[static_cast<std::size_t>(wd)] = 0;
    scratch.twice[static_cast<std::size_t>(wd)] = 0;
  }
  scratch.touched.clear();
  for (const int v : scratch.marked) scratch.victim[static_cast<std::size_t>(v)] = 0;
  scratch.marked.clear();
  return w;
}

std::vector<int> System::wellCoveredTags(std::span<const int> X) const {
  return wellCoveredTags(X, {}, scratch_);
}

std::vector<int> System::wellCoveredTags(std::span<const int> X,
                                         std::span<const int> jamming) const {
  return wellCoveredTags(X, jamming, scratch_);
}

std::vector<int> System::wellCoveredTags(std::span<const int> X,
                                         std::span<const int> jamming,
                                         WeightScratch& scratch) const {
  if (well_covered_evals_ != nullptr) well_covered_evals_->add(1);
  std::vector<int> out;
  if (!reference_eval_) {
    evalBitmap(X, jamming, scratch, &out);
  } else {
    forEachWellCovered(X, jamming, scratch.count, scratch.victim,
                       [&out](int t) { out.push_back(t); });
  }
  std::sort(out.begin(), out.end());
  return out;
}

int System::weight(std::span<const int> X) const {
  return weight(X, scratch_);
}

int System::weight(std::span<const int> X, WeightScratch& scratch) const {
  if (weight_evals_ != nullptr) weight_evals_->add(1);
  if (!reference_eval_) return evalBitmap(X, {}, scratch, nullptr);
  int w = 0;
  forEachWellCovered(X, {}, scratch.count, scratch.victim, [&w](int) { ++w; });
  return w;
}

int System::singleWeight(int v) const {
  if (!reference_eval_) {
    int w = 0;
    for (const BitEntry& e : bitRow(v)) {
      w += std::popcount(e.bits & ~read_bits_[e.word]);
    }
    return w;
  }
  int w = 0;
  for (const int t : coverage(v)) w += (read_[static_cast<std::size_t>(t)] == 0);
  return w;
}

void System::coveringReaders(geom::Vec2 pos, std::vector<int>& out) {
  if (reader_index_ == nullptr) {
    std::vector<geom::Vec2> reader_pos;
    reader_pos.reserve(readers_.size());
    for (const Reader& r : readers_) reader_pos.push_back(r.pos);
    reader_index_ = std::make_shared<geom::SpatialGrid>(reader_pos, max_gamma_);
  }
  // One disk query at the maximum interrogation radius, then the per-reader
  // radius filter: the grid answers "who could possibly cover pos", the
  // filter answers "who does".
  out.clear();
  reader_index_->queryDisk(pos, max_gamma_, out);
  ++grid_queries_;
  std::size_t w = 0;
  for (const int v : out) {
    const Reader& r = readers_[static_cast<std::size_t>(v)];
    const double g = r.interrogation_radius;
    if (geom::dist2(pos, r.pos) <= g * g) out[w++] = v;
  }
  out.resize(w);
}

void System::covInsert(std::span<const int> readers, int t) {
  if (readers.empty()) return;
  // Multi-insert in one backward pass: find each row's insertion point
  // (rows are ascending in tag index), shift the tail segments right once.
  const std::size_t k = readers.size();
  const std::size_t old_size = cov_idx_.size();
  cov_idx_.resize(old_size + k);
  std::size_t read_end = old_size;            // exclusive end of unmoved data
  std::size_t write = cov_idx_.size();        // exclusive end of write window
  for (std::size_t i = k; i-- > 0;) {
    const int v = readers[i];
    const auto row_lo = cov_idx_.begin() + cov_off_[static_cast<std::size_t>(v)];
    const auto row_hi = cov_idx_.begin() + cov_off_[static_cast<std::size_t>(v) + 1];
    const std::size_t ins = static_cast<std::size_t>(
        std::lower_bound(row_lo, row_hi, t) - cov_idx_.begin());
    std::copy_backward(cov_idx_.begin() + static_cast<std::ptrdiff_t>(ins),
                       cov_idx_.begin() + static_cast<std::ptrdiff_t>(read_end),
                       cov_idx_.begin() + static_cast<std::ptrdiff_t>(write));
    write -= read_end - ins;
    cov_idx_[--write] = t;
    read_end = ins;
  }
  // Offset fixup: rows at or after reader v gained the insertions in rows
  // <= v.  One O(n + k) sweep (readers is ascending and duplicate-free).
  std::size_t ci = 0;
  int shift = 0;
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    if (ci < k && readers[ci] == static_cast<int>(v)) {
      ++shift;
      ++ci;
    }
    cov_off_[v + 1] += shift;
  }
}

void System::covErase(std::span<const int> readers, int t) {
  if (readers.empty()) return;
  // Mirror of covInsert: one forward compaction pass over the tail.
  const std::size_t k = readers.size();
  std::size_t write = 0;
  std::size_t src = 0;
  bool first = true;
  for (const int v : readers) {
    const auto row_lo = cov_idx_.begin() + cov_off_[static_cast<std::size_t>(v)];
    const auto row_hi = cov_idx_.begin() + cov_off_[static_cast<std::size_t>(v) + 1];
    const auto it = std::lower_bound(row_lo, row_hi, t);
    assert(it != row_hi && *it == t && "cov row must contain the tag");
    const std::size_t pos = static_cast<std::size_t>(it - cov_idx_.begin());
    if (first) {
      write = pos;
      src = pos + 1;
      first = false;
      continue;
    }
    std::copy(cov_idx_.begin() + static_cast<std::ptrdiff_t>(src),
              cov_idx_.begin() + static_cast<std::ptrdiff_t>(pos),
              cov_idx_.begin() + static_cast<std::ptrdiff_t>(write));
    write += pos - src;
    src = pos + 1;
  }
  std::copy(cov_idx_.begin() + static_cast<std::ptrdiff_t>(src), cov_idx_.end(),
            cov_idx_.begin() + static_cast<std::ptrdiff_t>(write));
  cov_idx_.resize(cov_idx_.size() - k);
  std::size_t ci = 0;
  int shift = 0;
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    if (ci < k && readers[ci] == static_cast<int>(v)) {
      ++shift;
      ++ci;
    }
    cov_off_[v + 1] -= shift;
  }
}

void System::covrReplace(int t, std::span<const int> readers) {
  const std::size_t lo = static_cast<std::size_t>(covr_off_[static_cast<std::size_t>(t)]);
  const std::size_t hi = static_cast<std::size_t>(covr_off_[static_cast<std::size_t>(t) + 1]);
  const std::ptrdiff_t delta =
      static_cast<std::ptrdiff_t>(readers.size()) - static_cast<std::ptrdiff_t>(hi - lo);
  if (delta > 0) {
    covr_idx_.insert(covr_idx_.begin() + static_cast<std::ptrdiff_t>(hi),
                     static_cast<std::size_t>(delta), 0);
  } else if (delta < 0) {
    covr_idx_.erase(covr_idx_.begin() + static_cast<std::ptrdiff_t>(hi) + delta,
                    covr_idx_.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  std::copy(readers.begin(), readers.end(),
            covr_idx_.begin() + static_cast<std::ptrdiff_t>(lo));
  if (delta != 0) {
    for (std::size_t u = static_cast<std::size_t>(t) + 1; u < covr_off_.size(); ++u) {
      covr_off_[u] += static_cast<int>(delta);
    }
  }
}

void System::bitmapInsert(std::span<const int> readers, int t) {
  if (readers.empty()) return;
  const std::uint32_t p = bit_of_[static_cast<std::size_t>(t)];
  const std::uint32_t w = p >> 6;
  const std::uint64_t mask = std::uint64_t{1} << (p & 63);
  // Rows that already hold block `w` just OR the bit in; the rest need a
  // structural entry, batched into one backward shift (mirror of covInsert).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ins;  // (row, arena pos)
  for (const int v : readers) {
    const std::uint32_t r = row_of_[static_cast<std::size_t>(v)];
    const auto lo = bit_arena_.begin() + bit_off_[r];
    const auto hi = bit_arena_.begin() + bit_off_[r + 1];
    const auto it = std::lower_bound(
        lo, hi, w, [](const BitEntry& e, std::uint32_t word) { return e.word < word; });
    if (it != hi && it->word == w) {
      it->bits |= mask;
    } else {
      ins.emplace_back(r, static_cast<std::uint32_t>(it - bit_arena_.begin()));
    }
  }
  if (ins.empty()) return;
  std::sort(ins.begin(), ins.end());  // ascending row ⇒ ascending arena pos
  const std::size_t k = ins.size();
  const std::size_t old_size = bit_arena_.size();
  bit_arena_.resize(old_size + k);
  std::size_t read_end = old_size;
  std::size_t write = bit_arena_.size();
  for (std::size_t i = k; i-- > 0;) {
    const std::size_t pos = ins[i].second;
    std::copy_backward(bit_arena_.begin() + static_cast<std::ptrdiff_t>(pos),
                       bit_arena_.begin() + static_cast<std::ptrdiff_t>(read_end),
                       bit_arena_.begin() + static_cast<std::ptrdiff_t>(write));
    write -= read_end - pos;
    bit_arena_[--write] = BitEntry{w, 0, mask};
    read_end = pos;
  }
  std::size_t ci = 0;
  std::uint32_t shift = 0;
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    if (ci < k && ins[ci].first == r) {
      ++shift;
      ++ci;
    }
    bit_off_[r + 1] += shift;
  }
}

void System::bitmapErase(std::span<const int> readers, int t) {
  if (readers.empty()) return;
  const std::uint32_t p = bit_of_[static_cast<std::size_t>(t)];
  const std::uint32_t w = p >> 6;
  const std::uint64_t mask = std::uint64_t{1} << (p & 63);
  // Clear the bit everywhere first; entries that go to zero are erased in
  // one forward compaction (canonical form stores no zero words).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> del;  // (row, arena pos)
  for (const int v : readers) {
    const std::uint32_t r = row_of_[static_cast<std::size_t>(v)];
    const auto lo = bit_arena_.begin() + bit_off_[r];
    const auto hi = bit_arena_.begin() + bit_off_[r + 1];
    const auto it = std::lower_bound(
        lo, hi, w, [](const BitEntry& e, std::uint32_t word) { return e.word < word; });
    assert(it != hi && it->word == w && (it->bits & mask) != 0 &&
           "bitmap row must contain the tag's bit");
    it->bits &= ~mask;
    if (it->bits == 0) {
      del.emplace_back(r, static_cast<std::uint32_t>(it - bit_arena_.begin()));
    }
  }
  if (del.empty()) return;
  std::sort(del.begin(), del.end());
  const std::size_t k = del.size();
  std::size_t write = del[0].second;
  std::size_t src = del[0].second + 1;
  for (std::size_t i = 1; i < k; ++i) {
    const std::size_t pos = del[i].second;
    std::copy(bit_arena_.begin() + static_cast<std::ptrdiff_t>(src),
              bit_arena_.begin() + static_cast<std::ptrdiff_t>(pos),
              bit_arena_.begin() + static_cast<std::ptrdiff_t>(write));
    write += pos - src;
    src = pos + 1;
  }
  std::copy(bit_arena_.begin() + static_cast<std::ptrdiff_t>(src), bit_arena_.end(),
            bit_arena_.begin() + static_cast<std::ptrdiff_t>(write));
  bit_arena_.resize(bit_arena_.size() - k);
  std::size_t ci = 0;
  std::uint32_t shift = 0;
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    if (ci < k && del[ci].first == r) {
      ++shift;
      ++ci;
    }
    bit_off_[r + 1] -= shift;
  }
}

void System::logDirty(std::span<const int> readers) {
  // Bounded window: once the log outgrows the cap, drop the whole window
  // and advance the base so every cursor behind it falls back to a full
  // cache rebuild — O(n) once, instead of an unbounded log.
  constexpr std::size_t kDirtyLogCap = 1 << 14;
  if (dirty_log_.size() + readers.size() > kDirtyLogCap) {
    invalidateDirtyLog();
  }
  dirty_log_.insert(dirty_log_.end(), readers.begin(), readers.end());
}

void System::invalidateDirtyLog() {
  dirty_base_ += static_cast<std::uint64_t>(dirty_log_.size()) + 1;
  dirty_log_.clear();
}

int System::addTag(Tag t) {
  const int idx = numTags();
  t.id = idx;
  tags_.push_back(t);
  read_.push_back(0);
  departed_.push_back(0);
  scratch_.count.push_back(0);

  std::vector<int> cs;
  coveringReaders(t.pos, cs);
  // covr: the new tag's row is appended at the end of the flat array — the
  // new index is larger than every existing one.
  covr_idx_.insert(covr_idx_.end(), cs.begin(), cs.end());
  covr_off_.push_back(static_cast<int>(covr_idx_.size()));
  // cov: the new tag index is the largest, so each insertion point is the
  // row end; covInsert handles the general case anyway.
  covInsert(cs, idx);

  // Bitmap: churn-added tags take the next bit position past the Morton
  // range (locality only matters for the construction-time bulk).
  const auto p = static_cast<std::uint32_t>(tag_of_.size());
  bit_of_.push_back(p);
  tag_of_.push_back(idx);
  if ((p & 63u) == 0) {
    read_bits_.push_back(0);
    coverable_bits_.push_back(0);
  }
  bitmapInsert(cs, idx);
  if (!cs.empty()) coverable_bits_[p >> 6] |= std::uint64_t{1} << (p & 63);

  logDirty(cs);
  ++structural_epoch_;
  return idx;
}

void System::removeTag(int t) {
  assert(t >= 0 && t < numTags());
  assert(!departed(t) && "removeTag on a tombstone");
  const std::span<const int> row = coverers(t);
  const std::vector<int> cs(row.begin(), row.end());
  covErase(cs, t);
  covrReplace(t, {});
  bitmapErase(cs, t);
  departed_[static_cast<std::size_t>(t)] = 1;
  // A departed tag must never be counted or served: render it passive the
  // same way a served tag is.  The read-state diff in the caches sees the
  // flip, finds an empty coverers row, and the dirty-log entries below
  // carry the exact correction.
  read_[static_cast<std::size_t>(t)] = 1;
  {
    const std::uint32_t p = bit_of_[static_cast<std::size_t>(t)];
    coverable_bits_[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
    read_bits_[p >> 6] |= std::uint64_t{1} << (p & 63);
  }
  logDirty(cs);
  ++structural_epoch_;
}

void System::moveTag(int t, geom::Vec2 pos) {
  assert(t >= 0 && t < numTags());
  assert(!departed(t) && "moveTag on a tombstone");
  const std::span<const int> row = coverers(t);
  const std::vector<int> old_cs(row.begin(), row.end());
  std::vector<int> new_cs;
  coveringReaders(pos, new_cs);
  tags_[static_cast<std::size_t>(t)].pos = pos;
  if (new_cs != old_cs) {
    covErase(old_cs, t);
    covInsert(new_cs, t);
    covrReplace(t, new_cs);
    // The tag keeps its bit position — only which rows hold it changes.
    bitmapErase(old_cs, t);
    bitmapInsert(new_cs, t);
    const std::uint32_t p = bit_of_[static_cast<std::size_t>(t)];
    if (new_cs.empty()) {
      coverable_bits_[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
    } else {
      coverable_bits_[p >> 6] |= std::uint64_t{1} << (p & 63);
    }
    logDirty(old_cs);
    logDirty(new_cs);
  }
  ++structural_epoch_;
}

std::uint64_t System::fingerprintArrays(std::span<const int> cov_off,
                                        std::span<const int> cov_idx,
                                        std::span<const int> covr_off,
                                        std::span<const int> covr_idx) {
  // FNV-1a over the four arrays' little-endian bytes, with a separator
  // byte between arrays so length boundaries cannot alias.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::span<const int> a) {
    for (const int x : a) {
      const auto u = static_cast<std::uint32_t>(x);
      for (int s = 0; s < 32; s += 8) {
        h ^= (u >> s) & 0xffu;
        h *= 1099511628211ull;
      }
    }
    h ^= 0xffu;
    h *= 1099511628211ull;
  };
  mix(cov_off);
  mix(cov_idx);
  mix(covr_off);
  mix(covr_idx);
  return h;
}

std::uint64_t System::indexFingerprint() const {
  return fingerprintArrays(cov_off_, cov_idx_, covr_off_, covr_idx_);
}

std::uint64_t System::fingerprintBitmap(std::span<const std::uint32_t> off,
                                        std::span<const BitEntry> arena,
                                        std::span<const std::uint32_t> row_of,
                                        std::span<const std::uint32_t> bit_of) {
  // Same FNV-1a scheme as fingerprintArrays; `pad` is skipped so only the
  // semantic bytes count.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix32 = [&h](std::uint32_t u) {
    for (int s = 0; s < 32; s += 8) {
      h ^= (u >> s) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto sep = [&h]() {
    h ^= 0xffu;
    h *= 1099511628211ull;
  };
  for (const std::uint32_t x : off) mix32(x);
  sep();
  for (const BitEntry& e : arena) {
    mix32(e.word);
    mix32(static_cast<std::uint32_t>(e.bits));
    mix32(static_cast<std::uint32_t>(e.bits >> 32));
  }
  sep();
  for (const std::uint32_t x : row_of) mix32(x);
  sep();
  for (const std::uint32_t x : bit_of) mix32(x);
  sep();
  return h;
}

std::uint64_t System::bitmapFingerprint() const {
  return fingerprintBitmap(bit_off_, bit_arena_, row_of_, bit_of_);
}

void System::rebuildIndex() {
  buildIndex();
  buildBitmap();
  invalidateDirtyLog();
}

void System::testOnlyCorruptIndex() {
  // Swap two differing covr entries: corrupts row contents while keeping
  // lengths and value ranges intact — exactly the shape of a missed delta.
  for (std::size_t i = 1; i < covr_idx_.size(); ++i) {
    if (covr_idx_[i] != covr_idx_[0]) {
      std::swap(covr_idx_[0], covr_idx_[i]);
      return;
    }
  }
  for (std::size_t i = 1; i < cov_idx_.size(); ++i) {
    if (cov_idx_[i] != cov_idx_[0]) {
      std::swap(cov_idx_[0], cov_idx_[i]);
      return;
    }
  }
}

void System::testOnlyCorruptBitmap() {
  // Flip one bit in the first arena entry: the CSR stays intact, so only a
  // bitmap-aware oracle (or the equivalence matrix) can notice.
  if (!bit_arena_.empty()) bit_arena_[0].bits ^= 1;
}

void System::attachMetrics(obs::MetricsRegistry* m) {
  metrics_ = m;
  if (m == nullptr) {
    weight_evals_ = nullptr;
    well_covered_evals_ = nullptr;
    return;
  }
  weight_evals_ = &m->counter("core.weight_evals");
  well_covered_evals_ = &m->counter("core.well_covered_evals");
  m->counter("core.grid_queries").add(grid_queries_);
}

}  // namespace rfid::core
