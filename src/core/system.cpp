#include "core/system.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

namespace rfid::core {

namespace {

std::uint64_t nextInstanceId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

System::System(std::vector<Reader> readers, std::vector<Tag> tags)
    : readers_(std::move(readers)), tags_(std::move(tags)),
      instance_id_(nextInstanceId()) {
  for (std::size_t i = 0; i < readers_.size(); ++i) {
    readers_[i].id = static_cast<int>(i);
    assert(readers_[i].valid() && "reader must satisfy 0 < gamma <= R");
  }
  for (std::size_t i = 0; i < tags_.size(); ++i) tags_[i].id = static_cast<int>(i);

  departed_.assign(tags_.size(), 0);
  buildIndex();

  read_.assign(tags_.size(), 0);
  initScratch(scratch_);
}

void System::buildIndex() {
  // Index tags once; coverage queries are disk queries around readers.
  double max_gamma = 1.0;
  for (const Reader& r : readers_) max_gamma = std::max(max_gamma, r.interrogation_radius);
  max_gamma_ = max_gamma;
  std::vector<geom::Vec2> tag_pos;
  tag_pos.reserve(tags_.size());
  for (const Tag& t : tags_) tag_pos.push_back(t.pos);
  const geom::SpatialGrid tag_index(tag_pos, max_gamma);

  // Build reader → tag coverage directly into the CSR arrays, then invert
  // by counting sort: iterating v ascending appends each tag's coverers in
  // ascending reader order, matching the per-list sort queryDisk provides
  // for tags.
  cov_off_.assign(readers_.size() + 1, 0);
  cov_idx_.clear();
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    // queryDisk appends (and sorts the appended tail), so the flat index
    // array is produced directly, one reader after another.  Departed tags
    // still sit in the grid at their last position; drop them from the
    // appended tail (stable, preserving ascending order).
    const std::size_t before = cov_idx_.size();
    tag_index.queryDisk(readers_[v].pos, readers_[v].interrogation_radius,
                        cov_idx_);
    ++grid_queries_;
    std::size_t w = before;
    for (std::size_t r = before; r < cov_idx_.size(); ++r) {
      if (departed_[static_cast<std::size_t>(cov_idx_[r])] == 0) {
        cov_idx_[w++] = cov_idx_[r];
      }
    }
    cov_idx_.resize(w);
    cov_off_[v + 1] = static_cast<int>(cov_idx_.size());
  }

  covr_off_.assign(tags_.size() + 1, 0);
  for (const int t : cov_idx_) ++covr_off_[static_cast<std::size_t>(t) + 1];
  for (std::size_t t = 0; t < tags_.size(); ++t) covr_off_[t + 1] += covr_off_[t];
  covr_idx_.resize(cov_idx_.size());
  std::vector<int> cursor(covr_off_.begin(), covr_off_.end() - 1);
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    for (const int t : coverage(static_cast<int>(v))) {
      covr_idx_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(t)]++)] =
          static_cast<int>(v);
    }
  }
}

void System::initScratch(WeightScratch& scratch) const {
  scratch.count.assign(tags_.size(), 0);
  scratch.victim.assign(readers_.size(), 0);
}

bool System::isFeasible(std::span<const int> X) const {
  for (std::size_t i = 0; i < X.size(); ++i) {
    for (std::size_t j = i + 1; j < X.size(); ++j) {
      if (X[i] == X[j]) return false;  // duplicates are not a set
      if (!independent(X[i], X[j])) return false;
    }
  }
  return true;
}

void System::markRead(std::span<const int> tags) {
  for (const int t : tags) markRead(t);
}

void System::resetReads() { std::fill(read_.begin(), read_.end(), 0); }

int System::unreadCount() const {
  int n = 0;
  for (const char r : read_) n += (r == 0);
  return n;
}

int System::unreadCoverableCount() const {
  int n = 0;
  for (std::size_t t = 0; t < tags_.size(); ++t) {
    if (read_[t] == 0 && covr_off_[t + 1] > covr_off_[t]) ++n;
  }
  return n;
}

template <typename OnTag>
void System::forEachWellCovered(std::span<const int> X,
                                std::span<const int> jamming,
                                std::span<int> count, std::span<char> victim,
                                OnTag&& on_tag) const {
  // `jamming` readers radiate like members of X (passes 1 and 2) but never
  // read (pass 3) — the loud-failure semantics of the fault model.  The
  // common no-fault call passes an empty span and compiles to the original
  // three-pass evaluation.
  //
  // Pass 1: RTc victims — v_i inside some other active v_j's interference
  // disk reads nothing (Definition 1, second condition).  Note the
  // asymmetry: only R_j matters for whether v_i is a victim.
  const auto victimOf = [this, X, jamming](int vi) -> char {
    const Reader& a = reader(vi);
    for (const int vj : X) {
      if (vi == vj) continue;
      const double rj = reader(vj).interference_radius;
      if (geom::dist2(a.pos, reader(vj).pos) <= rj * rj) return 1;
    }
    for (const int vj : jamming) {
      if (vi == vj) continue;
      const double rj = reader(vj).interference_radius;
      if (geom::dist2(a.pos, reader(vj).pos) <= rj * rj) return 1;
    }
    return 0;
  };
  for (const int vi : X) {
    victim[static_cast<std::size_t>(vi)] = victimOf(vi);
  }
  // Pass 2: coverage multiplicity among all radiating readers (RRc counts
  // every active interrogation region, victim or not — a victim still
  // radiates, and so does a loud-failed reader).
  for (const int v : X) {
    for (const int t : coverage(v)) ++count[static_cast<std::size_t>(t)];
  }
  for (const int v : jamming) {
    for (const int t : coverage(v)) ++count[static_cast<std::size_t>(t)];
  }
  // Pass 3: a tag is well-covered iff it is unread, covered by exactly one
  // radiating reader, and that reader is a non-victim member of X.
  for (const int v : X) {
    if (victim[static_cast<std::size_t>(v)] != 0) continue;
    for (const int t : coverage(v)) {
      if (count[static_cast<std::size_t>(t)] == 1 && read_[static_cast<std::size_t>(t)] == 0) {
        on_tag(t);
      }
    }
  }
  // Pass 4: restore scratch.
  for (const int v : X) {
    for (const int t : coverage(v)) count[static_cast<std::size_t>(t)] = 0;
  }
  for (const int v : jamming) {
    for (const int t : coverage(v)) count[static_cast<std::size_t>(t)] = 0;
  }
}

std::vector<int> System::wellCoveredTags(std::span<const int> X) const {
  return wellCoveredTags(X, {}, scratch_);
}

std::vector<int> System::wellCoveredTags(std::span<const int> X,
                                         std::span<const int> jamming) const {
  return wellCoveredTags(X, jamming, scratch_);
}

std::vector<int> System::wellCoveredTags(std::span<const int> X,
                                         std::span<const int> jamming,
                                         WeightScratch& scratch) const {
  if (well_covered_evals_ != nullptr) well_covered_evals_->add(1);
  std::vector<int> out;
  forEachWellCovered(X, jamming, scratch.count, scratch.victim,
                     [&out](int t) { out.push_back(t); });
  std::sort(out.begin(), out.end());
  return out;
}

int System::weight(std::span<const int> X) const {
  return weight(X, scratch_);
}

int System::weight(std::span<const int> X, WeightScratch& scratch) const {
  if (weight_evals_ != nullptr) weight_evals_->add(1);
  int w = 0;
  forEachWellCovered(X, {}, scratch.count, scratch.victim, [&w](int) { ++w; });
  return w;
}

int System::singleWeight(int v) const {
  int w = 0;
  for (const int t : coverage(v)) w += (read_[static_cast<std::size_t>(t)] == 0);
  return w;
}

void System::coveringReaders(geom::Vec2 pos, std::vector<int>& out) {
  if (reader_index_ == nullptr) {
    std::vector<geom::Vec2> reader_pos;
    reader_pos.reserve(readers_.size());
    for (const Reader& r : readers_) reader_pos.push_back(r.pos);
    reader_index_ = std::make_shared<geom::SpatialGrid>(reader_pos, max_gamma_);
  }
  // One disk query at the maximum interrogation radius, then the per-reader
  // radius filter: the grid answers "who could possibly cover pos", the
  // filter answers "who does".
  out.clear();
  reader_index_->queryDisk(pos, max_gamma_, out);
  ++grid_queries_;
  std::size_t w = 0;
  for (const int v : out) {
    const Reader& r = readers_[static_cast<std::size_t>(v)];
    const double g = r.interrogation_radius;
    if (geom::dist2(pos, r.pos) <= g * g) out[w++] = v;
  }
  out.resize(w);
}

void System::covInsert(std::span<const int> readers, int t) {
  if (readers.empty()) return;
  // Multi-insert in one backward pass: find each row's insertion point
  // (rows are ascending in tag index), shift the tail segments right once.
  const std::size_t k = readers.size();
  const std::size_t old_size = cov_idx_.size();
  cov_idx_.resize(old_size + k);
  std::size_t read_end = old_size;            // exclusive end of unmoved data
  std::size_t write = cov_idx_.size();        // exclusive end of write window
  for (std::size_t i = k; i-- > 0;) {
    const int v = readers[i];
    const auto row_lo = cov_idx_.begin() + cov_off_[static_cast<std::size_t>(v)];
    const auto row_hi = cov_idx_.begin() + cov_off_[static_cast<std::size_t>(v) + 1];
    const std::size_t ins = static_cast<std::size_t>(
        std::lower_bound(row_lo, row_hi, t) - cov_idx_.begin());
    std::copy_backward(cov_idx_.begin() + static_cast<std::ptrdiff_t>(ins),
                       cov_idx_.begin() + static_cast<std::ptrdiff_t>(read_end),
                       cov_idx_.begin() + static_cast<std::ptrdiff_t>(write));
    write -= read_end - ins;
    cov_idx_[--write] = t;
    read_end = ins;
  }
  // Offset fixup: rows at or after reader v gained the insertions in rows
  // <= v.  One O(n + k) sweep (readers is ascending and duplicate-free).
  std::size_t ci = 0;
  int shift = 0;
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    if (ci < k && readers[ci] == static_cast<int>(v)) {
      ++shift;
      ++ci;
    }
    cov_off_[v + 1] += shift;
  }
}

void System::covErase(std::span<const int> readers, int t) {
  if (readers.empty()) return;
  // Mirror of covInsert: one forward compaction pass over the tail.
  const std::size_t k = readers.size();
  std::size_t write = 0;
  std::size_t src = 0;
  bool first = true;
  for (const int v : readers) {
    const auto row_lo = cov_idx_.begin() + cov_off_[static_cast<std::size_t>(v)];
    const auto row_hi = cov_idx_.begin() + cov_off_[static_cast<std::size_t>(v) + 1];
    const auto it = std::lower_bound(row_lo, row_hi, t);
    assert(it != row_hi && *it == t && "cov row must contain the tag");
    const std::size_t pos = static_cast<std::size_t>(it - cov_idx_.begin());
    if (first) {
      write = pos;
      src = pos + 1;
      first = false;
      continue;
    }
    std::copy(cov_idx_.begin() + static_cast<std::ptrdiff_t>(src),
              cov_idx_.begin() + static_cast<std::ptrdiff_t>(pos),
              cov_idx_.begin() + static_cast<std::ptrdiff_t>(write));
    write += pos - src;
    src = pos + 1;
  }
  std::copy(cov_idx_.begin() + static_cast<std::ptrdiff_t>(src), cov_idx_.end(),
            cov_idx_.begin() + static_cast<std::ptrdiff_t>(write));
  cov_idx_.resize(cov_idx_.size() - k);
  std::size_t ci = 0;
  int shift = 0;
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    if (ci < k && readers[ci] == static_cast<int>(v)) {
      ++shift;
      ++ci;
    }
    cov_off_[v + 1] -= shift;
  }
}

void System::covrReplace(int t, std::span<const int> readers) {
  const std::size_t lo = static_cast<std::size_t>(covr_off_[static_cast<std::size_t>(t)]);
  const std::size_t hi = static_cast<std::size_t>(covr_off_[static_cast<std::size_t>(t) + 1]);
  const std::ptrdiff_t delta =
      static_cast<std::ptrdiff_t>(readers.size()) - static_cast<std::ptrdiff_t>(hi - lo);
  if (delta > 0) {
    covr_idx_.insert(covr_idx_.begin() + static_cast<std::ptrdiff_t>(hi),
                     static_cast<std::size_t>(delta), 0);
  } else if (delta < 0) {
    covr_idx_.erase(covr_idx_.begin() + static_cast<std::ptrdiff_t>(hi) + delta,
                    covr_idx_.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  std::copy(readers.begin(), readers.end(),
            covr_idx_.begin() + static_cast<std::ptrdiff_t>(lo));
  if (delta != 0) {
    for (std::size_t u = static_cast<std::size_t>(t) + 1; u < covr_off_.size(); ++u) {
      covr_off_[u] += static_cast<int>(delta);
    }
  }
}

void System::logDirty(std::span<const int> readers) {
  // Bounded window: once the log outgrows the cap, drop the whole window
  // and advance the base so every cursor behind it falls back to a full
  // cache rebuild — O(n) once, instead of an unbounded log.
  constexpr std::size_t kDirtyLogCap = 1 << 14;
  if (dirty_log_.size() + readers.size() > kDirtyLogCap) {
    invalidateDirtyLog();
  }
  dirty_log_.insert(dirty_log_.end(), readers.begin(), readers.end());
}

void System::invalidateDirtyLog() {
  dirty_base_ += static_cast<std::uint64_t>(dirty_log_.size()) + 1;
  dirty_log_.clear();
}

int System::addTag(Tag t) {
  const int idx = numTags();
  t.id = idx;
  tags_.push_back(t);
  read_.push_back(0);
  departed_.push_back(0);
  scratch_.count.push_back(0);

  std::vector<int> cs;
  coveringReaders(t.pos, cs);
  // covr: the new tag's row is appended at the end of the flat array — the
  // new index is larger than every existing one.
  covr_idx_.insert(covr_idx_.end(), cs.begin(), cs.end());
  covr_off_.push_back(static_cast<int>(covr_idx_.size()));
  // cov: the new tag index is the largest, so each insertion point is the
  // row end; covInsert handles the general case anyway.
  covInsert(cs, idx);

  logDirty(cs);
  ++structural_epoch_;
  return idx;
}

void System::removeTag(int t) {
  assert(t >= 0 && t < numTags());
  assert(!departed(t) && "removeTag on a tombstone");
  const std::span<const int> row = coverers(t);
  const std::vector<int> cs(row.begin(), row.end());
  covErase(cs, t);
  covrReplace(t, {});
  departed_[static_cast<std::size_t>(t)] = 1;
  // A departed tag must never be counted or served: render it passive the
  // same way a served tag is.  The read-state diff in the caches sees the
  // flip, finds an empty coverers row, and the dirty-log entries below
  // carry the exact correction.
  read_[static_cast<std::size_t>(t)] = 1;
  logDirty(cs);
  ++structural_epoch_;
}

void System::moveTag(int t, geom::Vec2 pos) {
  assert(t >= 0 && t < numTags());
  assert(!departed(t) && "moveTag on a tombstone");
  const std::span<const int> row = coverers(t);
  const std::vector<int> old_cs(row.begin(), row.end());
  std::vector<int> new_cs;
  coveringReaders(pos, new_cs);
  tags_[static_cast<std::size_t>(t)].pos = pos;
  if (new_cs != old_cs) {
    covErase(old_cs, t);
    covInsert(new_cs, t);
    covrReplace(t, new_cs);
    logDirty(old_cs);
    logDirty(new_cs);
  }
  ++structural_epoch_;
}

std::uint64_t System::fingerprintArrays(std::span<const int> cov_off,
                                        std::span<const int> cov_idx,
                                        std::span<const int> covr_off,
                                        std::span<const int> covr_idx) {
  // FNV-1a over the four arrays' little-endian bytes, with a separator
  // byte between arrays so length boundaries cannot alias.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::span<const int> a) {
    for (const int x : a) {
      const auto u = static_cast<std::uint32_t>(x);
      for (int s = 0; s < 32; s += 8) {
        h ^= (u >> s) & 0xffu;
        h *= 1099511628211ull;
      }
    }
    h ^= 0xffu;
    h *= 1099511628211ull;
  };
  mix(cov_off);
  mix(cov_idx);
  mix(covr_off);
  mix(covr_idx);
  return h;
}

std::uint64_t System::indexFingerprint() const {
  return fingerprintArrays(cov_off_, cov_idx_, covr_off_, covr_idx_);
}

void System::rebuildIndex() {
  buildIndex();
  invalidateDirtyLog();
}

void System::testOnlyCorruptIndex() {
  // Swap two differing covr entries: corrupts row contents while keeping
  // lengths and value ranges intact — exactly the shape of a missed delta.
  for (std::size_t i = 1; i < covr_idx_.size(); ++i) {
    if (covr_idx_[i] != covr_idx_[0]) {
      std::swap(covr_idx_[0], covr_idx_[i]);
      return;
    }
  }
  for (std::size_t i = 1; i < cov_idx_.size(); ++i) {
    if (cov_idx_[i] != cov_idx_[0]) {
      std::swap(cov_idx_[0], cov_idx_[i]);
      return;
    }
  }
}

void System::attachMetrics(obs::MetricsRegistry* m) {
  metrics_ = m;
  if (m == nullptr) {
    weight_evals_ = nullptr;
    well_covered_evals_ = nullptr;
    return;
  }
  weight_evals_ = &m->counter("core.weight_evals");
  well_covered_evals_ = &m->counter("core.well_covered_evals");
  m->counter("core.grid_queries").add(grid_queries_);
}

}  // namespace rfid::core
