#include "core/system.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

namespace rfid::core {

namespace {

std::uint64_t nextInstanceId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

System::System(std::vector<Reader> readers, std::vector<Tag> tags)
    : readers_(std::move(readers)), tags_(std::move(tags)),
      instance_id_(nextInstanceId()) {
  for (std::size_t i = 0; i < readers_.size(); ++i) {
    readers_[i].id = static_cast<int>(i);
    assert(readers_[i].valid() && "reader must satisfy 0 < gamma <= R");
  }
  for (std::size_t i = 0; i < tags_.size(); ++i) tags_[i].id = static_cast<int>(i);

  // Index tags once; coverage queries are disk queries around readers.
  double max_gamma = 1.0;
  for (const Reader& r : readers_) max_gamma = std::max(max_gamma, r.interrogation_radius);
  std::vector<geom::Vec2> tag_pos;
  tag_pos.reserve(tags_.size());
  for (const Tag& t : tags_) tag_pos.push_back(t.pos);
  const geom::SpatialGrid tag_index(tag_pos, max_gamma);

  // Build reader → tag coverage directly into the CSR arrays, then invert
  // by counting sort: iterating v ascending appends each tag's coverers in
  // ascending reader order, matching the per-list sort queryDisk provides
  // for tags.
  cov_off_.assign(readers_.size() + 1, 0);
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    // queryDisk appends (and sorts the appended tail), so the flat index
    // array is produced directly, one reader after another.
    tag_index.queryDisk(readers_[v].pos, readers_[v].interrogation_radius,
                        cov_idx_);
    ++grid_queries_;
    cov_off_[v + 1] = static_cast<int>(cov_idx_.size());
  }

  covr_off_.assign(tags_.size() + 1, 0);
  for (const int t : cov_idx_) ++covr_off_[static_cast<std::size_t>(t) + 1];
  for (std::size_t t = 0; t < tags_.size(); ++t) covr_off_[t + 1] += covr_off_[t];
  covr_idx_.resize(cov_idx_.size());
  std::vector<int> cursor(covr_off_.begin(), covr_off_.end() - 1);
  for (std::size_t v = 0; v < readers_.size(); ++v) {
    for (const int t : coverage(static_cast<int>(v))) {
      covr_idx_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(t)]++)] =
          static_cast<int>(v);
    }
  }

  read_.assign(tags_.size(), 0);
  initScratch(scratch_);
}

void System::initScratch(WeightScratch& scratch) const {
  scratch.count.assign(tags_.size(), 0);
  scratch.victim.assign(readers_.size(), 0);
}

bool System::isFeasible(std::span<const int> X) const {
  for (std::size_t i = 0; i < X.size(); ++i) {
    for (std::size_t j = i + 1; j < X.size(); ++j) {
      if (X[i] == X[j]) return false;  // duplicates are not a set
      if (!independent(X[i], X[j])) return false;
    }
  }
  return true;
}

void System::markRead(std::span<const int> tags) {
  for (const int t : tags) markRead(t);
}

void System::resetReads() { std::fill(read_.begin(), read_.end(), 0); }

int System::unreadCount() const {
  int n = 0;
  for (const char r : read_) n += (r == 0);
  return n;
}

int System::unreadCoverableCount() const {
  int n = 0;
  for (std::size_t t = 0; t < tags_.size(); ++t) {
    if (read_[t] == 0 && covr_off_[t + 1] > covr_off_[t]) ++n;
  }
  return n;
}

template <typename OnTag>
void System::forEachWellCovered(std::span<const int> X,
                                std::span<const int> jamming,
                                std::span<int> count, std::span<char> victim,
                                OnTag&& on_tag) const {
  // `jamming` readers radiate like members of X (passes 1 and 2) but never
  // read (pass 3) — the loud-failure semantics of the fault model.  The
  // common no-fault call passes an empty span and compiles to the original
  // three-pass evaluation.
  //
  // Pass 1: RTc victims — v_i inside some other active v_j's interference
  // disk reads nothing (Definition 1, second condition).  Note the
  // asymmetry: only R_j matters for whether v_i is a victim.
  const auto victimOf = [this, X, jamming](int vi) -> char {
    const Reader& a = reader(vi);
    for (const int vj : X) {
      if (vi == vj) continue;
      const double rj = reader(vj).interference_radius;
      if (geom::dist2(a.pos, reader(vj).pos) <= rj * rj) return 1;
    }
    for (const int vj : jamming) {
      if (vi == vj) continue;
      const double rj = reader(vj).interference_radius;
      if (geom::dist2(a.pos, reader(vj).pos) <= rj * rj) return 1;
    }
    return 0;
  };
  for (const int vi : X) {
    victim[static_cast<std::size_t>(vi)] = victimOf(vi);
  }
  // Pass 2: coverage multiplicity among all radiating readers (RRc counts
  // every active interrogation region, victim or not — a victim still
  // radiates, and so does a loud-failed reader).
  for (const int v : X) {
    for (const int t : coverage(v)) ++count[static_cast<std::size_t>(t)];
  }
  for (const int v : jamming) {
    for (const int t : coverage(v)) ++count[static_cast<std::size_t>(t)];
  }
  // Pass 3: a tag is well-covered iff it is unread, covered by exactly one
  // radiating reader, and that reader is a non-victim member of X.
  for (const int v : X) {
    if (victim[static_cast<std::size_t>(v)] != 0) continue;
    for (const int t : coverage(v)) {
      if (count[static_cast<std::size_t>(t)] == 1 && read_[static_cast<std::size_t>(t)] == 0) {
        on_tag(t);
      }
    }
  }
  // Pass 4: restore scratch.
  for (const int v : X) {
    for (const int t : coverage(v)) count[static_cast<std::size_t>(t)] = 0;
  }
  for (const int v : jamming) {
    for (const int t : coverage(v)) count[static_cast<std::size_t>(t)] = 0;
  }
}

std::vector<int> System::wellCoveredTags(std::span<const int> X) const {
  return wellCoveredTags(X, {}, scratch_);
}

std::vector<int> System::wellCoveredTags(std::span<const int> X,
                                         std::span<const int> jamming) const {
  return wellCoveredTags(X, jamming, scratch_);
}

std::vector<int> System::wellCoveredTags(std::span<const int> X,
                                         std::span<const int> jamming,
                                         WeightScratch& scratch) const {
  if (well_covered_evals_ != nullptr) well_covered_evals_->add(1);
  std::vector<int> out;
  forEachWellCovered(X, jamming, scratch.count, scratch.victim,
                     [&out](int t) { out.push_back(t); });
  std::sort(out.begin(), out.end());
  return out;
}

int System::weight(std::span<const int> X) const {
  return weight(X, scratch_);
}

int System::weight(std::span<const int> X, WeightScratch& scratch) const {
  if (weight_evals_ != nullptr) weight_evals_->add(1);
  int w = 0;
  forEachWellCovered(X, {}, scratch.count, scratch.victim, [&w](int) { ++w; });
  return w;
}

int System::singleWeight(int v) const {
  int w = 0;
  for (const int t : coverage(v)) w += (read_[static_cast<std::size_t>(t)] == 0);
  return w;
}

void System::attachMetrics(obs::MetricsRegistry* m) {
  metrics_ = m;
  if (m == nullptr) {
    weight_evals_ = nullptr;
    well_covered_evals_ = nullptr;
    return;
  }
  weight_evals_ = &m->counter("core.weight_evals");
  well_covered_evals_ = &m->counter("core.well_covered_evals");
  m->counter("core.grid_queries").add(grid_queries_);
}

}  // namespace rfid::core
