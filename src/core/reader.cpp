#include "core/reader.h"

// Reader is a plain value type; this TU exists so the module has a stable
// home for future out-of-line helpers and keeps the build graph uniform.
