#include "fault/channel_model.h"

#include "workload/rng.h"

namespace rfid::fault {

double ChannelModel::draw(std::uint64_t salt) {
  return hashU01(workload::splitmix64(
      workload::deriveSeed(plan_->seed(), "fault-channel", seq_) ^
      workload::splitmix64(salt)));
}

void ChannelModel::onSend(int from, int to, std::vector<int>& delays_out) {
  const LinkFaults& lf = plan_->link(from, to);
  ++seq_;  // one fate per send, consumed even on clean links
  if (lf.zero()) {
    delays_out.push_back(0);
    return;
  }
  if (lf.drop > 0.0 && draw(1) < lf.drop) return;  // whole send lost
  const int copies = 1 + (lf.dup > 0.0 && draw(2) < lf.dup ? 1 : 0);
  for (int c = 0; c < copies; ++c) {
    int extra = 0;
    if (lf.delay > 0.0 && lf.max_delay > 0 &&
        draw(3 + 2 * static_cast<std::uint64_t>(c)) < lf.delay) {
      extra = 1 + static_cast<int>(
                      draw(4 + 2 * static_cast<std::uint64_t>(c)) *
                      static_cast<double>(lf.max_delay));
      if (extra > lf.max_delay) extra = lf.max_delay;
    }
    delays_out.push_back(extra);
  }
}

}  // namespace rfid::fault
