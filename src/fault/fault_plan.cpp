#include "fault/fault_plan.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "workload/rng.h"

namespace rfid::fault {

double hashU01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void FaultPlan::addCrash(int reader, int start_slot, int end_slot, bool loud) {
  CrashInterval ci;
  ci.reader = reader;
  ci.start = start_slot;
  ci.end = end_slot < 0 ? CrashInterval::kForever : end_slot;
  ci.loud = loud;
  crashes_.push_back(ci);
}

void FaultPlan::setLink(int from, int to, const LinkFaults& lf) {
  link_overrides_[{from, to}] = lf;
}

void FaultPlan::setSlotMissRate(int slot, double p) {
  miss_overrides_[slot] = p;
}

bool FaultPlan::empty() const {
  return crashes_.empty() && link_default_.zero() && link_overrides_.empty() &&
         miss_default_ == 0.0 && miss_overrides_.empty();
}

bool FaultPlan::crashed(int reader, int slot) const {
  for (const CrashInterval& ci : crashes_) {
    if (ci.reader == reader && slot >= ci.start && slot < ci.end) return true;
  }
  return false;
}

bool FaultPlan::loud(int reader, int slot) const {
  for (const CrashInterval& ci : crashes_) {
    if (ci.reader == reader && ci.loud && slot >= ci.start && slot < ci.end) {
      return true;
    }
  }
  return false;
}

std::vector<int> FaultPlan::loudAt(int slot) const {
  std::vector<int> out;
  for (const CrashInterval& ci : crashes_) {
    if (ci.loud && slot >= ci.start && slot < ci.end) out.push_back(ci.reader);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool FaultPlan::permanentlyDead(int reader, int slot) const {
  // Dead at `slot` and at every later slot: some interval must cover
  // [slot, forever).  Intervals are few; scan for a forever interval that
  // has started, since finite intervals always recover.
  for (const CrashInterval& ci : crashes_) {
    if (ci.reader == reader && ci.end == CrashInterval::kForever &&
        slot >= ci.start) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::hasPermanentDeaths() const {
  for (const CrashInterval& ci : crashes_) {
    if (ci.end == CrashInterval::kForever) return true;
  }
  return false;
}

const LinkFaults& FaultPlan::link(int from, int to) const {
  const auto it = link_overrides_.find({from, to});
  return it != link_overrides_.end() ? it->second : link_default_;
}

bool FaultPlan::hasLinkFaults() const {
  if (!link_default_.zero()) return true;
  for (const auto& [key, lf] : link_overrides_) {
    if (!lf.zero()) return true;
  }
  return false;
}

double FaultPlan::missRate(int slot) const {
  const auto it = miss_overrides_.find(slot);
  return it != miss_overrides_.end() ? it->second : miss_default_;
}

bool FaultPlan::hasMissFaults() const {
  if (miss_default_ > 0.0) return true;
  for (const auto& [slot, p] : miss_overrides_) {
    if (p > 0.0) return true;
  }
  return false;
}

bool FaultPlan::drawMiss(int slot, int tag) const {
  const double p = missRate(slot);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const std::uint64_t site =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(slot)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  const std::uint64_t h = workload::splitmix64(
      workload::deriveSeed(seed_, "fault-miss") ^ workload::splitmix64(site));
  return hashU01(h) < p;
}

namespace {

/// Order-stable accumulator for the identity hash: every scripted quantity
/// is mixed as a 64-bit word through splitmix64 chaining, doubles by bit
/// pattern (the plan only ever compares for exact equality, so bit
/// patterns are the right identity).
struct HashAcc {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  void word(std::uint64_t v) { h = workload::splitmix64(h ^ v); }
  void real(double d) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof d);
    std::memcpy(&bits, &d, sizeof bits);
    word(bits);
  }
};

}  // namespace

std::uint64_t FaultPlan::fingerprint() const {
  if (empty()) return 0;
  HashAcc acc;
  acc.word(seed_);
  acc.word(crashes_.size());
  for (const CrashInterval& ci : crashes_) {
    acc.word(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ci.reader)));
    acc.word(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ci.start)));
    acc.word(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ci.end)));
    acc.word(ci.loud ? 1 : 0);
  }
  acc.real(link_default_.drop);
  acc.real(link_default_.dup);
  acc.real(link_default_.delay);
  acc.word(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(link_default_.max_delay)));
  acc.word(link_overrides_.size());
  for (const auto& [key, lf] : link_overrides_) {  // std::map: sorted, stable
    acc.word(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.first)));
    acc.word(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.second)));
    acc.real(lf.drop);
    acc.real(lf.dup);
    acc.real(lf.delay);
    acc.word(static_cast<std::uint64_t>(static_cast<std::uint32_t>(lf.max_delay)));
  }
  acc.real(miss_default_);
  acc.word(miss_overrides_.size());
  for (const auto& [slot, p] : miss_overrides_) {
    acc.word(static_cast<std::uint64_t>(static_cast<std::uint32_t>(slot)));
    acc.real(p);
  }
  // Reserve 0 as the empty-plan sentinel.
  return acc.h == 0 ? 1 : acc.h;
}

int FaultPlan::epochAt(int slot) const {
  int epoch = 0;
  for (const CrashInterval& ci : crashes_) {
    if (ci.start <= slot) ++epoch;
  }
  return epoch;
}

namespace {

bool fail(std::string* err, int line_no, const std::string& why) {
  if (err != nullptr) {
    *err = "line " + std::to_string(line_no) + ": " + why;
  }
  return false;
}

bool parseProb(std::istringstream& is, double& p) {
  return static_cast<bool>(is >> p) && p >= 0.0 && p <= 1.0;
}

/// Parses one spec line into `plan`; false (with `*err` set) on error.
bool parseLine(FaultPlan& plan, const std::string& line, int line_no,
               std::string* err) {
  std::istringstream is(line);
  std::string word;
  if (!(is >> word) || word[0] == '#') return true;  // blank or comment

  const auto trailing = [&is]() {
    std::string rest;
    return static_cast<bool>(is >> rest);
  };

  if (word == "seed") {
    std::uint64_t s = 0;
    if (!(is >> s) || trailing()) return fail(err, line_no, "usage: seed N");
    plan.setSeed(s);
    return true;
  }
  if (word == "crash") {
    int reader = -1, start = -1;
    std::string end_word, loud_word;
    if (!(is >> reader >> start >> end_word) || reader < 0 || start < 0) {
      return fail(err, line_no, "usage: crash READER START END|- [loud]");
    }
    int end = -1;
    if (end_word != "-") {
      try {
        end = std::stoi(end_word);
      } catch (...) {
        return fail(err, line_no, "crash END must be an integer or '-'");
      }
      if (end <= start) return fail(err, line_no, "crash needs END > START");
    }
    bool loud = false;
    if (is >> loud_word) {
      if (loud_word != "loud") {
        return fail(err, line_no, "unknown crash modifier: " + loud_word);
      }
      loud = true;
    }
    if (trailing()) return fail(err, line_no, "trailing tokens after crash");
    plan.addCrash(reader, start, end, loud);
    return true;
  }
  if (word == "drop" || word == "dup" || word == "delay") {
    // Global link defaults accumulate across lines.
    LinkFaults lf = plan.linkDefaults();
    double p = 0.0;
    if (!parseProb(is, p)) {
      return fail(err, line_no, word + " needs a probability in [0, 1]");
    }
    if (word == "drop") lf.drop = p;
    else if (word == "dup") lf.dup = p;
    else {
      int k = 0;
      if (!(is >> k) || k < 1) {
        return fail(err, line_no, "usage: delay P MAX_ROUNDS (MAX >= 1)");
      }
      lf.delay = p;
      lf.max_delay = k;
    }
    if (trailing()) return fail(err, line_no, "trailing tokens after " + word);
    plan.setLinkDefaults(lf);
    return true;
  }
  if (word == "link") {
    int from = -1, to = -1;
    std::string kind;
    if (!(is >> from >> to >> kind) || from < 0 || to < 0) {
      return fail(err, line_no, "usage: link FROM TO drop|dup|delay ...");
    }
    LinkFaults lf = plan.link(from, to);
    double p = 0.0;
    if (!parseProb(is, p)) {
      return fail(err, line_no, "link " + kind + " needs a probability");
    }
    if (kind == "drop") lf.drop = p;
    else if (kind == "dup") lf.dup = p;
    else if (kind == "delay") {
      int k = 0;
      if (!(is >> k) || k < 1) {
        return fail(err, line_no, "link delay needs MAX_ROUNDS >= 1");
      }
      lf.delay = p;
      lf.max_delay = k;
    } else {
      return fail(err, line_no, "unknown link fault: " + kind);
    }
    if (trailing()) return fail(err, line_no, "trailing tokens after link");
    plan.setLink(from, to, lf);
    return true;
  }
  if (word == "miss") {
    double p = 0.0;
    if (!parseProb(is, p) || trailing()) {
      return fail(err, line_no, "usage: miss P with P in [0, 1]");
    }
    plan.setMissRate(p);
    return true;
  }
  if (word == "miss-slot") {
    int slot = -1;
    double p = 0.0;
    if (!(is >> slot) || slot < 0 || !parseProb(is, p) || trailing()) {
      return fail(err, line_no, "usage: miss-slot SLOT P");
    }
    plan.setSlotMissRate(slot, p);
    return true;
  }
  return fail(err, line_no, "unknown directive: " + word);
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view text,
                                          std::string* err) {
  FaultPlan plan;
  std::istringstream is{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!parseLine(plan, line, line_no, err)) return std::nullopt;
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::loadFile(const std::string& path,
                                             std::string* err) {
  std::ifstream is(path);
  if (!is) {
    if (err != nullptr) *err = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str(), err);
}

}  // namespace rfid::fault
