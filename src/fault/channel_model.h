// channel_model.h — per-message fate decisions for dist::Network.
//
// A ChannelModel turns a FaultPlan's link probabilities and crash script
// into concrete deliveries: each send becomes zero or more copies, each
// with an extra delivery delay.  The network attaches one via
// Network::attachChannel(); detached networks pay nothing and behave
// bit-identically to the pre-fault simulator.
//
// Crash state is indexed by MCS time-slot, not network round: the MCS
// driver (or whoever owns the schedule) calls setSlot() as the schedule
// advances, and every protocol round inside that slot sees the same set of
// dead readers — a crashed reader neither executes nor receives.
//
// Determinism: fates hash (plan seed, monotone send sequence number).  The
// network is single-threaded and enqueues in a fixed order, so the same
// plan and the same traffic produce the same fates on every run and at any
// sweep thread count (models are per-run objects, never shared).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"

namespace rfid::fault {

class ChannelModel {
 public:
  /// `plan` must outlive the model.
  explicit ChannelModel(const FaultPlan& plan) : plan_(&plan) {}

  const FaultPlan& plan() const { return *plan_; }

  /// Current MCS time-slot; drives crash state for nodeDown().
  void setSlot(int slot) { slot_ = slot; }
  int slot() const { return slot_; }

  /// True when `node` is crashed in the current slot.  Down nodes do not
  /// run, do not send, and deliveries to them are discarded.
  bool nodeDown(int node) const { return plan_->crashed(node, slot_); }

  /// Decides the fate of one send from `from` to `to`: appends one entry
  /// per delivered copy, each the number of extra rounds beyond the normal
  /// one-round latency (0 = on time).  Appending nothing drops the send.
  void onSend(int from, int to, std::vector<int>& delays_out);

 private:
  double draw(std::uint64_t salt);

  const FaultPlan* plan_;
  int slot_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace rfid::fault
