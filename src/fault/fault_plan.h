// fault_plan.h — deterministic, seed-driven fault scripts (docs/faults.md).
//
// The paper's schedules assume ideal hardware: every reader stays up, every
// message of the §V-B substrate arrives, every activation slot executes.  A
// FaultPlan scripts the opposite — per-reader crash/recovery intervals
// (indexed by MCS time-slot), per-link message drop/duplicate/delay
// probabilities for dist::Network, and per-slot interrogation miss rates —
// so benches, tests, and the CLI can replay the exact same failure scenario.
//
// Everything stochastic is derived by hashing (plan seed, site), never by
// consuming a shared stream, so draws are independent of evaluation order:
// the same plan produces byte-identical fault.* metrics at any --jobs value
// (the PR-1 determinism discipline).
//
// A default-constructed plan is all-zero; consumers check empty() and skip
// the fault paths entirely, keeping no-fault runs bit-identical to the
// pre-fault library.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rfid::fault {

/// Per-link loss model.  Probabilities are independent per transmission:
/// `drop` loses the whole send, otherwise `dup` delivers one extra copy and
/// each delivered copy is deferred `1..max_delay` extra rounds with
/// probability `delay`.
struct LinkFaults {
  double drop = 0.0;
  double dup = 0.0;
  double delay = 0.0;
  int max_delay = 0;

  bool zero() const {
    return drop == 0.0 && dup == 0.0 && (delay == 0.0 || max_delay == 0);
  }
};

/// A reader outage: crashed for slots in [start, end).  `end == kForever`
/// (spelled `-` in the text spec) never recovers.  A "loud" failure keeps
/// the transmitter stuck on: the reader still jams its interference disk
/// while crashed, it just reads nothing.
struct CrashInterval {
  static constexpr int kForever = std::numeric_limits<int>::max();

  int reader = -1;
  int start = 0;
  int end = kForever;
  bool loud = false;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // ---- programmatic construction ----

  void setSeed(std::uint64_t seed) { seed_ = seed; }
  /// `end_slot < 0` means forever.
  void addCrash(int reader, int start_slot, int end_slot, bool loud = false);
  void setLinkDefaults(const LinkFaults& lf) { link_default_ = lf; }
  /// Directed override for messages from `from` to `to`.
  void setLink(int from, int to, const LinkFaults& lf);
  void setMissRate(double p) { miss_default_ = p; }
  void setSlotMissRate(int slot, double p);

  // ---- text spec (grammar in docs/faults.md) ----
  //
  //   seed N
  //   crash READER START END|- [loud]
  //   drop P | dup P | delay P MAX_ROUNDS
  //   link FROM TO drop P | link FROM TO dup P | link FROM TO delay P MAX
  //   miss P | miss-slot SLOT P
  //
  // '#' starts a comment; blank lines are ignored.  Returns std::nullopt on
  // any malformed or out-of-range line and names it in `*err`.
  static std::optional<FaultPlan> parse(std::string_view text,
                                        std::string* err = nullptr);
  static std::optional<FaultPlan> loadFile(const std::string& path,
                                           std::string* err = nullptr);

  // ---- queries ----

  std::uint64_t seed() const { return seed_; }
  /// True for the all-zero plan — consumers skip every fault path, so a
  /// run with an empty plan is bit-identical to a run with no plan.
  bool empty() const;
  const std::vector<CrashInterval>& crashes() const { return crashes_; }

  bool crashed(int reader, int slot) const;
  /// Crashed at `slot` by an interval that fails loud.
  bool loud(int reader, int slot) const;
  /// All readers loud at `slot`, ascending and deduplicated — the jamming
  /// set the MCS referee charges against every live proposal.  Reader ids
  /// come straight from the plan; callers bound them to their deployment.
  std::vector<int> loudAt(int slot) const;
  /// Crashed at `slot` and never recovers afterwards: the reader's tags are
  /// orphaned from this slot on unless another reader covers them.
  bool permanentlyDead(int reader, int slot) const;
  bool hasPermanentDeaths() const;

  const LinkFaults& link(int from, int to) const;
  const LinkFaults& linkDefaults() const { return link_default_; }
  bool hasLinkFaults() const;
  double missRate(int slot) const;
  bool hasMissFaults() const;

  /// Deterministic interrogation-miss draw for (slot, tag): Bernoulli with
  /// missRate(slot), hashed from the plan seed — order-independent.
  bool drawMiss(int slot, int tag) const;

  /// Canonical identity hash over everything the plan scripts (seed, crash
  /// intervals, link faults, miss rates).  Recorded in checkpoint journal
  /// headers (ckpt/journal.h) so a resume against a different fault plan
  /// fails closed instead of replaying a mismatched failure scenario.
  /// The empty plan fingerprints to 0.
  std::uint64_t fingerprint() const;

  /// The plan epoch at `slot`: how many scripted crash intervals have
  /// started by then.  Monotone in the slot, cheap to recompute, and
  /// captured per journal record — a replay that disagrees on the epoch has
  /// drifted from the scripted failure timeline and fails closed.
  int epochAt(int slot) const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<CrashInterval> crashes_;
  LinkFaults link_default_;
  std::map<std::pair<int, int>, LinkFaults> link_overrides_;
  double miss_default_ = 0.0;
  std::map<int, double> miss_overrides_;
};

/// Maps a hash value to [0, 1) with 53-bit resolution; shared by the plan's
/// draws and the channel model so all fault randomness lives on one idiom.
double hashU01(std::uint64_t h);

}  // namespace rfid::fault
