// service.h — the multi-tenant scheduler service (ROADMAP item 2).
//
// A Service owns a bounded AdmissionQueue, a fixed pool of worker threads,
// and one watchdog thread.  Requests enter through submit() (typically fed
// by a RequestStreamParser), run as checkpointed MCS solves on the pool,
// and resolve their Ticket with a structured Response.  Robustness is
// layered (docs/service.md):
//
//   admission   bounded queue + deadline-aware checks + shed policies →
//               overload resolves to structured rejections, never growth;
//   isolation   every attempt runs under its own ckpt::RunBudget whose
//               CancelToken is threaded into the driver *and* the
//               scheduler, so a cancel lands at the next slot boundary or
//               search-loop poll;
//   watchdog    a supervisor thread cancels requests past their deadline
//               and requests whose McsOptions::progress heartbeat has not
//               advanced within the stall window, then recycles the worker
//               (the thread finishes the cancelled job, exits, and is
//               replaced by a fresh one);
//   retry       transient failures (watchdog stall, checkpoint-integrity
//               error) re-run with exponential backoff + decorrelated
//               jitter, deterministic in (request id, attempt);
//   drain       close() + drain() stop admission, bounce the queue, give
//               in-flight work a drain deadline to finish or checkpoint,
//               and report hung workers instead of hanging the exit.
//
// Thread-safety: submit() may be called from any number of session
// threads; drain() from one controller thread.  The shared MetricsRegistry
// and TraceSink are thread-safe by contract; a CostLedger is not, so the
// service never shares one across workers.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/budget.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/queue.h"
#include "service/request.h"

namespace rfid::service {

struct ServiceOptions {
  int workers = 2;
  std::size_t queue_capacity = 16;
  ShedPolicy shed = ShedPolicy::kRejectNewest;
  /// Watchdog scan period.
  int watchdog_period_ms = 5;
  /// Cancel a request whose heartbeat has not advanced for this long.
  /// <= 0 disables stall detection (deadline enforcement stays on).
  int stall_window_ms = 500;
  /// Retry budget for requests that do not set `retries` themselves.
  int default_retries = 1;
  /// Backoff between retry attempts: attempt n sleeps
  /// min(cap, base + u01·(3·prev − base)) ms (decorrelated jitter), with
  /// u01 deterministic in (request id, attempt).
  int backoff_base_ms = 5;
  int backoff_cap_ms = 100;
  /// Directory for per-request slot journals (`<dir>/<id>.journal`).
  /// Empty disables checkpointing service-wide.
  std::string checkpoint_dir;
  int snapshot_every = 16;
  /// Service-wide fault plan applied to requests without their own.
  const fault::FaultPlan* default_faults = nullptr;
  /// Shared observability sinks (both optional, both thread-safe).
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
  /// Worker threads *inside* each solver (parallel shifts / components).
  /// Kept at 1 by default: the pool parallelizes across requests.
  int solver_threads = 1;
  /// Print wall-clock Response fields as 0 (deterministic protocols).
  bool mask_wall = false;
};

/// What drain() observed (docs/service.md "Drain semantics").
struct DrainReport {
  std::int64_t bounced = 0;        // queued jobs rejected with kDraining
  std::int64_t completed = 0;      // in-flight finished within the deadline
  std::int64_t checkpointed = 0;   // in-flight cancelled, resumable journal
  std::int64_t cancelled = 0;      // in-flight cancelled, no journal
  int hung_workers = 0;            // threads that never returned
  bool clean() const { return hung_workers == 0; }
};

class Service {
 public:
  explicit Service(ServiceOptions opt);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Starts the worker pool and the watchdog.  Call once.
  void start();

  /// Admission: either queues the spec (returns its Ticket) or resolves
  /// the rejection into `*reject` and returns nullptr.  Never blocks on a
  /// full queue.
  std::shared_ptr<Ticket> submit(RequestSpec spec, Response* reject);

  /// Blocks until the queue is empty and no request is in flight, or
  /// `abort()` returns true (polled every few ms).  The EOF path of a
  /// stdin-fed daemon: all submitted work resolves, then the caller
  /// drains.
  template <typename Pred>
  void waitIdle(Pred abort) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(idle_mu_);
        if (idle_cv_.wait_for(lk, std::chrono::milliseconds(10),
                              [&] { return idleLocked(); })) {
          return;
        }
      }
      if (abort()) return;
    }
  }

  /// Graceful shutdown: closes admission, bounces the queue, cancels
  /// in-flight work that outlives `drain_deadline_ms` (0 = cancel
  /// immediately), joins what returns, and counts what does not.  The
  /// service is unusable afterwards.
  DrainReport drain(int drain_deadline_ms);

  std::size_t queueDepth() const { return queue_.depth(); }
  int inflightCount() const {
    return inflight_n_.load(std::memory_order_relaxed);
  }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  const ServiceOptions& options() const { return opt_; }

  /// Estimated wait for a newly queued request (EMA service time ×
  /// backlog ÷ workers), the quantity admission and Retry-After use.
  double estimatedWaitMs() const;

 private:
  /// One request currently executing on a worker, registered for the
  /// watchdog.  `progress` is the MCS heartbeat; `cancel_reason` is a
  /// one-shot claim (0 none, 1 deadline, 2 stall, 3 drain) so exactly one
  /// canceller classifies the outcome.
  struct Inflight {
    Job* job = nullptr;
    int slot = -1;  // worker slot index, for recycle marking
    ckpt::RunBudget budget;
    std::atomic<std::int64_t> progress{0};
    std::int64_t last_progress = 0;
    std::chrono::steady_clock::time_point last_change{};
    std::atomic<int> cancel_reason{0};
  };

  struct WorkerSlot {
    std::thread th;
    std::atomic<bool> busy{false};
    std::atomic<bool> recycle{false};   // watchdog: replace after this job
    std::atomic<bool> returned{false};  // thread exited its loop
  };

  void workerLoop(int slot);
  void watchdogLoop();
  /// Runs one job to its terminal Response (including retries).
  Response runJob(Job& job, int slot);
  /// One execution attempt; returns true when `out` is terminal (no retry).
  bool runAttempt(Job& job, Inflight& inf, Response* out);
  void finishJob(const Job& job, const Response& r);
  std::string journalPath(const RequestSpec& spec) const;
  bool idleLocked() const;
  void noteIdleProgress();

  ServiceOptions opt_;
  AdmissionQueue queue_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::thread watchdog_;
  std::atomic<bool> stop_watchdog_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<int> inflight_n_{0};

  // Drain accounting, bumped by workers finishing while draining_ is set.
  std::atomic<std::int64_t> drain_completed_{0};
  std::atomic<std::int64_t> drain_checkpointed_{0};
  std::atomic<std::int64_t> drain_cancelled_{0};

  mutable std::mutex inflight_mu_;
  std::list<Inflight*> inflight_;

  mutable std::mutex ema_mu_;
  double ema_service_ms_ = 50.0;  // prior until real completions arrive
  bool ema_seeded_ = false;

  mutable std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::atomic<std::int64_t> latency_p99_x1000_{0};
};

}  // namespace rfid::service
