#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "ckpt/mcs_ckpt.h"
#include "distributed/colorwave.h"
#include "distributed/growth_distributed.h"
#include "fault/channel_model.h"
#include "graph/interference_graph.h"
#include "obs/timer.h"
#include "sched/channels.h"
#include "sched/exact.h"
#include "sched/growth.h"
#include "sched/hill_climbing.h"
#include "sched/mcs.h"
#include "sched/ptas.h"
#include "workload/rng.h"
#include "workload/scenario.h"

namespace rfid::service {

namespace {

using Clock = std::chrono::steady_clock;

double elapsedMs(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// FNV-1a — folds a request id into the seed-derivation domain so backoff
/// jitter is deterministic in (id, attempt) and uncorrelated across ids.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Sleeps up to `ms` in 1 ms steps, returning early (false) as soon as
/// `abort()` turns true.  The only sleep primitive in the worker path, so
/// every wait in the service is cancellable.
template <typename Pred>
bool interruptibleSleep(int ms, Pred abort) {
  const auto until = Clock::now() + std::chrono::milliseconds(ms);
  while (Clock::now() < until) {
    if (abort()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return !abort();
}

workload::Scenario scenarioFor(const RequestSpec& spec) {
  workload::Scenario sc = workload::paperScenario(spec.lambda_R, spec.lambda_r);
  sc.deploy.num_readers = spec.readers;
  sc.deploy.num_tags = spec.tags;
  sc.deploy.region_side = spec.side;
  if (spec.layout == "clusters") sc.layout = workload::Layout::kClusteredTags;
  else if (spec.layout == "aisles") sc.layout = workload::Layout::kAisles;
  else if (spec.layout == "grid") sc.layout = workload::Layout::kGridReaders;
  return sc;
}

/// Mirrors the rfidsched_cli factory; the parser has already validated
/// `spec.algo`, so an unknown name here is a programming error and falls
/// back to alg2.
std::unique_ptr<sched::OneShotScheduler> makeScheduler(
    const RequestSpec& spec, const graph::InterferenceGraph& g,
    const core::System& sys, int threads) {
  if (spec.algo == "alg1") {
    sched::PtasOptions o;
    o.k = spec.k;
    o.num_threads = threads;
    return std::make_unique<sched::PtasScheduler>(o);
  }
  if (spec.algo == "alg3") {
    dist::DistributedGrowthOptions o;
    o.rho = spec.rho;
    return std::make_unique<dist::GrowthDistributedScheduler>(g, o);
  }
  if (spec.algo == "ghc") {
    return std::make_unique<sched::HillClimbingScheduler>(true);
  }
  if (spec.algo == "ca") {
    return std::make_unique<dist::ColorwaveScheduler>(sys, spec.seed);
  }
  if (spec.algo == "exact") {
    return std::make_unique<sched::ExactScheduler>();
  }
  if (spec.algo == "mc") {
    return std::make_unique<sched::MultiChannelScheduler>(
        sched::ChannelOptions{spec.channels});
  }
  sched::GrowthOptions o;
  o.rho = spec.rho;
  o.num_threads = threads;
  return std::make_unique<sched::GrowthScheduler>(g, o);
}

/// Wraps a scheduler with a cancellable sleep before every schedule() call
/// — the `pace-ms` chaos knob.  The heartbeat still advances each slot
/// (the driver bumps it before calling us), so a paced request is *slow but
/// live*: the watchdog must not flag it, and drain must checkpoint it.
class PacedScheduler : public sched::OneShotScheduler {
 public:
  PacedScheduler(std::unique_ptr<sched::OneShotScheduler> inner, int pace_ms,
                 const ckpt::CancelToken* token)
      : inner_(std::move(inner)), pace_ms_(pace_ms), token_(token) {}

  std::string name() const override { return inner_->name(); }

  sched::OneShotResult schedule(const core::System& sys) override {
    interruptibleSleep(pace_ms_, [&] {
      return token_ != nullptr && token_->cancelled();
    });
    return inner_->schedule(sys);
  }

  void attachChannel(fault::ChannelModel* c) override {
    inner_->attachChannel(c);
  }
  std::uint64_t stateFingerprint() const override {
    return inner_->stateFingerprint();
  }

  sched::OneShotScheduler* inner() { return inner_.get(); }

 private:
  std::unique_ptr<sched::OneShotScheduler> inner_;
  int pace_ms_;
  const ckpt::CancelToken* token_;
};

}  // namespace

Service::Service(ServiceOptions opt)
    : opt_(std::move(opt)),
      queue_(opt_.queue_capacity, opt_.shed) {
  if (opt_.workers < 1) opt_.workers = 1;
  if (opt_.watchdog_period_ms < 1) opt_.watchdog_period_ms = 1;
  if (opt_.backoff_base_ms < 1) opt_.backoff_base_ms = 1;
  if (opt_.backoff_cap_ms < opt_.backoff_base_ms) {
    opt_.backoff_cap_ms = opt_.backoff_base_ms;
  }
}

Service::~Service() {
  if (!drained_.load(std::memory_order_relaxed)) drain(0);
}

void Service::start() {
  slots_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
    slots_.back()->th = std::thread([this, i] { workerLoop(i); });
  }
  watchdog_ = std::thread([this] { watchdogLoop(); });
}

double Service::estimatedWaitMs() const {
  double ema = 0.0;
  {
    std::lock_guard<std::mutex> lk(ema_mu_);
    ema = ema_service_ms_;
  }
  const double backlog = static_cast<double>(queue_.depth()) +
                         static_cast<double>(inflight_n_.load());
  return ema * backlog / static_cast<double>(opt_.workers);
}

std::shared_ptr<Ticket> Service::submit(RequestSpec spec, Response* reject) {
  auto* m = opt_.metrics;
  const auto bump = [m](std::string_view name) {
    if (m != nullptr) m->counter(name).add(1);
  };

  Job job;
  job.spec = std::move(spec);
  job.ticket = std::make_shared<Ticket>();
  job.submitted = Clock::now();
  if (job.spec.deadline_ms > 0) {
    job.deadline = job.submitted + std::chrono::milliseconds(job.spec.deadline_ms);
    job.has_deadline = true;
  }
  auto ticket = job.ticket;
  const std::string id = job.spec.id;

  const double est_wait = estimatedWaitMs();
  Admit a = queue_.push(std::move(job), est_wait);

  // Evictions first: reject-largest may bounce an already-queued tenant.
  for (Job& ev : a.evicted) {
    Response r;
    r.id = ev.spec.id;
    r.status = Status::kRejected;
    r.code = Code::kShed;
    r.detail = "evicted by reject-largest shedding";
    r.retry_after_ms = a.retry_after_ms > 0 ? a.retry_after_ms : 1;
    bump("svc.shed");
    bump("svc.rejected");
    ev.ticket->complete(std::move(r));
  }

  if (!a.admitted()) {
    *reject = Response{};
    reject->id = id;
    reject->status = Status::kRejected;
    reject->code = a.code;
    reject->retry_after_ms = a.retry_after_ms;
    bump("svc.rejected");
    switch (a.code) {
      case Code::kQueueFull:
        reject->detail = "queue at capacity (" +
                         std::string(shedPolicyName(opt_.shed)) + ")";
        bump("svc.rejected_queue_full");
        break;
      case Code::kShed:
        reject->detail = "largest deployment in an overloaded queue";
        bump("svc.shed");
        break;
      case Code::kDeadlineUnmeetable:
        reject->detail = "estimated queue wait exceeds the deadline";
        bump("svc.rejected_deadline");
        break;
      case Code::kDraining:
        reject->detail = "service is draining";
        bump("svc.rejected_draining");
        break;
      default:
        reject->detail = "admission refused";
        break;
    }
    return nullptr;
  }

  bump("svc.admitted");
  if (m != nullptr) {
    m->gauge("svc.queue_depth").set(static_cast<double>(queue_.depth()));
  }
  return ticket;
}

std::string Service::journalPath(const RequestSpec& spec) const {
  return opt_.checkpoint_dir + "/" + spec.id + ".journal";
}

bool Service::idleLocked() const {
  return queue_.depth() == 0 && inflight_n_.load(std::memory_order_relaxed) == 0;
}

void Service::noteIdleProgress() {
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
  }
  idle_cv_.notify_all();
}

void Service::workerLoop(int slot) {
  WorkerSlot& me = *slots_[static_cast<std::size_t>(slot)];
  for (;;) {
    Job job;
    if (!queue_.pop(&job)) break;
    me.busy.store(true, std::memory_order_relaxed);
    inflight_n_.fetch_add(1, std::memory_order_relaxed);
    Response r = runJob(job, slot);
    finishJob(job, r);
    inflight_n_.fetch_sub(1, std::memory_order_relaxed);
    me.busy.store(false, std::memory_order_relaxed);
    noteIdleProgress();
    // A watchdog-marked worker retires after finishing the cancelled job;
    // the watchdog joins it and spawns a fresh thread on this slot.
    if (me.recycle.load(std::memory_order_relaxed)) break;
  }
  me.returned.store(true, std::memory_order_release);
  noteIdleProgress();
}

bool Service::runAttempt(Job& job, Inflight& inf, Response* out) {
  const RequestSpec& spec = job.spec;
  *out = Response{};
  out->id = spec.id;

  // Deadline pre-check: an attempt that starts past the deadline (queue
  // wait, prior attempts) is cancelled before any work.
  if (job.has_deadline) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        job.deadline - Clock::now());
    if (remaining.count() <= 0) {
      out->status = Status::kCancelled;
      out->code = Code::kDeadline;
      out->detail = "deadline expired before the attempt started";
      return true;
    }
    inf.budget.setDeadline(remaining);
  }
  if (spec.max_slots > 0) inf.budget.setSlotCap(spec.max_slots);
  const ckpt::CancelToken& token = inf.budget.token();

  // Chaos knob: wedge the first attempt without advancing the heartbeat —
  // exactly what the watchdog's stall detector exists to catch.  Later
  // attempts skip the hang so a stall-cancelled request demonstrably
  // recovers through the retry path.
  if (spec.hang_ms > 0 && job.attempts <= 1) {
    interruptibleSleep(spec.hang_ms, [&] { return token.cancelled(); });
  }

  if (!token.cancelled()) {
    workload::Scenario sc = scenarioFor(spec);
    core::System sys = workload::makeSystem(sc, spec.seed);
    const graph::InterferenceGraph g(sys);

    auto inner = makeScheduler(spec, g, sys, opt_.solver_threads);
    inner->attachMetrics(opt_.metrics);
    inner->attachTrace(opt_.trace);
    inner->attachCancel(&token);

    const fault::FaultPlan* plan =
        spec.has_faults ? &spec.faults : opt_.default_faults;
    std::unique_ptr<fault::ChannelModel> channel;
    if (plan != nullptr && !plan->empty()) {
      channel = std::make_unique<fault::ChannelModel>(*plan);
      inner->attachChannel(channel.get());
    }

    sched::OneShotScheduler* scheduler = inner.get();
    std::unique_ptr<PacedScheduler> paced;
    if (spec.pace_ms > 0) {
      paced = std::make_unique<PacedScheduler>(std::move(inner), spec.pace_ms,
                                               &token);
      scheduler = paced.get();
    }

    sched::McsOptions mcs_opt;
    mcs_opt.metrics = opt_.metrics;
    mcs_opt.trace = opt_.trace;
    mcs_opt.budget = &inf.budget;
    mcs_opt.progress = &inf.progress;
    if (plan != nullptr && !plan->empty()) {
      mcs_opt.faults = plan;
      mcs_opt.channel = channel.get();
    }

    const bool journaled = spec.checkpoint && !opt_.checkpoint_dir.empty();
    ckpt::CheckpointSetup setup;
    if (journaled) {
      setup.path = journalPath(spec);
      setup.snapshot_every = opt_.snapshot_every;
      // auto_resume: a retry (or a resubmission after a drain) picks the
      // committed prefix back up instead of re-solving from slot 0.
      setup.auto_resume = true;
      setup.seed = spec.seed;
    }

    const ckpt::CheckpointedRun run =
        ckpt::runMcsCheckpointed(sys, *scheduler, mcs_opt, setup);

    if (!run.ok) {
      // Fail closed, then clear the way: a corrupt or mismatched journal is
      // wiped so the retry starts from a clean slate.
      if (journaled) {
        std::remove(setup.path.c_str());
        std::remove((setup.path + ".snap").c_str());
      }
      out->status = Status::kFailed;
      out->code = Code::kIntegrity;
      out->detail = run.error;
      return false;  // retryable
    }

    const sched::McsResult& res = run.result;
    out->slots = res.slots;
    out->tags_read = res.tags_read;
    out->completed = res.completed;
    out->resumable = journaled && res.slots > 0;

    if (!res.interrupted) {
      out->status = Status::kOk;
      // The run is done; its journal has served its purpose (and would
      // otherwise make a future same-id submission replay a finished run).
      if (journaled) {
        std::remove(setup.path.c_str());
        std::remove((setup.path + ".snap").c_str());
      }
      out->resumable = false;
      return true;
    }

    if (res.stop == sched::McsStop::kSlotCap) {
      // The client asked for a bounded run; the cap firing is the contract,
      // not a failure.  The journal stays for a follow-up resume.
      out->status = Status::kOk;
      return true;
    }
  }

  // Cancelled (either mid-solve or during the hang): classify by who
  // claimed the cancellation.
  const int reason = inf.cancel_reason.load(std::memory_order_relaxed);
  out->status = Status::kCancelled;
  switch (reason) {
    case 2:
      out->code = Code::kStalled;
      out->detail = "watchdog: no slot progress within the stall window";
      return false;  // retryable
    case 3:
      out->code = Code::kDraining;
      out->detail = "cancelled by drain";
      return true;
    case 1:
    default:
      out->code = Code::kDeadline;
      out->detail = "deadline expired mid-run";
      return true;
  }
}

Response Service::runJob(Job& job, int slot) {
  auto* m = opt_.metrics;
  const auto start = Clock::now();
  const double queue_wait_ms = elapsedMs(job.submitted, start);
  if (m != nullptr) m->histogram("svc.queue_wait_ms").record(queue_wait_ms);

  obs::ScopedTimer req_span(m, "svc.request_us", opt_.trace,
                            "svc.request:" + job.spec.id);

  const int max_retries =
      job.spec.retries >= 0 ? job.spec.retries : opt_.default_retries;
  int prev_backoff_ms = opt_.backoff_base_ms;

  Response r;
  for (int attempt = 1;; ++attempt) {
    job.attempts = attempt;

    Inflight inf;
    inf.job = &job;
    inf.slot = slot;
    inf.last_change = Clock::now();
    {
      std::lock_guard<std::mutex> lk(inflight_mu_);
      inflight_.push_back(&inf);
    }
    if (m != nullptr) {
      m->gauge("svc.inflight").set(static_cast<double>(inflight_n_.load()));
    }

    const bool terminal = runAttempt(job, inf, &r);

    {
      std::lock_guard<std::mutex> lk(inflight_mu_);
      inflight_.remove(&inf);
    }
    r.attempts = attempt;

    if (terminal || !retryable(r.code) || attempt > max_retries) break;
    if (draining_.load(std::memory_order_relaxed)) break;

    // Decorrelated jitter: sleep ~ U(base, 3·prev), capped; deterministic
    // in (request id, attempt) so soak logs replay identically.
    const double u = fault::hashU01(
        workload::deriveSeed(fnv1a(job.spec.id), "svc.backoff",
                             static_cast<std::uint64_t>(attempt)));
    const double lo = static_cast<double>(opt_.backoff_base_ms);
    const double hi = static_cast<double>(prev_backoff_ms) * 3.0;
    int backoff_ms = static_cast<int>(lo + u * (hi > lo ? hi - lo : 0.0));
    backoff_ms = std::min(backoff_ms, opt_.backoff_cap_ms);
    if (job.has_deadline) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          job.deadline - Clock::now());
      if (remaining.count() <= backoff_ms) break;  // no room for another try
    }
    if (m != nullptr) m->counter("svc.retries").add(1);
    prev_backoff_ms = backoff_ms;
    if (!interruptibleSleep(backoff_ms, [&] {
          return draining_.load(std::memory_order_relaxed);
        })) {
      break;
    }
  }

  const auto end = Clock::now();
  r.queue_wait_ms = queue_wait_ms;
  r.latency_ms = elapsedMs(job.submitted, end);
  req_span.arg("attempts", static_cast<double>(r.attempts));
  req_span.arg("slots", static_cast<double>(r.slots));
  req_span.arg("ok", r.status == Status::kOk ? 1.0 : 0.0);
  req_span.stop();

  if (m != nullptr) {
    m->histogram("svc.latency_ms").record(r.latency_ms);
    m->gauge("svc.latency_p99_ms")
        .set(m->histogram("svc.latency_ms").percentile(99));
    switch (r.status) {
      case Status::kOk: m->counter("svc.completed").add(1); break;
      case Status::kCancelled: m->counter("svc.cancelled").add(1); break;
      case Status::kFailed: m->counter("svc.failed").add(1); break;
      case Status::kRejected: break;  // accounted at admission
    }
    m->gauge("svc.queue_depth").set(static_cast<double>(queue_.depth()));
  }

  // Wait-estimate EMA over observed *service* time (latency minus queue
  // wait) — what one more queued request costs a worker.
  {
    const double service_ms = r.latency_ms - r.queue_wait_ms;
    std::lock_guard<std::mutex> lk(ema_mu_);
    if (!ema_seeded_) {
      ema_service_ms_ = service_ms;
      ema_seeded_ = true;
    } else {
      ema_service_ms_ = 0.8 * ema_service_ms_ + 0.2 * service_ms;
    }
  }

  if (draining_.load(std::memory_order_relaxed)) {
    if (r.status == Status::kOk) {
      drain_completed_.fetch_add(1, std::memory_order_relaxed);
    } else if (r.resumable) {
      drain_checkpointed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      drain_cancelled_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return r;
}

void Service::finishJob(const Job& job, const Response& r) {
  job.ticket->complete(r);
}

void Service::watchdogLoop() {
  auto* m = opt_.metrics;
  while (!stop_watchdog_.load(std::memory_order_relaxed)) {
    const auto now = Clock::now();
    {
      std::lock_guard<std::mutex> lk(inflight_mu_);
      for (Inflight* inf : inflight_) {
        // Deadline enforcement: the budget's own deadline also fires at
        // slot boundaries, but a request wedged *inside* a schedule() call
        // never reaches one — the watchdog's explicit cancel does not wait.
        if (inf->job->has_deadline && now >= inf->job->deadline) {
          int expect = 0;
          if (inf->cancel_reason.compare_exchange_strong(
                  expect, 1, std::memory_order_relaxed)) {
            inf->budget.token().cancel();
            if (m != nullptr) m->counter("svc.watchdog_cancels").add(1);
          }
          continue;
        }
        // Stall detection on the MCS heartbeat.
        const std::int64_t cur = inf->progress.load(std::memory_order_relaxed);
        if (cur != inf->last_progress) {
          inf->last_progress = cur;
          inf->last_change = now;
        } else if (opt_.stall_window_ms > 0 &&
                   now - inf->last_change >=
                       std::chrono::milliseconds(opt_.stall_window_ms)) {
          int expect = 0;
          if (inf->cancel_reason.compare_exchange_strong(
                  expect, 2, std::memory_order_relaxed)) {
            inf->budget.token().cancel();
            if (inf->slot >= 0) {
              slots_[static_cast<std::size_t>(inf->slot)]->recycle.store(
                  true, std::memory_order_relaxed);
            }
            if (m != nullptr) {
              m->counter("svc.watchdog_stalls").add(1);
              m->counter("svc.watchdog_cancels").add(1);
            }
          }
        }
      }
    }
    // Recycle retired workers: join the returned thread, spawn a fresh one
    // on the same slot.  (A thread that never returns is left alone here;
    // drain() accounts it as hung.)
    if (!draining_.load(std::memory_order_relaxed)) {
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        WorkerSlot& slot = *slots_[i];
        if (slot.recycle.load(std::memory_order_relaxed) &&
            slot.returned.load(std::memory_order_acquire)) {
          slot.th.join();
          slot.recycle.store(false, std::memory_order_relaxed);
          slot.returned.store(false, std::memory_order_relaxed);
          const int idx = static_cast<int>(i);
          slot.th = std::thread([this, idx] { workerLoop(idx); });
          if (m != nullptr) m->counter("svc.workers_recycled").add(1);
        }
      }
    }
    if (m != nullptr) {
      m->gauge("svc.queue_depth").set(static_cast<double>(queue_.depth()));
      m->gauge("svc.inflight").set(static_cast<double>(inflight_n_.load()));
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt_.watchdog_period_ms));
  }
}

DrainReport Service::drain(int drain_deadline_ms) {
  DrainReport rep;
  if (drained_.exchange(true)) return rep;
  auto* m = opt_.metrics;

  draining_.store(true, std::memory_order_relaxed);
  queue_.close();

  // Bounce everything still queued: drain admits nothing and starts nothing.
  for (Job& job : queue_.drainPending()) {
    Response r;
    r.id = job.spec.id;
    r.status = Status::kRejected;
    r.code = Code::kDraining;
    r.detail = "service is draining";
    r.retry_after_ms = 1;
    if (m != nullptr) {
      m->counter("svc.rejected").add(1);
      m->counter("svc.rejected_draining").add(1);
    }
    job.ticket->complete(std::move(r));
    ++rep.bounced;
  }

  // Give in-flight work the drain deadline to finish (or checkpoint on its
  // own terms), then cancel the rest.
  const auto cancel_at = Clock::now() + std::chrono::milliseconds(
                                            std::max(0, drain_deadline_ms));
  while (inflight_n_.load(std::memory_order_relaxed) > 0 &&
         Clock::now() < cancel_at) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    for (Inflight* inf : inflight_) {
      int expect = 0;
      inf->cancel_reason.compare_exchange_strong(expect, 3,
                                                 std::memory_order_relaxed);
      inf->budget.token().cancel();
    }
  }

  // Grace window for the cancellations to land at the next slot boundary /
  // token poll, then join what returned and count what did not.
  const auto join_by = Clock::now() + std::chrono::milliseconds(
                                          std::max(250, drain_deadline_ms));
  for (;;) {
    bool all_returned = true;
    for (auto& slot : slots_) {
      if (slot->th.joinable() &&
          !slot->returned.load(std::memory_order_acquire)) {
        all_returned = false;
      }
    }
    if (all_returned || Clock::now() >= join_by) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& slot : slots_) {
    if (!slot->th.joinable()) continue;
    if (slot->returned.load(std::memory_order_acquire)) {
      slot->th.join();
    } else {
      // A worker wedged beyond cooperative cancellation: threads cannot be
      // killed portably, so it is detached and reported.  The caller exits
      // with the "unclean drain" code and the OS reclaims it.
      slot->th.detach();
      ++rep.hung_workers;
      if (m != nullptr) m->counter("svc.hung_workers").add(1);
    }
  }

  stop_watchdog_.store(true, std::memory_order_relaxed);
  if (watchdog_.joinable()) watchdog_.join();

  rep.completed = drain_completed_.load(std::memory_order_relaxed);
  rep.checkpointed = drain_checkpointed_.load(std::memory_order_relaxed);
  rep.cancelled = drain_cancelled_.load(std::memory_order_relaxed);
  if (m != nullptr) {
    m->gauge("svc.queue_depth").set(0.0);
    m->gauge("svc.inflight")
        .set(static_cast<double>(inflight_n_.load(std::memory_order_relaxed)));
  }
  return rep;
}

}  // namespace rfid::service
