// request.h — the scheduler-as-a-service wire protocol (docs/service.md).
//
// The daemon admits work as a stream of text *request specs*: a
// `request <id>` line, key/value configuration lines, an optional inline
// fault-plan block, and a terminating `end`.  The format is line-based and
// human-writable so a load generator, a shell script, and a socket relay
// all speak it without a serialization library.
//
// The parser is the daemon's outermost trust boundary, so it fails
// *closed*: every limit (line length, lines per request, fault-block size,
// id charset) is enforced before any value is acted on, a malformed
// request produces a structured rejection Response and never a crash, and
// the parser resynchronizes at the next `end` so one hostile request
// cannot poison the requests behind it (tests/test_service_fuzz.cpp sweeps
// this under ASan/UBSan).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "fault/fault_plan.h"

namespace rfid::service {

/// Terminal classification of a request's outcome (Response::code).  One
/// flat namespace across the parse, admission, and execution layers so a
/// client switch()es on a single enum.
enum class Code {
  kNone = 0,          // success
  // Parse layer — the spec never became a request.
  kParse,             // malformed line / missing request framing
  kTooLarge,          // line, request, or fault block over its hard limit
  kTruncated,         // stream ended mid-request
  kBadValue,          // well-formed line, out-of-range or unknown value
  // Admission layer — parsed, but never queued (all carry retry_after_ms).
  kQueueFull,         // bounded queue at capacity, shed policy rejected it
  kDeadlineUnmeetable,// estimated queue wait already exceeds the deadline
  kShed,              // evicted from the queue by reject-largest shedding
  kDraining,          // daemon is draining; no new work, queued work bounced
  // Execution layer.
  kDeadline,          // cancelled: per-request deadline expired
  kStalled,           // cancelled: watchdog saw no slot progress (retryable)
  kIntegrity,         // checkpoint resume failed closed (retryable fresh)
  kInternal,          // driver failed a postcondition; not retryable
};

const char* codeName(Code c);

/// Transient failures worth another attempt within the request's deadline:
/// a watchdog stall (the fault plan or a scheduling hiccup may clear) and a
/// checkpoint-integrity failure (retried from a wiped journal).  Everything
/// else is terminal: parse/admission rejections are the client's to retry
/// (with the returned retry_after_ms hint), an expired deadline cannot be
/// un-expired, and kInternal means the run itself is suspect.
bool retryable(Code c);

/// Request lifecycle outcome (Response::status).
enum class Status {
  kOk,         // ran to a valid result (possibly budget-bounded)
  kRejected,   // never ran: parse or admission refusal
  kCancelled,  // started, stopped early by deadline/watchdog/drain
  kFailed,     // started, failed (integrity after retries, internal)
};

const char* statusName(Status s);

/// Hard protocol limits, enforced before any allocation proportional to
/// attacker input.  Exceeding any of them is kTooLarge.
inline constexpr std::size_t kMaxLineLen = 4096;
inline constexpr int kMaxRequestLines = 256;
inline constexpr int kMaxFaultLines = 128;
inline constexpr std::size_t kMaxIdLen = 64;

/// Value bounds (kBadValue outside them).  The caps double as the OOM
/// guard: together with the bounded queue they bound the daemon's peak
/// memory by construction.
inline constexpr int kMaxReaders = 20000;
inline constexpr int kMaxTags = 500000;
inline constexpr int kMaxDeadlineMs = 86400000;  // 24 h
inline constexpr int kMaxSlotCap = 1000000;
inline constexpr int kMaxRetries = 10;
inline constexpr int kMaxHangMs = 600000;
inline constexpr int kMaxPaceMs = 60000;

/// One parsed, validated request.  Field defaults mirror rfidsched_cli so
/// a minimal spec (`request r1` + `end`) runs the paper deployment.
struct RequestSpec {
  std::string id;               // [A-Za-z0-9._-]{1,64}; doubles as the
                                // checkpoint journal filename stem
  std::string algo = "alg2";    // alg1|alg2|alg3|ghc|ca|exact|mc
  std::string layout = "uniform";
  int readers = 50;
  int tags = 1200;
  double side = 100.0;
  double lambda_R = 10.0;
  double lambda_r = 4.0;
  std::uint64_t seed = 1;
  double rho = 1.25;
  int k = 4;
  int channels = 2;
  int deadline_ms = 0;          // 0 = no deadline
  int max_slots = 0;            // 0 = no committed-slot cap
  int retries = -1;             // -1 = service default
  bool checkpoint = true;       // journal when the daemon has a ckpt dir
  // Test/chaos knobs (docs/service.md): hang-ms wedges the worker before
  // the solve without advancing the heartbeat (cancellable — what the
  // watchdog's stall detector must catch); pace-ms sleeps before every
  // schedule() call (cancellable, heartbeat still advances — a slow but
  // live request for drain/backpressure tests).
  int hang_ms = 0;
  int pace_ms = 0;
  fault::FaultPlan faults;      // empty = no request-scoped plan
  bool has_faults = false;

  /// Deployment size for the reject-largest shed policy (admission orders
  /// by it) — proportional to the System build + referee cost.
  std::int64_t sizeUnits() const {
    return static_cast<std::int64_t>(readers) *
           (static_cast<std::int64_t>(tags) + 1);
  }
};

/// What the daemon says back: one JSON object per request, written as a
/// single line in deterministic field order.
struct Response {
  std::string id;               // empty when the spec died before its id
  Status status = Status::kOk;
  Code code = Code::kNone;
  std::string detail;           // human-readable cause, "" on success
  int attempts = 0;             // execution attempts consumed (0 = rejected)
  int slots = 0;
  int tags_read = 0;
  bool completed = false;       // every coverable tag served
  bool resumable = false;       // a journal with >= 1 committed slot exists
  int retry_after_ms = 0;       // admission rejections: backpressure hint
  double queue_wait_ms = 0.0;
  double latency_ms = 0.0;      // submit -> completion wall clock

  /// One-line JSON, fields in declaration order, strings escaped.  With
  /// `mask_wall` the two wall-clock fields print as 0 so byte-diffable
  /// protocols (goldens, soak assertions) stay deterministic.
  void writeJson(std::ostream& os, bool mask_wall = false) const;
};

/// Pulls requests out of a text stream one at a time.
///
///   RequestStreamParser p(in);
///   RequestSpec spec; Response err;
///   while (true) switch (p.next(&spec, &err)) {
///     case Item::kRequest: submit(spec); break;
///     case Item::kError:   reply(err); break;   // parser already resynced
///     case Item::kEof:     ...; return;
///   }
///
/// Lines are read through a bounded reader (an over-limit line is consumed
/// and discarded without being stored), so hostile input cannot balloon
/// memory.  After an error the parser skips forward to the next `end` (or
/// EOF) before returning, so the following request parses normally.
class RequestStreamParser {
 public:
  enum class Item { kRequest, kError, kEof };

  explicit RequestStreamParser(std::istream& in) : in_(in) {}

  /// Blocks until one full request (or error) is available.  On kRequest,
  /// `*out` holds the validated spec.  On kError, `*err` is a ready-to-send
  /// rejection Response (id filled in when the `request` line was intact).
  Item next(RequestSpec* out, Response* err);

  /// Total requests yielded (kRequest) and errors produced so far.
  std::int64_t parsed() const { return parsed_; }
  std::int64_t errors() const { return errors_; }

 private:
  Item fail(Response* err, std::string id, Code code, std::string detail,
            bool resync);

  std::istream& in_;
  std::int64_t parsed_ = 0;
  std::int64_t errors_ = 0;
};

/// True iff `id` is a valid request id (charset + length).
bool validRequestId(std::string_view id);

}  // namespace rfid::service
