#include "service/queue.h"

#include <algorithm>
#include <cmath>

namespace rfid::service {

namespace {

/// Backpressure hint: how long the client should wait before retrying so
/// its next attempt likely finds room.  Derived from the same wait estimate
/// admission used; clamped to a sane, never-zero range.
int retryHintMs(double est_wait_ms) {
  const double hint = std::ceil(est_wait_ms);
  if (hint < 1.0) return 1;
  if (hint > 60000.0) return 60000;
  return static_cast<int>(hint);
}

}  // namespace

const char* shedPolicyName(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kRejectNewest: return "reject-newest";
    case ShedPolicy::kRejectLargest: return "reject-largest";
  }
  return "?";
}

Admit AdmissionQueue::push(Job job, double est_wait_ms) {
  Admit out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) {
      out.code = Code::kDraining;
      out.retry_after_ms = retryHintMs(est_wait_ms);
      return out;
    }
    // Deadline-aware admission: if the estimated wait alone already spends
    // the request's whole deadline, queueing it just manufactures a
    // guaranteed cancellation — bounce now, while the client can still
    // retarget another instance.
    if (job.has_deadline) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          job.deadline - std::chrono::steady_clock::now());
      if (static_cast<double>(remaining.count()) <= est_wait_ms) {
        out.code = Code::kDeadlineUnmeetable;
        out.retry_after_ms = retryHintMs(est_wait_ms);
        return out;
      }
    }
    if (q_.size() >= capacity_) {
      if (policy_ == ShedPolicy::kRejectNewest) {
        out.code = Code::kQueueFull;
        out.retry_after_ms = retryHintMs(est_wait_ms);
        return out;
      }
      // kRejectLargest: shed the largest deployment among queued ∪ {job}.
      // If the incoming job is itself the largest it bounces; otherwise the
      // largest queued job is evicted to make room.
      auto largest = std::max_element(
          q_.begin(), q_.end(), [](const Job& a, const Job& b) {
            return a.spec.sizeUnits() < b.spec.sizeUnits();
          });
      if (largest == q_.end() ||
          largest->spec.sizeUnits() <= job.spec.sizeUnits()) {
        out.code = Code::kShed;
        out.retry_after_ms = retryHintMs(est_wait_ms);
        return out;
      }
      out.evicted.push_back(std::move(*largest));
      q_.erase(largest);
    }
    q_.push_back(std::move(job));
  }
  cv_.notify_one();
  return out;
}

bool AdmissionQueue::pop(Job* out) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return false;  // closed and drained
  *out = std::move(q_.front());
  q_.pop_front();
  return true;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<Job> AdmissionQueue::drainPending() {
  std::vector<Job> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(q_.size());
  while (!q_.empty()) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return out;
}

}  // namespace rfid::service
