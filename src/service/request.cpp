#include "service/request.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <istream>
#include <ostream>

namespace rfid::service {

namespace {

/// Bounded line reader: reads up to kMaxLineLen bytes into `*line`.  A
/// longer line is consumed to its newline but NOT stored; `*overflow` is
/// set instead, so hostile input costs O(kMaxLineLen) memory no matter how
/// long the line is.  Returns false on EOF with nothing read.
bool readLine(std::istream& in, std::string* line, bool* overflow) {
  line->clear();
  *overflow = false;
  int c = in.get();
  if (c == std::istream::traits_type::eof()) return false;
  for (; c != std::istream::traits_type::eof() && c != '\n'; c = in.get()) {
    if (line->size() < kMaxLineLen) {
      line->push_back(static_cast<char>(c));
    } else {
      *overflow = true;  // keep consuming, stop storing
    }
  }
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits "key rest" at the first whitespace run; rest may be empty.
void splitKey(std::string_view line, std::string_view* key,
              std::string_view* rest) {
  std::size_t i = 0;
  while (i < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  *key = line.substr(0, i);
  *rest = trim(line.substr(i));
}

bool parseI64(std::string_view v, std::int64_t lo, std::int64_t hi,
              std::int64_t* out) {
  if (v.empty()) return false;
  const std::string s(v);  // strtoll needs a terminator
  errno = 0;
  char* end = nullptr;
  const long long x = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (x < lo || x > hi) return false;
  *out = x;
  return true;
}

bool parseU64(std::string_view v, std::uint64_t* out) {
  if (v.empty() || v.front() == '-') return false;
  const std::string s(v);
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = x;
  return true;
}

bool parseF64(std::string_view v, double lo, double hi, double* out) {
  if (v.empty()) return false;
  const std::string s(v);
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (!(x >= lo && x <= hi)) return false;  // rejects NaN too
  *out = x;
  return true;
}

void jsonEscape(std::ostream& os, std::string_view s) {
  for (const char ch : s) {
    const unsigned char u = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (u < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(u >> 4) & 0xf] << hex[u & 0xf];
        } else {
          os << ch;
        }
    }
  }
}

}  // namespace

const char* codeName(Code c) {
  switch (c) {
    case Code::kNone: return "none";
    case Code::kParse: return "parse";
    case Code::kTooLarge: return "too-large";
    case Code::kTruncated: return "truncated";
    case Code::kBadValue: return "bad-value";
    case Code::kQueueFull: return "queue-full";
    case Code::kDeadlineUnmeetable: return "deadline-unmeetable";
    case Code::kShed: return "shed";
    case Code::kDraining: return "draining";
    case Code::kDeadline: return "deadline";
    case Code::kStalled: return "stalled";
    case Code::kIntegrity: return "integrity";
    case Code::kInternal: return "internal";
  }
  return "?";
}

bool retryable(Code c) {
  return c == Code::kStalled || c == Code::kIntegrity;
}

const char* statusName(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kCancelled: return "cancelled";
    case Status::kFailed: return "failed";
  }
  return "?";
}

bool validRequestId(std::string_view id) {
  if (id.empty() || id.size() > kMaxIdLen) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void Response::writeJson(std::ostream& os, bool mask_wall) const {
  os << "{\"id\":\"";
  jsonEscape(os, id);
  os << "\",\"status\":\"" << statusName(status) << "\",\"code\":\""
     << codeName(code) << "\",\"detail\":\"";
  jsonEscape(os, detail);
  os << "\",\"attempts\":" << attempts << ",\"slots\":" << slots
     << ",\"tags_read\":" << tags_read << ",\"completed\":"
     << (completed ? "true" : "false") << ",\"resumable\":"
     << (resumable ? "true" : "false")
     << ",\"retry_after_ms\":" << retry_after_ms << ",\"queue_wait_ms\":"
     << (mask_wall ? 0.0 : queue_wait_ms) << ",\"latency_ms\":"
     << (mask_wall ? 0.0 : latency_ms) << "}";
}

RequestStreamParser::Item RequestStreamParser::fail(Response* err,
                                                    std::string id, Code code,
                                                    std::string detail,
                                                    bool resync) {
  if (resync) {
    // Skip forward to the request terminator so the next request parses
    // clean.  Oversized lines are consumed unbuffered, like everywhere.
    std::string line;
    bool overflow = false;
    while (readLine(in_, &line, &overflow)) {
      if (!overflow && trim(line) == "end") break;
    }
  }
  ++errors_;
  *err = Response{};
  err->id = std::move(id);
  err->status = Status::kRejected;
  err->code = code;
  err->detail = std::move(detail);
  return Item::kError;
}

RequestStreamParser::Item RequestStreamParser::next(RequestSpec* out,
                                                    Response* err) {
  std::string line;
  bool overflow = false;

  // ---- framing: find the `request <id>` line ----
  std::string_view key, rest;
  for (;;) {
    if (!readLine(in_, &line, &overflow)) return Item::kEof;
    if (overflow) {
      return fail(err, "", Code::kTooLarge,
                  "line exceeds " + std::to_string(kMaxLineLen) + " bytes",
                  true);
    }
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    splitKey(t, &key, &rest);
    if (key != "request") {
      return fail(err, "", Code::kParse,
                  "expected 'request <id>', got '" + std::string(key) + "'",
                  true);
    }
    break;
  }
  if (!validRequestId(rest)) {
    return fail(err, "", Code::kParse,
                "invalid request id (need 1-" + std::to_string(kMaxIdLen) +
                    " chars of [A-Za-z0-9._-])",
                true);
  }

  RequestSpec spec;
  spec.id = std::string(rest);
  const std::string id = spec.id;  // survives into error paths

  const auto bad = [&](std::string_view k, std::string_view why) {
    return fail(err, id, Code::kBadValue,
                std::string(k) + ": " + std::string(why), true);
  };

  // ---- body ----
  int lines = 0;
  for (;;) {
    if (!readLine(in_, &line, &overflow)) {
      return fail(err, id, Code::kTruncated, "stream ended before 'end'",
                  false);
    }
    if (overflow) {
      return fail(err, id, Code::kTooLarge,
                  "line exceeds " + std::to_string(kMaxLineLen) + " bytes",
                  true);
    }
    if (++lines > kMaxRequestLines) {
      return fail(err, id, Code::kTooLarge,
                  "request exceeds " + std::to_string(kMaxRequestLines) +
                      " lines",
                  true);
    }
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    splitKey(t, &key, &rest);

    if (key == "end") {
      if (!rest.empty()) return bad("end", "takes no value");
      ++parsed_;
      *out = std::move(spec);
      return Item::kRequest;
    }
    if (key == "request") {
      return fail(err, id, Code::kParse,
                  "nested 'request' before 'end'", true);
    }

    std::int64_t n = 0;
    double f = 0.0;
    if (key == "algo") {
      if (rest != "alg1" && rest != "alg2" && rest != "alg3" &&
          rest != "ghc" && rest != "ca" && rest != "exact" && rest != "mc") {
        return bad(key, "unknown algorithm");
      }
      spec.algo = std::string(rest);
    } else if (key == "layout") {
      if (rest != "uniform" && rest != "clusters" && rest != "aisles" &&
          rest != "grid") {
        return bad(key, "unknown layout");
      }
      spec.layout = std::string(rest);
    } else if (key == "readers") {
      if (!parseI64(rest, 1, kMaxReaders, &n)) {
        return bad(key, "need integer in [1, 20000]");
      }
      spec.readers = static_cast<int>(n);
    } else if (key == "tags") {
      if (!parseI64(rest, 0, kMaxTags, &n)) {
        return bad(key, "need integer in [0, 500000]");
      }
      spec.tags = static_cast<int>(n);
    } else if (key == "side") {
      if (!parseF64(rest, 1e-6, 1e6, &f)) {
        return bad(key, "need number in (0, 1e6]");
      }
      spec.side = f;
    } else if (key == "lambda-R") {
      if (!parseF64(rest, 1.0, 1e3, &f)) {
        return bad(key, "need number in [1, 1000]");
      }
      spec.lambda_R = f;
    } else if (key == "lambda-r") {
      if (!parseF64(rest, 1.0, 1e3, &f)) {
        return bad(key, "need number in [1, 1000]");
      }
      spec.lambda_r = f;
    } else if (key == "seed") {
      std::uint64_t u = 0;
      if (!parseU64(rest, &u)) return bad(key, "need unsigned integer");
      spec.seed = u;
    } else if (key == "rho") {
      if (!parseF64(rest, 1.0 + 1e-9, 16.0, &f)) {
        return bad(key, "need number in (1, 16]");
      }
      spec.rho = f;
    } else if (key == "k") {
      if (!parseI64(rest, 2, 16, &n)) return bad(key, "need integer in [2, 16]");
      spec.k = static_cast<int>(n);
    } else if (key == "channels") {
      if (!parseI64(rest, 1, 64, &n)) return bad(key, "need integer in [1, 64]");
      spec.channels = static_cast<int>(n);
    } else if (key == "deadline-ms") {
      if (!parseI64(rest, 0, kMaxDeadlineMs, &n)) {
        return bad(key, "need integer in [0, 86400000]");
      }
      spec.deadline_ms = static_cast<int>(n);
    } else if (key == "max-slots") {
      if (!parseI64(rest, 0, kMaxSlotCap, &n)) {
        return bad(key, "need integer in [0, 1000000]");
      }
      spec.max_slots = static_cast<int>(n);
    } else if (key == "retries") {
      if (!parseI64(rest, 0, kMaxRetries, &n)) {
        return bad(key, "need integer in [0, 10]");
      }
      spec.retries = static_cast<int>(n);
    } else if (key == "checkpoint") {
      if (rest == "on") spec.checkpoint = true;
      else if (rest == "off") spec.checkpoint = false;
      else return bad(key, "need on|off");
    } else if (key == "hang-ms") {
      if (!parseI64(rest, 0, kMaxHangMs, &n)) {
        return bad(key, "need integer in [0, 600000]");
      }
      spec.hang_ms = static_cast<int>(n);
    } else if (key == "pace-ms") {
      if (!parseI64(rest, 0, kMaxPaceMs, &n)) {
        return bad(key, "need integer in [0, 60000]");
      }
      spec.pace_ms = static_cast<int>(n);
    } else if (key == "fault-begin") {
      if (!rest.empty()) return bad(key, "takes no value");
      std::string plan_text;
      int fault_lines = 0;
      for (;;) {
        if (!readLine(in_, &line, &overflow)) {
          return fail(err, id, Code::kTruncated,
                      "stream ended inside fault block", false);
        }
        if (overflow) {
          return fail(err, id, Code::kTooLarge,
                      "fault line exceeds " + std::to_string(kMaxLineLen) +
                          " bytes",
                      true);
        }
        const std::string_view ft = trim(line);
        if (ft == "fault-end") break;
        if (++fault_lines > kMaxFaultLines) {
          return fail(err, id, Code::kTooLarge,
                      "fault block exceeds " +
                          std::to_string(kMaxFaultLines) + " lines",
                      true);
        }
        plan_text.append(ft);
        plan_text.push_back('\n');
      }
      std::string perr;
      auto plan = fault::FaultPlan::parse(plan_text, &perr);
      if (!plan) return bad("fault-begin", perr);
      spec.faults = std::move(*plan);
      spec.has_faults = !spec.faults.empty();
    } else {
      return bad(key, "unknown key");
    }
  }
}

}  // namespace rfid::service
