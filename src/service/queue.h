// queue.h — bounded admission queue with backpressure and load shedding.
//
// The queue is where the daemon's no-OOM guarantee lives: capacity is fixed
// at construction, every push that would exceed it resolves *immediately*
// to a structured rejection (never a block, never an allocation that grows
// with load), and admission is deadline-aware — a request whose deadline
// the estimated queue wait already blows is bounced up front with a
// Retry-After hint instead of being queued to die.
//
// Two shed policies for the overflow case (docs/service.md):
//
//   * kRejectNewest  — the incoming request bounces (kQueueFull).  Fair to
//                      queued work, favors FIFO latency.
//   * kRejectLargest — the largest deployment among {queued + incoming} is
//                      shed (kShed) to make room, protecting many small
//                      tenants from one huge one.  Evicted queued jobs are
//                      returned to the caller to complete with rejections.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "service/request.h"

namespace rfid::service {

/// Overflow behavior when a push finds the queue at capacity.
enum class ShedPolicy {
  kRejectNewest,
  kRejectLargest,
};

const char* shedPolicyName(ShedPolicy p);

/// One-shot completion rendezvous between the worker that runs a request
/// and the session thread that must write its Response.  complete() is
/// idempotent (first writer wins) so a drain bounce racing a worker finish
/// cannot double-complete.
class Ticket {
 public:
  void complete(Response r) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (done_) return;
      resp_ = std::move(r);
      done_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until complete() has been called; returns the response.
  Response wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return done_; });
    return resp_;
  }

  bool done() const {
    std::lock_guard<std::mutex> lk(mu_);
    return done_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Response resp_;
};

/// One admitted unit of work: the validated spec, its completion ticket,
/// and the timing facts admission fixed (submit time, absolute deadline).
struct Job {
  RequestSpec spec;
  std::shared_ptr<Ticket> ticket;
  std::chrono::steady_clock::time_point submitted{};
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  int attempts = 0;  // execution attempts consumed so far
};

/// Outcome of AdmissionQueue::push.
struct Admit {
  Code code = Code::kNone;  // kNone = admitted (job now queued)
  int retry_after_ms = 0;   // backpressure hint on rejection
  /// Queued jobs evicted by kRejectLargest to make room; the caller owns
  /// completing their tickets with kShed rejections.
  std::vector<Job> evicted;
  bool admitted() const { return code == Code::kNone; }
};

/// Bounded MPMC queue.  Thread-safe; push never blocks, pop blocks until a
/// job or closure.  Memory is bounded by construction: at most `capacity`
/// jobs, each already validated against the protocol caps.
class AdmissionQueue {
 public:
  AdmissionQueue(std::size_t capacity, ShedPolicy policy)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  /// Admission decision for `job` given the caller's current estimate of
  /// the queue wait (EMA service time × backlog / workers, computed by the
  /// Service).  Applies, in order: the draining gate, the deadline-aware
  /// check, and on overflow the shed policy.
  Admit push(Job job, double est_wait_ms);

  /// Blocks for the next job.  Returns false when the queue is closed and
  /// empty — the worker-pool shutdown signal.
  bool pop(Job* out);

  /// Stops admission (push returns kDraining) and wakes every blocked pop.
  /// Queued jobs stay queued until popped or drained.
  void close();

  /// Empties the queue (typically after close()): the bounced jobs are
  /// returned for the caller to reject with kDraining.
  std::vector<Job> drainPending();

  std::size_t depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  const ShedPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> q_;
  bool closed_ = false;
};

}  // namespace rfid::service
