// signals.h — async-signal-safe SIGTERM/SIGINT bridge for graceful drain.
//
// The handler does exactly two async-signal-safe things: stores the signal
// number into a sig_atomic_t and fires the bound CancelToken (a relaxed
// atomic-bool store, lock-free by construction).  Everything else — closing
// admission, draining, flushing telemetry, picking the exit code — happens
// on the main thread, which polls stopSignal().
//
// Handlers install without SA_RESTART so a daemon blocked in a stdin read
// wakes with EINTR instead of sleeping through its own shutdown.
#pragma once

namespace rfid::ckpt {
class CancelToken;
}

namespace rfid::service {

/// Installs SIGTERM + SIGINT handlers.  `token` (optional) is cancelled
/// from the handler so in-flight work starts checkpointing immediately,
/// before the main loop even notices.  Call once; the token must outlive
/// every subsequent signal.
void installStopSignalHandlers(ckpt::CancelToken* token = nullptr);

/// The first stop signal received (SIGTERM/SIGINT), 0 if none yet.
int stopSignal();

/// Test hook: forgets any received signal and unbinds the token.
void resetStopSignalsForTest();

}  // namespace rfid::service
